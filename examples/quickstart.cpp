// Quickstart: open a DB on the real filesystem, write, read, scan,
// snapshot, delete — the five-minute tour of the public API.
//
//   ./quickstart [db_path]     (default /tmp/pipelsm_quickstart)
#include <cstdio>
#include <memory>

#include "src/db/db.h"
#include "src/db/write_batch.h"

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/pipelsm_quickstart";

  pipelsm::Options options;
  options.create_if_missing = true;
  // The paper's contribution is one enum away:
  options.compaction_mode = pipelsm::CompactionMode::kPCP;

  pipelsm::DB* raw = nullptr;
  pipelsm::Status s = pipelsm::DB::Open(options, path, &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<pipelsm::DB> db(raw);
  std::printf("opened %s\n", path.c_str());

  // Single writes.
  db->Put(pipelsm::WriteOptions(), "language", "C++20");
  db->Put(pipelsm::WriteOptions(), "paper", "Pipelined Compaction for the LSM-tree");
  db->Put(pipelsm::WriteOptions(), "venue", "IPDPS 2014");

  // Atomic batch.
  pipelsm::WriteBatch batch;
  batch.Put("executor:0", "SCP");
  batch.Put("executor:1", "PCP");
  batch.Put("executor:2", "S-PPCP");
  batch.Put("executor:3", "C-PPCP");
  db->Write(pipelsm::WriteOptions(), &batch);

  // Point read.
  std::string value;
  s = db->Get(pipelsm::ReadOptions(), "paper", &value);
  std::printf("paper = %s\n", s.ok() ? value.c_str() : s.ToString().c_str());

  // Snapshot isolation.
  const pipelsm::Snapshot* snap = db->GetSnapshot();
  db->Put(pipelsm::WriteOptions(), "venue", "OVERWRITTEN");
  pipelsm::ReadOptions at_snapshot;
  at_snapshot.snapshot = snap;
  db->Get(at_snapshot, "venue", &value);
  std::printf("venue@snapshot = %s (after overwrite)\n", value.c_str());
  db->ReleaseSnapshot(snap);

  // Prefix scan.
  std::printf("executors:\n");
  std::unique_ptr<pipelsm::Iterator> it(
      db->NewIterator(pipelsm::ReadOptions()));
  for (it->Seek("executor:"); it->Valid() && it->key().starts_with("executor:");
       it->Next()) {
    std::printf("  %s -> %s\n", it->key().ToString().c_str(),
                it->value().ToString().c_str());
  }

  // Delete + verify.
  db->Delete(pipelsm::WriteOptions(), "language");
  s = db->Get(pipelsm::ReadOptions(), "language", &value);
  std::printf("language after delete: %s\n",
              s.IsNotFound() ? "NotFound (as expected)" : "still there?!");

  // Force everything onto disk so `sstable_inspect <path>` has tables to
  // audit, and exercise a manual compaction through the PCP executor.
  db->CompactRange(nullptr, nullptr);

  std::string stats;
  if (db->GetProperty("pipelsm.stats", &stats)) {
    std::printf("\n%s", stats.c_str());
  }
  return 0;
}
