// Compaction lab: the paper's core experiment in miniature, against the
// library's public compaction API.
//
// Builds an upper/lower component pair on a simulated device, runs the
// same compaction through all four executors, and prints each one's
// per-step breakdown, bandwidth and the analytic model's prediction —
// a minimal template for anyone extending the executors.
//
//   ./compaction_lab [hdd|ssd]    (default ssd)
#include <cstdio>
#include <cstring>

#include "src/compaction/executor.h"
#include "src/env/sim_env.h"
#include "src/model/model.h"
#include "src/workload/table_gen.h"

using namespace pipelsm;

int main(int argc, char** argv) {
  const bool hdd = argc > 1 && std::strcmp(argv[1], "hdd") == 0;
  const DeviceProfile device =
      hdd ? DeviceProfile::Hdd() : DeviceProfile::Ssd();
  std::printf("device: %s\n", device.name.c_str());

  SimEnv env(device);
  InternalKeyComparator icmp(BytewiseComparator());

  // One compaction's worth of inputs: a 4 MB upper component whose keys
  // rewrite half of an 8 MB lower component.
  TableGenOptions gen;
  gen.env = &env;
  gen.icmp = &icmp;
  gen.upper_bytes = 4 << 20;
  gen.lower_bytes = 8 << 20;
  CompactionInputs inputs;
  Status s = GenerateCompactionInputs(gen, &inputs);
  if (!s.ok()) {
    std::fprintf(stderr, "generate: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("inputs: %zu tables, %.1f MiB, %llu entries\n\n",
              inputs.tables.size(), inputs.total_bytes / 1048576.0,
              static_cast<unsigned long long>(inputs.total_entries));

  CompactionJobOptions job;
  job.icmp = &icmp;
  job.subtask_bytes = 512 << 10;

  struct Case {
    CompactionMode mode;
    int readers, computers;
  } cases[] = {
      {CompactionMode::kSCP, 1, 1},
      {CompactionMode::kPCP, 1, 1},
      {CompactionMode::kSPPCP, 3, 1},
      {CompactionMode::kCPPCP, 1, 3},
  };

  StepProfile scp_profile;
  for (const Case& c : cases) {
    job.read_parallelism = c.readers;
    job.compute_parallelism = c.computers;
    auto executor = NewCompactionExecutor(c.mode);

    CountingSink sink(&env, std::string("/lab-") + executor->name());
    StepProfile profile;
    s = executor->Run(job, inputs.tables, &sink, &profile);
    if (!s.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", executor->name(),
                   s.ToString().c_str());
      return 1;
    }
    if (c.mode == CompactionMode::kSCP) scp_profile = profile;

    std::printf("=== %s (readers=%d, computers=%d) ===\n", executor->name(),
                c.readers, c.computers);
    std::printf("%s", profile.ToString().c_str());
    std::printf("  wall bandwidth: %.1f MiB/s across %llu output tables\n\n",
                profile.WallBandwidth() / 1048576.0,
                static_cast<unsigned long long>(sink.outputs().size()));
  }

  model::StepTimes t = model::StepTimes::FromProfile(scp_profile);
  std::printf("analytic model (from the SCP profile):\n  %s\n",
              model::Describe(t).c_str());
  std::printf("  S-PPCP saturates at %d disks; C-PPCP at %d threads\n",
              model::SppcpSaturationDisks(t),
              model::CppcpSaturationThreads(t));
  return 0;
}
