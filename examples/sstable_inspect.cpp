// sstable_inspect: a dump/verification tool built on the table-layer API
// (what a downstream user would write to debug their data files).
//
// Walks a DB directory on the real filesystem, opens every SSTable, and
// prints per-file statistics: entry count, key range, data-block count,
// compression ratio — verifying every block checksum along the way (the
// compaction procedure's S2 as a standalone audit).
//
//   ./sstable_inspect <db_path>
#include <cstdio>
#include <memory>

#include "src/db/dbformat.h"
#include "src/db/filename.h"
#include "src/env/env.h"
#include "src/table/format.h"
#include "src/table/table.h"

using namespace pipelsm;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <db_path>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  Env* env = Env::Posix();

  std::vector<std::string> children;
  Status s = env->GetChildren(dir, &children);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  InternalKeyComparator icmp(BytewiseComparator());
  TableOptions topt;
  topt.comparator = &icmp;

  std::printf("%-14s %10s %10s %8s %8s  %s\n", "file", "bytes", "entries",
              "blocks", "ratio", "key range");
  int tables = 0;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type) || type != kTableFile) {
      continue;
    }
    const std::string fname = dir + "/" + child;
    uint64_t size = 0;
    env->GetFileSize(fname, &size);

    std::unique_ptr<RandomAccessFile> file;
    s = env->NewRandomAccessFile(fname, &file);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", child.c_str(), s.ToString().c_str());
      continue;
    }
    std::unique_ptr<Table> table;
    s = Table::Open(topt, std::move(file), size, &table);
    if (!s.ok()) {
      std::printf("%-14s CORRUPT: %s\n", child.c_str(),
                  s.ToString().c_str());
      continue;
    }

    // Walk the index; verify every data block's checksum (S2) and count
    // raw bytes to compute the compression ratio.
    uint64_t blocks = 0, compressed = 0, raw_bytes = 0, entries = 0;
    std::string first_key, last_key;
    std::unique_ptr<Iterator> idx(table->NewIndexIterator());
    bool healthy = true;
    for (idx->SeekToFirst(); idx->Valid(); idx->Next()) {
      BlockHandle handle;
      Slice v = idx->value();
      if (!handle.DecodeFrom(&v).ok()) {
        healthy = false;
        break;
      }
      RawBlock rawb;
      if (!table->ReadRaw(handle, &rawb).ok() ||
          !VerifyRawBlock(rawb).ok()) {
        healthy = false;
        break;
      }
      std::string contents;
      if (!DecodeRawBlock(rawb, &contents).ok()) {
        healthy = false;
        break;
      }
      blocks++;
      compressed += rawb.payload.size();
      raw_bytes += contents.size();
    }
    if (!healthy) {
      std::printf("%-14s CORRUPT BLOCK (checksum/decode failed)\n",
                  child.c_str());
      continue;
    }

    std::unique_ptr<Iterator> it(table->NewIterator());
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ParsedInternalKey parsed;
      if (ParseInternalKey(it->key(), &parsed)) {
        if (entries == 0) first_key = parsed.user_key.ToString();
        last_key = parsed.user_key.ToString();
      }
      entries++;
    }

    std::printf("%-14s %10llu %10llu %8llu %7.2fx  ['%.24s' .. '%.24s']\n",
                child.c_str(), static_cast<unsigned long long>(size),
                static_cast<unsigned long long>(entries),
                static_cast<unsigned long long>(blocks),
                compressed > 0 ? double(raw_bytes) / compressed : 0.0,
                first_key.c_str(), last_key.c_str());
    tables++;
  }
  std::printf("%d table file(s) inspected, all checksums verified.\n",
              tables);
  return 0;
}
