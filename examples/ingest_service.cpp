// Ingest service: the workload the paper's introduction motivates — a
// write-heavy network service (metrics/log ingestion) with stringent
// latency requirements, where background compactions cause write pauses.
//
// Simulates a sustained insert stream with periodic point reads and range
// scans against a DB on a simulated SSD, once with the SCP baseline and
// once with PCP, and compares sustained throughput, tail latencies and
// write-stall time — the user-visible face of the paper's contribution.
//
//   ./ingest_service [entries]    (default 60000)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/db/db.h"
#include "src/env/sim_env.h"
#include "src/util/histogram.h"
#include "src/util/stopwatch.h"
#include "src/workload/generator.h"

using namespace pipelsm;

namespace {

struct ServiceReport {
  double inserts_per_sec = 0;
  double p99_write_micros = 0;
  double max_write_micros = 0;
  double stall_seconds = 0;
  double reads_per_sec = 0;
};

ServiceReport RunService(CompactionMode mode, uint64_t entries) {
  SimEnv env(DeviceProfile::Ssd());
  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.compaction_mode = mode;
  // Scaled-down tree so compactions happen within the demo (see
  // bench/bench_common.h for the reasoning).
  options.write_buffer_size = 256 << 10;
  options.max_file_size = 256 << 10;
  options.subtask_bytes = 64 << 10;

  DB* raw = nullptr;
  Status s = DB::Open(options, "/ingest", &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<DB> db(raw);

  WorkloadGenerator gen(entries, 16, 100, KeyOrder::kRandom);
  Histogram write_latency;
  Stopwatch total;

  uint64_t reads = 0;
  double read_seconds = 0;
  for (uint64_t i = 0; i < entries; i++) {
    Stopwatch op;
    s = db->Put(WriteOptions(), gen.Key(i), gen.Value(i));
    if (!s.ok()) {
      std::fprintf(stderr, "put: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    write_latency.Add(op.ElapsedNanos() / 1000.0);

    // Every 1000 inserts the service answers a small read burst: ten
    // point lookups and one short scan over recent keys.
    if (i > 0 && i % 1000 == 0) {
      Stopwatch rop;
      std::string value;
      for (int r = 0; r < 10; r++) {
        const uint64_t idx = (i * 31 + r * 977) % i;
        Status rs = db->Get(ReadOptions(), gen.Key(idx), &value);
        if (!rs.ok() || value != gen.Value(idx)) {
          std::fprintf(stderr, "read check failed at %llu\n",
                       static_cast<unsigned long long>(idx));
          std::exit(1);
        }
        reads++;
      }
      std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
      int scanned = 0;
      for (it->Seek(gen.Key(i - 1000)); it->Valid() && scanned < 50;
           it->Next()) {
        scanned++;
        reads++;
      }
      read_seconds += rop.ElapsedSeconds();
    }
  }
  const double seconds = total.ElapsedSeconds();
  db->WaitForCompactions();

  ServiceReport report;
  report.inserts_per_sec = entries / seconds;
  report.p99_write_micros = write_latency.Percentile(99);
  report.max_write_micros = write_latency.Max();
  report.stall_seconds = db->GetCompactionMetrics().stall_micros / 1e6;
  report.reads_per_sec = read_seconds > 0 ? reads / read_seconds : 0;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t entries = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : 60000;
  std::printf("ingest service simulation: %llu inserts + read bursts, "
              "simulated SSD\n\n",
              static_cast<unsigned long long>(entries));

  std::printf("%-18s %14s %12s %12s %10s %12s\n", "compaction", "inserts/s",
              "p99 put us", "max put ms", "stall s", "reads/s");
  for (CompactionMode mode : {CompactionMode::kSCP, CompactionMode::kPCP}) {
    ServiceReport r = RunService(mode, entries);
    std::printf("%-18s %14.0f %12.1f %12.1f %10.2f %12.0f\n",
                CompactionModeName(mode), r.inserts_per_sec,
                r.p99_write_micros, r.max_write_micros / 1000.0,
                r.stall_seconds, r.reads_per_sec);
  }
  std::printf("\nThe pipelined procedure drains compactions faster, so the "
              "write path\nstalls less and sustained ingest throughput "
              "rises (paper Fig 10 d-f).\n");
  return 0;
}
