// pipelsm_cli: command-line client for a running pipelsm_server.
//
//   pipelsm_cli [--host=H] [--port=N] [--timeout_ms=N] COMMAND [args...]
//
// Commands:
//   ping
//   put KEY VALUE
//   get KEY
//   del KEY
//   batch [put KEY VALUE | del KEY]...   one atomic WRITE_BATCH
//   scan [START_KEY [LIMIT]]
//   stream [START_KEY [LIMIT]]           server-side cursor scan
//   stats [PROPERTY]                     default pipelsm.stats
//
// `stream` iterates through a pinned-snapshot server cursor in bounded
// batches (docs/READ_PATH.md) instead of one SCAN reply; the global
// --pause_ms=N flag sleeps between entries, which CI uses to hold a
// cursor open across a server drain.
//
// Exit status: 0 on OK, 1 on any error (NotFound included, so scripts
// can test key presence).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/client/client.h"

namespace {

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: pipelsm_cli [--host=H] [--port=N] [--timeout_ms=N] "
               "COMMAND [args...]\n"
               "commands: ping | put K V | get K | del K |\n"
               "          batch [put K V | del K]... | scan [START [LIMIT]] |"
               " stream [START [LIMIT]] | stats [PROP]\n");
  std::exit(2);
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

int Finish(const pipelsm::Status& s) {
  if (s.ok()) return 0;
  std::fprintf(stderr, "%s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  pipelsm::client::ClientOptions copts;
  int pause_ms = 0;
  int i = 1;
  for (; i < argc; i++) {
    std::string v;
    if (ParseFlag(argv[i], "host", &copts.host)) continue;
    if (ParseFlag(argv[i], "port", &v)) {
      copts.port = std::atoi(v.c_str());
      continue;
    }
    if (ParseFlag(argv[i], "timeout_ms", &v)) {
      copts.request_timeout_micros =
          static_cast<uint64_t>(std::strtoull(v.c_str(), nullptr, 10)) * 1000;
      continue;
    }
    if (ParseFlag(argv[i], "pause_ms", &v)) {
      pause_ms = std::atoi(v.c_str());
      continue;
    }
    break;  // first non-flag = command
  }
  if (i >= argc) Usage();
  const std::string cmd = argv[i++];

  pipelsm::client::Client client(copts);

  if (cmd == "ping") {
    const pipelsm::Status s = client.Ping();
    if (s.ok()) std::printf("PONG\n");
    return Finish(s);
  }
  if (cmd == "put") {
    if (i + 2 != argc) Usage();
    return Finish(client.Put(argv[i], argv[i + 1]));
  }
  if (cmd == "get") {
    if (i + 1 != argc) Usage();
    std::string value;
    const pipelsm::Status s = client.Get(argv[i], &value);
    if (s.ok()) std::printf("%s\n", value.c_str());
    return Finish(s);
  }
  if (cmd == "del") {
    if (i + 1 != argc) Usage();
    return Finish(client.Delete(argv[i]));
  }
  if (cmd == "batch") {
    std::vector<pipelsm::server::BatchOp> ops;
    while (i < argc) {
      pipelsm::server::BatchOp op;
      if (std::strcmp(argv[i], "put") == 0 && i + 2 < argc) {
        op.key = argv[i + 1];
        op.value = argv[i + 2];
        i += 3;
      } else if (std::strcmp(argv[i], "del") == 0 && i + 1 < argc) {
        op.is_delete = true;
        op.key = argv[i + 1];
        i += 2;
      } else {
        Usage();
      }
      ops.push_back(std::move(op));
    }
    if (ops.empty()) Usage();
    const pipelsm::Status s = client.WriteBatch(ops);
    if (s.ok()) std::printf("OK (%zu ops)\n", ops.size());
    return Finish(s);
  }
  if (cmd == "scan") {
    std::string start;
    uint32_t limit = 0;
    if (i < argc) start = argv[i++];
    if (i < argc) limit = static_cast<uint32_t>(std::atoi(argv[i++]));
    if (i != argc) Usage();
    std::vector<std::pair<std::string, std::string>> entries;
    const pipelsm::Status s = client.Scan(start, limit, &entries);
    if (s.ok()) {
      for (const auto& [k, v] : entries) {
        std::printf("%s\t%s\n", k.c_str(), v.c_str());
      }
      std::fprintf(stderr, "(%zu entries)\n", entries.size());
    }
    return Finish(s);
  }
  if (cmd == "stream") {
    std::string start;
    uint32_t limit = 0;
    if (i < argc) start = argv[i++];
    if (i < argc) limit = static_cast<uint32_t>(std::atoi(argv[i++]));
    if (i != argc) Usage();
    std::unique_ptr<pipelsm::client::ScanStream> stream =
        client.NewScanStream(start, limit);
    size_t count = 0;
    for (; stream->Valid(); stream->Next()) {
      std::printf("%s\t%s\n", stream->key().c_str(), stream->value().c_str());
      count++;
      if (pause_ms > 0) ::usleep(static_cast<useconds_t>(pause_ms) * 1000);
    }
    std::fprintf(stderr, "(%zu entries streamed)\n", count);
    return Finish(stream->status());
  }
  if (cmd == "stats") {
    std::string property;
    if (i < argc) property = argv[i++];
    if (i != argc) Usage();
    std::string value;
    const pipelsm::Status s = client.Stats(property, &value);
    if (s.ok()) std::printf("%s\n", value.c_str());
    return Finish(s);
  }
  Usage();
}
