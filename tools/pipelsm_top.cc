// pipelsm_top: terminal dashboard for a live pipelsm_server, driven
// entirely by the admin endpoint's GET /metrics Prometheus exposition
// (docs/OBSERVABILITY.md). No server-side support beyond --admin_port is
// needed, and anything this tool shows a Prometheus scraper sees too.
//
//   pipelsm_top --port=ADMIN_PORT [--host=ADDR] [--interval_ms=N]
//               [--iterations=N] [--once]
//
// Flags:
//   --port=N          the server's --admin_port (required)
//   --host=ADDR       default 127.0.0.1
//   --interval_ms=N   poll period (default 1000)
//   --iterations=N    exit after N refreshes (default 0 = run until ^C)
//   --once            one poll, one machine-readable "TOP {json}" line on
//                     stdout, exit 0 — for scripts and CI smoke tests
//
// The dashboard shows fleet request throughput (rates are deltas between
// polls), per-shard write throughput and stall state, arbiter lane/worker
// occupancy, the bottleneck-advisor regime, and drain state.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

struct Snapshot {
  std::vector<Sample> samples;
  std::chrono::steady_clock::time_point taken;
  bool ok = false;

  const Sample* Find(const std::string& name,
                     const std::map<std::string, std::string>& labels = {})
      const {
    for (const Sample& s : samples) {
      if (s.name != name) continue;
      bool match = true;
      for (const auto& [k, v] : labels) {
        auto it = s.labels.find(k);
        if (it == s.labels.end() || it->second != v) {
          match = false;
          break;
        }
      }
      if (match) return &s;
    }
    return nullptr;
  }

  double Value(const std::string& name,
               const std::map<std::string, std::string>& labels = {},
               double fallback = 0) const {
    const Sample* s = Find(name, labels);
    return s != nullptr ? s->value : fallback;
  }

  // Sum across every label set — fleet totals for per-shard families.
  // Returns -1 when the family is absent so callers can gate display.
  double Sum(const std::string& name) const {
    double total = 0;
    bool any = false;
    for (const Sample& s : samples) {
      if (s.name != name) continue;
      total += s.value;
      any = true;
    }
    return any ? total : -1;
  }

  // shard label -> value, for families exported per shard.
  std::map<int, double> PerShard(const std::string& name) const {
    std::map<int, double> out;
    for (const Sample& s : samples) {
      if (s.name != name) continue;
      auto it = s.labels.find("shard");
      if (it != s.labels.end()) out[std::atoi(it->second.c_str())] = s.value;
    }
    return out;
  }
};

// ---------------------------------------------------------------------
// HTTP GET /metrics (HTTP/1.0, Connection: close — read to EOF).

bool FetchBody(const std::string& host, int port, const std::string& path,
               std::string* body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::send(fd, request.data() + off, request.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[8192];
  while (true) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (raw.rfind("HTTP/1.0 200", 0) != 0) return false;
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return false;
  *body = raw.substr(head_end + 4);
  return true;
}

// ---------------------------------------------------------------------
// Prometheus text-exposition parsing (the subset the server emits).

void ParseLabels(const std::string& text, Sample* out) {
  // text is the inside of {...}: k="v",k2="v2" with \" \\ \n escapes.
  size_t i = 0;
  while (i < text.size()) {
    const size_t eq = text.find('=', i);
    if (eq == std::string::npos || eq + 1 >= text.size() ||
        text[eq + 1] != '"') {
      return;
    }
    const std::string key = text.substr(i, eq - i);
    std::string value;
    size_t j = eq + 2;
    while (j < text.size() && text[j] != '"') {
      if (text[j] == '\\' && j + 1 < text.size()) {
        j++;
        value.push_back(text[j] == 'n' ? '\n' : text[j]);
      } else {
        value.push_back(text[j]);
      }
      j++;
    }
    out->labels[key] = value;
    i = j + 1;
    if (i < text.size() && text[i] == ',') i++;
  }
}

Snapshot ParseExposition(const std::string& text) {
  Snapshot snap;
  snap.taken = std::chrono::steady_clock::now();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    Sample s;
    const size_t brace = line.find('{');
    const size_t space = line.find(' ');
    if (brace != std::string::npos && brace < space) {
      const size_t close = line.rfind('}');
      if (close == std::string::npos) continue;
      s.name = line.substr(0, brace);
      ParseLabels(line.substr(brace + 1, close - brace - 1), &s);
      s.value = std::strtod(line.c_str() + close + 1, nullptr);
    } else {
      if (space == std::string::npos) continue;
      s.name = line.substr(0, space);
      s.value = std::strtod(line.c_str() + space + 1, nullptr);
    }
    if (!std::isnan(s.value)) snap.samples.push_back(std::move(s));
  }
  snap.ok = !snap.samples.empty();
  return snap;
}

Snapshot Poll(const std::string& host, int port) {
  std::string body;
  if (!FetchBody(host, port, "/metrics", &body)) return Snapshot{};
  return ParseExposition(body);
}

// ---------------------------------------------------------------------
// Rendering.

const char* StallName(double state) {
  if (state >= 2) return "STOPPED";
  if (state >= 1) return "delayed";
  return "normal";
}

// The regime rides a label on the info series; value is always 1.
std::string Regime(const Snapshot& snap, int shard) {
  for (const Sample& s : snap.samples) {
    if (s.name != "pipelsm_advisor_regime_info") continue;
    auto it = s.labels.find("shard");
    if (shard >= 0) {
      if (it == s.labels.end() ||
          std::atoi(it->second.c_str()) != shard) {
        continue;
      }
    } else if (it != s.labels.end()) {
      continue;
    }
    auto r = s.labels.find("regime");
    if (r != s.labels.end()) return r->second;
  }
  return "?";
}

double Rate(const Snapshot& cur, const Snapshot& prev,
            const std::string& name,
            const std::map<std::string, std::string>& labels = {}) {
  if (!prev.ok) return 0;
  const double dt =
      std::chrono::duration<double>(cur.taken - prev.taken).count();
  if (dt <= 0) return 0;
  return (cur.Value(name, labels) - prev.Value(name, labels)) / dt;
}

double TotalRequests(const Snapshot& snap) {
  double total = 0;
  for (const char* op : {"ping", "get", "put", "del", "batch", "scan",
                         "stats", "scan_open", "scan_next", "scan_close"}) {
    total += snap.Value(std::string("pipelsm_server_req_") + op);
  }
  return total;
}

void RenderDashboard(const Snapshot& cur, const Snapshot& prev,
                     const std::string& host, int port) {
  std::printf("\x1b[H\x1b[2J");  // home + clear
  std::printf("pipelsm_top — %s:%d\n\n", host.c_str(), port);

  const double req_rate = prev.ok ? (TotalRequests(cur) - TotalRequests(prev)) /
                                        std::chrono::duration<double>(
                                            cur.taken - prev.taken)
                                            .count()
                                  : 0;
  std::printf("requests  %8.0f/s   (put %.0f/s  get %.0f/s  scan %.0f/s)\n",
              req_rate, Rate(cur, prev, "pipelsm_server_req_put"),
              Rate(cur, prev, "pipelsm_server_req_get"),
              Rate(cur, prev, "pipelsm_server_req_scan"));
  std::printf("bytes     in %8.0f/s   out %8.0f/s\n",
              Rate(cur, prev, "pipelsm_server_bytes_in"),
              Rate(cur, prev, "pipelsm_server_bytes_out"));
  std::printf("conns     %.0f client   %.0f admin   inflight %.0f   "
              "slow_total %.0f\n",
              cur.Value("pipelsm_server_conns_active"),
              cur.Value("pipelsm_server_admin_conns_active"),
              cur.Value("pipelsm_server_requests_inflight"),
              cur.Value("pipelsm_server_slow_requests"));
  std::printf("draining  %s\n",
              cur.Value("pipelsm_server_draining") > 0 ? "YES" : "no");

  if (cur.Find("pipelsm_arbiter_io_lanes_in_use") != nullptr) {
    std::printf("arbiter   io_lanes %.0f in use   compute %.0f in use   "
                "waiting %.0f\n",
                cur.Value("pipelsm_arbiter_io_lanes_in_use"),
                cur.Value("pipelsm_arbiter_compute_workers_in_use"),
                cur.Value("pipelsm_arbiter_waiting"));
  }

  // Block-cache + cursor line, present when the server exports the read
  // path metrics (docs/READ_PATH.md). Sums across shards: the fleet
  // shares one block cache, but each sample family gates on presence.
  if (cur.Sum("pipelsm_cache_block_hits") >= 0) {
    const double hits = Rate(cur, prev, "pipelsm_cache_block_hits");
    const double misses = Rate(cur, prev, "pipelsm_cache_block_misses");
    const double lookups = hits + misses;
    std::printf("cache     %5.1f%% hit   %8.0f lookups/s   "
                "%.1f MiB used   evict %.0f/s\n",
                lookups > 0 ? 100.0 * hits / lookups : 0.0, lookups,
                cur.Sum("pipelsm_cache_block_usage_bytes") / (1 << 20),
                Rate(cur, prev, "pipelsm_cache_block_evictions"));
  }
  if (cur.Sum("pipelsm_cursor_opened") >= 0) {
    std::printf("cursors   %.0f open   opened %.0f   expired %.0f   "
                "batches %.0f/s\n",
                cur.Sum("pipelsm_cursor_active"),
                cur.Sum("pipelsm_cursor_opened"),
                cur.Sum("pipelsm_cursor_expired"),
                Rate(cur, prev, "pipelsm_cursor_batches"));
  }

  // Value-log line, present only when key-value separation is on
  // (--value_threshold). Sums across shards.
  if (cur.Sum("pipelsm_vlog_segments") >= 0) {
    const double bytes = cur.Sum("pipelsm_vlog_bytes");
    const double dead = cur.Sum("pipelsm_vlog_dead_bytes");
    std::printf("vlog      %.0f segs  %.1f MiB (%.0f%% dead)   "
                "gc %.0f runs   reclaimed %.1f MiB\n",
                cur.Sum("pipelsm_vlog_segments"), bytes / (1 << 20),
                bytes > 0 ? 100.0 * dead / bytes : 0.0,
                cur.Sum("pipelsm_vlog_gc_runs"),
                cur.Sum("pipelsm_vlog_gc_bytes_reclaimed") / (1 << 20));
  }

  const std::map<int, double> stalls =
      cur.PerShard("pipelsm_db_write_stall_state");
  if (!stalls.empty()) {
    std::printf("\n%-6s %12s %10s %-10s %s\n", "shard", "writes/s",
                "stall", "regime", "");
    for (const auto& [shard, stall] : stalls) {
      const std::map<std::string, std::string> label = {
          {"shard", std::to_string(shard)}};
      std::printf("%-6d %12.0f %10s %-10s\n", shard,
                  Rate(cur, prev, "pipelsm_server_write_ops", label),
                  StallName(stall), Regime(cur, shard).c_str());
    }
  } else {
    std::printf("\nengine    writes %8.0f/s   stall %s   regime %s\n",
                Rate(cur, prev, "pipelsm_server_req_put"),
                StallName(cur.Value("pipelsm_db_write_stall_state")),
                Regime(cur, -1).c_str());
  }
  std::fflush(stdout);
}

// One-line machine-readable snapshot for scripts/CI: TOP {json}.
void RenderOnce(const Snapshot& snap) {
  std::string out = "TOP {";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"requests_total\":%.0f,\"conns\":%.0f,\"admin_conns\":%.0f,"
                "\"inflight\":%.0f,\"slow_requests\":%.0f,\"draining\":%d",
                TotalRequests(snap),
                snap.Value("pipelsm_server_conns_active"),
                snap.Value("pipelsm_server_admin_conns_active"),
                snap.Value("pipelsm_server_requests_inflight"),
                snap.Value("pipelsm_server_slow_requests"),
                snap.Value("pipelsm_server_draining") > 0 ? 1 : 0);
  out += buf;
  if (snap.Find("pipelsm_arbiter_io_lanes_in_use") != nullptr) {
    std::snprintf(buf, sizeof(buf),
                  ",\"arbiter\":{\"io_lanes_in_use\":%.0f,"
                  "\"compute_workers_in_use\":%.0f,\"waiting\":%.0f}",
                  snap.Value("pipelsm_arbiter_io_lanes_in_use"),
                  snap.Value("pipelsm_arbiter_compute_workers_in_use"),
                  snap.Value("pipelsm_arbiter_waiting"));
    out += buf;
  }
  if (snap.Sum("pipelsm_cache_block_hits") >= 0) {
    std::snprintf(buf, sizeof(buf),
                  ",\"cache\":{\"block_hits\":%.0f,\"block_misses\":%.0f,"
                  "\"block_evictions\":%.0f,\"block_usage\":%.0f}",
                  snap.Sum("pipelsm_cache_block_hits"),
                  snap.Sum("pipelsm_cache_block_misses"),
                  snap.Sum("pipelsm_cache_block_evictions"),
                  snap.Sum("pipelsm_cache_block_usage_bytes"));
    out += buf;
  }
  if (snap.Sum("pipelsm_cursor_opened") >= 0) {
    std::snprintf(buf, sizeof(buf),
                  ",\"cursors\":{\"active\":%.0f,\"opened\":%.0f,"
                  "\"closed\":%.0f,\"expired\":%.0f,\"batches\":%.0f}",
                  snap.Sum("pipelsm_cursor_active"),
                  snap.Sum("pipelsm_cursor_opened"),
                  snap.Sum("pipelsm_cursor_closed"),
                  snap.Sum("pipelsm_cursor_expired"),
                  snap.Sum("pipelsm_cursor_batches"));
    out += buf;
  }
  if (snap.Sum("pipelsm_vlog_segments") >= 0) {
    std::snprintf(buf, sizeof(buf),
                  ",\"vlog\":{\"segments\":%.0f,\"bytes\":%.0f,"
                  "\"dead_bytes\":%.0f,\"gc_runs\":%.0f,"
                  "\"gc_bytes_reclaimed\":%.0f}",
                  snap.Sum("pipelsm_vlog_segments"),
                  snap.Sum("pipelsm_vlog_bytes"),
                  snap.Sum("pipelsm_vlog_dead_bytes"),
                  snap.Sum("pipelsm_vlog_gc_runs"),
                  snap.Sum("pipelsm_vlog_gc_bytes_reclaimed"));
    out += buf;
  }
  out += ",\"shards\":[";
  const std::map<int, double> stalls =
      snap.PerShard("pipelsm_db_write_stall_state");
  if (stalls.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "{\"shard\":-1,\"stall_state\":%.0f,\"regime\":\"%s\"}",
                  snap.Value("pipelsm_db_write_stall_state"),
                  Regime(snap, -1).c_str());
    out += buf;
  } else {
    bool first = true;
    for (const auto& [shard, stall] : stalls) {
      const std::map<std::string, std::string> label = {
          {"shard", std::to_string(shard)}};
      std::snprintf(buf, sizeof(buf),
                    "%s{\"shard\":%d,\"stall_state\":%.0f,"
                    "\"write_ops\":%.0f,\"regime\":\"%s\"}",
                    first ? "" : ",", shard, stall,
                    snap.Value("pipelsm_server_write_ops", label),
                    Regime(snap, shard).c_str());
      out += buf;
      first = false;
    }
  }
  out += "]}";
  std::printf("%s\n", out.c_str());
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  int interval_ms = 1000;
  int iterations = 0;
  bool once = false;
  for (int i = 1; i < argc; i++) {
    std::string v;
    if (ParseFlag(argv[i], "host", &host)) continue;
    if (ParseFlag(argv[i], "port", &v)) {
      port = std::atoi(v.c_str());
      continue;
    }
    if (ParseFlag(argv[i], "interval_ms", &v)) {
      interval_ms = std::atoi(v.c_str());
      continue;
    }
    if (ParseFlag(argv[i], "iterations", &v)) {
      iterations = std::atoi(v.c_str());
      continue;
    }
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
      continue;
    }
    std::fprintf(stderr, "unrecognized flag: %s (see header comment)\n",
                 argv[i]);
    return 2;
  }
  if (port <= 0) {
    std::fprintf(stderr,
                 "usage: pipelsm_top --port=ADMIN_PORT [--host=ADDR] "
                 "[--interval_ms=N] [--iterations=N] [--once]\n");
    return 2;
  }
  if (interval_ms < 10) interval_ms = 10;

  if (once) {
    const Snapshot snap = Poll(host, port);
    if (!snap.ok) {
      std::fprintf(stderr, "no /metrics from %s:%d\n", host.c_str(), port);
      return 1;
    }
    RenderOnce(snap);
    return 0;
  }

  Snapshot prev;
  for (int i = 0; iterations == 0 || i < iterations; i++) {
    const Snapshot cur = Poll(host, port);
    if (!cur.ok) {
      std::fprintf(stderr, "no /metrics from %s:%d (server gone?)\n",
                   host.c_str(), port);
      return 1;
    }
    RenderDashboard(cur, prev, host, port);
    prev = cur;
    if (iterations == 0 || i + 1 < iterations) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return 0;
}
