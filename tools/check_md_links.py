#!/usr/bin/env python3
"""Offline markdown link checker.

Walks every *.md in the repository and verifies that

  * relative link targets (`[text](path)`, `[text](path#anchor)`) resolve
    to an existing file or directory, and
  * anchors into markdown files (`#section`, `other.md#section`) match a
    heading in the target file, using GitHub's slugging rules.

External schemes (http/https/mailto/chrome) are deliberately NOT fetched
— CI must pass without network — but are still syntax-checked. Exit
status is the number of broken links (capped at process conventions by
the shell), with one `file:line: message` diagnostic per problem.

Usage: tools/check_md_links.py [root]         (default: repo root)
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", ".claude", "third_party"}
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
# Inline links; the target stops at the first unescaped ')' or space
# (markdown titles in links are not used in this repo).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")


def find_md_files(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def github_slug(heading):
    """GitHub's anchor slug: strip formatting, lowercase, spaces->dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path):
    """All anchor slugs a markdown file exposes, with dedup suffixes."""
    slugs = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path):
    """Yield (line_number, target) for every inline link outside code."""
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            scrubbed = re.sub(r"`[^`]*`", "", line)  # drop inline code
            for m in LINK_RE.finditer(scrubbed):
                yield lineno, m.group(1)


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), ".."))
    errors = []
    slug_cache = {}

    def slugs_for(path):
        if path not in slug_cache:
            slug_cache[path] = heading_slugs(path)
        return slug_cache[path]

    files = find_md_files(root)
    checked = 0
    for md in files:
        for lineno, target in iter_links(md):
            checked += 1
            where = f"{os.path.relpath(md, root)}:{lineno}"
            if SCHEME_RE.match(target):
                continue  # external; not fetched (offline checker)
            frag = ""
            if "#" in target:
                target, frag = target.split("#", 1)
            if target:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(md), target))
                if not os.path.exists(dest):
                    errors.append(f"{where}: broken link: {target}")
                    continue
            else:
                dest = md  # pure-anchor link into this file
            if frag:
                if not dest.endswith(".md") or os.path.isdir(dest):
                    continue  # anchors into non-markdown: not checkable
                if frag.lower() not in slugs_for(dest):
                    errors.append(
                        f"{where}: missing anchor "
                        f"#{frag} in {os.path.relpath(dest, root)}")

    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {checked} links in {len(files)} markdown files: "
          f"{len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
