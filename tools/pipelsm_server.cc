// pipelsm_server: stand-alone network daemon serving one DB over the
// binary protocol (docs/SERVER.md).
//
//   pipelsm_server --db=PATH [--flag=value ...]
//
// Flags:
//   --db=PATH               DB directory (default /tmp/pipelsm_server)
//   --host=ADDR --port=N    listen address (default 0.0.0.0:7380; port 0
//                           binds an ephemeral port and prints it)
//   --io_threads=N          epoll I/O loops (default 2)
//   --workers=N             read-path worker threads (default 4)
//   --compaction=scp|pcp|sppcp|cppcp
//   --compaction_style=leveled|tiered|lazy
//                           which CompactionPicker shapes jobs (must not
//                           change across reopens of one directory)
//   --tiered_run_count=N    sorted runs a tiered/lazy level accumulates
//                           before merging (default 4)
//   --max_subcompactions=N  key-range fan-out per compaction job
//                           (default 1 = off)
//   --write_buffer_kb=N --file_kb=N --subtask_kb=N
//   --compute_parallelism=N --io_parallelism=N --queue_depth=N
//   --group_window_micros=N group-commit gather window (default 100)
//   --nosync                WriteOptions::sync=false for group commits
//   --create_if_missing=0|1 (default 1)
//   --value_threshold=N     key-value separation: values >= N bytes live
//                           in the value log (0 = off, docs/VALUE_LOG.md)
//   --cache_size=N          block cache capacity in bytes (default 8MiB;
//                           sharded fleets share ONE cache of this size —
//                           docs/READ_PATH.md)
//   --cache_shards=N        block cache lock shards (0 = auto from CPU
//                           count, 1 = single-mutex baseline)
//   --bloom_bits_per_key=N  bloom filter bits per key (0 = no filters)
//   --filter_partition_bytes=N
//                           partitioned-filter partition size (default 4096)
//   --cursor_ttl_micros=N   idle streaming cursors expire after this
//                           (default 60s; 0 = never)
//   --max_cursors=N         open streaming cursor cap (default 1024)
//   --max_scan_entries=N --max_scan_bytes=N
//                           per-reply caps for SCAN and cursor batches
//                           (defaults 10000 / 4MiB)
//   --shards=N              serve a range-sharded fleet of N engines
//                           under one root (default 1 = plain DB)
//   --shard_boundaries=a,b  comma-separated boundary keys (N-1 of them,
//                           sorted; required on first open with
//                           --shards>1, optional on reopen — the SHARDS
//                           manifest wins; docs/SHARDING.md)
//   --arbiter_io_lanes=N --arbiter_compute_workers=N
//                           fleet compaction budget (defaults 4/4)
//   --no_arbiter            per-shard free-for-all compaction admission
//   --admin_port=N          HTTP observability endpoint (GET /metrics
//                           /stats /advisor /arbiter /timeseries
//                           /healthz; docs/OBSERVABILITY.md). -1 =
//                           disabled (default); 0 = ephemeral, printed
//                           at startup
//   --slow_request_micros=N requests slower than this end to end log one
//                           "EVENT slow_request" breakdown line
//                           (default 1s; 0 = off)
//   --trace_file=PATH       sample requests into a trace collector and
//                           write Chrome trace JSON there on shutdown
//   --trace_sample_every=N  sample every Nth request (default 64)
//
// SIGTERM/SIGINT triggers a graceful drain: stop accepting, answer every
// accepted request, flush sockets, quiesce compactions, close the DB,
// exit 0. SIGPIPE is ignored process-wide so a peer closing mid-reply
// surfaces as an EPIPE send error on that connection, not process death.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/db/db.h"
#include "src/obs/trace.h"
#include "src/server/server.h"
#include "src/shard/sharded_db.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void HandleShutdownSignal(int sig) {
  const char b = static_cast<char>(sig);
  [[maybe_unused]] ssize_t r = ::write(g_signal_pipe[1], &b, 1);
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

template <typename T>
bool ParseNumFlag(const char* arg, const char* name, T* out) {
  std::string v;
  if (!ParseFlag(arg, name, &v)) return false;
  *out = static_cast<T>(std::strtoull(v.c_str(), nullptr, 10));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path = "/tmp/pipelsm_server";
  std::string compaction = "pcp";
  std::string compaction_style = "leveled";
  int tiered_run_count = 4;
  int max_subcompactions = 1;
  size_t write_buffer_kb = 4096;
  size_t file_kb = 2048;
  size_t subtask_kb = 512;
  int compute_parallelism = 1;
  int io_parallelism = 1;
  size_t queue_depth = 4;
  size_t value_threshold = 0;
  size_t cache_size = 8 << 20;
  size_t cache_shards = 0;
  int bloom_bits_per_key = 0;
  size_t filter_partition_bytes = 4096;
  int create_if_missing = 1;
  size_t shards = 1;
  std::string shard_boundaries;
  bool arbiter = true;
  int arbiter_io_lanes = 4;
  int arbiter_compute_workers = 4;
  std::string trace_file;
  pipelsm::server::ServerOptions sopts;

  for (int i = 1; i < argc; i++) {
    if (ParseFlag(argv[i], "db", &db_path) ||
        ParseFlag(argv[i], "host", &sopts.host) ||
        ParseNumFlag(argv[i], "port", &sopts.port) ||
        ParseNumFlag(argv[i], "io_threads", &sopts.num_io_threads) ||
        ParseNumFlag(argv[i], "workers", &sopts.num_workers) ||
        ParseFlag(argv[i], "compaction", &compaction) ||
        ParseFlag(argv[i], "compaction_style", &compaction_style) ||
        ParseNumFlag(argv[i], "tiered_run_count", &tiered_run_count) ||
        ParseNumFlag(argv[i], "max_subcompactions", &max_subcompactions) ||
        ParseNumFlag(argv[i], "write_buffer_kb", &write_buffer_kb) ||
        ParseNumFlag(argv[i], "file_kb", &file_kb) ||
        ParseNumFlag(argv[i], "subtask_kb", &subtask_kb) ||
        ParseNumFlag(argv[i], "compute_parallelism", &compute_parallelism) ||
        ParseNumFlag(argv[i], "io_parallelism", &io_parallelism) ||
        ParseNumFlag(argv[i], "queue_depth", &queue_depth) ||
        ParseNumFlag(argv[i], "group_window_micros",
                     &sopts.group_commit_window_micros) ||
        ParseNumFlag(argv[i], "create_if_missing", &create_if_missing) ||
        ParseNumFlag(argv[i], "value_threshold", &value_threshold) ||
        ParseNumFlag(argv[i], "cache_size", &cache_size) ||
        ParseNumFlag(argv[i], "cache_shards", &cache_shards) ||
        ParseNumFlag(argv[i], "bloom_bits_per_key", &bloom_bits_per_key) ||
        ParseNumFlag(argv[i], "filter_partition_bytes",
                     &filter_partition_bytes) ||
        ParseNumFlag(argv[i], "cursor_ttl_micros", &sopts.cursor_ttl_micros) ||
        ParseNumFlag(argv[i], "max_cursors", &sopts.max_cursors) ||
        ParseNumFlag(argv[i], "max_scan_entries", &sopts.max_scan_entries) ||
        ParseNumFlag(argv[i], "max_scan_bytes", &sopts.max_scan_bytes) ||
        ParseNumFlag(argv[i], "shards", &shards) ||
        ParseFlag(argv[i], "shard_boundaries", &shard_boundaries) ||
        ParseNumFlag(argv[i], "arbiter_io_lanes", &arbiter_io_lanes) ||
        ParseNumFlag(argv[i], "arbiter_compute_workers",
                     &arbiter_compute_workers) ||
        ParseNumFlag(argv[i], "slow_request_micros",
                     &sopts.slow_request_micros) ||
        ParseFlag(argv[i], "trace_file", &trace_file) ||
        ParseNumFlag(argv[i], "trace_sample_every",
                     &sopts.trace_sample_every)) {
      continue;
    }
    if (std::strncmp(argv[i], "--admin_port=", 13) == 0) {
      sopts.admin_port = std::atoi(argv[i] + 13);  // -1 stays "disabled"
      continue;
    }
    if (std::strcmp(argv[i], "--nosync") == 0) {
      sopts.sync_writes = false;
      continue;
    }
    if (std::strcmp(argv[i], "--no_arbiter") == 0) {
      arbiter = false;
      continue;
    }
    std::fprintf(stderr, "unrecognized flag: %s (see header comment)\n",
                 argv[i]);
    return 2;
  }

  // A peer that disappears mid-reply must cost one connection, not the
  // process.
  ::signal(SIGPIPE, SIG_IGN);

  pipelsm::Options options;
  options.create_if_missing = (create_if_missing != 0);
  options.write_buffer_size = write_buffer_kb << 10;
  options.max_file_size = file_kb << 10;
  options.subtask_bytes = subtask_kb << 10;
  options.compute_parallelism = compute_parallelism;
  options.io_parallelism = io_parallelism;
  options.pipeline_queue_depth = queue_depth;
  options.value_separation_threshold = value_threshold;
  options.block_cache_size = cache_size;
  options.block_cache_shards = cache_shards;
  options.bloom_bits_per_key = bloom_bits_per_key;
  options.filter_partition_bytes = filter_partition_bytes;
  options.tiered_run_count = tiered_run_count;
  options.max_subcompactions = max_subcompactions;
  if (compaction_style == "leveled") {
    options.compaction_style = pipelsm::CompactionStyle::kLeveled;
  } else if (compaction_style == "tiered") {
    options.compaction_style = pipelsm::CompactionStyle::kTiered;
  } else if (compaction_style == "lazy") {
    options.compaction_style = pipelsm::CompactionStyle::kLazyLeveling;
  } else {
    std::fprintf(stderr, "unknown --compaction_style=%s\n",
                 compaction_style.c_str());
    return 2;
  }
  if (compaction == "scp") {
    options.compaction_mode = pipelsm::CompactionMode::kSCP;
  } else if (compaction == "pcp") {
    options.compaction_mode = pipelsm::CompactionMode::kPCP;
  } else if (compaction == "sppcp") {
    options.compaction_mode = pipelsm::CompactionMode::kSPPCP;
  } else if (compaction == "cppcp") {
    options.compaction_mode = pipelsm::CompactionMode::kCPPCP;
  } else {
    std::fprintf(stderr, "unknown --compaction=%s\n", compaction.c_str());
    return 2;
  }

  // The gate goes into the DB's listeners before Open, so write stalls
  // reach the server's I/O loops from the first request.
  pipelsm::server::WriteStallGate stall_gate;
  options.listeners.push_back(&stall_gate);
  sopts.stall_gate = &stall_gate;

  std::unique_ptr<pipelsm::DB> db;
  pipelsm::Status s;
  if (shards > 1 || !shard_boundaries.empty()) {
    pipelsm::shard::ShardedOptions shopts;
    shopts.num_shards = shards;
    for (size_t pos = 0; pos < shard_boundaries.size();) {
      const size_t comma = shard_boundaries.find(',', pos);
      const size_t end =
          comma == std::string::npos ? shard_boundaries.size() : comma;
      shopts.boundary_keys.push_back(shard_boundaries.substr(pos, end - pos));
      pos = end + 1;
    }
    if (shards <= 1 && !shopts.boundary_keys.empty()) {
      shopts.num_shards = shopts.boundary_keys.size() + 1;  // inferred
    }
    shopts.enable_arbiter = arbiter;
    shopts.arbiter.budget.io_lanes = arbiter_io_lanes;
    shopts.arbiter.budget.compute_workers = arbiter_compute_workers;
    pipelsm::shard::ShardedDB* raw = nullptr;
    s = pipelsm::shard::ShardedDB::Open(options, shopts, db_path, &raw);
    if (s.ok()) db.reset(raw);
  } else {
    pipelsm::DB* raw = nullptr;
    s = pipelsm::DB::Open(options, db_path, &raw);
    if (s.ok()) db.reset(raw);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "open %s: %s\n", db_path.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<pipelsm::obs::TraceCollector> trace;
  if (!trace_file.empty()) {
    trace = std::make_unique<pipelsm::obs::TraceCollector>();
    sopts.trace = trace.get();
  }
  pipelsm::server::Server server(db.get(), sopts);

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = HandleShutdownSignal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("pipelsm_server listening on %s:%d (db=%s, shards=%zu)\n",
              sopts.host.c_str(), server.port(), db_path.c_str(),
              shards > 1 ? shards : 1);
  if (server.admin_port() >= 0) {
    std::printf("admin endpoint on %s:%d (/metrics /stats /healthz)\n",
                sopts.host.c_str(), server.admin_port());
  }
  std::fflush(stdout);

  // Block until SIGTERM/SIGINT.
  char sig = 0;
  while (true) {
    const ssize_t r = ::read(g_signal_pipe[0], &sig, 1);
    if (r == 1) break;
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
  }
  std::printf("signal %d: draining\n", sig);
  std::fflush(stdout);

  server.Drain();
  if (trace) {
    pipelsm::Status ts = trace->WriteFile(trace_file);
    if (!ts.ok()) {
      std::fprintf(stderr, "trace dump %s: %s\n", trace_file.c_str(),
                   ts.ToString().c_str());
    }
  }
  s = db->WaitForCompactions();
  if (!s.ok()) {
    std::fprintf(stderr, "compaction drain: %s\n", s.ToString().c_str());
  }
  db.reset();
  std::printf("clean shutdown\n");
  return 0;
}
