// crash_test: randomized crash/recovery loop over the fault-injection Env
// (docs/FAULT_INJECTION.md).
//
// Each iteration opens the DB, runs a keyed write workload (puts +
// deletes, every sync_every-th op with WriteOptions::sync), and arms one
// random crash point — an Env operation (WAL append/sync, table or
// manifest create, rename, close, dir sync) that kills the "process"
// after a random countdown. When the crash fires, every later Env call
// fails, the DB object is torn down, unsynced bytes are dropped to
// emulate power loss, and the DB is reopened cleanly. The run fails if:
//
//   1. a reopen after a crash does not succeed,
//   2. any key whose write was acknowledged under sync is lost,
//   3. any delete acknowledged under sync resurrects an old value
//      (unless a later unsynced write legitimately re-put it),
//   4. a key reads back a value that was never written for it, or
//   5. table files leak: after reopen + compaction drain, a .pst file on
//      disk is neither live in the version nor pending.
//
// The durability model: a successful sync write persists every prior WAL
// record; power loss keeps some op-prefix of the unsynced tail. So after
// a crash each key must read back its last synced value or any later
// unsynced value (background flushes may persist past the sync barrier).
//
//   crash_test [--iterations=N] [--ops=N] [--mode=all|scp|pcp|sppcp|cppcp]
//              [--env=sim|posix] [--db=PATH] [--seed=N] [--sync_every=N]
//              [--value_threshold=N] [--verbose]
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/db/filename.h"
#include "src/env/fault_env.h"
#include "src/env/sim_env.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace pipelsm {
namespace {

struct Flags {
  int iterations = 200;
  int ops = 2000;
  std::string mode = "all";
  std::string env = "sim";
  std::string db = "/crashdb";
  uint32_t seed = 301;
  int sync_every = 16;
  // > 0 turns on key-value separation: values this size or larger go to
  // the value log, vlog-targeted crash points join the rotation, and the
  // workload mixes in 4 KiB values plus periodic CompactValueLog() calls.
  int value_threshold = 0;
  bool verbose = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  std::string v;
  if (!ParseFlag(arg, name, &v)) return false;
  *out = std::atoi(v.c_str());
  return true;
}

// What a key may legally read back after a crash: the value at the last
// successful sync barrier plus everything acknowledged since (any
// op-prefix of the unsynced WAL tail may survive power loss).
struct KeyState {
  bool synced_exists = false;
  std::string synced_value;
  // Acknowledged but not yet covered by a sync barrier, oldest first.
  std::vector<std::pair<bool, std::string>> pending;  // (exists, value)

  bool Allows(bool exists, const std::string& value) const {
    if (exists == synced_exists && (!exists || value == synced_value)) {
      return true;
    }
    for (const auto& [e, v] : pending) {
      if (e == exists && (!exists || v == value)) return true;
    }
    return false;
  }

  std::string AllowedToString() const {
    std::string out = synced_exists ? "\"" + synced_value + "\"" : "<absent>";
    for (const auto& [e, v] : pending) {
      out += e ? " | \"" + v + "\"" : " | <absent>";
    }
    return out;
  }
};

using Model = std::map<std::string, KeyState>;

// A successful sync persists every previously acknowledged record.
void PromoteAll(Model* model) {
  for (auto& [key, st] : *model) {
    (void)key;
    if (!st.pending.empty()) {
      st.synced_exists = st.pending.back().first;
      st.synced_value = st.pending.back().second;
      st.pending.clear();
    }
  }
}

// Crash-point candidates with a countdown ceiling proportional to how
// often the op fires, so rare ops (renames, dir syncs) still get hit
// within one iteration's workload.
struct CrashPoint {
  FaultOp op;
  int max_countdown;
  const char* path_filter = nullptr;  // restrict the op to matching paths
};
const CrashPoint kCrashPoints[] = {
    {FaultOp::kAppend, 300},        // WAL records + table blocks
    {FaultOp::kSync, 30},           // WAL sync + table/manifest sync
    {FaultOp::kNewWritableFile, 8}, // WAL roll, flush + compaction outputs
    {FaultOp::kClose, 8},
    {FaultOp::kRenameFile, 2},      // CURRENT install
    {FaultOp::kSyncDir, 2},
};
// Joined in when --value_threshold is set: crash inside vlog appends
// (user writes + GC rewrites), vlog syncs (the pre-WAL durability
// barrier), and segment retirement unlinks.
const CrashPoint kVlogCrashPoints[] = {
    {FaultOp::kAppend, 40, ".vlog"},
    {FaultOp::kSync, 10, ".vlog"},
    {FaultOp::kRemoveFile, 2, ".vlog"},
};

CompactionMode ModeFromName(const std::string& name) {
  if (name == "scp") return CompactionMode::kSCP;
  if (name == "pcp") return CompactionMode::kPCP;
  if (name == "sppcp") return CompactionMode::kSPPCP;
  if (name == "cppcp") return CompactionMode::kCPPCP;
  std::fprintf(stderr, "unknown mode '%s'\n", name.c_str());
  std::exit(2);
}

class CrashTester {
 public:
  CrashTester(const Flags& flags, CompactionMode mode, Env* base)
      : flags_(flags), mode_(mode), fault_(base, flags.seed), rng_(flags.seed) {
    options_.env = &fault_;
    options_.create_if_missing = true;
    options_.compaction_mode = mode;
    options_.write_buffer_size = 64 << 10;  // small, so crashes land inside
    options_.max_file_size = 64 << 10;      // flushes and compactions often
    options_.max_background_retries = 1;    // fail fast once crashed
    options_.background_retry_backoff_micros = 100;
    options_.background_retry_backoff_max_micros = 100;
    crash_points_.assign(std::begin(kCrashPoints), std::end(kCrashPoints));
    if (flags.value_threshold > 0) {
      options_.value_separation_threshold =
          static_cast<size_t>(flags.value_threshold);
      options_.vlog_segment_size = 64 << 10;  // several segments per iter
      crash_points_.insert(crash_points_.end(), std::begin(kVlogCrashPoints),
                           std::end(kVlogCrashPoints));
    }
  }

  // Returns the number of verification failures.
  int Run() {
    DestroyDB(flags_.db, options_);
    int failures = 0;
    for (int iter = 0; iter < flags_.iterations; iter++) {
      failures += RunIteration(iter);
      if (failures > 10) break;  // drowning: stop the noise
    }
    std::printf(
        "[%s] %d iterations: %d crashes fired, %" PRIu64
        " injected failures, %d ops acked, %d verification failures\n",
        CompactionModeName(mode_), flags_.iterations, crashes_fired_,
        fault_.injected_failures(), acked_ops_, failures);
    return failures;
  }

 private:
  int RunIteration(int iter) {
    // Arm one crash point before open, so recovery/flush/compaction code
    // paths can be hit too, not just the write path.
    const CrashPoint& point =
        crash_points_[rng_.Uniform(static_cast<int>(crash_points_.size()))];
    const FaultOp op = point.op;
    const int countdown =
        1 + static_cast<int>(rng_.Uniform(point.max_countdown));
    fault_.ClearFaults();
    fault_.CrashAfter(op, countdown);
    if (point.path_filter != nullptr) {
      fault_.SetPathFilter(op, point.path_filter);
    }
    if (flags_.verbose) {
      std::printf("iter %d: crash after %d x %s%s%s\n", iter, countdown,
                  FaultOpName(op), point.path_filter != nullptr ? " @" : "",
                  point.path_filter != nullptr ? point.path_filter : "");
    }

    DB* raw = nullptr;
    Status s = DB::Open(options_, flags_.db, &raw);
    std::unique_ptr<DB> db(raw);
    if (s.ok()) {
      RunWorkload(db.get(), iter);
    }
    // else: the crash fired inside Open/recovery — nothing was acked.
    db.reset();

    if (fault_.crashed()) crashes_fired_++;

    // Power loss: drop unsynced bytes, clear the crash, disarm rules.
    fault_.ClearFaults();
    Status drop = fault_.DropUnsyncedAndReset();
    if (!drop.ok()) {
      std::fprintf(stderr, "iter %d: DropUnsyncedAndReset: %s\n", iter,
                   drop.ToString().c_str());
      return 1;
    }

    // Reopen cleanly and verify the model.
    raw = nullptr;
    s = DB::Open(options_, flags_.db, &raw);
    db.reset(raw);
    if (!s.ok()) {
      std::fprintf(stderr, "iter %d: reopen after crash failed: %s\n", iter,
                   s.ToString().c_str());
      return 1;
    }
    int failures = Verify(db.get(), iter);
    failures += CheckNoLeakedTables(db.get(), iter);
    return failures;
  }

  void RunWorkload(DB* db, int iter) {
    for (int op = 0; op < flags_.ops && !fault_.crashed(); op++) {
      const std::string key =
          "key-" + std::to_string(rng_.Uniform(400));
      const bool is_delete = rng_.OneIn(10);
      const bool sync = (op % flags_.sync_every) == flags_.sync_every - 1;
      WriteOptions wo;
      wo.sync = sync;
      Status s;
      std::string value;
      if (is_delete) {
        s = db->Delete(wo, key);
      } else {
        // Padded so a full iteration overflows the write buffer and
        // rotates the WAL mid-workload (the rotation fsync path). With
        // separation on, half the values are large enough to take the
        // value-log path instead.
        const bool separated =
            flags_.value_threshold > 0 && rng_.OneIn(2);
        value = "v" + std::to_string(iter) + "-" + std::to_string(op) +
                std::string(separated ? 4096 : 80, 'p');
        s = db->Put(wo, key, value);
      }
      if (!s.ok()) {
        // Not acknowledged: must not be required to survive (a rejected
        // write also never reached the WAL, so it cannot survive as a
        // pending value either).
        continue;
      }
      acked_ops_++;
      KeyState& st = model_[key];
      st.pending.emplace_back(!is_delete, value);
      if (sync) {
        // This sync persisted every record before it.
        PromoteAll(&model_);
      }
      // Periodically drive GC so rewrite commits and segment retirement
      // sit inside the crash window too.
      if (flags_.value_threshold > 0 && (op % 257) == 256 &&
          !fault_.crashed()) {
        db->CompactValueLog();
      }
    }
  }

  int Verify(DB* db, int iter) {
    int failures = 0;
    for (auto& [key, st] : model_) {
      std::string value;
      Status s = db->Get(ReadOptions(), key, &value);
      bool exists = s.ok();
      if (!s.ok() && !s.IsNotFound()) {
        std::fprintf(stderr, "iter %d: Get(%s) error: %s\n", iter,
                     key.c_str(), s.ToString().c_str());
        failures++;
        continue;
      }
      if (!st.Allows(exists, value)) {
        std::fprintf(stderr,
                     "iter %d: key %s read back %s; allowed: %s\n", iter,
                     key.c_str(),
                     exists ? ("\"" + value + "\"").c_str() : "<absent>",
                     st.AllowedToString().c_str());
        failures++;
      }
      // A successful reopen re-persisted whatever survived; collapse the
      // model onto the observed state.
      st.synced_exists = exists;
      st.synced_value = value;
      st.pending.clear();
    }
    return failures;
  }

  // After reopen + compaction drain every table file on disk must be live
  // in the current version — anything else leaked from a failed job.
  int CheckNoLeakedTables(DB* db, int iter) {
    Status s = db->WaitForCompactions();
    if (!s.ok()) {
      std::fprintf(stderr, "iter %d: WaitForCompactions: %s\n", iter,
                   s.ToString().c_str());
      return 1;
    }
    std::string sstables;
    if (!db->GetProperty("pipelsm.sstables", &sstables)) return 1;
    // Version::DebugString lines look like " NUMBER:SIZE[key .. key]".
    std::set<uint64_t> live;
    const char* p = sstables.c_str();
    while (*p != '\0') {
      if ((p == sstables.c_str() || p[-1] == '\n' || p[-1] == ' ') &&
          *p >= '0' && *p <= '9') {
        char* end = nullptr;
        uint64_t n = std::strtoull(p, &end, 10);
        if (end != nullptr && *end == ':') {
          live.insert(n);
          p = end;
          continue;
        }
      }
      p++;
    }

    // With separation on, every .vlog segment on disk must be tracked by
    // the manager ("number":N in the pipelsm.vlog JSON) — anything else
    // leaked from a crashed GC rewrite or half-finished retirement.
    std::string vlog_json;
    if (flags_.value_threshold > 0 &&
        !db->GetProperty("pipelsm.vlog", &vlog_json)) {
      return 1;
    }

    std::vector<std::string> children;
    if (!fault_.GetChildren(flags_.db, &children).ok()) return 1;
    int leaks = 0;
    for (const std::string& c : children) {
      uint64_t number;
      FileType type;
      if (!ParseFileName(c, &number, &type)) continue;
      if (type == kTableFile && live.find(number) == live.end()) {
        std::fprintf(stderr, "iter %d: leaked table file %s\n", iter,
                     c.c_str());
        leaks++;
      } else if (type == kVlogFile &&
                 vlog_json.find("\"number\":" + std::to_string(number)) ==
                     std::string::npos) {
        std::fprintf(stderr, "iter %d: leaked vlog segment %s\n", iter,
                     c.c_str());
        leaks++;
      }
    }
    if (leaks > 0 && flags_.verbose) {
      std::fprintf(stderr, "--- live version at iter %d ---\n%s", iter,
                   sstables.c_str());
      std::string current;
      ReadFileToString(&fault_, flags_.db + "/CURRENT", &current);
      std::fprintf(stderr, "CURRENT -> %s", current.c_str());
      std::string dir;
      for (const std::string& c : children) dir += " " + c;
      std::fprintf(stderr, "dir:%s\n", dir.c_str());
    }
    return leaks;
  }

  const Flags flags_;
  const CompactionMode mode_;
  std::vector<CrashPoint> crash_points_;
  FaultInjectionEnv fault_;
  Random rng_;
  Options options_;
  Model model_;
  int crashes_fired_ = 0;
  int acked_ops_ = 0;
};

int RunAll(const Flags& flags) {
  std::vector<CompactionMode> modes;
  if (flags.mode == "all") {
    modes = {CompactionMode::kSCP, CompactionMode::kPCP,
             CompactionMode::kSPPCP, CompactionMode::kCPPCP};
  } else {
    modes = {ModeFromName(flags.mode)};
  }

  int failures = 0;
  for (CompactionMode mode : modes) {
    Flags per_mode = flags;
    per_mode.iterations =
        std::max(1, flags.iterations / static_cast<int>(modes.size()));
    per_mode.seed = flags.seed + static_cast<uint32_t>(mode) * 7919;
    if (flags.env == "sim") {
      SimEnv env;
      CrashTester tester(per_mode, mode, &env);
      failures += tester.Run();
    } else if (flags.env == "posix") {
      CrashTester tester(per_mode, mode, Env::Posix());
      failures += tester.Run();
    } else {
      std::fprintf(stderr, "unknown env '%s'\n", flags.env.c_str());
      return 2;
    }
  }
  if (failures == 0) {
    std::printf("crash_test PASS\n");
  } else {
    std::printf("crash_test FAIL: %d verification failures\n", failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pipelsm

int main(int argc, char** argv) {
  pipelsm::Flags flags;
  for (int i = 1; i < argc; i++) {
    std::string v;
    if (pipelsm::ParseIntFlag(argv[i], "iterations", &flags.iterations) ||
        pipelsm::ParseIntFlag(argv[i], "ops", &flags.ops) ||
        pipelsm::ParseFlag(argv[i], "mode", &flags.mode) ||
        pipelsm::ParseFlag(argv[i], "env", &flags.env) ||
        pipelsm::ParseFlag(argv[i], "db", &flags.db) ||
        pipelsm::ParseIntFlag(argv[i], "sync_every", &flags.sync_every) ||
        pipelsm::ParseIntFlag(argv[i], "value_threshold",
                              &flags.value_threshold)) {
      continue;
    } else if (pipelsm::ParseFlag(argv[i], "seed", &v)) {
      flags.seed = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      flags.verbose = true;
      pipelsm::SetLogLevel(pipelsm::LogLevel::kDebug);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (flags.env == "posix" && flags.db == "/crashdb") {
    flags.db = "/tmp/pipelsm_crash_test";
  }
  if (flags.sync_every < 1) flags.sync_every = 1;
  return pipelsm::RunAll(flags);
}
