// db_bench: the measurement CLI (mirrors LevelDB's tool of the same name,
// which the paper's evaluation drove). Runs a comma-separated list of
// workloads against one DB instance and reports throughput + latency
// percentiles per workload.
//
//   db_bench [--flag=value ...]
//
// Workloads (--benchmarks=, run left to right, default
// "fillrandom,readrandom,overwrite,readseq,stats"):
//   fillseq      insert --num entries in key order
//   fillrandom   insert --num entries in a pseudo-random order
//   overwrite    re-insert the same key space (new values)
//   readrandom   --reads random point lookups (verified)
//   readmissing  --reads lookups for keys that do not exist
//   readseq      one full forward scan
//   readreverse  one full backward scan
//   deleterandom delete --reads random keys
//   mixedwhilewriting
//                --reads mixed ops: each op is a Get with probability
//                --read_ratio% (else a Put), keys drawn per --dist over
//                the --num key space. The same workload bench_server
//                drives over the wire, so in-process vs served numbers in
//                EXPERIMENTS.md are apples to apples.
//   compact      CompactRange over everything
//   wait         drain background compactions
//   stats        print the DB's internal stats + compaction profile
//   metrics      print the pipeline metrics registry as JSON
//                (GetProperty "pipelsm.metrics" — see docs/OBSERVABILITY.md)
//
// Key flags:
//   --db=PATH                DB directory (default /tmp/pipelsm_bench)
//   --device=posix|ssd|hdd|hddx<k>|null
//                            storage: the real FS or a simulated device
//   --compaction=scp|pcp|sppcp|cppcp
//   --compaction_style=leveled|tiered|lazy
//                            which-to-compact policy (docs/COMPACTION.md)
//   --tiered_run_count=N     runs per level before tiered/lazy compacts
//   --max_subcompactions=N   key-range fan-out ceiling for one job
//   --num=N --reads=N --key_size=N --value_size=N --batch=N
//   --value_threshold=N      key-value separation: values >= N bytes go
//                            to the value log (0 = off)
//   --write_buffer_kb=N --file_kb=N --subtask_kb=N --block=N
//   --compute_parallelism=N --io_parallelism=N --queue_depth=N
//   --adaptive               per-job executor choice by the compaction
//                            scheduler (Options::adaptive_compaction)
//   --max_compute_workers=N --max_stripe_width=N
//                            adaptive bounds on the chosen k
//   --hysteresis=N           consecutive agreeing admissions before the
//                            scheduler switches executor
//   --warmup_jobs=N          compactions digested before adapting
//   --bloom_bits=N           per-key bloom bits (0 = no filters)
//   --bloom_bits_per_key=N   same, via Options::bloom_bits_per_key (the
//                            DB owns the policy; exercises the knob the
//                            server exposes)
//   --filter_partition_bytes=N
//                            partitioned-filter partition size
//   --cache_size=N           block cache capacity, bytes (default 8MiB)
//   --cache_shards=N         block cache lock shards (0 = auto,
//                            1 = single-mutex baseline)
//   --read_ratio=N           mixedwhilewriting: percent of ops that are
//                            Gets (default 50)
//   --dist=uniform|zipfian   mixedwhilewriting key distribution
//   --zipf_theta=X           Zipfian skew (default 0.99)
//   --value_compressibility=X
//                            fraction of each value that compresses away
//                            (default 0.5; 0 = incompressible)
//   --dilation=X             compaction slow-motion factor
//   --histogram              print full latency histograms
//   --trace_path=PATH        write a Chrome trace_event JSON of every
//                            compaction/flush pipeline (load the file in
//                            chrome://tracing or https://ui.perfetto.dev)
//   --metrics_json=PATH      dump the final metrics registry JSON to PATH
//   --stats_interval_seconds=N
//                            print pipelsm.stats to stdout every N seconds
//                            while workloads run, and turn on the DB's own
//                            periodic stats dump (Options::
//                            stats_dump_period_sec) so LOG gets them too
//   --advisor                print `ADVISOR <json>` (the pipelsm.advisor
//                            bottleneck verdict) and `SCHEDULER <json>`
//                            (the pipelsm.scheduler decision state) after
//                            every workload
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/db/db.h"
#include "src/db/write_batch.h"
#include "src/env/sim_env.h"
#include "src/table/filter_policy.h"
#include "src/util/histogram.h"
#include "src/util/stopwatch.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

struct Flags {
  std::string benchmarks = "fillrandom,readrandom,overwrite,readseq,stats";
  std::string db = "/tmp/pipelsm_bench";
  std::string device = "posix";
  std::string compaction = "pcp";
  std::string compaction_style = "leveled";
  int tiered_run_count = 4;
  int max_subcompactions = 1;
  uint64_t num = 100000;
  uint64_t reads = 10000;
  size_t key_size = 16;
  size_t value_size = 100;
  size_t value_threshold = 0;  // 0 = key-value separation off
  uint64_t batch = 1;
  size_t write_buffer_kb = 4096;
  size_t file_kb = 2048;
  size_t subtask_kb = 512;
  size_t block = 4096;
  int compute_parallelism = 1;
  int io_parallelism = 1;
  size_t queue_depth = 4;
  bool adaptive = false;
  int max_compute_workers = 4;
  int max_stripe_width = 4;
  int hysteresis = 3;
  int warmup_jobs = 2;
  int bloom_bits = 0;
  int bloom_bits_per_key = 0;
  size_t filter_partition_bytes = 4096;
  size_t cache_size = 8 << 20;
  size_t cache_shards = 0;
  int read_ratio = 50;
  std::string dist = "uniform";
  double zipf_theta = 0.99;
  double value_compressibility = 0.5;
  double dilation = 1.0;
  bool histogram = false;
  uint32_t seed = 301;
  std::string trace_path;
  std::string metrics_json;
  uint64_t stats_interval_seconds = 0;
  bool advisor = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

template <typename T>
bool ParseNumFlag(const char* arg, const char* name, T* out) {
  std::string v;
  if (!ParseFlag(arg, name, &v)) return false;
  *out = static_cast<T>(std::strtoull(v.c_str(), nullptr, 10));
  return true;
}

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--flag=value ...] (see header comment)\n",
               argv0);
  std::exit(2);
}

class Benchmark {
 public:
  explicit Benchmark(const Flags& flags) : flags_(flags) {
    if (flags_.device == "posix") {
      env_ = Env::Posix();
    } else {
      DeviceProfile profile;
      if (flags_.device == "ssd") {
        profile = DeviceProfile::Ssd();
      } else if (flags_.device == "hdd") {
        profile = DeviceProfile::Hdd();
      } else if (flags_.device.rfind("hddx", 0) == 0) {
        profile = DeviceProfile::Hdd(std::atoi(flags_.device.c_str() + 4));
      } else if (flags_.device == "null") {
        profile = DeviceProfile::Null();
      } else {
        std::fprintf(stderr, "unknown --device=%s\n", flags_.device.c_str());
        std::exit(2);
      }
      sim_env_ = std::make_unique<SimEnv>(profile);
      env_ = sim_env_.get();
    }

    options_.env = env_;
    options_.create_if_missing = true;
    if (flags_.compaction == "scp") {
      options_.compaction_mode = CompactionMode::kSCP;
    } else if (flags_.compaction == "pcp") {
      options_.compaction_mode = CompactionMode::kPCP;
    } else if (flags_.compaction == "sppcp") {
      options_.compaction_mode = CompactionMode::kSPPCP;
    } else if (flags_.compaction == "cppcp") {
      options_.compaction_mode = CompactionMode::kCPPCP;
    } else {
      std::fprintf(stderr, "unknown --compaction=%s\n",
                   flags_.compaction.c_str());
      std::exit(2);
    }
    if (flags_.compaction_style == "leveled") {
      options_.compaction_style = CompactionStyle::kLeveled;
    } else if (flags_.compaction_style == "tiered") {
      options_.compaction_style = CompactionStyle::kTiered;
    } else if (flags_.compaction_style == "lazy") {
      options_.compaction_style = CompactionStyle::kLazyLeveling;
    } else {
      std::fprintf(stderr, "unknown --compaction_style=%s\n",
                   flags_.compaction_style.c_str());
      std::exit(2);
    }
    options_.tiered_run_count = flags_.tiered_run_count;
    options_.max_subcompactions = flags_.max_subcompactions;
    options_.write_buffer_size = flags_.write_buffer_kb << 10;
    options_.max_file_size = flags_.file_kb << 10;
    options_.subtask_bytes = flags_.subtask_kb << 10;
    options_.block_size = flags_.block;
    options_.compute_parallelism = flags_.compute_parallelism;
    options_.io_parallelism = flags_.io_parallelism;
    options_.pipeline_queue_depth = flags_.queue_depth;
    options_.adaptive_compaction = flags_.adaptive;
    options_.max_compute_workers = flags_.max_compute_workers;
    options_.max_stripe_width = flags_.max_stripe_width;
    options_.scheduler_hysteresis_jobs = flags_.hysteresis;
    options_.scheduler_warmup_jobs = flags_.warmup_jobs;
    options_.compaction_time_dilation = flags_.dilation;
    options_.value_separation_threshold = flags_.value_threshold;
    options_.trace_path = flags_.trace_path;
    options_.stats_dump_period_sec =
        static_cast<unsigned int>(flags_.stats_interval_seconds);
    if (flags_.bloom_bits > 0) {
      filter_policy_.reset(NewBloomFilterPolicy(flags_.bloom_bits));
      options_.filter_policy = filter_policy_.get();
    }
    options_.bloom_bits_per_key = flags_.bloom_bits_per_key;
    options_.filter_partition_bytes = flags_.filter_partition_bytes;
    options_.block_cache_size = flags_.cache_size;
    options_.block_cache_shards = flags_.cache_shards;

    DestroyDB(flags_.db, options_);
    DB* raw = nullptr;
    Status s = DB::Open(options_, flags_.db, &raw);
    if (!s.ok()) {
      std::fprintf(stderr, "open %s: %s\n", flags_.db.c_str(),
                   s.ToString().c_str());
      std::exit(1);
    }
    db_.reset(raw);

    if (flags_.stats_interval_seconds > 0) {
      stats_printer_ = std::thread([this] { StatsPrinterMain(); });
    }

    std::printf("pipelsm db_bench\n");
    std::printf("  db=%s device=%s compaction=%s%s style=%s"
                " max_subcompactions=%d\n",
                flags_.db.c_str(), flags_.device.c_str(),
                flags_.compaction.c_str(), flags_.adaptive ? " (adaptive)" : "",
                CompactionStyleName(options_.compaction_style),
                flags_.max_subcompactions);
    std::printf("  entries=%llu (%zuB key + %zuB value), reads=%llu\n",
                static_cast<unsigned long long>(flags_.num), flags_.key_size,
                flags_.value_size,
                static_cast<unsigned long long>(flags_.reads));
    std::printf(
        "  memtable=%zuKB sstable=%zuKB subtask=%zuKB bloom=%d bits\n",
        flags_.write_buffer_kb, flags_.file_kb, flags_.subtask_kb,
        flags_.bloom_bits > 0 ? flags_.bloom_bits : flags_.bloom_bits_per_key);
    std::printf("  cache=%zuKB shards=%zu filter_partition=%zuB\n",
                flags_.cache_size >> 10, flags_.cache_shards,
                flags_.filter_partition_bytes);
    std::printf("--------------------------------------------------\n");
  }

  void Run() {
    std::string list = flags_.benchmarks;
    size_t pos = 0;
    while (pos < list.size()) {
      size_t comma = list.find(',', pos);
      if (comma == std::string::npos) comma = list.size();
      std::string name = list.substr(pos, comma - pos);
      pos = comma + 1;
      if (!name.empty()) {
        RunOne(name);
        if (flags_.advisor) {
          std::string json;
          if (db_->GetProperty("pipelsm.advisor", &json)) {
            std::printf("ADVISOR %s\n", json.c_str());
          }
          if (db_->GetProperty("pipelsm.scheduler", &json)) {
            std::printf("SCHEDULER %s\n", json.c_str());
          }
        }
      }
    }
  }

 private:
  // Block-cache hit/miss snapshot from the "pipelsm.cache" property (the
  // block section is first in the JSON, so the first "hits"/"misses"
  // occurrences are the block cache's).
  bool CacheCounters(uint64_t* hits, uint64_t* misses) {
    std::string json;
    if (!db_->GetProperty("pipelsm.cache", &json)) return false;
    const size_t h = json.find("\"hits\":");
    const size_t m = json.find("\"misses\":");
    if (h == std::string::npos || m == std::string::npos) return false;
    *hits = std::strtoull(json.c_str() + h + 7, nullptr, 10);
    *misses = std::strtoull(json.c_str() + m + 9, nullptr, 10);
    return true;
  }

  // Prints the block-cache hit rate over one workload's window.
  void ReportCache(uint64_t hits_before, uint64_t misses_before) {
    uint64_t hits = 0, misses = 0;
    if (!CacheCounters(&hits, &misses)) return;
    hits -= hits_before;
    misses -= misses_before;
    const uint64_t lookups = hits + misses;
    if (lookups == 0) return;
    std::printf("              (block cache: %.1f%% hit rate, %llu hits, "
                "%llu misses)\n",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(lookups),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses));
  }

  WorkloadGenerator Gen(KeyOrder order) const {
    return WorkloadGenerator(flags_.num, flags_.key_size, flags_.value_size,
                             order, flags_.seed,
                             flags_.value_compressibility);
  }

  void Report(const std::string& name, uint64_t ops, double seconds,
              const Histogram& latency, uint64_t bytes = 0) {
    std::printf("%-13s %10.0f ops/s", name.c_str(),
                seconds > 0 ? ops / seconds : 0);
    if (bytes > 0) {
      std::printf("  %7.1f MiB/s", bytes / seconds / 1048576.0);
    }
    if (latency.Num() > 0) {
      std::printf("  lat(us) avg=%.1f p95=%.1f p99=%.1f max=%.0f",
                  latency.Average(), latency.Percentile(95),
                  latency.Percentile(99), latency.Max());
    }
    std::printf("  (%llu ops in %.2fs)\n",
                static_cast<unsigned long long>(ops), seconds);
    if (flags_.histogram && latency.Num() > 0) {
      std::printf("%s", latency.ToString().c_str());
    }
  }

  void Fill(const std::string& name, KeyOrder order) {
    WorkloadGenerator gen = Gen(order);
    Histogram latency;
    Stopwatch total;
    WriteBatch batch;
    uint64_t in_batch = 0;
    uint64_t bytes = 0;
    for (uint64_t i = 0; i < flags_.num; i++) {
      Stopwatch op;
      batch.Put(gen.Key(i), gen.Value(i));
      bytes += flags_.key_size + flags_.value_size;
      if (++in_batch >= flags_.batch || i + 1 == flags_.num) {
        Status s = db_->Write(WriteOptions(), &batch);
        if (!s.ok()) Fail(name, s);
        batch.Clear();
        in_batch = 0;
      }
      latency.Add(op.ElapsedNanos() / 1000.0);
    }
    Report(name, flags_.num, total.ElapsedSeconds(), latency, bytes);
  }

  void ReadRandom(const std::string& name, bool missing) {
    WorkloadGenerator gen = Gen(KeyOrder::kRandom);
    Random rnd(flags_.seed + 7);
    uint64_t cache_hits = 0, cache_misses = 0;
    CacheCounters(&cache_hits, &cache_misses);
    Histogram latency;
    Stopwatch total;
    uint64_t found = 0;
    std::string value;
    for (uint64_t i = 0; i < flags_.reads; i++) {
      const uint64_t idx = rnd.Next() % flags_.num;
      std::string key = gen.Key(idx);
      if (missing) key.back() = '.';
      Stopwatch op;
      Status s = db_->Get(ReadOptions(), key, &value);
      latency.Add(op.ElapsedNanos() / 1000.0);
      if (s.ok()) {
        found++;
        if (!missing && value != gen.Value(idx)) {
          std::fprintf(stderr, "%s: value mismatch at %llu\n", name.c_str(),
                       static_cast<unsigned long long>(idx));
          std::exit(1);
        }
      } else if (!s.IsNotFound()) {
        Fail(name, s);
      }
    }
    Report(name, flags_.reads, total.ElapsedSeconds(), latency);
    std::printf("              (%llu of %llu found)\n",
                static_cast<unsigned long long>(found),
                static_cast<unsigned long long>(flags_.reads));
    ReportCache(cache_hits, cache_misses);
  }

  void Scan(const std::string& name, bool reverse) {
    Histogram latency;
    Stopwatch total;
    uint64_t entries = 0, bytes = 0;
    std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
    for (reverse ? it->SeekToLast() : it->SeekToFirst(); it->Valid();
         reverse ? it->Prev() : it->Next()) {
      entries++;
      bytes += it->key().size() + it->value().size();
    }
    if (!it->status().ok()) Fail(name, it->status());
    Report(name, entries, total.ElapsedSeconds(), latency, bytes);
  }

  void DeleteRandom(const std::string& name) {
    WorkloadGenerator gen = Gen(KeyOrder::kRandom);
    Random rnd(flags_.seed + 13);
    Histogram latency;
    Stopwatch total;
    for (uint64_t i = 0; i < flags_.reads; i++) {
      Stopwatch op;
      Status s = db_->Delete(WriteOptions(), gen.Key(rnd.Next() % flags_.num));
      if (!s.ok()) Fail(name, s);
      latency.Add(op.ElapsedNanos() / 1000.0);
    }
    Report(name, flags_.reads, total.ElapsedSeconds(), latency);
  }

  void MixedWhileWriting(const std::string& name) {
    WorkloadGenerator gen = Gen(KeyOrder::kRandom);
    Random rnd(flags_.seed + 23);
    ZipfianGenerator zipf(flags_.num, flags_.zipf_theta, flags_.seed + 29);
    const bool zipfian = flags_.dist == "zipfian";
    if (!zipfian && flags_.dist != "uniform") {
      std::fprintf(stderr, "unknown --dist=%s\n", flags_.dist.c_str());
      std::exit(2);
    }
    uint64_t cache_hits = 0, cache_misses = 0;
    CacheCounters(&cache_hits, &cache_misses);
    Histogram read_lat, write_lat;
    Stopwatch total;
    uint64_t gets = 0, puts = 0, found = 0;
    std::string value;
    for (uint64_t i = 0; i < flags_.reads; i++) {
      const uint64_t idx =
          zipfian ? zipf.Next() : rnd.Next() % flags_.num;
      const bool is_get =
          static_cast<int>(rnd.Next() % 100) < flags_.read_ratio;
      Stopwatch op;
      if (is_get) {
        Status s = db_->Get(ReadOptions(), gen.Key(idx), &value);
        read_lat.Add(op.ElapsedNanos() / 1000.0);
        if (s.ok()) {
          found++;
        } else if (!s.IsNotFound()) {
          Fail(name, s);
        }
        gets++;
      } else {
        Status s = db_->Put(WriteOptions(), gen.Key(idx), gen.Value(idx));
        write_lat.Add(op.ElapsedNanos() / 1000.0);
        if (!s.ok()) Fail(name, s);
        puts++;
      }
    }
    const double seconds = total.ElapsedSeconds();
    Report(name, flags_.reads, seconds, read_lat);
    std::printf("              (%llu gets [%llu found], %llu puts, "
                "dist=%s",
                static_cast<unsigned long long>(gets),
                static_cast<unsigned long long>(found),
                static_cast<unsigned long long>(puts), flags_.dist.c_str());
    if (write_lat.Num() > 0) {
      std::printf(", put lat avg=%.1fus p99=%.1fus", write_lat.Average(),
                  write_lat.Percentile(99));
    }
    std::printf(")\n");
    ReportCache(cache_hits, cache_misses);
  }

  void RunOne(const std::string& name) {
    if (name == "fillseq") {
      Fill(name, KeyOrder::kSequential);
    } else if (name == "fillrandom" || name == "overwrite") {
      Fill(name, KeyOrder::kRandom);
    } else if (name == "readrandom") {
      ReadRandom(name, /*missing=*/false);
    } else if (name == "readmissing") {
      ReadRandom(name, /*missing=*/true);
    } else if (name == "readseq") {
      Scan(name, /*reverse=*/false);
    } else if (name == "readreverse") {
      Scan(name, /*reverse=*/true);
    } else if (name == "deleterandom") {
      DeleteRandom(name);
    } else if (name == "mixedwhilewriting") {
      MixedWhileWriting(name);
    } else if (name == "compact") {
      Stopwatch sw;
      db_->CompactRange(nullptr, nullptr);
      std::printf("%-13s done in %.2fs\n", name.c_str(), sw.ElapsedSeconds());
    } else if (name == "wait") {
      Stopwatch sw;
      Status s = db_->WaitForCompactions();
      if (!s.ok()) Fail(name, s);
      std::printf("%-13s drained in %.2fs\n", name.c_str(),
                  sw.ElapsedSeconds());
    } else if (name == "stats") {
      std::string stats;
      if (db_->GetProperty("pipelsm.stats", &stats)) {
        std::printf("%s\n", stats.c_str());
      }
    } else if (name == "metrics") {
      std::string json;
      if (db_->GetProperty("pipelsm.metrics", &json)) {
        std::printf("%s\n", json.c_str());
      }
    } else {
      std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
      std::exit(2);
    }
  }

 public:
  // Dumps the metrics blob, closes the DB (which flushes the trace file),
  // and reports where the artifacts went. Call once, after Run().
  void Finish() {
    if (stats_printer_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_stop_ = true;
      }
      stats_cv_.notify_all();
      stats_printer_.join();
    }
    if (!flags_.metrics_json.empty()) {
      std::string json;
      if (db_->GetProperty("pipelsm.metrics", &json)) {
        std::FILE* f = std::fopen(flags_.metrics_json.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "cannot open %s\n",
                       flags_.metrics_json.c_str());
          std::exit(1);
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("metrics JSON written to %s\n",
                    flags_.metrics_json.c_str());
      }
    }
    db_.reset();  // the DB writes Options::trace_path on close
    if (!flags_.trace_path.empty()) {
      // The DB only logs a write failure (into its own, possibly
      // simulated, log); confirm the file actually landed on the host.
      std::FILE* f = std::fopen(flags_.trace_path.c_str(), "r");
      if (f == nullptr) {
        std::fprintf(stderr, "trace was NOT written to %s (unwritable?)\n",
                     flags_.trace_path.c_str());
        std::exit(1);
      }
      std::fclose(f);
      std::printf("trace written to %s (load in chrome://tracing or "
                  "https://ui.perfetto.dev)\n",
                  flags_.trace_path.c_str());
    }
  }

 private:
  [[noreturn]] void Fail(const std::string& name, const Status& s) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                 s.ToString().c_str());
    std::exit(1);
  }

  // Prints pipelsm.stats to stdout every --stats_interval_seconds while
  // the workloads run (the DB's own dump goes to its LOG file; operators
  // watching a long fill want it on the console).
  void StatsPrinterMain() {
    const auto period = std::chrono::seconds(flags_.stats_interval_seconds);
    std::unique_lock<std::mutex> lock(stats_mu_);
    while (!stats_stop_) {
      if (stats_cv_.wait_for(lock, period, [this] { return stats_stop_; })) {
        break;
      }
      std::string stats;
      if (db_->GetProperty("pipelsm.stats", &stats)) {
        std::printf("---- stats @interval ----\n%s", stats.c_str());
        std::fflush(stdout);
      }
    }
  }

  const Flags flags_;
  std::unique_ptr<SimEnv> sim_env_;
  Env* env_ = nullptr;
  std::unique_ptr<const FilterPolicy> filter_policy_;
  Options options_;
  std::unique_ptr<DB> db_;
  std::thread stats_printer_;
  std::mutex stats_mu_;
  std::condition_variable stats_cv_;
  bool stats_stop_ = false;
};

}  // namespace
}  // namespace pipelsm

using namespace pipelsm;

int main(int argc, char** argv) {
  pipelsm::Flags flags;
  for (int i = 1; i < argc; i++) {
    std::string unused_bool;
    if (ParseFlag(argv[i], "benchmarks", &flags.benchmarks) ||
        ParseFlag(argv[i], "db", &flags.db) ||
        ParseFlag(argv[i], "device", &flags.device) ||
        ParseFlag(argv[i], "compaction", &flags.compaction) ||
        ParseFlag(argv[i], "compaction_style", &flags.compaction_style) ||
        ParseNumFlag(argv[i], "tiered_run_count", &flags.tiered_run_count) ||
        ParseNumFlag(argv[i], "max_subcompactions",
                     &flags.max_subcompactions) ||
        ParseNumFlag(argv[i], "num", &flags.num) ||
        ParseNumFlag(argv[i], "reads", &flags.reads) ||
        ParseNumFlag(argv[i], "key_size", &flags.key_size) ||
        ParseNumFlag(argv[i], "value_size", &flags.value_size) ||
        ParseNumFlag(argv[i], "value_threshold", &flags.value_threshold) ||
        ParseNumFlag(argv[i], "batch", &flags.batch) ||
        ParseNumFlag(argv[i], "write_buffer_kb", &flags.write_buffer_kb) ||
        ParseNumFlag(argv[i], "file_kb", &flags.file_kb) ||
        ParseNumFlag(argv[i], "subtask_kb", &flags.subtask_kb) ||
        ParseNumFlag(argv[i], "block", &flags.block) ||
        ParseNumFlag(argv[i], "compute_parallelism",
                     &flags.compute_parallelism) ||
        ParseNumFlag(argv[i], "io_parallelism", &flags.io_parallelism) ||
        ParseNumFlag(argv[i], "queue_depth", &flags.queue_depth) ||
        ParseNumFlag(argv[i], "max_compute_workers",
                     &flags.max_compute_workers) ||
        ParseNumFlag(argv[i], "max_stripe_width", &flags.max_stripe_width) ||
        ParseNumFlag(argv[i], "hysteresis", &flags.hysteresis) ||
        ParseNumFlag(argv[i], "warmup_jobs", &flags.warmup_jobs) ||
        ParseNumFlag(argv[i], "bloom_bits", &flags.bloom_bits) ||
        ParseNumFlag(argv[i], "bloom_bits_per_key",
                     &flags.bloom_bits_per_key) ||
        ParseNumFlag(argv[i], "filter_partition_bytes",
                     &flags.filter_partition_bytes) ||
        ParseNumFlag(argv[i], "cache_size", &flags.cache_size) ||
        ParseNumFlag(argv[i], "cache_shards", &flags.cache_shards) ||
        ParseNumFlag(argv[i], "read_ratio", &flags.read_ratio) ||
        ParseFlag(argv[i], "dist", &flags.dist) ||
        ParseNumFlag(argv[i], "seed", &flags.seed) ||
        ParseFlag(argv[i], "trace_path", &flags.trace_path) ||
        ParseFlag(argv[i], "metrics_json", &flags.metrics_json) ||
        ParseNumFlag(argv[i], "stats_interval_seconds",
                     &flags.stats_interval_seconds)) {
      continue;
    }
    if (std::strcmp(argv[i], "--advisor") == 0) {
      flags.advisor = true;
      continue;
    }
    if (std::strcmp(argv[i], "--adaptive") == 0) {
      flags.adaptive = true;
      continue;
    }
    std::string v;
    if (ParseFlag(argv[i], "dilation", &v)) {
      flags.dilation = std::atof(v.c_str());
      continue;
    }
    if (ParseFlag(argv[i], "value_compressibility", &v)) {
      flags.value_compressibility = std::atof(v.c_str());
      continue;
    }
    if (ParseFlag(argv[i], "zipf_theta", &v)) {
      flags.zipf_theta = std::atof(v.c_str());
      continue;
    }
    if (std::strcmp(argv[i], "--histogram") == 0) {
      flags.histogram = true;
      continue;
    }
    std::fprintf(stderr, "unrecognized flag: %s\n", argv[i]);
    pipelsm::Usage(argv[0]);
  }

  pipelsm::Benchmark bench(flags);
  bench.Run();
  bench.Finish();
  return 0;
}
