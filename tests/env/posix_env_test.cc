#include <gtest/gtest.h>

#include <cstdlib>

#include "src/env/env.h"

namespace pipelsm {
namespace {

class PosixEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Posix();
    dir_ = ::testing::TempDir() + "pipelsm_env_test";
    env_->CreateDir(dir_);
  }

  void TearDown() override {
    std::vector<std::string> children;
    if (env_->GetChildren(dir_, &children).ok()) {
      for (const auto& c : children) {
        env_->RemoveFile(dir_ + "/" + c);
      }
    }
    env_->RemoveDir(dir_);
  }

  Env* env_;
  std::string dir_;
};

TEST_F(PosixEnvTest, WriteReadRoundTrip) {
  const std::string fname = dir_ + "/f";
  ASSERT_TRUE(WriteStringToFile(env_, "posix bytes", fname).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, fname, &data).ok());
  EXPECT_EQ("posix bytes", data);
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize(fname, &size).ok());
  EXPECT_EQ(11u, size);
}

TEST_F(PosixEnvTest, RandomAccess) {
  const std::string fname = dir_ + "/f";
  ASSERT_TRUE(WriteStringToFile(env_, "0123456789", fname).ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &f).ok());
  char scratch[8];
  Slice result;
  ASSERT_TRUE(f->Read(4, 3, &result, scratch).ok());
  EXPECT_EQ("456", result.ToString());
}

TEST_F(PosixEnvTest, RenameAndChildren) {
  ASSERT_TRUE(WriteStringToFile(env_, "x", dir_ + "/a").ok());
  ASSERT_TRUE(env_->RenameFile(dir_ + "/a", dir_ + "/b").ok());
  EXPECT_FALSE(env_->FileExists(dir_ + "/a"));
  EXPECT_TRUE(env_->FileExists(dir_ + "/b"));

  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  ASSERT_EQ(1u, children.size());
  EXPECT_EQ("b", children[0]);
}

TEST_F(PosixEnvTest, MissingFileIsNotFound) {
  std::unique_ptr<SequentialFile> f;
  EXPECT_TRUE(env_->NewSequentialFile(dir_ + "/missing", &f).IsNotFound());
}

TEST_F(PosixEnvTest, AppendableFile) {
  const std::string fname = dir_ + "/log";
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env_->NewAppendableFile(fname, &f).ok());
    ASSERT_TRUE(f->Append("first").ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Close().ok());
  }
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env_->NewAppendableFile(fname, &f).ok());
    ASSERT_TRUE(f->Append("+second").ok());
    ASSERT_TRUE(f->Close().ok());
  }
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, fname, &data).ok());
  EXPECT_EQ("first+second", data);
}

TEST_F(PosixEnvTest, NowMicrosAdvances) {
  const uint64_t a = env_->NowMicros();
  env_->SleepForMicroseconds(2000);
  const uint64_t b = env_->NowMicros();
  EXPECT_GE(b - a, 1500u);
}

}  // namespace
}  // namespace pipelsm
