// FaultInjectionEnv: rules fire where aimed, power loss keeps exactly
// the synced prefix, and crash points freeze the env until reset.
#include "src/env/fault_env.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/env/sim_env.h"

namespace pipelsm {
namespace {

class FaultEnvTest : public ::testing::Test {
 protected:
  FaultEnvTest() : fault_(&sim_) { sim_.CreateDir("/db"); }

  Status WriteFile(const std::string& fname, const std::string& data,
                   bool sync) {
    std::unique_ptr<WritableFile> f;
    Status s = fault_.NewWritableFile(fname, &f);
    if (!s.ok()) return s;
    s = f->Append(data);
    if (s.ok() && sync) s = f->Sync();
    if (s.ok()) s = f->Close();
    return s;
  }

  std::string ReadFile(const std::string& fname) {
    std::string data;
    Status s = ReadFileToString(&fault_, fname, &data);
    return s.ok() ? data : "<" + s.ToString() + ">";
  }

  SimEnv sim_;
  FaultInjectionEnv fault_;
};

TEST_F(FaultEnvTest, OpNamesRoundTrip) {
  for (int i = 0; i < static_cast<int>(FaultOp::kNumOps); i++) {
    FaultOp op = static_cast<FaultOp>(i);
    FaultOp parsed;
    ASSERT_TRUE(ParseFaultOp(FaultOpName(op), &parsed)) << FaultOpName(op);
    EXPECT_EQ(op, parsed);
  }
  FaultOp op;
  EXPECT_FALSE(ParseFaultOp("no_such_op", &op));
}

TEST_F(FaultEnvTest, PassThroughWhenNoRules) {
  ASSERT_TRUE(WriteFile("/db/a", "hello", true).ok());
  EXPECT_EQ("hello", ReadFile("/db/a"));
  EXPECT_TRUE(fault_.FileExists("/db/a"));
  EXPECT_EQ(0u, fault_.injected_failures());
}

TEST_F(FaultEnvTest, FailAfterFiresExactlyOnce) {
  fault_.FailAfter(FaultOp::kSync, 2, Status::IOError("boom"));
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault_.NewWritableFile("/db/a", &f).ok());
  ASSERT_TRUE(f->Append("x").ok());
  EXPECT_TRUE(f->Sync().ok());    // 1st sync: countdown 2 -> 1
  EXPECT_FALSE(f->Sync().ok());   // 2nd sync fires
  EXPECT_TRUE(f->Sync().ok());    // not sticky: healthy again
  EXPECT_EQ(1u, fault_.injected_failures());
}

TEST_F(FaultEnvTest, StickyFailAfterKeepsFailing) {
  fault_.FailAfter(FaultOp::kAppend, 1, Status::IOError("boom"),
                   /*sticky=*/true);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault_.NewWritableFile("/db/a", &f).ok());
  EXPECT_FALSE(f->Append("x").ok());
  EXPECT_FALSE(f->Append("x").ok());
  fault_.ClearFaults();
  EXPECT_TRUE(f->Append("x").ok());
}

TEST_F(FaultEnvTest, PathFilterRestrictsRuleAndCounter) {
  fault_.FailAfter(FaultOp::kNewWritableFile, 1);
  fault_.SetPathFilter(FaultOp::kNewWritableFile, ".pst");
  std::unique_ptr<WritableFile> f;
  EXPECT_TRUE(fault_.NewWritableFile("/db/000001.log", &f).ok());
  EXPECT_EQ(0u, fault_.counter(FaultOp::kNewWritableFile));
  EXPECT_FALSE(fault_.NewWritableFile("/db/000002.pst", &f).ok());
  EXPECT_EQ(1u, fault_.counter(FaultOp::kNewWritableFile));
}

TEST_F(FaultEnvTest, ErrorProbabilityInjectsRoughlyAtRate) {
  fault_.SetErrorProbability(FaultOp::kAppend, 0.5);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault_.NewWritableFile("/db/a", &f).ok());
  int failures = 0;
  for (int i = 0; i < 1000; i++) {
    if (!f->Append("x").ok()) failures++;
  }
  EXPECT_GT(failures, 350);
  EXPECT_LT(failures, 650);
}

TEST_F(FaultEnvTest, NeverSyncedFileVanishesOnPowerLoss) {
  ASSERT_TRUE(WriteFile("/db/a", "data", /*sync=*/false).ok());
  ASSERT_TRUE(fault_.FileExists("/db/a"));
  ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());
  EXPECT_FALSE(fault_.FileExists("/db/a"));
}

TEST_F(FaultEnvTest, UnsyncedTailDroppedOnPowerLoss) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault_.NewWritableFile("/db/a", &f).ok());
  ASSERT_TRUE(f->Append("durable").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("-volatile").ok());
  EXPECT_EQ(9u, fault_.UnsyncedBytes());
  ASSERT_TRUE(f->Close().ok());
  f.reset();

  ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());
  EXPECT_EQ("durable", ReadFile("/db/a"));
  EXPECT_EQ(0u, fault_.UnsyncedBytes());
}

TEST_F(FaultEnvTest, FullySyncedFileSurvivesPowerLossIntact) {
  ASSERT_TRUE(WriteFile("/db/a", "all-of-it", /*sync=*/true).ok());
  ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());
  EXPECT_EQ("all-of-it", ReadFile("/db/a"));
}

TEST_F(FaultEnvTest, RenameMakesTargetDurable) {
  // The CURRENT install sequence: synced temp file, then rename.
  ASSERT_TRUE(WriteFile("/db/000005.dbtmp", "MANIFEST-000004\n", true).ok());
  ASSERT_TRUE(fault_.RenameFile("/db/000005.dbtmp", "/db/CURRENT").ok());
  ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());
  EXPECT_EQ("MANIFEST-000004\n", ReadFile("/db/CURRENT"));
  EXPECT_FALSE(fault_.FileExists("/db/000005.dbtmp"));
}

TEST_F(FaultEnvTest, SyncDirMakesCreationsDurable) {
  ASSERT_TRUE(WriteFile("/db/a", "x", /*sync=*/false).ok());
  ASSERT_TRUE(fault_.SyncDir("/db").ok());
  ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());
  // Entry survives; its unsynced bytes still don't.
  EXPECT_TRUE(fault_.FileExists("/db/a"));
  EXPECT_EQ("", ReadFile("/db/a"));
}

TEST_F(FaultEnvTest, CrashFreezesEveryOpUntilReset) {
  fault_.CrashAfter(FaultOp::kAppend, 2);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault_.NewWritableFile("/db/a", &f).ok());
  ASSERT_TRUE(f->Append("synced").ok());
  ASSERT_TRUE(f->Sync().ok());
  EXPECT_FALSE(f->Append("never").ok());  // 2nd append: crash point
  EXPECT_TRUE(fault_.crashed());

  // Everything fails while "down" — even unrelated ops.
  std::unique_ptr<WritableFile> g;
  EXPECT_FALSE(fault_.NewWritableFile("/db/b", &g).ok());
  std::vector<std::string> children;
  EXPECT_FALSE(fault_.GetChildren("/db", &children).ok());

  ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());
  EXPECT_FALSE(fault_.crashed());
  fault_.ClearFaults();
  EXPECT_EQ("synced", ReadFile("/db/a"));
}

TEST_F(FaultEnvTest, RemoveFileForgetsTrackingState) {
  ASSERT_TRUE(WriteFile("/db/a", "x", /*sync=*/false).ok());
  ASSERT_TRUE(fault_.RemoveFile("/db/a").ok());
  EXPECT_EQ(0u, fault_.UnsyncedBytes());
  ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());
  EXPECT_FALSE(fault_.FileExists("/db/a"));
}

TEST_F(FaultEnvTest, AppendableFileTreatsExistingBytesAsDurable) {
  ASSERT_TRUE(WriteFile("/db/a", "old", /*sync=*/true).ok());
  ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fault_.NewAppendableFile("/db/a", &f).ok());
  ASSERT_TRUE(f->Append("+new").ok());
  ASSERT_TRUE(f->Close().ok());
  f.reset();
  ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());
  EXPECT_EQ("old", ReadFile("/db/a"));
}

}  // namespace
}  // namespace pipelsm
