#include "src/env/sim_device.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/util/stopwatch.h"

namespace pipelsm {
namespace {

// A fast test profile: 1 ms positioning, 100 MB/s both ways.
DeviceProfile TestProfile(int stripes = 1) {
  DeviceProfile p;
  p.name = "test";
  p.read_position_us = 1000;
  p.write_position_us = 1000;
  p.charge_position_always = false;
  p.read_bw_bps = 100.0 * 1024 * 1024;
  p.write_bw_bps = 100.0 * 1024 * 1024;
  p.stripe_count = stripes;
  return p;
}

TEST(SimDevice, TransferTimeMatchesModel) {
  SimDevice dev(TestProfile());
  // 1 MB at 100 MB/s = 10 ms, plus 1 ms positioning ≈ 11 ms.
  Stopwatch sw;
  dev.ChargeRead(0, 1 << 20);
  const double ms = sw.ElapsedNanos() * 1e-6;
  EXPECT_GE(ms, 10.0);
  EXPECT_LE(ms, 40.0);  // generous ceiling for scheduler noise
}

TEST(SimDevice, SequentialReadsSkipPositioning) {
  SimDevice dev(TestProfile());
  dev.ChargeRead(0, 4096);  // pays the seek
  Stopwatch sw;
  // 64 sequential 4K reads: no positioning charge, ~1 MB/s transfer time.
  uint64_t off = 4096;
  for (int i = 0; i < 63; i++) {
    dev.ChargeRead(off, 4096);
    off += 4096;
  }
  const double ms = sw.ElapsedNanos() * 1e-6;
  // 63 * 4K at 100 MB/s ≈ 2.4 ms. With per-op seeks it would be >63 ms.
  EXPECT_LT(ms, 30.0);
}

TEST(SimDevice, RandomReadsPaySeeks) {
  SimDevice dev(TestProfile());
  Stopwatch sw;
  uint64_t off = 0;
  for (int i = 0; i < 10; i++) {
    dev.ChargeRead(off, 4096);
    off += 100 << 20;  // far jumps: always a seek
  }
  const double ms = sw.ElapsedNanos() * 1e-6;
  EXPECT_GE(ms, 10.0);  // 10 seeks x 1 ms
}

TEST(SimDevice, SsdChargesLatencyAlways) {
  DeviceProfile p = TestProfile();
  p.charge_position_always = true;
  p.read_position_us = 100;
  SimDevice dev(p);
  Stopwatch sw;
  uint64_t off = 0;
  for (int i = 0; i < 20; i++) {
    dev.ChargeRead(off, 512);
    off += 512;  // sequential, but SSDs charge per command anyway
  }
  EXPECT_GE(sw.ElapsedNanos() * 1e-6, 2.0);  // 20 x 0.1 ms
}

TEST(SimDevice, Raid0StripingSpeedsUpLargeTransfers) {
  SimDevice one(TestProfile(1));
  SimDevice four(TestProfile(4));

  Stopwatch sw1;
  one.ChargeRead(0, 8 << 20);  // 8 MB: ~80 ms on one disk
  const double single_ms = sw1.ElapsedNanos() * 1e-6;

  Stopwatch sw4;
  four.ChargeRead(0, 8 << 20);  // ~20 ms across four members
  const double striped_ms = sw4.ElapsedNanos() * 1e-6;

  EXPECT_LT(striped_ms, single_ms * 0.5);
}

TEST(SimDevice, ConcurrentRequestsQueuePerChannel) {
  SimDevice dev(TestProfile(1));
  // Two threads each transfer 2 MB (≈20 ms each) on one channel: total
  // wall time must be ~serialized (≥ 40 ms), not overlapped.
  Stopwatch sw;
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; i++) {
    threads.emplace_back([&dev, i] {
      dev.ChargeRead(static_cast<uint64_t>(i) * (100 << 20), 2 << 20);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(sw.ElapsedNanos() * 1e-6, 38.0);
}

TEST(SimDevice, ConcurrentRequestsParallelizeAcrossStripes) {
  SimDevice dev(TestProfile(4));
  // Four 1 MB transfers layered across four channels should overlap and
  // finish well before 4x a single-disk serial pass.
  Stopwatch sw;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; i++) {
    threads.emplace_back([&dev, i] {
      // Force all channels per transfer via a 1 MB striped read.
      dev.ChargeRead(static_cast<uint64_t>(i) * (100 << 20), 1 << 20);
    });
  }
  for (auto& t : threads) t.join();
  const double ms = sw.ElapsedNanos() * 1e-6;
  // Serial single-disk: 4 x (10 + 1) = 44 ms. Striped + overlapped should
  // be far below.
  EXPECT_LT(ms, 35.0);
}

TEST(SimDevice, StatsAccumulate) {
  SimDevice dev(TestProfile());
  dev.ChargeRead(0, 1000);
  dev.ChargeWrite(0, 2000);
  dev.ChargeWrite(2000, 3000);
  EXPECT_EQ(1u, dev.stats().read_ops.load());
  EXPECT_EQ(1000u, dev.stats().read_bytes.load());
  EXPECT_EQ(2u, dev.stats().write_ops.load());
  EXPECT_EQ(5000u, dev.stats().write_bytes.load());
  dev.ResetStats();
  EXPECT_EQ(0u, dev.stats().read_ops.load());
}

TEST(SimDevice, ProfilesMatchPaperRegimes) {
  // The paper's premise: HDD seeks dominate (I/O-bound), SSD positioning
  // is orders of magnitude cheaper (compute becomes the bottleneck).
  DeviceProfile hdd = DeviceProfile::Hdd();
  DeviceProfile ssd = DeviceProfile::Ssd();
  EXPECT_GT(hdd.read_position_us, 50 * ssd.read_position_us);
  EXPECT_GT(ssd.read_bw_bps, hdd.read_bw_bps);
  // SSD write-after-erase: writes slower than reads.
  EXPECT_LT(ssd.write_bw_bps, ssd.read_bw_bps);
  // HDD write buffer: writes position faster than reads seek.
  EXPECT_LT(hdd.write_position_us, hdd.read_position_us);
}

}  // namespace
}  // namespace pipelsm
