#include "src/env/sim_env.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace pipelsm {
namespace {

TEST(SimEnv, WriteReadRoundTrip) {
  SimEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "hello world", "/dir/f").ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env, "/dir/f", &data).ok());
  EXPECT_EQ("hello world", data);
}

TEST(SimEnv, MissingFileIsNotFound) {
  SimEnv env;
  std::unique_ptr<SequentialFile> f;
  EXPECT_TRUE(env.NewSequentialFile("/nope", &f).IsNotFound());
  std::unique_ptr<RandomAccessFile> r;
  EXPECT_TRUE(env.NewRandomAccessFile("/nope", &r).IsNotFound());
  EXPECT_FALSE(env.FileExists("/nope"));
  uint64_t size;
  EXPECT_TRUE(env.GetFileSize("/nope", &size).IsNotFound());
  EXPECT_TRUE(env.RemoveFile("/nope").IsNotFound());
}

TEST(SimEnv, RandomAccessReads) {
  SimEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "0123456789", "/f").ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &f).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(f->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ("3456", result.ToString());
  // Read past EOF is clipped.
  ASSERT_TRUE(f->Read(8, 10, &result, scratch).ok());
  EXPECT_EQ("89", result.ToString());
  // Offset beyond EOF errors.
  EXPECT_FALSE(f->Read(11, 1, &result, scratch).ok());
}

TEST(SimEnv, SequentialReadAndSkip) {
  SimEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "abcdefghij", "/f").ok());
  std::unique_ptr<SequentialFile> f;
  ASSERT_TRUE(env.NewSequentialFile("/f", &f).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(f->Read(3, &result, scratch).ok());
  EXPECT_EQ("abc", result.ToString());
  ASSERT_TRUE(f->Skip(2).ok());
  ASSERT_TRUE(f->Read(3, &result, scratch).ok());
  EXPECT_EQ("fgh", result.ToString());
}

TEST(SimEnv, AppendableFileAppends) {
  SimEnv env;
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env.NewWritableFile("/f", &f).ok());
    ASSERT_TRUE(f->Append("one").ok());
  }
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env.NewAppendableFile("/f", &f).ok());
    ASSERT_TRUE(f->Append("two").ok());
  }
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &data).ok());
  EXPECT_EQ("onetwo", data);
}

TEST(SimEnv, NewWritableTruncates) {
  SimEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "long old contents", "/f").ok());
  ASSERT_TRUE(WriteStringToFile(&env, "new", "/f").ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &data).ok());
  EXPECT_EQ("new", data);
}

TEST(SimEnv, GetChildrenOnlyDirectEntries) {
  SimEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "x", "/db/000001.pst").ok());
  ASSERT_TRUE(WriteStringToFile(&env, "x", "/db/CURRENT").ok());
  ASSERT_TRUE(WriteStringToFile(&env, "x", "/db/sub/deep.txt").ok());
  ASSERT_TRUE(WriteStringToFile(&env, "x", "/other/f").ok());

  std::vector<std::string> children;
  ASSERT_TRUE(env.GetChildren("/db", &children).ok());
  std::sort(children.begin(), children.end());
  ASSERT_EQ(2u, children.size());
  EXPECT_EQ("000001.pst", children[0]);
  EXPECT_EQ("CURRENT", children[1]);
}

TEST(SimEnv, RenameReplacesTarget) {
  SimEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "source", "/a").ok());
  ASSERT_TRUE(WriteStringToFile(&env, "target", "/b").ok());
  ASSERT_TRUE(env.RenameFile("/a", "/b").ok());
  EXPECT_FALSE(env.FileExists("/a"));
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env, "/b", &data).ok());
  EXPECT_EQ("source", data);
  EXPECT_TRUE(env.RenameFile("/a", "/c").IsNotFound());
}

TEST(SimEnv, CorruptFileFlipsBytes) {
  SimEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "sensitive-data", "/f").ok());
  ASSERT_TRUE(env.CorruptFile("/f", 0, 4).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &data).ok());
  EXPECT_NE("sensitive-data", data);
  EXPECT_EQ("itive-data", data.substr(4));
  // Corrupting twice restores (XOR-based) — useful for tests.
  ASSERT_TRUE(env.CorruptFile("/f", 0, 4).ok());
  ASSERT_TRUE(ReadFileToString(&env, "/f", &data).ok());
  EXPECT_EQ("sensitive-data", data);
  EXPECT_FALSE(env.CorruptFile("/f", 1000, 1).ok());
}

TEST(SimEnv, TruncateFile) {
  SimEnv env;
  ASSERT_TRUE(WriteStringToFile(&env, "0123456789", "/f").ok());
  ASSERT_TRUE(env.TruncateFile("/f", 4).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &data).ok());
  EXPECT_EQ("0123", data);
}

TEST(SimEnv, NullDeviceChargesNothing) {
  SimEnv env(DeviceProfile::Null());
  ASSERT_TRUE(
      WriteStringToFile(&env, std::string(1 << 20, 'x'), "/big").ok());
  EXPECT_EQ(0u, env.device()->stats().busy_nanos.load());
}

TEST(SimEnv, DeviceStatsCountTransfers) {
  SimEnv env(DeviceProfile::Ssd());
  ASSERT_TRUE(WriteStringToFile(&env, std::string(8192, 'x'), "/f").ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env, "/f", &data).ok());
  const DeviceStats& stats = env.device()->stats();
  EXPECT_GE(stats.write_bytes.load(), 8192u);
  EXPECT_GE(stats.read_bytes.load(), 8192u);
  EXPECT_GT(stats.busy_nanos.load(), 0u);
}

}  // namespace
}  // namespace pipelsm
