#include "src/memtable/skiplist.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/util/arena.h"
#include "src/util/random.h"

namespace pipelsm {
namespace {

typedef uint64_t Key;

struct IntComparator {
  int operator()(const Key& a, const Key& b) const {
    if (a < b) {
      return -1;
    } else if (a > b) {
      return +1;
    } else {
      return 0;
    }
  }
};

TEST(SkipList, Empty) {
  Arena arena;
  IntComparator cmp;
  SkipList<Key, IntComparator> list(cmp, &arena);
  EXPECT_TRUE(!list.Contains(10));

  SkipList<Key, IntComparator>::Iterator iter(&list);
  EXPECT_TRUE(!iter.Valid());
  iter.SeekToFirst();
  EXPECT_TRUE(!iter.Valid());
  iter.Seek(100);
  EXPECT_TRUE(!iter.Valid());
  iter.SeekToLast();
  EXPECT_TRUE(!iter.Valid());
}

TEST(SkipList, InsertAndLookup) {
  const int N = 2000;
  const int R = 5000;
  Random rnd(1000);
  std::set<Key> keys;
  Arena arena;
  IntComparator cmp;
  SkipList<Key, IntComparator> list(cmp, &arena);
  for (int i = 0; i < N; i++) {
    Key key = rnd.Next() % R;
    if (keys.insert(key).second) {
      list.Insert(key);
    }
  }

  for (int i = 0; i < R; i++) {
    if (list.Contains(i)) {
      EXPECT_EQ(keys.count(i), 1u);
    } else {
      EXPECT_EQ(keys.count(i), 0u);
    }
  }

  // Simple iterator tests
  {
    SkipList<Key, IntComparator>::Iterator iter(&list);
    EXPECT_TRUE(!iter.Valid());

    iter.Seek(0);
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(*(keys.begin()), iter.key());

    iter.SeekToFirst();
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(*(keys.begin()), iter.key());

    iter.SeekToLast();
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(*(keys.rbegin()), iter.key());
  }

  // Forward iteration test
  for (int i = 0; i < R; i++) {
    SkipList<Key, IntComparator>::Iterator iter(&list);
    iter.Seek(i);

    // Compare against model iterator
    std::set<Key>::iterator model_iter = keys.lower_bound(i);
    for (int j = 0; j < 3; j++) {
      if (model_iter == keys.end()) {
        EXPECT_TRUE(!iter.Valid());
        break;
      } else {
        ASSERT_TRUE(iter.Valid());
        EXPECT_EQ(*model_iter, iter.key());
        ++model_iter;
        iter.Next();
      }
    }
  }

  // Backward iteration test
  {
    SkipList<Key, IntComparator>::Iterator iter(&list);
    iter.SeekToLast();

    // Compare against model iterator
    for (std::set<Key>::reverse_iterator model_iter = keys.rbegin();
         model_iter != keys.rend(); ++model_iter) {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(*model_iter, iter.key());
      iter.Prev();
    }
    EXPECT_TRUE(!iter.Valid());
  }
}

// One writer inserting ascending keys while a reader scans concurrently:
// the reader must always observe a sorted prefix-consistent view.
TEST(SkipList, ConcurrentReadWhileWriting) {
  Arena arena;
  IntComparator cmp;
  SkipList<Key, IntComparator> list(cmp, &arena);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> inserted{0};

  std::thread writer([&] {
    for (Key k = 1; k <= 20000; k++) {
      list.Insert(k);
      inserted.store(k, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  // `do` rather than `while`: on a loaded single-core host the writer may
  // finish before the reader's first pass; at least one scan (possibly
  // post-completion) must still run and validate.
  do {
    const uint64_t lower_bound = inserted.load(std::memory_order_acquire);
    SkipList<Key, IntComparator>::Iterator iter(&list);
    Key prev = 0;
    uint64_t count = 0;
    for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
      ASSERT_GT(iter.key(), prev);  // strictly sorted
      prev = iter.key();
      count++;
    }
    // Everything inserted before the scan started must be visible.
    ASSERT_GE(count, lower_bound);
  } while (!done.load(std::memory_order_acquire));
  writer.join();
  EXPECT_TRUE(list.Contains(1));
  EXPECT_TRUE(list.Contains(20000));
}

}  // namespace
}  // namespace pipelsm
