#include "src/memtable/memtable.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/table/comparator.h"

namespace pipelsm {
namespace {

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest() : icmp_(BytewiseComparator()), mem_(new MemTable(icmp_)) {
    mem_->Ref();
  }
  ~MemTableTest() override { mem_->Unref(); }

  bool Get(const std::string& key, SequenceNumber seq, std::string* value,
           Status* s) {
    LookupKey lkey(key, seq);
    return mem_->Get(lkey, value, s);
  }

  InternalKeyComparator icmp_;
  MemTable* mem_;
};

TEST_F(MemTableTest, AddAndGet) {
  mem_->Add(1, kTypeValue, "alpha", "one");
  mem_->Add(2, kTypeValue, "beta", "two");

  std::string value;
  Status s;
  ASSERT_TRUE(Get("alpha", 10, &value, &s));
  EXPECT_EQ("one", value);
  ASSERT_TRUE(Get("beta", 10, &value, &s));
  EXPECT_EQ("two", value);
  EXPECT_FALSE(Get("gamma", 10, &value, &s));
}

TEST_F(MemTableTest, NewerVersionWins) {
  mem_->Add(1, kTypeValue, "k", "v1");
  mem_->Add(5, kTypeValue, "k", "v5");
  std::string value;
  Status s;
  ASSERT_TRUE(Get("k", 100, &value, &s));
  EXPECT_EQ("v5", value);
}

TEST_F(MemTableTest, SnapshotReadsOldVersion) {
  mem_->Add(1, kTypeValue, "k", "v1");
  mem_->Add(5, kTypeValue, "k", "v5");
  std::string value;
  Status s;
  // Read as of sequence 3: should see v1.
  ASSERT_TRUE(Get("k", 3, &value, &s));
  EXPECT_EQ("v1", value);
}

TEST_F(MemTableTest, DeletionShadowsValue) {
  mem_->Add(1, kTypeValue, "k", "v1");
  mem_->Add(2, kTypeDeletion, "k", "");
  std::string value;
  Status s;
  ASSERT_TRUE(Get("k", 10, &value, &s));
  EXPECT_TRUE(s.IsNotFound());
  // But the old snapshot still sees the value.
  Status s2;
  ASSERT_TRUE(Get("k", 1, &value, &s2));
  EXPECT_EQ("v1", value);
}

TEST_F(MemTableTest, IteratorYieldsInternalKeysInOrder) {
  mem_->Add(3, kTypeValue, "b", "2");
  mem_->Add(1, kTypeValue, "a", "1");
  mem_->Add(2, kTypeValue, "c", "3");

  std::unique_ptr<Iterator> it(mem_->NewIterator());
  std::string keys;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(it->key(), &parsed));
    keys += parsed.user_key.ToString();
  }
  EXPECT_EQ("abc", keys);
}

TEST_F(MemTableTest, EmptyValueAllowed) {
  mem_->Add(1, kTypeValue, "empty", "");
  std::string value = "sentinel";
  Status s;
  ASSERT_TRUE(Get("empty", 10, &value, &s));
  EXPECT_EQ("", value);
}

TEST_F(MemTableTest, MemoryUsageGrows) {
  const size_t before = mem_->ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    mem_->Add(i + 1, kTypeValue, "key" + std::to_string(i),
              std::string(100, 'v'));
  }
  EXPECT_GT(mem_->ApproximateMemoryUsage(), before + 100 * 1000);
}

TEST_F(MemTableTest, ManyKeysSortedScan) {
  for (int i = 999; i >= 0; i--) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d", i);
    mem_->Add(1000 - i, kTypeValue, buf, "v");
  }
  std::unique_ptr<Iterator> it(mem_->NewIterator());
  int count = 0;
  std::string prev;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(it->key(), &parsed));
    std::string user = parsed.user_key.ToString();
    if (!prev.empty()) {
      EXPECT_LT(prev, user);
    }
    prev = user;
    count++;
  }
  EXPECT_EQ(1000, count);
}

}  // namespace
}  // namespace pipelsm
