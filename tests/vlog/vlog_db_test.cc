// End-to-end key-value separation through the DB: writes above the
// threshold land in the value log as pointers, reads and iterators
// resolve them transparently (also through ShardedDB), GC rewrites live
// values and retires dead segments, and snapshots pin retired segments
// until released.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/db/filename.h"
#include "src/db/write_batch.h"
#include "src/env/sim_env.h"
#include "src/shard/sharded_db.h"
#include "src/table/iterator.h"

namespace pipelsm {
namespace {

std::string LargeValue(int i, size_t size = 4096) {
  std::string v;
  v.reserve(size);
  while (v.size() < size) {
    v += "value-" + std::to_string(i) + "-";
  }
  v.resize(size);
  return v;
}

class VlogDbTest : public ::testing::Test {
 protected:
  VlogDbTest() {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
    options_.value_separation_threshold = 1024;
    options_.vlog_segment_size = 64 << 10;
  }

  ~VlogDbTest() override { db_.reset(); }

  void Open() {
    db_.reset();
    DB* db = nullptr;
    Status s = DB::Open(options_, "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  std::string Get(const std::string& k, const Snapshot* snap = nullptr) {
    ReadOptions ro;
    ro.snapshot = snap;
    std::string value;
    Status s = db_->Get(ro, k, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR: " + s.ToString();
    return value;
  }

  std::set<std::string> VlogFilesOnDisk(const std::string& dir = "/db") {
    std::vector<std::string> children;
    env_.GetChildren(dir, &children);
    std::set<std::string> out;
    for (const std::string& c : children) {
      if (c.size() > 5 && c.compare(c.size() - 5, 5, ".vlog") == 0) {
        out.insert(c);
      }
    }
    return out;
  }

  SimEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(VlogDbTest, SeparatedAndInlineValuesRoundTrip) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "small", "inline-value").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "big", LargeValue(1)).ok());

  EXPECT_EQ("inline-value", Get("small"));
  EXPECT_EQ(LargeValue(1), Get("big"));

  // The big value's frame really lives in a .vlog segment.
  EXPECT_FALSE(VlogFilesOnDisk().empty());
  std::string json;
  ASSERT_TRUE(db_->GetProperty("pipelsm.vlog", &json));
  EXPECT_NE(std::string::npos, json.find("\"active_segment\""));
}

TEST_F(VlogDbTest, MixedBatchKeepsOrderAndResolves) {
  Open();
  WriteBatch batch;
  batch.Put("a", "tiny");
  batch.Put("b", LargeValue(2));
  batch.Delete("a");
  batch.Put("c", LargeValue(3));
  batch.Put("d", "small");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());

  EXPECT_EQ("NOT_FOUND", Get("a"));  // delete ordered after the put
  EXPECT_EQ(LargeValue(2), Get("b"));
  EXPECT_EQ(LargeValue(3), Get("c"));
  EXPECT_EQ("small", Get("d"));
}

TEST_F(VlogDbTest, PointersSurviveFlushAndCompaction) {
  Open();
  const int n = 100;  // ~400KB of values: several flushes + compactions
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "key" + std::to_string(i), LargeValue(i))
            .ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  for (int i = 0; i < n; i++) {
    EXPECT_EQ(LargeValue(i), Get("key" + std::to_string(i))) << i;
  }
}

TEST_F(VlogDbTest, IteratorsResolvePointersBothDirections) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", LargeValue(1)).ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "small-b").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "c", LargeValue(3)).ok());

  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("a", it->key().ToString());
  EXPECT_EQ(LargeValue(1), it->value().ToString());
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("small-b", it->value().ToString());
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(LargeValue(3), it->value().ToString());
  it->Next();
  EXPECT_FALSE(it->Valid());

  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("c", it->key().ToString());
  EXPECT_EQ(LargeValue(3), it->value().ToString());
  it->Prev();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("small-b", it->value().ToString());
  it->Prev();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(LargeValue(1), it->value().ToString());
  it->Prev();
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
}

TEST_F(VlogDbTest, ReopenResolvesRecoveredPointers) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "durable", LargeValue(7)).ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "plain", "x").ok());
  Open();  // close + reopen
  EXPECT_EQ(LargeValue(7), Get("durable"));
  EXPECT_EQ("x", Get("plain"));

  // And values written after reopen go to a fresh segment.
  ASSERT_TRUE(db_->Put(WriteOptions(), "later", LargeValue(8)).ok());
  EXPECT_EQ(LargeValue(8), Get("later"));
}

TEST_F(VlogDbTest, CompactValueLogRewritesLiveAndDropsDead) {
  Open();
  const int n = 30;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "key" + std::to_string(i), LargeValue(i))
            .ok());
  }
  // Kill two thirds of them.
  for (int i = 0; i < n; i++) {
    if (i % 3 != 0) {
      ASSERT_TRUE(
          db_->Delete(WriteOptions(), "key" + std::to_string(i)).ok());
    }
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  ASSERT_TRUE(db_->CompactValueLog().ok()) << "full sweep";
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  // Survivors resolve from their rewritten frames; victims stay dead.
  for (int i = 0; i < n; i++) {
    if (i % 3 == 0) {
      EXPECT_EQ(LargeValue(i), Get("key" + std::to_string(i))) << i;
    } else {
      EXPECT_EQ("NOT_FOUND", Get("key" + std::to_string(i))) << i;
    }
  }

  // No leaked segments: every .vlog on disk is one the manager reports.
  std::string json;
  ASSERT_TRUE(db_->GetProperty("pipelsm.vlog", &json));
  for (const std::string& f : VlogFilesOnDisk()) {
    const std::string number = f.substr(0, f.size() - 5);
    const uint64_t n64 = std::stoull(number);
    EXPECT_NE(std::string::npos,
              json.find("\"number\":" + std::to_string(n64)))
        << f << " on disk but not in " << json;
  }
}

TEST_F(VlogDbTest, SnapshotPinsRetiredSegmentUntilReleased) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", LargeValue(1)).ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", LargeValue(2)).ok());

  // Full sweep: the first value's frame is dead at head, its segment is
  // rewritten/retired — but the snapshot still needs it.
  ASSERT_TRUE(db_->CompactValueLog().ok());
  EXPECT_EQ(LargeValue(1), Get("k", snap));
  EXPECT_EQ(LargeValue(2), Get("k"));

  db_->ReleaseSnapshot(snap);
  EXPECT_EQ(LargeValue(2), Get("k"));
}

TEST_F(VlogDbTest, SeparationOffIsUnchanged) {
  options_.value_separation_threshold = 0;
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "big", LargeValue(1)).ok());
  EXPECT_EQ(LargeValue(1), Get("big"));
  EXPECT_TRUE(VlogFilesOnDisk().empty());
  std::string json;
  EXPECT_FALSE(db_->GetProperty("pipelsm.vlog", &json));
}

TEST(VlogShardedTest, SeparationWorksThroughShardedDB) {
  SimEnv env;
  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.write_buffer_size = 64 << 10;
  options.value_separation_threshold = 1024;
  options.vlog_segment_size = 64 << 10;

  shard::ShardedOptions sharded;
  sharded.num_shards = 2;
  sharded.boundary_keys = {"m"};

  shard::ShardedDB* raw = nullptr;
  ASSERT_TRUE(shard::ShardedDB::Open(options, sharded, "/sdb", &raw).ok());
  std::unique_ptr<shard::ShardedDB> db(raw);

  ASSERT_TRUE(db->Put(WriteOptions(), "apple", LargeValue(1)).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "zebra", LargeValue(2)).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "small", "s").ok());

  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "apple", &value).ok());
  EXPECT_EQ(LargeValue(1), value);
  ASSERT_TRUE(db->Get(ReadOptions(), "zebra", &value).ok());
  EXPECT_EQ(LargeValue(2), value);

  // Cross-shard iteration resolves pointers at every seam, both ways.
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("apple", it->key().ToString());
  EXPECT_EQ(LargeValue(1), it->value().ToString());
  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("zebra", it->key().ToString());
  EXPECT_EQ(LargeValue(2), it->value().ToString());
  it->Prev();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("small", it->key().ToString());

  // Property fans out as a JSON array, one element per shard.
  std::string json;
  ASSERT_TRUE(db->GetProperty("pipelsm.vlog", &json));
  EXPECT_EQ('[', json.front());
  EXPECT_EQ(']', json.back());

  // Full-fleet value-log sweep is exposed too.
  EXPECT_TRUE(db->CompactValueLog().ok());
  ASSERT_TRUE(db->Get(ReadOptions(), "apple", &value).ok());
  EXPECT_EQ(LargeValue(1), value);
}

}  // namespace
}  // namespace pipelsm
