// VlogManager unit tests: frame encoding, segment rolling, torn-tail
// recovery, the append-pending protocol that fences GC off segments with
// in-flight pointer commits, and retirement pinning.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/db/filename.h"
#include "src/env/sim_env.h"
#include "src/util/coding.h"
#include "src/vlog/vlog.h"

namespace pipelsm {
namespace vlog {
namespace {

class VlogTest : public ::testing::Test {
 protected:
  VlogTest() { env_.CreateDir("/db"); }

  // Fresh manager over /db with its own monotonic number allocator.
  std::unique_ptr<VlogManager> NewManager(size_t segment_size = 1 << 20,
                                          double gc_dead_ratio = 0.5) {
    VlogOptions opts;
    opts.segment_size = segment_size;
    opts.gc_dead_ratio = gc_dead_ratio;
    return std::unique_ptr<VlogManager>(new VlogManager(
        &env_, "/db", opts, nullptr, nullptr, [this] { return next_++; }));
  }

  // Recover + open the first active segment, asserting success.
  void Start(VlogManager* vlog) {
    uint64_t max_recovered = 0;
    ASSERT_TRUE(vlog->Recover(&max_recovered).ok());
    if (max_recovered >= next_) next_ = max_recovered + 1;
    ASSERT_TRUE(vlog->OpenActive(next_++).ok());
  }

  std::set<std::string> VlogFilesOnDisk() {
    std::vector<std::string> children;
    env_.GetChildren("/db", &children);
    std::set<std::string> out;
    for (const std::string& c : children) {
      if (c.size() > 5 && c.compare(c.size() - 5, 5, ".vlog") == 0) {
        out.insert(c);
      }
    }
    return out;
  }

  SimEnv env_;
  uint64_t next_ = 1;
};

TEST_F(VlogTest, ValueLocationRoundTrip) {
  ValueLocation loc;
  loc.segment = 42;
  loc.offset = 123456789;
  loc.length = 4096;
  std::string encoded;
  EncodeValueLocation(&encoded, loc);
  EXPECT_EQ(kValueLocationSize, encoded.size());

  ValueLocation decoded;
  ASSERT_TRUE(DecodeValueLocation(Slice(encoded), &decoded));
  EXPECT_TRUE(decoded == loc);

  // Wrong length is rejected, not misparsed.
  EXPECT_FALSE(DecodeValueLocation(Slice(encoded.data(), 19), &decoded));
  encoded.push_back('x');
  EXPECT_FALSE(DecodeValueLocation(Slice(encoded), &decoded));
}

TEST_F(VlogTest, AddSyncReadRoundTrip) {
  auto vlog = NewManager();
  Start(vlog.get());

  std::vector<ValueLocation> locs(3);
  ASSERT_TRUE(vlog->Add("a", std::string(100, 'A'), &locs[0]).ok());
  ASSERT_TRUE(vlog->Add("b", std::string(5000, 'B'), &locs[1]).ok());
  ASSERT_TRUE(vlog->Add("c", "tiny", &locs[2]).ok());
  ASSERT_TRUE(vlog->Sync().ok());
  vlog->ReleaseAppends(
      {locs[0].segment, locs[1].segment, locs[2].segment});

  std::string value;
  ASSERT_TRUE(vlog->Read(locs[0], &value).ok());
  EXPECT_EQ(std::string(100, 'A'), value);
  ASSERT_TRUE(vlog->Read(locs[1], &value).ok());
  EXPECT_EQ(std::string(5000, 'B'), value);
  ASSERT_TRUE(vlog->Read(locs[2], &value).ok());
  EXPECT_EQ("tiny", value);

  // A bogus offset inside a real segment must fail CRC, not crash.
  ValueLocation bogus = locs[1];
  bogus.offset += 1;
  EXPECT_FALSE(vlog->Read(bogus, &value).ok());
}

TEST_F(VlogTest, RollsActiveSegmentWhenFull) {
  auto vlog = NewManager(/*segment_size=*/4096);
  Start(vlog.get());

  std::set<uint64_t> segments;
  std::vector<ValueLocation> locs(8);
  std::vector<uint64_t> touched;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(vlog->Add("k" + std::to_string(i), std::string(2000, 'v'),
                          &locs[i])
                    .ok());
    segments.insert(locs[i].segment);
    touched.push_back(locs[i].segment);
  }
  ASSERT_TRUE(vlog->Sync().ok());
  vlog->ReleaseAppends(touched);
  EXPECT_GT(segments.size(), 2u);

  // Every frame still resolves after its segment was sealed.
  for (int i = 0; i < 8; i++) {
    std::string value;
    ASSERT_TRUE(vlog->Read(locs[i], &value).ok()) << i;
    EXPECT_EQ(std::string(2000, 'v'), value);
  }
}

TEST_F(VlogTest, RecoverKeepsValidFramesAndTruncatesTornTail) {
  std::vector<ValueLocation> locs(2);
  {
    auto vlog = NewManager();
    Start(vlog.get());
    ASSERT_TRUE(vlog->Add("a", std::string(500, 'A'), &locs[0]).ok());
    ASSERT_TRUE(vlog->Add("b", std::string(500, 'B'), &locs[1]).ok());
    ASSERT_TRUE(vlog->Sync().ok());
    vlog->ReleaseAppends({locs[0].segment, locs[1].segment});
  }

  // Simulate a torn append: garbage bytes after the last whole frame.
  const std::string path = VlogFileName("/db", locs[0].segment);
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, path, &data).ok());
  const size_t valid_size = data.size();
  data.append("torn-tail-garbage");
  ASSERT_TRUE(env_.RemoveFile(path).ok());
  ASSERT_TRUE(WriteStringToFile(&env_, data, path, true).ok());

  auto vlog = NewManager();
  Start(vlog.get());
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize(path, &size).ok());
  EXPECT_EQ(valid_size, size);  // tail gone, frames kept
  std::string value;
  ASSERT_TRUE(vlog->Read(locs[0], &value).ok());
  EXPECT_EQ(std::string(500, 'A'), value);
  ASSERT_TRUE(vlog->Read(locs[1], &value).ok());
  EXPECT_EQ(std::string(500, 'B'), value);
}

TEST_F(VlogTest, RecoverRemovesGarbageOnlySegments) {
  ASSERT_TRUE(
      WriteStringToFile(&env_, "not a frame", VlogFileName("/db", 7), true)
          .ok());
  auto vlog = NewManager();
  Start(vlog.get());
  EXPECT_EQ(0u, VlogFilesOnDisk().count("000007.vlog"));
}

TEST_F(VlogTest, AppendPendingFencesGcUntilReleased) {
  auto vlog = NewManager();
  Start(vlog.get());

  ValueLocation loc;
  ASSERT_TRUE(vlog->Add("k", std::string(100, 'v'), &loc).ok());
  ASSERT_TRUE(vlog->Sync().ok());
  const uint64_t segment = loc.segment;

  // Seal it so it is GC-eligible by state — but the pointer commit is
  // still in flight (no ReleaseAppends yet), so BeginGc must refuse.
  ASSERT_TRUE(vlog->RollActive().ok());
  EXPECT_FALSE(vlog->BeginGc(segment));

  vlog->ReleaseAppends({segment});
  EXPECT_TRUE(vlog->BeginGc(segment));
  vlog->FinishGc(segment, false, 0);
}

TEST_F(VlogTest, DiscardCreditsDriveGcSelection) {
  auto vlog = NewManager(1 << 20, /*gc_dead_ratio=*/0.5);
  Start(vlog.get());

  std::vector<ValueLocation> locs(4);
  std::vector<uint64_t> touched;
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(
        vlog->Add("k" + std::to_string(i), std::string(1000, 'v'), &locs[i])
            .ok());
    touched.push_back(locs[i].segment);
  }
  ASSERT_TRUE(vlog->Sync().ok());
  vlog->ReleaseAppends(touched);
  ASSERT_TRUE(vlog->RollActive().ok());
  EXPECT_FALSE(vlog->NeedsGc());

  // Credit 3 of 4 frames dead: 75% > 50% ratio.
  for (int i = 0; i < 3; i++) {
    std::string encoded;
    EncodeValueLocation(&encoded, locs[i]);
    vlog->CreditDiscard(Slice(encoded));
  }
  EXPECT_TRUE(vlog->NeedsGc());
  uint64_t segment = 0;
  ASSERT_TRUE(vlog->PickGcSegment(&segment));
  EXPECT_EQ(locs[0].segment, segment);
}

TEST_F(VlogTest, ScanSegmentYieldsEveryFrameWithItsLocation) {
  auto vlog = NewManager();
  Start(vlog.get());

  std::vector<ValueLocation> locs(3);
  std::vector<uint64_t> touched;
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(
        vlog->Add("key" + std::to_string(i), "value" + std::to_string(i),
                  &locs[i])
            .ok());
    touched.push_back(locs[i].segment);
  }
  ASSERT_TRUE(vlog->Sync().ok());
  vlog->ReleaseAppends(touched);
  const uint64_t segment = locs[0].segment;
  ASSERT_TRUE(vlog->RollActive().ok());
  ASSERT_TRUE(vlog->BeginGc(segment));

  int i = 0;
  Status s = vlog->ScanSegment(
      segment, [&](const Slice& key, const Slice& value,
                   const ValueLocation& loc) -> Status {
        EXPECT_EQ("key" + std::to_string(i), key.ToString());
        EXPECT_EQ("value" + std::to_string(i), value.ToString());
        EXPECT_TRUE(loc == locs[i]);
        i++;
        return Status::OK();
      });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(3, i);
  vlog->FinishGc(segment, false, 0);
}

TEST_F(VlogTest, RetiredSegmentWaitsForPinnedReaders) {
  auto vlog = NewManager();
  Start(vlog.get());

  ValueLocation loc;
  ASSERT_TRUE(vlog->Add("k", std::string(64, 'v'), &loc).ok());
  ASSERT_TRUE(vlog->Sync().ok());
  vlog->ReleaseAppends({loc.segment});
  ASSERT_TRUE(vlog->RollActive().ok());

  ASSERT_TRUE(vlog->BeginGc(loc.segment));
  vlog->FinishGc(loc.segment, /*retire=*/true, /*retire_seq=*/100);
  EXPECT_EQ(1u, vlog->pending_retire_count());

  // A reader pinned at seq 50 (< 100) still holds the file alive.
  vlog->SweepRetired(/*min_pinned=*/50);
  EXPECT_EQ(1u, vlog->pending_retire_count());
  const std::string path = VlogFileName("/db", loc.segment);
  EXPECT_TRUE(env_.FileExists(path));

  vlog->SweepRetired(/*min_pinned=*/100);
  EXPECT_EQ(0u, vlog->pending_retire_count());
  EXPECT_FALSE(env_.FileExists(path));
  EXPECT_EQ(1u, vlog->segments_retired());
}

TEST_F(VlogTest, ToJsonListsSegments) {
  auto vlog = NewManager();
  Start(vlog.get());
  ValueLocation loc;
  ASSERT_TRUE(vlog->Add("k", std::string(64, 'v'), &loc).ok());
  ASSERT_TRUE(vlog->Sync().ok());
  vlog->ReleaseAppends({loc.segment});

  const std::string json = vlog->ToJson();
  EXPECT_NE(std::string::npos, json.find("\"active_segment\""));
  EXPECT_NE(std::string::npos, json.find("\"segments\""));
  EXPECT_NE(std::string::npos, json.find("\"dead_bytes\""));
}

}  // namespace
}  // namespace vlog
}  // namespace pipelsm
