// DB-level read path (docs/READ_PATH.md): the shared block cache under
// real tables, eviction while a standing iterator still reads evicted
// blocks, partitioned bloom filters across partition boundaries (seeks
// in both directions), and the "pipelsm.cache" introspection property.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/env/sim_env.h"
#include "src/read/cache.h"
#include "src/util/random.h"

namespace pipelsm {
namespace {

class ReadPathDBTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 32 << 10;
  }

  void Open() {
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, "/rp", &raw).ok()) << "open failed";
    db_.reset(raw);
  }

  void Reopen() {
    db_.reset();
    Open();
  }

  static std::string Key(int i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    if (s.IsNotFound()) return "<nf>";
    if (!s.ok()) return "<err:" + s.ToString() + ">";
    return value;
  }

  std::string CacheProperty() {
    std::string json;
    EXPECT_TRUE(db_->GetProperty("pipelsm.cache", &json));
    return json;
  }

  SimEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(ReadPathDBTest, CachePropertyShapeAndCounters) {
  options_.block_cache_size = 256 << 10;
  options_.block_cache_shards = 4;
  Open();
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), std::string(100, 'v')).ok());
  }
  db_->CompactRange(nullptr, nullptr);
  for (int i = 0; i < 500; i++) EXPECT_EQ(std::string(100, 'v'), Get(Key(i)));

  const std::string json = CacheProperty();
  // Block section first (parsers rely on the order), then table section.
  const size_t block = json.find("\"block\"");
  const size_t table = json.find("\"table\"");
  ASSERT_NE(std::string::npos, block);
  ASSERT_NE(std::string::npos, table);
  EXPECT_LT(block, table);
  EXPECT_NE(std::string::npos, json.find("\"hits\":"));
  EXPECT_NE(std::string::npos, json.find("\"misses\":"));
  EXPECT_NE(std::string::npos, json.find("\"shards\":4"));

  // A re-read of the same keys is all cache hits: misses stay flat.
  const std::string before = CacheProperty();
  for (int i = 0; i < 500; i++) EXPECT_EQ(std::string(100, 'v'), Get(Key(i)));
  const std::string after = CacheProperty();
  const auto misses_of = [](const std::string& j) {
    return std::strtoull(j.c_str() + j.find("\"misses\":") + 9, nullptr, 10);
  };
  const auto hits_of = [](const std::string& j) {
    return std::strtoull(j.c_str() + j.find("\"hits\":") + 7, nullptr, 10);
  };
  EXPECT_EQ(misses_of(before), misses_of(after));
  EXPECT_GT(hits_of(after), hits_of(before));
}

TEST_F(ReadPathDBTest, StandingIteratorSurvivesCacheEviction) {
  // A cache far smaller than the dataset: iterating the whole keyspace
  // forces every block through the cache, evicting earlier ones while
  // the iterator may still hold references into them.
  options_.block_cache_size = 8 << 10;
  options_.block_cache_shards = 2;
  Open();
  const int n = 2000;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "v" + std::to_string(i)).ok());
  }
  db_->CompactRange(nullptr, nullptr);

  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  int count = 0;
  for (; it->Valid(); it->Next()) {
    ASSERT_EQ(Key(count), it->key().ToString());
    ASSERT_EQ("v" + std::to_string(count), it->value().ToString());
    // Interleave point reads on far-away keys to churn the cache while
    // the iterator is mid-block.
    if (count % 97 == 0) Get(Key((count + n / 2) % n));
    count++;
  }
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  EXPECT_EQ(n, count);
}

TEST_F(ReadPathDBTest, PartitionedFilterPointReads) {
  options_.bloom_bits_per_key = 10;
  options_.filter_partition_bytes = 256;  // many partitions per table
  options_.block_cache_size = 512 << 10;
  Open();
  const int n = 3000;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "pv" + std::to_string(i)).ok());
  }
  db_->CompactRange(nullptr, nullptr);

  // Every present key answers through its covering partition; absent
  // keys (same length, interleaved) answer NotFound without error.
  Random rnd(301);
  for (int probe = 0; probe < 1000; probe++) {
    const int i = static_cast<int>(rnd.Next() % n);
    ASSERT_EQ("pv" + std::to_string(i), Get(Key(i)));
    ASSERT_EQ("<nf>", Get(Key(i) + "x"));
  }
  // Survives reopen (filters reload from disk, not the memtable path).
  Reopen();
  EXPECT_EQ("pv0", Get(Key(0)));
  EXPECT_EQ("pv" + std::to_string(n - 1), Get(Key(n - 1)));
  EXPECT_EQ("<nf>", Get("zzz-absent"));
}

TEST_F(ReadPathDBTest, PartitionedFilterBoundarySeeksBothDirections) {
  options_.bloom_bits_per_key = 10;
  options_.filter_partition_bytes = 256;
  Open();
  const int n = 3000;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), std::to_string(i)).ok());
  }
  db_->CompactRange(nullptr, nullptr);

  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  // Forward walk across the whole table: every partition boundary is
  // crossed in order.
  it->SeekToFirst();
  for (int i = 0; i < n; i++, it->Next()) {
    ASSERT_TRUE(it->Valid()) << "at " << i;
    ASSERT_EQ(Key(i), it->key().ToString());
  }
  EXPECT_FALSE(it->Valid());

  // Reverse walk.
  it->SeekToLast();
  for (int i = n - 1; i >= 0; i--, it->Prev()) {
    ASSERT_TRUE(it->Valid()) << "at " << i;
    ASSERT_EQ(Key(i), it->key().ToString());
  }
  EXPECT_FALSE(it->Valid());

  // Targeted seeks landing just before / after keys, including between
  // neighbors (exercises partition index lookups on both sides).
  Random rnd(302);
  for (int probe = 0; probe < 500; probe++) {
    const int i = static_cast<int>(rnd.Next() % n);
    it->Seek(Key(i));
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(Key(i), it->key().ToString());
    it->Seek(Key(i) + "!");  // between Key(i) and Key(i+1)
    if (i + 1 < n) {
      ASSERT_TRUE(it->Valid());
      EXPECT_EQ(Key(i + 1), it->key().ToString());
    } else {
      EXPECT_FALSE(it->Valid());
    }
  }
  EXPECT_TRUE(it->status().ok());
}

TEST_F(ReadPathDBTest, SharedExternalCacheAcrossReopens) {
  std::unique_ptr<read::Cache> shared = read::NewShardedLRUCache(1 << 20, 4);
  options_.block_cache = shared.get();
  Open();
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "s").ok());
  }
  db_->CompactRange(nullptr, nullptr);
  for (int i = 0; i < 200; i++) EXPECT_EQ("s", Get(Key(i)));
  EXPECT_GT(shared->usage(), 0u);
  const uint64_t id_misses = shared->misses();
  db_.reset();
  // The cache outlives the DB; a reopen gets a fresh cache id, so its
  // reads miss rather than alias the dead instance's entries.
  Open();
  EXPECT_EQ("s", Get(Key(0)));
  EXPECT_GT(shared->misses(), id_misses);
}

}  // namespace
}  // namespace pipelsm
