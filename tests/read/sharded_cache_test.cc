// Lock-sharded LRU cache (src/read/cache.h): hit/miss/eviction
// semantics, pinning via shared_ptr handout, prefix invalidation, the
// never-evict-the-just-inserted-entry rule, bound obs instruments, and
// a multi-threaded hammer over every shard.
#include "src/read/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace pipelsm::read {
namespace {

std::shared_ptr<std::string> Val(const std::string& s) {
  return std::make_shared<std::string>(s);
}

std::string Get(Cache& cache, const std::string& key) {
  std::shared_ptr<std::string> v = cache.LookupAs<std::string>(key);
  return v ? *v : "<miss>";
}

TEST(ShardedCache, InsertLookupErase) {
  std::unique_ptr<Cache> cache = NewShardedLRUCache(1 << 20, 4);
  EXPECT_EQ(nullptr, cache->Lookup("a"));
  cache->Insert("a", Val("1"), 10);
  cache->Insert("b", Val("2"), 10);
  EXPECT_EQ("1", Get(*cache, "a"));
  EXPECT_EQ("2", Get(*cache, "b"));
  EXPECT_EQ(20u, cache->usage());

  cache->Insert("a", Val("1b"), 30);  // replace re-charges
  EXPECT_EQ("1b", Get(*cache, "a"));
  EXPECT_EQ(40u, cache->usage());

  cache->Erase("a");
  EXPECT_EQ(nullptr, cache->Lookup("a"));
  EXPECT_EQ("2", Get(*cache, "b"));
  EXPECT_EQ(10u, cache->usage());
  cache->Erase("never-inserted");  // no-op
}

TEST(ShardedCache, ShardCountRoundsToPowerOfTwo) {
  EXPECT_EQ(4u, NewShardedLRUCache(1 << 20, 3)->num_shards());
  EXPECT_EQ(1u, NewShardedLRUCache(1 << 20, 1)->num_shards());
  EXPECT_EQ(16u, NewShardedLRUCache(1 << 20, 16)->num_shards());
  EXPECT_GE(NewShardedLRUCache(1 << 20, 0)->num_shards(), 1u);  // auto
  EXPECT_EQ(1u << 20, NewShardedLRUCache(1 << 20, 4)->capacity());
}

TEST(ShardedCache, EvictsLeastRecentlyUsed) {
  // Single shard so the LRU order is global and deterministic.
  std::unique_ptr<Cache> cache = NewShardedLRUCache(30, 1);
  cache->Insert("a", Val("1"), 10);
  cache->Insert("b", Val("2"), 10);
  cache->Insert("c", Val("3"), 10);
  EXPECT_EQ("1", Get(*cache, "a"));  // promote a over b
  cache->Insert("d", Val("4"), 10);  // evicts b (the coldest)
  EXPECT_EQ(nullptr, cache->Lookup("b"));
  EXPECT_EQ("1", Get(*cache, "a"));
  EXPECT_EQ("3", Get(*cache, "c"));
  EXPECT_EQ("4", Get(*cache, "d"));
  EXPECT_EQ(1u, cache->evictions());
}

TEST(ShardedCache, JustInsertedEntrySurvivesOverCapacityInsert) {
  std::unique_ptr<Cache> cache = NewShardedLRUCache(10, 1);
  cache->Insert("small", Val("s"), 5);
  cache->Insert("huge", Val("h"), 100);  // > capacity on its own
  // The oversized entry still serves the caller that loaded it; the
  // older entry is the victim.
  EXPECT_EQ("h", Get(*cache, "huge"));
  EXPECT_EQ(nullptr, cache->Lookup("small"));
}

TEST(ShardedCache, PinnedValueOutlivesEviction) {
  std::unique_ptr<Cache> cache = NewShardedLRUCache(10, 1);
  cache->Insert("pinned", Val("alive"), 10);
  std::shared_ptr<std::string> pin = cache->LookupAs<std::string>("pinned");
  ASSERT_NE(nullptr, pin);
  cache->Insert("other", Val("x"), 10);  // evicts "pinned" from the cache
  EXPECT_EQ(nullptr, cache->Lookup("pinned"));
  EXPECT_EQ("alive", *pin);  // the handed-out reference stays valid
}

TEST(ShardedCache, ErasePrefixDropsAcrossShards) {
  std::unique_ptr<Cache> cache = NewShardedLRUCache(1 << 20, 8);
  // Spread one "table's" blocks over many shards via distinct suffixes.
  for (int i = 0; i < 64; i++) {
    cache->Insert("tbl7/" + std::to_string(i), Val("x"), 1);
    cache->Insert("tbl8/" + std::to_string(i), Val("y"), 1);
  }
  EXPECT_EQ(64u, cache->ErasePrefix("tbl7/"));
  EXPECT_EQ(nullptr, cache->Lookup("tbl7/0"));
  EXPECT_EQ(nullptr, cache->Lookup("tbl7/63"));
  EXPECT_EQ("y", Get(*cache, "tbl8/0"));
  EXPECT_EQ(64u, cache->usage());
  EXPECT_EQ(0u, cache->ErasePrefix("tbl7/"));  // idempotent
}

TEST(ShardedCache, NewIdIsUnique) {
  std::unique_ptr<Cache> cache = NewShardedLRUCache(1 << 20, 2);
  const uint64_t a = cache->NewId();
  const uint64_t b = cache->NewId();
  EXPECT_NE(a, b);
}

TEST(ShardedCache, StatsAndBoundInstruments) {
  obs::Counter hits, misses, evictions;
  obs::Gauge usage;
  std::unique_ptr<Cache> cache = NewShardedLRUCache(20, 1);
  cache->BindStats(&hits, &misses, &evictions, &usage);

  cache->Lookup("a");  // miss
  cache->Insert("a", Val("1"), 10);
  cache->Lookup("a");                // hit
  cache->Insert("b", Val("2"), 10);  // fits
  cache->Insert("c", Val("3"), 10);  // evicts one
  EXPECT_EQ(1u, cache->hits());
  EXPECT_EQ(1u, cache->misses());
  EXPECT_EQ(1u, cache->evictions());
  EXPECT_EQ(1u, hits.value());
  EXPECT_EQ(1u, misses.value());
  EXPECT_EQ(1u, evictions.value());
  EXPECT_EQ(static_cast<int64_t>(cache->usage()), usage.value());
}

TEST(ShardedCache, ConcurrentHammer) {
  std::unique_ptr<Cache> cache = NewShardedLRUCache(64 << 10, 8);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; !stop.load() || i < 2000; i++) {
        if (i >= 2000 && stop.load()) break;
        const std::string key = "k" + std::to_string((t * 37 + i) % 512);
        if (i % 3 == 0) {
          cache->Insert(key, Val(key), 64);
        } else if (i % 7 == 0) {
          cache->Erase(key);
        } else {
          std::shared_ptr<std::string> v = cache->LookupAs<std::string>(key);
          if (v) {
            EXPECT_EQ(key, *v);  // value always matches its key
            reads.fetch_add(1);
          }
        }
      }
    });
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_LE(cache->usage(), cache->capacity());
}

}  // namespace
}  // namespace pipelsm::read
