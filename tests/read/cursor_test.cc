// Streaming SCAN cursors end-to-end (docs/READ_PATH.md): the
// one-shot-oracle equivalence on a pinned snapshot, bounded batches,
// stream limits, TTL expiry by the sweeper, connection-close and drain
// teardown, the cursor admission cap, and a cross-shard seam scan with
// a concurrent writer + compaction.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/client/client.h"
#include "src/db/db.h"
#include "src/env/env.h"
#include "src/obs/logger.h"
#include "src/server/server.h"
#include "src/shard/sharded_db.h"

namespace pipelsm::server {
namespace {

class CursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "cursor_test_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name();
    log_path_ = dbname_ + ".LOG";
    options_.create_if_missing = true;
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 32 << 10;
    DestroyDB(dbname_, options_);
    shard::ShardedDB::Destroy(dbname_, options_);
    ::unlink(log_path_.c_str());
  }

  void TearDown() override {
    client_.reset();
    server_.reset();  // drains before the DB goes away
    db_.reset();
    DestroyDB(dbname_, options_);
    shard::ShardedDB::Destroy(dbname_, options_);
    ::unlink(log_path_.c_str());
  }

  void OpenDB() {
    options_.listeners.clear();
    options_.listeners.push_back(&gate_);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, dbname_, &raw).ok());
    db_.reset(raw);
  }

  void OpenShardedDB(size_t shards, std::vector<std::string> boundaries) {
    options_.listeners.clear();
    options_.listeners.push_back(&gate_);
    shard::ShardedOptions sharded;
    sharded.num_shards = shards;
    sharded.boundary_keys = std::move(boundaries);
    shard::ShardedDB* raw = nullptr;
    Status s = shard::ShardedDB::Open(options_, sharded, dbname_, &raw);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(raw);
  }

  void StartServer(ServerOptions sopts = ServerOptions()) {
    if (!db_) OpenDB();
    sopts.host = "127.0.0.1";
    sopts.port = 0;  // ephemeral
    sopts.stall_gate = &gate_;
    if (sopts.info_log == nullptr) {
      if (!log_.get()) {
        ASSERT_TRUE(obs::NewFileLogger(Env::Posix(), log_path_, &log_).ok());
      }
      sopts.info_log = log_.get();
    }
    server_ = std::make_unique<Server>(db_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
  }

  client::Client* NewClient(int connections = 1) {
    client::ClientOptions copts;
    copts.host = "127.0.0.1";
    copts.port = server_->port();
    copts.num_connections = connections;
    client_ = std::make_unique<client::Client>(copts);
    return client_.get();
  }

  static std::string Key(int i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  void Fill(client::Client* cli, int n) {
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(cli->Put(Key(i), "v" + std::to_string(i)).ok());
    }
  }

  uint64_t CounterValue(const std::string& name) {
    return server_->metrics_registry()->RegisterCounter(name, "")->value();
  }

  int64_t GaugeValue(const std::string& name) {
    return server_->metrics_registry()->RegisterGauge(name, "")->value();
  }

  std::string ReadLog() {
    std::string contents;
    ReadFileToString(Env::Posix(), log_path_, &contents);
    return contents;
  }

  std::string dbname_;
  std::string log_path_;
  Options options_;
  WriteStallGate gate_;
  std::unique_ptr<obs::Logger> log_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<client::Client> client_;
};

TEST_F(CursorTest, StreamMatchesOneShotScanOnSameSnapshot) {
  ServerOptions sopts;
  sopts.max_scan_entries = 17;  // many batches per stream
  StartServer(sopts);
  client::Client* cli = NewClient();
  const int n = 500;
  Fill(cli, n);

  // Oracle: one-shot SCANs of the quiesced DB, paged by start-key
  // continuation (each page is capped at max_scan_entries). Nothing is
  // writing, so the pages concatenate to one consistent snapshot.
  std::vector<std::pair<std::string, std::string>> oracle;
  std::string start;
  while (true) {
    std::vector<std::pair<std::string, std::string>> page;
    ASSERT_TRUE(cli->Scan(start, 0, &page).ok());
    if (page.empty()) break;
    oracle.insert(oracle.end(), page.begin(), page.end());
    start = page.back().first + std::string(1, '\0');
  }
  ASSERT_EQ(static_cast<size_t>(n), oracle.size());

  std::unique_ptr<client::ScanStream> stream = cli->NewScanStream("", 0);
  // Writes racing the stream must not leak in: the cursor pinned its
  // snapshot at SCAN_OPEN.
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(cli->Put("aaa-racer" + std::to_string(i), "new").ok());
    ASSERT_TRUE(cli->Put(Key(i), "overwritten").ok());
  }

  std::vector<std::pair<std::string, std::string>> streamed;
  for (; stream->Valid(); stream->Next()) {
    streamed.emplace_back(stream->key(), stream->value());
  }
  ASSERT_TRUE(stream->status().ok()) << stream->status().ToString();
  EXPECT_EQ(oracle, streamed);
  EXPECT_GE(CounterValue("cursor.batches"), static_cast<uint64_t>(n) / 17);
}

TEST_F(CursorTest, LowLevelOpenNextCloseAndLimit) {
  ServerOptions sopts;
  sopts.max_scan_entries = 10;
  StartServer(sopts);
  client::Client* cli = NewClient();
  Fill(cli, 100);

  // limit below one batch: done on open, no SCAN_CLOSE needed.
  client::Client::CursorBatch batch;
  ASSERT_TRUE(cli->ScanOpen(Key(0), 5, &batch).ok());
  EXPECT_TRUE(batch.done);
  ASSERT_EQ(5u, batch.entries.size());
  EXPECT_EQ(Key(0), batch.entries[0].first);
  EXPECT_EQ(Key(4), batch.entries[4].first);

  // limit spanning several batches: exactly `limit` entries total.
  ASSERT_TRUE(cli->ScanOpen("", 25, &batch).ok());
  EXPECT_FALSE(batch.done);
  size_t total = batch.entries.size();
  const uint64_t id = batch.cursor_id;
  while (!batch.done) {
    ASSERT_TRUE(cli->ScanNext(id, &batch).ok());
    total += batch.entries.size();
  }
  EXPECT_EQ(25u, total);

  // The exhausted cursor is gone server-side; NEXT says so, CLOSE is
  // idempotent.
  Status s = cli->ScanNext(id, &batch);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(std::string::npos, s.ToString().find("unknown cursor"));
  EXPECT_TRUE(cli->ScanClose(id).ok());

  // Abandon one mid-stream: explicit close releases it.
  ASSERT_TRUE(cli->ScanOpen("", 0, &batch).ok());
  ASSERT_FALSE(batch.done);
  ASSERT_TRUE(cli->ScanClose(batch.cursor_id).ok());
  EXPECT_FALSE(cli->ScanNext(batch.cursor_id, &batch).ok());
  EXPECT_EQ(0, GaugeValue("cursor.active"));
}

TEST_F(CursorTest, TtlExpiryBySweeper) {
  ServerOptions sopts;
  sopts.max_scan_entries = 10;
  sopts.cursor_ttl_micros = 50 * 1000;
  sopts.cursor_sweep_period_micros = 10 * 1000;
  StartServer(sopts);
  client::Client* cli = NewClient();
  Fill(cli, 100);

  client::Client::CursorBatch batch;
  ASSERT_TRUE(cli->ScanOpen("", 0, &batch).ok());
  ASSERT_FALSE(batch.done);
  const uint64_t id = batch.cursor_id;

  // Idle past the TTL; the sweeper reclaims the cursor.
  for (int i = 0; i < 100 && CounterValue("cursor.expired") == 0; i++) {
    ::usleep(10 * 1000);
  }
  EXPECT_GE(CounterValue("cursor.expired"), 1u);
  Status s = cli->ScanNext(id, &batch);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(std::string::npos, ReadLog().find("EVENT cursor_expired"));
  EXPECT_EQ(0, GaugeValue("cursor.active"));
}

TEST_F(CursorTest, ActiveStreamOutlivesTtlBecauseBatchesRefresh) {
  ServerOptions sopts;
  sopts.max_scan_entries = 5;
  sopts.cursor_ttl_micros = 80 * 1000;
  sopts.cursor_sweep_period_micros = 10 * 1000;
  StartServer(sopts);
  client::Client* cli = NewClient();
  const int n = 60;
  Fill(cli, n);

  // Pull a batch every ~20ms — always inside the TTL, across a window
  // several TTLs long. The stream must never expire mid-use.
  client::Client::CursorBatch batch;
  ASSERT_TRUE(cli->ScanOpen("", 0, &batch).ok());
  size_t total = batch.entries.size();
  while (!batch.done) {
    ::usleep(20 * 1000);
    ASSERT_TRUE(cli->ScanNext(batch.cursor_id, &batch).ok());
    total += batch.entries.size();
  }
  EXPECT_EQ(static_cast<size_t>(n), total);
  EXPECT_EQ(0u, CounterValue("cursor.expired"));
}

TEST_F(CursorTest, ConnectionCloseFreesCursors) {
  ServerOptions sopts;
  sopts.max_scan_entries = 10;
  StartServer(sopts);
  client::Client* cli = NewClient();
  Fill(cli, 100);

  client::Client::CursorBatch batch;
  ASSERT_TRUE(cli->ScanOpen("", 0, &batch).ok());
  ASSERT_FALSE(batch.done);
  EXPECT_EQ(1, GaugeValue("cursor.active"));

  client_.reset();  // closes the opening connection
  for (int i = 0; i < 100 && GaugeValue("cursor.active") != 0; i++) {
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(0, GaugeValue("cursor.active"));
  EXPECT_GE(CounterValue("cursor.closed"), 1u);
}

TEST_F(CursorTest, DrainClosesOpenCursors) {
  ServerOptions sopts;
  sopts.max_scan_entries = 10;
  StartServer(sopts);
  client::Client* cli = NewClient();
  Fill(cli, 100);

  client::Client::CursorBatch batch;
  ASSERT_TRUE(cli->ScanOpen("", 0, &batch).ok());
  ASSERT_FALSE(batch.done);

  server_->Drain();  // must not hang on the pinned snapshot
  EXPECT_FALSE(server_->running());
  EXPECT_GE(CounterValue("cursor.closed"), 1u);
  EXPECT_EQ(0, GaugeValue("cursor.active"));
  client_.reset();
}

TEST_F(CursorTest, MaxCursorsAdmissionCap) {
  ServerOptions sopts;
  sopts.max_scan_entries = 10;
  sopts.max_cursors = 1;
  StartServer(sopts);
  client::Client* cli = NewClient();
  Fill(cli, 100);

  client::Client::CursorBatch first;
  ASSERT_TRUE(cli->ScanOpen("", 0, &first).ok());
  ASSERT_FALSE(first.done);

  client::Client::CursorBatch second;
  Status s = cli->ScanOpen("", 0, &second);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(std::string::npos, s.ToString().find("cursor limit"));

  // Freeing the slot re-admits.
  ASSERT_TRUE(cli->ScanClose(first.cursor_id).ok());
  EXPECT_TRUE(cli->ScanOpen("", 0, &second).ok());
}

TEST_F(CursorTest, ShardSeamStreamWithConcurrentWritesAndCompaction) {
  ASSERT_NO_FATAL_FAILURE(OpenShardedDB(2, {Key(250)}));
  ServerOptions sopts;
  sopts.max_scan_entries = 13;
  StartServer(sopts);
  client::Client* cli = NewClient();
  const int n = 500;  // keys 0..249 on shard 0, 250.. on shard 1
  Fill(cli, n);

  std::unique_ptr<client::ScanStream> stream = cli->NewScanStream("", 0);

  // A writer churns both shards and forces compactions while the
  // stream walks across the seam on its pinned fleet snapshot.
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    int i = 0;
    while (!stop.load()) {
      db_->Put(WriteOptions(), Key(i % n), "churn" + std::to_string(i));
      if (++i % 200 == 0) db_->CompactRange(nullptr, nullptr);
    }
  });

  int count = 0;
  for (; stream->Valid(); stream->Next()) {
    ASSERT_EQ(Key(count), stream->key());
    ASSERT_EQ("v" + std::to_string(count), stream->value());
    count++;
  }
  stop.store(true);
  churn.join();
  ASSERT_TRUE(stream->status().ok()) << stream->status().ToString();
  EXPECT_EQ(n, count);
  stream.reset();
  client_.reset();
}

}  // namespace
}  // namespace pipelsm::server
