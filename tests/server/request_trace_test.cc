// Per-request end-to-end tracing (docs/OBSERVABILITY.md): a request
// slowed by an injected WAL-append delay must emit one
// "EVENT slow_request" line whose db_micros stage accounts for the
// injected latency, and sampled requests must land in a TraceCollector
// as server-process spans alongside whatever else shares the collector.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>

#include "src/client/client.h"
#include "src/db/db.h"
#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/obs/logger.h"
#include "src/obs/trace.h"
#include "src/server/server.h"

namespace pipelsm::server {
namespace {

// Value of `key=` in the first line of `log` containing `marker`, or -1.
long long EventField(const std::string& log, const std::string& marker,
                     const std::string& key) {
  const size_t at = log.find(marker);
  if (at == std::string::npos) return -1;
  const size_t eol = log.find('\n', at);
  const std::string line = log.substr(at, eol - at);
  const size_t k = line.find(key + "=");
  if (k == std::string::npos) return -1;
  return std::atoll(line.c_str() + k + key.size() + 1);
}

class RequestTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "request_trace_test_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name();
    log_path_ = dbname_ + ".LOG";
    options_.create_if_missing = true;
    options_.env = &fault_;
    DestroyDB(dbname_, options_);
    ::unlink(log_path_.c_str());
  }

  void TearDown() override {
    server_.reset();
    client_.reset();
    db_.reset();
    fault_.ClearFaults();
    DestroyDB(dbname_, options_);
    ::unlink(log_path_.c_str());
  }

  void StartServer(ServerOptions sopts = ServerOptions()) {
    options_.listeners.clear();
    options_.listeners.push_back(&gate_);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, dbname_, &raw).ok());
    db_.reset(raw);
    sopts.host = "127.0.0.1";
    sopts.port = 0;
    sopts.stall_gate = &gate_;
    ASSERT_TRUE(obs::NewFileLogger(Env::Posix(), log_path_, &log_).ok());
    sopts.info_log = log_.get();
    server_ = std::make_unique<Server>(db_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
  }

  client::Client* NewClient() {
    client::ClientOptions copts;
    copts.host = "127.0.0.1";
    copts.port = server_->port();
    client_ = std::make_unique<client::Client>(copts);
    return client_.get();
  }

  std::string ReadLog() {
    std::string contents;
    ReadFileToString(Env::Posix(), log_path_, &contents);
    return contents;
  }

  std::string dbname_;
  std::string log_path_;
  Options options_;
  WriteStallGate gate_;
  FaultInjectionEnv fault_{Env::Posix()};
  std::unique_ptr<obs::Logger> log_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<client::Client> client_;
};

TEST_F(RequestTraceTest, SlowRequestLineAccountsForInjectedDbDelay) {
  ServerOptions sopts;
  sopts.slow_request_micros = 10 * 1000;  // 10 ms threshold
  StartServer(sopts);
  client::Client* cli = NewClient();
  ASSERT_TRUE(cli->Put("fast", "v").ok());  // under threshold: no line

  // 60 ms injected into the WAL append puts the PUT's db stage well over
  // the threshold, and the breakdown must attribute it to db_micros.
  fault_.SetPathFilter(FaultOp::kAppend, ".log");
  fault_.SetDelayMicros(FaultOp::kAppend, 60 * 1000);
  ASSERT_TRUE(cli->Put("slow", "v").ok());
  fault_.ClearFaults();

  // The reply reaches the client before the server stamps the request
  // finished, so the line can trail the Put by a moment.
  std::string log;
  size_t at = std::string::npos;
  for (int i = 0; i < 500 && at == std::string::npos; i++) {
    log = ReadLog();
    at = log.find("EVENT slow_request type=PUT");
    if (at == std::string::npos) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_NE(std::string::npos, at) << log;
  // Exactly one slow line: the fast warm-up PUT stayed under threshold.
  EXPECT_EQ(std::string::npos, log.find("EVENT slow_request", at + 1));
  const long long total =
      EventField(log, "EVENT slow_request", "total_micros");
  const long long db = EventField(log, "EVENT slow_request", "db_micros");
  const long long queue =
      EventField(log, "EVENT slow_request", "queue_micros");
  const long long reply =
      EventField(log, "EVENT slow_request", "reply_micros");
  EXPECT_GE(db, 50 * 1000) << log;   // injected delay shows up in db stage
  EXPECT_GE(total, db);              // stages nest inside the total
  EXPECT_GE(queue, 0);
  EXPECT_GE(reply, 0);
  EXPECT_LE(queue + db + reply, total + 1000);  // consistent breakdown

  // The slow-request counter ticked exactly once.
  long long slow_count = -1;
  for (const obs::MetricSample& s : server_->metrics_registry()->Snapshot()) {
    if (s.name == "server.slow_requests") {
      slow_count = static_cast<long long>(s.counter);
    }
  }
  EXPECT_EQ(1, slow_count);
}

TEST_F(RequestTraceTest, ThresholdZeroDisablesSlowRequestLines) {
  ServerOptions sopts;
  sopts.slow_request_micros = 0;
  StartServer(sopts);
  client::Client* cli = NewClient();
  fault_.SetPathFilter(FaultOp::kAppend, ".log");
  fault_.SetDelayMicros(FaultOp::kAppend, 20 * 1000);
  ASSERT_TRUE(cli->Put("slow", "v").ok());
  fault_.ClearFaults();
  EXPECT_EQ(std::string::npos, ReadLog().find("EVENT slow_request"));
}

TEST_F(RequestTraceTest, SampledRequestsLandInTheTraceCollector) {
  obs::TraceCollector trace;
  ServerOptions sopts;
  sopts.trace = &trace;
  sopts.trace_sample_every = 1;  // sample everything
  StartServer(sopts);
  client::Client* cli = NewClient();
  ASSERT_TRUE(cli->Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(cli->Get("k", &value).ok());

  // Drain first: it joins every server thread, so all sampled spans have
  // landed by the time we look (and the collector outlives the server).
  client_.reset();
  server_.reset();
  // Each sampled request records a whole-request span plus its db stage.
  EXPECT_GE(trace.span_count(), 4u);
  const std::string json = trace.ToJson();
  EXPECT_NE(std::string::npos, json.find("\"request\""));
  EXPECT_NE(std::string::npos, json.find("\"db\""));
  EXPECT_NE(std::string::npos, json.find("server requests"));
}

TEST_F(RequestTraceTest, SamplingEveryNthRecordsRoughlyOneInN) {
  obs::TraceCollector trace;
  ServerOptions sopts;
  sopts.trace = &trace;
  sopts.trace_sample_every = 8;
  StartServer(sopts);
  client::Client* cli = NewClient();
  for (int i = 0; i < 32; i++) {
    ASSERT_TRUE(cli->Put("k" + std::to_string(i), "v").ok());
  }
  client_.reset();
  server_.reset();  // joins all threads; the sample set is final
  // 32 requests at 1-in-8 → 4 sampled → 8 spans (request + db each).
  EXPECT_GE(trace.span_count(), 2u);
  EXPECT_LE(trace.span_count(), 12u);
}

}  // namespace
}  // namespace pipelsm::server
