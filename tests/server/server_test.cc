// End-to-end tests of the epoll server + pipelined client against a real
// DB on the posix env: request semantics, group-commit durability under
// 16 concurrent writers, protocol-error connection drops (with the EVENT
// line), stall-gate backpressure, and drain.
#include "src/server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/client/client.h"
#include "src/db/db.h"
#include "src/env/env.h"
#include "src/obs/logger.h"
#include "tests/obs/json_check.h"

namespace pipelsm::server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "server_test_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name();
    log_path_ = dbname_ + ".LOG";
    options_.create_if_missing = true;
    DestroyDB(dbname_, options_);
    ::unlink(log_path_.c_str());
  }

  void TearDown() override {
    server_.reset();  // drains before the DB goes away
    client_.reset();
    db_.reset();
    DestroyDB(dbname_, options_);
    ::unlink(log_path_.c_str());
  }

  void OpenDB() {
    options_.listeners.clear();
    options_.listeners.push_back(&gate_);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, dbname_, &raw).ok());
    db_.reset(raw);
  }

  void StartServer(ServerOptions sopts = ServerOptions()) {
    if (!db_) OpenDB();
    sopts.host = "127.0.0.1";
    sopts.port = 0;  // ephemeral
    sopts.stall_gate = &gate_;
    if (sopts.info_log == nullptr) {
      if (!log_.get()) {
        ASSERT_TRUE(
            obs::NewFileLogger(Env::Posix(), log_path_, &log_).ok());
      }
      sopts.info_log = log_.get();
    }
    server_ = std::make_unique<Server>(db_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
  }

  client::Client* NewClient(int connections = 1) {
    client::ClientOptions copts;
    copts.host = "127.0.0.1";
    copts.port = server_->port();
    copts.num_connections = connections;
    client_ = std::make_unique<client::Client>(copts);
    return client_.get();
  }

  std::string ReadLog() {
    std::string contents;
    ReadFileToString(Env::Posix(), log_path_, &contents);
    return contents;
  }

  std::string dbname_;
  std::string log_path_;
  Options options_;
  WriteStallGate gate_;
  std::unique_ptr<obs::Logger> log_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<client::Client> client_;
};

TEST_F(ServerTest, StartPingDrain) {
  StartServer();
  EXPECT_GT(server_->port(), 0);
  client::Client* cli = NewClient();
  EXPECT_TRUE(cli->Ping().ok());
  client_.reset();
  server_->Drain();
  EXPECT_FALSE(server_->running());
  const std::string log = ReadLog();
  EXPECT_NE(std::string::npos, log.find("EVENT server_start"));
  EXPECT_NE(std::string::npos, log.find("EVENT conn_open"));
  EXPECT_NE(std::string::npos, log.find("EVENT drain_begin"));
  EXPECT_NE(std::string::npos, log.find("EVENT drain_end"));
}

TEST_F(ServerTest, PutGetDeleteScanStats) {
  StartServer();
  client::Client* cli = NewClient();

  ASSERT_TRUE(cli->Put("alpha", "1").ok());
  ASSERT_TRUE(cli->Put("beta", "2").ok());
  ASSERT_TRUE(cli->Put("gamma", "3").ok());

  std::string value;
  ASSERT_TRUE(cli->Get("beta", &value).ok());
  EXPECT_EQ("2", value);
  EXPECT_TRUE(cli->Get("nope", &value).IsNotFound());

  ASSERT_TRUE(cli->Delete("beta").ok());
  EXPECT_TRUE(cli->Get("beta", &value).IsNotFound());

  std::vector<server::BatchOp> ops(2);
  ops[0].key = "delta";
  ops[0].value = "4";
  ops[1].is_delete = true;
  ops[1].key = "alpha";
  ASSERT_TRUE(cli->WriteBatch(ops).ok());
  EXPECT_TRUE(cli->Get("alpha", &value).IsNotFound());
  ASSERT_TRUE(cli->Get("delta", &value).ok());
  EXPECT_EQ("4", value);

  std::vector<std::pair<std::string, std::string>> entries;
  ASSERT_TRUE(cli->Scan("", 0, &entries).ok());
  ASSERT_EQ(2u, entries.size());  // delta, gamma
  EXPECT_EQ("delta", entries[0].first);
  EXPECT_EQ("gamma", entries[1].first);

  // Scan with a start key and a limit.
  ASSERT_TRUE(cli->Scan("gamma", 1, &entries).ok());
  ASSERT_EQ(1u, entries.size());
  EXPECT_EQ("gamma", entries[0].first);

  // STATS default property and the metrics JSON (which must carry the
  // server.* instruments, since the server registers into the DB's
  // registry via DB::MetricsHandle).
  std::string stats;
  ASSERT_TRUE(cli->Stats("", &stats).ok());
  EXPECT_FALSE(stats.empty());
  std::string json;
  ASSERT_TRUE(cli->Stats("pipelsm.metrics", &json).ok());
  testjson::JsonValue root;
  std::string error;
  ASSERT_TRUE(testjson::ParseJson(json, &root, &error)) << error;
  const testjson::JsonValue* counters = root.Find("counters");
  ASSERT_NE(nullptr, counters);
  const testjson::JsonValue* conns = counters->Find("server.conns_total");
  ASSERT_NE(nullptr, conns);
  EXPECT_GE(conns->number_value, 1);

  EXPECT_TRUE(cli->Stats("no.such.property", &stats).IsInvalidArgument());
}

// SCAN limit hardening: limit=0 means the server default cap, a hostile
// huge limit is clamped server-side, and the payload byte cap truncates
// large-value scans before they can balloon the reply allocation.
TEST_F(ServerTest, ScanLimitsAreClampedServerSide) {
  ServerOptions sopts;
  sopts.max_scan_entries = 4;
  sopts.max_scan_bytes = 3000;
  StartServer(sopts);
  client::Client* cli = NewClient();

  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(cli->Put("small" + std::to_string(i), "v").ok());
  }

  // limit=0 -> default cap; hostile 0xffffffff -> same cap, no error,
  // no oversized reply.
  std::vector<std::pair<std::string, std::string>> entries;
  ASSERT_TRUE(cli->Scan("", 0, &entries).ok());
  EXPECT_EQ(4u, entries.size());
  ASSERT_TRUE(cli->Scan("", 0xffffffffu, &entries).ok());
  EXPECT_EQ(4u, entries.size());

  // Byte cap: 2KB values mean the third entry crosses 3000 payload
  // bytes, so the reply carries fewer than the entry cap.
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(
        cli->Put("big" + std::to_string(i), std::string(2048, 'x')).ok());
  }
  ASSERT_TRUE(cli->Scan("big", 0xffffffffu, &entries).ok());
  ASSERT_EQ(2u, entries.size());  // 2 * (3 + 2048) >= 3000 stops the scan
  EXPECT_EQ("big0", entries[0].first);
  EXPECT_EQ(std::string(2048, 'x'), entries[0].second);
}

TEST_F(ServerTest, PipelinedAsyncRequests) {
  StartServer();
  client::Client* cli = NewClient(2);
  std::vector<std::future<client::Result>> futures;
  for (int i = 0; i < 500; i++) {
    futures.push_back(
        cli->AsyncPut("key" + std::to_string(i), "v" + std::to_string(i)));
  }
  for (auto& f : futures) {
    EXPECT_TRUE(cli->Wait(f).status.ok());
  }
  futures.clear();
  for (int i = 0; i < 500; i++) {
    futures.push_back(cli->AsyncGet("key" + std::to_string(i)));
  }
  for (int i = 0; i < 500; i++) {
    client::Result r = cli->Wait(futures[i]);
    ASSERT_TRUE(r.status.ok()) << i;
    EXPECT_EQ("v" + std::to_string(i), r.value);
  }
}

// Send coalescing: with pipeline_buffer_bytes set high, async frames sit
// in the client until Flush() (or a sync call) pushes them out, then all
// complete. The sync API must stay usable with buffering enabled.
TEST_F(ServerTest, BufferedClientFlush) {
  StartServer();
  client::ClientOptions copts;
  copts.host = "127.0.0.1";
  copts.port = server_->port();
  copts.num_connections = 4;
  copts.connection_stride = 8;
  copts.pipeline_buffer_bytes = 1 << 20;  // nothing auto-flushes
  client::Client cli(copts);

  std::vector<std::future<client::Result>> futures;
  for (int i = 0; i < 200; i++) {
    futures.push_back(
        cli.AsyncPut("buf" + std::to_string(i), "v" + std::to_string(i)));
  }
  cli.Flush();
  for (auto& f : futures) {
    ASSERT_TRUE(cli.Wait(f).status.ok());
  }

  // Sync calls flush for themselves (and drag along anything buffered).
  auto pending = cli.AsyncPut("buf-tail", "tail");
  std::string value;
  ASSERT_TRUE(cli.Get("buf42", &value).ok());
  EXPECT_EQ("v42", value);
  EXPECT_TRUE(cli.Wait(pending).status.ok());
  ASSERT_TRUE(cli.Get("buf-tail", &value).ok());
  EXPECT_EQ("tail", value);
}

// The ISSUE's group-commit gate: 16 concurrent writers, every acked
// write durable across a reopen, and a non-trivial batch-size histogram.
TEST_F(ServerTest, GroupCommitConcurrentWritersDurable) {
  ServerOptions sopts;
  sopts.group_commit_window_micros = 2000;  // encourage folding
  sopts.sync_writes = false;
  StartServer(sopts);

  constexpr int kWriters = 16;
  constexpr int kPerWriter = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  std::vector<std::unique_ptr<client::Client>> clients;
  for (int w = 0; w < kWriters; w++) {
    client::ClientOptions copts;
    copts.host = "127.0.0.1";
    copts.port = server_->port();
    clients.push_back(std::make_unique<client::Client>(copts));
  }
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; i++) {
        const std::string key =
            "w" + std::to_string(w) + "_" + std::to_string(i);
        if (!clients[w]->Put(key, key).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  ASSERT_EQ(0, failures.load());

  // Batch-size histogram: commits happened, and at least one leader
  // folded followers (16 writers against a 2ms window make a singleton-
  // only history effectively impossible).
  std::string json;
  ASSERT_TRUE(db_->GetProperty("pipelsm.metrics", &json));
  testjson::JsonValue root;
  std::string error;
  ASSERT_TRUE(testjson::ParseJson(json, &root, &error)) << error;
  const testjson::JsonValue* hist = root.Find("histograms");
  ASSERT_NE(nullptr, hist);
  const testjson::JsonValue* batch =
      hist->Find("server.group_commit.batch_size");
  ASSERT_NE(nullptr, batch);
  const testjson::JsonValue* count = batch->Find("count");
  const testjson::JsonValue* max = batch->Find("max");
  ASSERT_NE(nullptr, count);
  ASSERT_NE(nullptr, max);
  EXPECT_GT(count->number_value, 0);
  EXPECT_GT(max->number_value, 1) << "no write requests were ever folded";

  // Durability of every acked write: drain the server, close the DB,
  // reopen, and look every key up.
  clients.clear();
  server_->Drain();
  server_.reset();
  db_.reset();
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options_, dbname_, &raw).ok());
  db_.reset(raw);
  std::string value;
  for (int w = 0; w < kWriters; w++) {
    for (int i = 0; i < kPerWriter; i++) {
      const std::string key =
          "w" + std::to_string(w) + "_" + std::to_string(i);
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok())
          << "acked write lost: " << key;
      EXPECT_EQ(key, value);
    }
  }
}

// Garbage on the wire must drop exactly that connection — with an EVENT
// line — while the server keeps serving others.
TEST_F(ServerTest, ProtocolErrorDropsConnection) {
  StartServer();
  client::Client* cli = NewClient();
  ASSERT_TRUE(cli->Put("survivor", "yes").ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(1, ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr));
  ASSERT_EQ(0, ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                         sizeof(addr)));
  const std::string garbage = "definitely not a pipelsm frame\n";
  ASSERT_EQ(static_cast<ssize_t>(garbage.size()),
            ::send(fd, garbage.data(), garbage.size(), 0));
  // The server must close on us: recv sees EOF (or reset).
  char buf[64];
  const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_LE(r, 0);
  ::close(fd);

  // The good connection is unaffected.
  std::string value;
  ASSERT_TRUE(cli->Get("survivor", &value).ok());
  EXPECT_EQ("yes", value);

  const std::string log = ReadLog();
  EXPECT_NE(std::string::npos, log.find("EVENT conn_protocol_error"));
  EXPECT_NE(std::string::npos, log.find("reason=protocol_error"));
}

// The stall gate parks reads: a PUT sent while the gate reports kStopped
// is not answered until the stall clears.
TEST_F(ServerTest, StallGateParksReads) {
  StartServer();
  client::Client* cli = NewClient();
  ASSERT_TRUE(cli->Ping().ok());  // connection established + readable

  obs::WriteStallInfo stop;
  stop.condition = obs::WriteStallCondition::kStopped;
  gate_.OnWriteStallChange(stop);

  auto future = cli->AsyncPut("stalled", "x");
  EXPECT_EQ(std::future_status::timeout,
            future.wait_for(std::chrono::milliseconds(100)))
      << "request was served while the DB reported a stopped write stall";

  obs::WriteStallInfo resume;
  resume.condition = obs::WriteStallCondition::kNormal;
  resume.previous = obs::WriteStallCondition::kStopped;  // honest edge
  gate_.OnWriteStallChange(resume);
  client::Result result = cli->Wait(future);
  EXPECT_TRUE(result.status.ok());
}

// Drain answers everything already accepted, then refuses new conns.
TEST_F(ServerTest, DrainAnswersAcceptedRequests) {
  StartServer();
  client::Client* cli = NewClient(4);
  std::vector<std::future<client::Result>> futures;
  for (int i = 0; i < 200; i++) {
    futures.push_back(cli->AsyncPut("drain" + std::to_string(i), "v"));
  }
  // Make sure the first half is fully served before the drain starts;
  // the second half races it (frames still in socket buffers when reads
  // park are reported failed at the client, not silently dropped).
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(cli->Wait(futures[i]).status.ok()) << i;
  }
  server_->Drain();
  int ok = 100, failed = 0;
  for (int i = 100; i < 200; i++) {
    const client::Result r = cli->Wait(futures[i]);
    if (r.status.ok()) {
      ok++;
    } else {
      failed++;  // raced the drain: rejected or connection closed
    }
  }
  EXPECT_EQ(200, ok + failed);
  EXPECT_GE(ok, 100);

  // New connections are refused (connect fails or is closed immediately).
  client::ClientOptions copts;
  copts.host = "127.0.0.1";
  copts.port = server_->port();
  client::Client late(copts);
  EXPECT_FALSE(late.Ping().ok());
}

}  // namespace
}  // namespace pipelsm::server
