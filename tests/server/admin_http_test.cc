// Tests of the admin HTTP endpoint (src/server/http.h + the server's
// admin plumbing): endpoint semantics (/metrics Prometheus conformance
// with per-shard labels, /healthz drain awareness, /stats, 404/405),
// hostile-input handling (oversized heads, bad methods, binary garbage,
// slowloris drips, pipelined junk, connection-cap refusal), and the
// gauge-hygiene guarantee that churn of every connection flavor leaves
// the active gauges at zero.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/client/client.h"
#include "src/db/db.h"
#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/obs/logger.h"
#include "src/server/http.h"
#include "src/server/server.h"
#include "src/shard/sharded_db.h"

namespace pipelsm::server {
namespace {

// ---------------------------------------------------------------------
// Raw HTTP/1.0 client helpers (the admin endpoint is deliberately too
// simple to deserve a real HTTP library).

int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

// Reads until the peer closes (the endpoint always closes after one
// response). Returns everything received.
std::string RecvUntilEof(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

struct HttpResponse {
  int status = 0;
  std::string content_type;
  std::string body;
  std::string raw;
};

void ParseHttpResponse(const std::string& raw, HttpResponse* out) {
  out->raw = raw;
  ASSERT_EQ(0u, raw.find("HTTP/1.0 ")) << raw.substr(0, 64);
  out->status = std::atoi(raw.c_str() + strlen("HTTP/1.0 "));
  const size_t head_end = raw.find("\r\n\r\n");
  ASSERT_NE(std::string::npos, head_end);
  const std::string head = raw.substr(0, head_end);
  const size_t ct = head.find("Content-Type: ");
  if (ct != std::string::npos) {
    const size_t eol = head.find("\r\n", ct);
    out->content_type =
        head.substr(ct + strlen("Content-Type: "),
                    eol == std::string::npos ? std::string::npos
                                             : eol - ct - strlen("Content-Type: "));
  }
  out->body = raw.substr(head_end + 4);
  // Connection: close semantics are part of the contract.
  EXPECT_NE(std::string::npos, head.find("Connection: close")) << head;
}

// One full request/response round trip against `port`.
void Fetch(int port, const std::string& request, HttpResponse* out) {
  int fd = ConnectTo(port);
  ASSERT_GE(fd, 0) << "connect failed: " << strerror(errno);
  ASSERT_TRUE(SendAll(fd, request));
  const std::string raw = RecvUntilEof(fd);
  ::close(fd);
  ASSERT_NO_FATAL_FAILURE(ParseHttpResponse(raw, out));
}

void Get(int port, const std::string& path, HttpResponse* out) {
  ASSERT_NO_FATAL_FAILURE(
      Fetch(port, "GET " + path + " HTTP/1.0\r\n\r\n", out));
}

// ---------------------------------------------------------------------
// Minimal Prometheus text-exposition conformance check: every
// non-comment line is `name{labels} value`, metric names are legal,
// every family carries exactly one # TYPE, and family lines are
// contiguous (no interleaving).

bool LegalMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); i++) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) ||
                       c == '_' || c == ':';
    if (i == 0 ? !alpha
                : !(alpha || std::isdigit(static_cast<unsigned char>(c)))) {
      return false;
    }
  }
  return true;
}

void CheckExpositionConformance(const std::string& text) {
  ASSERT_FALSE(text.empty());
  ASSERT_EQ('\n', text.back()) << "exposition must end with a newline";
  std::vector<std::string> family_order;  // first-appearance order
  std::string last_family;
  std::vector<std::string> typed_families;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    ASSERT_NE(std::string::npos, eol);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name ..." / "# TYPE name kind"
      ASSERT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(strlen("# TYPE "));
        const size_t sp = rest.find(' ');
        ASSERT_NE(std::string::npos, sp) << line;
        const std::string fam = rest.substr(0, sp);
        const std::string kind = rest.substr(sp + 1);
        ASSERT_TRUE(kind == "counter" || kind == "gauge" ||
                    kind == "summary")
            << line;
        for (const std::string& seen : typed_families) {
          ASSERT_NE(seen, fam) << "duplicate # TYPE for " << fam;
        }
        typed_families.push_back(fam);
      }
      continue;
    }
    // Sample line: name{labels} value
    size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(std::string::npos, name_end) << line;
    const std::string name = line.substr(0, name_end);
    ASSERT_TRUE(LegalMetricName(name)) << line;
    size_t value_start;
    if (line[name_end] == '{') {
      const size_t close = line.rfind('}');
      ASSERT_NE(std::string::npos, close) << line;
      value_start = close + 2;  // "} value"
      ASSERT_LT(close + 1, line.size());
      ASSERT_EQ(' ', line[close + 1]) << line;
    } else {
      value_start = name_end + 1;
    }
    ASSERT_LT(value_start, line.size()) << line;
    const std::string value = line.substr(value_start);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    ASSERT_TRUE(*end == '\0' || value == "NaN") << line;
    // Family = name minus a summary suffix; must be contiguous.
    std::string family = name;
    for (const char* suffix : {"_sum", "_count"}) {
      const size_t len = strlen(suffix);
      if (family.size() > len &&
          family.compare(family.size() - len, len, suffix) == 0) {
        const std::string stripped = family.substr(0, family.size() - len);
        for (const std::string& fam : typed_families) {
          if (fam == stripped) family = stripped;
        }
      }
    }
    if (family != last_family) {
      for (const std::string& seen : family_order) {
        ASSERT_NE(seen, family)
            << "family " << family << " not contiguous";
      }
      family_order.push_back(family);
      last_family = family;
    }
  }
  ASSERT_FALSE(family_order.empty());
}

// ---------------------------------------------------------------------

class AdminHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dbname_ = ::testing::TempDir() + "admin_http_test_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name();
    log_path_ = dbname_ + ".LOG";
    options_.create_if_missing = true;
    DestroyDB(dbname_, options_);
    ::unlink(log_path_.c_str());
  }

  void TearDown() override {
    server_.reset();
    client_.reset();
    db_.reset();
    DestroyDB(dbname_, options_);
    ::unlink(log_path_.c_str());
  }

  void OpenDB() {
    options_.listeners.clear();
    options_.listeners.push_back(&gate_);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, dbname_, &raw).ok());
    db_.reset(raw);
  }

  void OpenShardedDB(size_t shards, std::vector<std::string> boundaries) {
    options_.listeners.clear();
    options_.listeners.push_back(&gate_);
    shard::ShardedOptions sharded;
    sharded.num_shards = shards;
    sharded.boundary_keys = std::move(boundaries);
    shard::ShardedDB* raw = nullptr;
    Status s = shard::ShardedDB::Open(options_, sharded, dbname_, &raw);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(raw);
  }

  void StartServer(ServerOptions sopts = ServerOptions()) {
    if (!db_) OpenDB();
    sopts.host = "127.0.0.1";
    sopts.port = 0;
    sopts.admin_port = 0;  // ephemeral admin endpoint on every test
    sopts.stall_gate = &gate_;
    if (sopts.info_log == nullptr) {
      if (!log_.get()) {
        ASSERT_TRUE(obs::NewFileLogger(Env::Posix(), log_path_, &log_).ok());
      }
      sopts.info_log = log_.get();
    }
    server_ = std::make_unique<Server>(db_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->admin_port(), 0);
  }

  client::Client* NewClient(int connections = 1) {
    client::ClientOptions copts;
    copts.host = "127.0.0.1";
    copts.port = server_->port();
    copts.num_connections = connections;
    client_ = std::make_unique<client::Client>(copts);
    return client_.get();
  }

  // Named gauge value from the server's registry, or -1 if absent.
  int64_t GaugeValue(const std::string& name) {
    for (const obs::MetricSample& s :
         server_->metrics_registry()->Snapshot()) {
      if (s.name == name) return s.gauge;
    }
    return -1;
  }

  std::string dbname_;
  std::string log_path_;
  Options options_;
  WriteStallGate gate_;
  FaultInjectionEnv fault_{Env::Posix()};  // opt-in via options_.env
  std::unique_ptr<obs::Logger> log_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<client::Client> client_;
};

// ---------------------------------------------------------------------
// Endpoint semantics.

TEST_F(AdminHttpTest, HealthzStatsAndErrorStatuses) {
  StartServer();
  HttpResponse r;
  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/healthz", &r));
  EXPECT_EQ(200, r.status);
  EXPECT_EQ("ok\n", r.body);

  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/stats", &r));
  EXPECT_EQ(200, r.status);
  EXPECT_FALSE(r.body.empty());
  EXPECT_EQ(0u, r.content_type.find("text/plain"));

  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/advisor", &r));
  EXPECT_EQ(200, r.status);
  EXPECT_NE(std::string::npos, r.body.find("\"jobs\""));

  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/timeseries", &r));
  EXPECT_EQ(200, r.status);
  EXPECT_NE(std::string::npos, r.body.find("\"samples\""));

  // Unsharded DB has no arbiter: the property fails, so the path 404s.
  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/arbiter", &r));
  EXPECT_EQ(404, r.status);

  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/nope", &r));
  EXPECT_EQ(404, r.status);

  ASSERT_NO_FATAL_FAILURE(
      Fetch(server_->admin_port(), "POST /metrics HTTP/1.0\r\n\r\n", &r));
  EXPECT_EQ(405, r.status);
}

TEST_F(AdminHttpTest, MetricsExpositionIsConformant) {
  StartServer();
  client::Client* cli = NewClient();
  ASSERT_TRUE(cli->Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(cli->Get("k", &value).ok());

  HttpResponse r;
  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/metrics", &r));
  EXPECT_EQ(200, r.status);
  EXPECT_EQ("text/plain; version=0.0.4", r.content_type);
  ASSERT_NO_FATAL_FAILURE(CheckExpositionConformance(r.body));
  // Server- and engine-level families both present.
  EXPECT_NE(std::string::npos, r.body.find("pipelsm_server_conns_active"));
  EXPECT_NE(std::string::npos,
            r.body.find("# TYPE pipelsm_server_req_micros_put summary"));
  EXPECT_NE(std::string::npos,
            r.body.find("pipelsm_server_req_micros_put{quantile=\"0.99\"}"));
  EXPECT_NE(std::string::npos, r.body.find("pipelsm_db_write_stall_state"));
  EXPECT_NE(std::string::npos, r.body.find("pipelsm_server_draining 0"));
  EXPECT_NE(std::string::npos, r.body.find("pipelsm_advisor_regime_info{"));
}

TEST_F(AdminHttpTest, MetricsCarryShardLabelsOnATwoShardFleet) {
  ASSERT_NO_FATAL_FAILURE(OpenShardedDB(2, {"m"}));
  StartServer();
  client::Client* cli = NewClient();
  ASSERT_TRUE(cli->Put("apple", "1").ok());  // shard 0
  ASSERT_TRUE(cli->Put("zebra", "2").ok());  // shard 1

  HttpResponse r;
  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/metrics", &r));
  EXPECT_EQ(200, r.status);
  ASSERT_NO_FATAL_FAILURE(CheckExpositionConformance(r.body));
  // Engine families labeled per shard, both shards present.
  EXPECT_NE(std::string::npos,
            r.body.find("pipelsm_db_write_stall_state{shard=\"0\"}"));
  EXPECT_NE(std::string::npos,
            r.body.find("pipelsm_db_write_stall_state{shard=\"1\"}"));
  // The server's own per-shard write counters fold into shard labels.
  EXPECT_NE(std::string::npos,
            r.body.find("pipelsm_server_write_ops{shard=\"0\"}"));
  EXPECT_NE(std::string::npos,
            r.body.find("pipelsm_server_write_ops{shard=\"1\"}"));
  // Sharded fleets have an arbiter; its JSON endpoint serves too.
  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/arbiter", &r));
  EXPECT_EQ(200, r.status);
}

TEST_F(AdminHttpTest, HealthzReports503WhileDraining) {
  options_.env = &fault_;
  OpenDB();
  StartServer();
  const int admin_port = server_->admin_port();
  client::Client* cli = NewClient();
  ASSERT_TRUE(cli->Put("warm", "up").ok());

  // Pin the drain window open: the in-flight write sleeps inside the WAL
  // append, and Drain() joins the commit thread behind it.
  fault_.SetPathFilter(FaultOp::kAppend, ".log");
  fault_.SetDelayMicros(FaultOp::kAppend, 1200 * 1000);
  std::thread writer([&] { cli->Put("slow", "write"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread drainer([&] { server_->Drain(); });

  bool saw_503 = false;
  for (int i = 0; i < 200 && !saw_503; i++) {
    int fd = ConnectTo(admin_port);
    if (fd < 0) break;  // drain finished and closed the admin socket
    if (SendAll(fd, "GET /healthz HTTP/1.0\r\n\r\n")) {
      const std::string raw = RecvUntilEof(fd);
      if (raw.find("HTTP/1.0 503") == 0) {
        EXPECT_NE(std::string::npos, raw.find("draining"));
        saw_503 = true;
      }
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  writer.join();
  drainer.join();
  fault_.ClearFaults();
  EXPECT_TRUE(saw_503);
  EXPECT_FALSE(server_->running());
}

// ---------------------------------------------------------------------
// Hostile input.

TEST_F(AdminHttpTest, OversizedRequestLineGets431AndClose) {
  StartServer();
  HttpResponse r;
  const std::string huge = "GET /" + std::string(8192, 'a');
  ASSERT_NO_FATAL_FAILURE(Fetch(server_->admin_port(), huge, &r));
  EXPECT_EQ(431, r.status);
  // The endpoint still works afterwards.
  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/healthz", &r));
  EXPECT_EQ(200, r.status);
}

TEST_F(AdminHttpTest, MalformedRequestsGet400) {
  StartServer();
  const std::string bad[] = {
      "get /metrics HTTP/1.0\r\n\r\n",       // lowercase method
      "GET /metrics\r\n\r\n",                // missing version token
      "GETMETRICS\r\n\r\n",                  // no spaces at all
      "GET metrics HTTP/1.0\r\n\r\n",        // path without leading /
      std::string("\x00\x01\x02\xff garbage\r\n\r\n", 20),  // binary junk
  };
  for (const std::string& request : bad) {
    HttpResponse r;
    ASSERT_NO_FATAL_FAILURE(Fetch(server_->admin_port(), request, &r));
    EXPECT_EQ(400, r.status) << request.substr(0, 32);
  }
  HttpResponse r;
  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/healthz", &r));
  EXPECT_EQ(200, r.status);
}

TEST_F(AdminHttpTest, SlowlorisDripsStayBoundedAndServerStaysResponsive) {
  StartServer();
  // Four connections drip partial request heads and then stall.
  std::vector<int> drippers;
  for (int i = 0; i < 4; i++) {
    int fd = ConnectTo(server_->admin_port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendAll(fd, "GET /hea"));
    drippers.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // A well-behaved scrape still gets through immediately.
  HttpResponse r;
  ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/healthz", &r));
  EXPECT_EQ(200, r.status);
  // A dripper that eventually completes its head gets served.
  ASSERT_TRUE(SendAll(drippers[0], "lthz HTTP/1.0\r\n\r\n"));
  const std::string raw = RecvUntilEof(drippers[0]);
  EXPECT_EQ(0u, raw.find("HTTP/1.0 200"));
  for (int fd : drippers) ::close(fd);
}

TEST_F(AdminHttpTest, PipelinedGarbageAfterTheRequestIsIgnored) {
  StartServer();
  HttpResponse r;
  ASSERT_NO_FATAL_FAILURE(
      Fetch(server_->admin_port(),
            "GET /healthz HTTP/1.0\r\n\r\n" + std::string(2048, 'x'), &r));
  EXPECT_EQ(200, r.status);
  EXPECT_EQ("ok\n", r.body);
}

TEST_F(AdminHttpTest, ConnectionCapRefusesExtras) {
  ServerOptions sopts;
  sopts.max_admin_conns = 2;
  StartServer(sopts);
  int a = ConnectTo(server_->admin_port());
  int b = ConnectTo(server_->admin_port());
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  // Give the accept loop time to register both (the cap is checked at
  // accept, and the refused socket is closed without a response).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  int c = ConnectTo(server_->admin_port());
  ASSERT_GE(c, 0);
  const std::string raw = RecvUntilEof(c);  // immediate EOF, no HTTP reply
  EXPECT_TRUE(raw.empty()) << raw.substr(0, 64);
  ::close(c);
  ::close(a);
  ::close(b);
  // Once the slots free up, scrapes work again.
  bool ok = false;
  for (int i = 0; i < 100 && !ok; i++) {
    int fd = ConnectTo(server_->admin_port());
    if (fd >= 0 && SendAll(fd, "GET /healthz HTTP/1.0\r\n\r\n")) {
      ok = RecvUntilEof(fd).find("HTTP/1.0 200") == 0;
    }
    if (fd >= 0) ::close(fd);
    if (!ok) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(ok);
}

// ---------------------------------------------------------------------
// Gauge hygiene: after churning every connection flavor — clean client
// traffic, clean admin scrapes, hostile admin connections, half-open
// drips — every active-count gauge returns to zero (the scrape itself
// is made through the registry, not the endpoint, so there is no
// self-counting).

TEST_F(AdminHttpTest, ActiveGaugesReturnToZeroAfterChurn) {
  StartServer();
  for (int round = 0; round < 3; round++) {
    client::Client* cli = NewClient(2);
    ASSERT_TRUE(cli->Put("k" + std::to_string(round), "v").ok());
    std::string value;
    ASSERT_TRUE(cli->Get("k" + std::to_string(round), &value).ok());
    client_.reset();  // closes client connections

    HttpResponse r;
    ASSERT_NO_FATAL_FAILURE(Get(server_->admin_port(), "/metrics", &r));
    EXPECT_EQ(200, r.status);
    ASSERT_NO_FATAL_FAILURE(Fetch(server_->admin_port(), std::string(8192, 'a'), &r));
    EXPECT_EQ(431, r.status);
    ASSERT_NO_FATAL_FAILURE(Fetch(server_->admin_port(), "BAD\r\n\r\n", &r));
    EXPECT_EQ(400, r.status);
    int half_open = ConnectTo(server_->admin_port());
    ASSERT_GE(half_open, 0);
    SendAll(half_open, "GET /par");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ::close(half_open);  // client walks away mid-head
  }
  // Closes are processed by the I/O loops asynchronously; poll.
  bool zero = false;
  for (int i = 0; i < 500 && !zero; i++) {
    zero = GaugeValue("server.conns_active") == 0 &&
           GaugeValue("server.admin.conns_active") == 0 &&
           GaugeValue("server.requests_inflight") == 0;
    if (!zero) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(0, GaugeValue("server.conns_active"));
  EXPECT_EQ(0, GaugeValue("server.admin.conns_active"));
  EXPECT_EQ(0, GaugeValue("server.requests_inflight"));
  // The churn really exercised the hostile paths.
  bool saw_errors = false;
  for (const obs::MetricSample& s : server_->metrics_registry()->Snapshot()) {
    if (s.name == "server.admin.http_errors") saw_errors = s.counter >= 6;
  }
  EXPECT_TRUE(saw_errors);
}

// ---------------------------------------------------------------------
// Parser unit tests (no server).

TEST(HttpRequestParser, AcceptsSplitFeeds) {
  HttpRequestParser p;
  EXPECT_EQ(HttpRequestParser::Result::kNeedMore, p.Feed("GET /me", 7));
  EXPECT_EQ(HttpRequestParser::Result::kNeedMore,
            p.Feed("trics HTTP/1.0\r\n", 16));
  EXPECT_EQ(HttpRequestParser::Result::kComplete, p.Feed("\r\n", 2));
  EXPECT_EQ("GET", p.method());
  EXPECT_EQ("/metrics", p.path());
}

TEST(HttpRequestParser, ToleratesBareLfAndHeaders) {
  HttpRequestParser p;
  const std::string req =
      "GET /healthz HTTP/1.1\nHost: x\nAccept: */*\n\n";
  EXPECT_EQ(HttpRequestParser::Result::kComplete,
            p.Feed(req.data(), req.size()));
  EXPECT_EQ("/healthz", p.path());
}

TEST(HttpRequestParser, RejectsControlBytes) {
  HttpRequestParser p;
  const char req[] = "GET /\x01 HTTP/1.0\r\n\r\n";
  EXPECT_EQ(HttpRequestParser::Result::kError,
            p.Feed(req, sizeof(req) - 1));
  EXPECT_EQ(400, p.error_status());
}

TEST(HttpRequestParser, CapsHeadAt4096Bytes) {
  HttpRequestParser p;
  const std::string chunk(1000, 'a');
  HttpRequestParser::Result r = HttpRequestParser::Result::kNeedMore;
  for (int i = 0; i < 5 && r == HttpRequestParser::Result::kNeedMore; i++) {
    r = p.Feed(chunk.data(), chunk.size());
  }
  EXPECT_EQ(HttpRequestParser::Result::kError, r);
  EXPECT_EQ(431, p.error_status());
}

TEST(HttpRequestParser, VerdictIsSticky) {
  HttpRequestParser p;
  const std::string req = "GET / HTTP/1.0\r\n\r\n";
  EXPECT_EQ(HttpRequestParser::Result::kComplete,
            p.Feed(req.data(), req.size()));
  EXPECT_EQ(HttpRequestParser::Result::kComplete, p.Feed("junk", 4));
  EXPECT_EQ("/", p.path());
}

}  // namespace
}  // namespace pipelsm::server
