// Wire-protocol framing tests: round trips for every message type, then
// the hostile inputs the ISSUE calls out — partial frames, oversized
// lengths, corrupted CRCs, garbage preambles, and a fuzz loop — all of
// which must produce a clean kError (or kNeedMore), never a crash.
#include "src/server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/coding.h"
#include "src/util/random.h"

namespace pipelsm::server {
namespace {

// Feeds `wire` into a fresh decoder and expects exactly one good frame.
DecodedFrame DecodeOne(const std::string& wire) {
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  DecodedFrame frame;
  EXPECT_EQ(FrameDecoder::Result::kFrame, decoder.Next(&frame))
      << decoder.error();
  EXPECT_EQ(0u, decoder.buffered_bytes());
  return frame;
}

TEST(ProtocolTest, PingRoundTrip) {
  std::string wire;
  EncodePingRequest(7, &wire);
  const DecodedFrame frame = DecodeOne(wire);
  EXPECT_EQ(MessageType::kPing, frame.type);
  EXPECT_FALSE(frame.reply);
  EXPECT_EQ(7u, frame.seq);
  EXPECT_TRUE(frame.body.empty());
}

TEST(ProtocolTest, PutRoundTrip) {
  std::string wire;
  EncodePutRequest(42, "key", "value", &wire);
  const DecodedFrame frame = DecodeOne(wire);
  EXPECT_EQ(MessageType::kPut, frame.type);
  EXPECT_EQ(42u, frame.seq);
  Slice key, value;
  ASSERT_TRUE(ParsePutRequest(Slice(frame.body), &key, &value));
  EXPECT_EQ("key", key.ToString());
  EXPECT_EQ("value", value.ToString());
}

TEST(ProtocolTest, GetDeleteStatsRoundTrip) {
  std::string wire;
  EncodeGetRequest(1, "g", &wire);
  EncodeDeleteRequest(2, "d", &wire);
  EncodeStatsRequest(3, "pipelsm.stats", &wire);

  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  DecodedFrame frame;
  ASSERT_EQ(FrameDecoder::Result::kFrame, decoder.Next(&frame));
  Slice key;
  ASSERT_TRUE(ParseGetRequest(Slice(frame.body), &key));
  EXPECT_EQ("g", key.ToString());
  ASSERT_EQ(FrameDecoder::Result::kFrame, decoder.Next(&frame));
  ASSERT_TRUE(ParseDeleteRequest(Slice(frame.body), &key));
  EXPECT_EQ("d", key.ToString());
  ASSERT_EQ(FrameDecoder::Result::kFrame, decoder.Next(&frame));
  Slice property;
  ASSERT_TRUE(ParseStatsRequest(Slice(frame.body), &property));
  EXPECT_EQ("pipelsm.stats", property.ToString());
  EXPECT_EQ(FrameDecoder::Result::kNeedMore, decoder.Next(&frame));
}

TEST(ProtocolTest, WriteBatchRoundTrip) {
  std::vector<BatchOp> ops(3);
  ops[0].key = "a";
  ops[0].value = "1";
  ops[1].is_delete = true;
  ops[1].key = "b";
  ops[2].key = "c";
  ops[2].value = std::string(1000, 'v');
  std::string wire;
  EncodeWriteBatchRequest(9, ops, &wire);
  const DecodedFrame frame = DecodeOne(wire);
  std::vector<BatchOp> decoded;
  ASSERT_TRUE(ParseWriteBatchRequest(Slice(frame.body), &decoded));
  ASSERT_EQ(3u, decoded.size());
  EXPECT_EQ("a", decoded[0].key);
  EXPECT_EQ("1", decoded[0].value);
  EXPECT_TRUE(decoded[1].is_delete);
  EXPECT_EQ("b", decoded[1].key);
  EXPECT_EQ(ops[2].value, decoded[2].value);
}

TEST(ProtocolTest, ScanRoundTrip) {
  std::string wire;
  EncodeScanRequest(5, "start", 99, &wire);
  const DecodedFrame frame = DecodeOne(wire);
  Slice start;
  uint32_t limit = 0;
  ASSERT_TRUE(ParseScanRequest(Slice(frame.body), &start, &limit));
  EXPECT_EQ("start", start.ToString());
  EXPECT_EQ(99u, limit);
}

// Fuzz-style SCAN limit cases: the limit varint is attacker-controlled,
// so every extreme must parse cleanly (clamping is the server's job) and
// every malformed encoding must be rejected rather than misread.
TEST(ProtocolTest, ScanLimitExtremesParseCleanly) {
  for (uint32_t hostile : {0u, 1u, 0x7fffffffu, 0xffffffffu}) {
    std::string wire;
    EncodeScanRequest(5, "k", hostile, &wire);
    const DecodedFrame frame = DecodeOne(wire);
    Slice start;
    uint32_t limit = 0;
    ASSERT_TRUE(ParseScanRequest(Slice(frame.body), &start, &limit))
        << hostile;
    EXPECT_EQ(hostile, limit);
  }

  // Truncated limit varint (five 0x80 continuation bytes, no terminator)
  // and trailing bytes after the limit are malformed, not huge values.
  std::string body;
  PutLengthPrefixedSlice(&body, "k");
  body.append(5, '\x80');
  Slice start;
  uint32_t limit = 0;
  EXPECT_FALSE(ParseScanRequest(Slice(body), &start, &limit));

  body.clear();
  PutLengthPrefixedSlice(&body, "k");
  PutVarint32(&body, 10);
  body.append("extra");
  EXPECT_FALSE(ParseScanRequest(Slice(body), &start, &limit));
}

// A hostile count in a scan REPLY payload must not drive reservation:
// count is validated against the bytes actually present.
TEST(ProtocolTest, ScanPayloadHostileCountRejected) {
  std::string payload;
  PutVarint32(&payload, 0xffffffff);
  PutLengthPrefixedSlice(&payload, "k1");
  PutLengthPrefixedSlice(&payload, "v1");
  std::vector<std::pair<std::string, std::string>> entries;
  EXPECT_FALSE(ParseScanPayload(Slice(payload), &entries));
  EXPECT_TRUE(entries.empty());
}

TEST(ProtocolTest, ReplyRoundTrip) {
  std::string wire;
  EncodeReply(MessageType::kGet, 11, Status::OK(), "payload", &wire);
  const DecodedFrame frame = DecodeOne(wire);
  EXPECT_TRUE(frame.reply);
  EXPECT_EQ(MessageType::kGet, frame.type);
  Status status;
  Slice payload;
  ASSERT_TRUE(ParseReply(Slice(frame.body), &status, &payload));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ("payload", payload.ToString());
}

TEST(ProtocolTest, ErrorReplyRoundTrip) {
  std::string wire;
  EncodeReply(MessageType::kPut, 12, Status::NotFound("missing key"), "",
              &wire);
  const DecodedFrame frame = DecodeOne(wire);
  Status status;
  Slice payload;
  ASSERT_TRUE(ParseReply(Slice(frame.body), &status, &payload));
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_NE(std::string::npos, status.ToString().find("missing key"));
}

TEST(ProtocolTest, ScanPayloadRoundTrip) {
  std::string payload;
  PutVarint32(&payload, 2);
  PutLengthPrefixedSlice(&payload, "k1");
  PutLengthPrefixedSlice(&payload, "v1");
  PutLengthPrefixedSlice(&payload, "k2");
  PutLengthPrefixedSlice(&payload, "v2");
  std::vector<std::pair<std::string, std::string>> entries;
  ASSERT_TRUE(ParseScanPayload(Slice(payload), &entries));
  ASSERT_EQ(2u, entries.size());
  EXPECT_EQ("k1", entries[0].first);
  EXPECT_EQ("v2", entries[1].second);
}

TEST(ProtocolTest, StatusCodesRoundTrip) {
  const Status statuses[] = {
      Status::OK(),           Status::NotFound("x"),
      Status::Corruption("x"), Status::NotSupported("x"),
      Status::InvalidArgument("x"), Status::IOError("x"), Status::Busy("x")};
  for (const Status& s : statuses) {
    const Status back = WireCodeToStatus(StatusToWireCode(s), "x");
    EXPECT_EQ(s.ok(), back.ok());
    EXPECT_EQ(s.IsNotFound(), back.IsNotFound());
    EXPECT_EQ(s.IsCorruption(), back.IsCorruption());
    EXPECT_EQ(s.IsBusy(), back.IsBusy());
  }
  // Unknown codes must decode to an error, never to OK.
  EXPECT_FALSE(WireCodeToStatus(250, "").ok());
}

TEST(ProtocolTest, PartialFramesByteByByte) {
  std::string wire;
  EncodePutRequest(1, "incremental-key", std::string(300, 'x'), &wire);
  EncodePingRequest(2, &wire);
  FrameDecoder decoder;
  DecodedFrame frame;
  size_t frames = 0;
  for (char c : wire) {
    decoder.Append(&c, 1);
    while (true) {
      const FrameDecoder::Result res = decoder.Next(&frame);
      if (res == FrameDecoder::Result::kNeedMore) break;
      ASSERT_EQ(FrameDecoder::Result::kFrame, res) << decoder.error();
      frames++;
    }
  }
  EXPECT_EQ(2u, frames);
  EXPECT_EQ(0u, decoder.buffered_bytes());
}

TEST(ProtocolTest, GarbagePreambleIsError) {
  FrameDecoder decoder;
  const std::string garbage = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  decoder.Append(garbage.data(), garbage.size());
  DecodedFrame frame;
  EXPECT_EQ(FrameDecoder::Result::kError, decoder.Next(&frame));
  EXPECT_NE(std::string::npos, decoder.error().find("magic"));
  // Poisoned: further calls keep failing even after more (valid) bytes.
  std::string wire;
  EncodePingRequest(1, &wire);
  decoder.Append(wire.data(), wire.size());
  EXPECT_EQ(FrameDecoder::Result::kError, decoder.Next(&frame));
}

TEST(ProtocolTest, BadVersionIsError) {
  std::string wire;
  EncodePingRequest(1, &wire);
  wire[2] = 9;  // version byte
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  DecodedFrame frame;
  EXPECT_EQ(FrameDecoder::Result::kError, decoder.Next(&frame));
  EXPECT_NE(std::string::npos, decoder.error().find("version"));
}

TEST(ProtocolTest, OversizedLengthIsError) {
  std::string wire;
  EncodePingRequest(1, &wire);
  // Stamp a body length beyond the decoder cap; the decoder must reject
  // it from the header alone instead of waiting to buffer gigabytes.
  wire[4] = '\xff';
  wire[5] = '\xff';
  wire[6] = '\xff';
  wire[7] = '\x7f';
  FrameDecoder decoder(1024);
  decoder.Append(wire.data(), wire.size());
  DecodedFrame frame;
  EXPECT_EQ(FrameDecoder::Result::kError, decoder.Next(&frame));
  EXPECT_NE(std::string::npos, decoder.error().find("oversized"));
}

TEST(ProtocolTest, BadCrcIsError) {
  std::string wire;
  EncodePutRequest(1, "key", "value", &wire);
  wire[wire.size() - 1] ^= 0x40;  // corrupt the trailing CRC
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  DecodedFrame frame;
  EXPECT_EQ(FrameDecoder::Result::kError, decoder.Next(&frame));
  EXPECT_NE(std::string::npos, decoder.error().find("CRC"));
}

TEST(ProtocolTest, CorruptBodyFailsCrcNotParse) {
  std::string wire;
  EncodePutRequest(1, "key", "value", &wire);
  wire[kHeaderSize + 1] ^= 0x01;  // flip a body byte
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  DecodedFrame frame;
  EXPECT_EQ(FrameDecoder::Result::kError, decoder.Next(&frame));
}

TEST(ProtocolTest, TruncatedBatchBodyRejected) {
  std::string body;
  PutVarint32(&body, 100);  // claims 100 ops, provides none
  std::vector<BatchOp> ops;
  EXPECT_FALSE(ParseWriteBatchRequest(Slice(body), &ops));

  body.clear();
  PutVarint32(&body, 1);
  body.push_back('\0');
  PutVarint32(&body, 50);  // key length beyond the buffer
  body.append("short", 5);
  EXPECT_FALSE(ParseWriteBatchRequest(Slice(body), &ops));
}

TEST(ProtocolTest, TrailingBytesRejected) {
  std::string body;
  PutLengthPrefixedSlice(&body, "key");
  body.push_back('!');
  Slice key;
  EXPECT_FALSE(ParseGetRequest(Slice(body), &key));
}

// Fuzz-ish: random byte streams must never crash the decoder (ASan is
// the real assertion here) and must never yield a frame whose CRC could
// not have matched.
TEST(ProtocolTest, RandomBytesNeverCrash) {
  Random rnd(301);
  for (int round = 0; round < 200; round++) {
    FrameDecoder decoder(4096);
    std::string noise;
    const int len = 1 + rnd.Uniform(512);
    for (int i = 0; i < len; i++) {
      noise.push_back(static_cast<char>(rnd.Next() & 0xff));
    }
    // Sometimes lead with valid magic so deeper header paths get hit.
    if (round % 3 == 0 && noise.size() >= 2) {
      noise[0] = kMagic0;
      noise[1] = kMagic1;
    }
    if (round % 9 == 0 && noise.size() >= 3) {
      noise[2] = static_cast<char>(kProtocolVersion);
    }
    decoder.Append(noise.data(), noise.size());
    DecodedFrame frame;
    FrameDecoder::Result res;
    int spins = 0;
    while ((res = decoder.Next(&frame)) == FrameDecoder::Result::kFrame) {
      ASSERT_LT(spins++, 1000);
    }
    SUCCEED();
  }
}

// Mutation fuzz: take a valid frame, flip one byte anywhere, and the
// decoder must either error or (header-only flips that keep everything
// consistent are impossible thanks to the CRC) still round-trip.
TEST(ProtocolTest, SingleByteMutationsNeverCrash) {
  std::string wire;
  EncodePutRequest(77, "mutation-key", std::string(64, 'm'), &wire);
  for (size_t i = 0; i < wire.size(); i++) {
    for (uint8_t bit = 1; bit != 0; bit <<= 1) {
      std::string mutated = wire;
      mutated[i] = static_cast<char>(mutated[i] ^ bit);
      FrameDecoder decoder;
      decoder.Append(mutated.data(), mutated.size());
      DecodedFrame frame;
      const FrameDecoder::Result res = decoder.Next(&frame);
      // A mutated frame may only decode if the flip missed header+body+
      // CRC coverage — which is the whole wire, so it must NOT decode.
      EXPECT_NE(FrameDecoder::Result::kFrame, res)
          << "byte " << i << " bit " << static_cast<int>(bit);
    }
  }
}

TEST(ProtocolTest, BufferCompactionKeepsDecoding) {
  // Push enough frames through one decoder to trigger the internal
  // consumed-prefix compaction and confirm nothing is lost around it.
  FrameDecoder decoder;
  DecodedFrame frame;
  uint64_t seq = 0;
  for (int round = 0; round < 50; round++) {
    std::string wire;
    for (int i = 0; i < 10; i++) {
      EncodePutRequest(seq++, "key", std::string(200, 'z'), &wire);
    }
    decoder.Append(wire.data(), wire.size());
    for (int i = 0; i < 10; i++) {
      ASSERT_EQ(FrameDecoder::Result::kFrame, decoder.Next(&frame));
    }
    ASSERT_EQ(FrameDecoder::Result::kNeedMore, decoder.Next(&frame));
  }
  EXPECT_EQ(500u, seq);
}

}  // namespace
}  // namespace pipelsm::server
