// Decoder robustness fuzz: random mutations of valid compressed streams
// must never crash, hang, read out of bounds, or return success with
// wrong-length output. (ASAN builds of this test give the real guarantee;
// the assertions here catch the logic-level contract.)
#include <gtest/gtest.h>

#include "src/compress/lz_codec.h"
#include "src/util/random.h"

namespace pipelsm::lz {
namespace {

class LzFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LzFuzz, MutatedStreamsNeverMisbehave) {
  Random rnd(GetParam());
  Xoroshiro128pp payload(GetParam() * 1337);

  for (int round = 0; round < 50; round++) {
    // A valid stream over mixed content.
    std::string input;
    const int n = 64 + rnd.Uniform(4096);
    for (int i = 0; i < n; i++) {
      if (rnd.OneIn(3)) {
        input.push_back(static_cast<char>(payload.Next()));
      } else {
        input.push_back(static_cast<char>('a' + (i % 7)));
      }
    }
    std::string compressed;
    Compress(input.data(), input.size(), &compressed);

    // Mutate 1-8 random bytes.
    std::string mutated = compressed;
    const int flips = 1 + rnd.Uniform(8);
    for (int f = 0; f < flips; f++) {
      const size_t pos = rnd.Uniform(static_cast<int>(mutated.size()));
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 + rnd.Uniform(255)));
    }

    std::string output;
    Status s = Uncompress(mutated.data(), mutated.size(), &output);
    if (s.ok()) {
      // A mutation may happen to decode — but then the contract still
      // holds: output length equals the declared length.
      size_t declared;
      ASSERT_TRUE(GetUncompressedLength(mutated.data(), mutated.size(),
                                        &declared));
      ASSERT_EQ(declared, output.size());
    }

    // Random truncations of the valid stream.
    for (int t = 0; t < 5; t++) {
      const size_t cut = rnd.Uniform(static_cast<int>(compressed.size()));
      std::string out2;
      Status s2 = Uncompress(compressed.data(), cut, &out2);
      (void)s2;  // must simply not crash / overrun
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzFuzz,
                         ::testing::Values(1u, 7u, 31u, 127u, 8191u));

// Pure-garbage inputs.
TEST(LzFuzzGarbage, RandomBytesNeverCrashDecoder) {
  Xoroshiro128pp rng(555);
  for (int round = 0; round < 200; round++) {
    std::string garbage;
    const int n = 1 + static_cast<int>(rng.Next() % 512);
    for (int i = 0; i < n; i++) {
      garbage.push_back(static_cast<char>(rng.Next()));
    }
    std::string output;
    Status s = Uncompress(garbage.data(), garbage.size(), &output);
    if (s.ok()) {
      size_t declared;
      ASSERT_TRUE(
          GetUncompressedLength(garbage.data(), garbage.size(), &declared));
      ASSERT_EQ(declared, output.size());
    }
  }
}

}  // namespace
}  // namespace pipelsm::lz
