#include "src/compress/codec.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace pipelsm {
namespace {

TEST(Codec, NoCompressionStoresRaw) {
  std::string raw = "some literal bytes";
  std::string out;
  CompressionType used =
      CompressBlock(CompressionType::kNoCompression, raw, &out);
  EXPECT_EQ(CompressionType::kNoCompression, used);
  EXPECT_EQ(raw, out);

  std::string back;
  ASSERT_TRUE(UncompressBlock(used, out, &back).ok());
  EXPECT_EQ(raw, back);
}

TEST(Codec, LzCompressesCompressibleData) {
  std::string raw(8192, 'z');
  std::string out;
  CompressionType used =
      CompressBlock(CompressionType::kLzCompression, raw, &out);
  EXPECT_EQ(CompressionType::kLzCompression, used);
  EXPECT_LT(out.size(), raw.size());

  std::string back;
  ASSERT_TRUE(UncompressBlock(used, out, &back).ok());
  EXPECT_EQ(raw, back);
}

TEST(Codec, FallsBackToRawForIncompressible) {
  // Random bytes: the 12.5% shrink policy should store raw.
  Xoroshiro128pp rng(9);
  std::string raw;
  for (int i = 0; i < 4096; i++) {
    raw.push_back(static_cast<char>(rng.Next()));
  }
  std::string out;
  CompressionType used =
      CompressBlock(CompressionType::kLzCompression, raw, &out);
  EXPECT_EQ(CompressionType::kNoCompression, used);
  EXPECT_EQ(raw, out);
}

TEST(Codec, UnknownTypeRejected) {
  std::string back;
  Status s = UncompressBlock(static_cast<CompressionType>(0x7f), "xx", &back);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(Codec, TypeNames) {
  EXPECT_STREQ("none", CompressionTypeName(CompressionType::kNoCompression));
  EXPECT_STREQ("lz", CompressionTypeName(CompressionType::kLzCompression));
}

}  // namespace
}  // namespace pipelsm
