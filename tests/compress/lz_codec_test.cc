#include "src/compress/lz_codec.h"

#include <gtest/gtest.h>

#include <string>

#include "src/util/random.h"

namespace pipelsm::lz {
namespace {

std::string RoundTrip(const std::string& input) {
  std::string compressed;
  Compress(input.data(), input.size(), &compressed);
  EXPECT_LE(compressed.size(), MaxCompressedLength(input.size()));

  size_t ulen = 0;
  EXPECT_TRUE(GetUncompressedLength(compressed.data(), compressed.size(),
                                    &ulen));
  EXPECT_EQ(input.size(), ulen);

  std::string output;
  Status s = Uncompress(compressed.data(), compressed.size(), &output);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return output;
}

TEST(LzCodec, Empty) { EXPECT_EQ("", RoundTrip("")); }

TEST(LzCodec, Short) {
  EXPECT_EQ("a", RoundTrip("a"));
  EXPECT_EQ("ab", RoundTrip("ab"));
  EXPECT_EQ("abc", RoundTrip("abc"));
}

TEST(LzCodec, RepetitiveCompresses) {
  std::string input(10000, 'x');
  std::string compressed;
  Compress(input.data(), input.size(), &compressed);
  EXPECT_LT(compressed.size(), input.size() / 10);
  std::string output;
  ASSERT_TRUE(Uncompress(compressed.data(), compressed.size(), &output).ok());
  EXPECT_EQ(input, output);
}

TEST(LzCodec, PatternedData) {
  std::string input;
  for (int i = 0; i < 3000; i++) {
    input += "key";
    input += std::to_string(i % 97);
    input += "=value;";
  }
  EXPECT_EQ(input, RoundTrip(input));
  std::string compressed;
  Compress(input.data(), input.size(), &compressed);
  EXPECT_LT(compressed.size(), input.size());  // should find the repeats
}

TEST(LzCodec, IncompressibleRandomData) {
  Xoroshiro128pp rng(4242);
  std::string input;
  for (int i = 0; i < 4096; i++) {
    input.push_back(static_cast<char>(rng.Next()));
  }
  EXPECT_EQ(input, RoundTrip(input));
}

TEST(LzCodec, OverlappingCopiesRle) {
  // "abcabcabc..." exercises offset < length copies (RLE-style).
  std::string input;
  for (int i = 0; i < 5000; i++) {
    input.push_back("abc"[i % 3]);
  }
  EXPECT_EQ(input, RoundTrip(input));
}

TEST(LzCodec, LargeInputAcrossWindowRebase) {
  // > 64K inputs slide the match window; content repeats at long range.
  std::string unit = "the quick brown fox jumps over the lazy dog. ";
  std::string input;
  while (input.size() < 300 * 1024) {
    input += unit;
    input.push_back(static_cast<char>(input.size() & 0xff));
  }
  EXPECT_EQ(input, RoundTrip(input));
}

TEST(LzCodec, TruncatedInputFails) {
  std::string input = "hello hello hello hello hello";
  std::string compressed;
  Compress(input.data(), input.size(), &compressed);
  std::string output;
  for (size_t cut = 1; cut < compressed.size(); cut++) {
    Status s = Uncompress(compressed.data(), cut, &output);
    // Any truncation must fail cleanly — never crash or return wrong data.
    if (s.ok()) {
      EXPECT_EQ(input.substr(0, output.size()), output);
    }
  }
}

TEST(LzCodec, CorruptOffsetRejected) {
  // Handcraft a copy whose offset exceeds the produced output.
  std::string bogus;
  bogus.push_back(5);  // varint32 uncompressed length = 5
  bogus.push_back(static_cast<char>(0x02 | ((4 - 1) << 2)));  // copy-2 len 4
  bogus.push_back(static_cast<char>(0xff));                   // offset 0xffff
  bogus.push_back(static_cast<char>(0xff));
  std::string output;
  Status s = Uncompress(bogus.data(), bogus.size(), &output);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
}

TEST(LzCodec, DeclaredLengthMismatchRejected) {
  std::string input = "0123456789";
  std::string compressed;
  Compress(input.data(), input.size(), &compressed);
  // Tamper with the declared length (first varint byte: 10 -> 9).
  ASSERT_EQ(10, compressed[0]);
  compressed[0] = 9;
  std::string output;
  EXPECT_FALSE(
      Uncompress(compressed.data(), compressed.size(), &output).ok());
}

// Property sweep: random mixes of run lengths, literals and dictionary
// words must always round-trip exactly.
class LzRoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LzRoundTrip, RandomMixes) {
  Random rnd(GetParam());
  Xoroshiro128pp payload(GetParam() * 7919);
  static const char* kWords[] = {"alpha", "bravo", "charlie", "delta",
                                 "echo",  "fox",   "golf"};
  for (int round = 0; round < 20; round++) {
    std::string input;
    const int pieces = 1 + rnd.Uniform(200);
    for (int p = 0; p < pieces; p++) {
      switch (rnd.Uniform(3)) {
        case 0:  // run
          input.append(1 + rnd.Uniform(100),
                       static_cast<char>('a' + rnd.Uniform(26)));
          break;
        case 1:  // dictionary word
          input.append(kWords[rnd.Uniform(7)]);
          break;
        default:  // random bytes
          for (uint32_t i = 0, n = rnd.Uniform(64); i < n; i++) {
            input.push_back(static_cast<char>(payload.Next()));
          }
          break;
      }
    }
    ASSERT_EQ(input, RoundTrip(input)) << "seed=" << GetParam()
                                       << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 301u, 0xbeefu,
                                           0xfeedu, 99991u));

}  // namespace
}  // namespace pipelsm::lz
