// ShardRouter: boundary semantics (upper-bound: a boundary key belongs
// to the shard above), batch splitting with order preservation, the
// decimal-keyspace boundary builder benches use, and validation.
#include "src/shard/router.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/db/write_batch.h"

namespace pipelsm::shard {
namespace {

// Collects a batch's ops in replay order for order/content asserts.
struct Collector : public WriteBatch::Handler {
  std::vector<std::string> ops;  // "P:key=value" / "D:key"
  void Put(const Slice& key, const Slice& value) override {
    ops.push_back("P:" + key.ToString() + "=" + value.ToString());
  }
  void Delete(const Slice& key) override {
    ops.push_back("D:" + key.ToString());
  }
  void PutPointer(const Slice& key, const Slice& location) override {
    ops.push_back("V:" + key.ToString() + "=" + location.ToString());
  }
};

TEST(ShardRouter, BoundaryKeysBelongToTheShardAbove) {
  ShardRouter router({"b", "m"});
  ASSERT_EQ(3u, router.num_shards());

  EXPECT_EQ(0u, router.ShardOf(""));       // unbounded below
  EXPECT_EQ(0u, router.ShardOf("a"));
  EXPECT_EQ(0u, router.ShardOf("azzzz"));
  EXPECT_EQ(1u, router.ShardOf("b"));      // boundary -> shard above
  EXPECT_EQ(1u, router.ShardOf(Slice("b\0", 2)));
  EXPECT_EQ(1u, router.ShardOf("lzzz"));
  EXPECT_EQ(2u, router.ShardOf("m"));
  EXPECT_EQ(2u, router.ShardOf("zzzz"));   // unbounded above
}

TEST(ShardRouter, SingleShardIdentity) {
  ShardRouter router({});
  ASSERT_EQ(1u, router.num_shards());
  EXPECT_EQ(0u, router.ShardOf(""));
  EXPECT_EQ(0u, router.ShardOf("anything"));
}

TEST(ShardRouter, SplitBatchPreservesPerShardOrder) {
  ShardRouter router({"g", "p"});
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("q", "2");
  batch.Put("h", "3");
  batch.Delete("a");
  batch.Put("g", "4");   // boundary -> shard 1
  batch.Delete("zz");

  std::vector<WriteBatch> split;
  ASSERT_TRUE(router.SplitBatch(batch, &split).ok());
  ASSERT_EQ(3u, split.size());

  Collector c0, c1, c2;
  ASSERT_TRUE(split[0].Iterate(&c0).ok());
  ASSERT_TRUE(split[1].Iterate(&c1).ok());
  ASSERT_TRUE(split[2].Iterate(&c2).ok());

  EXPECT_EQ((std::vector<std::string>{"P:a=1", "D:a"}), c0.ops);
  EXPECT_EQ((std::vector<std::string>{"P:h=3", "P:g=4"}), c1.ops);
  EXPECT_EQ((std::vector<std::string>{"P:q=2", "D:zz"}), c2.ops);
}

TEST(ShardRouter, SplitBatchLeavesUntouchedShardsEmpty) {
  ShardRouter router({"g", "p"});
  WriteBatch batch;
  batch.Put("a", "1");

  std::vector<WriteBatch> split;
  ASSERT_TRUE(router.SplitBatch(batch, &split).ok());
  ASSERT_EQ(3u, split.size());
  EXPECT_EQ(1, WriteBatchInternal::Count(&split[0]));
  EXPECT_EQ(0, WriteBatchInternal::Count(&split[1]));
  EXPECT_EQ(0, WriteBatchInternal::Count(&split[2]));
}

TEST(ShardRouter, SplitDecimalKeyspaceIsEvenAndSorted) {
  const std::vector<std::string> b =
      ShardRouter::SplitDecimalKeyspace(1000, 16, 4);
  ASSERT_EQ(3u, b.size());
  EXPECT_EQ("0000000000000250", b[0]);
  EXPECT_EQ("0000000000000500", b[1]);
  EXPECT_EQ("0000000000000750", b[2]);
  ASSERT_TRUE(ShardRouter::Validate(b).ok());

  ShardRouter router(b);
  EXPECT_EQ(0u, router.ShardOf("0000000000000000"));
  EXPECT_EQ(0u, router.ShardOf("0000000000000249"));
  EXPECT_EQ(1u, router.ShardOf("0000000000000250"));
  EXPECT_EQ(2u, router.ShardOf("0000000000000749"));
  EXPECT_EQ(3u, router.ShardOf("0000000000000999"));
}

TEST(ShardRouter, SplitDecimalKeyspaceSingleShardIsEmpty) {
  EXPECT_TRUE(ShardRouter::SplitDecimalKeyspace(1000, 16, 1).empty());
}

TEST(ShardRouter, ValidateRejectsBadBoundarySets) {
  EXPECT_TRUE(ShardRouter::Validate({}).ok());
  EXPECT_TRUE(ShardRouter::Validate({"m"}).ok());
  EXPECT_FALSE(ShardRouter::Validate({""}).ok());            // empty key
  EXPECT_FALSE(ShardRouter::Validate({"m", "b"}).ok());      // unsorted
  EXPECT_FALSE(ShardRouter::Validate({"m", "m"}).ok());      // duplicate
}

}  // namespace
}  // namespace pipelsm::shard
