// CompactionArbiter: the fleet budget is a hard ceiling under concurrent
// admission, a second job is shrunk to fit the free units, a blocked
// waiter honors its abort predicate, and a repeatedly passed-over waiter
// is force-granted (starvation-freedom).
#include "src/shard/arbiter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "src/model/model.h"

namespace pipelsm::shard {
namespace {

model::StepTimes Make(double read_s, double compute_s, double write_s) {
  model::StepTimes t;
  t.seconds[kStepRead] = read_s;
  t.seconds[kStepChecksum] = compute_s / 5;
  t.seconds[kStepDecompress] = compute_s / 5;
  t.seconds[kStepSort] = compute_s / 5;
  t.seconds[kStepCompress] = compute_s / 5;
  t.seconds[kStepRechecksum] = compute_s / 5;
  t.seconds[kStepWrite] = write_s;
  t.subtask_bytes = 1 << 20;
  return t;
}

// I/O-bound (HDD regime): saturation at 3 disks, solo gain ~3x.
model::StepTimes IoBound() { return Make(0.030, 0.010, 0.020); }
// CPU-bound (SSD regime): compute dominates, wants workers.
model::StepTimes CpuBound() { return Make(0.010, 0.040, 0.012); }

CompactionAdmissionRequest Request(int shard, const model::StepTimes& t) {
  CompactionAdmissionRequest r;
  r.shard_id = shard;
  r.profile = t;
  r.advisor_jobs = 16;
  r.level = 1;
  r.input_bytes = 8 << 20;
  return r;
}

bool Never() { return false; }

// Spins until `pred` holds (tests only gate on arbiter-internal state
// that the thread under test is guaranteed to reach).
template <typename Pred>
void WaitFor(Pred pred) {
  for (int i = 0; i < 5000 && !pred(); i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pred());
}

TEST(Arbiter, ConcurrentAdmitsNeverExceedBudget) {
  ArbiterOptions o;
  o.budget.io_lanes = 2;
  o.budget.compute_workers = 2;
  o.wait_poll_micros = 1000;
  CompactionArbiter arb(o);

  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; i++) {
    threads.emplace_back([&arb, &completed, &o, i] {
      CompactionGrant g =
          arb.Admit(Request(i, (i % 2) ? IoBound() : CpuBound()), Never);
      EXPECT_TRUE(g.granted);
      EXPECT_LE(arb.lanes_in_use(), o.budget.io_lanes);
      EXPECT_LE(arb.workers_in_use(), o.budget.compute_workers);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      completed.fetch_add(1);
      arb.Release(g.id);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(6, completed.load());
  EXPECT_EQ(6u, arb.grants());
  EXPECT_LE(arb.peak_lanes(), o.budget.io_lanes);
  EXPECT_LE(arb.peak_workers(), o.budget.compute_workers);
  EXPECT_GE(arb.peak_lanes(), 1);
  EXPECT_EQ(0, arb.lanes_in_use());
  EXPECT_EQ(0, arb.workers_in_use());
  EXPECT_EQ(0u, arb.waiting());
}

TEST(Arbiter, SecondJobIsShrunkToTheFreeUnits) {
  ArbiterOptions o;
  o.budget.io_lanes = 4;
  o.budget.compute_workers = 4;
  CompactionArbiter arb(o);

  // Solo, the I/O-bound job saturates at 3 disks and gets them.
  CompactionGrant a = arb.Admit(Request(0, IoBound()), Never);
  ASSERT_TRUE(a.granted);
  EXPECT_EQ(CompactionMode::kSPPCP, a.decision.mode);
  EXPECT_EQ(3, a.decision.read_parallelism);
  EXPECT_TRUE(a.decision.adaptive);

  // The same job admitted while A runs only finds 1 free lane: granted,
  // but shrunk to the PCP floor — and the shrink is counted.
  CompactionGrant b = arb.Admit(Request(1, IoBound()), Never);
  ASSERT_TRUE(b.granted);
  EXPECT_EQ(1, b.decision.read_parallelism);
  EXPECT_GE(arb.shrinks(), 1u);
  EXPECT_LE(arb.lanes_in_use(), o.budget.io_lanes);

  // A's units come back on release.
  arb.Release(a.id);
  arb.Release(b.id);
  EXPECT_EQ(0, arb.lanes_in_use());
  EXPECT_EQ(0, arb.workers_in_use());
  EXPECT_EQ(4, arb.peak_lanes());  // 3 (A) + 1 (B)
}

TEST(Arbiter, AbortedWaiterReturnsUngranted) {
  ArbiterOptions o;
  o.budget.io_lanes = 1;
  o.budget.compute_workers = 1;
  o.wait_poll_micros = 1000;
  CompactionArbiter arb(o);

  CompactionGrant hold = arb.Admit(Request(0, IoBound()), Never);
  ASSERT_TRUE(hold.granted);

  std::atomic<bool> stop{false};
  std::thread waiter([&] {
    CompactionGrant g =
        arb.Admit(Request(1, IoBound()), [&] { return stop.load(); });
    EXPECT_FALSE(g.granted);
  });
  WaitFor([&] { return arb.waiting() == 1; });
  stop.store(true);
  waiter.join();
  EXPECT_EQ(0u, arb.waiting());

  arb.Release(hold.id);
  EXPECT_EQ(0, arb.lanes_in_use());
}

TEST(Arbiter, PassedOverWaiterIsForceGranted) {
  ArbiterOptions o;
  o.budget.io_lanes = 1;
  o.budget.compute_workers = 1;
  o.max_passovers = 3;
  o.wait_poll_micros = 1000;
  CompactionArbiter arb(o);

  // The budget is held continuously; a low-gain waiter (empty profile,
  // gain 1.0) queues behind a stream of high-gain jobs.
  CompactionGrant hold = arb.Admit(Request(0, IoBound()), Never);
  ASSERT_TRUE(hold.granted);

  std::atomic<bool> low_granted{false};
  std::thread low_thread([&] {
    CompactionGrant g = arb.Admit(Request(9, model::StepTimes()), Never);
    EXPECT_TRUE(g.granted);
    low_granted.store(true);
    arb.Release(g.id);
  });
  WaitFor([&] { return arb.waiting() == 1; });

  // Three cycles: queue a high-gain waiter, free the budget — the
  // high-gain job outranks the low-gain one, which is passed over.
  for (int i = 0; i < 3; i++) {
    std::promise<CompactionGrant> p;
    std::future<CompactionGrant> f = p.get_future();
    std::thread hi([&arb, &p, i] {
      p.set_value(arb.Admit(Request(1 + i, IoBound()), Never));
    });
    WaitFor([&] { return arb.waiting() == 2; });
    arb.Release(hold.id);
    hold = f.get();
    hi.join();
    ASSERT_TRUE(hold.granted);
    EXPECT_FALSE(low_granted.load()) << "cycle " << i;
  }

  // Passed over max_passovers times: the low-gain waiter is now forced
  // and must beat a fresh high-gain arrival to the next free floor.
  std::promise<CompactionGrant> p;
  std::future<CompactionGrant> f = p.get_future();
  std::thread hi([&arb, &p] {
    p.set_value(arb.Admit(Request(7, IoBound()), Never));
  });
  WaitFor([&] { return arb.waiting() == 2; });
  arb.Release(hold.id);
  low_thread.join();
  EXPECT_TRUE(low_granted.load());
  EXPECT_GE(arb.forced_grants(), 1u);

  CompactionGrant last = f.get();
  hi.join();
  ASSERT_TRUE(last.granted);
  arb.Release(last.id);
  EXPECT_EQ(0, arb.lanes_in_use());
  EXPECT_EQ(1, arb.peak_lanes());  // budget of 1 never exceeded
  EXPECT_EQ(1, arb.peak_workers());
}

TEST(Arbiter, ToJsonCarriesBudgetAndCounters) {
  ArbiterOptions o;
  o.budget.io_lanes = 2;
  o.budget.compute_workers = 3;
  CompactionArbiter arb(o);

  CompactionGrant g = arb.Admit(Request(0, IoBound()), Never);
  ASSERT_TRUE(g.granted);
  const std::string json = arb.ToJson();
  EXPECT_NE(std::string::npos, json.find("\"io_lanes\""));
  EXPECT_NE(std::string::npos, json.find("\"budget\":2"));
  EXPECT_NE(std::string::npos, json.find("\"compute_workers\""));
  EXPECT_NE(std::string::npos, json.find("\"running\":["));
  EXPECT_NE(std::string::npos, json.find("\"shard\":0"));
  arb.Release(g.id);
}

}  // namespace
}  // namespace pipelsm::shard
