// ShardedDB: routing of point ops and batches, cross-shard scan
// concatenation (seam walking in both directions), fleet snapshots,
// manifest adoption/validation on reopen, property fan-out, and a
// crash-matrix variant that kills one shard mid-write and verifies the
// fleet recovers shard by shard.
#include "src/shard/sharded_db.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/db/write_batch.h"
#include "src/env/fault_env.h"
#include "src/env/sim_env.h"
#include "src/shard/router.h"

namespace pipelsm::shard {
namespace {

Options BaseOptions(Env* env) {
  Options options;
  options.env = env;
  options.create_if_missing = true;
  options.write_buffer_size = 64 << 10;
  options.max_file_size = 32 << 10;
  return options;
}

ShardedOptions FourShards() {
  ShardedOptions sharded;
  sharded.num_shards = 4;
  sharded.boundary_keys = {"f", "m", "s"};
  return sharded;
}

std::unique_ptr<ShardedDB> MustOpen(const Options& options,
                                    const ShardedOptions& sharded,
                                    const std::string& name) {
  ShardedDB* raw = nullptr;
  Status s = ShardedDB::Open(options, sharded, name, &raw);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return std::unique_ptr<ShardedDB>(raw);
}

TEST(ShardedDB, RoutesPointOpsAndBatchesAcrossShards) {
  SimEnv env;
  Options options = BaseOptions(&env);
  std::unique_ptr<ShardedDB> db = MustOpen(options, FourShards(), "/sdb");
  ASSERT_EQ(4u, db->num_shards());

  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "apple", "0").ok());   // shard 0
  ASSERT_TRUE(db->Put(wo, "grape", "1").ok());   // shard 1
  ASSERT_TRUE(db->Put(wo, "mango", "2").ok());   // shard 2
  ASSERT_TRUE(db->Put(wo, "zebra", "3").ok());   // shard 3

  WriteBatch batch;  // touches all four shards in one call
  batch.Put("berry", "b0");
  batch.Put("kiwi", "b1");
  batch.Put("peach", "b2");
  batch.Put("tomato", "b3");
  batch.Delete("apple");
  ASSERT_TRUE(db->Write(wo, &batch).ok());

  ReadOptions ro;
  std::string value;
  EXPECT_TRUE(db->Get(ro, "apple", &value).IsNotFound());
  ASSERT_TRUE(db->Get(ro, "grape", &value).ok());
  EXPECT_EQ("1", value);
  ASSERT_TRUE(db->Get(ro, "tomato", &value).ok());
  EXPECT_EQ("b3", value);

  // The key landed where the router says it should: visible through the
  // owning shard's engine directly, absent from its neighbor.
  const size_t owner = db->router().ShardOf("kiwi");
  EXPECT_EQ(1u, owner);
  ASSERT_TRUE(db->shard(owner)->Get(ro, "kiwi", &value).ok());
  EXPECT_EQ("b1", value);
  EXPECT_TRUE(db->shard(0)->Get(ro, "kiwi", &value).IsNotFound());
}

TEST(ShardedDB, ScanWalksShardSeamsInBothDirections) {
  SimEnv env;
  Options options = BaseOptions(&env);
  std::unique_ptr<ShardedDB> db = MustOpen(options, FourShards(), "/sdb");

  // Two keys per shard, inserted in routed-shard-scrambled order.
  const std::vector<std::string> keys = {"aa", "ee", "ff", "kk",
                                         "mm", "pp", "ss", "zz"};
  WriteOptions wo;
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(db->Put(wo, keys[(3 * i) % keys.size()], "v").ok());
  }

  ReadOptions ro;
  std::unique_ptr<Iterator> it(db->NewIterator(ro));

  // Forward: global order is the concatenation of the shard ranges.
  std::vector<std::string> forward;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    forward.push_back(it->key().ToString());
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(keys, forward);

  // Seek lands past a shard's last key: the seam walk continues into
  // the next non-empty shard.
  it->Seek("kz");  // routes to shard 1, whose keys end at "kk"
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("mm", it->key().ToString());
  it->Prev();  // back across the seam
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("kk", it->key().ToString());

  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("zz", it->key().ToString());
  std::vector<std::string> backward;
  for (; it->Valid(); it->Prev()) backward.push_back(it->key().ToString());
  std::vector<std::string> reversed(keys.rbegin(), keys.rend());
  EXPECT_EQ(reversed, backward);
}

// Reverse iteration across EMPTY shards: SeekToLast with an empty last
// shard, Prev off the first entry of a shard whose predecessor is empty,
// and Seek past a shard's data followed by Prev — with both an empty
// middle shard and empty edge shards.
TEST(ShardedDB, ReverseIterationSkipsEmptyShards) {
  SimEnv env;
  Options options = BaseOptions(&env);
  std::unique_ptr<ShardedDB> db = MustOpen(options, FourShards(), "/sdb");

  // Shard 0 ["", f) and shard 2 [m, s) stay empty; shard 1 [f, m) and
  // shard 3 [s, inf) hold two keys each... then flip to empty edges.
  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "ff", "v").ok());
  ASSERT_TRUE(db->Put(wo, "kk", "v").ok());
  ASSERT_TRUE(db->Put(wo, "ss", "v").ok());
  ASSERT_TRUE(db->Put(wo, "zz", "v").ok());

  ReadOptions ro;
  {
    std::unique_ptr<Iterator> it(db->NewIterator(ro));
    // Full reverse walk crosses the empty middle shard (2) and stops
    // cleanly before the empty first shard (0).
    std::vector<std::string> backward;
    for (it->SeekToLast(); it->Valid(); it->Prev()) {
      backward.push_back(it->key().ToString());
    }
    EXPECT_EQ((std::vector<std::string>{"zz", "ss", "kk", "ff"}), backward);
    EXPECT_TRUE(it->status().ok()) << it->status().ToString();

    // Prev off the first entry of shard 1 when shard 0 is empty: ends.
    it->Seek("ff");
    ASSERT_TRUE(it->Valid());
    it->Prev();
    EXPECT_FALSE(it->Valid());
    EXPECT_TRUE(it->status().ok());

    // Seek past shard 1's data (lands in shard 3 across empty shard 2),
    // then Prev returns to shard 1's last key.
    it->Seek("kz");
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ("ss", it->key().ToString());
    it->Prev();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ("kk", it->key().ToString());
  }

  // Empty LAST shard: delete shard 3's keys; SeekToLast must fall back
  // across the seam to shard 1's last key.
  ASSERT_TRUE(db->Delete(wo, "ss").ok());
  ASSERT_TRUE(db->Delete(wo, "zz").ok());
  {
    std::unique_ptr<Iterator> it(db->NewIterator(ro));
    it->SeekToLast();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ("kk", it->key().ToString());
    it->Prev();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ("ff", it->key().ToString());
    it->Prev();
    EXPECT_FALSE(it->Valid());
    EXPECT_TRUE(it->status().ok());
  }

  // Every shard empty: both entry points terminate invalid, no error.
  ASSERT_TRUE(db->Delete(wo, "ff").ok());
  ASSERT_TRUE(db->Delete(wo, "kk").ok());
  {
    std::unique_ptr<Iterator> it(db->NewIterator(ro));
    it->SeekToLast();
    EXPECT_FALSE(it->Valid());
    it->SeekToFirst();
    EXPECT_FALSE(it->Valid());
    EXPECT_TRUE(it->status().ok());
  }
}

TEST(ShardedDB, SnapshotCoversEveryShard) {
  SimEnv env;
  Options options = BaseOptions(&env);
  std::unique_ptr<ShardedDB> db = MustOpen(options, FourShards(), "/sdb");

  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "apple", "old0").ok());
  ASSERT_TRUE(db->Put(wo, "mango", "old2").ok());
  const Snapshot* snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put(wo, "apple", "new0").ok());
  ASSERT_TRUE(db->Put(wo, "mango", "new2").ok());

  ReadOptions at_snap;
  at_snap.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db->Get(at_snap, "apple", &value).ok());
  EXPECT_EQ("old0", value);
  ASSERT_TRUE(db->Get(at_snap, "mango", &value).ok());
  EXPECT_EQ("old2", value);

  ReadOptions now;
  ASSERT_TRUE(db->Get(now, "apple", &value).ok());
  EXPECT_EQ("new0", value);
  db->ReleaseSnapshot(snap);
}

TEST(ShardedDB, ReopenAdoptsManifestAndRejectsDrift) {
  SimEnv env;
  Options options = BaseOptions(&env);
  {
    std::unique_ptr<ShardedDB> db = MustOpen(options, FourShards(), "/sdb");
    WriteOptions wo;
    ASSERT_TRUE(db->Put(wo, "grape", "persisted").ok());
  }

  // Defaults (num_shards=1, no boundaries) adopt the SHARDS manifest.
  {
    ShardedOptions defaults;
    std::unique_ptr<ShardedDB> db = MustOpen(options, defaults, "/sdb");
    ASSERT_EQ(4u, db->num_shards());
    EXPECT_EQ((std::vector<std::string>{"f", "m", "s"}),
              db->router().boundaries());
    ReadOptions ro;
    std::string value;
    ASSERT_TRUE(db->Get(ro, "grape", &value).ok());
    EXPECT_EQ("persisted", value);
  }

  // Explicit boundaries that contradict the manifest are refused — a
  // config drift must not silently re-route keys.
  {
    ShardedOptions drifted;
    drifted.num_shards = 4;
    drifted.boundary_keys = {"d", "k", "q"};
    ShardedDB* raw = nullptr;
    Status s = ShardedDB::Open(options, drifted, "/sdb", &raw);
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  }
  {
    ShardedOptions wrong_count;
    wrong_count.num_shards = 2;
    wrong_count.boundary_keys = {"m"};
    ShardedDB* raw = nullptr;
    Status s = ShardedDB::Open(options, wrong_count, "/sdb", &raw);
    ASSERT_FALSE(s.ok());
  }
}

TEST(ShardedDB, FirstOpenWithoutBoundariesIsAnError) {
  SimEnv env;
  Options options = BaseOptions(&env);
  ShardedOptions sharded;
  sharded.num_shards = 3;  // no boundary keys
  ShardedDB* raw = nullptr;
  Status s = ShardedDB::Open(options, sharded, "/fresh", &raw);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(ShardedDB, PropertiesFanOutAcrossTheFleet) {
  SimEnv env;
  Options options = BaseOptions(&env);
  std::unique_ptr<ShardedDB> db = MustOpen(options, FourShards(), "/sdb");
  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "apple", "0").ok());
  ASSERT_TRUE(db->Put(wo, "zebra", "3").ok());

  std::string value;
  ASSERT_TRUE(db->GetProperty("pipelsm.shards", &value));
  EXPECT_NE(std::string::npos, value.find("\"num_shards\":4"));
  EXPECT_NE(std::string::npos, value.find("\"arbiter\":true"));

  ASSERT_TRUE(db->GetProperty("pipelsm.arbiter", &value));
  EXPECT_NE(std::string::npos, value.find("\"io_lanes\""));
  EXPECT_NE(std::string::npos, value.find("\"grants\""));

  // Per-shard forwarding: shard 3 answers its own engine properties.
  ASSERT_TRUE(db->GetProperty("pipelsm.shard3.num-files-at-level0", &value));

  // Numeric properties sum across shards (parseable as one number).
  ASSERT_TRUE(db->GetProperty("pipelsm.num-files-at-level0", &value));
  EXPECT_FALSE(value.empty());

  ASSERT_TRUE(db->GetProperty("pipelsm.stats", &value));
  EXPECT_NE(std::string::npos, value.find("== shard 0 =="));
  EXPECT_NE(std::string::npos, value.find("== shard 3 =="));

  // JSON-array fan-out: one ring per shard.
  ASSERT_TRUE(db->GetProperty("pipelsm.timeseries", &value));
  EXPECT_EQ('[', value.front());
  EXPECT_EQ(']', value.back());
  EXPECT_NE(std::string::npos, value.find("\"samples\":[{"));
}

TEST(ShardedDB, ArbiterOffRunsAndReportsEmpty) {
  SimEnv env;
  Options options = BaseOptions(&env);
  ShardedOptions sharded = FourShards();
  sharded.enable_arbiter = false;
  std::unique_ptr<ShardedDB> db = MustOpen(options, sharded, "/sdb");
  WriteOptions wo;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        db->Put(wo, "k" + std::to_string(i), std::string(256, 'v')).ok());
  }
  ASSERT_TRUE(db->WaitForCompactions().ok());
  std::string value;
  ASSERT_TRUE(db->GetProperty("pipelsm.arbiter", &value));
  EXPECT_EQ("{}", value);
}

// Crash-matrix variant: fault rules scoped to shard-0001's files kill
// that shard mid-write while its neighbors keep going; after a
// power-cycle every shard recovers its synced data independently.
TEST(ShardedDB, OneShardCrashRecoversPerShard) {
  SimEnv base;
  FaultInjectionEnv fault(&base);
  Options options = BaseOptions(&fault);
  options.write_buffer_size = 8 << 10;  // force flush/compaction traffic
  options.max_background_retries = 1;
  options.background_retry_backoff_micros = 100;
  options.background_retry_backoff_max_micros = 100;

  const std::vector<std::string> synced_keys = {"apple", "grape", "mango",
                                                "zebra"};  // one per shard
  {
    std::unique_ptr<ShardedDB> db = MustOpen(options, FourShards(), "/sdb");
    WriteOptions synced;
    synced.sync = true;
    for (const std::string& k : synced_keys) {
      ASSERT_TRUE(db->Put(synced, k, "durable-" + k).ok());
    }

    // Arm the crash on shard-0001's file appends only, then hammer all
    // shards until it fires (shard 1's WAL/flush/compaction writes all
    // match the path filter).
    fault.SetPathFilter(FaultOp::kAppend, "shard-0001");
    fault.CrashAfter(FaultOp::kAppend, 3);
    WriteOptions wo;
    for (int i = 0; i < 500 && !fault.crashed(); i++) {
      const std::string pad(512, 'x');
      (void)db->Put(wo, "aa" + std::to_string(i), pad);  // shard 0
      (void)db->Put(wo, "gg" + std::to_string(i), pad);  // shard 1
      (void)db->Put(wo, "nn" + std::to_string(i), pad);  // shard 2
      (void)db->Put(wo, "tt" + std::to_string(i), pad);  // shard 3
    }
    ASSERT_TRUE(fault.crashed());
  }

  // Power-cycle: drop everything unsynced, clear the rules, reopen.
  fault.ClearFaults();
  ASSERT_TRUE(fault.DropUnsyncedAndReset().ok());
  {
    ShardedOptions adopt;  // reopen from the manifest
    std::unique_ptr<ShardedDB> db = MustOpen(options, adopt, "/sdb");
    ASSERT_EQ(4u, db->num_shards());
    ReadOptions ro;
    std::string value;
    for (const std::string& k : synced_keys) {
      ASSERT_TRUE(db->Get(ro, k, &value).ok()) << k;
      EXPECT_EQ("durable-" + k, value);
    }
    // The crashed shard takes writes again.
    WriteOptions wo;
    ASSERT_TRUE(db->Put(wo, "golf", "post-recovery").ok());
    ASSERT_TRUE(db->Get(ro, "golf", &value).ok());
    EXPECT_EQ("post-recovery", value);
    ASSERT_TRUE(db->WaitForCompactions().ok());
  }
}

}  // namespace
}  // namespace pipelsm::shard
