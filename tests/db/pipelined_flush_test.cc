// Pipelined memtable flush (extension): identical logical contents to the
// sequential builder, full DB correctness with the option on, and genuine
// compute/write overlap on a slow device.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/db/builder.h"
#include "src/db/db.h"
#include "src/db/table_cache.h"
#include "src/env/sim_env.h"
#include "src/memtable/memtable.h"
#include "src/table/filter_policy.h"
#include "src/util/stopwatch.h"
#include "src/version/version_edit.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

MemTable* FillMemTable(const InternalKeyComparator& icmp, uint64_t n) {
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  WorkloadGenerator gen(n, 16, 100, KeyOrder::kRandom);
  for (uint64_t i = 0; i < n; i++) {
    mem->Add(i + 1, kTypeValue, gen.Key(i), gen.Value(i));
  }
  return mem;
}

TEST(PipelinedFlush, SameLogicalContentsAsSequentialBuilder) {
  SimEnv env;
  env.CreateDir("/db");
  InternalKeyComparator icmp(BytewiseComparator());
  TableOptions topt;
  topt.comparator = &icmp;
  TableCache cache("/db", topt, &env, 10);

  MemTable* mem = FillMemTable(icmp, 3000);

  FileMetaData meta_seq, meta_pipe;
  meta_seq.number = 1;
  meta_pipe.number = 2;
  {
    std::unique_ptr<Iterator> it(mem->NewIterator());
    ASSERT_TRUE(
        BuildTable("/db", &env, topt, &cache, it.get(), &meta_seq).ok());
  }
  {
    std::unique_ptr<Iterator> it(mem->NewIterator());
    ASSERT_TRUE(
        BuildTablePipelined("/db", &env, topt, &cache, it.get(), &meta_pipe)
            .ok());
  }
  mem->Unref();

  EXPECT_EQ(meta_seq.smallest.Encode().ToString(),
            meta_pipe.smallest.Encode().ToString());
  EXPECT_EQ(meta_seq.largest.Encode().ToString(),
            meta_pipe.largest.Encode().ToString());

  // Entry-for-entry identical iteration.
  std::shared_ptr<Table> a, b;
  ASSERT_TRUE(cache.GetTable(1, meta_seq.file_size, &a).ok());
  ASSERT_TRUE(cache.GetTable(2, meta_pipe.file_size, &b).ok());
  std::unique_ptr<Iterator> ia(a->NewIterator()), ib(b->NewIterator());
  ia->SeekToFirst();
  ib->SeekToFirst();
  uint64_t entries = 0;
  while (ia->Valid() && ib->Valid()) {
    ASSERT_EQ(ia->key().ToString(), ib->key().ToString());
    ASSERT_EQ(ia->value().ToString(), ib->value().ToString());
    ia->Next();
    ib->Next();
    entries++;
  }
  EXPECT_FALSE(ia->Valid());
  EXPECT_FALSE(ib->Valid());
  EXPECT_EQ(3000u, entries);
}

TEST(PipelinedFlush, CarriesFilters) {
  SimEnv env;
  env.CreateDir("/db");
  InternalKeyComparator icmp(BytewiseComparator());
  std::unique_ptr<const FilterPolicy> user_policy(NewBloomFilterPolicy(10));
  InternalFilterPolicy policy(user_policy.get());
  TableOptions topt;
  topt.comparator = &icmp;
  topt.filter_policy = &policy;
  TableCache cache("/db", topt, &env, 10);

  MemTable* mem = FillMemTable(icmp, 1000);
  FileMetaData meta;
  meta.number = 1;
  {
    std::unique_ptr<Iterator> it(mem->NewIterator());
    ASSERT_TRUE(
        BuildTablePipelined("/db", &env, topt, &cache, it.get(), &meta).ok());
  }
  mem->Unref();

  std::shared_ptr<Table> table;
  ASSERT_TRUE(cache.GetTable(1, meta.file_size, &table).ok());
  env.device()->ResetStats();
  // Absent keys: filter must stop nearly all data-block reads.
  for (int i = 0; i < 200; i++) {
    std::string ikey;
    AppendInternalKey(&ikey,
                      ParsedInternalKey("zz-absent-" + std::to_string(i),
                                        kMaxSequenceNumber, kTypeValue));
    ASSERT_TRUE(
        table->InternalGet({}, ikey, [](const Slice&, const Slice&) {}).ok());
  }
  EXPECT_LE(env.device()->stats().read_ops.load(), 20u);
}

TEST(PipelinedFlush, DbEndToEnd) {
  SimEnv env;
  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.pipelined_flush = true;
  options.write_buffer_size = 64 << 10;
  options.max_file_size = 64 << 10;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  std::unique_ptr<DB> db(raw);

  WorkloadGenerator gen(4000, 16, 100, KeyOrder::kRandom);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
  }
  ASSERT_TRUE(db->WaitForCompactions().ok());
  std::string value;
  for (uint64_t i = 0; i < gen.num_entries(); i += 11) {
    ASSERT_TRUE(db->Get(ReadOptions(), gen.Key(i), &value).ok()) << i;
    ASSERT_EQ(gen.Value(i), value);
  }

  // Reopen: recovery replays through the pipelined flush path too.
  db.reset();
  ASSERT_TRUE(DB::Open(options, "/db", &raw).ok());
  db.reset(raw);
  for (uint64_t i = 0; i < gen.num_entries(); i += 101) {
    ASSERT_TRUE(db->Get(ReadOptions(), gen.Key(i), &value).ok()) << i;
  }
}

TEST(PipelinedFlush, NeverSlowerThanSequentialBuilder) {
  // On a deliberately slow device the pipelined flush should finish in
  // roughly max(compute, write) rather than compute + write.
  // Modeled write time (~75 ms) is sized to dominate both the real
  // block-building time and host scheduling noise: then the sequential
  // builder pays write + compute while the pipelined one pays
  // ~max(write, compute), and the ratio stays below the threshold whether
  // the (shared, burstable) host CPU is fast or throttled.
  DeviceProfile slow;
  slow.name = "slow";
  slow.read_bw_bps = 200.0 * 1024 * 1024;
  slow.write_bw_bps = 40.0 * 1024 * 1024;
  slow.write_position_us = 100;
  slow.charge_position_always = true;

  InternalKeyComparator icmp(BytewiseComparator());
  // Interleaved min-of-3 per mode: the shared host's CPU jitter is larger
  // than the effect on a single run.
  double seq_seconds = 1e9, pipe_seconds = 1e9;
  MemTable* mem = FillMemTable(icmp, 80000);  // ~9.3 MB
  for (int round = 0; round < 3; round++) {
    for (int mode = 0; mode < 2; mode++) {
      SimEnv env(slow);
      env.CreateDir("/db");
      TableOptions topt;
      topt.comparator = &icmp;
      TableCache cache("/db", topt, &env, 10);
      FileMetaData meta;
      meta.number = 1;
      std::unique_ptr<Iterator> it(mem->NewIterator());
      Stopwatch sw;
      if (mode == 0) {
        ASSERT_TRUE(
            BuildTable("/db", &env, topt, &cache, it.get(), &meta).ok());
        seq_seconds = std::min(seq_seconds, sw.ElapsedSeconds());
      } else {
        ASSERT_TRUE(
            BuildTablePipelined("/db", &env, topt, &cache, it.get(), &meta)
                .ok());
        pipe_seconds = std::min(pipe_seconds, sw.ElapsedSeconds());
      }
    }
  }
  mem->Unref();
  // Modeled writes ~155 ms, real compute ~45-60 ms: sequential pays their
  // sum, the pipelined builder ~max plus the single-core wakeup latency
  // of the sleeping writer thread. The typical observed gain is 10-25%,
  // but this host is a burstable shared vCPU whose throttling makes a
  // wall-clock GAIN assertion flaky, so the test only pins down that the
  // pipeline is never a regression; the performance demonstration lives
  // in bench_ablation (A4), where it is reported, not asserted.
  EXPECT_LT(pipe_seconds, seq_seconds * 1.02)
      << "seq=" << seq_seconds << " pipe=" << pipe_seconds;
}

}  // namespace
}  // namespace pipelsm
