// Randomized model check: a long random sequence of puts, deletes,
// overwrites and reopens applied both to the DB and to a std::map
// reference; after every phase the DB must agree with the model exactly
// — under every compaction executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "src/db/db.h"
#include "src/env/sim_env.h"
#include "src/util/random.h"

namespace pipelsm {
namespace {

struct ModelParams {
  CompactionMode mode;
  uint32_t seed;
};

class DbModelCheck : public ::testing::TestWithParam<ModelParams> {
 protected:
  DbModelCheck() {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.compaction_mode = GetParam().mode;
    options_.compute_parallelism =
        GetParam().mode == CompactionMode::kCPPCP ? 3 : 1;
    options_.io_parallelism =
        GetParam().mode == CompactionMode::kSPPCP ? 3 : 1;
    options_.write_buffer_size = 32 << 10;  // rotate often
    options_.max_file_size = 32 << 10;
    options_.subtask_bytes = 8 << 10;
  }

  void Open() {
    db_.reset();
    DB* raw = nullptr;
    Status s = DB::Open(options_, "/model", &raw);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(raw);
  }

  void CheckAgainstModel(const std::map<std::string, std::string>& model) {
    // Point reads.
    std::string value;
    for (const auto& [k, v] : model) {
      Status s = db_->Get(ReadOptions(), k, &value);
      ASSERT_TRUE(s.ok()) << k << ": " << s.ToString();
      ASSERT_EQ(v, value) << k;
    }
    // Full scan equals the model exactly (order + content).
    std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
    auto m = model.begin();
    for (it->SeekToFirst(); it->Valid(); it->Next(), ++m) {
      ASSERT_NE(model.end(), m);
      ASSERT_EQ(m->first, it->key().ToString());
      ASSERT_EQ(m->second, it->value().ToString());
    }
    ASSERT_TRUE(it->status().ok());
    ASSERT_EQ(model.end(), m);
  }

  SimEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(DbModelCheck, RandomOpsMatchReference) {
  Open();
  Random rnd(GetParam().seed);
  std::map<std::string, std::string> model;

  const int kKeySpace = 800;
  auto key_for = [](uint32_t i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%06u", i);
    return std::string(buf);
  };

  for (int phase = 0; phase < 4; phase++) {
    for (int op = 0; op < 2000; op++) {
      const std::string key = key_for(rnd.Uniform(kKeySpace));
      if (rnd.OneIn(4)) {
        ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
        model.erase(key);
      } else {
        std::string value =
            "v" + std::to_string(rnd.Next()) +
            std::string(rnd.Uniform(150), static_cast<char>('a' + op % 26));
        ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
        model[key] = value;
      }
    }
    ASSERT_TRUE(db_->WaitForCompactions().ok());
    CheckAgainstModel(model);

    // Every other phase: crash-free reopen.
    if (phase % 2 == 1) {
      Open();
      CheckAgainstModel(model);
    }
  }

  // Final manual compaction must preserve everything too.
  db_->CompactRange(nullptr, nullptr);
  CheckAgainstModel(model);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, DbModelCheck,
    ::testing::Values(ModelParams{CompactionMode::kSCP, 101},
                      ModelParams{CompactionMode::kPCP, 202},
                      ModelParams{CompactionMode::kPCP, 203},
                      ModelParams{CompactionMode::kSPPCP, 303},
                      ModelParams{CompactionMode::kCPPCP, 404}),
    [](const ::testing::TestParamInfo<ModelParams>& info) {
      std::string name = CompactionModeName(info.param.mode);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace pipelsm
