#include "src/db/dbformat.h"

#include <gtest/gtest.h>

namespace pipelsm {
namespace {

std::string IKey(const std::string& user_key, uint64_t seq, ValueType vt) {
  std::string encoded;
  AppendInternalKey(&encoded, ParsedInternalKey(user_key, seq, vt));
  return encoded;
}

std::string Shorten(const std::string& s, const std::string& l) {
  std::string result = s;
  InternalKeyComparator(BytewiseComparator()).FindShortestSeparator(&result, l);
  return result;
}

std::string ShortSuccessor(const std::string& s) {
  std::string result = s;
  InternalKeyComparator(BytewiseComparator()).FindShortSuccessor(&result);
  return result;
}

void TestKey(const std::string& key, uint64_t seq, ValueType vt) {
  std::string encoded = IKey(key, seq, vt);

  Slice in(encoded);
  ParsedInternalKey decoded("", 0, kTypeValue);

  ASSERT_TRUE(ParseInternalKey(in, &decoded));
  ASSERT_EQ(key, decoded.user_key.ToString());
  ASSERT_EQ(seq, decoded.sequence);
  ASSERT_EQ(vt, decoded.type);

  ASSERT_FALSE(ParseInternalKey(Slice("bar"), &decoded));
}

TEST(FormatTest, InternalKey_EncodeDecode) {
  const char* keys[] = {"", "k", "hello", "longggggggggggggggggggggg"};
  const uint64_t seq[] = {1,
                          2,
                          3,
                          (1ull << 8) - 1,
                          1ull << 8,
                          (1ull << 8) + 1,
                          (1ull << 16) - 1,
                          1ull << 16,
                          (1ull << 16) + 1,
                          (1ull << 32) - 1,
                          1ull << 32,
                          (1ull << 32) + 1};
  for (unsigned int k = 0; k < sizeof(keys) / sizeof(keys[0]); k++) {
    for (unsigned int s = 0; s < sizeof(seq) / sizeof(seq[0]); s++) {
      TestKey(keys[k], seq[s], kTypeValue);
      TestKey("hello", 1, kTypeDeletion);
    }
  }
}

TEST(FormatTest, InternalKeyOrdering) {
  InternalKeyComparator icmp(BytewiseComparator());
  // Same user key: higher sequence sorts FIRST.
  EXPECT_LT(icmp.Compare(IKey("a", 10, kTypeValue), IKey("a", 5, kTypeValue)),
            0);
  // Different user keys: lexicographic.
  EXPECT_LT(icmp.Compare(IKey("a", 1, kTypeValue), IKey("b", 100, kTypeValue)),
            0);
  // Same user key + sequence: value sorts before... (type descending).
  EXPECT_LT(
      icmp.Compare(IKey("a", 5, kTypeValue), IKey("a", 5, kTypeDeletion)), 0);
}

TEST(FormatTest, InternalKeyShortSeparator) {
  // When user keys are same
  ASSERT_EQ(IKey("foo", 100, kTypeValue),
            Shorten(IKey("foo", 100, kTypeValue), IKey("foo", 99, kTypeValue)));
  ASSERT_EQ(
      IKey("foo", 100, kTypeValue),
      Shorten(IKey("foo", 100, kTypeValue), IKey("foo", 101, kTypeValue)));

  // When user keys are misordered
  ASSERT_EQ(IKey("foo", 100, kTypeValue),
            Shorten(IKey("foo", 100, kTypeValue), IKey("bar", 99, kTypeValue)));

  // When user keys are different, but correctly ordered
  ASSERT_EQ(IKey("g", kMaxSequenceNumber, kValueTypeForSeek),
            Shorten(IKey("foo", 100, kTypeValue),
                    IKey("hello", 200, kTypeValue)));

  // When start user key is prefix of limit user key
  ASSERT_EQ(
      IKey("foo", 100, kTypeValue),
      Shorten(IKey("foo", 100, kTypeValue), IKey("foobar", 200, kTypeValue)));

  // When limit user key is prefix of start user key
  ASSERT_EQ(
      IKey("foobar", 100, kTypeValue),
      Shorten(IKey("foobar", 100, kTypeValue), IKey("foo", 200, kTypeValue)));
}

TEST(FormatTest, InternalKeyShortestSuccessor) {
  ASSERT_EQ(IKey("g", kMaxSequenceNumber, kValueTypeForSeek),
            ShortSuccessor(IKey("foo", 100, kTypeValue)));
  ASSERT_EQ(IKey("\xff\xff", 100, kTypeValue),
            ShortSuccessor(IKey("\xff\xff", 100, kTypeValue)));
}

TEST(FormatTest, LookupKey) {
  LookupKey lkey("user", 99);
  EXPECT_EQ("user", lkey.user_key().ToString());
  Slice ikey = lkey.internal_key();
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
  EXPECT_EQ("user", parsed.user_key.ToString());
  EXPECT_EQ(99u, parsed.sequence);
  EXPECT_EQ(kValueTypeForSeek, parsed.type);

  // Long key exercises the heap-allocation path.
  std::string long_key(500, 'x');
  LookupKey lkey2(long_key, 1);
  EXPECT_EQ(long_key, lkey2.user_key().ToString());
}

TEST(FormatTest, ParseRejectsBadType) {
  std::string encoded;
  encoded.append("key");
  PutFixed64(&encoded, PackSequenceAndType(1, static_cast<ValueType>(0x7f)));
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(encoded, &parsed));
}

}  // namespace
}  // namespace pipelsm
