// ReadOptions semantics: fill_cache controls block-cache population;
// verify_checksums turns Get/scan into a checked read.
#include <gtest/gtest.h>

#include <memory>

#include "src/db/db.h"
#include "src/db/filename.h"
#include "src/env/sim_env.h"
#include "src/read/cache.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

class ReadOptionsTest : public ::testing::Test {
 protected:
  ReadOptionsTest() : cache_(read::NewShardedLRUCache(8 << 20, 4)) {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.block_cache = cache_.get();
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
    options_.verify_checksums = false;  // let per-read options decide
  }

  void OpenAndFill() {
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, "/db", &raw).ok());
    db_.reset(raw);
    WorkloadGenerator gen(2000, 16, 100, KeyOrder::kSequential);
    for (uint64_t i = 0; i < gen.num_entries(); i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
    }
    db_->CompactRange(nullptr, nullptr);
  }

  SimEnv env_;
  std::unique_ptr<read::Cache> cache_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(ReadOptionsTest, FillCacheFalseLeavesCacheCold) {
  OpenAndFill();
  WorkloadGenerator gen(2000, 16, 100, KeyOrder::kSequential);

  const size_t usage_before = cache_->usage();
  ReadOptions no_fill;
  no_fill.fill_cache = false;
  std::string value;
  for (uint64_t i = 0; i < 2000; i += 50) {
    ASSERT_TRUE(db_->Get(no_fill, gen.Key(i), &value).ok());
  }
  EXPECT_EQ(usage_before, cache_->usage());

  // Default (fill_cache=true) populates it.
  for (uint64_t i = 0; i < 2000; i += 50) {
    ASSERT_TRUE(db_->Get(ReadOptions(), gen.Key(i), &value).ok());
  }
  EXPECT_GT(cache_->usage(), usage_before);
}

TEST_F(ReadOptionsTest, CachedBlocksSkipDeviceReads) {
  OpenAndFill();
  WorkloadGenerator gen(2000, 16, 100, KeyOrder::kSequential);
  std::string value;
  // Warm the cache.
  for (uint64_t i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Get(ReadOptions(), gen.Key(i), &value).ok());
  }
  // Re-read everything: zero device reads.
  env_.device()->ResetStats();
  for (uint64_t i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Get(ReadOptions(), gen.Key(i), &value).ok());
  }
  EXPECT_EQ(0u, env_.device()->stats().read_ops.load());
}

TEST_F(ReadOptionsTest, VerifyChecksumsCatchesCorruptBlock) {
  OpenAndFill();
  WorkloadGenerator gen(2000, 16, 100, KeyOrder::kSequential);

  // Corrupt the middle of every live table file.
  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren("/db", &children).ok());
  int corrupted = 0;
  uint64_t number;
  FileType type;
  for (const auto& c : children) {
    if (ParseFileName(c, &number, &type) && type == kTableFile) {
      uint64_t size;
      ASSERT_TRUE(env_.GetFileSize("/db/" + c, &size).ok());
      ASSERT_TRUE(env_.CorruptFile("/db/" + c, size / 3, 32).ok());
      corrupted++;
    }
  }
  ASSERT_GT(corrupted, 0);

  // Checked reads must hit Corruption for at least some key; unchecked
  // reads may return garbage, but every checked read must be either OK
  // (block untouched), NotFound, or Corruption — never wrong data.
  ReadOptions checked;
  checked.verify_checksums = true;
  checked.fill_cache = false;
  int corruption_errors = 0;
  std::string value;
  for (uint64_t i = 0; i < 2000; i += 10) {
    Status s = db_->Get(checked, gen.Key(i), &value);
    if (s.IsCorruption()) {
      corruption_errors++;
    } else if (s.ok()) {
      EXPECT_EQ(gen.Value(i), value) << "checked read returned wrong data";
    }
  }
  EXPECT_GT(corruption_errors, 0);
}

}  // namespace
}  // namespace pipelsm
