// Adaptive scheduling, end to end: a live DB on a simulated HDD whose
// workload shifts from small, highly compressible values (little I/O per
// raw byte, lots of merge/compress work — the CPU-bound regime) to large
// incompressible values (every byte hits the device — the I/O-bound
// regime). The CompactionScheduler must track the shift: the executor
// chosen for the steady-state jobs of each phase must differ, the switch
// must be visible in GetProperty("pipelsm.scheduler"), and every job's
// Begin event must carry the scheduler's verdict.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/env/sim_env.h"
#include "src/obs/event_listener.h"
#include "src/workload/generator.h"
#include "tests/obs/json_check.h"

// The phase-shift test is calibrated against real compute speed (the
// simulated device charges wall time, the compute stages burn CPU);
// sanitizers inflate compute 2-15x, which moves the regime boundary out
// of the calibrated window, so that one test is skipped under them.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PIPELSM_UNDER_SANITIZER 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PIPELSM_UNDER_SANITIZER 1
#endif
#endif

namespace pipelsm {
namespace {

using testjson::JsonValue;
using testjson::ParseJson;

// Records the scheduler-facing slice of every compaction Begin event.
class DecisionListener : public obs::EventListener {
 public:
  struct Decision {
    std::string executor;
    int read_parallelism = 0;
    int compute_parallelism = 0;
    bool adaptive = false;
    std::string rationale;
  };

  void OnCompactionBegin(const obs::CompactionJobInfo& info) override {
    Decision d;
    d.executor = info.executor;
    d.read_parallelism = info.read_parallelism;
    d.compute_parallelism = info.compute_parallelism;
    d.adaptive = info.adaptive;
    d.rationale = info.scheduler_rationale;
    std::lock_guard<std::mutex> lock(mu_);
    decisions_.push_back(std::move(d));
  }

  std::vector<Decision> decisions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return decisions_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Decision> decisions_;
};

class AdaptiveDbTest : public ::testing::Test {
 protected:
  AdaptiveDbTest() : env_(DeviceProfile::Ssd(4)) {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.compaction_mode = CompactionMode::kPCP;  // static seed choice
    options_.adaptive_compaction = true;
    options_.max_compute_workers = 4;
    options_.max_stripe_width = 4;
    options_.scheduler_hysteresis_jobs = 2;
    options_.scheduler_warmup_jobs = 2;
    options_.write_buffer_size = 16 << 10;
    options_.max_file_size = 16 << 10;
    options_.subtask_bytes = 16 << 10;
    // Park the compute:I/O regime boundary between the two phases: on the
    // SSD model phase 1 reads ~1.1 ms/sub-task and phase 2 ~3.5 ms, while
    // undilated compute is ~0.8 ms and ~0.65 ms, so 3x dilation makes
    // phase 1 compute-bound (2.3 vs 1.1) and phase 2 I/O-bound (1.9 vs
    // 3.5) with ~2x margin either way against host-speed variation.
    options_.compaction_time_dilation = 3.0;
    options_.listeners.push_back(&listener_);
  }

  void Open() {
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, "/db", &raw).ok());
    db_.reset(raw);
  }

  // One workload phase: `num` values of `value_size` bytes at the given
  // compressibility, then quiesce. Returns the number of compaction
  // decisions recorded by the end of the phase.
  size_t FillPhase(uint64_t num, size_t value_size, double compressibility,
                   uint32_t seed) {
    WorkloadGenerator gen(num, 16, value_size, KeyOrder::kRandom, seed,
                          compressibility);
    for (uint64_t i = 0; i < num; i++) {
      EXPECT_TRUE(db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
      // Quiesce periodically so the phase yields several separate
      // compaction jobs instead of one giant catch-up job at the end.
      if ((i + 1) % (num / 4) == 0) {
        EXPECT_TRUE(db_->WaitForCompactions().ok());
      }
    }
    EXPECT_TRUE(db_->WaitForCompactions().ok());
    return listener_.decisions().size();
  }

  std::string Property(const std::string& name) {
    std::string value;
    EXPECT_TRUE(db_->GetProperty(name, &value)) << name;
    return value;
  }

  SimEnv env_;
  Options options_;
  DecisionListener listener_;
  std::unique_ptr<DB> db_;
};

TEST_F(AdaptiveDbTest, ValueSizePhaseShiftChangesChosenExecutor) {
#ifdef PIPELSM_UNDER_SANITIZER
  GTEST_SKIP() << "regime calibration assumes uninstrumented compute speed";
#endif
  Open();

  // Phase 1: small, fully compressible values. Compaction inputs shrink
  // ~10x on disk, so per raw byte the device is cheap and the merge/
  // compress stages dominate.
  const size_t phase1_end =
      FillPhase(/*num=*/16000, /*value_size=*/100, /*compressibility=*/1.0,
                /*seed=*/301);
  const std::vector<DecisionListener::Decision> after1 =
      listener_.decisions();
  ASSERT_GE(after1.size(), 4u)
      << "phase 1 must run enough compactions to exit warmup";

  // Phase 2: large, incompressible values. Every raw byte is transferred
  // at HDD bandwidth, so S1/S7 dominate the dwarfed compute stages.
  FillPhase(/*num=*/800, /*value_size=*/4096, /*compressibility=*/0.0,
            /*seed=*/302);
  const std::vector<DecisionListener::Decision> all = listener_.decisions();
  ASSERT_GT(all.size(), phase1_end + 4)
      << "phase 2 must run enough compactions for the EMA to converge";

  // Every job — both phases — carried the scheduler's verdict.
  for (const auto& d : all) {
    EXPECT_FALSE(d.executor.empty());
    EXPECT_GE(d.read_parallelism, 1);
    EXPECT_GE(d.compute_parallelism, 1);
    EXPECT_FALSE(d.rationale.empty());
  }

  // The steady-state choice of each phase, from its final job.
  const DecisionListener::Decision& end1 = all[phase1_end - 1];
  const DecisionListener::Decision& end2 = all.back();
  EXPECT_TRUE(end1.adaptive) << end1.rationale;
  EXPECT_TRUE(end2.adaptive) << end2.rationale;
  EXPECT_NE(end1.executor, end2.executor)
      << "phase 1 settled on " << end1.executor << " (" << end1.rationale
      << "); phase 2 must settle elsewhere (" << end2.rationale << ")\n"
      << "advisor: " << Property("pipelsm.advisor") << "\n"
      << "scheduler: " << Property("pipelsm.scheduler");

  // The switch shows up in the scheduler report, which must parse.
  JsonValue v;
  std::string err;
  const std::string json = Property("pipelsm.scheduler");
  ASSERT_TRUE(ParseJson(json, &v, &err)) << err << "\n" << json;
  EXPECT_NE(nullptr, v.Find("current"));
  ASSERT_NE(nullptr, v.Find("switches"));
  EXPECT_GE(v.Find("switches")->number_value, 1);
  EXPECT_EQ(end2.executor,
            v.Find("current")->Find("procedure")->string_value);
}

TEST_F(AdaptiveDbTest, AdaptiveDecisionsReachTheInfoLog) {
  Open();
  FillPhase(/*num=*/8000, /*value_size=*/100, /*compressibility=*/1.0,
            /*seed=*/303);
  ASSERT_GE(listener_.decisions().size(), 1u);
  db_.reset();  // close: LOG complete

  std::string log;
  ASSERT_TRUE(ReadFileToString(&env_, "/db/LOG", &log).ok());
  EXPECT_NE(std::string::npos, log.find("EVENT adaptive_decision"));
  EXPECT_NE(std::string::npos, log.find("rationale="));
  EXPECT_NE(std::string::npos, log.find("+adaptive"));  // opening banner
}

TEST_F(AdaptiveDbTest, StaticConfigurationStaysPinned) {
  options_.adaptive_compaction = false;
  options_.compaction_mode = CompactionMode::kSCP;
  Open();
  FillPhase(/*num=*/8000, /*value_size=*/100, /*compressibility=*/1.0,
            /*seed=*/304);
  const std::vector<DecisionListener::Decision> all = listener_.decisions();
  ASSERT_GE(all.size(), 1u);
  for (const auto& d : all) {
    EXPECT_EQ("SCP", d.executor);
    EXPECT_FALSE(d.adaptive);
  }

  JsonValue v;
  std::string err;
  const std::string json = Property("pipelsm.scheduler");
  ASSERT_TRUE(ParseJson(json, &v, &err)) << err << "\n" << json;
  EXPECT_EQ(0, v.Find("switches")->number_value);
}

}  // namespace
}  // namespace pipelsm
