// DBIter in isolation: collapsing internal-key history (overwrites,
// deletions, sequence visibility) into the user view, both directions.
#include "src/db/db_iter.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/memtable/memtable.h"

namespace pipelsm {
namespace {

class DBIterTest : public ::testing::Test {
 protected:
  DBIterTest() : icmp_(BytewiseComparator()), mem_(new MemTable(icmp_)) {
    mem_->Ref();
  }
  ~DBIterTest() override { mem_->Unref(); }

  void Put(SequenceNumber seq, const std::string& k, const std::string& v) {
    mem_->Add(seq, kTypeValue, k, v);
  }
  void Del(SequenceNumber seq, const std::string& k) {
    mem_->Add(seq, kTypeDeletion, k, "");
  }

  // Iterator over the memtable at `snapshot`.
  Iterator* NewIter(SequenceNumber snapshot) {
    return NewDBIterator(BytewiseComparator(), mem_->NewIterator(), snapshot);
  }

  std::string Dump(Iterator* it) {
    std::string out;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      out += it->key().ToString() + "=" + it->value().ToString() + ";";
    }
    return out;
  }

  std::string DumpReverse(Iterator* it) {
    std::string out;
    for (it->SeekToLast(); it->Valid(); it->Prev()) {
      out += it->key().ToString() + "=" + it->value().ToString() + ";";
    }
    return out;
  }

  InternalKeyComparator icmp_;
  MemTable* mem_;
};

TEST_F(DBIterTest, NewestVersionWinsForward) {
  Put(1, "a", "old");
  Put(5, "a", "new");
  Put(2, "b", "b1");
  std::unique_ptr<Iterator> it(NewIter(100));
  EXPECT_EQ("a=new;b=b1;", Dump(it.get()));
}

TEST_F(DBIterTest, DeletionsHideValuesBothDirections) {
  Put(1, "a", "va");
  Put(2, "b", "vb");
  Del(3, "b");
  Put(4, "c", "vc");
  std::unique_ptr<Iterator> it(NewIter(100));
  EXPECT_EQ("a=va;c=vc;", Dump(it.get()));
  EXPECT_EQ("c=vc;a=va;", DumpReverse(it.get()));
}

TEST_F(DBIterTest, ReinsertAfterDeleteVisible) {
  Put(1, "k", "v1");
  Del(2, "k");
  Put(3, "k", "v3");
  std::unique_ptr<Iterator> it(NewIter(100));
  EXPECT_EQ("k=v3;", Dump(it.get()));
  EXPECT_EQ("k=v3;", DumpReverse(it.get()));
}

TEST_F(DBIterTest, SnapshotSelectsOldVersions) {
  Put(1, "k", "v1");
  Put(5, "k", "v5");
  Del(8, "k");

  std::unique_ptr<Iterator> at3(NewIter(3));
  EXPECT_EQ("k=v1;", Dump(at3.get()));
  std::unique_ptr<Iterator> at6(NewIter(6));
  EXPECT_EQ("k=v5;", Dump(at6.get()));
  std::unique_ptr<Iterator> at9(NewIter(9));
  EXPECT_EQ("", Dump(at9.get()));
  // An even older snapshot predates the key entirely.
  std::unique_ptr<Iterator> at0(NewIter(0));
  EXPECT_EQ("", Dump(at0.get()));
}

TEST_F(DBIterTest, SeekLandsOnNextLiveKey) {
  Put(1, "apple", "1");
  Del(2, "banana");
  Put(1, "banana", "x");
  Put(3, "cherry", "3");
  std::unique_ptr<Iterator> it(NewIter(100));
  it->Seek("banana");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("cherry", it->key().ToString());  // banana is deleted
  it->Seek("a");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("apple", it->key().ToString());
  it->Seek("zebra");
  EXPECT_FALSE(it->Valid());
}

TEST_F(DBIterTest, DirectionSwitchAcrossDeletions) {
  Put(1, "a", "va");
  Put(1, "b", "vb-old");
  Put(4, "b", "vb");
  Del(2, "c");
  Put(1, "c", "vc-dead");
  Put(1, "d", "vd");

  std::unique_ptr<Iterator> it(NewIter(100));
  it->Seek("b");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("vb", it->value().ToString());

  it->Next();  // -> d (c deleted)
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("d", it->key().ToString());

  it->Prev();  // back over deleted c -> b
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("b", it->key().ToString());
  EXPECT_EQ("vb", it->value().ToString());

  it->Prev();  // -> a
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("a", it->key().ToString());

  it->Next();  // forward again -> b
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("b", it->key().ToString());
}

TEST_F(DBIterTest, PrevFromFirstInvalidates) {
  Put(1, "only", "v");
  std::unique_ptr<Iterator> it(NewIter(100));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  it->Prev();
  EXPECT_FALSE(it->Valid());
}

TEST_F(DBIterTest, EmptyViewWhenEverythingDeleted) {
  for (int i = 0; i < 10; i++) {
    Put(i * 2 + 1, "k" + std::to_string(i), "v");
    Del(i * 2 + 2, "k" + std::to_string(i));
  }
  std::unique_ptr<Iterator> it(NewIter(100));
  EXPECT_EQ("", Dump(it.get()));
  EXPECT_EQ("", DumpReverse(it.get()));
  it->Seek("k5");
  EXPECT_FALSE(it->Valid());
}

TEST_F(DBIterTest, ManyVersionsPerKeyCollapse) {
  for (SequenceNumber s = 1; s <= 50; s++) {
    Put(s, "hot", "v" + std::to_string(s));
  }
  std::unique_ptr<Iterator> it(NewIter(100));
  EXPECT_EQ("hot=v50;", Dump(it.get()));
  EXPECT_EQ("hot=v50;", DumpReverse(it.get()));
  std::unique_ptr<Iterator> mid(NewIter(25));
  EXPECT_EQ("hot=v25;", Dump(mid.get()));
}

}  // namespace
}  // namespace pipelsm
