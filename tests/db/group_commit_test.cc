// Group commit: many threads writing concurrently must all commit
// atomically, with unique sequence numbers and full recoverability.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/db/db.h"
#include "src/db/write_batch.h"
#include "src/env/sim_env.h"

namespace pipelsm {
namespace {

class GroupCommitTest : public ::testing::Test {
 protected:
  GroupCommitTest() {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.write_buffer_size = 128 << 10;
    options_.max_file_size = 128 << 10;
  }

  void Open() {
    db_.reset();
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, "/db", &raw).ok());
    db_.reset(raw);
  }

  SimEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(GroupCommitTest, ConcurrentWritersAllCommit) {
  Open();
  const int kThreads = 8;
  const int kPerThread = 1000;

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        const std::string key =
            "w" + std::to_string(t) + "-" + std::to_string(i);
        if (!db_->Put(WriteOptions(), key, key + "-value").ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(0, failures.load());

  // Every write visible with its exact value.
  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 37) {
      const std::string key =
          "w" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
      ASSERT_EQ(key + "-value", value);
    }
  }

  // Total count is exact (sequence allocation never lost an entry).
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) count++;
  EXPECT_EQ(kThreads * kPerThread, count);
}

TEST_F(GroupCommitTest, ConcurrentWritersSurviveReopen) {
  Open();
  const int kThreads = 4;
  const int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      WriteBatch batch;
      for (int i = 0; i < kPerThread; i++) {
        batch.Put("t" + std::to_string(t) + "-" + std::to_string(i), "v");
        if (i % 10 == 9) {
          ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
          batch.Clear();
        }
      }
      ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
    });
  }
  for (auto& th : threads) th.join();

  Open();  // reopen: WAL replay must reconstruct all groups
  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 19) {
      ASSERT_TRUE(db_->Get(ReadOptions(),
                           "t" + std::to_string(t) + "-" + std::to_string(i),
                           &value)
                      .ok());
    }
  }
}

TEST_F(GroupCommitTest, MixedSyncAndAsyncWriters) {
  Open();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      WriteOptions wo;
      wo.sync = (t % 2 == 0);
      for (int i = 0; i < 300; i++) {
        ASSERT_TRUE(
            db_->Put(wo, "m" + std::to_string(t) + "-" + std::to_string(i),
                     "v")
                .ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "m0-299", &value).ok());
  ASSERT_TRUE(db_->Get(ReadOptions(), "m3-299", &value).ok());
}

}  // namespace
}  // namespace pipelsm
