// End-to-end DB tests: write/read/delete/scan across memtable rotations
// and background compactions, for every compaction executor.
#include "src/db/db.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/db/write_batch.h"
#include "src/env/sim_env.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

class DBTest : public ::testing::TestWithParam<CompactionMode> {
 protected:
  DBTest() {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.compaction_mode = GetParam();
    options_.compute_parallelism =
        GetParam() == CompactionMode::kCPPCP ? 3 : 1;
    options_.io_parallelism = GetParam() == CompactionMode::kSPPCP ? 3 : 1;
    // Small shapes so compactions actually trigger in-test.
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
    options_.subtask_bytes = 16 << 10;
  }

  ~DBTest() override { Close(); }

  void Open() {
    Close();
    DB* db = nullptr;
    Status s = DB::Open(options_, "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  void Close() { db_.reset(); }

  Status Put(const std::string& k, const std::string& v) {
    return db_->Put(WriteOptions(), k, v);
  }

  std::string Get(const std::string& k) {
    std::string value;
    Status s = db_->Get(ReadOptions(), k, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR: " + s.ToString();
    return value;
  }

  SimEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(DBTest, PutGet) {
  Open();
  ASSERT_TRUE(Put("foo", "v1").ok());
  EXPECT_EQ("v1", Get("foo"));
  EXPECT_EQ("NOT_FOUND", Get("bar"));
  ASSERT_TRUE(Put("foo", "v2").ok());
  EXPECT_EQ("v2", Get("foo"));
}

TEST_P(DBTest, DeleteHidesValue) {
  Open();
  ASSERT_TRUE(Put("k", "v").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "k").ok());
  EXPECT_EQ("NOT_FOUND", Get("k"));
  ASSERT_TRUE(Put("k", "v2").ok());
  EXPECT_EQ("v2", Get("k"));
}

TEST_P(DBTest, EmptyValueAndEmptyishKeys) {
  Open();
  ASSERT_TRUE(Put("empty-value", "").ok());
  EXPECT_EQ("", Get("empty-value"));
  std::string binary_key("\x00\x01\xff", 3);
  ASSERT_TRUE(Put(binary_key, "bin").ok());
  EXPECT_EQ("bin", Get(binary_key));
}

TEST_P(DBTest, WriteBatchIsAtomicallyVisible) {
  Open();
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ("NOT_FOUND", Get("a"));
  EXPECT_EQ("2", Get("b"));
}

TEST_P(DBTest, ManyWritesSurviveCompactions) {
  Open();
  WorkloadGenerator gen(4000, 16, 100, KeyOrder::kRandom);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(Put(gen.Key(i), gen.Value(i)).ok()) << i;
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  // Compactions must have actually run given the tiny write buffer.
  CompactionMetrics m = db_->GetCompactionMetrics();
  EXPECT_GT(m.memtable_flushes, 0u);

  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_EQ(gen.Value(i), Get(gen.Key(i))) << "key index " << i;
  }
}

TEST_P(DBTest, OverwritesKeepNewestAcrossCompactions) {
  Open();
  WorkloadGenerator gen(800, 16, 64, KeyOrder::kSequential);
  for (int round = 0; round < 4; round++) {
    for (uint64_t i = 0; i < gen.num_entries(); i++) {
      ASSERT_TRUE(
          Put(gen.Key(i), "round" + std::to_string(round) + "-" +
                              std::to_string(i))
              .ok());
    }
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    EXPECT_EQ("round3-" + std::to_string(i), Get(gen.Key(i)));
  }
}

TEST_P(DBTest, IteratorSeesSortedLiveView) {
  Open();
  std::map<std::string, std::string> expected;
  WorkloadGenerator gen(1500, 16, 50, KeyOrder::kRandom);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(Put(gen.Key(i), gen.Value(i)).ok());
    expected[gen.Key(i)] = gen.Value(i);
  }
  // Delete a subset.
  int d = 0;
  for (auto it = expected.begin(); it != expected.end() && d < 200;) {
    ASSERT_TRUE(db_->Delete(WriteOptions(), it->first).ok());
    it = expected.erase(it);
    ++d;
    if (it != expected.end()) ++it;  // skip one, delete next
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  auto model = expected.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++model) {
    ASSERT_NE(expected.end(), model);
    EXPECT_EQ(model->first, iter->key().ToString());
    EXPECT_EQ(model->second, iter->value().ToString());
  }
  EXPECT_EQ(expected.end(), model);
  EXPECT_TRUE(iter->status().ok());
}

TEST_P(DBTest, IteratorSeekAndReverse) {
  Open();
  for (char c = 'a'; c <= 'z'; c++) {
    ASSERT_TRUE(Put(std::string(1, c), std::string(1, c)).ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->Seek("m");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("m", iter->key().ToString());
  iter->Prev();
  EXPECT_EQ("l", iter->key().ToString());
  iter->SeekToLast();
  EXPECT_EQ("z", iter->key().ToString());
  std::string reverse;
  for (; iter->Valid(); iter->Prev()) reverse += iter->key().ToString();
  EXPECT_EQ("zyxwvutsrqponmlkjihgfedcba", reverse);
}

TEST_P(DBTest, SnapshotIsolation) {
  Open();
  ASSERT_TRUE(Put("k", "before").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(Put("k", "after").ok());
  ASSERT_TRUE(Put("new-key", "x").ok());

  ReadOptions ro;
  ro.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(ro, "k", &value).ok());
  EXPECT_EQ("before", value);
  EXPECT_TRUE(db_->Get(ro, "new-key", &value).IsNotFound());

  // Snapshot survives compactions.
  WorkloadGenerator gen(2000, 16, 100, KeyOrder::kRandom);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(Put(gen.Key(i), gen.Value(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  ASSERT_TRUE(db_->Get(ro, "k", &value).ok());
  EXPECT_EQ("before", value);

  db_->ReleaseSnapshot(snap);
  ASSERT_TRUE(db_->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ("after", value);
}

TEST_P(DBTest, CompactRangePushesDataDown) {
  Open();
  WorkloadGenerator gen(3000, 16, 100, KeyOrder::kRandom);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(Put(gen.Key(i), gen.Value(i)).ok());
  }
  db_->CompactRange(nullptr, nullptr);

  std::string l0;
  ASSERT_TRUE(db_->GetProperty("pipelsm.num-files-at-level0", &l0));
  EXPECT_EQ("0", l0);

  for (uint64_t i = 0; i < gen.num_entries(); i += 97) {
    ASSERT_EQ(gen.Value(i), Get(gen.Key(i)));
  }
}

TEST_P(DBTest, GetProperty) {
  Open();
  std::string value;
  EXPECT_TRUE(db_->GetProperty("pipelsm.num-files-at-level0", &value));
  EXPECT_TRUE(db_->GetProperty("pipelsm.stats", &value));
  EXPECT_TRUE(db_->GetProperty("pipelsm.sstables", &value));
  EXPECT_TRUE(db_->GetProperty("pipelsm.approximate-memory-usage", &value));
  EXPECT_FALSE(db_->GetProperty("pipelsm.no-such-property", &value));
  EXPECT_FALSE(db_->GetProperty("unprefixed", &value));
}

TEST_P(DBTest, TimeseriesPropertyTracksCounters) {
  Open();
  // No stats thread in this config: the property takes one on-demand
  // sample, so even the first fetch carries current absolute values.
  ASSERT_TRUE(Put("k", "v").ok());
  std::string value;
  ASSERT_TRUE(db_->GetProperty("pipelsm.timeseries", &value));
  EXPECT_NE(value.find("\"samples\":[{"), std::string::npos) << value;
  EXPECT_NE(value.find("\"db.write_micros.count\":1"), std::string::npos)
      << value;
  EXPECT_NE(value.find("\"db.write_stall_state\":0"), std::string::npos)
      << value;
}

TEST_P(DBTest, OpenMissingDbFailsWithoutCreateFlag) {
  Options opt = options_;
  opt.create_if_missing = false;
  DB* db = nullptr;
  Status s = DB::Open(opt, "/nonexistent", &db);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(nullptr, db);
}

TEST_P(DBTest, ErrorIfExists) {
  Open();
  Close();
  Options opt = options_;
  opt.error_if_exists = true;
  DB* db = nullptr;
  Status s = DB::Open(opt, "/db", &db);
  EXPECT_FALSE(s.ok());
}

TEST_P(DBTest, DestroyDbRemovesFiles) {
  Open();
  ASSERT_TRUE(Put("a", "b").ok());
  Close();
  ASSERT_TRUE(DestroyDB("/db", options_).ok());
  std::vector<std::string> children;
  env_.GetChildren("/db", &children);
  EXPECT_TRUE(children.empty());
}

INSTANTIATE_TEST_SUITE_P(AllModes, DBTest,
                         ::testing::Values(CompactionMode::kSCP,
                                           CompactionMode::kPCP,
                                           CompactionMode::kSPPCP,
                                           CompactionMode::kCPPCP),
                         [](const ::testing::TestParamInfo<CompactionMode>& i) {
                           switch (i.param) {
                             case CompactionMode::kSCP: return "SCP";
                             case CompactionMode::kPCP: return "PCP";
                             case CompactionMode::kSPPCP: return "SPPCP";
                             case CompactionMode::kCPPCP: return "CPPCP";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace pipelsm
