// End-to-end bloom filters: a DB opened with a filter policy keeps
// filters working across memtable flushes AND major compactions (both
// table-building paths), measurably cutting device reads for absent keys.
#include <gtest/gtest.h>

#include <memory>

#include "src/db/db.h"
#include "src/env/sim_env.h"
#include "src/table/filter_policy.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

class FilterDbTest : public ::testing::Test {
 protected:
  FilterDbTest() : policy_(NewBloomFilterPolicy(10)) {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.filter_policy = policy_.get();
    options_.compaction_mode = CompactionMode::kPCP;
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
    options_.subtask_bytes = 16 << 10;
    options_.block_cache = nullptr;
  }

  void Open() {
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, "/db", &raw).ok());
    db_.reset(raw);
  }

  SimEnv env_;
  Options options_;
  std::unique_ptr<const FilterPolicy> policy_;
  std::unique_ptr<DB> db_;
};

TEST_F(FilterDbTest, FiltersSurviveCompactionAndCutReads) {
  Open();
  WorkloadGenerator gen(4000, 16, 100, KeyOrder::kRandom);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
  }
  // Push everything through major compactions (raw-writer tables).
  db_->CompactRange(nullptr, nullptr);
  CompactionMetrics m = db_->GetCompactionMetrics();
  ASSERT_GT(m.compactions, 0u);

  // All present keys readable (no false negatives through either path).
  std::string value;
  for (uint64_t i = 0; i < gen.num_entries(); i += 7) {
    ASSERT_TRUE(db_->Get(ReadOptions(), gen.Key(i), &value).ok()) << i;
    ASSERT_EQ(gen.Value(i), value);
  }

  // Absent keys: count device reads with and without filters. The keys
  // probe inside the data's range (so only the filter can save the read).
  auto probe_absent = [&]() -> uint64_t {
    env_.device()->ResetStats();
    std::string v;
    for (int i = 0; i < 300; i++) {
      // Same length and prefix as a real key (so the probe lands inside
      // table ranges) but with a non-digit tail: definitely absent.
      std::string key = gen.Key(i);
      key[15] = 'x';
      Status s = db_->Get(ReadOptions(), key, &v);
      EXPECT_TRUE(s.IsNotFound() || s.ok());
    }
    return env_.device()->stats().read_ops.load();
  };
  const uint64_t with_filter_reads = probe_absent();

  // Reopen WITHOUT the policy: filters are ignored, every probe that
  // reaches a table now reads a data block.
  db_.reset();
  options_.filter_policy = nullptr;
  Open();
  const uint64_t without_filter_reads = probe_absent();

  EXPECT_LT(with_filter_reads, without_filter_reads / 2)
      << "with=" << with_filter_reads << " without=" << without_filter_reads;
}

TEST_F(FilterDbTest, WrongKeysStillNotFound) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "present", "yes").ok());
  db_->CompactRange(nullptr, nullptr);
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "absent", &value).IsNotFound());
  ASSERT_TRUE(db_->Get(ReadOptions(), "present", &value).ok());
  EXPECT_EQ("yes", value);
}

}  // namespace
}  // namespace pipelsm
