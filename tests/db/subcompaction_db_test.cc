// Key-range sub-compaction tests (docs/COMPACTION.md): a fan-out split
// must be invisible — byte-identical scans vs an unsplit run, disjoint
// seams, one atomic version install per job, and clean failure behavior
// when a sub-job dies mid-write (FaultInjectionEnv).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "src/db/db.h"
#include "src/env/env.h"
#include "src/env/fault_env.h"
#include "src/env/sim_env.h"
#include "src/obs/event_listener.h"

namespace pipelsm {
namespace {

// Counts compaction listener events and checks the begin/completed
// pairing contract survives the fan-out (exactly one pair per job, with
// merged totals on Completed).
class CompactionCounter : public obs::EventListener {
 public:
  void OnCompactionBegin(const obs::CompactionJobInfo& info) override {
    begins_.fetch_add(1);
    if (info.subcompactions > 1) split_begins_.fetch_add(1);
  }
  void OnCompactionCompleted(const obs::CompactionJobInfo& info) override {
    completes_.fetch_add(1);
    if (info.subcompactions > 1) {
      split_completes_.fetch_add(1);
      if (info.status.ok() && info.output_bytes > 0) {
        split_with_output_.fetch_add(1);
      }
    }
  }

  std::atomic<int> begins_{0};
  std::atomic<int> completes_{0};
  std::atomic<int> split_begins_{0};
  std::atomic<int> split_completes_{0};
  std::atomic<int> split_with_output_{0};
};

class SubcompactionDBTest : public ::testing::Test {
 protected:
  SubcompactionDBTest() : env_(DeviceProfile::Null()), fault_(&env_) {}
  ~SubcompactionDBTest() override { db_.reset(); }

  void Open(int max_subcompactions, const std::string& dbname = "/db") {
    db_.reset();
    options_ = Options();
    options_.env = &fault_;
    options_.create_if_missing = true;
    options_.compaction_mode = CompactionMode::kPCP;
    // Four granted readers/computers: the fan-out clamp is
    // min(max_subcompactions, granted k), so splits actually happen.
    options_.io_parallelism = 4;
    options_.compute_parallelism = 4;
    options_.max_subcompactions = max_subcompactions;
    // Small shapes so jobs are many files / many subtasks.
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
    options_.subtask_bytes = 16 << 10;
    options_.listeners.push_back(&counter_);
    DB* db = nullptr;
    Status s = DB::Open(options_, dbname, &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  // Deterministic workload with overwrites and deletes, mirrored into
  // the oracle map.
  void FillWorkload(DB* db, std::map<std::string, std::string>* oracle,
                    int ops = 8000, uint32_t rng = 301) {
    for (int i = 0; i < ops; i++) {
      rng = rng * 1664525u + 1013904223u;
      char key[32];
      std::snprintf(key, sizeof(key), "k%05u", rng % 3000);
      if (rng % 7 == 0) {
        ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
        oracle->erase(key);
      } else {
        std::string value = std::string(key) + "-v" + std::to_string(i) +
                            std::string(64, 'x');
        ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
        (*oracle)[key] = value;
      }
    }
  }

  // Full scan as an ordered key=value list; doubles as the byte-level
  // equality oracle between runs.
  std::string Scan(DB* db) {
    std::string dump;
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    std::string prev;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      std::string key = it->key().ToString();
      EXPECT_TRUE(prev.empty() || prev < key)
          << "scan out of order or duplicate seam key: " << prev
          << " then " << key;
      prev = key;
      dump += key + "=" + it->value().ToString() + ";";
    }
    EXPECT_TRUE(it->status().ok()) << it->status().ToString();
    return dump;
  }

  std::string OracleDump(const std::map<std::string, std::string>& oracle) {
    std::string dump;
    for (const auto& kv : oracle) dump += kv.first + "=" + kv.second + ";";
    return dump;
  }

  uint64_t SubcompactedJobs() {
    std::string prop;
    if (!db_->GetProperty("pipelsm.compaction", &prop)) return 0;
    const std::string needle = "\"subcompacted_jobs\":";
    size_t pos = prop.find(needle);
    if (pos == std::string::npos) return 0;
    return std::strtoull(prop.c_str() + pos + needle.size(), nullptr, 10);
  }

  SimEnv env_;
  FaultInjectionEnv fault_;
  Options options_;
  CompactionCounter counter_;
  std::unique_ptr<DB> db_;
};

TEST_F(SubcompactionDBTest, SplitScanMatchesOracle) {
  Open(/*max_subcompactions=*/4);
  std::map<std::string, std::string> oracle;
  FillWorkload(db_.get(), &oracle);
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  db_->CompactRange(nullptr, nullptr);

  EXPECT_GE(SubcompactedJobs(), 1u) << "workload never split a job";
  EXPECT_EQ(OracleDump(oracle), Scan(db_.get()));

  // Point reads across the seams too.
  for (const auto& kv : oracle) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), kv.first, &value).ok());
    EXPECT_EQ(kv.second, value);
  }
}

TEST_F(SubcompactionDBTest, SplitAndSerialRunsAreByteIdentical) {
  // Same deterministic workload through max_subcompactions=1 and =4:
  // the logical DB contents must match byte for byte.
  Open(/*max_subcompactions=*/1, "/db_serial");
  std::map<std::string, std::string> oracle;
  FillWorkload(db_.get(), &oracle);
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  db_->CompactRange(nullptr, nullptr);
  const std::string serial = Scan(db_.get());
  EXPECT_EQ(0, counter_.split_begins_.load());

  Open(/*max_subcompactions=*/4, "/db_split");
  std::map<std::string, std::string> oracle2;
  FillWorkload(db_.get(), &oracle2);
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  db_->CompactRange(nullptr, nullptr);
  const std::string split = Scan(db_.get());

  EXPECT_GE(SubcompactedJobs(), 1u);
  EXPECT_EQ(OracleDump(oracle), serial);
  EXPECT_EQ(serial, split);
}

TEST_F(SubcompactionDBTest, OneListenerPairPerSplitJob) {
  Open(/*max_subcompactions=*/4);
  std::map<std::string, std::string> oracle;
  FillWorkload(db_.get(), &oracle);
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  db_->CompactRange(nullptr, nullptr);
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  // The parent job fires exactly one Begin/Completed pair no matter how
  // many sub-jobs ran underneath, and Completed carries merged output.
  EXPECT_EQ(counter_.begins_.load(), counter_.completes_.load());
  EXPECT_GE(counter_.split_begins_.load(), 1);
  EXPECT_EQ(counter_.split_begins_.load(), counter_.split_completes_.load());
  EXPECT_EQ(counter_.split_completes_.load(),
            counter_.split_with_output_.load());

  // And the per-sub-range EVENT lines landed in the info log.
  std::string log;
  ASSERT_TRUE(ReadFileToString(&fault_, "/db/LOG", &log).ok());
  EXPECT_NE(std::string::npos, log.find("EVENT subcompaction"))
      << "no subcompaction EVENT lines in LOG";
}

TEST_F(SubcompactionDBTest, FailedSubjobInstallsNothing) {
  Open(/*max_subcompactions=*/4);
  std::map<std::string, std::string> oracle;
  FillWorkload(db_.get(), &oracle);
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  const std::string before = Scan(db_.get());

  // Every new table file fails to open: all sub-jobs of the manual
  // compaction die. The job must install NOTHING — the pre-compaction
  // version stays live and fully readable (atomic single-edit install).
  fault_.SetPathFilter(FaultOp::kNewWritableFile, ".pst");
  fault_.FailAfter(FaultOp::kNewWritableFile, 1,
                   Status::IOError("injected: sub-job output open"),
                   /*sticky=*/true);
  db_->CompactRange(nullptr, nullptr);
  EXPECT_GE(fault_.injected_failures(), 1u);

  fault_.ClearFaults();
  EXPECT_EQ(before, Scan(db_.get()));
  EXPECT_EQ(OracleDump(oracle), Scan(db_.get()));

  // Once the disk heals (and the sticky error, if any, is cleared), the
  // same compaction goes through and the contents are unchanged.
  ASSERT_TRUE(db_->Resume().ok());
  db_->CompactRange(nullptr, nullptr);
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  EXPECT_EQ(before, Scan(db_.get()));
}

TEST_F(SubcompactionDBTest, CrashMidSubcompactionRecovers) {
  Open(/*max_subcompactions=*/4);
  std::map<std::string, std::string> oracle;
  FillWorkload(db_.get(), &oracle);
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  // A trailing synced write persists every earlier record (sync orders
  // the WAL), so the whole oracle is durable before the power cut.
  WriteOptions sync_wo;
  sync_wo.sync = true;
  ASSERT_TRUE(db_->Put(sync_wo, "zz-durable", "synced").ok());
  oracle["zz-durable"] = "synced";

  // Power-loss mid-split: some sub-job appends land, then the "machine"
  // dies. Reopen must come up on the old version with no output of the
  // torn job visible.
  fault_.SetPathFilter(FaultOp::kAppend, ".pst");
  fault_.CrashAfter(FaultOp::kAppend, 40);
  db_->CompactRange(nullptr, nullptr);
  db_.reset();  // close what's left of the instance
  EXPECT_TRUE(fault_.crashed());
  fault_.ClearFaults();
  ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());

  Open(/*max_subcompactions=*/4);
  EXPECT_EQ(OracleDump(oracle), Scan(db_.get()));

  // The DB keeps working after recovery, splits and all.
  FillWorkload(db_.get(), &oracle, /*ops=*/2000, /*rng=*/777);
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  db_->CompactRange(nullptr, nullptr);
  EXPECT_EQ(OracleDump(oracle), Scan(db_.get()));
}

// Sub-compactions under the overlapping-level styles: the split path
// must compose with tiered/lazy pickers (whole-level jobs, self-merges).
TEST_F(SubcompactionDBTest, SplitComposesWithTieredStyles) {
  for (CompactionStyle style :
       {CompactionStyle::kTiered, CompactionStyle::kLazyLeveling}) {
    SCOPED_TRACE(CompactionStyleName(style));
    db_.reset();
    options_ = Options();
    options_.env = &fault_;
    options_.create_if_missing = true;
    options_.compaction_mode = CompactionMode::kPCP;
    options_.io_parallelism = 4;
    options_.compute_parallelism = 4;
    options_.max_subcompactions = 4;
    options_.compaction_style = style;
    options_.tiered_run_count = 3;
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
    options_.subtask_bytes = 16 << 10;
    DB* db = nullptr;
    std::string name = std::string("/db_style_") + CompactionStyleName(style);
    ASSERT_TRUE(DB::Open(options_, name, &db).ok());
    db_.reset(db);

    std::map<std::string, std::string> oracle;
    FillWorkload(db_.get(), &oracle, /*ops=*/6000);
    ASSERT_TRUE(db_->WaitForCompactions().ok());
    EXPECT_EQ(OracleDump(oracle), Scan(db_.get()));

    std::string prop;
    ASSERT_TRUE(db_->GetProperty("pipelsm.compaction", &prop));
    EXPECT_NE(std::string::npos,
              prop.find(std::string("\"style\":\"") +
                        CompactionStyleName(style) + "\""));
  }
}

}  // namespace
}  // namespace pipelsm
