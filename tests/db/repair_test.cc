// RepairDB: reconstructing a database after metadata loss.
#include "src/db/repair.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/db/db.h"
#include "src/db/filename.h"
#include "src/env/sim_env.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

class RepairTest : public ::testing::Test {
 protected:
  RepairTest() {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
  }

  void Open(bool create = true) {
    db_.reset();
    Options o = options_;
    o.create_if_missing = create;
    DB* raw = nullptr;
    Status s = DB::Open(o, "/db", &raw);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(raw);
  }

  void Fill(uint64_t n) {
    WorkloadGenerator gen(n, 16, 100, KeyOrder::kRandom);
    for (uint64_t i = 0; i < n; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
    }
  }

  void VerifyFill(uint64_t n, uint64_t stride = 17) {
    WorkloadGenerator gen(n, 16, 100, KeyOrder::kRandom);
    std::string value;
    for (uint64_t i = 0; i < n; i += stride) {
      ASSERT_TRUE(db_->Get(ReadOptions(), gen.Key(i), &value).ok())
          << "key index " << i;
      ASSERT_EQ(gen.Value(i), value);
    }
  }

  void RemoveMetadata() {
    std::vector<std::string> children;
    ASSERT_TRUE(env_.GetChildren("/db", &children).ok());
    for (const auto& c : children) {
      if (c == "CURRENT" || c.rfind("MANIFEST-", 0) == 0) {
        ASSERT_TRUE(env_.RemoveFile("/db/" + c).ok());
      }
    }
  }

  SimEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(RepairTest, RecoversAfterManifestLoss) {
  Open();
  Fill(3000);
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  db_.reset();

  RemoveMetadata();
  // Without repair the DB cannot open.
  {
    Options o = options_;
    o.create_if_missing = false;
    DB* raw = nullptr;
    EXPECT_FALSE(DB::Open(o, "/db", &raw).ok());
    delete raw;
  }

  ASSERT_TRUE(RepairDB("/db", options_).ok());
  Open(/*create=*/false);
  VerifyFill(3000);
}

TEST_F(RepairTest, RecoversUnflushedWalData) {
  Open();
  Fill(100);  // stays in the memtable + WAL
  db_.reset();

  RemoveMetadata();
  ASSERT_TRUE(RepairDB("/db", options_).ok());
  Open(false);
  VerifyFill(100, /*stride=*/1);
}

TEST_F(RepairTest, DropsCorruptTableKeepsRest) {
  Open();
  Fill(4000);
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  db_.reset();

  // Corrupt ONE table file badly, keep the rest.
  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren("/db", &children).ok());
  uint64_t number;
  FileType type;
  int total_tables = 0;
  std::string victim;
  for (const auto& c : children) {
    if (ParseFileName(c, &number, &type) && type == kTableFile) {
      total_tables++;
      if (victim.empty()) victim = "/db/" + c;
    }
  }
  ASSERT_GT(total_tables, 1);
  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize(victim, &size).ok());
  ASSERT_TRUE(env_.CorruptFile(victim, size / 2, 64).ok());

  RemoveMetadata();
  ASSERT_TRUE(RepairDB("/db", options_).ok());
  Open(false);

  // Most keys survive; the victim's keys may be gone — but every Get is
  // either the right value or NotFound, never garbage.
  WorkloadGenerator gen(4000, 16, 100, KeyOrder::kRandom);
  std::string value;
  int found = 0;
  for (uint64_t i = 0; i < 4000; i += 5) {
    Status s = db_->Get(ReadOptions(), gen.Key(i), &value);
    if (s.ok()) {
      ASSERT_EQ(gen.Value(i), value);
      found++;
    } else {
      ASSERT_TRUE(s.IsNotFound());
    }
  }
  EXPECT_GT(found, 400);  // the bulk survived
}

TEST_F(RepairTest, RepairedDbAcceptsNewWrites) {
  Open();
  Fill(500);
  db_.reset();
  RemoveMetadata();
  ASSERT_TRUE(RepairDB("/db", options_).ok());
  Open(false);
  ASSERT_TRUE(db_->Put(WriteOptions(), "new-after-repair", "yes").ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "new-after-repair", &value).ok());
  EXPECT_EQ("yes", value);
  // And compactions still work.
  db_->CompactRange(nullptr, nullptr);
  VerifyFill(500);
}

TEST_F(RepairTest, EmptyDirFails) {
  env_.CreateDir("/empty");
  EXPECT_FALSE(RepairDB("/empty", options_).ok());
}

}  // namespace
}  // namespace pipelsm
