// Concurrency: readers and iterators racing with writes and live
// background compactions, for the pipelined executors.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/db/db.h"
#include "src/env/sim_env.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

class ConcurrencyTest : public ::testing::TestWithParam<CompactionMode> {
 protected:
  ConcurrencyTest() {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.compaction_mode = GetParam();
    options_.compute_parallelism =
        GetParam() == CompactionMode::kCPPCP ? 2 : 1;
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
    options_.subtask_bytes = 16 << 10;
  }

  void Open() {
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, "/db", &raw).ok());
    db_.reset(raw);
  }

  SimEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(ConcurrencyTest, ReadersDuringFillSeeConsistentValues) {
  Open();
  const uint64_t kEntries = 5000;
  WorkloadGenerator gen(kEntries, 16, 100, KeyOrder::kRandom);

  std::atomic<uint64_t> written{0};
  std::atomic<bool> fail{false};

  std::thread writer([&] {
    for (uint64_t i = 0; i < kEntries; i++) {
      if (!db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok()) {
        fail.store(true);
        return;
      }
      written.store(i + 1, std::memory_order_release);
    }
  });

  // Reader: any index < written must be present with the exact value.
  std::thread reader([&] {
    Random rnd(99);
    std::string value;
    while (written.load(std::memory_order_acquire) < kEntries &&
           !fail.load()) {
      const uint64_t upper = written.load(std::memory_order_acquire);
      if (upper == 0) continue;
      const uint64_t idx = rnd.Next() % upper;
      Status s = db_->Get(ReadOptions(), gen.Key(idx), &value);
      if (!s.ok() || value != gen.Value(idx)) {
        ADD_FAILURE() << "inconsistent read at " << idx << ": "
                      << s.ToString();
        fail.store(true);
        return;
      }
    }
  });

  // Scanner: iterators snapshot; each scan must be strictly sorted.
  std::thread scanner([&] {
    while (written.load(std::memory_order_acquire) < kEntries &&
           !fail.load()) {
      std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        std::string k = it->key().ToString();
        if (!prev.empty() && !(prev < k)) {
          ADD_FAILURE() << "unsorted iterator: " << prev << " !< " << k;
          fail.store(true);
          return;
        }
        prev = std::move(k);
      }
      if (!it->status().ok()) {
        ADD_FAILURE() << it->status().ToString();
        fail.store(true);
        return;
      }
    }
  });

  writer.join();
  reader.join();
  scanner.join();
  ASSERT_FALSE(fail.load());

  ASSERT_TRUE(db_->WaitForCompactions().ok());
  std::string value;
  for (uint64_t i = 0; i < kEntries; i += 97) {
    ASSERT_TRUE(db_->Get(ReadOptions(), gen.Key(i), &value).ok());
    ASSERT_EQ(gen.Value(i), value);
  }
}

TEST_P(ConcurrencyTest, IteratorPinnedAcrossManualCompaction) {
  Open();
  WorkloadGenerator gen(2000, 16, 100, KeyOrder::kSequential);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  // Open an iterator, then compact + overwrite everything underneath it.
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->SeekToFirst();
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), "overwritten").ok());
  }
  db_->CompactRange(nullptr, nullptr);

  // The iterator still sees the pre-overwrite values (its snapshot), and
  // the obsolete files it pins must not have been deleted under it.
  uint64_t count = 0;
  for (; it->Valid(); it->Next()) {
    ASSERT_EQ(gen.Value(count), it->value().ToString()) << count;
    count++;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(gen.num_entries(), count);

  // New reads see the new values.
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), gen.Key(0), &value).ok());
  EXPECT_EQ("overwritten", value);
}

INSTANTIATE_TEST_SUITE_P(Modes, ConcurrencyTest,
                         ::testing::Values(CompactionMode::kSCP,
                                           CompactionMode::kPCP,
                                           CompactionMode::kCPPCP),
                         [](const ::testing::TestParamInfo<CompactionMode>& i) {
                           switch (i.param) {
                             case CompactionMode::kSCP: return "SCP";
                             case CompactionMode::kPCP: return "PCP";
                             case CompactionMode::kSPPCP: return "SPPCP";
                             case CompactionMode::kCPPCP: return "CPPCP";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace pipelsm
