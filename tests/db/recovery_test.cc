// Crash/reopen recovery: the WAL and MANIFEST must reconstruct the exact
// pre-crash state, including torn WAL tails.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/db/filename.h"
#include "src/db/options.h"
#include "src/env/fault_env.h"
#include "src/env/sim_env.h"
#include "src/util/random.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
  }

  ~RecoveryTest() override { Close(); }

  void Open() {
    Close();
    DB* db = nullptr;
    Status s = DB::Open(options_, "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  void Close() { db_.reset(); }

  std::string Get(const std::string& k) {
    std::string value;
    Status s = db_->Get(ReadOptions(), k, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR";
    return value;
  }

  SimEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(RecoveryTest, ReopenPreservesData) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "persist", "me").ok());
  Close();
  Open();
  EXPECT_EQ("me", Get("persist"));
}

TEST_F(RecoveryTest, ReopenAfterCompactionsPreservesEverything) {
  Open();
  WorkloadGenerator gen(3000, 16, 100, KeyOrder::kRandom);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  Close();
  Open();
  for (uint64_t i = 0; i < gen.num_entries(); i += 13) {
    ASSERT_EQ(gen.Value(i), Get(gen.Key(i))) << i;
  }
}

TEST_F(RecoveryTest, UnflushedWritesRecoverFromWal) {
  Open();
  // Small enough to stay entirely in the memtable (no flush).
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "wal-key-" + std::to_string(i), "v").ok());
  }
  // "Crash": drop the DB object without flushing.
  Close();
  Open();
  for (int i = 0; i < 50; i++) {
    EXPECT_EQ("v", Get("wal-key-" + std::to_string(i)));
  }
}

TEST_F(RecoveryTest, TornWalTailLosesOnlyLastRecord) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "2").ok());
  Close();

  // Find the live WAL and tear its tail.
  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren("/db", &children).ok());
  std::string wal;
  uint64_t number;
  FileType type;
  for (const auto& c : children) {
    if (ParseFileName(c, &number, &type) && type == kLogFile) {
      wal = "/db/" + c;
    }
  }
  ASSERT_FALSE(wal.empty());
  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize(wal, &size).ok());
  ASSERT_GT(size, 4u);
  ASSERT_TRUE(env_.TruncateFile(wal, size - 3).ok());

  Open();
  EXPECT_EQ("1", Get("a"));
  EXPECT_EQ("NOT_FOUND", Get("b"));  // torn record dropped cleanly
}

TEST_F(RecoveryTest, DeletionsSurviveReopen) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "k").ok());
  Close();
  Open();
  EXPECT_EQ("NOT_FOUND", Get("k"));
}

TEST_F(RecoveryTest, MissingTableFileIsCorruption) {
  Open();
  WorkloadGenerator gen(2000, 16, 100, KeyOrder::kRandom);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  Close();

  // Remove one live table file.
  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren("/db", &children).ok());
  bool removed = false;
  uint64_t number;
  FileType type;
  for (const auto& c : children) {
    if (ParseFileName(c, &number, &type) && type == kTableFile) {
      ASSERT_TRUE(env_.RemoveFile("/db/" + c).ok());
      removed = true;
      break;
    }
  }
  ASSERT_TRUE(removed);

  DB* db = nullptr;
  Status s = DB::Open(options_, "/db", &db);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  delete db;
}

TEST_F(RecoveryTest, SequenceNumbersContinueAfterReopen) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v1").ok());
  Close();
  Open();
  // The new write must win over the recovered one.
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v2").ok());
  EXPECT_EQ("v2", Get("k"));
  Close();
  Open();
  EXPECT_EQ("v2", Get("k"));
}

TEST_F(RecoveryTest, RepeatedReopenCycles) {
  std::map<std::string, std::string> model;
  WorkloadGenerator gen(400, 16, 64, KeyOrder::kRandom);
  for (int round = 0; round < 5; round++) {
    Open();
    for (uint64_t i = 0; i < gen.num_entries(); i++) {
      std::string v = "r" + std::to_string(round) + "-" + std::to_string(i);
      ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), v).ok());
      model[gen.Key(i)] = v;
    }
    Close();
  }
  Open();
  for (const auto& [k, v] : model) {
    ASSERT_EQ(v, Get(k));
  }
}

// Fault-injection recovery: transient errors heal via retry, exhausted
// retries go sticky and heal via Resume(), and crash points at any Env op
// never lose a synced write or resurrect a delete.
class FaultRecoveryTest : public ::testing::Test {
 protected:
  FaultRecoveryTest() : fault_(&env_) {
    options_.env = &fault_;
    options_.create_if_missing = true;
    // 64 KiB is the SanitizeOptions floor; FillPastFlush overshoots it.
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
    // Keep retry latency test-friendly.
    options_.max_background_retries = 2;
    options_.background_retry_backoff_micros = 100;
    options_.background_retry_backoff_max_micros = 400;
  }

  ~FaultRecoveryTest() override { Close(); }

  void Open() {
    Close();
    DB* db = nullptr;
    Status s = DB::Open(options_, "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  void Close() { db_.reset(); }

  std::string Get(const std::string& k) {
    std::string value;
    Status s = db_->Get(ReadOptions(), k, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR";
    return value;
  }

  std::string BackgroundError() {
    std::string value;
    EXPECT_TRUE(db_->GetProperty("pipelsm.background-error", &value));
    return value;
  }

  // Writes enough sequential entries to force at least one memtable flush.
  void FillPastFlush(const std::string& tag, int n = 900) {
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), tag + "-" + std::to_string(i),
                           std::string(100, 'x'))
                      .ok());
    }
  }

  // Same volume, but tolerates rejected writes (e.g. once a background
  // error goes sticky mid-fill). Returns the number of acked writes.
  int FillBestEffort(const std::string& tag, int n = 900) {
    int acked = 0;
    for (int i = 0; i < n; i++) {
      if (db_->Put(WriteOptions(), tag + "-" + std::to_string(i),
                   std::string(100, 'x'))
              .ok()) {
        acked++;
      }
    }
    return acked;
  }

  SimEnv env_;
  FaultInjectionEnv fault_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(FaultRecoveryTest, TransientFlushErrorRetriesWithoutGoingSticky) {
  Open();
  // The first table-file creation fails once; the retry must succeed and
  // the error must never become sticky.
  fault_.SetPathFilter(FaultOp::kNewWritableFile, ".pst");
  fault_.FailAfter(FaultOp::kNewWritableFile, 1,
                   Status::IOError("transient disk hiccup"));
  FillPastFlush("t");
  ASSERT_TRUE(db_->WaitForCompactions().ok()) << BackgroundError();
  EXPECT_EQ("OK", BackgroundError());
  EXPECT_GE(fault_.injected_failures(), 1u);
  EXPECT_EQ(std::string(100, 'x'), Get("t-0"));
}

TEST_F(FaultRecoveryTest, ExhaustedRetriesGoStickyAndResumeRecovers) {
  Open();
  // Every table-file creation fails: the retry budget (2) runs out and
  // the error sticks.
  fault_.SetPathFilter(FaultOp::kNewWritableFile, ".pst");
  fault_.FailAfter(FaultOp::kNewWritableFile, 1,
                   Status::IOError("disk still broken"), /*sticky=*/true);
  ASSERT_GT(FillBestEffort("s"), 0);
  EXPECT_FALSE(db_->WaitForCompactions().ok());
  EXPECT_NE("OK", BackgroundError());

  // Reads still work while degraded; Resume() without fixing the disk
  // must fail and stay degraded.
  EXPECT_EQ(std::string(100, 'x'), Get("s-0"));
  EXPECT_FALSE(db_->Resume().ok());

  // Fix the disk; Resume() clears the error and flushes the backlog.
  fault_.ClearFaults();
  ASSERT_TRUE(db_->Resume().ok()) << BackgroundError();
  EXPECT_EQ("OK", BackgroundError());
  ASSERT_TRUE(db_->Put(WriteOptions(), "after", "resume").ok());
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  EXPECT_EQ("resume", Get("after"));
  EXPECT_EQ(std::string(100, 'x'), Get("s-0"));
}

TEST_F(FaultRecoveryTest, WalSyncFailureFreezesWritesUntilResume) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "before", "ok").ok());

  // A failed WAL sync leaves the tail of the log indeterminate: the write
  // must be rejected and all further writes refused until Resume() rolls
  // the WAL.
  fault_.SetPathFilter(FaultOp::kSync, ".log");
  fault_.FailAfter(FaultOp::kSync, 1, Status::IOError("lost the WAL"),
                   /*sticky=*/true);
  WriteOptions sync_wo;
  sync_wo.sync = true;
  EXPECT_FALSE(db_->Put(sync_wo, "torn", "no").ok());
  EXPECT_NE("OK", BackgroundError());
  EXPECT_FALSE(db_->Put(WriteOptions(), "frozen", "no").ok());

  fault_.ClearFaults();
  ASSERT_TRUE(db_->Resume().ok()) << BackgroundError();
  ASSERT_TRUE(db_->Put(WriteOptions(), "thawed", "yes").ok());
  EXPECT_EQ("ok", Get("before"));
  EXPECT_EQ("yes", Get("thawed"));

  // The pre-freeze state must also survive a reopen (the WAL was rolled).
  Close();
  Open();
  EXPECT_EQ("ok", Get("before"));
  EXPECT_EQ("yes", Get("thawed"));
  EXPECT_EQ("NOT_FOUND", Get("torn"));
  EXPECT_EQ("NOT_FOUND", Get("frozen"));
}

TEST_F(FaultRecoveryTest, FailedCompactionLeaksNoTableFiles) {
  Open();
  FillPastFlush("seed");
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  // Break every new table file, then force background work until the
  // error sticks. Partially written outputs must be swept, not leaked.
  fault_.SetPathFilter(FaultOp::kNewWritableFile, ".pst");
  fault_.FailAfter(FaultOp::kNewWritableFile, 1,
                   Status::IOError("no space"), /*sticky=*/true);
  ASSERT_GT(FillBestEffort("more"), 0);
  EXPECT_FALSE(db_->WaitForCompactions().ok());

  fault_.ClearFaults();
  ASSERT_TRUE(db_->Resume().ok()) << BackgroundError();
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  // Every .pst on disk must be referenced by the live version.
  std::string sstables;
  ASSERT_TRUE(db_->GetProperty("pipelsm.sstables", &sstables));
  std::vector<std::string> children;
  ASSERT_TRUE(fault_.GetChildren("/db", &children).ok());
  uint64_t number;
  FileType type;
  for (const auto& c : children) {
    if (ParseFileName(c, &number, &type) && type == kTableFile) {
      std::string tag = std::to_string(number) + ":";
      EXPECT_NE(std::string::npos, sstables.find(tag))
          << "leaked table file " << c;
    }
  }
}

TEST_F(FaultRecoveryTest, CrashDuringCurrentInstallKeepsDbOpenable) {
  Open();
  FillPastFlush("a");
  // Make everything durable: the trailing sync persists every earlier
  // WAL record, so the whole fill must survive any later power loss.
  WriteOptions sync_wo;
  sync_wo.sync = true;
  ASSERT_TRUE(db_->Put(sync_wo, "a-final", "synced").ok());
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  Close();

  // Power fails exactly at the CURRENT rename of the next reopen. The
  // install sequence (synced tmp, rename, SyncDir) must leave either the
  // old or the new CURRENT fully intact — never a torn one.
  fault_.CrashAfter(FaultOp::kRenameFile, 1);
  DB* raw = nullptr;
  Status s = DB::Open(options_, "/db", &raw);
  delete raw;
  ASSERT_TRUE(fault_.crashed());
  ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());
  fault_.ClearFaults();

  Open();
  EXPECT_EQ(std::string(100, 'x'), Get("a-0"));
  EXPECT_EQ(std::string(100, 'x'), Get("a-899"));
  EXPECT_EQ("synced", Get("a-final"));
}

// Deterministic mini-matrix of the tools/crash_test harness: for every
// executor mode, crash at randomized Env ops, power-cycle, reopen, and
// check that synced writes survive and deletes stay dead.
class CrashMatrixTest : public ::testing::TestWithParam<CompactionMode> {};

TEST_P(CrashMatrixTest, SyncedWritesSurviveRandomCrashPoints) {
  SimEnv base;
  FaultInjectionEnv fault(&base);
  Options options;
  options.env = &fault;
  options.create_if_missing = true;
  options.write_buffer_size = 8 << 10;
  options.max_file_size = 16 << 10;
  options.compaction_mode = GetParam();
  options.max_background_retries = 1;
  options.background_retry_backoff_micros = 100;
  options.background_retry_backoff_max_micros = 100;

  // Per key: the durable floor ("" = deleted) plus every later acked but
  // un-synced value. After a crash the key may read as the floor or as
  // any of the later acked values (a background flush may have persisted
  // them even without an explicit user sync) — but never anything else.
  struct KeyModel {
    bool has_base = false;
    std::string base;                // "" = delete
    std::vector<std::string> pend;   // acked since the last sync
    bool Allows(bool exists, const std::string& got) const {
      if (has_base && (exists ? got == base : base.empty())) return true;
      for (const std::string& p : pend) {
        if (exists ? got == p : p.empty()) return true;
      }
      // Never synced and nothing pending survived.
      return !has_base && !exists;
    }
  };
  Random rng(811 + static_cast<int>(GetParam()));
  std::map<std::string, KeyModel> model;
  const FaultOp kOps[] = {FaultOp::kAppend, FaultOp::kSync, FaultOp::kClose,
                          FaultOp::kNewWritableFile, FaultOp::kRenameFile};

  for (int iter = 0; iter < 8; iter++) {
    const FaultOp crash_op = kOps[rng.Uniform(5)];
    const int crash_countdown = 1 + rng.Uniform(40);
    fault.CrashAfter(crash_op, crash_countdown);

    DB* raw = nullptr;
    Status s = DB::Open(options, "/db", &raw);
    std::unique_ptr<DB> db(raw);
    if (s.ok()) {
      for (int op = 0; op < 300 && !fault.crashed(); op++) {
        const std::string key = "k" + std::to_string(rng.Uniform(60));
        const bool del = rng.OneIn(8);
        // Values are padded so each iteration overflows the (64 KiB
        // floor) write buffer and exercises flush + compaction paths.
        const std::string value =
            del ? ""
                : "i" + std::to_string(iter) + "-" + std::to_string(op) +
                      std::string(250, 'v');
        WriteOptions wo;
        wo.sync = (op % 19) == 18;
        Status ws = del ? db->Delete(wo, key) : db->Put(wo, key, value);
        if (!ws.ok()) continue;  // not acked: free to vanish
        model[key].pend.push_back(value);
        if (wo.sync) {
          // A successful sync persists every record before it.
          for (auto& [k, km] : model) {
            if (km.pend.empty()) continue;
            km.has_base = true;
            km.base = km.pend.back();
            km.pend.clear();
          }
        }
      }
    }
    db.reset();
    const bool fired = fault.crashed();
    SCOPED_TRACE(std::string("crash after ") +
                 std::to_string(crash_countdown) + " x " +
                 FaultOpName(crash_op) + (fired ? " (fired)" : " (idle)"));
    fault.ClearFaults();
    ASSERT_TRUE(fault.DropUnsyncedAndReset().ok());

    // Clean reopen: every synced write must still be visible (or shadowed
    // only by a later acked value), and synced deletes must not
    // resurrect older data.
    DB* rraw = nullptr;
    ASSERT_TRUE(DB::Open(options, "/db", &rraw).ok()) << "iter " << iter;
    std::unique_ptr<DB> rdb(rraw);
    for (auto& [k, km] : model) {
      std::string got;
      Status gs = rdb->Get(ReadOptions(), k, &got);
      ASSERT_TRUE(gs.ok() || gs.IsNotFound()) << gs.ToString();
      const bool exists = gs.ok();
      std::string allowed = km.has_base ? "base=\"" + km.base + "\"" : "";
      for (const std::string& p : km.pend) allowed += " pend=\"" + p + "\"";
      EXPECT_TRUE(km.Allows(exists, got))
          << "iter " << iter << " key " << k << " read "
          << (exists ? "\"" + got.substr(0, 12) + "\"" : "<absent>")
          << "; allowed: " << allowed.substr(0, 200);
      // The recovered state is durable (recovery re-persists it); fold
      // it into the floor for the next round.
      km.has_base = true;
      km.base = exists ? got : "";
      km.pend.clear();
    }
  }
}

// Value-log crash matrix: crash points inside vlog append, vlog sync, GC
// rewrite, and segment retirement. Invariants after power-cycle + reopen:
// no synced separated write is lost, no deleted value resurrects, and no
// vlog segment leaks (every .vlog on disk is tracked by the manager).
class VlogCrashTest : public FaultRecoveryTest {
 protected:
  VlogCrashTest() {
    options_.value_separation_threshold = 1024;
    options_.vlog_segment_size = 32 << 10;
  }

  static std::string Big(int i) {
    return "v" + std::to_string(i) + "-" + std::string(4096, 'a' + (i % 26));
  }

  void ExpectNoLeakedVlogSegments() {
    std::string json;
    ASSERT_TRUE(db_->GetProperty("pipelsm.vlog", &json));
    std::vector<std::string> children;
    ASSERT_TRUE(fault_.GetChildren("/db", &children).ok());
    uint64_t number;
    FileType type;
    for (const auto& c : children) {
      if (ParseFileName(c, &number, &type) && type == kVlogFile) {
        EXPECT_NE(std::string::npos,
                  json.find("\"number\":" + std::to_string(number)))
            << "leaked vlog segment " << c;
      }
    }
  }

  // Power-cycle: drop everything unsynced, clear fault rules, reopen.
  void PowerCycleAndReopen() {
    Close();
    fault_.ClearFaults();
    ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());
    Open();
  }
};

TEST_F(VlogCrashTest, CrashInsideVlogAppendLosesOnlyTheUnackedWrite) {
  for (FaultOp op : {FaultOp::kAppend, FaultOp::kSync}) {
    const std::string tag = FaultOpName(op);
    SCOPED_TRACE(tag);
    Open();
    WriteOptions sync_wo;
    sync_wo.sync = true;
    ASSERT_TRUE(db_->Put(sync_wo, tag + "-durable", Big(0)).ok());

    // Crash mid-append (torn vlog frame) or mid-sync (frame never made
    // durable). Either way the write is not acked, so after the power
    // cycle it must be cleanly absent — never a dangling pointer, never
    // a torn value.
    fault_.SetPathFilter(op, ".vlog");
    fault_.CrashAfter(op, 1);
    EXPECT_FALSE(db_->Put(WriteOptions(), tag + "-torn", Big(1)).ok());
    EXPECT_TRUE(fault_.crashed());
    PowerCycleAndReopen();

    EXPECT_EQ(Big(0), Get(tag + "-durable"));
    EXPECT_EQ("NOT_FOUND", Get(tag + "-torn"));
    ExpectNoLeakedVlogSegments();

    // The recovered log keeps accepting separated writes.
    ASSERT_TRUE(db_->Put(sync_wo, tag + "-after", Big(2)).ok());
    EXPECT_EQ(Big(2), Get(tag + "-after"));
    Close();
  }
}

TEST_F(VlogCrashTest, CrashDuringGcRewriteNeitherLosesNorResurrects) {
  Open();
  // Two dozen 4 KiB separated values across several 32 KiB segments,
  // then delete the even half so GC has both live and dead frames.
  for (int i = 0; i < 24; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i), Big(i)).ok());
  }
  WriteOptions sync_wo;
  sync_wo.sync = true;
  for (int i = 0; i < 24; i += 2) {
    ASSERT_TRUE(db_->Delete(i == 22 ? sync_wo : WriteOptions(),
                            "k" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  // Crash on a vlog append a few copies into the GC rewrite: the new
  // partial segment holds copies whose pointers never committed.
  fault_.SetPathFilter(FaultOp::kAppend, ".vlog");
  fault_.CrashAfter(FaultOp::kAppend, 3);
  EXPECT_FALSE(db_->CompactValueLog().ok());
  EXPECT_TRUE(fault_.crashed());
  PowerCycleAndReopen();

  for (int i = 0; i < 24; i++) {
    const std::string key = "k" + std::to_string(i);
    if (i % 2 == 0) {
      EXPECT_EQ("NOT_FOUND", Get(key)) << key;  // deletes stay dead
    } else {
      EXPECT_EQ(Big(i), Get(key)) << key;  // live values survive the crash
    }
  }
  ExpectNoLeakedVlogSegments();

  // A clean GC pass after recovery still reclaims the dead half and the
  // abandoned partial rewrite.
  ASSERT_TRUE(db_->CompactValueLog().ok());
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  for (int i = 1; i < 24; i += 2) {
    EXPECT_EQ(Big(i), Get("k" + std::to_string(i)));
  }
  ExpectNoLeakedVlogSegments();
}

TEST_F(VlogCrashTest, CrashDuringSegmentRetirementLeaksNoSegments) {
  Open();
  WriteOptions sync_wo;
  sync_wo.sync = true;
  for (int i = 0; i < 12; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "d" + std::to_string(i), Big(i)).ok());
  }
  ASSERT_TRUE(db_->Put(sync_wo, "keep", Big(99)).ok());
  // Kill every separated value so GC retires whole segments.
  for (int i = 0; i < 12; i++) {
    ASSERT_TRUE(db_->Delete(i == 11 ? sync_wo : WriteOptions(),
                            "d" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());

  // Crash at the unlink of the first retired segment. The segment file
  // may survive the crash, but recovery must re-adopt it (no orphan) and
  // the next GC pass must finish the retirement.
  fault_.SetPathFilter(FaultOp::kRemoveFile, ".vlog");
  fault_.CrashAfter(FaultOp::kRemoveFile, 1);
  db_->CompactValueLog();  // may or may not report the crash
  EXPECT_TRUE(fault_.crashed());
  PowerCycleAndReopen();

  EXPECT_EQ(Big(99), Get("keep"));
  for (int i = 0; i < 12; i++) {
    EXPECT_EQ("NOT_FOUND", Get("d" + std::to_string(i)));
  }
  ExpectNoLeakedVlogSegments();

  ASSERT_TRUE(db_->CompactValueLog().ok());
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  EXPECT_EQ(Big(99), Get("keep"));
  ExpectNoLeakedVlogSegments();
}

// Randomized end-to-end sweep with separation on: same oracle as
// CrashMatrixTest but with 4 KiB values flowing through the value log and
// periodic CompactValueLog() calls so GC commit/retire paths sit inside
// the crash window too.
TEST_F(VlogCrashTest, RandomCrashPointsKeepSeparatedWritesConsistent) {
  options_.write_buffer_size = 64 << 10;
  options_.max_file_size = 64 << 10;
  Random rng(4096);
  // Per key: the durable floor ("" = deleted) plus every acked-but-unsynced
  // value since. After a crash the key may read as the floor or any later
  // acked value (background flushes persist without a user sync) — never
  // anything else, and never a torn/garbage value.
  struct KeyModel {
    bool has_base = false;
    std::string base;               // "" = delete
    std::vector<std::string> pend;  // acked since the last sync
    bool Allows(bool exists, const std::string& got) const {
      if (has_base && (exists ? got == base : base.empty())) return true;
      for (const std::string& p : pend) {
        if (exists ? got == p : p.empty()) return true;
      }
      return !has_base && !exists;
    }
  };
  std::map<std::string, KeyModel> model;
  const FaultOp kOps[] = {FaultOp::kAppend, FaultOp::kSync,
                          FaultOp::kRemoveFile, FaultOp::kRenameFile};

  for (int iter = 0; iter < 6; iter++) {
    const FaultOp crash_op = kOps[iter % 4];
    fault_.SetPathFilter(crash_op, ".vlog");
    fault_.CrashAfter(crash_op, 1 + rng.Uniform(25));
    SCOPED_TRACE(std::string("iter ") + std::to_string(iter) + " op " +
                 FaultOpName(crash_op));

    DB* raw = nullptr;
    Status s = DB::Open(options_, "/db", &raw);
    std::unique_ptr<DB> db(raw);
    if (s.ok()) {
      for (int op = 0; op < 120 && !fault_.crashed(); op++) {
        const std::string key = "r" + std::to_string(rng.Uniform(30));
        const bool del = rng.OneIn(6);
        const std::string value = del ? "" : Big(iter * 1000 + op);
        WriteOptions wo;
        wo.sync = (op % 17) == 16;
        Status ws = del ? db->Delete(wo, key) : db->Put(wo, key, value);
        if (!ws.ok()) continue;  // not acked: free to vanish
        model[key].pend.push_back(value);
        if (wo.sync) {
          // A successful sync persists every record before it.
          for (auto& [k, km] : model) {
            if (km.pend.empty()) continue;
            km.has_base = true;
            km.base = km.pend.back();
            km.pend.clear();
          }
        }
        // Put GC commit + retirement inside the crash window too.
        if (op == 60 && !fault_.crashed()) db->CompactValueLog();
      }
    }
    db.reset();
    fault_.ClearFaults();
    ASSERT_TRUE(fault_.DropUnsyncedAndReset().ok());

    Open();
    for (auto& [k, km] : model) {
      std::string got;
      Status gs = db_->Get(ReadOptions(), k, &got);
      ASSERT_TRUE(gs.ok() || gs.IsNotFound()) << k << ": " << gs.ToString();
      const bool exists = gs.ok();
      EXPECT_TRUE(km.Allows(exists, got))
          << "key " << k << " read "
          << (exists ? "\"" + got.substr(0, 12) + "...\"" : "<absent>");
      // Recovery re-persists what it kept: fold into the floor.
      km.has_base = true;
      km.base = exists ? got : "";
      km.pend.clear();
    }
    ExpectNoLeakedVlogSegments();
    Close();
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, CrashMatrixTest,
                         ::testing::Values(CompactionMode::kSCP,
                                           CompactionMode::kPCP,
                                           CompactionMode::kSPPCP,
                                           CompactionMode::kCPPCP),
                         [](const ::testing::TestParamInfo<CompactionMode>&
                                info) {
                           std::string name = CompactionModeName(info.param);
                           name.erase(std::remove(name.begin(), name.end(),
                                                  '-'),
                                      name.end());
                           return name;
                         });

}  // namespace
}  // namespace pipelsm
