// Crash/reopen recovery: the WAL and MANIFEST must reconstruct the exact
// pre-crash state, including torn WAL tails.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/db/db.h"
#include "src/db/filename.h"
#include "src/env/sim_env.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
  }

  ~RecoveryTest() override { Close(); }

  void Open() {
    Close();
    DB* db = nullptr;
    Status s = DB::Open(options_, "/db", &db);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(db);
  }

  void Close() { db_.reset(); }

  std::string Get(const std::string& k) {
    std::string value;
    Status s = db_->Get(ReadOptions(), k, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR";
    return value;
  }

  SimEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(RecoveryTest, ReopenPreservesData) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "persist", "me").ok());
  Close();
  Open();
  EXPECT_EQ("me", Get("persist"));
}

TEST_F(RecoveryTest, ReopenAfterCompactionsPreservesEverything) {
  Open();
  WorkloadGenerator gen(3000, 16, 100, KeyOrder::kRandom);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  Close();
  Open();
  for (uint64_t i = 0; i < gen.num_entries(); i += 13) {
    ASSERT_EQ(gen.Value(i), Get(gen.Key(i))) << i;
  }
}

TEST_F(RecoveryTest, UnflushedWritesRecoverFromWal) {
  Open();
  // Small enough to stay entirely in the memtable (no flush).
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "wal-key-" + std::to_string(i), "v").ok());
  }
  // "Crash": drop the DB object without flushing.
  Close();
  Open();
  for (int i = 0; i < 50; i++) {
    EXPECT_EQ("v", Get("wal-key-" + std::to_string(i)));
  }
}

TEST_F(RecoveryTest, TornWalTailLosesOnlyLastRecord) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "2").ok());
  Close();

  // Find the live WAL and tear its tail.
  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren("/db", &children).ok());
  std::string wal;
  uint64_t number;
  FileType type;
  for (const auto& c : children) {
    if (ParseFileName(c, &number, &type) && type == kLogFile) {
      wal = "/db/" + c;
    }
  }
  ASSERT_FALSE(wal.empty());
  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize(wal, &size).ok());
  ASSERT_GT(size, 4u);
  ASSERT_TRUE(env_.TruncateFile(wal, size - 3).ok());

  Open();
  EXPECT_EQ("1", Get("a"));
  EXPECT_EQ("NOT_FOUND", Get("b"));  // torn record dropped cleanly
}

TEST_F(RecoveryTest, DeletionsSurviveReopen) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "k").ok());
  Close();
  Open();
  EXPECT_EQ("NOT_FOUND", Get("k"));
}

TEST_F(RecoveryTest, MissingTableFileIsCorruption) {
  Open();
  WorkloadGenerator gen(2000, 16, 100, KeyOrder::kRandom);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
  }
  ASSERT_TRUE(db_->WaitForCompactions().ok());
  Close();

  // Remove one live table file.
  std::vector<std::string> children;
  ASSERT_TRUE(env_.GetChildren("/db", &children).ok());
  bool removed = false;
  uint64_t number;
  FileType type;
  for (const auto& c : children) {
    if (ParseFileName(c, &number, &type) && type == kTableFile) {
      ASSERT_TRUE(env_.RemoveFile("/db/" + c).ok());
      removed = true;
      break;
    }
  }
  ASSERT_TRUE(removed);

  DB* db = nullptr;
  Status s = DB::Open(options_, "/db", &db);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  delete db;
}

TEST_F(RecoveryTest, SequenceNumbersContinueAfterReopen) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v1").ok());
  Close();
  Open();
  // The new write must win over the recovered one.
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v2").ok());
  EXPECT_EQ("v2", Get("k"));
  Close();
  Open();
  EXPECT_EQ("v2", Get("k"));
}

TEST_F(RecoveryTest, RepeatedReopenCycles) {
  std::map<std::string, std::string> model;
  WorkloadGenerator gen(400, 16, 64, KeyOrder::kRandom);
  for (int round = 0; round < 5; round++) {
    Open();
    for (uint64_t i = 0; i < gen.num_entries(); i++) {
      std::string v = "r" + std::to_string(round) + "-" + std::to_string(i);
      ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), v).ok());
      model[gen.Key(i)] = v;
    }
    Close();
  }
  Open();
  for (const auto& [k, v] : model) {
    ASSERT_EQ(v, Get(k));
  }
}

}  // namespace
}  // namespace pipelsm
