#include "src/db/table_cache.h"

#include <gtest/gtest.h>

#include "src/db/dbformat.h"
#include "src/db/filename.h"
#include "src/env/sim_env.h"
#include "src/table/table_builder.h"

namespace pipelsm {
namespace {

class TableCacheTest : public ::testing::Test {
 protected:
  TableCacheTest() : icmp_(BytewiseComparator()) {
    topt_.comparator = &icmp_;
    env_.CreateDir("/db");
  }

  // Writes table file `number` with a couple of entries; returns size.
  uint64_t BuildFile(uint64_t number) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile(TableFileName("/db", number), &file).ok());
    TableBuilder builder(topt_, file.get());
    std::string ikey;
    AppendInternalKey(&ikey, ParsedInternalKey("k" + std::to_string(number),
                                               1, kTypeValue));
    builder.Add(ikey, "v" + std::to_string(number));
    EXPECT_TRUE(builder.Finish().ok());
    file->Close();
    uint64_t size;
    EXPECT_TRUE(env_.GetFileSize(TableFileName("/db", number), &size).ok());
    return size;
  }

  SimEnv env_;
  InternalKeyComparator icmp_;
  TableOptions topt_;
};

TEST_F(TableCacheTest, OpensAndIterates) {
  uint64_t size = BuildFile(1);
  TableCache cache("/db", topt_, &env_, 10);
  std::unique_ptr<Iterator> it(cache.NewIterator({}, 1, size));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("v1", it->value().ToString());
}

TEST_F(TableCacheTest, CachesOpenTables) {
  uint64_t size = BuildFile(1);
  TableCache cache("/db", topt_, &env_, 10);

  std::shared_ptr<Table> a, b;
  ASSERT_TRUE(cache.GetTable(1, size, &a).ok());
  ASSERT_TRUE(cache.GetTable(1, size, &b).ok());
  EXPECT_EQ(a.get(), b.get());  // same reader, not reopened
}

TEST_F(TableCacheTest, EvictsLeastRecentlyUsed) {
  TableCache cache("/db", topt_, &env_, /*max_open_tables=*/2);
  uint64_t sizes[4];
  for (uint64_t n = 1; n <= 3; n++) {
    sizes[n] = BuildFile(n);
  }
  std::shared_ptr<Table> t1a, t2, t3, t1b;
  ASSERT_TRUE(cache.GetTable(1, sizes[1], &t1a).ok());
  ASSERT_TRUE(cache.GetTable(2, sizes[2], &t2).ok());
  ASSERT_TRUE(cache.GetTable(3, sizes[3], &t3).ok());  // evicts table 1
  ASSERT_TRUE(cache.GetTable(1, sizes[1], &t1b).ok());
  EXPECT_NE(t1a.get(), t1b.get());  // reopened after eviction
}

TEST_F(TableCacheTest, EvictDropsCachedReader) {
  uint64_t size = BuildFile(1);
  TableCache cache("/db", topt_, &env_, 10);
  std::shared_ptr<Table> a, b;
  ASSERT_TRUE(cache.GetTable(1, size, &a).ok());
  cache.Evict(1);
  ASSERT_TRUE(cache.GetTable(1, size, &b).ok());
  EXPECT_NE(a.get(), b.get());
  // Pinned reader remains usable after eviction.
  std::unique_ptr<Iterator> it(a->NewIterator());
  it->SeekToFirst();
  EXPECT_TRUE(it->Valid());
}

TEST_F(TableCacheTest, MissingFileErrors) {
  TableCache cache("/db", topt_, &env_, 10);
  std::shared_ptr<Table> t;
  EXPECT_FALSE(cache.GetTable(99, 1000, &t).ok());
  std::unique_ptr<Iterator> it(cache.NewIterator({}, 99, 1000));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  EXPECT_FALSE(it->status().ok());
}

TEST_F(TableCacheTest, GetRoutesToTable) {
  uint64_t size = BuildFile(7);
  TableCache cache("/db", topt_, &env_, 10);
  std::string ikey;
  AppendInternalKey(&ikey, ParsedInternalKey("k7", kMaxSequenceNumber,
                                             kValueTypeForSeek));
  bool found = false;
  ASSERT_TRUE(cache
                  .Get({}, 7, size, ikey,
                       [&](const Slice&, const Slice& v) {
                         found = (v == Slice("v7"));
                       })
                  .ok());
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pipelsm
