#include "src/db/filename.h"

#include <gtest/gtest.h>

#include "src/env/sim_env.h"

namespace pipelsm {
namespace {

TEST(FileName, Construction) {
  EXPECT_EQ("/db/000007.log", LogFileName("/db", 7));
  EXPECT_EQ("/db/000123.pst", TableFileName("/db", 123));
  EXPECT_EQ("/db/MANIFEST-000004", DescriptorFileName("/db", 4));
  EXPECT_EQ("/db/CURRENT", CurrentFileName("/db"));
  EXPECT_EQ("/db/000009.dbtmp", TempFileName("/db", 9));
}

TEST(FileName, Parse) {
  uint64_t number;
  FileType type;

  ASSERT_TRUE(ParseFileName("000042.log", &number, &type));
  EXPECT_EQ(42u, number);
  EXPECT_EQ(kLogFile, type);

  ASSERT_TRUE(ParseFileName("000001.pst", &number, &type));
  EXPECT_EQ(1u, number);
  EXPECT_EQ(kTableFile, type);

  ASSERT_TRUE(ParseFileName("MANIFEST-000033", &number, &type));
  EXPECT_EQ(33u, number);
  EXPECT_EQ(kDescriptorFile, type);

  ASSERT_TRUE(ParseFileName("CURRENT", &number, &type));
  EXPECT_EQ(kCurrentFile, type);

  ASSERT_TRUE(ParseFileName("999999.dbtmp", &number, &type));
  EXPECT_EQ(999999u, number);
  EXPECT_EQ(kTempFile, type);
}

TEST(FileName, ParseRejectsGarbage) {
  uint64_t number;
  FileType type;
  const char* bad[] = {"",         "foo",          "foo-dx-100.log",
                       ".log",     "100",          "100.",
                       "100.lop",  "MANIFEST",     "MANIFEST-",
                       "MANIFEST-abc", "CURRENT2", "100.log.bak"};
  for (const char* name : bad) {
    EXPECT_FALSE(ParseFileName(name, &number, &type)) << name;
  }
}

TEST(FileName, RoundTripThroughParse) {
  uint64_t number;
  FileType type;
  for (uint64_t n : {1ull, 42ull, 999999ull, 12345678901ull}) {
    std::string full = TableFileName("/x", n);
    std::string base = full.substr(3);  // strip "/x/"
    ASSERT_TRUE(ParseFileName(base, &number, &type));
    EXPECT_EQ(n, number);
    EXPECT_EQ(kTableFile, type);
  }
}

TEST(FileName, SetCurrentFile) {
  SimEnv env;
  env.CreateDir("/db");
  ASSERT_TRUE(SetCurrentFile(&env, "/db", 5).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(&env, "/db/CURRENT", &contents).ok());
  EXPECT_EQ("MANIFEST-000005\n", contents);
  // The temp file must not linger.
  EXPECT_FALSE(env.FileExists(TempFileName("/db", 5)));
}

}  // namespace
}  // namespace pipelsm
