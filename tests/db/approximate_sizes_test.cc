#include <gtest/gtest.h>

#include <memory>

#include "src/db/db.h"
#include "src/env/sim_env.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

class ApproximateSizesTest : public ::testing::Test {
 protected:
  ApproximateSizesTest() {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
    // Incompressible-ish values keep size estimates near raw volume.
    options_.compression = CompressionType::kNoCompression;
  }

  void Open() {
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, "/db", &raw).ok());
    db_.reset(raw);
  }

  uint64_t Size(const std::string& start, const std::string& limit) {
    Range r(start, limit);
    uint64_t size;
    db_->GetApproximateSizes(&r, 1, &size);
    return size;
  }

  SimEnv env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(ApproximateSizesTest, EmptyDbIsZero) {
  Open();
  EXPECT_EQ(0u, Size("a", "z"));
}

TEST_F(ApproximateSizesTest, GrowsWithDataAndSplitsByRange) {
  Open();
  WorkloadGenerator gen(6000, 16, 100, KeyOrder::kSequential);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
  }
  // Flush everything to tables (estimates ignore the memtable).
  db_->CompactRange(nullptr, nullptr);

  const uint64_t total_bytes = 6000 * 116;
  const uint64_t whole = Size(gen.Key(0), gen.Key(5999));
  EXPECT_GT(whole, total_bytes / 2);
  EXPECT_LT(whole, total_bytes * 2);

  // First half + second half ≈ whole.
  const uint64_t first = Size(gen.Key(0), gen.Key(3000));
  const uint64_t second = Size(gen.Key(3000), gen.Key(5999));
  EXPECT_GT(first, whole / 4);
  EXPECT_GT(second, whole / 4);
  EXPECT_NEAR(double(first + second), double(whole), whole * 0.2);

  // Ranges outside the data are ~empty.
  EXPECT_LT(Size("zzzz", "zzzzz"), 16u * 1024);
}

TEST_F(ApproximateSizesTest, MultipleRangesInOneCall) {
  Open();
  WorkloadGenerator gen(3000, 16, 100, KeyOrder::kSequential);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
  }
  db_->CompactRange(nullptr, nullptr);

  // Range holds Slices; the key strings must outlive the call.
  const std::string k0 = gen.Key(0), k1 = gen.Key(1000), k2 = gen.Key(2000),
                    k3 = gen.Key(2999);
  Range ranges[3] = {Range(k0, k1), Range(k1, k2), Range(k2, k3)};
  uint64_t sizes[3];
  db_->GetApproximateSizes(ranges, 3, sizes);
  for (int i = 0; i < 3; i++) {
    EXPECT_GT(sizes[i], 0u) << i;
  }
}

}  // namespace
}  // namespace pipelsm
