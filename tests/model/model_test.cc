// Validates the analytic model (Equations 1-7) against hand-computed
// values and against the paper's qualitative claims.
#include "src/model/model.h"

#include <gtest/gtest.h>

namespace pipelsm::model {
namespace {

// Helper: steps with explicit read/compute/write seconds (compute split
// evenly across S2..S6) for 1 MB sub-tasks.
StepTimes Make(double read_s, double compute_s, double write_s) {
  StepTimes t;
  t.seconds[kStepRead] = read_s;
  t.seconds[kStepChecksum] = compute_s / 5;
  t.seconds[kStepDecompress] = compute_s / 5;
  t.seconds[kStepSort] = compute_s / 5;
  t.seconds[kStepCompress] = compute_s / 5;
  t.seconds[kStepRechecksum] = compute_s / 5;
  t.seconds[kStepWrite] = write_s;
  t.subtask_bytes = 1 << 20;
  return t;
}

TEST(Model, Equation1And2) {
  StepTimes t = Make(0.010, 0.020, 0.010);  // total 40 ms, bottleneck 20 ms
  EXPECT_NEAR((1 << 20) / 0.040, ScpBandwidth(t), 1);
  EXPECT_NEAR((1 << 20) / 0.020, PcpBandwidth(t), 1);
}

TEST(Model, Equation3IdealSpeedup) {
  // Balanced stages: 3-stage pipeline approaches 3x.
  StepTimes balanced = Make(0.010, 0.010, 0.010);
  EXPECT_NEAR(3.0, PcpIdealSpeedup(balanced), 1e-9);

  // One dominant stage: speedup approaches 1x.
  StepTimes skewed = Make(0.100, 0.001, 0.001);
  EXPECT_NEAR(0.102 / 0.100, PcpIdealSpeedup(skewed), 1e-9);
}

TEST(Model, Equation4And5StorageParallel) {
  // I/O-bound: read 30 ms, compute 10 ms, write 20 ms.
  StepTimes t = Make(0.030, 0.010, 0.020);
  EXPECT_FALSE(IsCpuBound(t));

  // k=2: read/k = 15 ms > compute → still I/O-bound.
  EXPECT_NEAR((1 << 20) / 0.015, SppcpBandwidth(t, 2), 1);
  // k=3: read/k = 10 ms = compute → crossover.
  EXPECT_NEAR((1 << 20) / 0.010, SppcpBandwidth(t, 3), 1);
  // k=6: compute now dominates; more disks do not help (paper §III-C.1).
  EXPECT_NEAR(SppcpBandwidth(t, 6), SppcpBandwidth(t, 60), 1);

  EXPECT_EQ(3, SppcpSaturationDisks(t));
  // Speedup bound: min(k, max(t1,t7)/compute) = min(k, 3).
  EXPECT_NEAR(2.0, SppcpIdealSpeedup(t, 2), 1e-9);
  EXPECT_NEAR(3.0, SppcpIdealSpeedup(t, 10), 1e-9);
}

TEST(Model, Equation6And7ComputeParallel) {
  // CPU-bound: read 10 ms, compute 40 ms, write 12 ms (the SSD regime).
  StepTimes t = Make(0.010, 0.040, 0.012);
  EXPECT_TRUE(IsCpuBound(t));

  EXPECT_NEAR((1 << 20) / 0.020, CppcpBandwidth(t, 2), 1);
  // k=4: compute/k = 10 ms; write 12 ms now dominates.
  EXPECT_NEAR((1 << 20) / 0.012, CppcpBandwidth(t, 4), 1);
  // More threads cannot beat the I/O wall (paper §III-C.2).
  EXPECT_NEAR(CppcpBandwidth(t, 4), CppcpBandwidth(t, 40), 1);

  EXPECT_EQ(4, CppcpSaturationThreads(t));
  EXPECT_NEAR(2.0, CppcpIdealSpeedup(t, 2), 1e-9);
  // Bound: compute/max(t1,t7) = 40/12.
  EXPECT_NEAR(0.040 / 0.012, CppcpIdealSpeedup(t, 100), 1e-9);
}

TEST(Model, PaperHddRegime) {
  // Fig 5(a): read >40%, write <20%, compute ~40% → I/O-bound.
  StepTimes hdd = Make(0.045, 0.040, 0.015);
  EXPECT_FALSE(IsCpuBound(hdd));
  // PCP ideal speedup = total/bottleneck = 100/45 ≈ 2.2x; the paper's
  // measured HDD bandwidth gain is >45%, consistent with ideal minus
  // pipeline fill/drain overheads.
  EXPECT_GT(PcpIdealSpeedup(hdd), 1.45);
}

TEST(Model, PaperSsdRegime) {
  // Fig 5(b): compute >60%, write > read → CPU-bound.
  StepTimes ssd = Make(0.015, 0.062, 0.023);
  EXPECT_TRUE(IsCpuBound(ssd));
  // Paper: PCP improves compaction bandwidth by >=65% on SSD.
  EXPECT_GT(PcpIdealSpeedup(ssd), 1.6);
}

TEST(Model, FromProfileAverages) {
  StepProfile p;
  p.subtasks = 4;
  p.nanos[kStepRead] = 40'000'000;  // 10 ms per sub-task
  p.nanos[kStepSort] = 20'000'000;  // 5 ms per sub-task
  p.nanos[kStepWrite] = 8'000'000;  // 2 ms per sub-task
  p.input_bytes = 4 << 20;

  StepTimes t = StepTimes::FromProfile(p);
  EXPECT_NEAR(0.010, t.read(), 1e-9);
  EXPECT_NEAR(0.005, t.compute(), 1e-9);
  EXPECT_NEAR(0.002, t.write(), 1e-9);
  EXPECT_NEAR(1 << 20, t.subtask_bytes, 1);
}

TEST(Model, ZeroTimesYieldZeroBandwidth) {
  StepTimes t;
  EXPECT_EQ(0, ScpBandwidth(t));
  EXPECT_EQ(0, PcpBandwidth(t));
  EXPECT_EQ(1, SppcpSaturationDisks(t));
  EXPECT_EQ(1, CppcpSaturationThreads(t));
}

TEST(Model, DescribeMentionsRegime) {
  StepTimes t = Make(0.030, 0.010, 0.020);
  std::string d = Describe(t);
  EXPECT_NE(std::string::npos, d.find("I/O-bound"));
  StepTimes c = Make(0.010, 0.050, 0.010);
  EXPECT_NE(std::string::npos, Describe(c).find("CPU-bound"));
}

}  // namespace
}  // namespace pipelsm::model
