#include "src/version/version_edit.h"

#include <gtest/gtest.h>

namespace pipelsm {
namespace {

void TestEncodeDecode(const VersionEdit& edit) {
  std::string encoded, encoded2;
  edit.EncodeTo(&encoded);
  VersionEdit parsed;
  Status s = parsed.DecodeFrom(encoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  parsed.EncodeTo(&encoded2);
  ASSERT_EQ(encoded, encoded2);
}

TEST(VersionEditTest, EncodeDecode) {
  static const uint64_t kBig = 1ull << 50;

  VersionEdit edit;
  for (int i = 0; i < 4; i++) {
    TestEncodeDecode(edit);
    edit.AddFile(3, kBig + 300 + i, kBig + 400 + i,
                 InternalKey("foo", kBig + 500 + i, kTypeValue),
                 InternalKey("zoo", kBig + 600 + i, kTypeDeletion));
    edit.RemoveFile(4, kBig + 700 + i);
    edit.SetCompactPointer(i, InternalKey("x", kBig + 900 + i, kTypeValue));
  }

  edit.SetComparatorName("foot");
  edit.SetLogNumber(kBig + 100);
  edit.SetNextFile(kBig + 200);
  edit.SetLastSequence(kBig + 1000);
  TestEncodeDecode(edit);
}

TEST(VersionEditTest, EmptyEdit) {
  VersionEdit edit;
  std::string encoded;
  edit.EncodeTo(&encoded);
  EXPECT_TRUE(encoded.empty());
  VersionEdit parsed;
  EXPECT_TRUE(parsed.DecodeFrom(encoded).ok());
}

TEST(VersionEditTest, DecodeRejectsGarbage) {
  VersionEdit edit;
  EXPECT_FALSE(edit.DecodeFrom(Slice("\xff\xff garbage")).ok());
}

TEST(VersionEditTest, DecodeRejectsTruncation) {
  VersionEdit edit;
  edit.SetComparatorName("cmp");
  edit.AddFile(1, 2, 3, InternalKey("a", 1, kTypeValue),
               InternalKey("b", 2, kTypeValue));
  std::string encoded;
  edit.EncodeTo(&encoded);
  for (size_t cut = 1; cut < encoded.size(); cut++) {
    VersionEdit parsed;
    Status s = parsed.DecodeFrom(Slice(encoded.data(), cut));
    // Some prefixes are valid (they just contain fewer records); the rest
    // must fail cleanly.
    (void)s;
  }
  SUCCEED();  // No crash/UB across all truncations is the property.
}

TEST(VersionEditTest, DecodeRejectsBadLevel) {
  // kDeletedFile with level 99 (>= kNumLevels).
  std::string encoded;
  PutVarint32(&encoded, 6);   // kDeletedFile
  PutVarint32(&encoded, 99);  // bad level
  PutVarint64(&encoded, 1);
  VersionEdit parsed;
  EXPECT_FALSE(parsed.DecodeFrom(encoded).ok());
}

TEST(VersionEditTest, ClearResets) {
  VersionEdit edit;
  edit.SetLogNumber(7);
  edit.AddFile(1, 2, 3, InternalKey("a", 1, kTypeValue),
               InternalKey("b", 2, kTypeValue));
  edit.Clear();
  std::string encoded;
  edit.EncodeTo(&encoded);
  EXPECT_TRUE(encoded.empty());
}

TEST(VersionEditTest, DebugStringMentionsFields) {
  VersionEdit edit;
  edit.SetLogNumber(9);
  edit.AddFile(2, 11, 1234, InternalKey("aa", 5, kTypeValue),
               InternalKey("zz", 6, kTypeValue));
  std::string dbg = edit.DebugString();
  EXPECT_NE(std::string::npos, dbg.find("LogNumber: 9"));
  EXPECT_NE(std::string::npos, dbg.find("AddFile: 2 11 1234"));
}

}  // namespace
}  // namespace pipelsm
