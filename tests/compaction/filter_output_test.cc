// Compaction outputs carry working bloom-filter blocks: point probes for
// absent keys must not touch the data blocks (observable as zero device
// reads on the SimEnv), across all executors.
#include <gtest/gtest.h>

#include "src/compaction/executor.h"
#include "src/env/sim_env.h"
#include "src/table/filter_policy.h"
#include "src/workload/table_gen.h"

namespace pipelsm {
namespace {

class FilterOutputTest : public ::testing::TestWithParam<CompactionMode> {
 protected:
  FilterOutputTest()
      : icmp_(BytewiseComparator()),
        user_policy_(NewBloomFilterPolicy(10)),
        internal_policy_(user_policy_.get()) {}

  SimEnv env_;
  InternalKeyComparator icmp_;
  std::unique_ptr<const FilterPolicy> user_policy_;
  InternalFilterPolicy internal_policy_;
};

TEST_P(FilterOutputTest, AbsentKeyProbesSkipDataBlocks) {
  TableGenOptions gen;
  gen.env = &env_;
  gen.icmp = &icmp_;
  gen.upper_bytes = 128 << 10;
  gen.lower_bytes = 256 << 10;
  CompactionInputs inputs;
  ASSERT_TRUE(GenerateCompactionInputs(gen, &inputs).ok());

  CompactionJobOptions job;
  job.icmp = &icmp_;
  job.subtask_bytes = 32 << 10;
  job.filter_policy = &internal_policy_;
  job.read_parallelism = GetParam() == CompactionMode::kSPPCP ? 2 : 1;
  job.compute_parallelism = GetParam() == CompactionMode::kCPPCP ? 2 : 1;

  auto executor = NewCompactionExecutor(GetParam());
  CountingSink sink(&env_, "/out");
  StepProfile profile;
  ASSERT_TRUE(executor->Run(job, inputs.tables, &sink, &profile).ok());
  ASSERT_FALSE(sink.outputs().empty());

  // Open the first output with the same (wrapped) policy.
  TableOptions topt;
  topt.comparator = &icmp_;
  topt.filter_policy = &internal_policy_;
  const OutputMeta& meta = sink.outputs()[0];
  const std::string fname =
      "/out/out-" + std::to_string(meta.file_number) + ".pst";
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_.NewRandomAccessFile(fname, &file).ok());
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::Open(topt, std::move(file), meta.file_size, &table).ok());

  // Present keys must still be found (no false negatives).
  {
    std::unique_ptr<Iterator> it(table->NewIterator());
    it->SeekToFirst();
    ASSERT_TRUE(it->Valid());
    int hits = 0;
    for (int i = 0; it->Valid() && i < 50; i++, it->Next()) {
      bool found = false;
      std::string key = it->key().ToString();
      ASSERT_TRUE(table
                      ->InternalGet({}, key,
                                    [&](const Slice& k, const Slice&) {
                                      found = (k == Slice(key));
                                    })
                      .ok());
      if (found) hits++;
    }
    EXPECT_EQ(50, hits);
  }

  // Absent-key probes: the filter must reject nearly all of them before
  // any data-block I/O happens.
  env_.device()->ResetStats();
  int filter_passes = 0;
  for (int i = 0; i < 200; i++) {
    std::string absent_user = "zz-absent-" + std::to_string(i);
    // Keys are 16-byte digits; this user key cannot exist, but to probe
    // keys *inside* the table's range, synthesize between-gap keys too.
    std::string between = meta.smallest.user_key().ToString();
    between += "-gap" + std::to_string(i);
    for (const std::string& user : {absent_user, between}) {
      std::string ikey;
      AppendInternalKey(
          &ikey, ParsedInternalKey(user, kMaxSequenceNumber, kTypeValue));
      bool invoked = false;
      ASSERT_TRUE(
          table->InternalGet({}, ikey, [&](const Slice&, const Slice&) {
                  invoked = true;
                }).ok());
      if (invoked) filter_passes++;
    }
  }
  // Bloom false-positive rate ~1%; allow generous slack.
  const uint64_t data_reads = env_.device()->stats().read_ops.load();
  EXPECT_LE(data_reads, 40u);  // vs 400 probes without filters
  EXPECT_LE(filter_passes, 40);
}

INSTANTIATE_TEST_SUITE_P(Modes, FilterOutputTest,
                         ::testing::Values(CompactionMode::kSCP,
                                           CompactionMode::kPCP,
                                           CompactionMode::kSPPCP,
                                           CompactionMode::kCPPCP),
                         [](const ::testing::TestParamInfo<CompactionMode>& i) {
                           switch (i.param) {
                             case CompactionMode::kSCP: return "SCP";
                             case CompactionMode::kPCP: return "PCP";
                             case CompactionMode::kSPPCP: return "SPPCP";
                             case CompactionMode::kCPPCP: return "CPPCP";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace pipelsm
