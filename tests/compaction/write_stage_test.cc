// WriteStage in isolation: ordered consumption, reorder buffering for
// out-of-order producers (the C-PPCP case), file rotation, gap detection.
#include "src/compaction/write_stage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "src/compaction/types.h"
#include "src/compress/codec.h"
#include "src/env/sim_env.h"
#include "src/workload/table_gen.h"
#include "src/table/block_builder.h"
#include "src/util/crc32c.h"

namespace pipelsm {
namespace {

// Builds a valid one-entry encoded block for key k.
EncodedBlock MakeBlock(const std::string& user_key, uint64_t seq) {
  std::string ikey;
  AppendInternalKey(&ikey, ParsedInternalKey(user_key, seq, kTypeValue));

  BlockBuilder builder(16);
  builder.Add(ikey, "value-" + user_key);
  Slice raw = builder.Finish();

  EncodedBlock eb;
  eb.first_key = ikey;
  eb.last_key = ikey;
  eb.entries = 1;
  eb.raw_size = raw.size();
  std::string compressed;
  CompressionType type =
      CompressBlock(CompressionType::kNoCompression, raw, &compressed);
  eb.payload = compressed;
  char trailer[kBlockTrailerSize];
  trailer[0] = static_cast<char>(type);
  uint32_t crc = crc32c::Value(compressed.data(), compressed.size());
  crc = crc32c::Extend(crc, trailer, 1);
  EncodeFixed32(trailer + 1, crc32c::Mask(crc));
  eb.payload.append(trailer, kBlockTrailerSize);
  return eb;
}

ComputedSubTask MakeTask(uint64_t seq, const std::string& user_key) {
  ComputedSubTask t;
  t.seq = seq;
  t.blocks.push_back(MakeBlock(user_key, 100 + seq));
  t.smallest_key = t.blocks[0].first_key;
  t.largest_key = t.blocks[0].last_key;
  t.entries = 1;
  return t;
}

class WriteStageTest : public ::testing::Test {
 protected:
  WriteStageTest() : sink_(&env_, "/ws") {
    job_.icmp = &icmp_;
    job_.max_output_file_size = 1 << 20;
  }

  SimEnv env_;
  InternalKeyComparator icmp_{BytewiseComparator()};
  CompactionJobOptions job_;
  CountingSink sink_;
};

TEST_F(WriteStageTest, InOrderPassesThrough) {
  WriteStage ws(job_, &sink_);
  for (uint64_t i = 0; i < 5; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key-%03llu",
                  static_cast<unsigned long long>(i));
    ASSERT_TRUE(ws.PushReordered(MakeTask(i, key)).ok());
  }
  ASSERT_TRUE(ws.Close().ok());
  ASSERT_EQ(1u, sink_.outputs().size());
  EXPECT_EQ(5u, sink_.outputs()[0].entries);
  EXPECT_EQ("key-000", sink_.outputs()[0].smallest.user_key().ToString());
  EXPECT_EQ("key-004", sink_.outputs()[0].largest.user_key().ToString());
}

TEST_F(WriteStageTest, OutOfOrderIsReordered) {
  WriteStage ws(job_, &sink_);
  std::vector<uint64_t> order = {3, 0, 4, 1, 2};
  for (uint64_t i : order) {
    char key[16];
    std::snprintf(key, sizeof(key), "key-%03llu",
                  static_cast<unsigned long long>(i));
    ASSERT_TRUE(ws.PushReordered(MakeTask(i, key)).ok());
  }
  ASSERT_TRUE(ws.Close().ok());
  ASSERT_EQ(1u, sink_.outputs().size());
  EXPECT_EQ(5u, sink_.outputs()[0].entries);
  // Keys ended up in key order despite arrival order.
  EXPECT_EQ("key-000", sink_.outputs()[0].smallest.user_key().ToString());
  EXPECT_EQ("key-004", sink_.outputs()[0].largest.user_key().ToString());
}

TEST_F(WriteStageTest, RandomPermutationsReorder) {
  std::mt19937 rng(7);
  for (int round = 0; round < 10; round++) {
    CountingSink sink(&env_, "/ws-" + std::to_string(round));
    WriteStage ws(job_, &sink);
    std::vector<uint64_t> order(20);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    for (uint64_t i : order) {
      char key[16];
      std::snprintf(key, sizeof(key), "key-%03llu",
                    static_cast<unsigned long long>(i));
      ASSERT_TRUE(ws.PushReordered(MakeTask(i, key)).ok());
    }
    ASSERT_TRUE(ws.Close().ok());
    uint64_t entries = 0;
    for (const auto& m : sink.outputs()) entries += m.entries;
    EXPECT_EQ(20u, entries);
  }
}

TEST_F(WriteStageTest, GapAtCloseIsError) {
  WriteStage ws(job_, &sink_);
  ASSERT_TRUE(ws.PushReordered(MakeTask(0, "key-000")).ok());
  ASSERT_TRUE(ws.PushReordered(MakeTask(2, "key-002")).ok());  // gap: 1
  Status s = ws.Close();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
}

TEST_F(WriteStageTest, RotatesAtFileSizeLimit) {
  job_.max_output_file_size = 512;  // tiny: rotate every few blocks
  WriteStage ws(job_, &sink_);
  for (uint64_t i = 0; i < 40; i++) {
    char key[20];
    std::snprintf(key, sizeof(key), "key-%06llu",
                  static_cast<unsigned long long>(i));
    ASSERT_TRUE(ws.PushReordered(MakeTask(i, key)).ok());
  }
  ASSERT_TRUE(ws.Close().ok());
  EXPECT_GT(sink_.outputs().size(), 2u);
  const Comparator* ucmp = icmp_.user_comparator();
  for (size_t i = 1; i < sink_.outputs().size(); i++) {
    EXPECT_LT(ucmp->Compare(sink_.outputs()[i - 1].largest.user_key(),
                            sink_.outputs()[i].smallest.user_key()),
              0);
  }
}

TEST_F(WriteStageTest, EmptyCloseProducesNothing) {
  WriteStage ws(job_, &sink_);
  ASSERT_TRUE(ws.Close().ok());
  EXPECT_TRUE(sink_.outputs().empty());
}

TEST_F(WriteStageTest, EmptySubTasksAreSkipped) {
  WriteStage ws(job_, &sink_);
  ComputedSubTask empty;
  empty.seq = 0;
  ASSERT_TRUE(ws.PushReordered(std::move(empty)).ok());
  ASSERT_TRUE(ws.PushReordered(MakeTask(1, "key-001")).ok());
  ASSERT_TRUE(ws.Close().ok());
  ASSERT_EQ(1u, sink_.outputs().size());
  EXPECT_EQ(1u, sink_.outputs()[0].entries);
}

}  // namespace
}  // namespace pipelsm
