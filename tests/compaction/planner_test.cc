#include "src/compaction/planner.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "src/env/sim_env.h"
#include "src/workload/table_gen.h"

namespace pipelsm {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : icmp_(BytewiseComparator()) {}

  CompactionInputs MakeInputs(uint64_t upper_bytes = 1 << 20,
                              uint64_t lower_bytes = 2 << 20) {
    TableGenOptions gen;
    gen.env = &env_;
    gen.icmp = &icmp_;
    gen.upper_bytes = upper_bytes;
    gen.lower_bytes = lower_bytes;
    CompactionInputs inputs;
    EXPECT_TRUE(GenerateCompactionInputs(gen, &inputs).ok());
    return inputs;
  }

  CompactionJobOptions JobOptions(size_t subtask_bytes) {
    CompactionJobOptions job;
    job.icmp = &icmp_;
    job.subtask_bytes = subtask_bytes;
    return job;
  }

  SimEnv env_;
  InternalKeyComparator icmp_;
};

TEST_F(PlannerTest, EmptyInputsYieldNoPlans) {
  std::vector<SubTaskPlan> plans;
  ASSERT_TRUE(PlanSubTasks(JobOptions(64 << 10), {}, &plans).ok());
  EXPECT_TRUE(plans.empty());
}

TEST_F(PlannerTest, SingleSubTaskWhenBudgetIsHuge) {
  auto inputs = MakeInputs();
  std::vector<SubTaskPlan> plans;
  ASSERT_TRUE(
      PlanSubTasks(JobOptions(1ull << 40), inputs.tables, &plans).ok());
  ASSERT_EQ(1u, plans.size());
  EXPECT_TRUE(plans[0].unbounded_lo);
  EXPECT_TRUE(plans[0].unbounded_hi);
  EXPECT_GT(plans[0].blocks.size(), 0u);
}

TEST_F(PlannerTest, SmallBudgetMakesManySubTasks) {
  auto inputs = MakeInputs();
  std::vector<SubTaskPlan> plans;
  ASSERT_TRUE(PlanSubTasks(JobOptions(64 << 10), inputs.tables, &plans).ok());
  EXPECT_GT(plans.size(), 10u);
}

TEST_F(PlannerTest, PlansAreOrderedAndContiguous) {
  auto inputs = MakeInputs();
  std::vector<SubTaskPlan> plans;
  ASSERT_TRUE(PlanSubTasks(JobOptions(128 << 10), inputs.tables, &plans).ok());
  ASSERT_GT(plans.size(), 2u);

  const Comparator* ucmp = icmp_.user_comparator();
  EXPECT_TRUE(plans.front().unbounded_lo);
  EXPECT_TRUE(plans.back().unbounded_hi);
  for (size_t i = 0; i < plans.size(); i++) {
    EXPECT_EQ(i, plans[i].seq);
    if (i > 0) {
      // Each plan's lo is the previous plan's hi.
      ASSERT_FALSE(plans[i].unbounded_lo);
      ASSERT_FALSE(plans[i - 1].unbounded_hi);
      EXPECT_EQ(plans[i - 1].hi_user_key, plans[i].lo_user_key);
    }
    if (!plans[i].unbounded_lo && !plans[i].unbounded_hi) {
      EXPECT_LT(
          ucmp->Compare(plans[i].lo_user_key, plans[i].hi_user_key), 0);
    }
  }
}

TEST_F(PlannerTest, EveryInputBlockIsCovered) {
  auto inputs = MakeInputs();
  std::vector<SubTaskPlan> plans;
  ASSERT_TRUE(PlanSubTasks(JobOptions(128 << 10), inputs.tables, &plans).ok());

  // Count distinct blocks per table in the inputs.
  size_t total_blocks = 0;
  for (const auto& t : inputs.tables) {
    std::unique_ptr<Iterator> it(t->NewIndexIterator());
    for (it->SeekToFirst(); it->Valid(); it->Next()) total_blocks++;
  }

  // Collect distinct (table, offset) pairs across plans.
  std::set<std::pair<int, uint64_t>> covered;
  for (const auto& p : plans) {
    for (const auto& br : p.blocks) {
      covered.insert({br.table_index, br.handle.offset()});
    }
  }
  EXPECT_EQ(total_blocks, covered.size());
}

TEST_F(PlannerTest, SubTaskSizesNearBudget) {
  auto inputs = MakeInputs(2 << 20, 4 << 20);
  const size_t budget = 256 << 10;
  std::vector<SubTaskPlan> plans;
  ASSERT_TRUE(PlanSubTasks(JobOptions(budget), inputs.tables, &plans).ok());
  ASSERT_GT(plans.size(), 2u);
  // All but the last sub-task should be within ~3x of the budget (boundary
  // blocks can spill).
  for (size_t i = 0; i + 1 < plans.size(); i++) {
    EXPECT_GT(plans[i].input_bytes, budget / 4) << i;
    EXPECT_LT(plans[i].input_bytes, budget * 3) << i;
  }
}

TEST_F(PlannerTest, RangeIsBaseLevelCallbackApplied) {
  auto inputs = MakeInputs();
  CompactionJobOptions job = JobOptions(128 << 10);
  int calls = 0;
  job.range_is_base_level = [&calls](const SubTaskPlan& plan) {
    calls++;
    return plan.seq % 2 == 0;
  };
  std::vector<SubTaskPlan> plans;
  ASSERT_TRUE(PlanSubTasks(job, inputs.tables, &plans).ok());
  EXPECT_EQ(static_cast<int>(plans.size()), calls);
  for (const auto& p : plans) {
    EXPECT_EQ(p.seq % 2 == 0, p.drop_deletions);
  }
}

TEST_F(PlannerTest, MissingIcmpRejected) {
  CompactionJobOptions job;
  std::vector<SubTaskPlan> plans;
  EXPECT_TRUE(PlanSubTasks(job, {}, &plans).IsInvalidArgument());
}

}  // namespace
}  // namespace pipelsm
