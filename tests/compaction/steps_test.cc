// Direct tests of the step primitives: range filtering at sub-task
// boundaries, extent coalescing in S1, and the slow-motion dilation.
#include "src/compaction/steps.h"

#include <gtest/gtest.h>

#include "src/compaction/planner.h"
#include "src/env/sim_env.h"
#include "src/util/stopwatch.h"
#include "src/workload/table_gen.h"

namespace pipelsm {
namespace {

class StepsTest : public ::testing::Test {
 protected:
  StepsTest() : icmp_(BytewiseComparator()) {
    TableGenOptions gen;
    gen.env = &env_;
    gen.icmp = &icmp_;
    gen.upper_bytes = 256 << 10;
    gen.lower_bytes = 512 << 10;
    EXPECT_TRUE(GenerateCompactionInputs(gen, &inputs_).ok());
    job_.icmp = &icmp_;
    job_.subtask_bytes = 64 << 10;
  }

  SimEnv env_;
  InternalKeyComparator icmp_;
  CompactionInputs inputs_;
  CompactionJobOptions job_;
};

TEST_F(StepsTest, BoundaryBlocksDoNotDuplicateOutput) {
  std::vector<SubTaskPlan> plans;
  ASSERT_TRUE(PlanSubTasks(job_, inputs_.tables, &plans).ok());
  ASSERT_GT(plans.size(), 3u);

  // Total blocks listed across plans exceeds distinct blocks (boundary
  // blocks are read twice)...
  size_t listed = 0;
  for (const auto& p : plans) listed += p.blocks.size();
  size_t distinct = 0;
  for (const auto& t : inputs_.tables) {
    std::unique_ptr<Iterator> it(t->NewIndexIterator());
    for (it->SeekToFirst(); it->Valid(); it->Next()) distinct++;
  }
  EXPECT_GT(listed, distinct);

  // ...yet the merged outputs contain each user key exactly once, in
  // globally ascending order across sub-tasks.
  std::string prev_last;
  uint64_t entries = 0;
  for (const auto& plan : plans) {
    StepProfile profile;
    RawSubTask raw;
    ASSERT_TRUE(ReadSubTask(job_, inputs_.tables, plan, &raw, &profile).ok());
    ComputedSubTask computed;
    ASSERT_TRUE(ComputeSubTask(job_, std::move(raw), &computed).ok());
    if (computed.entries == 0) continue;
    Slice first_user = ExtractUserKey(computed.smallest_key);
    if (!prev_last.empty()) {
      EXPECT_GT(first_user.ToString(), prev_last);
    }
    prev_last = ExtractUserKey(computed.largest_key).ToString();
    entries += computed.entries;
  }
  // Upper rewrote half the lower keys: output = distinct user keys.
  const uint64_t distinct_keys =
      (512 << 10) / (16 + 100);  // lower component key count
  EXPECT_EQ(distinct_keys, entries);
}

TEST_F(StepsTest, ReadCoalescesContiguousBlocks) {
  std::vector<SubTaskPlan> plans;
  ASSERT_TRUE(PlanSubTasks(job_, inputs_.tables, &plans).ok());

  env_.device()->ResetStats();
  StepProfile profile;
  RawSubTask raw;
  ASSERT_TRUE(ReadSubTask(job_, inputs_.tables, plans[1], &raw, &profile).ok());

  // Far fewer device read ops than blocks (coalesced extents).
  const uint64_t ops = env_.device()->stats().read_ops.load();
  EXPECT_LT(ops, plans[1].blocks.size() / 2 + 2);
  EXPECT_GT(raw.blocks.size(), 4u);

  // And every sliced payload verifies + decodes.
  for (const auto& rb : raw.blocks) {
    ASSERT_TRUE(VerifyRawBlock(rb).ok());
    std::string contents;
    ASSERT_TRUE(DecodeRawBlock(rb, &contents).ok());
  }
}

TEST_F(StepsTest, DilationStretchesComputeUniformly) {
  std::vector<SubTaskPlan> plans;
  ASSERT_TRUE(PlanSubTasks(job_, inputs_.tables, &plans).ok());

  StepProfile rp;
  RawSubTask raw1, raw2;
  ASSERT_TRUE(ReadSubTask(job_, inputs_.tables, plans[0], &raw1, &rp).ok());
  raw2 = raw1;  // same input twice

  ComputedSubTask plain;
  ASSERT_TRUE(ComputeSubTask(job_, std::move(raw1), &plain).ok());

  CompactionJobOptions dilated_job = job_;
  dilated_job.time_dilation = 4.0;
  Stopwatch sw;
  ComputedSubTask dilated;
  ASSERT_TRUE(ComputeSubTask(dilated_job, std::move(raw2), &dilated).ok());
  const uint64_t dilated_wall = sw.ElapsedNanos();

  // Identical output bytes.
  ASSERT_EQ(plain.blocks.size(), dilated.blocks.size());
  for (size_t i = 0; i < plain.blocks.size(); i++) {
    EXPECT_EQ(plain.blocks[i].payload, dilated.blocks[i].payload);
  }

  // Reported compute time scaled ~4x, and real wall time actually grew
  // (the sleep is real).
  EXPECT_GT(dilated.profile.ComputeNanos(),
            plain.profile.ComputeNanos() * 2);
  EXPECT_GT(dilated_wall, plain.profile.ComputeNanos() * 2);
}

TEST_F(StepsTest, DilatedProfileScalesDeviceNumbers) {
  DeviceProfile hdd = DeviceProfile::Hdd();
  DeviceProfile slow = DilatedProfile(hdd, 4.0);
  EXPECT_NEAR(hdd.read_bw_bps / 4, slow.read_bw_bps, 1);
  EXPECT_NEAR(hdd.write_position_us * 4, slow.write_position_us, 1e-6);
  // Dilation of 1 is identity.
  DeviceProfile same = DilatedProfile(hdd, 1.0);
  EXPECT_EQ(hdd.read_bw_bps, same.read_bw_bps);
  EXPECT_EQ(hdd.name, same.name);
}

TEST_F(StepsTest, SubTaskProfileAccountsAllSteps) {
  std::vector<SubTaskPlan> plans;
  ASSERT_TRUE(PlanSubTasks(job_, inputs_.tables, &plans).ok());
  StepProfile profile;
  RawSubTask raw;
  ASSERT_TRUE(ReadSubTask(job_, inputs_.tables, plans[0], &raw, &profile).ok());
  ComputedSubTask computed;
  ASSERT_TRUE(ComputeSubTask(job_, std::move(raw), &computed).ok());

  EXPECT_GT(profile.nanos[kStepRead], 0u);
  EXPECT_GT(profile.bytes[kStepRead], 0u);
  for (CompactionStep s : {kStepChecksum, kStepDecompress, kStepSort,
                           kStepCompress, kStepRechecksum}) {
    EXPECT_GT(computed.profile.nanos[s], 0u) << CompactionStepName(s);
  }
  EXPECT_EQ(1u, computed.profile.subtasks);
}

}  // namespace
}  // namespace pipelsm
