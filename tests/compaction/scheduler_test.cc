// CompactionScheduler unit tests: the adaptive control loop must be a
// pure function of the profile sequence it is fed — deterministic
// prescriptions for a fixed profile, user bounds respected, hysteresis
// that refuses to flap on alternating profiles, and a JSON report that
// parses (GetProperty("pipelsm.scheduler") is consumed by scripts).
#include "src/compaction/scheduler.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/model/model.h"
#include "src/obs/metrics.h"
#include "tests/obs/json_check.h"

namespace pipelsm {
namespace {

using testjson::JsonValue;
using testjson::ParseJson;

// Per-sub-task step seconds with all compute time parked in S4 (the same
// shape advisor_test's MakeProfile decays into).
model::StepTimes Times(double read_s, double compute_s, double write_s) {
  model::StepTimes t;
  t.seconds[kStepRead] = read_s;
  t.seconds[kStepSort] = compute_s;
  t.seconds[kStepWrite] = write_s;
  t.subtask_bytes = 512 << 10;
  return t;
}

// HDD regime: reads dominate; Eq. 4 saturation k = ceil(8/2) = 4.
model::StepTimes IoBound() { return Times(8e-3, 2e-3, 1e-3); }
// SSD regime: compute dominates; Eq. 6 saturation k = ceil(10/2) = 5.
model::StepTimes CpuBound() { return Times(2e-3, 10e-3, 1e-3); }

SchedulerOptions Adaptive(int hysteresis = 1, int warmup = 0) {
  SchedulerOptions o;
  o.adaptive = true;
  o.static_mode = CompactionMode::kPCP;
  o.max_compute_workers = 8;
  o.max_stripe_width = 8;
  o.hysteresis_jobs = hysteresis;
  o.warmup_jobs = warmup;
  return o;
}

TEST(CompactionScheduler, StaticPassthroughWhenAdaptiveOff) {
  SchedulerOptions o;
  o.adaptive = false;
  o.static_mode = CompactionMode::kSPPCP;
  o.static_read_parallelism = 3;
  o.static_compute_parallelism = 2;
  CompactionScheduler s(o, nullptr);
  for (int i = 0; i < 4; i++) {
    const SchedulerDecision d = s.Admit(CpuBound(), /*advisor_jobs=*/100);
    EXPECT_EQ(CompactionMode::kSPPCP, d.mode);
    EXPECT_EQ(3, d.read_parallelism);
    EXPECT_EQ(2, d.compute_parallelism);
    EXPECT_FALSE(d.adaptive);
  }
  EXPECT_EQ(4u, s.decisions());
  EXPECT_EQ(0u, s.switches());
}

TEST(CompactionScheduler, WarmupHoldsStaticChoice) {
  CompactionScheduler s(Adaptive(/*hysteresis=*/1, /*warmup=*/3), nullptr);
  for (uint64_t jobs = 0; jobs < 3; jobs++) {
    const SchedulerDecision d = s.Admit(CpuBound(), jobs);
    EXPECT_EQ(CompactionMode::kPCP, d.mode) << "during warmup";
    EXPECT_FALSE(d.adaptive);
    EXPECT_NE(std::string::npos, d.rationale.find("warming up"))
        << d.rationale;
  }
  const SchedulerDecision d = s.Admit(CpuBound(), /*advisor_jobs=*/3);
  EXPECT_EQ(CompactionMode::kCPPCP, d.mode) << "warmup over, profile rules";
  EXPECT_TRUE(d.adaptive);
}

TEST(CompactionScheduler, IoBoundPrescribesSppcpAtSaturationK) {
  CompactionScheduler s(Adaptive(), nullptr);
  // Deterministic: the same profile yields the same verdict every time.
  for (int i = 0; i < 5; i++) {
    const SchedulerDecision d = s.Admit(IoBound(), 10);
    EXPECT_EQ(CompactionMode::kSPPCP, d.mode);
    EXPECT_EQ(model::SppcpSaturationDisks(IoBound()), d.read_parallelism);
    EXPECT_EQ(4, d.read_parallelism);  // ceil(max(8,1)/2)
    EXPECT_EQ(1, d.compute_parallelism);
    EXPECT_TRUE(d.adaptive);
  }
  EXPECT_EQ(1u, s.switches());  // PCP -> S-PPCP once, then steady state
}

TEST(CompactionScheduler, CpuBoundPrescribesCppcpAtSaturationK) {
  CompactionScheduler s(Adaptive(), nullptr);
  const SchedulerDecision d = s.Admit(CpuBound(), 10);
  EXPECT_EQ(CompactionMode::kCPPCP, d.mode);
  EXPECT_EQ(1, d.read_parallelism);
  EXPECT_EQ(5, d.compute_parallelism);  // ceil(10/max(2,1))
  EXPECT_TRUE(d.adaptive);
}

TEST(CompactionScheduler, BalancedProfileStaysOnPcp) {
  CompactionScheduler s(Adaptive(), nullptr);
  const SchedulerDecision d = s.Admit(Times(3e-3, 3e-3, 3e-3), 10);
  EXPECT_EQ(CompactionMode::kPCP, d.mode);
  EXPECT_EQ(1, d.read_parallelism);
  EXPECT_EQ(1, d.compute_parallelism);
  EXPECT_EQ(0u, s.switches());  // PCP was already the static choice
}

// One stage is essentially the whole job: Eq. 3 speedup ~1.01, below the
// pipeline-gain floor, so the scheduler prescribes plain sequential SCP.
TEST(CompactionScheduler, DegeneratePipelineFallsBackToScp) {
  CompactionScheduler s(Adaptive(), nullptr);
  const SchedulerDecision d = s.Admit(Times(10e-3, 0.05e-3, 0.05e-3), 10);
  EXPECT_EQ(CompactionMode::kSCP, d.mode);
  EXPECT_EQ(1, d.read_parallelism);
  EXPECT_EQ(1, d.compute_parallelism);
}

TEST(CompactionScheduler, BoundsClampPrescribedK) {
  SchedulerOptions o = Adaptive();
  o.max_compute_workers = 2;  // saturation says 5
  o.max_stripe_width = 3;     // saturation says 4
  CompactionScheduler s(o, nullptr);
  EXPECT_EQ(2, s.Admit(CpuBound(), 10).compute_parallelism);

  CompactionScheduler s2(o, nullptr);
  EXPECT_EQ(3, s2.Admit(IoBound(), 10).read_parallelism);
}

TEST(CompactionScheduler, HysteresisRequiresConsecutivePrescriptions) {
  CompactionScheduler s(Adaptive(/*hysteresis=*/3), nullptr);
  for (int i = 0; i < 2; i++) {
    const SchedulerDecision d = s.Admit(CpuBound(), 10);
    EXPECT_EQ(CompactionMode::kPCP, d.mode) << "streak " << i + 1 << "/3";
    EXPECT_NE(std::string::npos, d.rationale.find("holding")) << d.rationale;
  }
  const SchedulerDecision d = s.Admit(CpuBound(), 10);
  EXPECT_EQ(CompactionMode::kCPPCP, d.mode) << "third consecutive: switch";
  EXPECT_EQ(1u, s.switches());
}

// Alternating io-/cpu-bound profiles never accumulate a streak, so the
// scheduler must hold its current choice forever — no flapping.
TEST(CompactionScheduler, NoFlapOnAlternatingProfiles) {
  CompactionScheduler s(Adaptive(/*hysteresis=*/3), nullptr);
  for (int i = 0; i < 12; i++) {
    const SchedulerDecision d = s.Admit(i % 2 == 0 ? IoBound() : CpuBound(),
                                        10 + i);
    EXPECT_EQ(CompactionMode::kPCP, d.mode) << "admission " << i;
  }
  EXPECT_EQ(0u, s.switches());
}

// A streak interrupted by the incumbent's own prescription resets: three
// cpu-bound admissions split 2+1 around a balanced one must not switch.
TEST(CompactionScheduler, IncumbentPrescriptionResetsStreak) {
  CompactionScheduler s(Adaptive(/*hysteresis=*/3), nullptr);
  s.Admit(CpuBound(), 10);
  s.Admit(CpuBound(), 11);
  s.Admit(Times(3e-3, 3e-3, 3e-3), 12);  // target == current (PCP): reset
  s.Admit(CpuBound(), 13);
  const SchedulerDecision d = s.Admit(CpuBound(), 14);
  EXPECT_EQ(CompactionMode::kPCP, d.mode) << "streak was broken";
  EXPECT_EQ(0u, s.switches());
}

// Two schedulers fed the same profile sequence make identical decisions.
TEST(CompactionScheduler, DeterministicAcrossInstances) {
  CompactionScheduler a(Adaptive(/*hysteresis=*/2), nullptr);
  CompactionScheduler b(Adaptive(/*hysteresis=*/2), nullptr);
  std::vector<model::StepTimes> sequence = {
      IoBound(), IoBound(), CpuBound(), CpuBound(), CpuBound(),
      Times(3e-3, 3e-3, 3e-3), IoBound(), IoBound(), IoBound()};
  for (size_t i = 0; i < sequence.size(); i++) {
    const SchedulerDecision da = a.Admit(sequence[i], i);
    const SchedulerDecision db = b.Admit(sequence[i], i);
    EXPECT_EQ(da.mode, db.mode) << "admission " << i;
    EXPECT_EQ(da.read_parallelism, db.read_parallelism) << "admission " << i;
    EXPECT_EQ(da.compute_parallelism, db.compute_parallelism)
        << "admission " << i;
    EXPECT_EQ(da.adaptive, db.adaptive) << "admission " << i;
    EXPECT_EQ(da.rationale, db.rationale) << "admission " << i;
  }
  EXPECT_EQ(a.switches(), b.switches());
}

TEST(CompactionScheduler, MetricsCountDecisionsAndSwitches) {
  obs::MetricsRegistry registry;
  CompactionScheduler s(Adaptive(/*hysteresis=*/2), &registry);
  s.Admit(CpuBound(), 10);  // holding PCP, streak 1/2
  s.Admit(CpuBound(), 11);  // switch to C-PPCP
  s.Admit(CpuBound(), 12);  // steady C-PPCP
  const std::string snapshot = registry.ToJson();
  EXPECT_NE(std::string::npos, snapshot.find("scheduler.decisions"));
  EXPECT_EQ(3u, s.decisions());
  EXPECT_EQ(1u, s.switches());
}

TEST(CompactionScheduler, ToJsonParsesAndReportsCandidateStreak) {
  CompactionScheduler s(Adaptive(/*hysteresis=*/3), nullptr);
  s.Admit(CpuBound(), 10);  // candidate C-PPCP, streak 1/3

  JsonValue v;
  std::string err;
  const std::string json = s.ToJson();
  ASSERT_TRUE(ParseJson(json, &v, &err)) << err << "\n" << json;

  const JsonValue* current = v.Find("current");
  ASSERT_NE(nullptr, current);
  EXPECT_EQ("PCP", current->Find("procedure")->string_value);

  const JsonValue* candidate = v.Find("candidate");
  ASSERT_NE(nullptr, candidate) << json;
  EXPECT_EQ("C-PPCP", candidate->Find("procedure")->string_value);
  EXPECT_EQ(1, candidate->Find("streak")->number_value);
  EXPECT_EQ(3, candidate->Find("needed")->number_value);

  ASSERT_NE(nullptr, v.Find("bounds"));
  ASSERT_NE(nullptr, v.Find("rationale"));

  // Steady state drops the candidate block again.
  s.Admit(Times(3e-3, 3e-3, 3e-3), 11);
  JsonValue steady;
  ASSERT_TRUE(ParseJson(s.ToJson(), &steady, &err)) << err;
  EXPECT_EQ(nullptr, steady.Find("candidate"));
}

TEST(CompactionScheduler, FromOptionsClampsDegenerateBounds) {
  Options options;
  options.adaptive_compaction = true;
  options.min_compute_workers = 0;
  options.max_compute_workers = -3;
  options.min_stripe_width = 5;
  options.max_stripe_width = 2;
  options.scheduler_hysteresis_jobs = 0;
  options.scheduler_warmup_jobs = -1;
  options.scheduler_min_gain = 0.2;
  const SchedulerOptions s = SchedulerOptions::FromOptions(options);
  EXPECT_TRUE(s.adaptive);
  EXPECT_EQ(1, s.min_compute_workers);
  EXPECT_GE(s.max_compute_workers, s.min_compute_workers);
  EXPECT_EQ(5, s.min_stripe_width);
  EXPECT_GE(s.max_stripe_width, s.min_stripe_width);
  EXPECT_EQ(1, s.hysteresis_jobs);
  EXPECT_EQ(0, s.warmup_jobs);
  EXPECT_GE(s.min_gain, 1.0);
}

}  // namespace
}  // namespace pipelsm
