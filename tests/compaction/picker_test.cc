// Unit tests for the compaction-policy pickers (docs/COMPACTION.md):
// CountRuns, and per-style selection + golden predicted-write-amp values
// on synthetic version states built through VersionEdit/LogAndApply.
#include "src/compaction/picker.h"

#include <gtest/gtest.h>

#include <memory>
#include <mutex>

#include "src/db/filename.h"
#include "src/db/table_cache.h"
#include "src/env/sim_env.h"
#include "src/version/version_edit.h"
#include "src/version/version_set.h"
#include "src/wal/log_writer.h"

namespace pipelsm {
namespace {

// ---------------------------------------------------------------------
// CountRuns: interval-stacking depth of a file set.
// ---------------------------------------------------------------------

class CountRunsTest : public ::testing::Test {
 protected:
  CountRunsTest() : icmp_(BytewiseComparator()) {}
  ~CountRunsTest() override {
    for (FileMetaData* f : files_) delete f;
  }

  void Add(const char* smallest, const char* largest) {
    FileMetaData* f = new FileMetaData;
    f->number = files_.size() + 1;
    f->smallest = InternalKey(smallest, 100, kTypeValue);
    f->largest = InternalKey(largest, 100, kTypeValue);
    files_.push_back(f);
  }

  int Runs() {
    // Version order: sorted by smallest key, as pickers see the list.
    std::sort(files_.begin(), files_.end(),
              [this](FileMetaData* a, FileMetaData* b) {
                return icmp_.Compare(a->smallest, b->smallest) < 0;
              });
    return CountRuns(icmp_, files_);
  }

  InternalKeyComparator icmp_;
  std::vector<FileMetaData*> files_;
};

TEST_F(CountRunsTest, Empty) { EXPECT_EQ(0, Runs()); }

TEST_F(CountRunsTest, DisjointFilesAreOneRun) {
  Add("a", "b");
  Add("c", "d");
  Add("e", "f");
  EXPECT_EQ(1, Runs());
}

TEST_F(CountRunsTest, IdenticalRangesStack) {
  Add("a", "z");
  Add("a", "z");
  Add("a", "z");
  EXPECT_EQ(3, Runs());
}

TEST_F(CountRunsTest, StaircaseOverlap) {
  // Each file overlaps only its neighbor: depth 2, not 4.
  Add("a", "c");
  Add("b", "e");
  Add("d", "g");
  Add("f", "i");
  EXPECT_EQ(2, Runs());
}

TEST_F(CountRunsTest, MixedDepth) {
  Add("a", "m");  // wide file under two disjoint small ones + one overlap
  Add("b", "c");
  Add("d", "e");
  Add("b", "f");
  EXPECT_EQ(3, Runs());  // at "b": {a-m, b-c, b-f}
}

TEST_F(CountRunsTest, TouchingEndpointsOverlap) {
  // largest == next smallest (same user key) counts as overlap: both
  // files can hold versions of that key.
  Add("a", "c");
  Add("c", "e");
  EXPECT_EQ(2, Runs());
}

// ---------------------------------------------------------------------
// Picker selection on synthetic version states. The harness stands up a
// real VersionSet (null-cost device) and feeds it VersionEdits, so
// scores and picks flow through exactly the code the DB runs.
// ---------------------------------------------------------------------

class PickerTest : public ::testing::Test {
 protected:
  PickerTest() : env_(DeviceProfile::Null()), icmp_(BytewiseComparator()) {}

  void Open(CompactionStyle style, int tiered_run_count = 4) {
    options_.env = &env_;
    options_.compaction_style = style;
    options_.tiered_run_count = tiered_run_count;
    env_.CreateDir(dbname_);

    // Minimal NewDB: one manifest record + CURRENT.
    VersionEdit new_db;
    new_db.SetComparatorName(icmp_.user_comparator()->Name());
    new_db.SetLogNumber(0);
    new_db.SetNextFile(2);
    new_db.SetLastSequence(0);
    const std::string manifest = DescriptorFileName(dbname_, 1);
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_.NewWritableFile(manifest, &file).ok());
    {
      log::Writer log(file.get());
      std::string record;
      new_db.EncodeTo(&record);
      ASSERT_TRUE(log.AddRecord(record).ok());
      ASSERT_TRUE(file->Close().ok());
    }
    ASSERT_TRUE(SetCurrentFile(&env_, dbname_, 1).ok());

    TableOptions topt;
    topt.comparator = &icmp_;
    cache_ = std::make_unique<TableCache>(dbname_, topt, &env_, 10);
    vset_ = std::make_unique<VersionSet>(dbname_, &options_, cache_.get(),
                                         &icmp_);
    Status s = vset_->Recover();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  // Installs one file; numbers ascend with insertion order, so later
  // files are "newer" in the overlapping-level sense.
  void AddFile(int level, const char* smallest, const char* largest,
               uint64_t size) {
    VersionEdit edit;
    edit.AddFile(level, next_file_number_++, size,
                 InternalKey(smallest, 100, kTypeValue),
                 InternalKey(largest, 100, kTypeValue));
    std::unique_lock<std::mutex> lock(mu_);
    Status s = vset_->LogAndApply(&edit, &mu_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  SimEnv env_;
  InternalKeyComparator icmp_;
  Options options_;
  std::string dbname_ = "/picker_db";
  std::unique_ptr<TableCache> cache_;
  std::unique_ptr<VersionSet> vset_;
  uint64_t next_file_number_ = 10;
  std::mutex mu_;
};

constexpr uint64_t kMiB = 1 << 20;

TEST_F(PickerTest, FactoryMatchesStyle) {
  Open(CompactionStyle::kTiered);
  EXPECT_STREQ("TieredCompactionPicker", vset_->picker()->Name());
  EXPECT_TRUE(vset_->overlapping_levels());
}

TEST_F(PickerTest, LeveledPickerIsDefaultAndDisjoint) {
  Open(CompactionStyle::kLeveled);
  EXPECT_STREQ("LeveledCompactionPicker", vset_->picker()->Name());
  EXPECT_FALSE(vset_->overlapping_levels());
}

TEST_F(PickerTest, LeveledL0TriggerByFileCount) {
  Open(CompactionStyle::kLeveled);
  AddFile(0, "a", "c", 8 << 10);
  AddFile(0, "b", "d", 8 << 10);
  AddFile(0, "c", "e", 8 << 10);
  EXPECT_FALSE(vset_->NeedsCompaction());  // 3 < kL0_CompactionTrigger
  AddFile(0, "d", "f", 8 << 10);
  EXPECT_TRUE(vset_->NeedsCompaction());

  std::unique_ptr<Compaction> c(vset_->PickCompaction());
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(0, c->level());
  EXPECT_EQ(1, c->output_level());
  EXPECT_EQ(4, c->num_input_files(0));  // all four overlap transitively
}

TEST_F(PickerTest, LeveledSizeTriggerAndGoldenWriteAmp) {
  Open(CompactionStyle::kLeveled);
  // 12 MiB at L1 (> 10 MiB budget) in three disjoint files; L2 holds
  // 3 MiB overlapping the first L1 file.
  AddFile(1, "a", "c", 4 * kMiB);
  AddFile(1, "d", "f", 4 * kMiB);
  AddFile(1, "g", "i", 4 * kMiB);
  AddFile(2, "a", "b", 2 * kMiB);
  AddFile(2, "b1", "c1", 1 * kMiB);
  ASSERT_TRUE(vset_->NeedsCompaction());

  std::unique_ptr<Compaction> c(vset_->PickCompaction());
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(1, c->level());
  EXPECT_EQ(2, c->output_level());
  EXPECT_EQ(1, c->num_input_files(0));   // "a".."c"
  EXPECT_EQ(2, c->num_input_files(1));   // both L2 files overlap it
  // Golden: (4 + 2 + 1) / 4 MiB of inputs over the picked file.
  EXPECT_DOUBLE_EQ(7.0 / 4.0, c->predicted_write_amp());
}

TEST_F(PickerTest, TieredTriggersOnRunCountNotBytes) {
  Open(CompactionStyle::kTiered, /*tiered_run_count=*/4);
  // Huge but single-run level: never triggers on size.
  AddFile(1, "a", "c", 40 * kMiB);
  AddFile(1, "d", "f", 40 * kMiB);
  EXPECT_FALSE(vset_->NeedsCompaction());

  // Stack three more overlapping runs: 4 runs >= T.
  AddFile(1, "a", "f", kMiB);
  AddFile(1, "a", "f", kMiB);
  EXPECT_FALSE(vset_->NeedsCompaction());  // 3 runs
  AddFile(1, "a", "f", kMiB);
  EXPECT_TRUE(vset_->NeedsCompaction());

  std::unique_ptr<Compaction> c(vset_->PickCompaction());
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(1, c->level());
  EXPECT_EQ(2, c->output_level());
  EXPECT_EQ(5, c->num_input_files(0));  // the WHOLE level moves
  EXPECT_EQ(0, c->num_input_files(1));  // resident L2 data untouched
  EXPECT_DOUBLE_EQ(1.0, c->predicted_write_amp());
  EXPECT_FALSE(c->IsTrivialMove());     // multi-file merge
}

TEST_F(PickerTest, TieredL0FileCountFloor) {
  Open(CompactionStyle::kTiered, /*tiered_run_count=*/8);
  // Disjoint L0 flushes (sequential load): 1 run, but the file-count
  // floor must still drain L0 before the write-stall thresholds.
  AddFile(0, "a", "b", 8 << 10);
  AddFile(0, "c", "d", 8 << 10);
  AddFile(0, "e", "f", 8 << 10);
  AddFile(0, "g", "h", 8 << 10);
  EXPECT_TRUE(vset_->NeedsCompaction());
  std::unique_ptr<Compaction> c(vset_->PickCompaction());
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(0, c->level());
  EXPECT_EQ(4, c->num_input_files(0));
}

TEST_F(PickerTest, TieredLastLevelSelfMerges) {
  Open(CompactionStyle::kTiered, /*tiered_run_count=*/2);
  const int last = config::kNumLevels - 1;
  AddFile(last, "a", "m", 4 * kMiB);
  AddFile(last, "b", "z", 4 * kMiB);
  ASSERT_TRUE(vset_->NeedsCompaction());

  std::unique_ptr<Compaction> c(vset_->PickCompaction());
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(last, c->level());
  EXPECT_EQ(last, c->output_level());  // nowhere to push: collapse in place
  EXPECT_EQ(2, c->num_input_files(0));
  EXPECT_FALSE(c->IsTrivialMove());    // self-merge must rewrite
}

TEST_F(PickerTest, LazyLevelingUpperLevelsAreTiered) {
  Open(CompactionStyle::kLazyLeveling, /*tiered_run_count=*/3);
  // L1 stacks 3 runs; L3 is the (single-run) largest level.
  AddFile(3, "a", "z", 5 * kMiB);
  AddFile(1, "a", "f", kMiB);
  AddFile(1, "a", "f", kMiB);
  EXPECT_FALSE(vset_->NeedsCompaction());
  AddFile(1, "a", "f", kMiB);
  ASSERT_TRUE(vset_->NeedsCompaction());

  std::unique_ptr<Compaction> c(vset_->PickCompaction());
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(1, c->level());
  EXPECT_EQ(2, c->output_level());
  EXPECT_EQ(3, c->num_input_files(0));
  // Push lands on L2, above the largest level: no resident merge.
  EXPECT_EQ(0, c->num_input_files(1));
  EXPECT_DOUBLE_EQ(1.0, c->predicted_write_amp());
}

TEST_F(PickerTest, LazyLevelingMergesIntoLargestLevel) {
  Open(CompactionStyle::kLazyLeveling, /*tiered_run_count=*/2);
  // L2 is the largest occupied level; pushing L1 lands ON it and must
  // merge with the overlapping resident run.
  AddFile(2, "a", "m", 2 * kMiB);
  AddFile(2, "n", "z", 4 * kMiB);  // disjoint resident, not overlapping
  AddFile(1, "a", "j", kMiB);
  AddFile(1, "b", "k", kMiB);
  ASSERT_TRUE(vset_->NeedsCompaction());

  std::unique_ptr<Compaction> c(vset_->PickCompaction());
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(1, c->level());
  EXPECT_EQ(2, c->output_level());
  EXPECT_EQ(2, c->num_input_files(0));
  EXPECT_EQ(1, c->num_input_files(1));  // only "a".."m" overlaps
  // Golden: (1 + 1 + 2) / (1 + 1) MiB.
  EXPECT_DOUBLE_EQ(2.0, c->predicted_write_amp());
}

TEST_F(PickerTest, LazyLevelingLargestLevelSpillsOnSize) {
  Open(CompactionStyle::kLazyLeveling, /*tiered_run_count=*/8);
  // Single-run largest level over its 10 MiB (L1-equivalent) budget at
  // L1: spills into a new largest level, leveled-style.
  AddFile(1, "a", "m", 6 * kMiB);
  AddFile(1, "n", "z", 6 * kMiB);
  ASSERT_TRUE(vset_->NeedsCompaction());

  std::unique_ptr<Compaction> c(vset_->PickCompaction());
  ASSERT_NE(nullptr, c);
  EXPECT_EQ(1, c->level());
  EXPECT_EQ(2, c->output_level());
  EXPECT_EQ(2, c->num_input_files(0));
  EXPECT_EQ(0, c->num_input_files(1));  // nothing resident below
  EXPECT_DOUBLE_EQ(1.0, c->predicted_write_amp());
}

TEST_F(PickerTest, QuiescentTreesPickNothing) {
  for (CompactionStyle style :
       {CompactionStyle::kLeveled, CompactionStyle::kTiered,
        CompactionStyle::kLazyLeveling}) {
    SCOPED_TRACE(CompactionStyleName(style));
    vset_.reset();
    cache_.reset();
    dbname_ = std::string("/picker_db_") + CompactionStyleName(style);
    Open(style);
    AddFile(1, "a", "c", kMiB);
    AddFile(2, "a", "z", 2 * kMiB);
    EXPECT_FALSE(vset_->NeedsCompaction());
    std::unique_ptr<Compaction> c(vset_->PickCompaction());
    EXPECT_EQ(nullptr, c);
  }
}

}  // namespace
}  // namespace pipelsm
