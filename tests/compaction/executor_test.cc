// The contribution's core correctness property: SCP, PCP, S-PPCP and
// C-PPCP are different *schedules* of the same seven steps, so for any
// input they must produce exactly the same merged key-value sequence —
// and that sequence must equal a reference merge computed independently.
#include "src/compaction/executor.h"

#include <gtest/gtest.h>

#include <map>

#include "src/compaction/types.h"
#include "src/env/sim_env.h"
#include "src/table/table_builder.h"
#include "src/workload/table_gen.h"

namespace pipelsm {
namespace {

struct ExecParams {
  CompactionMode mode;
  int read_parallelism;
  int compute_parallelism;
};

std::string ParamName(const ::testing::TestParamInfo<ExecParams>& info) {
  std::string n = CompactionModeName(info.param.mode);
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n + "_r" + std::to_string(info.param.read_parallelism) + "_c" +
         std::to_string(info.param.compute_parallelism);
}

class ExecutorTest : public ::testing::TestWithParam<ExecParams> {
 protected:
  ExecutorTest() : icmp_(BytewiseComparator()) {}

  CompactionJobOptions JobOptions() {
    CompactionJobOptions job;
    job.icmp = &icmp_;
    job.subtask_bytes = 64 << 10;
    job.block_size = 4 << 10;
    job.max_output_file_size = 256 << 10;
    job.read_parallelism = GetParam().read_parallelism;
    job.compute_parallelism = GetParam().compute_parallelism;
    return job;
  }

  // Runs the parameterized executor; returns the merged (user_key ->
  // value) contents of all output tables, scanning them in file order.
  Status RunAndCollect(const CompactionJobOptions& job,
                       const std::vector<std::shared_ptr<Table>>& inputs,
                       std::vector<std::pair<std::string, std::string>>* out,
                       StepProfile* profile) {
    auto executor = NewCompactionExecutor(GetParam().mode);
    CountingSink sink(&env_, "/out");
    Status s = executor->Run(job, inputs, &sink, profile);
    if (!s.ok()) return s;

    out->clear();
    TableOptions topt;
    topt.comparator = &icmp_;
    for (const OutputMeta& meta : sink.outputs()) {
      const std::string fname =
          "/out/out-" + std::to_string(meta.file_number) + ".pst";
      std::unique_ptr<RandomAccessFile> file;
      s = env_.NewRandomAccessFile(fname, &file);
      if (!s.ok()) return s;
      std::unique_ptr<Table> table;
      s = Table::Open(topt, std::move(file), meta.file_size, &table);
      if (!s.ok()) return s;
      std::unique_ptr<Iterator> it(table->NewIterator());
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        ParsedInternalKey parsed;
        EXPECT_TRUE(ParseInternalKey(it->key(), &parsed));
        out->emplace_back(parsed.user_key.ToString(),
                          it->value().ToString());
      }
      if (!it->status().ok()) return it->status();
    }
    return Status::OK();
  }

  // Reference merge: newest version of each user key via direct iteration.
  std::map<std::string, std::string> ReferenceMerge(
      const std::vector<std::shared_ptr<Table>>& inputs) {
    // Later = lower precedence: pick the entry with the highest sequence.
    std::map<std::string, std::pair<uint64_t, std::string>> best;
    for (const auto& t : inputs) {
      std::unique_ptr<Iterator> it(t->NewIterator());
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        ParsedInternalKey parsed;
        EXPECT_TRUE(ParseInternalKey(it->key(), &parsed));
        auto& slot = best[parsed.user_key.ToString()];
        if (parsed.sequence >= slot.first) {
          slot = {parsed.sequence, parsed.type == kTypeValue
                                       ? it->value().ToString()
                                       : std::string("<deleted>")};
        }
      }
    }
    std::map<std::string, std::string> result;
    for (auto& [k, v] : best) {
      if (v.second != "<deleted>") result[k] = v.second;
    }
    return result;
  }

  SimEnv env_;
  InternalKeyComparator icmp_;
};

TEST_P(ExecutorTest, MatchesReferenceMerge) {
  TableGenOptions gen;
  gen.env = &env_;
  gen.icmp = &icmp_;
  gen.upper_bytes = 512 << 10;
  gen.lower_bytes = 1 << 20;
  CompactionInputs inputs;
  ASSERT_TRUE(GenerateCompactionInputs(gen, &inputs).ok());

  std::vector<std::pair<std::string, std::string>> got;
  StepProfile profile;
  ASSERT_TRUE(
      RunAndCollect(JobOptions(), inputs.tables, &got, &profile).ok());

  auto expected = ReferenceMerge(inputs.tables);
  ASSERT_EQ(expected.size(), got.size());
  auto it = expected.begin();
  for (size_t i = 0; i < got.size(); i++, ++it) {
    ASSERT_EQ(it->first, got[i].first) << "at " << i;
    ASSERT_EQ(it->second, got[i].second) << "at " << i;
  }

  // Sanity on the profile: all seven steps saw work.
  EXPECT_GT(profile.subtasks, 0u);
  EXPECT_GT(profile.nanos[kStepRead], 0u);
  EXPECT_GT(profile.nanos[kStepSort], 0u);
  EXPECT_GT(profile.nanos[kStepWrite], 0u);
  EXPECT_GT(profile.input_bytes, 0u);
  EXPECT_GT(profile.wall_nanos, 0u);
}

TEST_P(ExecutorTest, ShadowedVersionsAreDropped) {
  // Upper rewrites half the lower keys; output size must reflect the drop.
  TableGenOptions gen;
  gen.env = &env_;
  gen.icmp = &icmp_;
  gen.upper_bytes = 256 << 10;
  gen.lower_bytes = 512 << 10;
  CompactionInputs inputs;
  ASSERT_TRUE(GenerateCompactionInputs(gen, &inputs).ok());

  std::vector<std::pair<std::string, std::string>> got;
  StepProfile profile;
  ASSERT_TRUE(
      RunAndCollect(JobOptions(), inputs.tables, &got, &profile).ok());
  // Unique user keys = lower key count; total input entries > output.
  EXPECT_LT(got.size(), inputs.total_entries);
  // No duplicate user keys in the output.
  for (size_t i = 1; i < got.size(); i++) {
    EXPECT_LT(got[i - 1].first, got[i].first);
  }
}

TEST_P(ExecutorTest, OutputFilesRespectSizeLimitAndOrder) {
  TableGenOptions gen;
  gen.env = &env_;
  gen.icmp = &icmp_;
  gen.upper_bytes = 512 << 10;
  gen.lower_bytes = 2 << 20;
  CompactionInputs inputs;
  ASSERT_TRUE(GenerateCompactionInputs(gen, &inputs).ok());

  auto executor = NewCompactionExecutor(GetParam().mode);
  CountingSink sink(&env_, "/out");
  StepProfile profile;
  CompactionJobOptions job = JobOptions();
  ASSERT_TRUE(executor->Run(job, inputs.tables, &sink, &profile).ok());

  ASSERT_GT(sink.outputs().size(), 1u);
  const Comparator* ucmp = icmp_.user_comparator();
  for (size_t i = 0; i < sink.outputs().size(); i++) {
    const OutputMeta& m = sink.outputs()[i];
    // Rotation happens at the first block boundary past the limit.
    EXPECT_LT(m.file_size, job.max_output_file_size + 64 * 1024);
    EXPECT_GT(m.entries, 0u);
    if (i > 0) {
      // Files must be disjoint and ascending.
      EXPECT_LT(ucmp->Compare(sink.outputs()[i - 1].largest.user_key(),
                              m.smallest.user_key()),
                0);
    }
  }
}

TEST_P(ExecutorTest, EmptyInputsProduceNoOutput) {
  auto executor = NewCompactionExecutor(GetParam().mode);
  CountingSink sink(&env_, "/out");
  StepProfile profile;
  ASSERT_TRUE(executor->Run(JobOptions(), {}, &sink, &profile).ok());
  EXPECT_TRUE(sink.outputs().empty());
}

TEST_P(ExecutorTest, TombstonesDroppedAtBaseLevelOnly) {
  // Build one upper table full of deletions over the lower key space.
  TableOptions topt;
  topt.comparator = &icmp_;
  env_.CreateDir("/in");

  auto build = [&](const std::string& fname, ValueType type,
                   SequenceNumber base_seq) -> std::shared_ptr<Table> {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile(fname, &file).ok());
    TableBuilder builder(topt, file.get());
    for (int i = 0; i < 500; i++) {
      char key[16];
      std::snprintf(key, sizeof(key), "k%06d", i);
      std::string ikey;
      AppendInternalKey(&ikey, ParsedInternalKey(key, base_seq + i, type));
      builder.Add(ikey, type == kTypeValue ? "value" : "");
    }
    EXPECT_TRUE(builder.Finish().ok());
    file->Close();
    uint64_t size;
    EXPECT_TRUE(env_.GetFileSize(fname, &size).ok());
    std::unique_ptr<RandomAccessFile> raf;
    EXPECT_TRUE(env_.NewRandomAccessFile(fname, &raf).ok());
    std::unique_ptr<Table> t;
    EXPECT_TRUE(Table::Open(topt, std::move(raf), size, &t).ok());
    return std::shared_ptr<Table>(t.release());
  };

  std::vector<std::shared_ptr<Table>> inputs;
  inputs.push_back(build("/in/dels.pst", kTypeDeletion, 10000));
  inputs.push_back(build("/in/vals.pst", kTypeValue, 1));

  // Base level: tombstones and shadowed values vanish entirely.
  {
    std::vector<std::pair<std::string, std::string>> got;
    StepProfile profile;
    CompactionJobOptions job = JobOptions();
    job.range_is_base_level = [](const SubTaskPlan&) { return true; };
    ASSERT_TRUE(RunAndCollect(job, inputs, &got, &profile).ok());
    EXPECT_TRUE(got.empty());
  }

  // Not base level: tombstones must survive (they still shadow deeper
  // levels); LSM semantics would break otherwise.
  {
    auto executor = NewCompactionExecutor(GetParam().mode);
    CountingSink sink(&env_, "/out2");
    StepProfile profile;
    CompactionJobOptions job = JobOptions();
    job.range_is_base_level = [](const SubTaskPlan&) { return false; };
    ASSERT_TRUE(executor->Run(job, inputs, &sink, &profile).ok());
    uint64_t entries = 0;
    for (const auto& m : sink.outputs()) entries += m.entries;
    EXPECT_EQ(500u, entries);  // 500 tombstones kept, 500 values dropped
  }
}

TEST_P(ExecutorTest, SnapshotPreservesOldVersions) {
  TableGenOptions gen;
  gen.env = &env_;
  gen.icmp = &icmp_;
  gen.upper_bytes = 128 << 10;
  gen.lower_bytes = 256 << 10;
  CompactionInputs inputs;
  ASSERT_TRUE(GenerateCompactionInputs(gen, &inputs).ok());

  // A snapshot at sequence 0 predates everything: no version may be
  // dropped.
  auto executor = NewCompactionExecutor(GetParam().mode);
  CountingSink sink(&env_, "/out");
  StepProfile profile;
  CompactionJobOptions job = JobOptions();
  job.smallest_snapshot = 0;
  ASSERT_TRUE(executor->Run(job, inputs.tables, &sink, &profile).ok());
  uint64_t entries = 0;
  for (const auto& m : sink.outputs()) entries += m.entries;
  EXPECT_EQ(inputs.total_entries, entries);
}

INSTANTIATE_TEST_SUITE_P(
    AllExecutors, ExecutorTest,
    ::testing::Values(ExecParams{CompactionMode::kSCP, 1, 1},
                      ExecParams{CompactionMode::kPCP, 1, 1},
                      ExecParams{CompactionMode::kSPPCP, 2, 1},
                      ExecParams{CompactionMode::kSPPCP, 4, 1},
                      ExecParams{CompactionMode::kCPPCP, 1, 2},
                      ExecParams{CompactionMode::kCPPCP, 1, 4},
                      ExecParams{CompactionMode::kCPPCP, 2, 3}),
    ParamName);

// Cross-executor equivalence: byte-identical output streams.
TEST(ExecutorEquivalence, AllModesProduceIdenticalOutput) {
  SimEnv env;
  InternalKeyComparator icmp(BytewiseComparator());
  TableGenOptions gen;
  gen.env = &env;
  gen.icmp = &icmp;
  gen.upper_bytes = 512 << 10;
  gen.lower_bytes = 1 << 20;
  CompactionInputs inputs;
  ASSERT_TRUE(GenerateCompactionInputs(gen, &inputs).ok());

  auto run = [&](CompactionMode mode, int readers,
                 int computers) -> std::string {
    CompactionJobOptions job;
    job.icmp = &icmp;
    job.subtask_bytes = 64 << 10;
    job.max_output_file_size = 256 << 10;
    job.read_parallelism = readers;
    job.compute_parallelism = computers;
    auto executor = NewCompactionExecutor(mode);
    const std::string dir =
        std::string("/eq-") + CompactionModeName(mode) + "-" +
        std::to_string(readers) + "-" + std::to_string(computers);
    CountingSink sink(&env, dir);
    StepProfile profile;
    EXPECT_TRUE(executor->Run(job, inputs.tables, &sink, &profile).ok());
    // Concatenate the raw bytes of all outputs (they carry block-exact
    // content, so equality means the executors are interchangeable).
    std::string all;
    for (const auto& m : sink.outputs()) {
      std::string data;
      EXPECT_TRUE(ReadFileToString(
                      &env, dir + "/out-" + std::to_string(m.file_number) +
                                ".pst",
                      &data)
                      .ok());
      all += data;
    }
    return all;
  };

  const std::string scp = run(CompactionMode::kSCP, 1, 1);
  ASSERT_FALSE(scp.empty());
  EXPECT_EQ(scp, run(CompactionMode::kPCP, 1, 1));
  EXPECT_EQ(scp, run(CompactionMode::kSPPCP, 3, 1));
  EXPECT_EQ(scp, run(CompactionMode::kCPPCP, 1, 3));
}

}  // namespace
}  // namespace pipelsm
