// Failure injection across the compaction path: corrupt blocks must be
// caught by S2 (CHECKSUM) in every executor, and the error must propagate
// cleanly out of the pipeline (threads joined, no partial state).
#include <gtest/gtest.h>

#include "src/compaction/executor.h"
#include "src/compaction/steps.h"
#include "src/env/sim_env.h"
#include "src/workload/table_gen.h"

namespace pipelsm {
namespace {

class CompactionFailureTest : public ::testing::Test {
 protected:
  CompactionFailureTest() : icmp_(BytewiseComparator()) {}

  void MakeInputs() {
    TableGenOptions gen;
    gen.env = &env_;
    gen.icmp = &icmp_;
    gen.upper_bytes = 256 << 10;
    gen.lower_bytes = 512 << 10;
    ASSERT_TRUE(GenerateCompactionInputs(gen, &inputs_).ok());
  }

  CompactionJobOptions JobOptions(int readers = 1, int computers = 1) {
    CompactionJobOptions job;
    job.icmp = &icmp_;
    job.subtask_bytes = 64 << 10;
    job.max_output_file_size = 256 << 10;
    job.read_parallelism = readers;
    job.compute_parallelism = computers;
    return job;
  }

  SimEnv env_;
  InternalKeyComparator icmp_;
  CompactionInputs inputs_;
};

TEST_F(CompactionFailureTest, CorruptInputFailsEveryExecutor) {
  MakeInputs();
  // Corrupt a data block in the middle of the first generated table.
  ASSERT_TRUE(env_.CorruptFile("/tablegen/gen-0.pst", 2048, 16).ok());

  struct Case {
    CompactionMode mode;
    int readers;
    int computers;
  } cases[] = {
      {CompactionMode::kSCP, 1, 1},
      {CompactionMode::kPCP, 1, 1},
      {CompactionMode::kSPPCP, 3, 1},
      {CompactionMode::kCPPCP, 1, 3},
  };
  for (const Case& c : cases) {
    auto executor = NewCompactionExecutor(c.mode);
    CountingSink sink(&env_, std::string("/out-") + executor->name());
    StepProfile profile;
    Status s = executor->Run(JobOptions(c.readers, c.computers),
                             inputs_.tables, &sink, &profile);
    EXPECT_FALSE(s.ok()) << executor->name();
    EXPECT_TRUE(s.IsCorruption()) << executor->name() << ": " << s.ToString();
  }
}

TEST_F(CompactionFailureTest, VerifyRawBlockCatchesSingleBitFlip) {
  MakeInputs();
  // Read one raw block, verify it, flip one bit, verify again.
  std::unique_ptr<Iterator> idx(inputs_.tables[0]->NewIndexIterator());
  idx->SeekToFirst();
  ASSERT_TRUE(idx->Valid());
  BlockHandle handle;
  Slice v = idx->value();
  ASSERT_TRUE(handle.DecodeFrom(&v).ok());

  RawBlock raw;
  ASSERT_TRUE(inputs_.tables[0]->ReadRaw(handle, &raw).ok());
  ASSERT_TRUE(VerifyRawBlock(raw).ok());

  for (size_t pos : {size_t(0), raw.payload.size() / 2,
                     raw.payload.size() - 1}) {
    raw.payload[pos] = static_cast<char>(raw.payload[pos] ^ 0x01);
    EXPECT_FALSE(VerifyRawBlock(raw).ok()) << "bit flip at " << pos;
    raw.payload[pos] = static_cast<char>(raw.payload[pos] ^ 0x01);
  }
  EXPECT_TRUE(VerifyRawBlock(raw).ok());
}

TEST_F(CompactionFailureTest, TruncatedBlockReadFails) {
  MakeInputs();
  std::unique_ptr<Iterator> idx(inputs_.tables[0]->NewIndexIterator());
  idx->SeekToLast();
  ASSERT_TRUE(idx->Valid());
  BlockHandle handle;
  Slice v = idx->value();
  ASSERT_TRUE(handle.DecodeFrom(&v).ok());

  // Ask for a block whose extent exceeds the file.
  BlockHandle bogus;
  bogus.set_offset(handle.offset());
  bogus.set_size(handle.size() + (100 << 20));
  RawBlock raw;
  Status s = inputs_.tables[0]->ReadRaw(bogus, &raw);
  EXPECT_FALSE(s.ok());
}

TEST_F(CompactionFailureTest, ComputeRejectsGarbagePayload) {
  CompactionJobOptions job = JobOptions();
  RawSubTask raw;
  raw.plan.seq = 0;
  raw.plan.blocks.push_back(BlockRead{0, BlockHandle{}});
  RawBlock junk;
  junk.payload = "way too short";
  raw.blocks.push_back(junk);
  ComputedSubTask out;
  Status s = ComputeSubTask(job, std::move(raw), &out);
  EXPECT_TRUE(s.IsCorruption());
}

TEST_F(CompactionFailureTest, PipelineShutsDownCleanlyOnMidStreamError) {
  MakeInputs();
  // Corrupt a LATE block so several sub-tasks succeed before the failure
  // (exercises queue close + thread join on the error path).
  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize("/tablegen/gen-1.pst", &size).ok());
  // Three-quarters in: still within the data-block region (the index and
  // footer live in the last few KB and were already read at Open).
  ASSERT_TRUE(env_.CorruptFile("/tablegen/gen-1.pst", size * 3 / 4, 16).ok());

  auto executor = NewCompactionExecutor(CompactionMode::kCPPCP);
  CountingSink sink(&env_, "/out-late");
  StepProfile profile;
  Status s = executor->Run(JobOptions(2, 3), inputs_.tables, &sink, &profile);
  EXPECT_FALSE(s.ok());
  // Returning at all proves the pipeline joined its threads; ASAN/TSAN
  // builds would flag leaks or races here.
}

}  // namespace
}  // namespace pipelsm
