#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/env/sim_env.h"
#include "src/util/random.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace pipelsm::log {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.NewWritableFile("/wal", &dest_).ok());
    writer_ = std::make_unique<Writer>(dest_.get());
  }

  void Write(const std::string& msg) {
    ASSERT_TRUE(writer_->AddRecord(Slice(msg)).ok());
  }

  // Reads back every record; "EOF" terminates.
  std::vector<std::string> ReadAll(bool checksum = true,
                                   size_t* dropped_bytes = nullptr) {
    struct Reporter : public Reader::Reporter {
      size_t dropped = 0;
      void Corruption(size_t bytes, const Status&) override {
        dropped += bytes;
      }
    };
    Reporter reporter;
    std::unique_ptr<SequentialFile> src;
    EXPECT_TRUE(env_.NewSequentialFile("/wal", &src).ok());
    Reader reader(src.get(), &reporter, checksum, 0);
    std::vector<std::string> records;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    if (dropped_bytes != nullptr) *dropped_bytes = reporter.dropped;
    return records;
  }

  SimEnv env_;
  std::unique_ptr<WritableFile> dest_;
  std::unique_ptr<Writer> writer_;
};

TEST_F(LogTest, EmptyLog) { EXPECT_TRUE(ReadAll().empty()); }

TEST_F(LogTest, ReadWrite) {
  Write("foo");
  Write("bar");
  Write("");
  Write("xxxx");
  auto records = ReadAll();
  ASSERT_EQ(4u, records.size());
  EXPECT_EQ("foo", records[0]);
  EXPECT_EQ("bar", records[1]);
  EXPECT_EQ("", records[2]);
  EXPECT_EQ("xxxx", records[3]);
}

TEST_F(LogTest, ManyBlocks) {
  for (int i = 0; i < 100000; i++) {
    Write(std::to_string(i));
  }
  auto records = ReadAll();
  ASSERT_EQ(100000u, records.size());
  for (int i = 0; i < 100000; i++) {
    EXPECT_EQ(std::to_string(i), records[i]);
  }
}

TEST_F(LogTest, Fragmentation) {
  Write("small");
  Write(std::string(kBlockSize - 100, 'm'));  // spans a block boundary
  Write(std::string(3 * kBlockSize, 'b'));    // FIRST/MIDDLE/.../LAST
  auto records = ReadAll();
  ASSERT_EQ(3u, records.size());
  EXPECT_EQ("small", records[0]);
  EXPECT_EQ(std::string(kBlockSize - 100, 'm'), records[1]);
  EXPECT_EQ(std::string(3 * kBlockSize, 'b'), records[2]);
}

TEST_F(LogTest, MarginalTrailer) {
  // Make a trailer that is exactly about to overflow the block.
  const int n = kBlockSize - 2 * kHeaderSize;
  Write(std::string(n, 'f'));
  Write("");
  Write("bar");
  auto records = ReadAll();
  ASSERT_EQ(3u, records.size());
  EXPECT_EQ("bar", records[2]);
}

TEST_F(LogTest, TornTailIsSilentlyIgnored) {
  Write("complete");
  Write("to-be-torn");
  // Tear the last record's payload (simulates a crash mid-write).
  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize("/wal", &size).ok());
  ASSERT_TRUE(env_.TruncateFile("/wal", size - 4).ok());

  size_t dropped = 0;
  auto records = ReadAll(true, &dropped);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("complete", records[0]);
  EXPECT_EQ(0u, dropped);  // torn tail is not corruption
}

TEST_F(LogTest, CorruptPayloadDetected) {
  Write("first");
  Write("second-record-payload");
  // Flip bytes in the middle of the file (second record's payload).
  ASSERT_TRUE(env_.CorruptFile("/wal", kHeaderSize + 5 + kHeaderSize + 3, 4)
                  .ok());
  size_t dropped = 0;
  auto records = ReadAll(true, &dropped);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("first", records[0]);
  EXPECT_GT(dropped, 0u);
}

TEST_F(LogTest, CorruptLengthNeverYieldsBadRecords) {
  Write("aaaaaaaaa");
  Write("bbbbbbbbb");
  // Corrupt the length field of the first header. In a short (sub-block)
  // file this is indistinguishable from a torn write, so the reader stops
  // silently; either way it must never return a record built from the
  // corrupted length.
  ASSERT_TRUE(env_.CorruptFile("/wal", 4, 2).ok());
  auto records = ReadAll(true);
  EXPECT_TRUE(records.empty());
}

TEST_F(LogTest, CorruptLengthMidFileReportsCorruption) {
  // Fill past one block so the bad length is NOT at EOF.
  Write(std::string(2 * kBlockSize, 'x'));
  Write("tail-record");
  // Corrupt the first header's length: the whole first block is dropped.
  ASSERT_TRUE(env_.CorruptFile("/wal", 4, 2).ok());
  size_t dropped = 0;
  auto records = ReadAll(true, &dropped);
  EXPECT_GT(dropped, 0u);
  // The tail record lives in a later block and may or may not survive
  // resynchronization, but no garbage record may appear.
  for (const auto& r : records) {
    EXPECT_TRUE(r == "tail-record" || r == std::string(2 * kBlockSize, 'x'));
  }
}

TEST_F(LogTest, ReopenForAppend) {
  Write("first-run");
  dest_->Close();

  uint64_t size;
  ASSERT_TRUE(env_.GetFileSize("/wal", &size).ok());
  std::unique_ptr<WritableFile> appender;
  ASSERT_TRUE(env_.NewAppendableFile("/wal", &appender).ok());
  Writer writer2(appender.get(), size);
  ASSERT_TRUE(writer2.AddRecord("second-run").ok());

  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("first-run", records[0]);
  EXPECT_EQ("second-run", records[1]);
}

// Property: random record sizes spanning all fragmentation shapes.
class LogSizesSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LogSizesSweep, RoundTrips) {
  SimEnv env;
  std::unique_ptr<WritableFile> dest;
  ASSERT_TRUE(env.NewWritableFile("/w", &dest).ok());
  Writer writer(dest.get());

  Random rnd(GetParam());
  std::vector<std::string> expected;
  for (int i = 0; i < 300; i++) {
    const uint32_t len = rnd.Skewed(17);  // 0..128K
    std::string payload;
    payload.reserve(len);
    for (uint32_t j = 0; j < len; j++) {
      payload.push_back(static_cast<char>(rnd.Uniform(256)));
    }
    expected.push_back(payload);
    ASSERT_TRUE(writer.AddRecord(payload).ok());
  }

  std::unique_ptr<SequentialFile> src;
  ASSERT_TRUE(env.NewSequentialFile("/w", &src).ok());
  Reader reader(src.get(), nullptr, true, 0);
  Slice record;
  std::string scratch;
  for (const std::string& want : expected) {
    ASSERT_TRUE(reader.ReadRecord(&record, &scratch));
    ASSERT_EQ(want, record.ToString());
  }
  EXPECT_FALSE(reader.ReadRecord(&record, &scratch));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogSizesSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace pipelsm::log
