#include "src/util/logging.h"

#include <gtest/gtest.h>

#include <limits>

namespace pipelsm {
namespace {

TEST(Logging, NumberToString) {
  EXPECT_EQ("0", NumberToString(0));
  EXPECT_EQ("1", NumberToString(1));
  EXPECT_EQ("9", NumberToString(9));
  EXPECT_EQ("10", NumberToString(10));
  EXPECT_EQ("18446744073709551615",
            NumberToString(std::numeric_limits<uint64_t>::max()));
}

TEST(Logging, EscapeString) {
  EXPECT_EQ("abc", EscapeString("abc"));
  EXPECT_EQ("\\x00\\x01", EscapeString(Slice("\x00\x01", 2)));
  EXPECT_EQ("a\\xffb", EscapeString(Slice("a\xff" "b", 3)));
}

TEST(Logging, ConsumeDecimalNumberRoundtrip) {
  const uint64_t numbers[] = {0,     1,     9,
                              10,    100,   99999,
                              std::numeric_limits<uint64_t>::max()};
  for (uint64_t number : numbers) {
    std::string s = NumberToString(number);
    Slice in(s);
    uint64_t result;
    ASSERT_TRUE(ConsumeDecimalNumber(&in, &result));
    EXPECT_EQ(number, result);
    EXPECT_TRUE(in.empty());
  }
}

TEST(Logging, ConsumeDecimalNumberWithSuffix) {
  std::string s = "12345.log";
  Slice in(s);
  uint64_t result;
  ASSERT_TRUE(ConsumeDecimalNumber(&in, &result));
  EXPECT_EQ(12345u, result);
  EXPECT_EQ(".log", in.ToString());
}

TEST(Logging, ConsumeDecimalNumberOverflow) {
  // One past uint64 max.
  std::string s = "18446744073709551616";
  Slice in(s);
  uint64_t result;
  EXPECT_FALSE(ConsumeDecimalNumber(&in, &result));
}

TEST(Logging, ConsumeDecimalNumberNoDigits) {
  std::string s = "abc";
  Slice in(s);
  uint64_t result;
  EXPECT_FALSE(ConsumeDecimalNumber(&in, &result));
  EXPECT_EQ("abc", in.ToString());
}

TEST(Logging, LevelFilter) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(LogLevel::kError, GetLogLevel());
  // Nothing observable to assert beyond no crash on a filtered call:
  PIPELSM_LOG_DEBUG("must be dropped %d", 1);
  SetLogLevel(prev);
}

}  // namespace
}  // namespace pipelsm
