#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/util/bounded_queue.h"
#include "src/util/thread_pool.h"

namespace pipelsm {
namespace {

TEST(BoundedQueue, FifoSingleThread) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; i++) {
    EXPECT_TRUE(q.Push(i));
  }
  EXPECT_EQ(5u, q.size());
  for (int i = 0; i < 5; i++) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(i, *v);
  }
}

TEST(BoundedQueue, TryPopEmpty) {
  BoundedQueue<int> q(4);
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(7);
  auto v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(7, *v);
}

TEST(BoundedQueue, CloseDrainsThenFails) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // rejected after close
  EXPECT_EQ(1, *q.Pop());   // drains remaining items
  EXPECT_EQ(2, *q.Pop());
  EXPECT_FALSE(q.Pop().has_value());  // then signals end
}

TEST(BoundedQueue, BackpressureBlocksProducer) {
  BoundedQueue<int> q(2);
  q.Push(1);
  q.Push(2);

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.Push(3);  // must block until a Pop frees space
    third_pushed.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(1, *q.Pop());
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(BoundedQueue, MpmcStress) {
  BoundedQueue<int> q(8);
  const int kProducers = 4;
  const int kItemsEach = 2000;

  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; p++) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kItemsEach; i++) {
        ASSERT_TRUE(q.Push(p * kItemsEach + i));
      }
    });
  }
  for (int c = 0; c < 3; c++) {
    threads.emplace_back([&] {
      while (true) {
        auto v = q.Pop();
        if (!v.has_value()) break;
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; p++) {
    threads[p].join();
  }
  q.Close();
  for (size_t i = kProducers; i < threads.size(); i++) {
    threads[i].join();
  }
  const int total = kProducers * kItemsEach;
  EXPECT_EQ(total, popped.load());
  long long expected = 0;
  for (int i = 0; i < total; i++) expected += i;
  EXPECT_EQ(expected, sum.load());
}

TEST(BoundedQueue, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  q.Push(std::make_unique<int>(9));
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(9, **v);
}

TEST(BoundedQueue, PushAfterCloseRetainsItem) {
  // The Push contract: a rejected item is NOT consumed, so the producer
  // can reclaim it (nothing is silently dropped inside the queue).
  BoundedQueue<std::unique_ptr<int>> q(2);
  q.Close();
  auto item = std::make_unique<int>(31);
  EXPECT_FALSE(q.Push(std::move(item)));
  ASSERT_NE(nullptr, item);  // still ours
  EXPECT_EQ(31, *item);
  EXPECT_EQ(0u, q.stats().pushes);
}

TEST(BoundedQueue, StatsCountTraffic) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(1, *q.Pop());
  EXPECT_EQ(2, *q.TryPop());
  const auto stats = q.stats();
  EXPECT_EQ(3u, stats.pushes);
  EXPECT_EQ(2u, stats.pops);  // Pop and TryPop both count
  EXPECT_EQ(3u, stats.depth_highwater);
  // Nothing ever blocked: the stall clock must not have started.
  EXPECT_EQ(0u, stats.push_stalls);
  EXPECT_EQ(0u, stats.pop_stalls);
  EXPECT_EQ(0u, stats.push_stall_nanos);
  EXPECT_EQ(0u, stats.pop_stall_nanos);
}

TEST(BoundedQueue, PushStallAccountedUnderBackpressure) {
  BoundedQueue<int> q(1);
  q.Push(1);  // queue now full

  std::thread producer([&] { ASSERT_TRUE(q.Push(2)); });
  // Hold the producer blocked long enough to accumulate measurable time.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(1, *q.Pop());
  producer.join();

  const auto stats = q.stats();
  EXPECT_EQ(1u, stats.push_stalls);
  EXPECT_GE(stats.push_stall_nanos, 10u * 1000 * 1000);  // >= 10ms blocked
  EXPECT_EQ(0u, stats.pop_stalls);  // consumer never waited
}

TEST(BoundedQueue, PopStallAccountedUnderStarvation) {
  BoundedQueue<int> q(4);

  std::thread consumer([&] { EXPECT_EQ(5, *q.Pop()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Push(5);
  consumer.join();

  const auto stats = q.stats();
  EXPECT_EQ(1u, stats.pop_stalls);
  EXPECT_GE(stats.pop_stall_nanos, 10u * 1000 * 1000);
  EXPECT_EQ(0u, stats.push_stalls);
}

TEST(BoundedQueue, DepthHighwaterTracksPeakNotCurrent) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; i++) q.Push(i);
  for (int i = 0; i < 5; i++) q.Pop();
  EXPECT_EQ(0u, q.size());
  EXPECT_EQ(5u, q.stats().depth_highwater);
  q.Push(99);
  EXPECT_EQ(5u, q.stats().depth_highwater);  // 1 < 5: peak unchanged
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(pool.Submit([&] { count.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(100, count.load());
}

TEST(ThreadPool, WaitBlocksUntilIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; i++) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(8, done.load());
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPool, ShutdownDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; i++) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
    pool.Shutdown();  // must run every queued task before joining
  }
  EXPECT_EQ(20, count.load());
}

}  // namespace
}  // namespace pipelsm
