#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "src/util/histogram.h"
#include "src/util/random.h"
#include "tests/obs/json_check.h"

namespace pipelsm {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(0, h.Average());
  EXPECT_EQ(0, h.StandardDeviation());
  EXPECT_EQ(0u, h.Num());
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_DOUBLE_EQ(42.0, h.Average());
  EXPECT_EQ(42.0, h.Min());
  EXPECT_EQ(42.0, h.Max());
  EXPECT_NEAR(42.0, h.Median(), 42.0 * 0.25);
}

// Regression: an empty histogram's Percentile used to fall into bucket 0
// and clamp the result UP to the min_ sentinel (the top bucket limit,
// ~1e12) — every percentile must be exactly 0, finite, with no NaN/inf.
TEST(Histogram, EmptyPercentilesAreZero) {
  Histogram h;
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_TRUE(std::isfinite(v)) << p;
    EXPECT_EQ(0.0, v) << p;
  }
  EXPECT_EQ(0.0, h.Median());
}

// A single sample defines every percentile: interpolating inside its
// bucket would report spread that does not exist.
TEST(Histogram, SingleSamplePercentilesAreTheSample) {
  Histogram h;
  h.Add(7.0);
  for (double p : {1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(7.0, h.Percentile(p)) << p;
  }
  // Sub-unit samples (bucket 0) too: no clamp to bucket limits.
  Histogram tiny;
  tiny.Add(0.25);
  EXPECT_DOUBLE_EQ(0.25, tiny.Percentile(95));
}

TEST(Histogram, ClearResetsPercentilesToZero) {
  Histogram h;
  h.Add(1e9);
  h.Clear();
  EXPECT_EQ(0.0, h.Percentile(99));
}

TEST(Histogram, UniformMedianApproximation) {
  Histogram h;
  for (int i = 1; i <= 10000; i++) {
    h.Add(i);
  }
  EXPECT_NEAR(5000.0, h.Average(), 1.0);
  // Bucketed median is approximate; allow the bucket growth factor.
  EXPECT_NEAR(5000.0, h.Median(), 5000.0 * 0.25);
  EXPECT_GE(h.Percentile(99), h.Percentile(50));
  EXPECT_GE(h.Percentile(95), h.Median());
  EXPECT_EQ(1.0, h.Min());
  EXPECT_EQ(10000.0, h.Max());
}

TEST(Histogram, Merge) {
  Histogram a, b;
  for (int i = 0; i < 100; i++) a.Add(10.0);
  for (int i = 0; i < 100; i++) b.Add(20.0);
  a.Merge(b);
  EXPECT_EQ(200u, a.Num());
  EXPECT_NEAR(15.0, a.Average(), 0.01);
  EXPECT_EQ(10.0, a.Min());
  EXPECT_EQ(20.0, a.Max());
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(0u, h.Num());
  EXPECT_EQ(0, h.Average());
}

TEST(Histogram, SummaryToJsonParsesAndMatchesAccessors) {
  Histogram h;
  for (int i = 1; i <= 1000; i++) h.Add(i);
  std::string json;
  h.SummaryToJson(&json);

  testjson::JsonValue v;
  std::string err;
  ASSERT_TRUE(testjson::ParseJson(json, &v, &err)) << err << "\n" << json;
  ASSERT_NE(nullptr, v.Find("count"));
  EXPECT_EQ(1000, v.Find("count")->number_value);
  EXPECT_NEAR(h.Average(), v.Find("avg")->number_value, 0.01);
  EXPECT_NEAR(h.Median(), v.Find("p50")->number_value,
              h.Median() * 0.01 + 0.01);
  EXPECT_NEAR(h.Percentile(95), v.Find("p95")->number_value,
              h.Percentile(95) * 0.01 + 0.01);
  EXPECT_NEAR(h.Percentile(99), v.Find("p99")->number_value,
              h.Percentile(99) * 0.01 + 0.01);
  EXPECT_EQ(h.Max(), v.Find("max")->number_value);
}

TEST(Histogram, EmptySummaryToJsonIsStillValid) {
  Histogram h;
  std::string json;
  h.SummaryToJson(&json);
  testjson::JsonValue v;
  std::string err;
  ASSERT_TRUE(testjson::ParseJson(json, &v, &err)) << err << "\n" << json;
  EXPECT_EQ(0, v.Find("count")->number_value);
}

TEST(Histogram, NonzeroBucketsCoverEverySampleInOrder) {
  Histogram h;
  h.Add(1.0);
  h.Add(1.0);
  h.Add(1000.0);
  const auto buckets = h.NonzeroBuckets();
  ASSERT_FALSE(buckets.empty());
  uint64_t total = 0;
  double prev_limit = 0;
  for (const auto& [limit, count] : buckets) {
    EXPECT_GT(limit, prev_limit);  // ascending, no duplicates
    EXPECT_GT(count, 0u);          // "nonzero" means nonzero
    prev_limit = limit;
    total += count;
  }
  EXPECT_EQ(3u, total);
  // The two distinct magnitudes land in distinct buckets.
  EXPECT_GE(buckets.size(), 2u);
  EXPECT_TRUE(h.NonzeroBuckets().front().first >= 1.0);
}

TEST(Histogram, NonzeroBucketsEmptyHistogram) {
  Histogram h;
  EXPECT_TRUE(h.NonzeroBuckets().empty());
}

TEST(Random, UniformInRange) {
  Random rnd(301);
  for (int i = 0; i < 10000; i++) {
    uint32_t v = rnd.Uniform(100);
    EXPECT_LT(v, 100u);
  }
}

TEST(Random, OneInRoughFrequency) {
  Random rnd(301);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; i++) {
    if (rnd.OneIn(10)) hits++;
  }
  EXPECT_NEAR(trials / 10.0, hits, trials / 10.0 * 0.2);
}

TEST(Random, DeterministicForSeed) {
  Random a(77), b(77);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Xoroshiro, NoShortCycles) {
  Xoroshiro128pp rng(12345);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; i++) {
    seen.insert(rng.Next());
  }
  // A healthy 64-bit generator should not repeat in 10k draws.
  EXPECT_EQ(10000u, seen.size());
}

TEST(Xoroshiro, SeedsDiverge) {
  Xoroshiro128pp a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; i++) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace pipelsm
