#include "src/util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace pipelsm::crc32c {
namespace {

// Reference vectors from the CRC32C specification (also used by LevelDB).
TEST(CRC, StandardResults) {
  char buf[32];

  std::memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8a9136aau, Value(buf, sizeof(buf)));

  std::memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62a8ab43u, Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) {
    buf[i] = static_cast<char>(i);
  }
  EXPECT_EQ(0x46dd794eu, Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) {
    buf[i] = static_cast<char>(31 - i);
  }
  EXPECT_EQ(0x113fdb5cu, Value(buf, sizeof(buf)));

  uint8_t data[48] = {
      0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };
  EXPECT_EQ(0xd9963a56u, Value(reinterpret_cast<char*>(data), sizeof(data)));
}

TEST(CRC, Values) { EXPECT_NE(Value("a", 1), Value("foo", 3)); }

TEST(CRC, Extend) {
  EXPECT_EQ(Value("hello world", 11), Extend(Value("hello ", 6), "world", 5));
}

// Extending byte-by-byte must equal one-shot for arbitrary alignments.
TEST(CRC, ExtendIncremental) {
  std::string data;
  for (int i = 0; i < 1000; i++) {
    data.push_back(static_cast<char>(i * 37 + (i >> 3)));
  }
  const uint32_t oneshot = Value(data.data(), data.size());
  uint32_t crc = 0;
  for (char c : data) {
    crc = Extend(crc, &c, 1);
  }
  EXPECT_EQ(oneshot, crc);

  // Chunked at odd boundaries (exercises the unaligned head path).
  crc = 0;
  size_t pos = 0;
  size_t chunk = 1;
  while (pos < data.size()) {
    const size_t n = std::min(chunk, data.size() - pos);
    crc = Extend(crc, data.data() + pos, n);
    pos += n;
    chunk = (chunk * 3 + 1) % 61 + 1;
  }
  EXPECT_EQ(oneshot, crc);
}

TEST(CRC, Mask) {
  uint32_t crc = Value("foo", 3);
  EXPECT_NE(crc, Mask(crc));
  EXPECT_NE(crc, Mask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Unmask(Mask(Mask(crc)))));
}

// Single-bit corruption anywhere must change the CRC.
TEST(CRC, DetectsBitFlips) {
  std::string data = "The quick brown fox jumps over the lazy dog";
  const uint32_t clean = Value(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte++) {
    for (int bit = 0; bit < 8; bit++) {
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
      EXPECT_NE(clean, Value(data.data(), data.size()))
          << "flip at byte " << byte << " bit " << bit;
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
    }
  }
  EXPECT_EQ(clean, Value(data.data(), data.size()));
}

TEST(CRC, EmptyInput) {
  EXPECT_EQ(0u, Value("", 0));
  EXPECT_EQ(Value("x", 1), Extend(Value("", 0), "x", 1));
}

}  // namespace
}  // namespace pipelsm::crc32c
