#include <gtest/gtest.h>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm {
namespace {

TEST(Slice, Basics) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(0u, empty.size());

  Slice s("hello");
  EXPECT_EQ(5u, s.size());
  EXPECT_EQ('h', s[0]);
  EXPECT_EQ("hello", s.ToString());

  s.remove_prefix(2);
  EXPECT_EQ("llo", s.ToString());

  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(Slice, Compare) {
  EXPECT_EQ(0, Slice("abc").compare(Slice("abc")));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abc").compare(Slice("ab")), 0);
  EXPECT_TRUE(Slice("a") < Slice("b"));
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
}

TEST(Slice, StartsWith) {
  Slice s("MANIFEST-000001");
  EXPECT_TRUE(s.starts_with("MANIFEST-"));
  EXPECT_FALSE(s.starts_with("CURRENT"));
  EXPECT_TRUE(s.starts_with(""));
  EXPECT_FALSE(Slice("ab").starts_with("abc"));
}

TEST(Slice, EmbeddedNulBytes) {
  std::string raw("a\0b", 3);
  Slice s(raw);
  EXPECT_EQ(3u, s.size());
  EXPECT_EQ(raw, s.ToString());
  EXPECT_TRUE(s == Slice(raw));
}

TEST(Status, OkDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ("OK", s.ToString());
}

TEST(Status, Codes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(Status, Messages) {
  Status s = Status::Corruption("block", "checksum mismatch");
  EXPECT_EQ("Corruption: block: checksum mismatch", s.ToString());
  Status t = Status::IOError("open failed");
  EXPECT_EQ("IO error: open failed", t.ToString());
}

TEST(Status, CopyAndMove) {
  Status a = Status::NotFound("missing key");
  Status b = a;  // copy
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(a.ToString(), b.ToString());

  Status c = std::move(a);  // move
  EXPECT_TRUE(c.IsNotFound());

  Status d;
  d = c;  // copy-assign
  EXPECT_TRUE(d.IsNotFound());

  Status e;
  e = std::move(c);  // move-assign
  EXPECT_TRUE(e.IsNotFound());
}

TEST(Status, SelfAssignment) {
  Status a = Status::Corruption("self");
  a = static_cast<Status&>(a);
  EXPECT_TRUE(a.IsCorruption());
  EXPECT_EQ("Corruption: self", a.ToString());
}

}  // namespace
}  // namespace pipelsm
