#include "src/util/arena.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/util/random.h"

namespace pipelsm {
namespace {

TEST(Arena, Empty) {
  Arena arena;
  EXPECT_EQ(0u, arena.MemoryUsage());
}

// LevelDB's randomized stress: allocate mixed sizes, write a per-chunk
// byte pattern, verify every byte afterwards.
TEST(Arena, Simple) {
  std::vector<std::pair<size_t, char*>> allocated;
  Arena arena;
  const int N = 100000;
  size_t bytes = 0;
  Random rnd(301);
  for (int i = 0; i < N; i++) {
    size_t s;
    if (i % (N / 10) == 0) {
      s = i;
    } else {
      s = rnd.OneIn(4000)
              ? rnd.Uniform(6000)
              : (rnd.OneIn(10) ? rnd.Uniform(100) : rnd.Uniform(20));
    }
    if (s == 0) {
      // Our arena disallows size 0 allocations.
      s = 1;
    }
    char* r;
    if (rnd.OneIn(10)) {
      r = arena.AllocateAligned(s);
    } else {
      r = arena.Allocate(s);
    }

    for (size_t b = 0; b < s; b++) {
      // Fill the "i"th allocation with a known bit pattern.
      r[b] = i % 256;
    }
    bytes += s;
    allocated.push_back(std::make_pair(s, r));
    EXPECT_GE(arena.MemoryUsage(), bytes);
    if (i > N / 10) {
      EXPECT_LE(arena.MemoryUsage(), bytes * 1.10);
    }
  }
  for (size_t i = 0; i < allocated.size(); i++) {
    size_t num_bytes = allocated[i].first;
    const char* p = allocated[i].second;
    for (size_t b = 0; b < num_bytes; b++) {
      // Check the "i"th allocation for the known bit pattern.
      EXPECT_EQ(static_cast<int>(i % 256), p[b] & 0xff);
    }
  }
}

TEST(Arena, AlignedAllocationsAreAligned) {
  Arena arena;
  for (int i = 1; i < 100; i++) {
    char* p = arena.AllocateAligned(i);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) % 8);
    arena.Allocate(1);  // knock alignment off for the next round
  }
}

TEST(Arena, LargeAllocationsGetOwnBlock) {
  Arena arena;
  char* big = arena.Allocate(64 * 1024);
  EXPECT_NE(nullptr, big);
  // Usage should cover the big block.
  EXPECT_GE(arena.MemoryUsage(), 64u * 1024);
  // The arena must still serve small allocations afterwards.
  char* small = arena.Allocate(16);
  EXPECT_NE(nullptr, small);
}

}  // namespace
}  // namespace pipelsm
