#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/table/filter_block.h"
#include "src/table/filter_policy.h"
#include "src/util/coding.h"
#include "src/util/logging.h"

namespace pipelsm {
namespace {

TEST(Bloom, EmptyFilter) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::string filter;
  policy->CreateFilter(nullptr, 0, &filter);
  EXPECT_FALSE(policy->KeyMayMatch("hello", filter));
}

TEST(Bloom, AddedKeysMatch) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::vector<Slice> keys = {"hello", "world"};
  std::string filter;
  policy->CreateFilter(keys.data(), keys.size(), &filter);
  EXPECT_TRUE(policy->KeyMayMatch("hello", filter));
  EXPECT_TRUE(policy->KeyMayMatch("world", filter));
}

TEST(Bloom, FalsePositiveRateReasonable) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::vector<std::string> key_storage;
  std::vector<Slice> keys;
  for (int i = 0; i < 10000; i++) {
    key_storage.push_back("key" + std::to_string(i));
  }
  for (const auto& k : key_storage) keys.emplace_back(k);
  std::string filter;
  policy->CreateFilter(keys.data(), keys.size(), &filter);

  for (const auto& k : key_storage) {
    EXPECT_TRUE(policy->KeyMayMatch(k, filter));  // no false negatives, ever
  }

  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; i++) {
    if (policy->KeyMayMatch("absent" + std::to_string(i), filter)) {
      false_positives++;
    }
  }
  // 10 bits/key → ~1%; allow up to 4%.
  EXPECT_LT(false_positives, probes / 25);
}

TEST(Bloom, VaryingBitsPerKey) {
  for (int bits : {4, 8, 10, 16}) {
    std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(bits));
    std::vector<Slice> keys = {"a", "bb", "ccc"};
    std::string filter;
    policy->CreateFilter(keys.data(), keys.size(), &filter);
    for (const Slice& k : keys) {
      EXPECT_TRUE(policy->KeyMayMatch(k, filter)) << bits;
    }
  }
}

// Filter-block plumbing (offsets, multiple 2KB windows).
class FilterBlockTest : public ::testing::Test {
 protected:
  FilterBlockTest() : policy_(NewBloomFilterPolicy(10)) {}
  std::unique_ptr<const FilterPolicy> policy_;
};

TEST_F(FilterBlockTest, EmptyBuilder) {
  FilterBlockBuilder builder(policy_.get());
  Slice block = builder.Finish();
  ASSERT_EQ("\\x00\\x00\\x00\\x00\\x0b", EscapeString(block));
  FilterBlockReader reader(policy_.get(), block);
  EXPECT_TRUE(reader.KeyMayMatch(0, "foo"));
  EXPECT_TRUE(reader.KeyMayMatch(100000, "foo"));
}

TEST_F(FilterBlockTest, SingleChunk) {
  FilterBlockBuilder builder(policy_.get());
  builder.StartBlock(100);
  builder.AddKey("foo");
  builder.AddKey("bar");
  builder.AddKey("box");
  builder.StartBlock(200);
  builder.AddKey("box");
  builder.StartBlock(300);
  builder.AddKey("hello");
  Slice block = builder.Finish();
  FilterBlockReader reader(policy_.get(), block);
  EXPECT_TRUE(reader.KeyMayMatch(100, "foo"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "bar"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "box"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "hello"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "foo"));
  EXPECT_FALSE(reader.KeyMayMatch(100, "missing"));
  EXPECT_FALSE(reader.KeyMayMatch(100, "other"));
}

TEST_F(FilterBlockTest, MultiChunk) {
  FilterBlockBuilder builder(policy_.get());

  // First filter
  builder.StartBlock(0);
  builder.AddKey("foo");
  builder.StartBlock(2000);
  builder.AddKey("bar");

  // Second filter
  builder.StartBlock(3100);
  builder.AddKey("box");

  // Third filter is empty

  // Last filter
  builder.StartBlock(9000);
  builder.AddKey("box");
  builder.AddKey("hello");

  Slice block = builder.Finish();
  FilterBlockReader reader(policy_.get(), block);

  // Check first filter
  EXPECT_TRUE(reader.KeyMayMatch(0, "foo"));
  EXPECT_TRUE(reader.KeyMayMatch(2000, "bar"));
  EXPECT_FALSE(reader.KeyMayMatch(0, "box"));
  EXPECT_FALSE(reader.KeyMayMatch(0, "hello"));

  // Check second filter
  EXPECT_TRUE(reader.KeyMayMatch(3100, "box"));
  EXPECT_FALSE(reader.KeyMayMatch(3100, "foo"));
  EXPECT_FALSE(reader.KeyMayMatch(3100, "bar"));
  EXPECT_FALSE(reader.KeyMayMatch(3100, "hello"));

  // Check third filter (empty)
  EXPECT_FALSE(reader.KeyMayMatch(4100, "foo"));
  EXPECT_FALSE(reader.KeyMayMatch(4100, "bar"));
  EXPECT_FALSE(reader.KeyMayMatch(4100, "box"));
  EXPECT_FALSE(reader.KeyMayMatch(4100, "hello"));

  // Check last filter
  EXPECT_TRUE(reader.KeyMayMatch(9000, "box"));
  EXPECT_TRUE(reader.KeyMayMatch(9000, "hello"));
  EXPECT_FALSE(reader.KeyMayMatch(9000, "foo"));
  EXPECT_FALSE(reader.KeyMayMatch(9000, "bar"));
}

}  // namespace
}  // namespace pipelsm
