#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/table/filter_block.h"
#include "src/table/filter_policy.h"
#include "src/util/coding.h"
#include "src/util/logging.h"

namespace pipelsm {
namespace {

TEST(Bloom, EmptyFilter) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::string filter;
  policy->CreateFilter(nullptr, 0, &filter);
  EXPECT_FALSE(policy->KeyMayMatch("hello", filter));
}

TEST(Bloom, AddedKeysMatch) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::vector<Slice> keys = {"hello", "world"};
  std::string filter;
  policy->CreateFilter(keys.data(), keys.size(), &filter);
  EXPECT_TRUE(policy->KeyMayMatch("hello", filter));
  EXPECT_TRUE(policy->KeyMayMatch("world", filter));
}

TEST(Bloom, FalsePositiveRateReasonable) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::vector<std::string> key_storage;
  std::vector<Slice> keys;
  for (int i = 0; i < 10000; i++) {
    key_storage.push_back("key" + std::to_string(i));
  }
  for (const auto& k : key_storage) keys.emplace_back(k);
  std::string filter;
  policy->CreateFilter(keys.data(), keys.size(), &filter);

  for (const auto& k : key_storage) {
    EXPECT_TRUE(policy->KeyMayMatch(k, filter));  // no false negatives, ever
  }

  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; i++) {
    if (policy->KeyMayMatch("absent" + std::to_string(i), filter)) {
      false_positives++;
    }
  }
  // 10 bits/key → ~1%; allow up to 4%.
  EXPECT_LT(false_positives, probes / 25);
}

TEST(Bloom, VaryingBitsPerKey) {
  for (int bits : {4, 8, 10, 16}) {
    std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(bits));
    std::vector<Slice> keys = {"a", "bb", "ccc"};
    std::string filter;
    policy->CreateFilter(keys.data(), keys.size(), &filter);
    for (const Slice& k : keys) {
      EXPECT_TRUE(policy->KeyMayMatch(k, filter)) << bits;
    }
  }
}

// Filter-block plumbing (offsets, multiple 2KB windows).
class FilterBlockTest : public ::testing::Test {
 protected:
  FilterBlockTest() : policy_(NewBloomFilterPolicy(10)) {}
  std::unique_ptr<const FilterPolicy> policy_;
};

TEST_F(FilterBlockTest, EmptyBuilder) {
  FilterBlockBuilder builder(policy_.get());
  Slice block = builder.Finish();
  // Zero partitions: index offset 0, count 0, base_lg — the 9-byte tail.
  ASSERT_EQ("\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x00\\x0b",
            EscapeString(block));
  FilterBlockReader reader(policy_.get(), block);
  EXPECT_TRUE(reader.KeyMayMatch(0, "foo"));
  EXPECT_TRUE(reader.KeyMayMatch(100000, "foo"));
}

TEST_F(FilterBlockTest, SingleChunk) {
  FilterBlockBuilder builder(policy_.get());
  builder.StartBlock(100);
  builder.AddKey("foo");
  builder.AddKey("bar");
  builder.AddKey("box");
  builder.StartBlock(200);
  builder.AddKey("box");
  builder.StartBlock(300);
  builder.AddKey("hello");
  Slice block = builder.Finish();
  FilterBlockReader reader(policy_.get(), block);
  EXPECT_TRUE(reader.KeyMayMatch(100, "foo"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "bar"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "box"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "hello"));
  EXPECT_TRUE(reader.KeyMayMatch(100, "foo"));
  EXPECT_FALSE(reader.KeyMayMatch(100, "missing"));
  EXPECT_FALSE(reader.KeyMayMatch(100, "other"));
}

TEST_F(FilterBlockTest, MultiChunk) {
  FilterBlockBuilder builder(policy_.get());

  // First filter
  builder.StartBlock(0);
  builder.AddKey("foo");
  builder.StartBlock(2000);
  builder.AddKey("bar");

  // Second filter
  builder.StartBlock(3100);
  builder.AddKey("box");

  // Third filter is empty

  // Last filter
  builder.StartBlock(9000);
  builder.AddKey("box");
  builder.AddKey("hello");

  Slice block = builder.Finish();
  FilterBlockReader reader(policy_.get(), block);

  // Check first filter
  EXPECT_TRUE(reader.KeyMayMatch(0, "foo"));
  EXPECT_TRUE(reader.KeyMayMatch(2000, "bar"));
  EXPECT_FALSE(reader.KeyMayMatch(0, "box"));
  EXPECT_FALSE(reader.KeyMayMatch(0, "hello"));

  // Check second filter
  EXPECT_TRUE(reader.KeyMayMatch(3100, "box"));
  EXPECT_FALSE(reader.KeyMayMatch(3100, "foo"));
  EXPECT_FALSE(reader.KeyMayMatch(3100, "bar"));
  EXPECT_FALSE(reader.KeyMayMatch(3100, "hello"));

  // Check third filter (empty)
  EXPECT_FALSE(reader.KeyMayMatch(4100, "foo"));
  EXPECT_FALSE(reader.KeyMayMatch(4100, "bar"));
  EXPECT_FALSE(reader.KeyMayMatch(4100, "box"));
  EXPECT_FALSE(reader.KeyMayMatch(4100, "hello"));

  // Check last filter
  EXPECT_TRUE(reader.KeyMayMatch(9000, "box"));
  EXPECT_TRUE(reader.KeyMayMatch(9000, "hello"));
  EXPECT_FALSE(reader.KeyMayMatch(9000, "foo"));
  EXPECT_FALSE(reader.KeyMayMatch(9000, "bar"));
}

TEST_F(FilterBlockTest, TinyPartitionsSplitAndProbeCorrectly) {
  // partition_bytes=1: every window seals its own partition, so probes
  // must route through the top index, not a single offset array.
  FilterBlockBuilder builder(policy_.get(), 1);
  const int kBlocks = 40;
  for (int i = 0; i < kBlocks; i++) {
    builder.StartBlock(static_cast<uint64_t>(i) * 2048);
    builder.AddKey("key" + std::to_string(i));
  }
  Slice block = builder.Finish();

  FilterBlockReader reader(policy_.get(), block);
  ASSERT_TRUE(reader.index().valid());
  EXPECT_GT(reader.index().num_partitions(), 1u);
  for (int i = 0; i < kBlocks; i++) {
    const uint64_t offset = static_cast<uint64_t>(i) * 2048;
    EXPECT_TRUE(reader.KeyMayMatch(offset, "key" + std::to_string(i))) << i;
    EXPECT_FALSE(reader.KeyMayMatch(offset, "absent" + std::to_string(i)))
        << i;
  }
  // Past the covered range: no filter, must not reject.
  EXPECT_TRUE(reader.KeyMayMatch(kBlocks * 2048 + (64 << 10), "anything"));
}

TEST_F(FilterBlockTest, ParseTailMatchesFullParse) {
  FilterBlockBuilder builder(policy_.get(), 64);
  for (int i = 0; i < 20; i++) {
    builder.StartBlock(static_cast<uint64_t>(i) * 2048);
    builder.AddKey("k" + std::to_string(i));
  }
  const std::string block = builder.Finish().ToString();

  FilterIndex full;
  ASSERT_TRUE(full.Parse(block));
  ASSERT_GT(full.num_partitions(), 1u);

  // A tail-only parse (index + tail words, no partition payload) sees
  // the identical index.
  const size_t tail_bytes = full.num_partitions() * 16 + 9;
  FilterIndex tail;
  ASSERT_TRUE(tail.ParseTail(
      Slice(block.data() + block.size() - tail_bytes, tail_bytes),
      block.size()));
  ASSERT_EQ(full.num_partitions(), tail.num_partitions());
  for (size_t i = 0; i < full.num_partitions(); i++) {
    EXPECT_EQ(full.partition(i).first_window, tail.partition(i).first_window);
    EXPECT_EQ(full.partition(i).num_windows, tail.partition(i).num_windows);
    EXPECT_EQ(full.partition(i).offset, tail.partition(i).offset);
    EXPECT_EQ(full.partition(i).size, tail.partition(i).size);
  }
}

TEST_F(FilterBlockTest, CorruptPartitionFailsCrcButNeverRejects) {
  FilterBlockBuilder builder(policy_.get(), 1);
  for (int i = 0; i < 4; i++) {
    builder.StartBlock(static_cast<uint64_t>(i) * 2048);
    builder.AddKey("k" + std::to_string(i));
  }
  std::string block = builder.Finish().ToString();

  FilterIndex index;
  ASSERT_TRUE(index.Parse(block));
  ASSERT_GE(index.num_partitions(), 1u);
  const FilterPartitionInfo& p = index.partition(0);
  ASSERT_TRUE(FilterPartitionCrcOk(Slice(block.data() + p.offset, p.size)));
  block[p.offset] ^= 0x40;  // flip a filter bit
  EXPECT_FALSE(FilterPartitionCrcOk(Slice(block.data() + p.offset, p.size)));
  // Malformed probes answer "may match" — a corrupt filter can cost an
  // extra read, never a false negative.
  EXPECT_TRUE(FilterPartitionKeyMayMatch(policy_.get(), Slice("x", 1), 3, 1,
                                         "whatever"));
}

}  // namespace
}  // namespace pipelsm
