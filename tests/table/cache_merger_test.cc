#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/read/cache.h"
#include "src/table/block.h"
#include "src/table/block_builder.h"
#include "src/table/comparator.h"
#include "src/table/merger.h"

namespace pipelsm {
namespace {

std::shared_ptr<Block> MakeBlock(const std::map<std::string, std::string>& kv) {
  BlockBuilder builder(16);
  for (const auto& [k, v] : kv) builder.Add(k, v);
  Slice raw = builder.Finish();
  char* buf = new char[raw.size()];
  std::memcpy(buf, raw.data(), raw.size());
  BlockContents contents;
  contents.data = Slice(buf, raw.size());
  contents.heap_allocated = true;
  contents.cachable = true;
  return std::make_shared<Block>(contents);
}

// Single-shard instances give deterministic global LRU order; the
// sharded behavior is covered by tests/read/sharded_cache_test.cc.
TEST(BlockCache, InsertLookup) {
  auto cache = read::NewShardedLRUCache(1 << 20, 1);
  auto block = MakeBlock({{"k", "v"}});
  cache->Insert("key1", block, 100);
  EXPECT_EQ(block.get(), cache->LookupAs<Block>("key1").get());
  EXPECT_EQ(nullptr, cache->Lookup("key2").get());
  EXPECT_EQ(1u, cache->hits());
  EXPECT_EQ(1u, cache->misses());
}

TEST(BlockCache, EvictsLruWhenFull) {
  auto cache = read::NewShardedLRUCache(300, 1);
  cache->Insert("a", MakeBlock({{"a", "1"}}), 100);
  cache->Insert("b", MakeBlock({{"b", "1"}}), 100);
  cache->Insert("c", MakeBlock({{"c", "1"}}), 100);
  // Touch "a" so "b" is LRU.
  EXPECT_NE(nullptr, cache->Lookup("a").get());
  cache->Insert("d", MakeBlock({{"d", "1"}}), 100);
  EXPECT_EQ(nullptr, cache->Lookup("b").get());  // evicted
  EXPECT_NE(nullptr, cache->Lookup("a").get());
  EXPECT_NE(nullptr, cache->Lookup("d").get());
  EXPECT_LE(cache->usage(), 300u);
  EXPECT_EQ(1u, cache->evictions());
}

TEST(BlockCache, PinnedEntriesSurviveEviction) {
  auto cache = read::NewShardedLRUCache(100, 1);
  auto pinned = cache->Lookup("never");  // warm up miss path
  auto block = MakeBlock({{"k", "v"}});
  cache->Insert("k", block, 100);
  std::shared_ptr<Block> alive = cache->LookupAs<Block>("k");
  // Overflow the cache; entry is evicted but the shared_ptr keeps the
  // block alive.
  cache->Insert("k2", MakeBlock({{"x", "y"}}), 100);
  EXPECT_NE(nullptr, alive.get());
  std::unique_ptr<Iterator> it(alive->NewIterator(BytewiseComparator()));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k", it->key().ToString());
}

TEST(BlockCache, EraseRemoves) {
  auto cache = read::NewShardedLRUCache(1000, 1);
  cache->Insert("a", MakeBlock({{"a", "1"}}), 10);
  cache->Erase("a");
  EXPECT_EQ(nullptr, cache->Lookup("a").get());
  cache->Erase("a");  // idempotent
}

TEST(BlockCache, ReplaceUpdatesCharge) {
  auto cache = read::NewShardedLRUCache(1000, 1);
  cache->Insert("a", MakeBlock({{"a", "1"}}), 400);
  cache->Insert("a", MakeBlock({{"a", "2"}}), 100);
  EXPECT_EQ(100u, cache->usage());
}

TEST(BlockCache, DistinctIds) {
  auto cache = read::NewShardedLRUCache(100, 1);
  uint64_t a = cache->NewId();
  uint64_t b = cache->NewId();
  EXPECT_NE(a, b);
}

Iterator* BlockIter(const std::map<std::string, std::string>& kv) {
  // Leak-free: the merging iterator takes ownership; block kept alive via
  // cleanup.
  auto block = MakeBlock(kv);
  Iterator* it = block->NewIterator(BytewiseComparator());
  it->RegisterCleanup([block]() mutable { block.reset(); });
  return it;
}

TEST(Merger, MergesSortedRuns) {
  Iterator* children[3] = {
      BlockIter({{"a", "1"}, {"d", "4"}, {"g", "7"}}),
      BlockIter({{"b", "2"}, {"e", "5"}}),
      BlockIter({{"c", "3"}, {"f", "6"}, {"h", "8"}}),
  };
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(BytewiseComparator(), children, 3));
  std::string out;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    out += merged->key().ToString();
  }
  EXPECT_EQ("abcdefgh", out);
}

TEST(Merger, ReverseScan) {
  Iterator* children[2] = {
      BlockIter({{"a", "1"}, {"c", "3"}}),
      BlockIter({{"b", "2"}, {"d", "4"}}),
  };
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(BytewiseComparator(), children, 2));
  std::string out;
  for (merged->SeekToLast(); merged->Valid(); merged->Prev()) {
    out += merged->key().ToString();
  }
  EXPECT_EQ("dcba", out);
}

TEST(Merger, Seek) {
  Iterator* children[2] = {
      BlockIter({{"a", "1"}, {"e", "5"}}),
      BlockIter({{"c", "3"}, {"g", "7"}}),
  };
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(BytewiseComparator(), children, 2));
  merged->Seek("d");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("e", merged->key().ToString());
  merged->Seek("a");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("a", merged->key().ToString());
  merged->Seek("z");
  EXPECT_FALSE(merged->Valid());
}

TEST(Merger, DirectionSwitch) {
  Iterator* children[2] = {
      BlockIter({{"a", "1"}, {"c", "3"}}),
      BlockIter({{"b", "2"}, {"d", "4"}}),
  };
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(BytewiseComparator(), children, 2));
  merged->Seek("b");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("b", merged->key().ToString());
  merged->Next();
  EXPECT_EQ("c", merged->key().ToString());
  merged->Prev();
  EXPECT_EQ("b", merged->key().ToString());
  merged->Prev();
  EXPECT_EQ("a", merged->key().ToString());
  merged->Next();
  EXPECT_EQ("b", merged->key().ToString());
}

TEST(Merger, ZeroAndOneChild) {
  std::unique_ptr<Iterator> none(
      NewMergingIterator(BytewiseComparator(), nullptr, 0));
  none->SeekToFirst();
  EXPECT_FALSE(none->Valid());

  Iterator* one[1] = {BlockIter({{"x", "1"}})};
  std::unique_ptr<Iterator> single(
      NewMergingIterator(BytewiseComparator(), one, 1));
  single->SeekToFirst();
  ASSERT_TRUE(single->Valid());
  EXPECT_EQ("x", single->key().ToString());
}

}  // namespace
}  // namespace pipelsm
