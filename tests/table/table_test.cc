#include "src/table/table.h"

#include <gtest/gtest.h>

#include <map>

#include "src/env/sim_env.h"
#include "src/table/filter_policy.h"
#include "src/table/format.h"
#include "src/table/table_builder.h"
#include "src/util/random.h"

namespace pipelsm {
namespace {

struct TableFixture {
  SimEnv env;
  std::string fname = "/t.pst";
  std::unique_ptr<Table> table;

  Status Build(const std::map<std::string, std::string>& kv,
               TableOptions opt = TableOptions()) {
    std::unique_ptr<WritableFile> file;
    Status s = env.NewWritableFile(fname, &file);
    if (!s.ok()) return s;
    TableBuilder builder(opt, file.get());
    for (const auto& [k, v] : kv) {
      builder.Add(k, v);
    }
    s = builder.Finish();
    if (!s.ok()) return s;
    s = file->Close();
    if (!s.ok()) return s;

    uint64_t size;
    s = env.GetFileSize(fname, &size);
    if (!s.ok()) return s;
    std::unique_ptr<RandomAccessFile> raf;
    s = env.NewRandomAccessFile(fname, &raf);
    if (!s.ok()) return s;
    return Table::Open(opt, std::move(raf), size, &table);
  }
};

std::map<std::string, std::string> MakeKv(int n, uint32_t seed = 301) {
  Random rnd(seed);
  std::map<std::string, std::string> kv;
  for (int i = 0; i < n; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%08d", i);
    kv[key] = std::string(10 + rnd.Uniform(90), static_cast<char>('a' + i % 26));
  }
  return kv;
}

TEST(Table, EmptyTable) {
  TableFixture f;
  ASSERT_TRUE(f.Build({}).ok());
  std::unique_ptr<Iterator> it(f.table->NewIterator());
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
}

TEST(Table, FullScanRoundTrip) {
  TableFixture f;
  auto kv = MakeKv(2000);
  ASSERT_TRUE(f.Build(kv).ok());

  std::unique_ptr<Iterator> it(f.table->NewIterator());
  auto expected = kv.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(kv.end(), expected);
    EXPECT_EQ(expected->first, it->key().ToString());
    EXPECT_EQ(expected->second, it->value().ToString());
  }
  EXPECT_EQ(kv.end(), expected);
  EXPECT_TRUE(it->status().ok());
}

TEST(Table, SeekAcrossBlocks) {
  TableFixture f;
  TableOptions opt;
  opt.block_size = 256;  // force many data blocks
  auto kv = MakeKv(500);
  ASSERT_TRUE(f.Build(kv, opt).ok());

  std::unique_ptr<Iterator> it(f.table->NewIterator());
  for (int i = 0; i < 500; i += 37) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%08d", i);
    it->Seek(key);
    ASSERT_TRUE(it->Valid()) << key;
    EXPECT_EQ(key, it->key().ToString());
  }
  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
}

TEST(Table, BackwardScan) {
  TableFixture f;
  TableOptions opt;
  opt.block_size = 128;
  auto kv = MakeKv(300);
  ASSERT_TRUE(f.Build(kv, opt).ok());
  std::unique_ptr<Iterator> it(f.table->NewIterator());
  auto expected = kv.rbegin();
  for (it->SeekToLast(); it->Valid(); it->Prev(), ++expected) {
    ASSERT_NE(kv.rend(), expected);
    EXPECT_EQ(expected->first, it->key().ToString());
  }
  EXPECT_EQ(kv.rend(), expected);
}

TEST(Table, InternalGetFindsEntries) {
  TableFixture f;
  auto kv = MakeKv(400);
  ASSERT_TRUE(f.Build(kv).ok());

  for (const auto& [k, v] : kv) {
    bool found = false;
    std::string got;
    ASSERT_TRUE(f.table
                    ->InternalGet({}, k,
                                  [&](const Slice& fk, const Slice& fv) {
                                    if (fk == Slice(k)) {
                                      found = true;
                                      got = fv.ToString();
                                    }
                                  })
                    .ok());
    EXPECT_TRUE(found) << k;
    EXPECT_EQ(v, got);
  }
}

TEST(Table, WithBloomFilter) {
  TableFixture f;
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  TableOptions opt;
  opt.filter_policy = policy.get();
  auto kv = MakeKv(500);
  ASSERT_TRUE(f.Build(kv, opt).ok());

  int hits = 0;
  for (const auto& [k, v] : kv) {
    f.table->InternalGet({}, k, [&](const Slice&, const Slice&) { hits++; });
  }
  EXPECT_EQ(500, hits);
}

TEST(Table, NoCompressionOption) {
  TableFixture f;
  TableOptions opt;
  opt.compression = CompressionType::kNoCompression;
  auto kv = MakeKv(100);
  ASSERT_TRUE(f.Build(kv, opt).ok());
  std::unique_ptr<Iterator> it(f.table->NewIterator());
  int n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
  EXPECT_EQ(100, n);
}

TEST(Table, ChecksumCatchesCorruption) {
  TableFixture f;
  TableOptions opt;
  opt.block_size = 512;
  opt.verify_checksums = true;
  auto kv = MakeKv(400);
  ASSERT_TRUE(f.Build(kv, opt).ok());

  // Flip bytes early in the file (inside the first data block).
  ASSERT_TRUE(f.env.CorruptFile(f.fname, 10, 8).ok());

  // Reopen: index block is at the end, likely intact; reading the first
  // data block must fail the checksum.
  uint64_t size;
  ASSERT_TRUE(f.env.GetFileSize(f.fname, &size).ok());
  std::unique_ptr<RandomAccessFile> raf;
  ASSERT_TRUE(f.env.NewRandomAccessFile(f.fname, &raf).ok());
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::Open(opt, std::move(raf), size, &table).ok());

  std::unique_ptr<Iterator> it(table->NewIterator());
  it->SeekToFirst();
  // Either the iterator is immediately invalid or a scan hits the error.
  while (it->Valid()) it->Next();
  EXPECT_FALSE(it->status().ok());
  EXPECT_TRUE(it->status().IsCorruption());
}

TEST(Table, ApproximateOffsetMonotone) {
  TableFixture f;
  TableOptions opt;
  opt.block_size = 256;
  auto kv = MakeKv(1000);
  ASSERT_TRUE(f.Build(kv, opt).ok());

  uint64_t prev = 0;
  for (int i = 0; i < 1000; i += 100) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%08d", i);
    uint64_t off = f.table->ApproximateOffsetOf(key);
    EXPECT_GE(off, prev);
    prev = off;
  }
}

TEST(Table, IndexIteratorEnumeratesBlocks) {
  TableFixture f;
  TableOptions opt;
  opt.block_size = 256;
  auto kv = MakeKv(500);
  ASSERT_TRUE(f.Build(kv, opt).ok());

  std::unique_ptr<Iterator> idx(f.table->NewIndexIterator());
  int blocks = 0;
  std::string prev_key;
  for (idx->SeekToFirst(); idx->Valid(); idx->Next()) {
    blocks++;
    if (!prev_key.empty()) {
      EXPECT_GT(idx->key().ToString(), prev_key);
    }
    prev_key = idx->key().ToString();

    // Every index value decodes into a readable raw block.
    BlockHandle handle;
    Slice v = idx->value();
    ASSERT_TRUE(handle.DecodeFrom(&v).ok());
    RawBlock raw;
    ASSERT_TRUE(f.table->ReadRaw(handle, &raw).ok());
    ASSERT_TRUE(VerifyRawBlock(raw).ok());
    std::string contents;
    ASSERT_TRUE(DecodeRawBlock(raw, &contents).ok());
    EXPECT_GT(contents.size(), 0u);
  }
  EXPECT_GT(blocks, 10);
}

}  // namespace
}  // namespace pipelsm
