#include "src/table/block.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/table/block_builder.h"
#include "src/table/comparator.h"
#include "src/util/random.h"

namespace pipelsm {
namespace {

// Builds a block from sorted pairs and returns an owning Block.
std::unique_ptr<Block> BuildBlock(const std::map<std::string, std::string>& kv,
                                  int restart_interval = 16) {
  BlockBuilder builder(restart_interval);
  for (const auto& [k, v] : kv) {
    builder.Add(k, v);
  }
  Slice raw = builder.Finish();
  char* buf = new char[raw.size()];
  std::memcpy(buf, raw.data(), raw.size());
  BlockContents contents;
  contents.data = Slice(buf, raw.size());
  contents.heap_allocated = true;
  contents.cachable = false;
  return std::make_unique<Block>(contents);
}

TEST(Block, EmptyBlockIterates) {
  std::map<std::string, std::string> kv;
  auto block = BuildBlock(kv);
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
}

TEST(Block, ForwardIteration) {
  std::map<std::string, std::string> kv = {
      {"apple", "1"}, {"banana", "2"}, {"cherry", "3"}, {"date", "4"}};
  auto block = BuildBlock(kv);
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));
  auto expected = kv.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(kv.end(), expected);
    EXPECT_EQ(expected->first, it->key().ToString());
    EXPECT_EQ(expected->second, it->value().ToString());
  }
  EXPECT_EQ(kv.end(), expected);
  EXPECT_TRUE(it->status().ok());
}

TEST(Block, BackwardIteration) {
  std::map<std::string, std::string> kv = {
      {"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}, {"e", "5"}};
  auto block = BuildBlock(kv, /*restart_interval=*/2);
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));
  auto expected = kv.rbegin();
  for (it->SeekToLast(); it->Valid(); it->Prev(), ++expected) {
    ASSERT_NE(kv.rend(), expected);
    EXPECT_EQ(expected->first, it->key().ToString());
  }
  EXPECT_EQ(kv.rend(), expected);
}

TEST(Block, Seek) {
  std::map<std::string, std::string> kv = {
      {"b", "1"}, {"d", "2"}, {"f", "3"}, {"h", "4"}};
  auto block = BuildBlock(kv, 2);
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));

  it->Seek("d");  // exact hit
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("d", it->key().ToString());

  it->Seek("e");  // between keys: lands on next
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("f", it->key().ToString());

  it->Seek("a");  // before first
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("b", it->key().ToString());

  it->Seek("z");  // past last
  EXPECT_FALSE(it->Valid());
}

TEST(Block, PrefixCompressionPreservesKeys) {
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 500; i++) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "common_prefix_%06d", i);
    kv[buf] = std::to_string(i);
  }
  auto block = BuildBlock(kv, 16);
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));
  auto expected = kv.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    EXPECT_EQ(expected->first, it->key().ToString());
    EXPECT_EQ(expected->second, it->value().ToString());
  }
  EXPECT_EQ(kv.end(), expected);
}

TEST(Block, CorruptContentsYieldErrorIterator) {
  BlockContents contents;
  contents.data = Slice("xx", 2);  // shorter than the restart count field
  contents.heap_allocated = false;
  contents.cachable = false;
  Block block(contents);
  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  EXPECT_FALSE(it->Valid());
  EXPECT_FALSE(it->status().ok());
}

TEST(BlockBuilder, ResetReuses) {
  BlockBuilder builder(4);
  builder.Add("a", "1");
  builder.Add("b", "2");
  EXPECT_GT(builder.CurrentSizeEstimate(), 0u);
  builder.Finish();
  builder.Reset();
  EXPECT_TRUE(builder.empty());
  builder.Add("c", "3");
  Slice raw = builder.Finish();
  EXPECT_GT(raw.size(), 0u);
}

// Property sweep across restart intervals: every key written is found by
// both scan and seek.
class BlockRestartSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlockRestartSweep, ScanAndSeek) {
  const int restart_interval = GetParam();
  Random rnd(restart_interval * 997);
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 200; i++) {
    std::string key;
    const int len = 1 + rnd.Uniform(24);
    for (int j = 0; j < len; j++) {
      key.push_back(static_cast<char>('a' + rnd.Uniform(26)));
    }
    kv[key] = std::to_string(rnd.Next());
  }
  auto block = BuildBlock(kv, restart_interval);
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));

  size_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
  EXPECT_EQ(kv.size(), n);

  for (const auto& [k, v] : kv) {
    it->Seek(k);
    ASSERT_TRUE(it->Valid()) << k;
    EXPECT_EQ(k, it->key().ToString());
    EXPECT_EQ(v, it->value().ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(RestartIntervals, BlockRestartSweep,
                         ::testing::Values(1, 2, 3, 8, 16, 64));

}  // namespace
}  // namespace pipelsm
