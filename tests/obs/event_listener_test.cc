// EventListener dispatch tests, run against a live DB for every
// compaction procedure: Begin precedes Completed for the same job id,
// job ids are monotone across flushes and compactions, completed
// compactions carry a populated S1-S7 StepProfile, stall transitions
// chain consistently, and the internal EventLogger leaves grep-able
// EVENT lines in the LOG file.
#include "src/obs/event_listener.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/env/sim_env.h"
#include "src/util/stopwatch.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

// Records every callback, tagged so cross-event ordering is checkable.
// Callbacks arrive from the background thread (flush/compaction) and
// writer threads (stalls), hence the mutex.
class RecordingListener : public obs::EventListener {
 public:
  enum Kind { kFlushBegin, kFlushEnd, kCompactionBegin, kCompactionEnd };
  struct Event {
    Kind kind = kFlushBegin;
    obs::FlushJobInfo flush;
    obs::CompactionJobInfo compaction;
  };

  void OnFlushBegin(const obs::FlushJobInfo& info) override {
    Event e;
    e.kind = kFlushBegin;
    e.flush = info;
    Push(e);
  }
  void OnFlushCompleted(const obs::FlushJobInfo& info) override {
    Event e;
    e.kind = kFlushEnd;
    e.flush = info;
    Push(e);
  }
  void OnCompactionBegin(const obs::CompactionJobInfo& info) override {
    Event e;
    e.kind = kCompactionBegin;
    e.compaction = info;
    Push(e);
  }
  void OnCompactionCompleted(const obs::CompactionJobInfo& info) override {
    Event e;
    e.kind = kCompactionEnd;
    e.compaction = info;
    Push(e);
  }
  void OnWriteStallChange(const obs::WriteStallInfo& info) override {
    std::lock_guard<std::mutex> lock(mu_);
    stalls_.push_back(info);
  }

  std::vector<Event> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }
  std::vector<obs::WriteStallInfo> stalls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stalls_;
  }

 private:
  void Push(const Event& e) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(e);
  }

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::vector<obs::WriteStallInfo> stalls_;
};

const char* ExecutorName(CompactionMode mode) {
  switch (mode) {
    case CompactionMode::kSCP:   return "SCP";
    case CompactionMode::kPCP:   return "PCP";
    case CompactionMode::kSPPCP: return "S-PPCP";
    case CompactionMode::kCPPCP: return "C-PPCP";
  }
  return "?";
}

class EventListenerTest : public ::testing::TestWithParam<CompactionMode> {
 protected:
  EventListenerTest() {
    options_.env = &env_;
    options_.create_if_missing = true;
    options_.compaction_mode = GetParam();
    options_.compute_parallelism =
        GetParam() == CompactionMode::kCPPCP ? 3 : 1;
    options_.io_parallelism = GetParam() == CompactionMode::kSPPCP ? 3 : 1;
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 64 << 10;
    options_.subtask_bytes = 16 << 10;
    options_.listeners.push_back(&listener_);
  }

  void OpenFillClose() {
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options_, "/db", &raw).ok());
    std::unique_ptr<DB> db(raw);
    WorkloadGenerator gen(4000, 16, 100, KeyOrder::kRandom);
    for (uint64_t i = 0; i < gen.num_entries(); i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
    }
    ASSERT_TRUE(db->WaitForCompactions().ok());
  }

  SimEnv env_;
  Options options_;
  RecordingListener listener_;
};

TEST_P(EventListenerTest, BeginPrecedesCompletedAndJobIdsAreMonotone) {
  OpenFillClose();
  const std::vector<RecordingListener::Event> events = listener_.events();

  size_t flush_begin = 0, flush_end = 0, comp_begin = 0, comp_end = 0;
  uint64_t last_begin_job_id = 0;
  std::set<uint64_t> begun, completed;
  for (const auto& e : events) {
    const bool is_begin = e.kind == RecordingListener::kFlushBegin ||
                          e.kind == RecordingListener::kCompactionBegin;
    const uint64_t job_id = (e.kind == RecordingListener::kFlushBegin ||
                             e.kind == RecordingListener::kFlushEnd)
                                ? e.flush.job_id
                                : e.compaction.job_id;
    EXPECT_GT(job_id, 0u);
    if (is_begin) {
      // One shared sequence: every Begin — flush or compaction — carries
      // a larger id than every Begin before it.
      EXPECT_GT(job_id, last_begin_job_id);
      last_begin_job_id = job_id;
      EXPECT_TRUE(begun.insert(job_id).second) << "duplicate Begin " << job_id;
    } else {
      EXPECT_TRUE(begun.count(job_id)) << "Completed before Begin " << job_id;
      EXPECT_TRUE(completed.insert(job_id).second)
          << "duplicate Completed " << job_id;
    }
    switch (e.kind) {
      case RecordingListener::kFlushBegin:      flush_begin++; break;
      case RecordingListener::kFlushEnd:        flush_end++; break;
      case RecordingListener::kCompactionBegin: comp_begin++; break;
      case RecordingListener::kCompactionEnd:   comp_end++; break;
    }
  }

  // The tiny write buffer forces many flushes and at least one major
  // compaction, and every Begin got its Completed.
  EXPECT_GT(flush_begin, 0u);
  EXPECT_GT(comp_begin, 0u);
  EXPECT_EQ(flush_begin, flush_end);
  EXPECT_EQ(comp_begin, comp_end);
  EXPECT_EQ(begun, completed);
}

TEST_P(EventListenerTest, CompletedEventsCarryMeasurements) {
  OpenFillClose();
  for (const auto& e : listener_.events()) {
    if (e.kind == RecordingListener::kFlushEnd) {
      ASSERT_TRUE(e.flush.status.ok()) << e.flush.status.ToString();
      EXPECT_GT(e.flush.file_number, 0u);
      EXPECT_GT(e.flush.entries, 0u);
      EXPECT_GT(e.flush.output_bytes, 0u);
      EXPECT_GT(e.flush.micros, 0u);
    } else if (e.kind == RecordingListener::kCompactionEnd) {
      const obs::CompactionJobInfo& c = e.compaction;
      ASSERT_TRUE(c.status.ok()) << c.status.ToString();
      EXPECT_STREQ(ExecutorName(GetParam()), c.executor);
      EXPECT_GT(c.input_files, 0);
      EXPECT_GT(c.input_bytes, 0u);
      EXPECT_GT(c.subtasks, 0u);
      EXPECT_GT(c.output_bytes, 0u);
      EXPECT_GT(c.wall_micros, 0u);
      // The advisor's food: nonzero measured time in each pipeline stage.
      EXPECT_GT(c.profile.nanos[kStepRead], 0u);
      EXPECT_GT(c.profile.ComputeNanos(), 0u);
      EXPECT_GT(c.profile.nanos[kStepWrite], 0u);
      EXPECT_EQ(c.subtasks, c.profile.subtasks);
    }
  }
}

TEST_P(EventListenerTest, StallTransitionsChainAndEndNormal) {
  OpenFillClose();
  obs::WriteStallCondition previous = obs::WriteStallCondition::kNormal;
  for (const obs::WriteStallInfo& s : listener_.stalls()) {
    EXPECT_EQ(previous, s.previous);  // no skipped transitions
    EXPECT_NE(s.condition, s.previous);
    previous = s.condition;
  }
  // MakeRoomForWrite restores kNormal once room exists, so a quiesced DB
  // never ends mid-stall.
  EXPECT_EQ(obs::WriteStallCondition::kNormal, previous);
}

TEST_P(EventListenerTest, EventLoggerWritesGrepableLogLines) {
  OpenFillClose();  // DB closed: LOG complete, including the final stats
  std::string log;
  ASSERT_TRUE(ReadFileToString(&env_, "/db/LOG", &log).ok());
  EXPECT_NE(std::string::npos, log.find("EVENT flush_begin"));
  EXPECT_NE(std::string::npos, log.find("EVENT flush_end"));
  EXPECT_NE(std::string::npos, log.find("EVENT compaction_begin"));
  EXPECT_NE(std::string::npos, log.find("EVENT compaction_end"));
  EXPECT_NE(std::string::npos,
            log.find(std::string("executor=") + ExecutorName(GetParam())));
  EXPECT_NE(std::string::npos, log.find("closing DB"));
}

INSTANTIATE_TEST_SUITE_P(AllModes, EventListenerTest,
                         ::testing::Values(CompactionMode::kSCP,
                                           CompactionMode::kPCP,
                                           CompactionMode::kSPPCP,
                                           CompactionMode::kCPPCP),
                         [](const auto& info) {
                           // gtest names must be alnum: drop the dashes.
                           std::string name = ExecutorName(info.param);
                           name.erase(std::remove(name.begin(), name.end(),
                                                  '-'),
                                      name.end());
                           return name;
                         });

}  // namespace
}  // namespace pipelsm
