// Minimal recursive-descent JSON parser for golden-format tests.
//
// The observability layer's contract is "emits valid JSON that external
// tools (Perfetto, jq) can load", so the tests must actually parse the
// output rather than substring-match it. This parser covers the full
// JSON grammar the emitters can produce; it is test-only and favours
// clarity over speed.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace pipelsm::testjson {

struct JsonValue {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (type != kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole input as one JSON value (trailing whitespace ok).
  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    pos_++;
    return true;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') n++;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::kString;
        return ParseString(&out->string_value);
      case 't':
        out->type = JsonValue::kBool;
        out->bool_value = true;
        return ConsumeLiteral("true") || Fail("bad literal");
      case 'f':
        out->type = JsonValue::kBool;
        out->bool_value = false;
        return ConsumeLiteral("false") || Fail("bad literal");
      case 'n':
        out->type = JsonValue::kNull;
        return ConsumeLiteral("null") || Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::kObject;
    if (!Consume('{')) return Fail("expected '{'");
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::kArray;
    if (!Consume('[')) return Fail("expected '['");
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    out->clear();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected '\"'");
    }
    pos_++;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':  out->push_back('"');  break;
        case '\\': out->push_back('\\'); break;
        case '/':  out->push_back('/');  break;
        case 'b':  out->push_back('\b'); break;
        case 'f':  out->push_back('\f'); break;
        case 'n':  out->push_back('\n'); break;
        case 'r':  out->push_back('\r'); break;
        case 't':  out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; i++) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // The emitters only escape control characters, so a plain
          // byte append covers everything they produce.
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') pos_++;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) return Fail("expected a value");
    out->type = JsonValue::kNumber;
    out->number_value = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                    nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

inline bool ParseJson(const std::string& text, JsonValue* out,
                      std::string* error = nullptr) {
  JsonParser parser(text);
  const bool ok = parser.Parse(out);
  if (!ok && error != nullptr) *error = parser.error();
  return ok;
}

}  // namespace pipelsm::testjson
