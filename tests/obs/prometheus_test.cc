// Conformance tests for the Prometheus text exposition renderer: the
// contract is "a scraper that implements the 0.0.4 text format parses
// this", so the tests parse rendered output line by line rather than
// substring-matching whole documents.
#include "src/obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/metrics.h"

namespace pipelsm::obs {
namespace {

struct ParsedSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
  bool is_nan = false;
};

struct ParsedExposition {
  std::map<std::string, std::string> help;  // family -> HELP text
  std::map<std::string, std::string> type;  // family -> TYPE
  std::vector<ParsedSample> samples;
};

// Strict single-purpose parser for the subset of the exposition format
// the renderer can emit. Fails the test on any malformed line; call via
// ASSERT_NO_FATAL_FAILURE (ASSERT_* needs a void function).
void ParseExpositionInto(const std::string& text, ParsedExposition* outp) {
  ParsedExposition& out = *outp;
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n') << "exposition must end with a newline";
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      const size_t sp = line.find(' ', 7);
      ASSERT_NE(sp, std::string::npos) << line;
      out.help[line.substr(7, sp - 7)] = line.substr(sp + 1);
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t sp = line.find(' ', 7);
      ASSERT_NE(sp, std::string::npos) << line;
      out.type[line.substr(7, sp - 7)] = line.substr(sp + 1);
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    ParsedSample sample;
    size_t pos = 0;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) ||
            line[pos] == '_' || line[pos] == ':')) {
      pos++;
    }
    ASSERT_GT(pos, 0u) << line;
    sample.name = line.substr(0, pos);
    if (pos < line.size() && line[pos] == '{') {
      pos++;
      while (line[pos] != '}') {
        size_t eq = line.find('=', pos);
        ASSERT_NE(eq, std::string::npos) << line;
        const std::string key = line.substr(pos, eq - pos);
        ASSERT_EQ(line[eq + 1], '"') << line;
        pos = eq + 2;
        std::string value;
        while (line[pos] != '"') {
          if (line[pos] == '\\') {
            pos++;
            ASSERT_LT(pos, line.size()) << line;
            if (line[pos] == 'n') {
              value.push_back('\n');
            } else {
              value.push_back(line[pos]);  // \\ and \"
            }
          } else {
            value.push_back(line[pos]);
          }
          pos++;
          ASSERT_LT(pos, line.size()) << "unterminated label value: " << line;
        }
        pos++;  // closing quote
        sample.labels[key] = value;
        if (line[pos] == ',') pos++;
      }
      pos++;  // closing brace
    }
    ASSERT_EQ(line[pos], ' ') << line;
    const std::string value_text = line.substr(pos + 1);
    ASSERT_FALSE(value_text.empty()) << line;
    if (value_text == "NaN") {
      sample.is_nan = true;
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_text.c_str(), &end);
      ASSERT_EQ(*end, '\0') << "trailing junk in value: " << line;
    }
    out.samples.push_back(std::move(sample));
  }
}

std::vector<ParsedSample> SamplesNamed(const ParsedExposition& exp,
                                       const std::string& name) {
  std::vector<ParsedSample> out;
  for (const ParsedSample& s : exp.samples) {
    if (s.name == name) out.push_back(s);
  }
  return out;
}

TEST(PrometheusNameTest, SanitizesDottedNames) {
  EXPECT_EQ(PrometheusMetricName("server.conns_total"), "server_conns_total");
  EXPECT_EQ(PrometheusMetricName("db.get.micros"), "db_get_micros");
  EXPECT_EQ(PrometheusMetricName("weird-name!x"), "weird_name_x");
  EXPECT_EQ(PrometheusMetricName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusMetricName("a:b"), "a:b");
}

TEST(PrometheusNameTest, LabelValueEscaping) {
  std::string out;
  AppendPrometheusLabelValue("plain", &out);
  EXPECT_EQ(out, "plain");
  out.clear();
  AppendPrometheusLabelValue("a\\b\"c\nd", &out);
  EXPECT_EQ(out, "a\\\\b\\\"c\\nd");
}

TEST(PrometheusExpositionTest, CountersAndGaugesRenderWithHelpAndType) {
  MetricsRegistry registry;
  registry.RegisterCounter("server.requests", "Requests served")->Add(42);
  registry.RegisterGauge("server.conns_active", "Open connections")->Set(-3);

  PrometheusExposition exp;
  exp.AddRegistry(registry, {});
  ParsedExposition parsed;
  ASSERT_NO_FATAL_FAILURE(ParseExpositionInto(exp.Render(), &parsed));

  EXPECT_EQ(parsed.type.at("pipelsm_server_requests"), "counter");
  EXPECT_EQ(parsed.help.at("pipelsm_server_requests"), "Requests served");
  EXPECT_EQ(parsed.type.at("pipelsm_server_conns_active"), "gauge");

  auto requests = SamplesNamed(parsed, "pipelsm_server_requests");
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].value, 42);
  EXPECT_TRUE(requests[0].labels.empty());

  auto conns = SamplesNamed(parsed, "pipelsm_server_conns_active");
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(conns[0].value, -3);
}

TEST(PrometheusExpositionTest, HistogramsRenderAsSummaries) {
  MetricsRegistry registry;
  HistogramMetric* h =
      registry.RegisterHistogram("db.get_micros", "Get latency");
  for (int i = 1; i <= 100; i++) h->Observe(i);

  PrometheusExposition exp;
  exp.AddRegistry(registry, {});
  ParsedExposition parsed;
  ASSERT_NO_FATAL_FAILURE(ParseExpositionInto(exp.Render(), &parsed));

  EXPECT_EQ(parsed.type.at("pipelsm_db_get_micros"), "summary");
  auto quantiles = SamplesNamed(parsed, "pipelsm_db_get_micros");
  ASSERT_EQ(quantiles.size(), 3u);
  std::set<std::string> seen;
  for (const ParsedSample& q : quantiles) {
    ASSERT_EQ(q.labels.count("quantile"), 1u);
    seen.insert(q.labels.at("quantile"));
    EXPECT_FALSE(q.is_nan);
    EXPECT_GT(q.value, 0);
  }
  EXPECT_EQ(seen, (std::set<std::string>{"0.5", "0.95", "0.99"}));

  auto count = SamplesNamed(parsed, "pipelsm_db_get_micros_count");
  ASSERT_EQ(count.size(), 1u);
  EXPECT_EQ(count[0].value, 100);
  auto sum = SamplesNamed(parsed, "pipelsm_db_get_micros_sum");
  ASSERT_EQ(sum.size(), 1u);
  EXPECT_EQ(sum[0].value, 5050);
  // _sum/_count belong to the summary family: no own HELP/TYPE lines.
  EXPECT_EQ(parsed.type.count("pipelsm_db_get_micros_count"), 0u);
  EXPECT_EQ(parsed.type.count("pipelsm_db_get_micros_sum"), 0u);
}

// Regression: empty-histogram quantiles used to render as literal NaN,
// which strict exposition parsers reject. They must be 0, and no
// quantile line (or any line) may carry nan in any casing.
TEST(PrometheusExpositionTest, EmptyHistogramQuantilesAreZeroNeverNaN) {
  MetricsRegistry registry;
  registry.RegisterHistogram("db.get_micros", "Get latency");
  PrometheusExposition exp;
  exp.AddRegistry(registry, {});
  const std::string text = exp.Render();
  std::string lowered = text;
  for (char& c : lowered) c = static_cast<char>(std::tolower(c));
  EXPECT_EQ(std::string::npos, lowered.find("nan")) << text;

  ParsedExposition parsed;
  ASSERT_NO_FATAL_FAILURE(ParseExpositionInto(text, &parsed));
  auto quantiles = SamplesNamed(parsed, "pipelsm_db_get_micros");
  ASSERT_EQ(quantiles.size(), 3u);
  for (const ParsedSample& q : quantiles) {
    EXPECT_FALSE(q.is_nan);
    EXPECT_EQ(q.value, 0);
  }
  auto count = SamplesNamed(parsed, "pipelsm_db_get_micros_count");
  ASSERT_EQ(count.size(), 1u);
  EXPECT_EQ(count[0].value, 0);
}

TEST(PrometheusExpositionTest, ShardLabelsDistinguishRegistries) {
  MetricsRegistry shard0, shard1;
  shard0.RegisterCounter("db.writes", "Writes")->Add(10);
  shard1.RegisterCounter("db.writes", "Writes")->Add(20);

  PrometheusExposition exp;
  exp.AddRegistry(shard0, {{"shard", "0"}});
  exp.AddRegistry(shard1, {{"shard", "1"}});
  ParsedExposition parsed;
  ASSERT_NO_FATAL_FAILURE(ParseExpositionInto(exp.Render(), &parsed));

  auto writes = SamplesNamed(parsed, "pipelsm_db_writes");
  ASSERT_EQ(writes.size(), 2u);
  std::map<std::string, double> by_shard;
  for (const ParsedSample& s : writes) {
    by_shard[s.labels.at("shard")] = s.value;
  }
  EXPECT_EQ(by_shard.at("0"), 10);
  EXPECT_EQ(by_shard.at("1"), 20);
  // One family, one HELP/TYPE pair, both samples under it.
  EXPECT_EQ(parsed.type.count("pipelsm_db_writes"), 1u);
}

TEST(PrometheusExpositionTest, EmbeddedShardNamesFoldIntoLabels) {
  MetricsRegistry fleet;
  fleet.RegisterCounter("server.shard0.write_ops", "Shard writes")->Add(7);
  fleet.RegisterCounter("server.shard1.write_ops", "Shard writes")->Add(9);
  fleet.RegisterCounter("server.shardless", "Not a shard name")->Add(1);

  PrometheusExposition exp;
  exp.AddRegistry(fleet, {});
  ParsedExposition parsed;
  ASSERT_NO_FATAL_FAILURE(ParseExpositionInto(exp.Render(), &parsed));

  auto folded = SamplesNamed(parsed, "pipelsm_server_write_ops");
  ASSERT_EQ(folded.size(), 2u);
  std::map<std::string, double> by_shard;
  for (const ParsedSample& s : folded) {
    by_shard[s.labels.at("shard")] = s.value;
  }
  EXPECT_EQ(by_shard.at("0"), 7);
  EXPECT_EQ(by_shard.at("1"), 9);
  // "shardless" has no digits+dot component: left alone.
  EXPECT_EQ(SamplesNamed(parsed, "pipelsm_server_shardless").size(), 1u);
}

TEST(PrometheusExpositionTest, SyntheticSeriesAndEscaping) {
  PrometheusExposition exp;
  exp.AddGauge("advisor.regime_info", "Active advisor regime",
               {{"shard", "0"}, {"regime", "io\"bound\\now"}}, 1);
  ParsedExposition parsed;
  ASSERT_NO_FATAL_FAILURE(ParseExpositionInto(exp.Render(), &parsed));
  auto regime = SamplesNamed(parsed, "pipelsm_advisor_regime_info");
  ASSERT_EQ(regime.size(), 1u);
  EXPECT_EQ(regime[0].labels.at("regime"), "io\"bound\\now");
  EXPECT_EQ(regime[0].value, 1);
}

TEST(PrometheusExpositionTest, CountersMonotoneAcrossRenders) {
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("server.requests", "Requests");
  c->Add(5);
  PrometheusExposition exp1;
  exp1.AddRegistry(registry, {});
  ParsedExposition first;
  ASSERT_NO_FATAL_FAILURE(ParseExpositionInto(exp1.Render(), &first));
  c->Add(3);
  PrometheusExposition exp2;
  exp2.AddRegistry(registry, {});
  ParsedExposition second;
  ASSERT_NO_FATAL_FAILURE(ParseExpositionInto(exp2.Render(), &second));
  const double v1 = SamplesNamed(first, "pipelsm_server_requests")[0].value;
  const double v2 = SamplesNamed(second, "pipelsm_server_requests")[0].value;
  EXPECT_EQ(v1, 5);
  EXPECT_EQ(v2, 8);
  EXPECT_GE(v2, v1);
}

TEST(PrometheusExpositionTest, FamiliesSortedAndContiguous) {
  MetricsRegistry a, b;
  a.RegisterCounter("zeta.ops", "Z")->Add(1);
  a.RegisterCounter("alpha.ops", "A")->Add(1);
  b.RegisterCounter("zeta.ops", "Z")->Add(2);
  b.RegisterCounter("mid.ops", "M")->Add(2);

  PrometheusExposition exp;
  exp.AddRegistry(a, {{"shard", "0"}});
  exp.AddRegistry(b, {{"shard", "1"}});
  const std::string text = exp.Render();

  // Each family name appears in exactly one HELP line, and all of a
  // family's samples sit between its TYPE line and the next comment.
  std::istringstream in(text);
  std::string line, current_family;
  std::set<std::string> closed_families;
  while (std::getline(in, line)) {
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string family = line.substr(7, line.find(' ', 7) - 7);
      if (!current_family.empty()) {
        EXPECT_LT(current_family, family) << "families not sorted";
        closed_families.insert(current_family);
      }
      EXPECT_EQ(closed_families.count(family), 0u)
          << "family " << family << " split across the document";
      current_family = family;
    }
  }
}

}  // namespace
}  // namespace pipelsm::obs
