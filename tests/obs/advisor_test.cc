// BottleneckAdvisor golden tests: synthetic StepProfiles with a known
// Eq. 2 bottleneck must yield the matching verdict, the predicted
// bandwidths must agree with the model library evaluated on the same
// step times, and the JSON must actually parse (the payload of
// GetProperty("pipelsm.advisor") is consumed by scripts, not humans).
#include "src/obs/advisor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

#include "src/model/model.h"
#include "src/util/stopwatch.h"
#include "tests/obs/json_check.h"

namespace pipelsm::obs {
namespace {

using testjson::JsonValue;
using testjson::ParseJson;

constexpr double kMiB = 1024.0 * 1024.0;

// A profile of `subtasks` sub-tasks, each moving `l` bytes, with the
// given per-sub-task stage seconds (all compute time parked in S4). The
// wall time is the ideal Eq. 2 pipeline: bottleneck stage * subtasks.
StepProfile MakeProfile(double read_s, double compute_s, double write_s,
                        uint64_t subtasks = 4, uint64_t l = 512 << 10) {
  StepProfile p;
  p.subtasks = subtasks;
  p.nanos[kStepRead] = static_cast<uint64_t>(read_s * 1e9 * subtasks);
  p.nanos[kStepSort] = static_cast<uint64_t>(compute_s * 1e9 * subtasks);
  p.nanos[kStepWrite] = static_cast<uint64_t>(write_s * 1e9 * subtasks);
  for (int i = 0; i < kNumSteps; i++) p.bytes[i] = l * subtasks;
  p.input_bytes = l * subtasks;
  p.output_bytes = l * subtasks;
  const double bottleneck = std::max({read_s, compute_s, write_s});
  p.wall_nanos = static_cast<uint64_t>(bottleneck * 1e9 * subtasks);
  return p;
}

JsonValue MustParse(const BottleneckAdvisor& advisor) {
  JsonValue v;
  std::string err;
  const std::string json = advisor.ToJson();
  EXPECT_TRUE(ParseJson(json, &v, &err)) << err << "\n" << json;
  return v;
}

double Number(const JsonValue& v, const std::string& key) {
  const JsonValue* field = v.Find(key);
  EXPECT_NE(nullptr, field) << "missing field " << key;
  return field != nullptr ? field->number_value : -1;
}

std::string Text(const JsonValue& v, const std::string& key) {
  const JsonValue* field = v.Find(key);
  EXPECT_NE(nullptr, field) << "missing field " << key;
  return field != nullptr ? field->string_value : "";
}

TEST(BottleneckAdvisor, EmptyReportsZeroJobsAndStillParses) {
  BottleneckAdvisor advisor;
  EXPECT_EQ(0u, advisor.jobs());
  JsonValue v = MustParse(advisor);
  EXPECT_EQ(0, Number(v, "jobs"));
  EXPECT_NE(nullptr, v.Find("note"));  // explains the empty verdict
  EXPECT_EQ(nullptr, v.Find("recommendation"));
}

TEST(BottleneckAdvisor, IgnoresDegenerateProfiles) {
  BottleneckAdvisor advisor;
  advisor.AddJob(StepProfile());  // zero sub-tasks: nothing to average
  StepProfile no_wall = MakeProfile(1e-3, 1e-3, 1e-3);
  no_wall.wall_nanos = 0;
  advisor.AddJob(no_wall);
  EXPECT_EQ(0u, advisor.jobs());
}

// HDD regime (Figure 6(a)): reads dominate. The advisor must name the
// read stage, call the regime I/O-bound, and prescribe S-PPCP at the
// Eq. 4 saturation k, with every predicted bandwidth matching the model
// library evaluated on the same step times.
TEST(BottleneckAdvisor, ReadBoundGoldenProfile) {
  const double read_s = 8e-3, compute_s = 2e-3, write_s = 1e-3;
  BottleneckAdvisor advisor;
  advisor.AddJob(MakeProfile(read_s, compute_s, write_s));
  ASSERT_EQ(1u, advisor.jobs());

  const model::StepTimes t = advisor.Profile();
  EXPECT_NEAR(read_s, t.read(), 1e-9);
  EXPECT_NEAR(compute_s, t.compute(), 1e-9);
  EXPECT_NEAR(write_s, t.write(), 1e-9);
  EXPECT_NEAR(512 << 10, t.subtask_bytes, 1e-6);

  JsonValue v = MustParse(advisor);
  EXPECT_EQ(1, Number(v, "jobs"));
  EXPECT_EQ("read", Text(v, "bottleneck"));
  EXPECT_EQ("io-bound", Text(v, "regime"));
  EXPECT_NEAR(8.0, Number(*v.Find("step_ms"), "read"), 1e-2);
  EXPECT_NEAR(2.0, Number(*v.Find("step_ms"), "compute"), 1e-2);
  EXPECT_NEAR(1.0, Number(*v.Find("step_ms"), "write"), 1e-2);

  const JsonValue* pred = v.Find("predicted_mbps");
  ASSERT_NE(nullptr, pred);
  EXPECT_NEAR(model::ScpBandwidth(t) / kMiB, Number(*pred, "scp"), 1e-2);
  EXPECT_NEAR(model::PcpBandwidth(t) / kMiB, Number(*pred, "pcp"), 1e-2);
  const int sppcp_k = model::SppcpSaturationDisks(t);
  EXPECT_EQ(4, sppcp_k);  // ceil(max(8,1)/2)
  const JsonValue* sppcp = pred->Find("sppcp");
  ASSERT_NE(nullptr, sppcp);
  EXPECT_EQ(sppcp_k, Number(*sppcp, "k"));
  EXPECT_NEAR(model::SppcpBandwidth(t, sppcp_k) / kMiB,
              Number(*sppcp, "mbps"), 1e-2);

  // The synthetic wall time IS the Eq. 2 ideal, so the model error must
  // vanish (the acceptance bound for real runs is 25%).
  EXPECT_LT(Number(v, "pcp_model_error_pct"), 1.0);
  const JsonValue* measured = v.Find("measured_mbps");
  ASSERT_NE(nullptr, measured);
  EXPECT_NEAR(model::PcpBandwidth(t) / kMiB, Number(*measured, "wall"), 0.1);
  EXPECT_NEAR(model::ScpBandwidth(t) / kMiB, Number(*measured, "sequential"),
              0.1);

  const JsonValue* rec = v.Find("recommendation");
  ASSERT_NE(nullptr, rec);
  EXPECT_EQ("S-PPCP", Text(*rec, "procedure"));
  EXPECT_EQ(sppcp_k, Number(*rec, "k"));
  EXPECT_NEAR(model::SppcpIdealSpeedup(t, sppcp_k),
              Number(*rec, "ideal_speedup_vs_pcp"), 1e-2);
}

// SSD regime (Figure 6(b)): compute dominates; the prescription flips
// to C-PPCP with Eq. 6's saturation thread count.
TEST(BottleneckAdvisor, ComputeBoundGoldenProfile) {
  BottleneckAdvisor advisor;
  advisor.AddJob(MakeProfile(2e-3, 10e-3, 1e-3));

  const model::StepTimes t = advisor.Profile();
  JsonValue v = MustParse(advisor);
  EXPECT_EQ("compute", Text(v, "bottleneck"));
  EXPECT_EQ("cpu-bound", Text(v, "regime"));

  const int cppcp_k = model::CppcpSaturationThreads(t);
  EXPECT_EQ(5, cppcp_k);  // ceil(10/max(2,1))
  const JsonValue* rec = v.Find("recommendation");
  ASSERT_NE(nullptr, rec);
  EXPECT_EQ("C-PPCP", Text(*rec, "procedure"));
  EXPECT_EQ(cppcp_k, Number(*rec, "k"));
  EXPECT_NEAR(5.0, Number(*rec, "ideal_speedup_vs_pcp"), 1e-2);
}

// A balanced pipeline has nothing to parallelize: the ideal speedup of
// either parallel variant is ~1x, so the advisor must say "stay on PCP"
// instead of recommending churn.
TEST(BottleneckAdvisor, BalancedPipelineRecommendsPcp) {
  BottleneckAdvisor advisor;
  advisor.AddJob(MakeProfile(3e-3, 3e-3, 3e-3));

  JsonValue v = MustParse(advisor);
  const JsonValue* rec = v.Find("recommendation");
  ASSERT_NE(nullptr, rec);
  EXPECT_EQ("PCP", Text(*rec, "procedure"));
  EXPECT_EQ(1, Number(*rec, "k"));
  EXPECT_NEAR(1.0, Number(*rec, "ideal_speedup_vs_pcp"), 1e-2);
}

// The running profile is an EMA: with decay d, the second job weighs d
// and the first 1-d, so the profile tracks workload shifts instead of
// averaging over the DB's whole lifetime.
TEST(BottleneckAdvisor, DecayedProfileTracksRecentJobs) {
  BottleneckAdvisor advisor(/*decay=*/0.5);
  advisor.AddJob(MakeProfile(8e-3, 2e-3, 1e-3));
  advisor.AddJob(MakeProfile(4e-3, 2e-3, 1e-3));
  EXPECT_EQ(2u, advisor.jobs());
  EXPECT_NEAR(6e-3, advisor.Profile().read(), 1e-9);

  // Many repeats of the new workload converge the EMA to it.
  for (int i = 0; i < 20; i++) {
    advisor.AddJob(MakeProfile(4e-3, 2e-3, 1e-3));
  }
  EXPECT_NEAR(4e-3, advisor.Profile().read(), 1e-5);
}

// AddJob and ToJson may race (GetProperty vs the compaction thread);
// this is the single-advisor slice of the DB-level hammer test.
TEST(BottleneckAdvisor, ConcurrentAddAndReportStaysParseable) {
  BottleneckAdvisor advisor;
  std::atomic<bool> stop{false};
  std::thread reporter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      JsonValue v;
      std::string err;
      const std::string json = advisor.ToJson();
      if (!ParseJson(json, &v, &err)) {
        ADD_FAILURE() << err << "\n" << json;
        return;
      }
    }
  });
  for (int i = 0; i < 500; i++) {
    advisor.AddJob(MakeProfile(8e-3, 2e-3, 1e-3));
  }
  stop.store(true, std::memory_order_relaxed);
  reporter.join();
  EXPECT_EQ(500u, advisor.jobs());
}

}  // namespace
}  // namespace pipelsm::obs
