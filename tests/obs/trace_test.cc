// TraceCollector golden-format tests. The trace file's whole purpose is
// to be loaded by external viewers (chrome://tracing, Perfetto), so these
// tests parse the emitted JSON and check the Chrome trace_event contract:
// metadata naming events, complete ("X") spans with ts/dur, and — for a
// real PCP run — one full {S1 read, S2–S6 compute, S7 write} span set per
// sub-task, joined by the seq arg. Also covers the acceptance criterion
// that an I/O-bound run reports nonzero queue stall time in the metrics
// registry (the measured form of the paper's Eq. 2 bottleneck argument).
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/compaction/executor.h"
#include "src/compaction/types.h"
#include "src/env/sim_env.h"
#include "src/obs/metrics.h"
#include "src/workload/table_gen.h"
#include "tests/obs/json_check.h"

namespace pipelsm {
namespace {

using obs::MetricsRegistry;
using obs::TraceCollector;
using obs::TraceSpan;
using testjson::JsonValue;
using testjson::ParseJson;

TEST(TraceCollector, NullCollectorSpanIsNoOp) {
  // Call sites are unconditional; a null collector must be safe.
  TraceSpan span(nullptr, 1, 0, "S1 read", "read", 7);
}

TEST(TraceCollector, EmptyTraceIsValidJson) {
  TraceCollector trace;
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(trace.ToJson(), &root, &error)) << error;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(nullptr, events);
  EXPECT_EQ(JsonValue::kArray, events->type);
  EXPECT_TRUE(events->array.empty());
  const JsonValue* unit = root.Find("displayTimeUnit");
  ASSERT_NE(nullptr, unit);
  EXPECT_EQ("ms", unit->string_value);
}

TEST(TraceCollector, SpanAndMetadataRoundTrip) {
  TraceCollector trace;
  const uint32_t pid = trace.BeginJob("PCP compaction (2 sub-tasks)");
  EXPECT_GE(pid, 1u);
  trace.SetLaneName(pid, 0, "S7 write");
  // 1234567 ns = 1234.567 µs: the emitter must keep ns precision.
  trace.AddSpan(pid, 0, "S7 write", "write", 1234567, 2234567, 42);
  trace.AddSpan(pid, 0, "S7 finish file", "write", 3000000, 3100000,
                TraceCollector::kNoSeq);
  EXPECT_EQ(2u, trace.span_count());

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(trace.ToJson(), &root, &error)) << error;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(nullptr, events);
  ASSERT_EQ(4u, events->array.size());  // 2 metadata + 2 spans

  bool saw_process_name = false, saw_thread_name = false;
  const JsonValue* write_span = nullptr;
  const JsonValue* finish_span = nullptr;
  for (const JsonValue& ev : events->array) {
    const JsonValue* ph = ev.Find("ph");
    ASSERT_NE(nullptr, ph);
    if (ph->string_value == "M") {
      const std::string& what = ev.Find("name")->string_value;
      const JsonValue* args = ev.Find("args");
      ASSERT_NE(nullptr, args);
      if (what == "process_name") {
        saw_process_name = true;
        EXPECT_EQ("PCP compaction (2 sub-tasks)",
                  args->Find("name")->string_value);
      } else if (what == "thread_name") {
        saw_thread_name = true;
        EXPECT_EQ("S7 write", args->Find("name")->string_value);
      }
    } else if (ph->string_value == "X") {
      const std::string& name = ev.Find("name")->string_value;
      if (name == "S7 write") write_span = &ev;
      if (name == "S7 finish file") finish_span = &ev;
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_name);

  ASSERT_NE(nullptr, write_span);
  EXPECT_DOUBLE_EQ(1234.567, write_span->Find("ts")->number_value);
  EXPECT_DOUBLE_EQ(1000.0, write_span->Find("dur")->number_value);
  EXPECT_EQ("write", write_span->Find("cat")->string_value);
  const JsonValue* args = write_span->Find("args");
  ASSERT_NE(nullptr, args);
  EXPECT_DOUBLE_EQ(42.0, args->Find("seq")->number_value);

  ASSERT_NE(nullptr, finish_span);
  EXPECT_EQ(nullptr, finish_span->Find("args"));  // kNoSeq: no args
}

TEST(TraceCollector, WriteFileProducesParseableJson) {
  TraceCollector trace;
  const uint32_t pid = trace.BeginJob("job");
  trace.AddSpan(pid, 0, "S1 read", "read", 0, 1000, 0);
  const std::string path = "trace_test_out.json";  // test CWD (build dir)
  ASSERT_TRUE(trace.WriteFile(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(nullptr, f);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(content, &root, &error)) << error;
  EXPECT_EQ(1u + 1u, root.Find("traceEvents")->array.size());
}

// Shared harness: one compaction through the chosen executor on a
// simulated device, with the observability hooks attached.
struct TracedRun {
  MetricsRegistry registry;
  TraceCollector trace;
  StepProfile profile;
};

void RunTracedCompaction(CompactionMode mode, DeviceProfile device,
                         TracedRun* out) {
  SimEnv env(device);
  InternalKeyComparator icmp(BytewiseComparator());

  TableGenOptions gen;
  gen.env = &env;
  gen.icmp = &icmp;
  gen.upper_bytes = 256 << 10;
  gen.lower_bytes = 512 << 10;
  CompactionInputs inputs;
  ASSERT_TRUE(GenerateCompactionInputs(gen, &inputs).ok());

  CompactionJobOptions job;
  job.icmp = &icmp;
  job.subtask_bytes = 64 << 10;
  job.block_size = 4 << 10;
  job.max_output_file_size = 256 << 10;
  job.read_parallelism = 2;
  job.compute_parallelism = 2;
  job.metrics = &out->registry;
  job.trace = &out->trace;

  auto executor = NewCompactionExecutor(mode);
  CountingSink sink(&env, "/out");
  ASSERT_TRUE(executor->Run(job, inputs.tables, &sink, &out->profile).ok());
}

// Every sub-task a PCP run processes must leave one complete span set in
// the trace: S1 read, S2–S6 compute and S7 write spans sharing a seq.
TEST(TraceCollector, PcpRunEmitsCompleteSpanSetPerSubtask) {
  TracedRun run;
  RunTracedCompaction(CompactionMode::kPCP, DeviceProfile::Null(), &run);
  ASSERT_GT(run.trace.span_count(), 0u);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(run.trace.ToJson(), &root, &error)) << error;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(nullptr, events);

  std::map<std::string, std::set<uint64_t>> seqs_by_span;  // name -> seqs
  std::set<uint64_t> lanes;
  bool saw_process_name = false;
  for (const JsonValue& ev : events->array) {
    const JsonValue* ph = ev.Find("ph");
    ASSERT_NE(nullptr, ph) << "event missing ph";
    if (ph->string_value == "M") {
      if (ev.Find("name")->string_value == "process_name") {
        saw_process_name = true;
      }
      continue;
    }
    ASSERT_EQ("X", ph->string_value) << "only M and X events are emitted";
    // Complete events must carry the full timestamp contract.
    for (const char* field : {"pid", "tid", "ts", "dur"}) {
      const JsonValue* v = ev.Find(field);
      ASSERT_NE(nullptr, v) << "span missing " << field;
      ASSERT_EQ(JsonValue::kNumber, v->type);
    }
    lanes.insert(static_cast<uint64_t>(ev.Find("tid")->number_value));
    const JsonValue* args = ev.Find("args");
    if (args != nullptr && args->Find("seq") != nullptr) {
      seqs_by_span[ev.Find("name")->string_value].insert(
          static_cast<uint64_t>(args->Find("seq")->number_value));
    }
  }
  EXPECT_TRUE(saw_process_name);
  // PCP lanes: write lane + 2 readers + 2 compute workers.
  EXPECT_GE(lanes.size(), 4u);

  const std::set<uint64_t>& reads = seqs_by_span["S1 read"];
  const std::set<uint64_t>& computes = seqs_by_span["S2-S6 compute"];
  const std::set<uint64_t>& writes = seqs_by_span["S7 write"];
  ASSERT_FALSE(reads.empty());
  EXPECT_EQ(reads, computes) << "every read sub-task must reach compute";
  EXPECT_EQ(reads, writes) << "every read sub-task must reach write";
  // seq numbers are dense 0..N-1 (the reorder buffer needs them so).
  EXPECT_EQ(*reads.rbegin() + 1, reads.size());
}

TEST(TraceCollector, ScpRunTracesSequentialLane) {
  TracedRun run;
  RunTracedCompaction(CompactionMode::kSCP, DeviceProfile::Null(), &run);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(run.trace.ToJson(), &root, &error)) << error;

  std::set<std::string> span_names;
  for (const JsonValue& ev : root.Find("traceEvents")->array) {
    if (ev.Find("ph")->string_value == "X") {
      span_names.insert(ev.Find("name")->string_value);
    }
  }
  EXPECT_EQ(1u, span_names.count("S1 read"));
  EXPECT_EQ(1u, span_names.count("S2-S6 compute"));
  EXPECT_EQ(1u, span_names.count("S7 write"));
}

// Acceptance: on an I/O-bound device profile the metrics registry must
// report nonzero queue stall time — the pipeline's measured bottleneck
// signal (paper Eq. 2: throughput = max over stages; the stalled side of
// each queue names the slow stage).
TEST(PipelineMetrics, IoBoundRunReportsQueueStalls) {
  TracedRun run;
  RunTracedCompaction(CompactionMode::kPCP, DeviceProfile::Hdd(), &run);

  uint64_t total_stall_nanos = 0;
  for (const char* name :
       {"compaction.queue.read.push_stall_nanos",
        "compaction.queue.read.pop_stall_nanos",
        "compaction.queue.write.push_stall_nanos",
        "compaction.queue.write.pop_stall_nanos"}) {
    obs::Counter* c = run.registry.RegisterCounter(name, "");
    ASSERT_NE(nullptr, c) << name << " registered as a different kind";
    total_stall_nanos += c->value();
  }
  EXPECT_GT(total_stall_nanos, 0u);

  // Step metrics published from the same run.
  EXPECT_EQ(1u, run.registry.RegisterCounter("compaction.runs", "")->value());
  EXPECT_GT(
      run.registry.RegisterCounter("compaction.step.S1.read.nanos", "")
          ->value(),
      0u);
  EXPECT_GT(
      run.registry.RegisterCounter("compaction.step.S7.write.bytes", "")
          ->value(),
      0u);
  obs::Gauge* hw =
      run.registry.RegisterGauge("compaction.queue.read.depth_highwater", "");
  ASSERT_NE(nullptr, hw);
  EXPECT_GT(hw->value(), 0);

  // The whole registry must still round-trip as JSON (this is what
  // GetProperty("pipelsm.metrics") returns).
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(run.registry.ToJson(), &root, &error)) << error;
}

}  // namespace
}  // namespace pipelsm
