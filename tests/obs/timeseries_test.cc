#include "src/obs/timeseries.h"

#include <string>

#include "gtest/gtest.h"
#include "json_check.h"
#include "src/obs/metrics.h"

namespace pipelsm::obs {
namespace {

using pipelsm::testjson::JsonValue;
using pipelsm::testjson::ParseJson;

TEST(TimeSeriesRingTest, EmptyRingIsValidJson) {
  TimeSeriesRing ring(8);
  JsonValue root;
  std::string err;
  ASSERT_TRUE(ParseJson(ring.ToJson(), &root, &err)) << err;
  EXPECT_EQ(root.Find("capacity")->number_value, 8);
  EXPECT_TRUE(root.Find("samples")->array.empty());
}

TEST(TimeSeriesRingTest, SamplesCarryCountersGaugesAndHistogramCounts) {
  MetricsRegistry registry;
  Counter* writes = registry.RegisterCounter("db.writes", "");
  Gauge* depth = registry.RegisterGauge("db.queue_depth", "");
  HistogramMetric* lat = registry.RegisterHistogram("db.get_micros", "");

  TimeSeriesRing ring(8);
  writes->Add(3);
  depth->Set(2);
  lat->Observe(10);
  ring.Sample(registry, 1000);
  writes->Add(4);
  depth->Set(1);
  lat->Observe(20);
  ring.Sample(registry, 2000);

  JsonValue root;
  std::string err;
  ASSERT_TRUE(ParseJson(ring.ToJson(), &root, &err)) << err;
  const auto& samples = root.Find("samples")->array;
  ASSERT_EQ(samples.size(), 2u);

  // Oldest first, timestamps as given.
  EXPECT_EQ(samples[0].Find("t_micros")->number_value, 1000);
  EXPECT_EQ(samples[1].Find("t_micros")->number_value, 2000);

  const JsonValue* v0 = samples[0].Find("values");
  const JsonValue* v1 = samples[1].Find("values");
  EXPECT_EQ(v0->Find("db.writes")->number_value, 3);
  EXPECT_EQ(v1->Find("db.writes")->number_value, 7);
  EXPECT_EQ(v0->Find("db.queue_depth")->number_value, 2);
  EXPECT_EQ(v1->Find("db.queue_depth")->number_value, 1);
  EXPECT_EQ(v0->Find("db.get_micros.count")->number_value, 1);
  EXPECT_EQ(v1->Find("db.get_micros.count")->number_value, 2);
}

TEST(TimeSeriesRingTest, OverflowDropsOldestSamples) {
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("db.writes", "");
  TimeSeriesRing ring(3);
  for (uint64_t t = 1; t <= 5; t++) {
    c->Add(1);
    ring.Sample(registry, t * 100);
  }
  EXPECT_EQ(ring.size(), 3u);

  JsonValue root;
  std::string err;
  ASSERT_TRUE(ParseJson(ring.ToJson(), &root, &err)) << err;
  const auto& samples = root.Find("samples")->array;
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].Find("t_micros")->number_value, 300);
  EXPECT_EQ(samples[2].Find("t_micros")->number_value, 500);
  EXPECT_EQ(samples[2].Find("values")->Find("db.writes")->number_value, 5);
}

TEST(TimeSeriesRingTest, ZeroCapacityClampsToOne) {
  MetricsRegistry registry;
  registry.RegisterCounter("db.writes", "");
  TimeSeriesRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.Sample(registry, 100);
  ring.Sample(registry, 200);
  EXPECT_EQ(ring.size(), 1u);
}

}  // namespace
}  // namespace pipelsm::obs
