// MetricsRegistry contract tests: idempotent registration, kind-mismatch
// detection, wait-free concurrent updates, and a machine-checked ToJson
// format (parsed, not substring-matched — the blob is the payload of
// GetProperty("pipelsm.metrics") and external tools consume it).
#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "tests/obs/json_check.h"

namespace pipelsm::obs {
namespace {

using testjson::JsonValue;
using testjson::ParseJson;

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.RegisterCounter("x.count", "help a");
  Counter* b = reg.RegisterCounter("x.count", "help ignored on re-register");
  ASSERT_NE(nullptr, a);
  EXPECT_EQ(a, b);  // same instrument, not a second one
  EXPECT_EQ(1u, reg.size());

  Gauge* g1 = reg.RegisterGauge("x.depth", "");
  Gauge* g2 = reg.RegisterGauge("x.depth", "");
  EXPECT_EQ(g1, g2);
  HistogramMetric* h1 = reg.RegisterHistogram("x.micros", "");
  HistogramMetric* h2 = reg.RegisterHistogram("x.micros", "");
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(3u, reg.size());
}

TEST(MetricsRegistry, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(nullptr, reg.RegisterCounter("name", ""));
  EXPECT_EQ(nullptr, reg.RegisterGauge("name", ""));
  EXPECT_EQ(nullptr, reg.RegisterHistogram("name", ""));
  EXPECT_EQ(1u, reg.size());  // the bad registrations created nothing
}

TEST(MetricsRegistry, ConcurrentCounterUpdates) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&reg] {
      // Every thread registers by name — the idempotent contract means
      // they all hit the same instrument, the intended usage pattern.
      Counter* c = reg.RegisterCounter("stress.count", "");
      ASSERT_NE(nullptr, c);
      for (int i = 0; i < kAddsPerThread; i++) c->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kAddsPerThread,
            reg.RegisterCounter("stress.count", "")->value());
}

TEST(MetricsRegistry, GaugeUpdateMaxAcrossThreads) {
  MetricsRegistry reg;
  Gauge* g = reg.RegisterGauge("stress.highwater", "");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([g, t] {
      for (int i = 0; i < 5000; i++) {
        g->UpdateMax(t * 5000 + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(8 * 5000 - 1, g->value());

  g->Set(3);  // Set overwrites unconditionally
  EXPECT_EQ(3, g->value());
  g->UpdateMax(2);  // lower value must not regress the gauge
  EXPECT_EQ(3, g->value());
}

TEST(MetricsRegistry, HistogramObserve) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.RegisterHistogram("lat.micros", "");
  for (int i = 1; i <= 100; i++) h->Observe(i);
  Histogram snap = h->Snapshot();
  EXPECT_EQ(100, snap.Num());
  EXPECT_DOUBLE_EQ(100.0, snap.Max());
  EXPECT_NEAR(50.5, snap.Average(), 1e-9);
}

TEST(MetricsRegistry, ToStringListsEveryInstrument) {
  MetricsRegistry reg;
  reg.RegisterCounter("b.count", "")->Add(7);
  reg.RegisterGauge("a.depth", "")->Set(3);
  reg.RegisterHistogram("c.micros", "")->Observe(1.5);
  const std::string text = reg.ToString();
  EXPECT_NE(std::string::npos, text.find("a.depth"));
  EXPECT_NE(std::string::npos, text.find("b.count"));
  EXPECT_NE(std::string::npos, text.find("c.micros"));
  // Sorted by name: gauge line first.
  EXPECT_LT(text.find("a.depth"), text.find("b.count"));
}

TEST(MetricsRegistry, ToJsonGoldenFormat) {
  MetricsRegistry reg;
  reg.RegisterCounter("q.push_stalls", "")->Add(11);
  reg.RegisterGauge("q.depth_highwater", "")->Set(4);
  HistogramMetric* h = reg.RegisterHistogram("subtask.micros", "");
  for (int i = 0; i < 10; i++) h->Observe(100.0);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(reg.ToJson(), &root, &error)) << error;
  ASSERT_EQ(JsonValue::kObject, root.type);

  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(nullptr, counters);
  const JsonValue* stalls = counters->Find("q.push_stalls");
  ASSERT_NE(nullptr, stalls);
  EXPECT_DOUBLE_EQ(11.0, stalls->number_value);

  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(nullptr, gauges);
  const JsonValue* depth = gauges->Find("q.depth_highwater");
  ASSERT_NE(nullptr, depth);
  EXPECT_DOUBLE_EQ(4.0, depth->number_value);

  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(nullptr, histograms);
  const JsonValue* lat = histograms->Find("subtask.micros");
  ASSERT_NE(nullptr, lat);
  for (const char* field : {"count", "avg", "p50", "p95", "p99", "max"}) {
    ASSERT_NE(nullptr, lat->Find(field)) << "missing histogram field "
                                         << field;
  }
  EXPECT_DOUBLE_EQ(10.0, lat->Find("count")->number_value);
  EXPECT_DOUBLE_EQ(100.0, lat->Find("avg")->number_value);
  EXPECT_DOUBLE_EQ(100.0, lat->Find("max")->number_value);
}

TEST(MetricsRegistry, ToJsonEscapesStrings) {
  MetricsRegistry reg;
  reg.RegisterCounter("weird\"name\\with\ncontrol", "")->Add(1);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(reg.ToJson(), &root, &error)) << error;
  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(nullptr, counters);
  EXPECT_NE(nullptr, counters->Find("weird\"name\\with\ncontrol"));
}

TEST(MetricsRegistry, EmptyRegistryStillValidJson) {
  MetricsRegistry reg;
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(reg.ToJson(), &root, &error)) << error;
  EXPECT_NE(nullptr, root.Find("counters"));
  EXPECT_NE(nullptr, root.Find("gauges"));
  EXPECT_NE(nullptr, root.Find("histograms"));
}

}  // namespace
}  // namespace pipelsm::obs
