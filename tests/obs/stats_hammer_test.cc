// Property-hammer test: GetProperty("pipelsm.metrics" | "pipelsm.stats" |
// "pipelsm.advisor") is documented safe to call from any thread at any
// time. Several reader threads hammer all three while a writer drives
// flushes and compactions; every JSON payload must parse mid-flight.
// Run under TSan this doubles as the data-race proof for the snapshot
// paths (registry, advisor, stats report under mutex_).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/db/db.h"
#include "src/env/sim_env.h"
#include "src/workload/generator.h"
#include "tests/obs/json_check.h"

namespace pipelsm {
namespace {

TEST(StatsHammerTest, ConcurrentPropertyReadsStayConsistent) {
  SimEnv env;
  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.compaction_mode = CompactionMode::kPCP;
  options.write_buffer_size = 64 << 10;
  options.max_file_size = 64 << 10;
  options.subtask_bytes = 16 << 10;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/hammer", &raw).ok());
  std::unique_ptr<DB> db(raw);

  // Failures are collected, not asserted, in the reader threads: gtest
  // fatal assertions only work on the thread running the test body.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<int> failures{0};
  std::mutex first_failure_mu;
  std::string first_failure;
  auto record_failure = [&](const std::string& what) {
    failures.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(first_failure_mu);
    if (first_failure.empty()) first_failure = what;
  };

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; t++) {
    readers.emplace_back([&] {
      const char* json_props[] = {"pipelsm.metrics", "pipelsm.advisor"};
      while (!stop.load(std::memory_order_relaxed)) {
        for (const char* prop : json_props) {
          std::string value;
          if (!db->GetProperty(prop, &value)) {
            record_failure(std::string("GetProperty failed: ") + prop);
            continue;
          }
          testjson::JsonValue parsed;
          std::string err;
          if (!testjson::ParseJson(value, &parsed, &err)) {
            record_failure(std::string(prop) + ": " + err + "\n" + value);
          }
        }
        std::string stats;
        if (!db->GetProperty("pipelsm.stats", &stats) || stats.empty()) {
          record_failure("pipelsm.stats empty or missing");
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Enough volume for many flushes and several major compactions while
  // the readers run.
  WorkloadGenerator gen(6000, 16, 100, KeyOrder::kRandom);
  for (uint64_t i = 0; i < gen.num_entries(); i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), gen.Key(i), gen.Value(i)).ok());
  }
  ASSERT_TRUE(db->WaitForCompactions().ok());
  ASSERT_GT(db->GetCompactionMetrics().compactions, 0u);

  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_EQ(0, failures.load()) << first_failure;
  EXPECT_GT(reads.load(), 0u);

  // After the dust settles the advisor has digested real compactions.
  std::string advisor_json;
  ASSERT_TRUE(db->GetProperty("pipelsm.advisor", &advisor_json));
  testjson::JsonValue verdict;
  std::string err;
  ASSERT_TRUE(testjson::ParseJson(advisor_json, &verdict, &err))
      << err << "\n" << advisor_json;
  const testjson::JsonValue* jobs = verdict.Find("jobs");
  ASSERT_NE(nullptr, jobs);
  EXPECT_GT(jobs->number_value, 0);
  EXPECT_NE(nullptr, verdict.Find("recommendation"));

  // The full stats report embeds both machine sections.
  std::string stats;
  ASSERT_TRUE(db->GetProperty("pipelsm.stats", &stats));
  EXPECT_NE(std::string::npos, stats.find("metrics {"));
  EXPECT_NE(std::string::npos, stats.find("advisor {"));
}

}  // namespace
}  // namespace pipelsm
