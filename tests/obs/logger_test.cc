// FileLogger contract tests: line framing (`<secs>.<micros> message\n`),
// oversized-message fallback, newline normalization, null-logger safety
// and concurrent writers — the properties docs/OBSERVABILITY.md promises
// for the LOG file.
#include "src/obs/logger.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/env/sim_env.h"

namespace pipelsm::obs {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// "<secs>.<6-digit micros> " — the grep/awk-able stamp every line carries.
bool HasTimestampHeader(const std::string& line, std::string* rest) {
  size_t i = 0;
  while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i])))
    i++;
  if (i == 0 || i >= line.size() || line[i] != '.') return false;
  const size_t micros_start = ++i;
  while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i])))
    i++;
  if (i - micros_start != 6) return false;
  if (i >= line.size() || line[i] != ' ') return false;
  *rest = line.substr(i + 1);
  return true;
}

class LoggerTest : public ::testing::Test {
 protected:
  std::unique_ptr<Logger> NewLogger(const std::string& fname = "/LOG") {
    std::unique_ptr<Logger> logger;
    Status s = NewFileLogger(&env_, fname, &logger);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return logger;
  }

  std::string ReadLog(const std::string& fname = "/LOG") {
    std::string contents;
    Status s = ReadFileToString(&env_, fname, &contents);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return contents;
  }

  SimEnv env_;
};

TEST_F(LoggerTest, StampsAndTerminatesEveryLine) {
  auto logger = NewLogger();
  Log(logger.get(), "plain message");
  Log(logger.get(), "formatted %s %d", "value", 42);
  Log(logger.get(), "already newlined\n");
  logger.reset();  // close flushes

  const std::string contents = ReadLog();
  ASSERT_FALSE(contents.empty());
  EXPECT_EQ('\n', contents.back());
  std::vector<std::string> lines = SplitLines(contents);
  ASSERT_EQ(3u, lines.size());

  std::string rest;
  ASSERT_TRUE(HasTimestampHeader(lines[0], &rest)) << lines[0];
  EXPECT_EQ("plain message", rest);
  ASSERT_TRUE(HasTimestampHeader(lines[1], &rest)) << lines[1];
  EXPECT_EQ("formatted value 42", rest);
  ASSERT_TRUE(HasTimestampHeader(lines[2], &rest)) << lines[2];
  EXPECT_EQ("already newlined", rest);  // no doubled newline
}

TEST_F(LoggerTest, MessagesBeyondStackBufferSurviveIntact) {
  auto logger = NewLogger();
  // > 512 bytes forces the heap-format fallback path.
  const std::string big(2000, 'x');
  Log(logger.get(), "big=%s", big.c_str());
  logger.reset();

  std::string rest;
  std::vector<std::string> lines = SplitLines(ReadLog());
  ASSERT_EQ(1u, lines.size());
  ASSERT_TRUE(HasTimestampHeader(lines[0], &rest));
  EXPECT_EQ("big=" + big, rest);
}

TEST_F(LoggerTest, MultilineMessageKeepsOneHeader) {
  auto logger = NewLogger();
  // Stats dumps log one multi-line report per call: one stamp, embedded
  // newlines preserved.
  Log(logger.get(), "report:\nline a\nline b");
  logger.reset();

  std::vector<std::string> lines = SplitLines(ReadLog());
  ASSERT_EQ(3u, lines.size());
  std::string rest;
  EXPECT_TRUE(HasTimestampHeader(lines[0], &rest));
  EXPECT_EQ("line a", lines[1]);
  EXPECT_EQ("line b", lines[2]);
}

TEST_F(LoggerTest, NullLoggerDropsMessages) {
  // Call sites are unconditional; a DB whose LOG failed to open must not
  // crash when it logs.
  Log(nullptr, "dropped %d", 1);
}

TEST_F(LoggerTest, ConcurrentWritersNeverInterleaveWithinALine) {
  auto logger = NewLogger();
  constexpr int kThreads = 4, kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kLines; i++) {
        Log(logger.get(), "writer=%d seq=%d", t, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  logger.reset();

  std::vector<std::string> lines = SplitLines(ReadLog());
  ASSERT_EQ(static_cast<size_t>(kThreads * kLines), lines.size());
  for (const std::string& line : lines) {
    std::string rest;
    ASSERT_TRUE(HasTimestampHeader(line, &rest)) << line;
    int writer = -1, seq = -1;
    ASSERT_EQ(2, std::sscanf(rest.c_str(), "writer=%d seq=%d", &writer, &seq))
        << line;
    EXPECT_GE(writer, 0);
    EXPECT_LT(writer, kThreads);
  }
}

}  // namespace
}  // namespace pipelsm::obs
