// E8 — Figure 12(d)-(f): Computation-Parallel PCP on SSD with 1..6
// compute threads — IOPS, compaction bandwidth and speedup vs threads.
//
// Paper's shape to reproduce: one extra compute thread lifts throughput,
// after which the pipeline becomes I/O-bound and more threads stop
// helping (and slightly hurt, via thread creation/synchronization
// overhead).
//
// Host note (see DESIGN.md §Substitutions): this machine has one physical
// core, so the sweep runs in slow-motion mode (time_dilation = 8): each
// compute stage sleeps 7x its real CPU time and the SSD model is slowed
// by the same factor, preserving every stage-time ratio while letting k
// compute workers overlap for real.
#include "bench_common.h"

using namespace pipelsm;
using namespace pipelsm::bench;

int main() {
  constexpr double kDilation = 8.0;

  PrintHeader(
      "bench_cppcp — C-PPCP vs compute-thread count (SSD, slow-motion x8)",
      "Figure 12(d)-(f)",
      "expect: big gain at 2 threads, then an I/O-bound plateau at the "
      "knee predicted by Eq. 6/7 (printed as 'model knee')");

  CompactionBenchConfig base;
  base.device = DeviceProfile::Ssd();
  base.mode = CompactionMode::kPCP;
  base.time_dilation = kDilation;
  base.upper_bytes = static_cast<uint64_t>((2 << 20) * Scale());
  base.lower_bytes = static_cast<uint64_t>((4 << 20) * Scale());
  base.subtask_bytes = 256 << 10;
  CompactionRun pcp1 = RunCompaction(base);
  model::StepTimes steps = model::StepTimes::FromProfile(pcp1.profile);
  std::printf("model knee: %d threads (Eq. 6 crossover); max ideal speedup "
              "%.2fx\n",
              model::CppcpSaturationThreads(steps),
              model::CppcpIdealSpeedup(steps, 1000));

  std::printf("\n%-8s %14s %9s %9s %12s\n", "threads", "bw MiB/s", "speedup",
              "ideal", "IOPS");
  for (int threads = 1; threads <= 6; threads++) {
    CompactionBenchConfig cfg = base;
    cfg.mode = threads == 1 ? CompactionMode::kPCP : CompactionMode::kCPPCP;
    cfg.compute_parallelism = threads;
    CompactionRun run = RunCompaction(cfg);

    DbBenchConfig dbcfg;
    dbcfg.device = DeviceProfile::Ssd();
    dbcfg.mode = cfg.mode;
    dbcfg.compute_parallelism = threads;
    dbcfg.time_dilation = kDilation;
    dbcfg.num_entries = static_cast<uint64_t>(10000 * Scale());
    DbRun db = RunDbFill(dbcfg);

    std::printf("%-8d %14.1f %8.2fx %8.2fx %12.0f\n", threads,
                run.bandwidth_mib_s,
                pcp1.bandwidth_mib_s > 0
                    ? run.bandwidth_mib_s / pcp1.bandwidth_mib_s
                    : 0,
                model::CppcpIdealSpeedup(steps, threads), db.iops);
  }
  return 0;
}
