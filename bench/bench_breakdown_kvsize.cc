// E2 — Figure 8(a)(b): SCP step breakdown as the key-value size grows
// from 64 B to 1024 B, on HDD and on SSD.
//
// Paper's observation to reproduce: "as the key-value size increases,
// step sort takes less time due to the decreasing amount of key-value
// entries"; crc/re-crc stay < 5%; decompress is cheapest; compress is the
// costliest compute step.
#include "bench_common.h"

using namespace pipelsm;
using namespace pipelsm::bench;

namespace {

void RunDevice(const char* label, const DeviceProfile& device) {
  std::printf("\n--- %s ---\n", label);
  std::printf("%-8s %8s %8s %8s %8s %8s %8s %8s\n", "kv(B)", "read%",
              "crc%", "decomp%", "sort%", "comp%", "recrc%", "write%");
  for (size_t kv : {64, 128, 256, 512, 1024}) {
    CompactionBenchConfig cfg;
    cfg.device = device;
    cfg.mode = CompactionMode::kSCP;
    cfg.key_size = 16;
    cfg.value_size = kv - 16;
    cfg.upper_bytes = static_cast<uint64_t>((2 << 20) * Scale());
    cfg.lower_bytes = static_cast<uint64_t>((4 << 20) * Scale());
    CompactionRun run = RunCompaction(cfg);
    const StepProfile& p = run.profile;
    const double total = p.TotalStepNanos();
    auto pct = [&](CompactionStep s) {
      return total > 0 ? 100.0 * p.nanos[s] / total : 0.0;
    };
    std::printf("%-8zu %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                kv, pct(kStepRead), pct(kStepChecksum), pct(kStepDecompress),
                pct(kStepSort), pct(kStepCompress), pct(kStepRechecksum),
                pct(kStepWrite));
  }
}

}  // namespace

int main() {
  PrintHeader("bench_breakdown_kvsize — SCP breakdown vs key-value size",
              "Figure 8(a) on HDD, Figure 8(b) on SSD",
              "expect: sort share falls as kv size grows; crc steps <5%; "
              "compress is the costliest compute step");
  RunDevice("HDD (Fig 8a)", DeviceProfile::Hdd());
  RunDevice("SSD (Fig 8b)", DeviceProfile::Ssd());
  return 0;
}
