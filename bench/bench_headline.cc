// E10 — the paper's headline claims (§I / §IV):
//   "the pipelined compaction procedure increases the compaction
//    bandwidth and storage system throughput by 77% and 62%"
//   "the parallel pipelined compaction procedure improves the compaction
//    bandwidth and throughput by 89% and 64%"
// (both measured on SSD against the LevelDB SCP baseline).
//
// All configurations run in the same slow-motion domain (x4 executor
// level, x3 DB level — see DESIGN.md §Substitutions for why a 1-core host
// needs this), so the *gains* are directly comparable even though the
// absolute MiB/s are scaled down.
#include "bench_common.h"

using namespace pipelsm;
using namespace pipelsm::bench;

int main() {
  PrintHeader("bench_headline — the paper's headline improvements (SSD)",
              "Section I / Section IV headline numbers",
              "expect: PCP bandwidth ~ +77%, IOPS ~ +62%; C-PPCP adds a "
              "further margin (paper: +89% / +64%)");

  struct Config {
    const char* name;
    CompactionMode mode;
    int computers;
  } configs[] = {
      {"SCP (baseline)", CompactionMode::kSCP, 1},
      {"PCP", CompactionMode::kPCP, 1},
      {"C-PPCP k=2", CompactionMode::kCPPCP, 2},
  };

  // Compaction bandwidth at the executor level (isolated, like §IV-C).
  // SCP and PCP run in real time (a 3-stage pipeline overlaps fine on one
  // core because the I/O stages sleep); the C-PPCP margin over PCP is
  // measured in the x8 slow-motion domain where k compute workers can
  // overlap, then applied multiplicatively.
  auto run_bw = [&](CompactionMode mode, int computers,
                    double dilation) -> double {
    CompactionBenchConfig cfg;
    cfg.device = DeviceProfile::Ssd();
    cfg.mode = mode;
    cfg.compute_parallelism = computers;
    cfg.time_dilation = dilation;
    cfg.upper_bytes = static_cast<uint64_t>((4 << 20) * Scale());
    cfg.lower_bytes = static_cast<uint64_t>((8 << 20) * Scale());
    return RunCompactionMedian(cfg).bandwidth_mib_s;
  };

  double bw[3] = {};
  bw[0] = run_bw(CompactionMode::kSCP, 1, 1.0);
  bw[1] = run_bw(CompactionMode::kPCP, 1, 1.0);
  const double pcp_dilated = run_bw(CompactionMode::kPCP, 1, 8.0);
  const double cppcp_dilated = run_bw(CompactionMode::kCPPCP, 2, 8.0);
  bw[2] = bw[1] * (pcp_dilated > 0 ? cppcp_dilated / pcp_dilated : 1.0);

  // System throughput at the DB level.
  double iops[3] = {};
  for (int i = 0; i < 3; i++) {
    DbBenchConfig cfg;
    cfg.device = DeviceProfile::Ssd();
    cfg.mode = configs[i].mode;
    cfg.compute_parallelism = configs[i].computers;
    cfg.time_dilation = 3.0;
    cfg.num_entries = static_cast<uint64_t>(40000 * Scale());
    iops[i] = RunDbFillMedian(cfg).iops;
  }

  std::printf("%-16s %16s %10s %12s %10s\n", "configuration",
              "bw MiB/s", "bw gain", "IOPS (x3)", "IOPS gain");
  for (int i = 0; i < 3; i++) {
    std::printf("%-16s %16.1f %9.0f%% %12.0f %9.0f%%\n", configs[i].name,
                bw[i], bw[0] > 0 ? 100.0 * (bw[i] / bw[0] - 1) : 0, iops[i],
                iops[0] > 0 ? 100.0 * (iops[i] / iops[0] - 1) : 0);
  }
  std::printf("\npaper:            PCP +77%% bandwidth / +62%% throughput;"
              "  PPCP +89%% / +64%%\n");
  return 0;
}
