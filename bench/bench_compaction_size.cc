// E6 — Figure 11(b): compaction bandwidth vs compaction size (upper-
// component input 1 MB..10 MB) at a fixed 1 MB sub-task size, on SSD.
//
// Paper's shape to reproduce: SCP flat (bandwidth independent of
// compaction size); PCP rises with compaction size until the sub-task
// count reaches ~6, then levels off — bigger compactions amortize the
// pipeline's fill/drain overhead.
#include "bench_common.h"

using namespace pipelsm;
using namespace pipelsm::bench;

int main() {
  PrintHeader("bench_compaction_size — bandwidth vs compaction size (SSD)",
              "Figure 11(b)",
              "expect: SCP flat; PCP rising until ~6 sub-tasks then flat; "
              "PCP above SCP for all sizes");

  std::printf("%-10s %14s %14s %9s %10s\n", "input", "SCP MiB/s",
              "PCP MiB/s", "speedup", "subtasks");
  for (int upper_mb : {1, 2, 3, 4, 5, 6, 8, 10}) {
    CompactionRun runs[2];
    for (int m = 0; m < 2; m++) {
      CompactionBenchConfig cfg;
      cfg.device = DeviceProfile::Ssd();
      cfg.mode = m == 0 ? CompactionMode::kSCP : CompactionMode::kPCP;
      cfg.subtask_bytes = 1 << 20;  // paper: fixed 1 MB sub-tasks
      cfg.upper_bytes = static_cast<uint64_t>((upper_mb << 20) * Scale());
      cfg.lower_bytes = 2 * cfg.upper_bytes;
      runs[m] = RunCompactionMedian(cfg);
    }
    std::printf("%6dMB   %14.1f %14.1f %8.2fx %10llu\n", upper_mb,
                runs[0].bandwidth_mib_s, runs[1].bandwidth_mib_s,
                runs[0].bandwidth_mib_s > 0
                    ? runs[1].bandwidth_mib_s / runs[0].bandwidth_mib_s
                    : 0,
                static_cast<unsigned long long>(runs[1].profile.subtasks));
  }
  return 0;
}
