// E7 — Figure 12(a)-(c): Storage-Parallel PCP on HDD RAID0 arrays of
// 1..6 disks — IOPS, compaction bandwidth and speedup vs disk count.
//
// Paper's shape to reproduce: throughput/bandwidth climb with disk count
// and stop improving once the pipeline flips from I/O-bound to CPU-bound
// (paper: at ~5 disks on their testbed; the exact knee depends on the
// compute/IO ratio and is predicted by Eq. 4 — printed alongside).
#include "bench_common.h"

using namespace pipelsm;
using namespace pipelsm::bench;

int main() {
  PrintHeader(
      "bench_sppcp — S-PPCP vs HDD RAID0 disk count",
      "Figure 12(a)-(c)",
      "expect: bandwidth/IOPS rise with disks, then plateau at the "
      "CPU-bound knee predicted by Eq. 4/5 (printed as 'model knee')");

  // Baseline PCP on one disk for speedup normalization + model input.
  CompactionBenchConfig base;
  base.device = DeviceProfile::Hdd(1);
  base.mode = CompactionMode::kPCP;
  base.upper_bytes = static_cast<uint64_t>((4 << 20) * Scale());
  base.lower_bytes = static_cast<uint64_t>((8 << 20) * Scale());
  CompactionRun pcp1 = RunCompaction(base);
  model::StepTimes steps = model::StepTimes::FromProfile(pcp1.profile);
  std::printf("model knee: %d disks (Eq. 4 crossover); max ideal speedup "
              "%.2fx\n",
              model::SppcpSaturationDisks(steps),
              model::SppcpIdealSpeedup(steps, 1000));

  std::printf("\n%-6s %14s %9s %9s %12s\n", "disks", "bw MiB/s", "speedup",
              "ideal", "IOPS");
  for (int disks = 1; disks <= 6; disks++) {
    CompactionBenchConfig cfg = base;
    cfg.device = DeviceProfile::Hdd(disks);
    cfg.mode = disks == 1 ? CompactionMode::kPCP : CompactionMode::kSPPCP;
    cfg.read_parallelism = disks;
    CompactionRun run = RunCompaction(cfg);

    DbBenchConfig dbcfg;
    dbcfg.device = DeviceProfile::Hdd(disks);
    dbcfg.mode = cfg.mode;
    dbcfg.read_parallelism = disks;
    dbcfg.num_entries = static_cast<uint64_t>(20000 * Scale());
    dbcfg.time_dilation = 3.0;
    DbRun db = RunDbFill(dbcfg);

    std::printf("%-6d %14.1f %8.2fx %8.2fx %12.0f\n", disks,
                run.bandwidth_mib_s,
                pcp1.bandwidth_mib_s > 0
                    ? run.bandwidth_mib_s / pcp1.bandwidth_mib_s
                    : 0,
                model::SppcpIdealSpeedup(steps, disks), db.iops);
  }
  return 0;
}
