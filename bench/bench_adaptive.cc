// bench_adaptive: closes the loop the paper leaves open.
//
// The paper's evaluation (Figs 6 and 12) shows the best compaction
// procedure flipping between C-PPCP and S-PPCP as the pipeline moves
// between CPU- and I/O-bound regimes — but its procedures are chosen
// offline. This bench runs a workload whose regime shifts mid-run (small
// highly compressible values, then large incompressible ones) through
// every static procedure and through the adaptive CompactionScheduler
// (docs/TUNING.md), and gates the adaptive run at >= 0.90x of the best
// static choice *per phase*: the scheduler must track the shift closely
// enough that no phase pays more than ~10% for not being pinned.
//
// Usage:
//   bench_adaptive           full sweep + gate (exit 1 on gate failure)
//   bench_adaptive --smoke   tiny adaptive-only run; prints one
//                            adaptive_decision line per compaction for
//                            CI to grep, no gate
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.h"
#include "src/obs/event_listener.h"
#include "src/workload/generator.h"

namespace pipelsm::bench {
namespace {

// The phase calibration mirrors tests/db/adaptive_db_test.cc: on the
// striped-SSD model with 3x compute dilation, 100-byte fully
// compressible values are compute-bound and 4 KB incompressible values
// I/O-bound, with ~2x margin to the regime boundary either way.
constexpr double kTimeDilation = 3.0;
constexpr double kGate = 0.90;

struct PhaseSpec {
  const char* name;
  uint64_t num_entries;
  size_t value_size;
  double compressibility;
  uint32_t seed;
};

struct PhaseResult {
  double seconds = 0;
  uint64_t raw_bytes = 0;
  double mib_s = 0;
};

struct Decision {
  std::string executor;
  int read_parallelism = 1;
  int compute_parallelism = 1;
  bool adaptive = false;
  std::string rationale;
};

class DecisionListener : public obs::EventListener {
 public:
  void OnCompactionBegin(const obs::CompactionJobInfo& info) override {
    Decision d;
    d.executor = info.executor;
    d.read_parallelism = info.read_parallelism;
    d.compute_parallelism = info.compute_parallelism;
    d.adaptive = info.adaptive;
    d.rationale = info.scheduler_rationale;
    std::lock_guard<std::mutex> lock(mu_);
    decisions_.push_back(std::move(d));
  }

  std::vector<Decision> decisions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return decisions_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Decision> decisions_;
};

struct RunConfig {
  const char* label = "";
  bool adaptive = false;
  CompactionMode mode = CompactionMode::kPCP;
  int read_parallelism = 1;
  int compute_parallelism = 1;
};

struct RunResult {
  std::vector<PhaseResult> phases;
  std::vector<Decision> decisions;
  std::string scheduler_json;
  std::string advisor_json;
};

RunResult RunPhased(const RunConfig& cfg,
                    const std::vector<PhaseSpec>& phases) {
  SimEnv env(DeviceProfile::Ssd(4));
  DecisionListener listener;

  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.compaction_mode = cfg.mode;
  options.io_parallelism = cfg.read_parallelism;
  options.compute_parallelism = cfg.compute_parallelism;
  options.adaptive_compaction = cfg.adaptive;
  options.max_compute_workers = 4;
  options.max_stripe_width = 4;
  // The gate charges the adaptive run for its transition lag, so react
  // as fast as one clean profile allows.
  options.scheduler_hysteresis_jobs = 1;
  options.scheduler_warmup_jobs = 1;
  options.compaction_time_dilation = kTimeDilation;
  options.write_buffer_size = 16 << 10;
  options.max_file_size = 16 << 10;
  options.subtask_bytes = 16 << 10;
  options.block_size = 4 << 10;
  options.listeners.push_back(&listener);

  DB* raw = nullptr;
  Status s = DB::Open(options, "/db", &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "DB::Open failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<DB> db(raw);

  RunResult result;
  for (const PhaseSpec& phase : phases) {
    WorkloadGenerator gen(phase.num_entries, 16, phase.value_size,
                          KeyOrder::kRandom, phase.seed,
                          phase.compressibility);
    PhaseResult r;
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < phase.num_entries; i++) {
      s = db->Put(WriteOptions(), gen.Key(i), gen.Value(i));
      if (!s.ok()) {
        std::fprintf(stderr, "Put failed: %s\n", s.ToString().c_str());
        std::exit(1);
      }
      // Quiesce periodically so each phase spreads over several
      // compaction jobs (as a sustained workload would) instead of one
      // catch-up job after the memtable backlog.
      if ((i + 1) % (phase.num_entries / 4) == 0) {
        s = db->WaitForCompactions();
        if (!s.ok()) {
          std::fprintf(stderr, "wait failed: %s\n", s.ToString().c_str());
          std::exit(1);
        }
      }
    }
    s = db->WaitForCompactions();
    if (!s.ok()) {
      std::fprintf(stderr, "wait failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    r.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    r.raw_bytes = phase.num_entries * (16 + phase.value_size);
    r.mib_s = r.seconds > 0 ? ToMiB(double(r.raw_bytes)) / r.seconds : 0;
    result.phases.push_back(r);
  }

  db->GetProperty("pipelsm.scheduler", &result.scheduler_json);
  db->GetProperty("pipelsm.advisor", &result.advisor_json);
  result.decisions = listener.decisions();
  return result;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const double scale = smoke ? 0.25 : Scale();
  const std::vector<PhaseSpec> phases = {
      {"cpu-bound (100B values, compressible)",
       uint64_t(16000 * scale), 100, 1.0, 301},
      {"io-bound (4KB values, incompressible)",
       uint64_t(2400 * scale), 4096, 0.0, 302},
  };

  if (smoke) {
    PrintHeader("Adaptive compaction scheduling (smoke)",
                "the missing online half of Figs 6/12",
                "tiny phase-shift run; decisions printed, no gate");
    RunConfig cfg;
    cfg.label = "adaptive";
    cfg.adaptive = true;
    RunResult run = RunPhased(cfg, phases);
    for (const Decision& d : run.decisions) {
      std::printf(
          "adaptive_decision procedure=%s read_k=%d compute_k=%d "
          "adaptive=%d rationale=\"%s\"\n",
          d.executor.c_str(), d.read_parallelism, d.compute_parallelism,
          d.adaptive ? 1 : 0, d.rationale.c_str());
    }
    std::printf("SCHEDULER %s\n", run.scheduler_json.c_str());
    std::printf("ADVISOR %s\n", run.advisor_json.c_str());
    if (run.decisions.empty()) {
      std::fprintf(stderr, "smoke run scheduled no compactions\n");
      return 1;
    }
    return 0;
  }

  PrintHeader(
      "Adaptive compaction scheduling vs per-phase static oracles",
      "the missing online half of Figs 6/12 (procedures chosen offline)",
      "phase-shifting fill; gate: adaptive >= 0.90x best static per phase");

  const std::vector<RunConfig> statics = {
      {"SCP", false, CompactionMode::kSCP, 1, 1},
      {"PCP", false, CompactionMode::kPCP, 1, 1},
      {"S-PPCP k=4", false, CompactionMode::kSPPCP, 4, 1},
      {"C-PPCP k=4", false, CompactionMode::kCPPCP, 1, 4},
  };

  std::printf("%-14s", "config");
  for (const PhaseSpec& p : phases) std::printf("  %28s", p.name);
  std::printf("\n");

  std::vector<RunResult> static_results;
  for (const RunConfig& cfg : statics) {
    static_results.push_back(RunPhased(cfg, phases));
    std::printf("%-14s", cfg.label);
    for (const PhaseResult& r : static_results.back().phases) {
      std::printf("  %22.2f MiB/s", r.mib_s);
    }
    std::printf("\n");
  }

  RunConfig adaptive_cfg;
  adaptive_cfg.label = "adaptive";
  adaptive_cfg.adaptive = true;
  const RunResult adaptive = RunPhased(adaptive_cfg, phases);
  std::printf("%-14s", adaptive_cfg.label);
  for (const PhaseResult& r : adaptive.phases) {
    std::printf("  %22.2f MiB/s", r.mib_s);
  }
  std::printf("\n\n");

  std::printf("SCHEDULER %s\n", adaptive.scheduler_json.c_str());
  std::printf("ADVISOR %s\n\n", adaptive.advisor_json.c_str());

  bool gate_ok = true;
  for (size_t p = 0; p < phases.size(); p++) {
    double best = 0;
    const char* best_label = "";
    for (size_t c = 0; c < statics.size(); c++) {
      if (static_results[c].phases[p].mib_s > best) {
        best = static_results[c].phases[p].mib_s;
        best_label = statics[c].label;
      }
    }
    const double ratio =
        best > 0 ? adaptive.phases[p].mib_s / best : 1.0;
    const bool ok = ratio >= kGate;
    gate_ok = gate_ok && ok;
    std::printf("GATE %-40s oracle=%s (%.2f MiB/s)  adaptive/oracle=%.2fx  "
                "[%s]\n",
                phases[p].name, best_label, best, ratio,
                ok ? "pass" : "FAIL");
  }
  return gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace pipelsm::bench

int main(int argc, char** argv) { return pipelsm::bench::Main(argc, argv); }
