// Microbenchmarks (google-benchmark) for the primitive operations behind
// the seven compaction steps: CRC32C (S2/S6), the LZ codec (S3/S5), block
// building + merge iteration (S4), memtable inserts and WAL appends.
// These calibrate the host's compute-side costs and explain the step
// shares the breakdown benches report.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "src/compress/lz_codec.h"
#include "src/db/dbformat.h"
#include "src/env/sim_env.h"
#include "src/memtable/memtable.h"
#include "src/table/block.h"
#include "src/table/block_builder.h"
#include "src/table/comparator.h"
#include "src/table/merger.h"
#include "src/util/crc32c.h"
#include "src/util/random.h"
#include "src/wal/log_writer.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

std::string MakePayload(size_t n, double compressibility) {
  WorkloadGenerator gen(1, 16, n, KeyOrder::kSequential, 301,
                        compressibility);
  return gen.Value(0);
}

void BM_Crc32c(benchmark::State& state) {
  std::string data = MakePayload(state.range(0), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Crc32c)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_LzCompress(benchmark::State& state) {
  std::string data = MakePayload(state.range(0), 0.5);
  std::string out;
  for (auto _ : state) {
    lz::Compress(data.data(), data.size(), &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LzCompress)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_LzUncompress(benchmark::State& state) {
  std::string data = MakePayload(state.range(0), 0.5);
  std::string compressed, out;
  lz::Compress(data.data(), data.size(), &compressed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lz::Uncompress(compressed.data(), compressed.size(), &out));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LzUncompress)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_BlockBuild(benchmark::State& state) {
  WorkloadGenerator gen(1000, 16, 100, KeyOrder::kSequential);
  std::vector<std::pair<std::string, std::string>> kv;
  for (int i = 0; i < 1000; i++) {
    kv.emplace_back(gen.Key(i), gen.Value(i));
  }
  size_t bytes = 0;
  for (auto _ : state) {
    BlockBuilder builder(16);
    for (const auto& [k, v] : kv) {
      builder.Add(k, v);
    }
    Slice raw = builder.Finish();
    benchmark::DoNotOptimize(raw);
    bytes += raw.size();
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_BlockBuild);

void BM_MergeIterate(benchmark::State& state) {
  // The S4 merge across `range(0)` sorted runs.
  const int runs = static_cast<int>(state.range(0));
  WorkloadGenerator gen(6000, 16, 100, KeyOrder::kSequential);
  std::vector<std::shared_ptr<Block>> blocks;
  for (int r = 0; r < runs; r++) {
    BlockBuilder builder(16);
    for (int i = r; i < 6000; i += runs) {
      builder.Add(gen.Key(i), gen.Value(i));
    }
    Slice raw = builder.Finish();
    char* buf = new char[raw.size()];
    std::memcpy(buf, raw.data(), raw.size());
    BlockContents contents;
    contents.data = Slice(buf, raw.size());
    contents.heap_allocated = true;
    contents.cachable = false;
    blocks.push_back(std::make_shared<Block>(contents));
  }

  uint64_t entries = 0;
  for (auto _ : state) {
    std::vector<Iterator*> children;
    for (auto& b : blocks) {
      children.push_back(b->NewIterator(BytewiseComparator()));
    }
    std::unique_ptr<Iterator> merged(NewMergingIterator(
        BytewiseComparator(), children.data(), (int)children.size()));
    for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
      benchmark::DoNotOptimize(merged->key());
      entries++;
    }
  }
  state.SetItemsProcessed(entries);
}
BENCHMARK(BM_MergeIterate)->Arg(2)->Arg(4)->Arg(8);

void BM_MemTableInsert(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  WorkloadGenerator gen(1u << 20, 16, 100, KeyOrder::kRandom);
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  uint64_t i = 0;
  for (auto _ : state) {
    mem->Add(i + 1, kTypeValue, gen.Key(i), gen.Value(i));
    i++;
    if (mem->ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem->Unref();
      mem = new MemTable(icmp);
      mem->Ref();
      state.ResumeTiming();
    }
  }
  mem->Unref();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableInsert);

void BM_WalAppend(benchmark::State& state) {
  SimEnv env;  // null device: measures the CPU cost of the record format
  std::unique_ptr<WritableFile> file;
  if (!env.NewWritableFile("/wal", &file).ok()) {
    state.SkipWithError("open failed");
    return;
  }
  log::Writer writer(file.get());
  std::string payload = MakePayload(static_cast<size_t>(state.range(0)), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.AddRecord(payload));
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_WalAppend)->Arg(128)->Arg(4 << 10)->Arg(64 << 10);

}  // namespace
}  // namespace pipelsm

BENCHMARK_MAIN();
