// E1 — Figure 5(a)(b): execution-time breakdown of the Sequential
// Compaction Procedure into read / compute / write, on HDD and on SSD.
//
// Paper's observations to reproduce:
//   HDD: step read > 40% of compaction time, read+write > 60%  → I/O-bound
//   SSD: compute steps > 60%, write slower than read            → CPU-bound
#include "bench_common.h"

using namespace pipelsm;
using namespace pipelsm::bench;

namespace {

void RunOne(const char* label, const DeviceProfile& device) {
  CompactionBenchConfig cfg;
  cfg.device = device;
  cfg.mode = CompactionMode::kSCP;
  cfg.upper_bytes = static_cast<uint64_t>((4 << 20) * Scale());
  cfg.lower_bytes = static_cast<uint64_t>((8 << 20) * Scale());
  CompactionRun run = RunCompaction(cfg);

  const StepProfile& p = run.profile;
  const double total_ms = p.TotalStepNanos() * 1e-6;
  std::printf("\n--- %s ---\n", label);
  std::printf("%-16s %10s %8s\n", "step", "ms", "share");
  for (int i = 0; i < kNumSteps; i++) {
    std::printf("%-16s %10.2f %7.1f%%\n",
                CompactionStepName(static_cast<CompactionStep>(i)),
                p.nanos[i] * 1e-6,
                total_ms > 0 ? 100.0 * p.nanos[i] * 1e-6 / total_ms : 0.0);
  }
  const double read_share = 100.0 * p.nanos[kStepRead] / p.TotalStepNanos();
  const double write_share = 100.0 * p.nanos[kStepWrite] / p.TotalStepNanos();
  const double compute_share = 100.0 * p.ComputeNanos() / p.TotalStepNanos();
  std::printf("aggregate: read %.1f%% | compute %.1f%% | write %.1f%%\n",
              read_share, compute_share, write_share);

  model::StepTimes t = model::StepTimes::FromProfile(p);
  std::printf("model: %s\n", model::Describe(t).c_str());
}

}  // namespace

int main() {
  PrintHeader("bench_breakdown — SCP execution-time breakdown",
              "Figure 5(a) on HDD, Figure 5(b) on SSD",
              "expect: HDD read>40%, I/O>60% (I/O-bound); "
              "SSD compute>60%, write>read (CPU-bound)");
  RunOne("HDD (Fig 5a)", DeviceProfile::Hdd());
  RunOne("SSD (Fig 5b)", DeviceProfile::Ssd());
  return 0;
}
