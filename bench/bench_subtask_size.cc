// E5 — Figure 11(a): compaction bandwidth vs sub-task size (64 KB..4 MB)
// at a fixed compaction size (4 MB upper-component input), on SSD.
//
// Paper's shape to reproduce: SCP bandwidth rises monotonically with
// sub-task (= I/O) size; PCP rises then falls — too-small sub-tasks
// underuse the device, too-large ones leave too few sub-tasks to
// pipeline. The paper's best PCP point is 512 KB.
#include "bench_common.h"

using namespace pipelsm;
using namespace pipelsm::bench;

int main() {
  PrintHeader("bench_subtask_size — bandwidth vs sub-task size (SSD)",
              "Figure 11(a)",
              "expect: SCP monotonically rising; PCP peaking at a middle "
              "sub-task size (paper: 512 KB), above SCP everywhere");

  std::printf("%-10s %14s %14s %9s %10s\n", "subtask", "SCP MiB/s",
              "PCP MiB/s", "speedup", "subtasks");
  for (size_t subtask_kb : {64, 128, 256, 512, 1024, 2048, 4096}) {
    CompactionRun runs[2];
    for (int m = 0; m < 2; m++) {
      CompactionBenchConfig cfg;
      cfg.device = DeviceProfile::Ssd();
      cfg.mode = m == 0 ? CompactionMode::kSCP : CompactionMode::kPCP;
      cfg.subtask_bytes = subtask_kb << 10;
      cfg.upper_bytes = static_cast<uint64_t>((4 << 20) * Scale());
      cfg.lower_bytes = static_cast<uint64_t>((8 << 20) * Scale());
      runs[m] = RunCompactionMedian(cfg);
    }
    std::printf("%6zuKB   %14.1f %14.1f %8.2fx %10llu\n", subtask_kb,
                runs[0].bandwidth_mib_s, runs[1].bandwidth_mib_s,
                runs[0].bandwidth_mib_s > 0
                    ? runs[1].bandwidth_mib_s / runs[0].bandwidth_mib_s
                    : 0,
                static_cast<unsigned long long>(runs[1].profile.subtasks));
  }
  return 0;
}
