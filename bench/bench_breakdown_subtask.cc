// E3 — Figure 9(a)(b): SCP step breakdown as the sub-task size grows from
// 64 KB to 4 MB, on HDD and on SSD.
//
// Paper's observation to reproduce: the write share shrinks as the
// sub-task (= I/O) size grows, because larger I/Os exploit the device's
// internal parallelism / amortize positioning.
#include "bench_common.h"

using namespace pipelsm;
using namespace pipelsm::bench;

namespace {

void RunDevice(const char* label, const DeviceProfile& device) {
  std::printf("\n--- %s ---\n", label);
  std::printf("%-10s %8s %9s %8s %12s\n", "subtask", "read%", "compute%",
              "write%", "B_scp MiB/s");
  for (size_t subtask_kb : {64, 128, 256, 512, 1024, 2048, 4096}) {
    CompactionBenchConfig cfg;
    cfg.device = device;
    cfg.mode = CompactionMode::kSCP;
    cfg.subtask_bytes = subtask_kb << 10;
    cfg.upper_bytes = static_cast<uint64_t>((4 << 20) * Scale());
    cfg.lower_bytes = static_cast<uint64_t>((8 << 20) * Scale());
    CompactionRun run = RunCompaction(cfg);
    const StepProfile& p = run.profile;
    const double total = p.TotalStepNanos();
    std::printf("%6zuKB   %7.1f%% %8.1f%% %7.1f%% %12.1f\n", subtask_kb,
                100.0 * p.nanos[kStepRead] / total,
                100.0 * p.ComputeNanos() / total,
                100.0 * p.nanos[kStepWrite] / total,
                ToMiB(p.SequentialBandwidth()));
  }
}

}  // namespace

int main() {
  PrintHeader("bench_breakdown_subtask — SCP breakdown vs sub-task size",
              "Figure 9(a) on HDD, Figure 9(b) on SSD",
              "expect: write share falls as sub-task size grows; HDD stays "
              "I/O-bound, SSD stays CPU-bound");
  RunDevice("HDD (Fig 9a)", DeviceProfile::Hdd());
  RunDevice("SSD (Fig 9b)", DeviceProfile::Ssd());
  return 0;
}
