// Ablations for the design choices DESIGN.md calls out:
//
//  A1. Inter-stage queue depth — the paper creates "a queue for data
//      communication" between adjacent stages but does not size it; this
//      sweep shows the bandwidth/memory trade-off and why a small depth
//      suffices (the slowest stage governs throughput; depth only buys
//      jitter absorption).
//  A2. S1 extent coalescing — per-block reads vs sub-task-sized reads
//      ("the I/O size is equal to the sub-task size"). Quantifies why
//      the paper's large compaction I/Os matter, per device class.
//  A3. Combined parallelism (R>1 AND C>1) — the generalized executor
//      runs both parallel variants at once, the natural next step the
//      paper's §III-C sets up (removing both bottlenecks together).
//  A4. Pipelined memtable flush — the paper pipelines only major
//      compactions; this measures extending the idea to the memtable
//      dump (Options::pipelined_flush).
//  A6. Write amplification by compaction policy — overwrite-heavy fill
//      under each Options::compaction_style; RESULT write_amp is
//      bytes-written amplification: compaction output bytes / user
//      bytes (docs/COMPACTION.md). Tiered should beat leveled here.
//  A7. Key-range sub-compactions — a manual full-range compaction with
//      max_subcompactions 1 vs 4 on a multi-stripe device must produce
//      byte-identical scans, with the split measurably faster.
#include "bench_common.h"

#include "src/db/builder.h"
#include "src/db/table_cache.h"
#include "src/memtable/memtable.h"
#include "src/version/version_edit.h"

using namespace pipelsm;
using namespace pipelsm::bench;

namespace {

CompactionBenchConfig BaseCfg(const DeviceProfile& device) {
  CompactionBenchConfig cfg;
  cfg.device = device;
  cfg.mode = CompactionMode::kPCP;
  cfg.upper_bytes = static_cast<uint64_t>((4 << 20) * Scale());
  cfg.lower_bytes = static_cast<uint64_t>((8 << 20) * Scale());
  cfg.subtask_bytes = 256 << 10;
  return cfg;
}

// RunCompaction variant honoring extra job fields via a thin copy of the
// helper (bench_common's RunCompaction does not expose queue depth /
// coalescing).
CompactionRun RunWith(const CompactionBenchConfig& cfg, size_t queue_depth,
                      bool coalesce) {
  SimEnv env(DilatedProfile(cfg.device, cfg.time_dilation));
  InternalKeyComparator icmp(BytewiseComparator());

  TableGenOptions gen;
  gen.env = &env;
  gen.icmp = &icmp;
  gen.upper_bytes = cfg.upper_bytes;
  gen.lower_bytes = cfg.lower_bytes;
  CompactionInputs inputs;
  Status s = GenerateCompactionInputs(gen, &inputs);
  if (!s.ok()) std::exit(1);
  env.device()->ResetStats();

  CompactionJobOptions job;
  job.icmp = &icmp;
  job.subtask_bytes = cfg.subtask_bytes;
  job.read_parallelism = cfg.read_parallelism;
  job.compute_parallelism = cfg.compute_parallelism;
  job.time_dilation = cfg.time_dilation;
  job.queue_depth = queue_depth;
  job.coalesce_reads = coalesce;

  auto executor = NewCompactionExecutor(cfg.mode);
  CountingSink sink(&env, "/out");
  CompactionRun run;
  s = executor->Run(job, inputs.tables, &sink, &run.profile);
  if (!s.ok()) std::exit(1);
  run.wall_seconds = run.profile.wall_nanos * 1e-9;
  run.bandwidth_mib_s =
      run.wall_seconds > 0 ? ToMiB(run.profile.input_bytes) / run.wall_seconds
                           : 0;
  return run;
}

// ---- A6 helper: overwrite-heavy DB fill under one compaction policy ----

struct StyleWaRun {
  double user_mib = 0;
  double compaction_mib = 0;
  double write_amp = 0;  // compaction bytes written / user bytes
  uint64_t compactions = 0;
};

StyleWaRun RunOverwriteFill(CompactionStyle style) {
  SimEnv env(DeviceProfile::Ssd());
  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.compaction_mode = CompactionMode::kPCP;
  options.write_buffer_size = 64 << 10;  // many flushes -> deep tree
  options.max_file_size = 64 << 10;
  options.subtask_bytes = 32 << 10;
  options.block_size = 4 << 10;
  options.compaction_style = style;
  options.tiered_run_count = 4;

  DB* raw = nullptr;
  Status s = DB::Open(options, "/db", &raw);
  if (!s.ok()) std::exit(1);
  std::unique_ptr<DB> db(raw);

  // Each distinct key is rewritten ~15x on average, so most compaction
  // input is shadowed versions — the regime where policy choice moves
  // write amplification the most.
  const uint64_t writes = static_cast<uint64_t>(60000 * Scale());
  const uint64_t distinct = static_cast<uint64_t>(4000 * Scale());
  WorkloadGenerator gen(distinct, 16, 100, KeyOrder::kRandom);
  uint32_t rng = 301;
  uint64_t user_bytes = 0;
  for (uint64_t i = 0; i < writes; i++) {
    rng = rng * 1664525u + 1013904223u;  // Numerical Recipes LCG
    const uint64_t k = rng % distinct;
    const std::string key = gen.Key(k);
    const std::string value = gen.Value(k);
    user_bytes += key.size() + value.size();
    s = db->Put(WriteOptions(), key, value);
    if (!s.ok()) std::exit(1);
  }
  db->WaitForCompactions();

  const CompactionMetrics m = db->GetCompactionMetrics();
  StyleWaRun run;
  run.user_mib = ToMiB(static_cast<double>(user_bytes));
  run.compaction_mib = ToMiB(static_cast<double>(m.compaction_bytes_written));
  run.write_amp = user_bytes > 0 ? static_cast<double>(
                                       m.compaction_bytes_written) /
                                       static_cast<double>(user_bytes)
                                 : 0;
  run.compactions = m.compactions;
  return run;
}

// ---- A7 helpers: sub-compaction equivalence + speedup ----

// FNV-1a over every (key, value) the DB serves, in scan order. Two DBs
// with identical logical contents hash identically.
uint64_t ScanChecksum(DB* db, uint64_t* entries) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const Slice& s) {
    for (size_t i = 0; i < s.size(); i++) {
      h ^= static_cast<unsigned char>(s.data()[i]);
      h *= 1099511628211ull;
    }
  };
  *entries = 0;
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    mix(it->key());
    mix(it->value());
    (*entries)++;
  }
  if (!it->status().ok()) std::exit(1);
  return h;
}

struct SubcompactionRun {
  double compact_seconds = 0;  // wall time of the manual CompactRange
  uint64_t checksum = 0;
  uint64_t entries = 0;
};

SubcompactionRun RunSubcompaction(int max_subcompactions) {
  // SCP is deliberate: one SCP job is single-threaded, so key-range
  // fan-out is its only source of concurrency and the speedup isolates
  // what splitting itself buys. (Under the pipelined executors a lone
  // job already spends the granted read/compute budget internally, so
  // splitting merely redistributes it.) Four stripes + four granted
  // readers: max_subcompactions=4 runs 4 concurrent SCP pipelines, one
  // per stripe. The x8 slow-motion domain lets their compute overlap
  // genuinely on small hosts, as in A3.
  SimEnv env(DilatedProfile(DeviceProfile::Ssd(4), 8.0));
  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.compaction_mode = CompactionMode::kSCP;
  options.compaction_time_dilation = 8.0;
  options.io_parallelism = 4;
  options.compute_parallelism = 4;
  options.write_buffer_size = 256 << 10;
  options.max_file_size = 256 << 10;
  options.subtask_bytes = 64 << 10;
  options.block_size = 4 << 10;
  options.max_subcompactions = max_subcompactions;

  DB* raw = nullptr;
  Status s = DB::Open(options, "/db", &raw);
  if (!s.ok()) std::exit(1);
  std::unique_ptr<DB> db(raw);

  FillOptions fill;
  fill.num_entries = static_cast<uint64_t>(30000 * Scale());
  fill.key_size = 16;
  fill.value_size = 100;
  fill.order = KeyOrder::kRandom;
  FillResult result;
  s = RunFill(db.get(), fill, &result);
  if (!s.ok()) std::exit(1);

  SubcompactionRun run;
  Stopwatch sw;
  db->CompactRange(nullptr, nullptr);
  run.compact_seconds = sw.ElapsedSeconds();
  run.checksum = ScanChecksum(db.get(), &run.entries);
  return run;
}

}  // namespace

int main() {
  PrintHeader("bench_ablation — design-choice ablations",
              "DESIGN.md §5 (queue depth, S1 coalescing, combined R+C)",
              "A1: bandwidth ~flat across depths (slowest stage governs); "
              "A2: coalescing pays wherever per-command cost exists — "
              "dramatically on SSD (per-command latency), modestly on HDD "
              "(stream heads already absorb block-to-block positioning); "
              "A3: R&C together beats either alone when both resources "
              "can bottleneck");

  // ---- A1: queue depth (SSD, PCP) ----
  std::printf("\nA1. inter-stage queue depth (SSD, PCP, 256 KB sub-tasks)\n");
  std::printf("%-8s %14s\n", "depth", "PCP MiB/s");
  for (size_t depth : {1, 2, 4, 8, 16}) {
    CompactionRun run = RunWith(BaseCfg(DeviceProfile::Ssd()), depth, true);
    std::printf("%-8zu %14.1f\n", depth, run.bandwidth_mib_s);
  }

  // ---- A2: extent coalescing (both devices, SCP to isolate S1) ----
  std::printf("\nA2. S1 extent coalescing (SCP)\n");
  std::printf("%-8s %18s %18s %9s\n", "device", "per-block MiB/s",
              "coalesced MiB/s", "gain");
  for (const DeviceProfile& device :
       {DeviceProfile::Hdd(), DeviceProfile::Ssd()}) {
    CompactionBenchConfig cfg = BaseCfg(device);
    cfg.mode = CompactionMode::kSCP;
    CompactionRun per_block = RunWith(cfg, 4, false);
    CompactionRun coalesced = RunWith(cfg, 4, true);
    std::printf("%-8s %18.1f %18.1f %8.2fx\n", device.name.c_str(),
                per_block.bandwidth_mib_s, coalesced.bandwidth_mib_s,
                per_block.bandwidth_mib_s > 0
                    ? coalesced.bandwidth_mib_s / per_block.bandwidth_mib_s
                    : 0);
  }

  // ---- A3: combined storage+computation parallelism ----
  // HDD RAID0x3 makes I/O cheap; k=3 computers then lift the new compute
  // bottleneck — something neither S-PPCP nor C-PPCP does alone.
  // Runs in the x8 slow-motion domain so compute workers can overlap.
  std::printf("\nA3. combined parallelism (HDD RAID0x3, x8 domain)\n");
  std::printf("%-22s %14s\n", "configuration", "bw MiB/s (x8)");
  struct {
    const char* name;
    CompactionMode mode;
    int readers, computers;
  } cases[] = {
      {"PCP (1r,1c)", CompactionMode::kPCP, 1, 1},
      {"S-PPCP (3r,1c)", CompactionMode::kSPPCP, 3, 1},
      {"C-PPCP (1r,3c)", CompactionMode::kCPPCP, 1, 3},
      {"combined (3r,3c)", CompactionMode::kSPPCP, 3, 3},
  };
  for (const auto& c : cases) {
    CompactionBenchConfig cfg = BaseCfg(DeviceProfile::Hdd(3));
    cfg.mode = c.mode;
    cfg.read_parallelism = c.readers;
    cfg.compute_parallelism = c.computers;
    cfg.time_dilation = 8.0;
    CompactionRun run = RunWith(cfg, 4, true);
    std::printf("%-22s %14.1f\n", c.name, run.bandwidth_mib_s);
  }
  // ---- A4: pipelined memtable flush (extension beyond the paper) ----
  // The paper pipelines only major compactions ("other operations ... are
  // not pipelined by now"); this measures what pipelining the memtable
  // dump adds, on a device where write time ~ block-building time.
  std::printf("\nA4. memtable flush: sequential vs pipelined builder\n");
  {
    InternalKeyComparator icmp(BytewiseComparator());
    DeviceProfile dev = DeviceProfile::Ssd();
    dev.write_bw_bps = 120.0 * 1024 * 1024;
    MemTable* mem = new MemTable(icmp);
    mem->Ref();
    const uint64_t entries = static_cast<uint64_t>(40000 * Scale());
    WorkloadGenerator gen(entries, 16, 100, KeyOrder::kRandom);
    for (uint64_t i = 0; i < entries; i++) {
      mem->Add(i + 1, kTypeValue, gen.Key(i), gen.Value(i));
    }
    double seconds[2] = {1e9, 1e9};
    for (int round = 0; round < 3; round++) {
      for (int mode = 0; mode < 2; mode++) {
        SimEnv env(dev);
        env.CreateDir("/db");
        TableOptions topt;
        topt.comparator = &icmp;
        TableCache cache("/db", topt, &env, 10);
        FileMetaData meta;
        meta.number = 1;
        std::unique_ptr<Iterator> it(mem->NewIterator());
        Stopwatch sw;
        Status s = mode == 0 ? BuildTable("/db", &env, topt, &cache,
                                          it.get(), &meta)
                             : BuildTablePipelined("/db", &env, topt, &cache,
                                                   it.get(), &meta);
        if (!s.ok()) std::exit(1);
        seconds[mode] = std::min(seconds[mode], sw.ElapsedSeconds());
      }
    }
    mem->Unref();
    std::printf("%-22s %10.1f ms\n", "sequential (BuildTable)",
                seconds[0] * 1e3);
    std::printf("%-22s %10.1f ms  (%.0f%% faster)\n", "pipelined",
                seconds[1] * 1e3, 100.0 * (1 - seconds[1] / seconds[0]));
  }

  // ---- A6: write amplification by compaction policy ----
  // Overwrite-heavy fill: leveled re-merges the same shadowed versions
  // into L1+ again and again; tiered defers merging until T runs stack
  // up, so each byte is rewritten far fewer times (docs/COMPACTION.md).
  std::printf("\nA6. write amplification by compaction policy "
              "(overwrite-heavy fill, SSD)\n");
  std::printf("%-14s %10s %16s %11s %13s\n", "style", "user MiB",
              "compaction MiB", "write-amp", "compactions");
  double wa_by_style[3] = {0, 0, 0};
  for (CompactionStyle style :
       {CompactionStyle::kLeveled, CompactionStyle::kTiered,
        CompactionStyle::kLazyLeveling}) {
    StyleWaRun run = RunOverwriteFill(style);
    wa_by_style[static_cast<int>(style)] = run.write_amp;
    std::printf("%-14s %10.1f %16.1f %11.2f %13llu\n",
                CompactionStyleName(style), run.user_mib, run.compaction_mib,
                run.write_amp,
                static_cast<unsigned long long>(run.compactions));
    std::printf("RESULT {\"ablation\":\"write_amp\",\"style\":\"%s\","
                "\"user_mib\":%.2f,\"compaction_mib\":%.2f,"
                "\"write_amp\":%.3f}\n",
                CompactionStyleName(style), run.user_mib, run.compaction_mib,
                run.write_amp);
  }
  {
    const double leveled = wa_by_style[static_cast<int>(CompactionStyle::kLeveled)];
    const double tiered = wa_by_style[static_cast<int>(CompactionStyle::kTiered)];
    std::printf("tiered %s leveled on bytes-written write amplification "
                "(%.2f vs %.2f)\n", tiered < leveled ? "beats" : "DOES NOT beat",
                tiered, leveled);
    if (tiered >= leveled) {
      std::fprintf(stderr, "A6 FAILED: expected tiered write-amp < leveled\n");
      return 1;
    }
  }

  // ---- A7: key-range sub-compactions ----
  std::printf("\nA7. sub-compaction split (manual full compaction, SCP, "
              "SSD RAID0x4, x8 domain)\n");
  SubcompactionRun serial = RunSubcompaction(1);
  SubcompactionRun split = RunSubcompaction(4);
  std::printf("%-26s %10.1f ms\n", "max_subcompactions=1",
              serial.compact_seconds * 1e3);
  std::printf("%-26s %10.1f ms  (%.2fx speedup)\n", "max_subcompactions=4",
              split.compact_seconds * 1e3,
              split.compact_seconds > 0
                  ? serial.compact_seconds / split.compact_seconds
                  : 0);
  std::printf("RESULT {\"ablation\":\"subcompaction\",\"serial_ms\":%.1f,"
              "\"split_ms\":%.1f,\"speedup\":%.3f,\"identical\":%s}\n",
              serial.compact_seconds * 1e3, split.compact_seconds * 1e3,
              split.compact_seconds > 0
                  ? serial.compact_seconds / split.compact_seconds
                  : 0,
              serial.checksum == split.checksum &&
                      serial.entries == split.entries
                  ? "true"
                  : "false");
  if (serial.checksum != split.checksum || serial.entries != split.entries) {
    std::fprintf(stderr,
                 "A7 FAILED: scans differ (entries %llu vs %llu, "
                 "checksum %016llx vs %016llx)\n",
                 static_cast<unsigned long long>(serial.entries),
                 static_cast<unsigned long long>(split.entries),
                 static_cast<unsigned long long>(serial.checksum),
                 static_cast<unsigned long long>(split.checksum));
    return 1;
  }
  std::printf("scan oracle: %llu entries, checksums identical\n",
              static_cast<unsigned long long>(split.entries));
  return 0;
}
