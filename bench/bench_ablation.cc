// Ablations for the design choices DESIGN.md calls out:
//
//  A1. Inter-stage queue depth — the paper creates "a queue for data
//      communication" between adjacent stages but does not size it; this
//      sweep shows the bandwidth/memory trade-off and why a small depth
//      suffices (the slowest stage governs throughput; depth only buys
//      jitter absorption).
//  A2. S1 extent coalescing — per-block reads vs sub-task-sized reads
//      ("the I/O size is equal to the sub-task size"). Quantifies why
//      the paper's large compaction I/Os matter, per device class.
//  A3. Combined parallelism (R>1 AND C>1) — the generalized executor
//      runs both parallel variants at once, the natural next step the
//      paper's §III-C sets up (removing both bottlenecks together).
//  A4. Pipelined memtable flush — the paper pipelines only major
//      compactions; this measures extending the idea to the memtable
//      dump (Options::pipelined_flush).
#include "bench_common.h"

#include "src/db/builder.h"
#include "src/db/table_cache.h"
#include "src/memtable/memtable.h"
#include "src/version/version_edit.h"

using namespace pipelsm;
using namespace pipelsm::bench;

namespace {

CompactionBenchConfig BaseCfg(const DeviceProfile& device) {
  CompactionBenchConfig cfg;
  cfg.device = device;
  cfg.mode = CompactionMode::kPCP;
  cfg.upper_bytes = static_cast<uint64_t>((4 << 20) * Scale());
  cfg.lower_bytes = static_cast<uint64_t>((8 << 20) * Scale());
  cfg.subtask_bytes = 256 << 10;
  return cfg;
}

// RunCompaction variant honoring extra job fields via a thin copy of the
// helper (bench_common's RunCompaction does not expose queue depth /
// coalescing).
CompactionRun RunWith(const CompactionBenchConfig& cfg, size_t queue_depth,
                      bool coalesce) {
  SimEnv env(DilatedProfile(cfg.device, cfg.time_dilation));
  InternalKeyComparator icmp(BytewiseComparator());

  TableGenOptions gen;
  gen.env = &env;
  gen.icmp = &icmp;
  gen.upper_bytes = cfg.upper_bytes;
  gen.lower_bytes = cfg.lower_bytes;
  CompactionInputs inputs;
  Status s = GenerateCompactionInputs(gen, &inputs);
  if (!s.ok()) std::exit(1);
  env.device()->ResetStats();

  CompactionJobOptions job;
  job.icmp = &icmp;
  job.subtask_bytes = cfg.subtask_bytes;
  job.read_parallelism = cfg.read_parallelism;
  job.compute_parallelism = cfg.compute_parallelism;
  job.time_dilation = cfg.time_dilation;
  job.queue_depth = queue_depth;
  job.coalesce_reads = coalesce;

  auto executor = NewCompactionExecutor(cfg.mode);
  CountingSink sink(&env, "/out");
  CompactionRun run;
  s = executor->Run(job, inputs.tables, &sink, &run.profile);
  if (!s.ok()) std::exit(1);
  run.wall_seconds = run.profile.wall_nanos * 1e-9;
  run.bandwidth_mib_s =
      run.wall_seconds > 0 ? ToMiB(run.profile.input_bytes) / run.wall_seconds
                           : 0;
  return run;
}

}  // namespace

int main() {
  PrintHeader("bench_ablation — design-choice ablations",
              "DESIGN.md §5 (queue depth, S1 coalescing, combined R+C)",
              "A1: bandwidth ~flat across depths (slowest stage governs); "
              "A2: coalescing pays wherever per-command cost exists — "
              "dramatically on SSD (per-command latency), modestly on HDD "
              "(stream heads already absorb block-to-block positioning); "
              "A3: R&C together beats either alone when both resources "
              "can bottleneck");

  // ---- A1: queue depth (SSD, PCP) ----
  std::printf("\nA1. inter-stage queue depth (SSD, PCP, 256 KB sub-tasks)\n");
  std::printf("%-8s %14s\n", "depth", "PCP MiB/s");
  for (size_t depth : {1, 2, 4, 8, 16}) {
    CompactionRun run = RunWith(BaseCfg(DeviceProfile::Ssd()), depth, true);
    std::printf("%-8zu %14.1f\n", depth, run.bandwidth_mib_s);
  }

  // ---- A2: extent coalescing (both devices, SCP to isolate S1) ----
  std::printf("\nA2. S1 extent coalescing (SCP)\n");
  std::printf("%-8s %18s %18s %9s\n", "device", "per-block MiB/s",
              "coalesced MiB/s", "gain");
  for (const DeviceProfile& device :
       {DeviceProfile::Hdd(), DeviceProfile::Ssd()}) {
    CompactionBenchConfig cfg = BaseCfg(device);
    cfg.mode = CompactionMode::kSCP;
    CompactionRun per_block = RunWith(cfg, 4, false);
    CompactionRun coalesced = RunWith(cfg, 4, true);
    std::printf("%-8s %18.1f %18.1f %8.2fx\n", device.name.c_str(),
                per_block.bandwidth_mib_s, coalesced.bandwidth_mib_s,
                per_block.bandwidth_mib_s > 0
                    ? coalesced.bandwidth_mib_s / per_block.bandwidth_mib_s
                    : 0);
  }

  // ---- A3: combined storage+computation parallelism ----
  // HDD RAID0x3 makes I/O cheap; k=3 computers then lift the new compute
  // bottleneck — something neither S-PPCP nor C-PPCP does alone.
  // Runs in the x8 slow-motion domain so compute workers can overlap.
  std::printf("\nA3. combined parallelism (HDD RAID0x3, x8 domain)\n");
  std::printf("%-22s %14s\n", "configuration", "bw MiB/s (x8)");
  struct {
    const char* name;
    CompactionMode mode;
    int readers, computers;
  } cases[] = {
      {"PCP (1r,1c)", CompactionMode::kPCP, 1, 1},
      {"S-PPCP (3r,1c)", CompactionMode::kSPPCP, 3, 1},
      {"C-PPCP (1r,3c)", CompactionMode::kCPPCP, 1, 3},
      {"combined (3r,3c)", CompactionMode::kSPPCP, 3, 3},
  };
  for (const auto& c : cases) {
    CompactionBenchConfig cfg = BaseCfg(DeviceProfile::Hdd(3));
    cfg.mode = c.mode;
    cfg.read_parallelism = c.readers;
    cfg.compute_parallelism = c.computers;
    cfg.time_dilation = 8.0;
    CompactionRun run = RunWith(cfg, 4, true);
    std::printf("%-22s %14.1f\n", c.name, run.bandwidth_mib_s);
  }
  // ---- A4: pipelined memtable flush (extension beyond the paper) ----
  // The paper pipelines only major compactions ("other operations ... are
  // not pipelined by now"); this measures what pipelining the memtable
  // dump adds, on a device where write time ~ block-building time.
  std::printf("\nA4. memtable flush: sequential vs pipelined builder\n");
  {
    InternalKeyComparator icmp(BytewiseComparator());
    DeviceProfile dev = DeviceProfile::Ssd();
    dev.write_bw_bps = 120.0 * 1024 * 1024;
    MemTable* mem = new MemTable(icmp);
    mem->Ref();
    const uint64_t entries = static_cast<uint64_t>(40000 * Scale());
    WorkloadGenerator gen(entries, 16, 100, KeyOrder::kRandom);
    for (uint64_t i = 0; i < entries; i++) {
      mem->Add(i + 1, kTypeValue, gen.Key(i), gen.Value(i));
    }
    double seconds[2] = {1e9, 1e9};
    for (int round = 0; round < 3; round++) {
      for (int mode = 0; mode < 2; mode++) {
        SimEnv env(dev);
        env.CreateDir("/db");
        TableOptions topt;
        topt.comparator = &icmp;
        TableCache cache("/db", topt, &env, 10);
        FileMetaData meta;
        meta.number = 1;
        std::unique_ptr<Iterator> it(mem->NewIterator());
        Stopwatch sw;
        Status s = mode == 0 ? BuildTable("/db", &env, topt, &cache,
                                          it.get(), &meta)
                             : BuildTablePipelined("/db", &env, topt, &cache,
                                                   it.get(), &meta);
        if (!s.ok()) std::exit(1);
        seconds[mode] = std::min(seconds[mode], sw.ElapsedSeconds());
      }
    }
    mem->Unref();
    std::printf("%-22s %10.1f ms\n", "sequential (BuildTable)",
                seconds[0] * 1e3);
    std::printf("%-22s %10.1f ms  (%.0f%% faster)\n", "pipelined",
                seconds[1] * 1e3, 100.0 * (1 - seconds[1] / seconds[0]));
  }
  return 0;
}
