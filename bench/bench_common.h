// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary regenerates one table/figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index) and prints the
// same series the figure plots, plus the analytic model's prediction.
// Absolute numbers will differ from the paper's 2013 testbed; the shapes
// (who wins, by what factor, where crossovers fall) are the reproduction
// target.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/compaction/executor.h"
#include "src/db/db.h"
#include "src/env/sim_env.h"
#include "src/model/model.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/workload/driver.h"
#include "src/workload/table_gen.h"

namespace pipelsm::bench {

// Scale factor for dataset sizes: PIPELSM_BENCH_SCALE=4 quadruples every
// workload (closer to the paper, slower to run). Default 1 finishes the
// whole bench suite in minutes on a laptop.
inline double Scale() {
  const char* s = std::getenv("PIPELSM_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

inline double ToMiB(double bytes) { return bytes / (1024.0 * 1024.0); }

// Every bench run fills a metrics registry (queue stalls, step times —
// docs/OBSERVABILITY.md) and returns its JSON snapshot; set
// PIPELSM_BENCH_METRICS=1 to also print each blob as it is produced, so
// any bench emits machine-readable telemetry alongside its table.
inline void MaybePrintMetrics(const char* what, const std::string& json) {
  const char* flag = std::getenv("PIPELSM_BENCH_METRICS");
  if (flag == nullptr || flag[0] == '\0' || flag[0] == '0') return;
  std::printf("METRICS %s %s\n", what, json.c_str());
}

struct CompactionRun {
  StepProfile profile;
  double wall_seconds = 0;
  double bandwidth_mib_s = 0;  // input bytes / wall seconds
  uint64_t output_files = 0;
  uint64_t output_bytes = 0;
  std::string metrics_json;    // registry snapshot for this run
};

struct CompactionBenchConfig {
  DeviceProfile device = DeviceProfile::Ssd();
  CompactionMode mode = CompactionMode::kSCP;
  int read_parallelism = 1;
  int compute_parallelism = 1;
  double time_dilation = 1.0;

  // Optional: collect per-sub-task stage spans of the run (the caller
  // owns the collector and decides when/where to WriteFile it).
  obs::TraceCollector* trace = nullptr;

  uint64_t upper_bytes = 4 << 20;  // paper Fig 11(a) default input
  uint64_t lower_bytes = 8 << 20;
  size_t key_size = 16;    // paper §IV-A
  size_t value_size = 100;
  size_t subtask_bytes = 512 << 10;
  size_t block_size = 4 << 10;
  uint64_t max_output_file_size = 2 << 20;
  uint32_t seed = 301;
};

// Generates fresh inputs on a simulated device and runs one compaction
// through the selected executor. Exits on error (benches are scripts).
inline CompactionRun RunCompaction(const CompactionBenchConfig& cfg) {
  SimEnv env(DilatedProfile(cfg.device, cfg.time_dilation));
  InternalKeyComparator icmp(BytewiseComparator());

  TableGenOptions gen;
  gen.env = &env;
  gen.icmp = &icmp;
  gen.upper_bytes = cfg.upper_bytes;
  gen.lower_bytes = cfg.lower_bytes;
  gen.key_size = cfg.key_size;
  gen.value_size = cfg.value_size;
  gen.block_size = cfg.block_size;
  gen.seed = cfg.seed;
  CompactionInputs inputs;
  Status s = GenerateCompactionInputs(gen, &inputs);
  if (!s.ok()) {
    std::fprintf(stderr, "input generation failed: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }
  // Input generation also charged the device; settle the model clock by
  // resetting stats (timing state in channels is wall-clock based and
  // already in the past by the time the run starts).
  env.device()->ResetStats();

  CompactionJobOptions job;
  job.icmp = &icmp;
  job.subtask_bytes = cfg.subtask_bytes;
  job.block_size = cfg.block_size;
  job.max_output_file_size = cfg.max_output_file_size;
  job.read_parallelism = cfg.read_parallelism;
  job.compute_parallelism = cfg.compute_parallelism;
  job.time_dilation = cfg.time_dilation;

  obs::MetricsRegistry registry;
  job.metrics = &registry;
  job.trace = cfg.trace;

  auto executor = NewCompactionExecutor(cfg.mode);
  CountingSink sink(&env, "/out");
  CompactionRun run;
  s = executor->Run(job, inputs.tables, &sink, &run.profile);
  if (!s.ok()) {
    std::fprintf(stderr, "compaction failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  run.metrics_json = registry.ToJson();
  MaybePrintMetrics(CompactionModeName(cfg.mode), run.metrics_json);
  run.wall_seconds = run.profile.wall_nanos * 1e-9;
  run.bandwidth_mib_s =
      run.wall_seconds > 0 ? ToMiB(run.profile.input_bytes) / run.wall_seconds
                           : 0;
  run.output_files = sink.outputs().size();
  run.output_bytes = sink.total_output_bytes();
  return run;
}

struct DbRun {
  double iops = 0;             // paper's "IOPS": insert ops/sec
  double compaction_mib_s = 0; // compaction bandwidth over wall time
  CompactionMetrics metrics;
  std::string metrics_json;    // GetProperty("pipelsm.metrics") snapshot
};

struct DbBenchConfig {
  DeviceProfile device = DeviceProfile::Ssd();
  CompactionMode mode = CompactionMode::kPCP;
  int read_parallelism = 1;
  int compute_parallelism = 1;
  double time_dilation = 1.0;

  uint64_t num_entries = 50000;
  size_t key_size = 16;
  size_t value_size = 100;
  KeyOrder order = KeyOrder::kRandom;

  // The paper writes 10M-80M entries against a 4 MB memtable / 2 MB
  // SSTables (~300-2300 memtable flushes). These benches scale the
  // dataset down ~100x, so the tree shape is preserved by scaling the
  // component sizes down equally — otherwise nothing ever compacts and
  // the experiment degenerates.
  size_t write_buffer_size = 256 << 10;
  size_t max_file_size = 256 << 10;
  size_t subtask_bytes = 64 << 10;

  // Compaction policy knobs (docs/COMPACTION.md).
  CompactionStyle style = CompactionStyle::kLeveled;
  int tiered_run_count = 4;
  int max_subcompactions = 1;
};

// Fills a fresh DB on a simulated device and reports system throughput +
// compaction bandwidth (Figs 10 and 12, panels (a)(b)(d)(e)).
inline DbRun RunDbFill(const DbBenchConfig& cfg) {
  SimEnv env(DilatedProfile(cfg.device, cfg.time_dilation));
  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.compaction_mode = cfg.mode;
  options.io_parallelism = cfg.read_parallelism;
  options.compute_parallelism = cfg.compute_parallelism;
  options.compaction_time_dilation = cfg.time_dilation;
  options.write_buffer_size = cfg.write_buffer_size;
  options.max_file_size = cfg.max_file_size;
  options.subtask_bytes = cfg.subtask_bytes;
  options.block_size = 4 << 10;  // paper §IV-A
  options.compaction_style = cfg.style;
  options.tiered_run_count = cfg.tiered_run_count;
  options.max_subcompactions = cfg.max_subcompactions;

  DB* raw = nullptr;
  Status s = DB::Open(options, "/db", &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "DB::Open failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<DB> db(raw);

  FillOptions fill;
  fill.num_entries = cfg.num_entries;
  fill.key_size = cfg.key_size;
  fill.value_size = cfg.value_size;
  fill.order = cfg.order;
  FillResult result;
  s = RunFill(db.get(), fill, &result);
  if (!s.ok()) {
    std::fprintf(stderr, "fill failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  DbRun run;
  run.iops = result.ops_per_sec;
  run.compaction_mib_s = ToMiB(result.compaction_bandwidth);
  run.metrics = result.compaction;
  db->GetProperty("pipelsm.metrics", &run.metrics_json);
  MaybePrintMetrics(CompactionModeName(cfg.mode), run.metrics_json);
  return run;
}

// Median-of-N wrapper smoothing out compaction-scheduling discretization
// noise at the benches' scaled-down dataset sizes.
inline DbRun RunDbFillMedian(const DbBenchConfig& cfg, int reps = 3) {
  std::vector<DbRun> runs;
  for (int i = 0; i < reps; i++) {
    runs.push_back(RunDbFill(cfg));
  }
  auto median_by = [&](auto key) {
    std::vector<double> v;
    for (const auto& r : runs) v.push_back(key(r));
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  DbRun median = runs[reps / 2];
  median.iops = median_by([](const DbRun& r) { return r.iops; });
  median.compaction_mib_s =
      median_by([](const DbRun& r) { return r.compaction_mib_s; });
  return median;
}

inline CompactionRun RunCompactionMedian(const CompactionBenchConfig& cfg,
                                         int reps = 3) {
  std::vector<CompactionRun> runs;
  for (int i = 0; i < reps; i++) {
    runs.push_back(RunCompaction(cfg));
  }
  std::sort(runs.begin(), runs.end(),
            [](const CompactionRun& a, const CompactionRun& b) {
              return a.bandwidth_mib_s < b.bandwidth_mib_s;
            });
  return runs[runs.size() / 2];
}

inline void PrintHeader(const char* title, const char* figure,
                        const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", figure);
  std::printf("%s\n", what);
  std::printf("================================================================\n");
}

}  // namespace pipelsm::bench
