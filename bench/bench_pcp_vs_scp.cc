// E4 — Figure 10(a)-(f): SCP vs PCP as the working set grows, on HDD and
// on SSD. Panels: (a)(d) system IOPS, (b)(e) compaction bandwidth,
// (c)(f) normalized speedups.
//
// Paper's numbers to reproduce in shape: PCP improves IOPS by >=25% on
// HDD and >=45% on SSD; compaction bandwidth by >=45% (HDD) and >=65%
// (SSD); throughput speedup trails bandwidth speedup (non-compaction work
// is not pipelined); practical speedup sits below the Eq. 3 ideal by
// roughly the pipeline fill/drain overhead.
//
// Scale note: the paper sweeps 10M..80M entries on a 2013 server; this
// bench sweeps a proportionally scaled dataset (PIPELSM_BENCH_SCALE
// multiplies it).
#include "bench_common.h"

using namespace pipelsm;
using namespace pipelsm::bench;

namespace {

void RunDevice(const char* label, const DeviceProfile& device,
               size_t subtask_bytes) {
  std::printf("\n--- %s ---\n", label);
  std::printf("%-10s %12s %12s %14s %14s %9s %9s %9s\n", "entries",
              "SCP IOPS", "PCP IOPS", "SCP bw MiB/s", "PCP bw MiB/s",
              "IOPS spd", "bw spd", "ideal");

  const uint64_t base = static_cast<uint64_t>(10000 * Scale());
  for (uint64_t entries : {base, 2 * base, 4 * base, 8 * base}) {
    DbRun runs[2];
    model::StepTimes scp_steps;
    for (int m = 0; m < 2; m++) {
      DbBenchConfig cfg;
      cfg.device = device;
      cfg.mode = m == 0 ? CompactionMode::kSCP : CompactionMode::kPCP;
      cfg.num_entries = entries;
      cfg.subtask_bytes = subtask_bytes;
      cfg.time_dilation = 3.0;  // paper's writer/compaction core separation
      runs[m] = RunDbFillMedian(cfg);
      if (m == 0) {
        scp_steps = model::StepTimes::FromProfile(runs[0].metrics.profile);
      }
    }
    const double iops_speedup =
        runs[0].iops > 0 ? runs[1].iops / runs[0].iops : 0;
    const double bw_speedup = runs[0].compaction_mib_s > 0
                                  ? runs[1].compaction_mib_s /
                                        runs[0].compaction_mib_s
                                  : 0;
    std::printf("%-10llu %12.0f %12.0f %14.1f %14.1f %8.2fx %8.2fx %8.2fx\n",
                static_cast<unsigned long long>(entries), runs[0].iops,
                runs[1].iops, runs[0].compaction_mib_s,
                runs[1].compaction_mib_s, iops_speedup, bw_speedup,
                model::PcpIdealSpeedup(scp_steps));
  }
}

}  // namespace

int main() {
  PrintHeader(
      "bench_pcp_vs_scp — SCP vs PCP across dataset sizes",
      "Figure 10(a)-(c) on HDD, Figure 10(d)-(f) on SSD",
      "expect: PCP IOPS +>=25% (HDD) / +>=45% (SSD); PCP compaction "
      "bandwidth +>=45% (HDD) / +>=65% (SSD); measured < ideal (Eq. 3)");
  // Sub-task sizes match each device's regime: seek-dominated HDDs need
  // larger I/Os (Fig 9a), SSDs peak near small-to-middle sizes (Fig 11a).
  RunDevice("HDD (Fig 10 a-c)", DeviceProfile::Hdd(), 256 << 10);
  RunDevice("SSD (Fig 10 d-f)", DeviceProfile::Ssd(), 64 << 10);
  return 0;
}
