// E9 — Equations 1-7: measured vs predicted compaction bandwidths.
//
// The paper validates its model implicitly ("the practical compaction
// bandwidth speedup is lower [than ideal] by about 10%" — pipeline
// fill/drain). This bench makes that comparison explicit for all four
// executors on both device classes.
#include "bench_common.h"

using namespace pipelsm;
using namespace pipelsm::bench;

namespace {

void RunDevice(const char* label, const DeviceProfile& single,
               const DeviceProfile& striped3) {
  std::printf("\n--- %s ---\n", label);

  CompactionBenchConfig base;
  base.device = single;
  base.mode = CompactionMode::kSCP;
  base.upper_bytes = static_cast<uint64_t>((4 << 20) * Scale());
  base.lower_bytes = static_cast<uint64_t>((8 << 20) * Scale());
  CompactionRun scp = RunCompaction(base);
  model::StepTimes t = model::StepTimes::FromProfile(scp.profile);

  std::printf("measured step times: %s\n", model::Describe(t).c_str());
  std::printf("%-28s %16s %16s %9s\n", "executor", "predicted MiB/s",
              "measured MiB/s", "ratio");

  auto row = [&](const char* name, double predicted, CompactionRun run) {
    std::printf("%-28s %16.1f %16.1f %8.2f\n", name, ToMiB(predicted),
                run.bandwidth_mib_s,
                predicted > 0 ? run.bandwidth_mib_s / ToMiB(predicted) : 0);
  };

  row("SCP (Eq.1)", model::ScpBandwidth(t), scp);

  CompactionBenchConfig pcp_cfg = base;
  pcp_cfg.mode = CompactionMode::kPCP;
  row("PCP (Eq.2)", model::PcpBandwidth(t), RunCompaction(pcp_cfg));

  CompactionBenchConfig sp_cfg = base;
  sp_cfg.device = striped3;
  sp_cfg.mode = CompactionMode::kSPPCP;
  sp_cfg.read_parallelism = 3;
  row("S-PPCP k=3 (Eq.4)", model::SppcpBandwidth(t, 3),
      RunCompaction(sp_cfg));

  // C-PPCP needs the slow-motion domain on this 1-core host (see
  // bench_cppcp.cc): measure a dilated SCP profile and compare a dilated
  // C-PPCP run against the prediction *in that same domain*.
  CompactionBenchConfig dil_scp = base;
  dil_scp.time_dilation = 8.0;
  model::StepTimes td =
      model::StepTimes::FromProfile(RunCompaction(dil_scp).profile);
  CompactionBenchConfig cp_cfg = base;
  cp_cfg.mode = CompactionMode::kCPPCP;
  cp_cfg.compute_parallelism = 3;
  cp_cfg.time_dilation = 8.0;
  row("C-PPCP k=3 (Eq.6, x8 domain)", model::CppcpBandwidth(td, 3),
      RunCompaction(cp_cfg));
}

}  // namespace

int main() {
  PrintHeader("bench_model — analytic model vs measurement",
              "Equations 1-7 (Section III)",
              "expect: measured/predicted ratio near 1.0, measured a bit "
              "below prediction (pipeline fill/drain; paper: ~-10%)");
  RunDevice("HDD", DeviceProfile::Hdd(), DeviceProfile::Hdd(3));
  RunDevice("SSD", DeviceProfile::Ssd(), DeviceProfile::Ssd(3));
  return 0;
}
