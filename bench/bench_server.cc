// bench_server: loopback throughput of the network service layer vs the
// same workload in-process (the ISSUE 4 acceptance gate: served fills
// with group commit should hold >= 50% of in-process fillrandom).
//
// Phase 1 fills a fresh DB in-process (the db_bench fillrandom loop).
// Phase 2 starts a Server on an ephemeral loopback port and drives the
// same number of PUTs through the pipelined client: --connections pooled
// sockets shared by --threads driver threads, each keeping --window
// async requests in flight. Group commit folds the concurrent PUTs into
// leader batches, so the server amortizes WAL work the in-process
// single-writer loop cannot — that, plus pipelining, is what keeps the
// served number close to the in-process one despite the framing + TCP
// tax. A final report prints both rates, the served/in-process ratio,
// and the group-commit batch-size histogram.
//
// Flags:
//   --num=N          PUTs per phase (default 200000)
//   --connections=N  pooled sockets (default 64)
//   --threads=N      driver threads (default 8)
//   --window=N       async requests in flight per driver (default 128)
//   --key_size=N --value_size=N (defaults 16/100)
//   --read_ratio=N   percent of served ops that are GETs (default 0,
//                    i.e. pure fill; use 50 for a mixed comparison
//                    against db_bench mixedwhilewriting)
//   --sync           sync WAL on every group commit (default off, to
//                    match the in-process fillrandom baseline)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/client/client.h"
#include "src/db/db.h"
#include "src/db/write_batch.h"
#include "src/env/env.h"
#include "src/server/server.h"
#include "src/util/histogram.h"
#include "src/util/stopwatch.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

struct Flags {
  uint64_t num = 200000;
  int connections = 64;
  int threads = 8;
  size_t window = 128;
  size_t key_size = 16;
  size_t value_size = 100;
  int read_ratio = 0;
  bool sync = false;
  uint32_t seed = 301;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

template <typename T>
bool ParseNumFlag(const char* arg, const char* name, T* out) {
  std::string v;
  if (!ParseFlag(arg, name, &v)) return false;
  *out = static_cast<T>(std::strtoull(v.c_str(), nullptr, 10));
  return true;
}

Options MakeDbOptions() {
  Options options;
  options.env = Env::Posix();
  options.create_if_missing = true;
  options.compaction_mode = CompactionMode::kPCP;
  return options;
}

std::unique_ptr<DB> OpenFresh(const std::string& path,
                              const Options& options) {
  DestroyDB(path, options);
  DB* raw = nullptr;
  Status s = DB::Open(options, path, &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s: %s\n", path.c_str(), s.ToString().c_str());
    std::exit(1);
  }
  return std::unique_ptr<DB>(raw);
}

// Phase 1: the db_bench fillrandom loop, verbatim shape.
double InProcessFill(const Flags& flags, const std::string& path) {
  Options options = MakeDbOptions();
  std::unique_ptr<DB> db = OpenFresh(path, options);
  WorkloadGenerator gen(flags.num, flags.key_size, flags.value_size,
                        KeyOrder::kRandom, flags.seed);
  Stopwatch total;
  WriteOptions wo;
  wo.sync = flags.sync;
  for (uint64_t i = 0; i < flags.num; i++) {
    Status s = db->Put(wo, gen.Key(i), gen.Value(i));
    if (!s.ok()) {
      std::fprintf(stderr, "in-process put: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  const double seconds = total.ElapsedSeconds();
  db->WaitForCompactions();
  return flags.num / seconds;
}

// One driver thread: pushes its slice of the key space through the
// shared client, keeping `window` futures in flight.
void DriveSlice(client::Client* cli, const WorkloadGenerator& gen,
                uint64_t begin, uint64_t end, const Flags& flags,
                uint32_t thread_seed, std::atomic<uint64_t>* errors) {
  std::deque<std::future<client::Result>> inflight;
  Random rnd(thread_seed);
  auto reap = [&](size_t keep) {
    cli->Flush();  // buffered frames must hit the wire before we block
    while (inflight.size() > keep) {
      client::Result r = inflight.front().get();
      inflight.pop_front();
      if (!r.status.ok() && !r.status.IsNotFound()) {
        errors->fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  for (uint64_t i = begin; i < end; i++) {
    const bool is_get =
        flags.read_ratio > 0 &&
        static_cast<int>(rnd.Next() % 100) < flags.read_ratio;
    if (is_get) {
      inflight.push_back(cli->AsyncGet(gen.Key(rnd.Next() % flags.num)));
    } else {
      inflight.push_back(cli->AsyncPut(gen.Key(i), gen.Value(i)));
    }
    // Reap half the window at once: the first get() blocks until the
    // server's coalesced reply burst lands, after which the rest are
    // already fulfilled — one driver block/wake cycle per ~window/2 ops
    // instead of one per op.
    if (inflight.size() >= flags.window) reap(flags.window / 2);
  }
  reap(0);
}

// Phase 2: the same workload through the loopback server.
double ServedFill(const Flags& flags, const std::string& path,
                  std::string* batch_histogram) {
  Options options = MakeDbOptions();
  server::WriteStallGate gate;
  options.listeners.push_back(&gate);
  std::unique_ptr<DB> db = OpenFresh(path, options);

  server::ServerOptions sopts;
  sopts.host = "127.0.0.1";
  sopts.port = 0;  // ephemeral
  sopts.sync_writes = flags.sync;
  sopts.stall_gate = &gate;
  // Throughput-tuned: deep leader batches amortize both the DB write and
  // the per-connection reply send (more frames coalesced per send()).
  sopts.group_commit_max_requests = 1024;
  sopts.request_queue_depth = 4096;
  sopts.num_io_threads = 1;
  server::Server srv(db.get(), sopts);
  Status s = srv.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  client::ClientOptions copts;
  copts.host = "127.0.0.1";
  copts.port = srv.port();
  copts.num_connections = flags.connections;
  // Coalesce async sends: 16 consecutive submissions share a socket and
  // ride one send() (drivers Flush before blocking on futures).
  copts.connection_stride = 16;
  copts.pipeline_buffer_bytes = 16 * 1024;
  client::Client cli(copts);

  WorkloadGenerator gen(flags.num, flags.key_size, flags.value_size,
                        KeyOrder::kRandom, flags.seed);
  std::atomic<uint64_t> errors{0};
  const int threads = flags.threads > 0 ? flags.threads : 1;
  Stopwatch total;
  std::vector<std::thread> drivers;
  for (int t = 0; t < threads; t++) {
    const uint64_t begin = flags.num * t / threads;
    const uint64_t end = flags.num * (t + 1) / threads;
    drivers.emplace_back(DriveSlice, &cli, std::cref(gen), begin, end,
                         std::cref(flags), flags.seed + 31 * (t + 1),
                         &errors);
  }
  for (auto& d : drivers) d.join();
  const double seconds = total.ElapsedSeconds();

  if (errors.load() > 0) {
    std::fprintf(stderr, "served phase: %llu request errors\n",
                 static_cast<unsigned long long>(errors.load()));
    std::exit(1);
  }

  // Pull the group-commit histogram straight from the server's registry
  // (also visible via GetProperty("pipelsm.metrics") since the server
  // registers into the DB's registry).
  const obs::HistogramMetric* h = srv.metrics_registry()->RegisterHistogram(
      "server.group_commit.batch_size", "");
  const Histogram snap = h->Snapshot();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "group-commit batch size: count=%llu avg=%.1f p95=%.0f "
                "max=%.0f",
                static_cast<unsigned long long>(snap.Num()), snap.Average(),
                snap.Percentile(95), snap.Max());
  *batch_histogram = buf;

  srv.Drain();
  db->WaitForCompactions();
  return flags.num / seconds;
}

}  // namespace
}  // namespace pipelsm

int main(int argc, char** argv) {
  pipelsm::Flags flags;
  for (int i = 1; i < argc; i++) {
    if (pipelsm::ParseNumFlag(argv[i], "num", &flags.num) ||
        pipelsm::ParseNumFlag(argv[i], "connections", &flags.connections) ||
        pipelsm::ParseNumFlag(argv[i], "threads", &flags.threads) ||
        pipelsm::ParseNumFlag(argv[i], "window", &flags.window) ||
        pipelsm::ParseNumFlag(argv[i], "key_size", &flags.key_size) ||
        pipelsm::ParseNumFlag(argv[i], "value_size", &flags.value_size) ||
        pipelsm::ParseNumFlag(argv[i], "read_ratio", &flags.read_ratio) ||
        pipelsm::ParseNumFlag(argv[i], "seed", &flags.seed)) {
      continue;
    }
    if (std::strcmp(argv[i], "--sync") == 0) {
      flags.sync = true;
      continue;
    }
    std::fprintf(stderr, "unrecognized flag: %s\n", argv[i]);
    return 2;
  }

  std::printf("bench_server: %llu ops, %d connections, %d threads, "
              "window %zu, read_ratio %d%%, sync=%d\n",
              static_cast<unsigned long long>(flags.num), flags.connections,
              flags.threads, flags.window, flags.read_ratio,
              flags.sync ? 1 : 0);

  const double local =
      pipelsm::InProcessFill(flags, "/tmp/pipelsm_bench_server_local");
  std::printf("in-process fill: %10.0f ops/s\n", local);

  std::string batch_histogram;
  const double served = pipelsm::ServedFill(
      flags, "/tmp/pipelsm_bench_server_net", &batch_histogram);
  std::printf("served fill:     %10.0f ops/s  (loopback, pipelined)\n",
              served);
  std::printf("%s\n", batch_histogram.c_str());
  const double ratio = local > 0 ? served / local : 0;
  std::printf("served/in-process ratio: %.2f  (acceptance floor 0.50)\n",
              ratio);
  return ratio >= 0.5 ? 0 : 1;
}
