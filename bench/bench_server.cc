// bench_server: loopback throughput of the network service layer vs the
// same workload in-process (the ISSUE 4 acceptance gate: served fills
// with group commit should hold >= 50% of in-process fillrandom).
//
// Phase 1 fills a fresh DB in-process (the db_bench fillrandom loop).
// Phase 2 starts a Server on an ephemeral loopback port and drives the
// same number of PUTs through the pipelined client: --connections pooled
// sockets shared by --threads driver threads, each keeping --window
// async requests in flight. Group commit folds the concurrent PUTs into
// leader batches, so the server amortizes WAL work the in-process
// single-writer loop cannot — that, plus pipelining, is what keeps the
// served number close to the in-process one despite the framing + TCP
// tax. A final report prints both rates, the served/in-process ratio,
// and the group-commit batch-size histogram.
//
// Flags:
//   --num=N          PUTs per phase (default 200000)
//   --connections=N  pooled sockets (default 64)
//   --threads=N      driver threads (default 8)
//   --window=N       async requests in flight per driver (default 128)
//   --key_size=N --value_size=N (defaults 16/100)
//   --read_ratio=N   percent of served ops that are GETs (default 0,
//                    i.e. pure fill; use 50 for a mixed comparison
//                    against db_bench mixedwhilewriting)
//   --dist=uniform|zipfian
//                    GET key distribution (default uniform). zipfian
//                    concentrates reads on hot keys — the block-cache
//                    regime the sharded-cache gate measures
//   --zipf_theta=X   Zipfian skew (default 0.99)
//   --cache_size=N   block cache capacity in bytes (default 8MiB)
//   --cache_shards=N block cache lock shards (0 = auto; 1 = the
//                    single-mutex baseline for the read-scaling gate)
//   --bloom_bits_per_key=N  bloom filters for served Gets (default 0)
//   --sync           sync WAL on every group commit (default off, to
//                    match the in-process fillrandom baseline)
//   --shards=N       serve a ShardedDB of N key-range shards (default 1;
//                    boundaries split the bench's decimal keyspace
//                    evenly, the client rides shard affinity, and the
//                    server runs one group-commit thread per shard)
//   --no_arbiter     disable the fleet CompactionArbiter (free-for-all
//                    baseline for the EXPERIMENTS.md comparison)
//   --io_lanes=N --compute_workers=N  arbiter budget (defaults 4/4)
//   --device=posix|hdd|ssd  storage under the DB (default posix). hdd/ssd
//                    run on SimEnv with the paper's timed device model:
//                    transfers charge modeled wall time as real sleeps,
//                    so multi-shard I/O overlap is a genuine wall-clock
//                    effect even on a 1-core host (see sim_device.h).
//                    The profile is FIXED across shard counts (same
//                    modeled array) so scaling numbers are comparable.
//   --stripes=N      RAID0 member count of the simulated device
//                    (default 4, matching the paper's md arrays)
//
// The report ends with one machine-readable line:
//   RESULT {"shards":...,"served_ops_s":...,"per_shard":[...],...}
// so the multi-shard scaling gate in EXPERIMENTS.md can be checked by
// parsing stdout instead of scraping prose.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/client/client.h"
#include "src/db/db.h"
#include "src/db/write_batch.h"
#include "src/env/env.h"
#include "src/env/sim_env.h"
#include "src/server/server.h"
#include "src/shard/router.h"
#include "src/shard/sharded_db.h"
#include "src/util/histogram.h"
#include "src/util/stopwatch.h"
#include "src/workload/generator.h"

namespace pipelsm {
namespace {

struct Flags {
  uint64_t num = 200000;
  int connections = 64;
  int threads = 8;
  size_t window = 128;
  size_t key_size = 16;
  size_t value_size = 100;
  int read_ratio = 0;
  bool sync = false;
  uint32_t seed = 301;
  size_t group_max = 1024;
  int io_threads = 0;  // 0 = auto: one per shard (min 1)
  size_t shards = 1;
  bool arbiter = true;
  int io_lanes = 4;
  int compute_workers = 4;
  std::string device = "posix";
  int stripes = 4;
  std::string dist = "uniform";
  double zipf_theta = 0.99;
  size_t cache_size = 8 << 20;
  size_t cache_shards = 0;
  int bloom_bits_per_key = 0;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

template <typename T>
bool ParseNumFlag(const char* arg, const char* name, T* out) {
  std::string v;
  if (!ParseFlag(arg, name, &v)) return false;
  *out = static_cast<T>(std::strtoull(v.c_str(), nullptr, 10));
  return true;
}

// nullptr for --device=posix; otherwise a fresh SimEnv per phase (each
// phase starts from an empty simulated disk, like DestroyDB on posix).
std::unique_ptr<Env> MakeSimEnv(const Flags& flags) {
  if (flags.device == "hdd") {
    return std::make_unique<SimEnv>(DeviceProfile::Hdd(flags.stripes));
  }
  if (flags.device == "ssd") {
    return std::make_unique<SimEnv>(DeviceProfile::Ssd(flags.stripes));
  }
  return nullptr;
}

Options MakeDbOptions(const Flags& flags, Env* env) {
  Options options;
  options.env = env != nullptr ? env : Env::Posix();
  options.create_if_missing = true;
  options.compaction_mode = CompactionMode::kPCP;
  options.block_cache_size = flags.cache_size;
  options.block_cache_shards = flags.cache_shards;
  options.bloom_bits_per_key = flags.bloom_bits_per_key;
  return options;
}

std::unique_ptr<DB> OpenFresh(const std::string& path,
                              const Options& options) {
  DestroyDB(path, options);
  DB* raw = nullptr;
  Status s = DB::Open(options, path, &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "open %s: %s\n", path.c_str(), s.ToString().c_str());
    std::exit(1);
  }
  return std::unique_ptr<DB>(raw);
}

// Phase 1: the db_bench fillrandom loop, verbatim shape.
double InProcessFill(const Flags& flags, const std::string& path) {
  std::unique_ptr<Env> sim = MakeSimEnv(flags);  // outlives the DB
  Options options = MakeDbOptions(flags, sim.get());
  std::unique_ptr<DB> db = OpenFresh(path, options);
  WorkloadGenerator gen(flags.num, flags.key_size, flags.value_size,
                        KeyOrder::kRandom, flags.seed);
  Stopwatch total;
  WriteOptions wo;
  wo.sync = flags.sync;
  for (uint64_t i = 0; i < flags.num; i++) {
    Status s = db->Put(wo, gen.Key(i), gen.Value(i));
    if (!s.ok()) {
      std::fprintf(stderr, "in-process put: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  const double seconds = total.ElapsedSeconds();
  db->WaitForCompactions();
  return flags.num / seconds;
}

// One driver thread, keeping `window` futures in flight.
//
// Unsharded (`router == nullptr`): drives the index slice [begin, end).
// Sharded: drives ONLY `my_shard`'s keys — each driver scans the whole
// index space and claims every sub_count-th key owned by its shard, so
// every key is sent exactly once fleet-wide. Partitioning drivers by
// shard matters: a mixed pipeline stalls head-of-line on the slowest
// shard (any window holds every shard's futures, so one shard's write
// stall blocks all drivers); dedicated drivers keep the healthy shards'
// pipelines full while the stalled one backs up alone.
void DriveSlice(client::Client* cli, const WorkloadGenerator& gen,
                uint64_t begin, uint64_t end, const Flags& flags,
                uint32_t thread_seed, std::atomic<uint64_t>* errors,
                const shard::ShardRouter* router, size_t my_shard,
                size_t sub_index, size_t sub_count) {
  std::deque<std::future<client::Result>> inflight;
  Random rnd(thread_seed);
  ZipfianGenerator zipf(flags.num, flags.zipf_theta, thread_seed + 17);
  const bool zipfian = flags.dist == "zipfian";
  auto reap = [&](size_t keep) {
    cli->Flush();  // buffered frames must hit the wire before we block
    while (inflight.size() > keep) {
      client::Result r = inflight.front().get();
      inflight.pop_front();
      if (!r.status.ok() && !r.status.IsNotFound()) {
        errors->fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  uint64_t matched = 0;
  for (uint64_t i = begin; i < end; i++) {
    std::string key = gen.Key(i);
    if (router != nullptr) {
      if (router->ShardOf(key) != my_shard) continue;
      if ((matched++ % sub_count) != sub_index) continue;
    }
    const bool is_get =
        flags.read_ratio > 0 &&
        static_cast<int>(rnd.Next() % 100) < flags.read_ratio;
    if (is_get) {
      const uint64_t idx = zipfian ? zipf.Next() : rnd.Next() % flags.num;
      inflight.push_back(cli->AsyncGet(gen.Key(idx)));
    } else {
      inflight.push_back(cli->AsyncPut(key, gen.Value(i)));
    }
    // Reap half the window at once: the first get() blocks until the
    // server's coalesced reply burst lands, after which the rest are
    // already fulfilled — one driver block/wake cycle per ~window/2 ops
    // instead of one per op.
    if (inflight.size() >= flags.window) reap(flags.window / 2);
  }
  reap(0);
}

// 10^n clamped below the uint64 ceiling (the bench keyspace spans the
// full decimal width of its keys; see SplitDecimalKeyspace call below).
uint64_t Pow10(size_t n) {
  uint64_t v = 1;
  for (size_t i = 0; i < n && i < 19; i++) v *= 10;
  return v;
}

// Per-shard and aggregate numbers from one served phase, for both the
// human report and the machine-readable RESULT line.
struct LatencySummary {
  uint64_t count = 0;
  double p50 = 0, p95 = 0, p99 = 0;
};

struct ServedStats {
  double ops_per_sec = 0;
  double read_ops_per_sec = 0;  // served GETs only
  uint64_t gets = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  std::vector<uint64_t> shard_write_ops;  // empty when unsharded
  std::string arbiter_json;               // "{}" when unsharded / off
  std::string batch_histogram;
  LatencySummary put_latency;  // server-side dispatch-to-reply micros
  LatencySummary get_latency;

  double hit_rate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups > 0
               ? static_cast<double>(cache_hits) / static_cast<double>(lookups)
               : 0.0;
  }
};

// First "hits"/"misses" in the "pipelsm.cache" JSON belong to the block
// section (it precedes the table section).
void ParseCacheCounters(const std::string& json, uint64_t* hits,
                        uint64_t* misses) {
  const size_t h = json.find("\"hits\":");
  const size_t m = json.find("\"misses\":");
  if (h != std::string::npos) {
    *hits = std::strtoull(json.c_str() + h + 7, nullptr, 10);
  }
  if (m != std::string::npos) {
    *misses = std::strtoull(json.c_str() + m + 9, nullptr, 10);
  }
}

LatencySummary SummarizeLatency(obs::MetricsRegistry* registry,
                                const std::string& name) {
  const Histogram snap = registry->RegisterHistogram(name, "")->Snapshot();
  LatencySummary out;
  out.count = snap.Num();
  if (out.count > 0) {
    out.p50 = snap.Percentile(50);
    out.p95 = snap.Percentile(95);
    out.p99 = snap.Percentile(99);
  }
  return out;
}

// Phase 2: the same workload through the loopback server.
ServedStats ServedFill(const Flags& flags, const std::string& path) {
  std::unique_ptr<Env> sim = MakeSimEnv(flags);  // outlives the DB
  Options options = MakeDbOptions(flags, sim.get());
  // Unsharded, the DB-wide stall gate is the right backpressure. Sharded,
  // it is NOT wired: one shard's hard stall would park reads on EVERY
  // connection and serialize the whole fleet on the slowest shard. The
  // per-connection in-flight cap plus shard affinity already deliver
  // per-shard backpressure (a stalled shard's sockets fill their window
  // and pause; the other shards' sockets keep streaming).
  server::WriteStallGate gate;
  if (flags.shards <= 1) options.listeners.push_back(&gate);

  std::unique_ptr<DB> db;
  shard::ShardedDB* sharded = nullptr;
  std::vector<std::string> boundaries;
  if (flags.shards > 1) {
    // Random-order bench keys are uniform over the whole decimal width
    // of the key, so split [0, 10^key_size) — NOT [0, num): splitting by
    // index count would put every key in shard 0.
    const size_t eff_key = flags.key_size < 8 ? 8 : flags.key_size;
    boundaries = shard::ShardRouter::SplitDecimalKeyspace(
        Pow10(eff_key), eff_key, flags.shards);
    shard::ShardedOptions shopts;
    shopts.num_shards = flags.shards;
    shopts.boundary_keys = boundaries;
    shopts.enable_arbiter = flags.arbiter;
    shopts.arbiter.budget.io_lanes = flags.io_lanes;
    shopts.arbiter.budget.compute_workers = flags.compute_workers;
    shard::ShardedDB::Destroy(path, options);
    shard::ShardedDB* raw = nullptr;
    Status s = shard::ShardedDB::Open(options, shopts, path, &raw);
    if (!s.ok()) {
      std::fprintf(stderr, "sharded open %s: %s\n", path.c_str(),
                   s.ToString().c_str());
      std::exit(1);
    }
    db.reset(raw);
    sharded = raw;
  } else {
    db = OpenFresh(path, options);
  }

  server::ServerOptions sopts;
  sopts.host = "127.0.0.1";
  sopts.port = 0;  // ephemeral
  sopts.sync_writes = flags.sync;
  sopts.stall_gate = flags.shards <= 1 ? &gate : nullptr;
  // Throughput-tuned: deep leader batches amortize both the DB write and
  // the per-connection reply send (more frames coalesced per send()).
  // --group_max bounds the batch; with --sync that makes the WAL fsync
  // cadence the bottleneck, which is the regime where per-shard commit
  // threads (N parallel fsync streams) show their scaling.
  sopts.group_commit_max_requests = flags.group_max;
  sopts.request_queue_depth = 4096;
  sopts.num_io_threads = flags.io_threads > 0
                             ? flags.io_threads
                             : static_cast<int>(flags.shards);
  server::Server srv(db.get(), sopts);
  Status s = srv.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  client::ClientOptions copts;
  copts.host = "127.0.0.1";
  copts.port = srv.port();
  copts.num_connections = flags.connections;
  // Coalesce async sends: 16 consecutive submissions share a socket and
  // ride one send() (drivers Flush before blocking on futures).
  copts.connection_stride = 16;
  copts.pipeline_buffer_bytes = 16 * 1024;
  // Keyed requests stick to their shard's connection group, so each
  // commit thread's group-commit window fills from dedicated sockets.
  copts.shard_affinity_boundaries = boundaries;
  client::Client cli(copts);

  WorkloadGenerator gen(flags.num, flags.key_size, flags.value_size,
                        KeyOrder::kRandom, flags.seed);
  std::atomic<uint64_t> errors{0};
  int threads = flags.threads > 0 ? flags.threads : 1;
  if (flags.shards > 1) {
    // Round up to a multiple of the shard count so every shard gets the
    // same number of dedicated drivers.
    const int per = (threads + flags.shards - 1) / flags.shards;
    threads = per * static_cast<int>(flags.shards);
  }
  Stopwatch total;
  std::vector<std::thread> drivers;
  for (int t = 0; t < threads; t++) {
    if (flags.shards > 1) {
      const size_t my_shard = t % flags.shards;
      const size_t sub_index = t / flags.shards;
      const size_t sub_count = threads / flags.shards;
      drivers.emplace_back(DriveSlice, &cli, std::cref(gen), 0, flags.num,
                           std::cref(flags), flags.seed + 31 * (t + 1),
                           &errors, &sharded->router(), my_shard,
                           sub_index, sub_count);
    } else {
      const uint64_t begin = flags.num * t / threads;
      const uint64_t end = flags.num * (t + 1) / threads;
      drivers.emplace_back(DriveSlice, &cli, std::cref(gen), begin, end,
                           std::cref(flags), flags.seed + 31 * (t + 1),
                           &errors, nullptr, 0, 0, 1);
    }
  }
  for (auto& d : drivers) d.join();
  const double seconds = total.ElapsedSeconds();

  if (errors.load() > 0) {
    std::fprintf(stderr, "served phase: %llu request errors\n",
                 static_cast<unsigned long long>(errors.load()));
    std::exit(1);
  }

  // Pull the group-commit histogram straight from the server's registry
  // (also visible via GetProperty("pipelsm.metrics") since the server
  // registers into the DB's registry).
  const obs::HistogramMetric* h = srv.metrics_registry()->RegisterHistogram(
      "server.group_commit.batch_size", "");
  const Histogram snap = h->Snapshot();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "group-commit batch size: count=%llu avg=%.1f p95=%.0f "
                "max=%.0f",
                static_cast<unsigned long long>(snap.Num()), snap.Average(),
                snap.Percentile(95), snap.Max());

  ServedStats stats;
  stats.ops_per_sec = flags.num / seconds;
  stats.batch_histogram = buf;
  stats.arbiter_json = "{}";
  stats.gets =
      srv.metrics_registry()->RegisterCounter("server.req.get", "")->value();
  stats.read_ops_per_sec = seconds > 0 ? stats.gets / seconds : 0;
  std::string cache_json;
  if (db->GetProperty("pipelsm.cache", &cache_json)) {
    ParseCacheCounters(cache_json, &stats.cache_hits, &stats.cache_misses);
  }
  stats.put_latency =
      SummarizeLatency(srv.metrics_registry(), "server.req_micros.put");
  stats.get_latency =
      SummarizeLatency(srv.metrics_registry(), "server.req_micros.get");
  if (flags.shards > 1) {
    for (size_t i = 0; i < flags.shards; i++) {
      const obs::Counter* c = srv.metrics_registry()->RegisterCounter(
          "server.shard" + std::to_string(i) + ".write_ops", "");
      stats.shard_write_ops.push_back(c->value());
    }
  }

  srv.Drain();
  db->WaitForCompactions();
  // After the drive and compaction settle: peak/in-use lane occupancy
  // proves the budget held (or "{}" when unsharded / arbiter off).
  std::string arbiter;
  if (db->GetProperty("pipelsm.arbiter", &arbiter)) {
    stats.arbiter_json = arbiter;
  }
  return stats;
}

}  // namespace
}  // namespace pipelsm

int main(int argc, char** argv) {
  pipelsm::Flags flags;
  for (int i = 1; i < argc; i++) {
    if (pipelsm::ParseNumFlag(argv[i], "num", &flags.num) ||
        pipelsm::ParseNumFlag(argv[i], "connections", &flags.connections) ||
        pipelsm::ParseNumFlag(argv[i], "threads", &flags.threads) ||
        pipelsm::ParseNumFlag(argv[i], "window", &flags.window) ||
        pipelsm::ParseNumFlag(argv[i], "key_size", &flags.key_size) ||
        pipelsm::ParseNumFlag(argv[i], "value_size", &flags.value_size) ||
        pipelsm::ParseNumFlag(argv[i], "read_ratio", &flags.read_ratio) ||
        pipelsm::ParseNumFlag(argv[i], "seed", &flags.seed) ||
        pipelsm::ParseNumFlag(argv[i], "shards", &flags.shards) ||
        pipelsm::ParseNumFlag(argv[i], "io_threads", &flags.io_threads) ||
        pipelsm::ParseNumFlag(argv[i], "group_max", &flags.group_max) ||
        pipelsm::ParseNumFlag(argv[i], "io_lanes", &flags.io_lanes) ||
        pipelsm::ParseNumFlag(argv[i], "stripes", &flags.stripes) ||
        pipelsm::ParseNumFlag(argv[i], "compute_workers",
                              &flags.compute_workers) ||
        pipelsm::ParseNumFlag(argv[i], "cache_size", &flags.cache_size) ||
        pipelsm::ParseNumFlag(argv[i], "cache_shards", &flags.cache_shards) ||
        pipelsm::ParseNumFlag(argv[i], "bloom_bits_per_key",
                              &flags.bloom_bits_per_key)) {
      continue;
    }
    if (pipelsm::ParseFlag(argv[i], "device", &flags.device)) continue;
    if (pipelsm::ParseFlag(argv[i], "dist", &flags.dist)) continue;
    std::string theta;
    if (pipelsm::ParseFlag(argv[i], "zipf_theta", &theta)) {
      flags.zipf_theta = std::atof(theta.c_str());
      continue;
    }
    if (std::strcmp(argv[i], "--sync") == 0) {
      flags.sync = true;
      continue;
    }
    if (std::strcmp(argv[i], "--no_arbiter") == 0) {
      flags.arbiter = false;
      continue;
    }
    std::fprintf(stderr, "unrecognized flag: %s\n", argv[i]);
    return 2;
  }
  if (flags.shards < 1) flags.shards = 1;
  if (flags.stripes < 1) flags.stripes = 1;
  if (flags.device != "posix" && flags.device != "hdd" &&
      flags.device != "ssd") {
    std::fprintf(stderr, "unknown --device=%s (posix|hdd|ssd)\n",
                 flags.device.c_str());
    return 2;
  }
  if (flags.dist != "uniform" && flags.dist != "zipfian") {
    std::fprintf(stderr, "unknown --dist=%s (uniform|zipfian)\n",
                 flags.dist.c_str());
    return 2;
  }

  std::printf("bench_server: %llu ops, %d connections, %d threads, "
              "window %zu, read_ratio %d%%, dist=%s, sync=%d, shards=%zu, "
              "arbiter=%d, device=%s, cache=%zuKB/%zu shards, bloom=%d\n",
              static_cast<unsigned long long>(flags.num), flags.connections,
              flags.threads, flags.window, flags.read_ratio,
              flags.dist.c_str(), flags.sync ? 1 : 0, flags.shards,
              flags.arbiter ? 1 : 0, flags.device.c_str(),
              flags.cache_size >> 10, flags.cache_shards,
              flags.bloom_bits_per_key);

  const double local =
      pipelsm::InProcessFill(flags, "/tmp/pipelsm_bench_server_local");
  std::printf("in-process fill: %10.0f ops/s\n", local);

  const pipelsm::ServedStats served =
      pipelsm::ServedFill(flags, "/tmp/pipelsm_bench_server_net");
  std::printf("served fill:     %10.0f ops/s  (loopback, pipelined)\n",
              served.ops_per_sec);
  std::printf("%s\n", served.batch_histogram.c_str());
  std::printf("put latency (server, micros): p50=%.0f p95=%.0f p99=%.0f "
              "(n=%llu)\n",
              served.put_latency.p50, served.put_latency.p95,
              served.put_latency.p99,
              static_cast<unsigned long long>(served.put_latency.count));
  if (served.get_latency.count > 0) {
    std::printf("get latency (server, micros): p50=%.0f p95=%.0f p99=%.0f "
                "(n=%llu)\n",
                served.get_latency.p50, served.get_latency.p95,
                served.get_latency.p99,
                static_cast<unsigned long long>(served.get_latency.count));
  }
  for (size_t i = 0; i < served.shard_write_ops.size(); i++) {
    std::printf("shard %zu: %llu write ops routed\n", i,
                static_cast<unsigned long long>(served.shard_write_ops[i]));
  }
  if (served.gets > 0) {
    std::printf("read throughput: %10.0f gets/s  (block cache: %.1f%% hit "
                "rate, %llu hits, %llu misses)\n",
                served.read_ops_per_sec, 100.0 * served.hit_rate(),
                static_cast<unsigned long long>(served.cache_hits),
                static_cast<unsigned long long>(served.cache_misses));
  }
  const double ratio = local > 0 ? served.ops_per_sec / local : 0;
  std::printf("served/in-process ratio: %.2f  (acceptance floor 0.50)\n",
              ratio);

  // Machine-readable summary (EXPERIMENTS.md scaling gate parses this).
  std::string result;
  char head[320];
  std::snprintf(head, sizeof(head),
                "RESULT {\"shards\":%zu,\"arbiter\":%s,\"sync\":%s,"
                "\"device\":\"%s\",\"num\":%llu,\"in_process_ops_s\":%.0f,"
                "\"served_ops_s\":%.0f,\"ratio\":%.3f,\"per_shard\":[",
                flags.shards, flags.arbiter ? "true" : "false",
                flags.sync ? "true" : "false", flags.device.c_str(),
                static_cast<unsigned long long>(flags.num), local,
                served.ops_per_sec, ratio);
  result = head;
  for (size_t i = 0; i < served.shard_write_ops.size(); i++) {
    if (i) result += ",";
    char row[96];
    std::snprintf(row, sizeof(row), "{\"shard\":%zu,\"write_ops\":%llu}", i,
                  static_cast<unsigned long long>(served.shard_write_ops[i]));
    result += row;
  }
  char lat[256];
  std::snprintf(lat, sizeof(lat),
                "],\"latency_micros\":{\"put\":{\"count\":%llu,\"p50\":%.0f,"
                "\"p95\":%.0f,\"p99\":%.0f},\"get\":{\"count\":%llu,"
                "\"p50\":%.0f,\"p95\":%.0f,\"p99\":%.0f}}",
                static_cast<unsigned long long>(served.put_latency.count),
                served.put_latency.p50, served.put_latency.p95,
                served.put_latency.p99,
                static_cast<unsigned long long>(served.get_latency.count),
                served.get_latency.p50, served.get_latency.p95,
                served.get_latency.p99);
  result += lat;
  char cache[256];
  std::snprintf(cache, sizeof(cache),
                ",\"dist\":\"%s\",\"cache_shards\":%zu,\"read_ops_s\":%.0f,"
                "\"cache\":{\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.4f}",
                flags.dist.c_str(), flags.cache_shards, served.read_ops_per_sec,
                static_cast<unsigned long long>(served.cache_hits),
                static_cast<unsigned long long>(served.cache_misses),
                served.hit_rate());
  result += cache;
  result += ",\"arbiter_state\":" + served.arbiter_json + "}";
  std::printf("%s\n", result.c_str());
  return ratio >= 0.5 ? 0 : 1;
}
