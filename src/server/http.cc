#include "src/server/http.h"

#include <cstdio>

namespace pipelsm::server {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default:  return "Error";
  }
}

// Printable ASCII plus the two line terminators; everything else in a
// request head (NUL, control bytes, high-bit garbage) is hostile.
bool HeadByteOk(unsigned char c) {
  return (c >= 0x20 && c < 0x7f) || c == '\r' || c == '\n' || c == '\t';
}

}  // namespace

HttpRequestParser::Result HttpRequestParser::Finish(Result r,
                                                    int error_status) {
  state_ = r;
  error_status_ = error_status;
  buf_.clear();
  buf_.shrink_to_fit();  // hostile input must not pin the cap per conn
  return state_;
}

HttpRequestParser::Result HttpRequestParser::Feed(const char* data,
                                                  size_t n) {
  if (state_ != Result::kNeedMore) return state_;
  for (size_t i = 0; i < n; i++) {
    if (!HeadByteOk(static_cast<unsigned char>(data[i]))) {
      return Finish(Result::kError, 400);
    }
  }
  // Append at most up-to-cap bytes; anything beyond the cap without a
  // complete head in it is an error either way.
  const size_t room = kMaxRequestHeadBytes - buf_.size();
  buf_.append(data, n < room ? n : room);
  // End of head: blank line (tolerate bare-LF clients).
  size_t head_end = buf_.find("\r\n\r\n");
  if (head_end == std::string::npos) head_end = buf_.find("\n\n");
  if (head_end == std::string::npos) {
    // A GET head that is a single line is complete at its first newline
    // if nothing else follows yet — but headers may still be coming, so
    // only the blank line ends the head. Over the cap without one: done.
    if (buf_.size() >= kMaxRequestHeadBytes || n > room) {
      return Finish(Result::kError, 431);
    }
    return Result::kNeedMore;
  }
  buf_.resize(head_end);  // request line + headers, no blank line
  return ParseRequestLine();
}

HttpRequestParser::Result HttpRequestParser::ParseRequestLine() {
  size_t eol = buf_.find('\n');
  std::string line = buf_.substr(0, eol);  // npos => whole head is 1 line
  if (!line.empty() && line.back() == '\r') line.pop_back();

  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0 || sp1 > kMaxMethodBytes) {
    return Finish(Result::kError, 400);
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1 ||
      sp2 - sp1 - 1 > kMaxPathBytes) {
    return Finish(Result::kError, 400);
  }
  // Version token: anything is tolerated ("HTTP/1.0", "HTTP/1.1"), but
  // it must exist — a two-token line is not HTTP.
  if (sp2 + 1 >= line.size()) return Finish(Result::kError, 400);

  method_ = line.substr(0, sp1);
  path_ = line.substr(sp1 + 1, sp2 - sp1 - 1);
  for (char c : method_) {
    if (c < 'A' || c > 'Z') return Finish(Result::kError, 400);
  }
  if (path_[0] != '/') return Finish(Result::kError, 400);
  return Finish(Result::kComplete);
}

std::string BuildHttpResponse(int status, const std::string& content_type,
                              const std::string& body) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                status, ReasonPhrase(status), content_type.c_str(),
                body.size());
  std::string out(head);
  out.append(body);
  return out;
}

}  // namespace pipelsm::server
