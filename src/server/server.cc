#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "src/obs/prometheus.h"
#include "src/server/http.h"
#include "src/shard/sharded_db.h"
#include "src/table/iterator.h"
#include "src/util/coding.h"
#include "src/util/stopwatch.h"

namespace pipelsm::server {

namespace {

Status Errno(const char* context) {
  return Status::IOError(context, std::strerror(errno));
}

size_t TypeIndex(MessageType type) { return static_cast<size_t>(type); }

}  // namespace

// One accepted connection. The owning I/O loop is the only thread that
// reads the socket and the only one that closes the fd; response writers
// (workers, the commit thread) share the fd for send() under mu.
struct Server::Conn {
  explicit Conn(size_t max_body_bytes) : decoder(max_body_bytes) {}

  uint64_t id = 0;
  size_t loop_index = 0;
  int epfd = -1;  // owning loop's epoll instance (for interest updates)

  FrameDecoder decoder;  // touched only by the owning loop

  // Admin (HTTP) connection: exempt from stall/drain read parking, one
  // request then close-after-flush. parser is touched only by the
  // owning loop, like decoder.
  bool admin = false;
  HttpRequestParser http;

  std::mutex mu;  // guards everything below
  int fd = -1;    // -1 once closed
  std::string outbox;
  size_t out_pos = 0;
  uint32_t armed = 0;  // epoll interest currently installed
  size_t in_flight = 0;
  bool paused_inflight = false;
  bool paused_outbox = false;
  bool error = false;  // response write failed; owner loop must close
  bool closed = false;
  bool close_after_flush = false;  // admin: reply queued, close on drain
};

struct Server::IoLoop {
  size_t index = 0;
  int epfd = -1;
  int wake_rd = -1;
  int wake_wr = -1;
  std::thread thread;

  std::mutex mu;  // guards conns + incoming
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  std::vector<std::shared_ptr<Conn>> incoming;
};

struct Server::ReadTask {
  std::shared_ptr<Conn> conn;
  MessageType type = MessageType::kPing;
  uint64_t seq = 0;
  std::string body;
  Stopwatch queued;  // starts at dispatch; latency includes queue wait
  ReqTiming timing;
};

// One client WRITE_BATCH that spans shards: split into per-shard
// sub-tasks, each committed by its shard's group-commit thread. The LAST
// sub-task to finish sends the single reply, carrying the first error
// any shard hit. Cross-shard batches are not atomic (each shard commits
// its own WAL) — same contract as ShardedDB::Write.
struct Server::MultiReply {
  std::mutex mu;
  size_t remaining = 0;
  Status status;

  // Folds one shard's result in; true for the finisher.
  bool Complete(const Status& s) {
    std::lock_guard<std::mutex> l(mu);
    if (status.ok() && !s.ok()) status = s;
    return --remaining == 0;
  }
  Status Final() {
    std::lock_guard<std::mutex> l(mu);
    return status;
  }
};

struct Server::WriteTask {
  std::shared_ptr<Conn> conn;
  MessageType type = MessageType::kPut;
  uint64_t seq = 0;
  WriteBatch batch;
  size_t shard = 0;  // which write queue / engine commits this
  std::shared_ptr<MultiReply> multi;  // set only for cross-shard batches
  Stopwatch queued;
  ReqTiming timing;
};

// One open streaming cursor: a DB iterator over a pinned snapshot,
// advanced one bounded batch per SCAN_NEXT (docs/READ_PATH.md). `mu`
// serializes batch pulls against expiry/close/conn-teardown, so the
// iterator is never advanced and destroyed concurrently; `released`
// makes the snapshot hand-back exactly-once no matter which of those
// paths wins.
struct Server::Cursor {
  uint64_t id = 0;
  uint64_t conn_id = 0;
  std::atomic<uint64_t> last_used_ns{0};  // TTL clock, NowNs domain

  std::mutex mu;  // guards everything below
  const Snapshot* snapshot = nullptr;
  std::unique_ptr<Iterator> iter;
  uint64_t remaining = 0;  // entries the client may still receive
  bool released = false;
};

Server::Server(DB* db, const ServerOptions& options)
    : db_(db), options_(options) {
  gate_ = options_.stall_gate ? options_.stall_gate : &own_gate_;
}

Server::~Server() { Drain(); }

size_t Server::active_connections() const {
  const int64_t n = active_conns_.load(std::memory_order_relaxed);
  return n > 0 ? static_cast<size_t>(n) : 0;
}

Status Server::Start() {
  // A ShardedDB gets per-shard write routing; RTTI is how the server
  // stays a plain DB* consumer everywhere else.
  sharded_ = dynamic_cast<shard::ShardedDB*>(db_);
  info_log_ = options_.info_log ? options_.info_log : db_->InfoLogHandle();
  metrics_ = options_.metrics ? options_.metrics : db_->MetricsHandle();
  if (metrics_ == nullptr) metrics_ = &own_metrics_;

  conns_active_ =
      metrics_->RegisterGauge("server.conns_active", "open connections");
  conns_total_ =
      metrics_->RegisterCounter("server.conns_total", "connections accepted");
  bytes_in_ =
      metrics_->RegisterCounter("server.bytes_in", "request bytes read");
  bytes_out_ =
      metrics_->RegisterCounter("server.bytes_out", "response bytes written");
  protocol_errors_ = metrics_->RegisterCounter(
      "server.protocol_errors", "connections dropped on malformed frames");
  read_pauses_ = metrics_->RegisterCounter(
      "server.read_pauses", "times a connection's reads were parked");
  gc_commits_ = metrics_->RegisterCounter("server.group_commit.commits",
                                          "leader batches committed");
  gc_batch_size_ = metrics_->RegisterHistogram(
      "server.group_commit.batch_size", "write requests folded per commit");
  admin_conns_active_ = metrics_->RegisterGauge("server.admin.conns_active",
                                                "open admin connections");
  admin_requests_ = metrics_->RegisterCounter("server.admin.requests",
                                              "admin HTTP requests served");
  admin_http_errors_ = metrics_->RegisterCounter(
      "server.admin.http_errors",
      "admin connections answered 4xx/refused on hostile input");
  slow_requests_ = metrics_->RegisterCounter(
      "server.slow_requests",
      "requests over ServerOptions::slow_request_micros end to end");
  requests_inflight_ = metrics_->RegisterGauge(
      "server.requests_inflight",
      "dispatched client requests not yet answered");
  static const char* kNames[kNumMessageTypes] = {
      "",     "ping",  "get",  "put",       "del",       "batch",
      "scan", "stats", "scan_open", "scan_next", "scan_close"};
  for (size_t t = 1; t < kNumMessageTypes; t++) {
    req_counters_[t] = metrics_->RegisterCounter(
        std::string("server.req.") + kNames[t], "requests served");
    req_micros_[t] = metrics_->RegisterHistogram(
        std::string("server.req_micros.") + kNames[t],
        "request latency (dispatch to reply), micros");
  }
  cursors_opened_ = metrics_->RegisterCounter(
      "cursor.opened", "streaming scan cursors opened");
  cursors_closed_ = metrics_->RegisterCounter(
      "cursor.closed",
      "cursors closed (exhaustion, SCAN_CLOSE, conn close, drain)");
  cursors_expired_ = metrics_->RegisterCounter(
      "cursor.expired", "cursors reclaimed by the TTL sweeper");
  cursor_batches_ = metrics_->RegisterCounter(
      "cursor.batches", "cursor batches served (SCAN_OPEN + SCAN_NEXT)");
  cursors_active_ =
      metrics_->RegisterGauge("cursor.active", "open streaming cursors");
  const size_t num_write_queues =
      sharded_ != nullptr ? sharded_->num_shards() : 1;
  if (sharded_ != nullptr) {
    for (size_t i = 0; i < num_write_queues; i++) {
      shard_write_ops_.push_back(metrics_->RegisterCounter(
          "server.shard" + std::to_string(i) + ".write_ops",
          "write requests routed to this shard's commit thread"));
    }
  }

  Status s = Listen();
  if (!s.ok()) return s;
  if (options_.admin_port >= 0) {
    s = ListenAdmin();
    if (!s.ok()) return s;
  }
  if (options_.trace != nullptr) {
    trace_pid_ = options_.trace->BeginJob("server requests");
    for (uint32_t t = 1; t < kNumMessageTypes; t++) {
      options_.trace->SetLaneName(trace_pid_, t, kNames[t]);
    }
  }

  read_queue_ =
      std::make_unique<BoundedQueue<ReadTask>>(options_.request_queue_depth);
  for (size_t i = 0; i < num_write_queues; i++) {
    write_queues_.push_back(std::make_unique<BoundedQueue<WriteTask>>(
        options_.request_queue_depth));
  }

  const int num_loops = options_.num_io_threads > 0 ? options_.num_io_threads
                                                    : 1;
  for (int i = 0; i < num_loops; i++) {
    auto loop = std::make_unique<IoLoop>();
    loop->index = static_cast<size_t>(i);
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epfd < 0) return Errno("epoll_create1");
    int pipefd[2];
    if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) return Errno("pipe2");
    loop->wake_rd = pipefd[0];
    loop->wake_wr = pipefd[1];
    struct epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_rd;
    if (::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wake_rd, &ev) != 0) {
      return Errno("epoll_ctl(wake)");
    }
    if (i == 0) {
      struct epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.fd = listen_fd_;
      if (::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, listen_fd_, &lev) != 0) {
        return Errno("epoll_ctl(listen)");
      }
      if (admin_fd_ >= 0) {
        struct epoll_event aev{};
        aev.events = EPOLLIN;
        aev.data.fd = admin_fd_;
        if (::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, admin_fd_, &aev) != 0) {
          return Errno("epoll_ctl(admin_listen)");
        }
      }
    }
    loops_.push_back(std::move(loop));
  }

  // Stall transitions must poke the loops so parked/unparked interest is
  // re-derived promptly (the notifier is a non-blocking pipe write; see
  // WriteStallGate on why that is all it may do).
  gate_->SetNotifier([this] { WakeAllLoops(); });

  running_.store(true, std::memory_order_release);
  for (size_t i = 0; i < loops_.size(); i++) {
    loops_[i]->thread = std::thread([this, i] { IoLoopMain(i); });
  }
  const int num_workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_ = std::make_unique<ThreadPool>(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; i++) {
    workers_->Submit([this] { WorkerPump(); });
  }
  for (size_t i = 0; i < write_queues_.size(); i++) {
    commit_threads_.emplace_back([this, i] { GroupCommitLoop(i); });
  }
  cursor_sweeper_ = std::thread([this] { CursorSweeperMain(); });

  obs::Log(info_log_,
           "EVENT server_start host=%s port=%d admin_port=%d io_threads=%zu "
           "workers=%d sync_writes=%d group_window_micros=%llu shards=%zu",
           options_.host.c_str(), port_, admin_port_, loops_.size(),
           num_workers, options_.sync_writes ? 1 : 0,
           static_cast<unsigned long long>(options_.group_commit_window_micros),
           num_write_queues);
  return Status::OK();
}

Status Server::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host", options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 511) != 0) return Errno("listen");
  if (options_.port == 0) {
    struct sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                      &len) != 0) {
      return Errno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }
  return Status::OK();
}

Status Server::ListenAdmin() {
  admin_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (admin_fd_ < 0) return Errno("socket(admin)");
  int one = 1;
  ::setsockopt(admin_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.admin_port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host", options_.host);
  }
  if (::bind(admin_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind(admin)");
  }
  if (::listen(admin_fd_, 64) != 0) return Errno("listen(admin)");
  if (options_.admin_port == 0) {
    struct sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(admin_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                      &len) != 0) {
      return Errno("getsockname(admin)");
    }
    admin_port_ = ntohs(bound.sin_port);
  } else {
    admin_port_ = options_.admin_port;
  }
  return Status::OK();
}

void Server::AcceptAdminConnections() {
  while (true) {
    const int fd =
        ::accept4(admin_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Admin conns keep working during drain (for /healthz) but a cap
    // bounds what a hostile scraper can pin; over it, refuse outright.
    if (active_admin_conns_.load(std::memory_order_relaxed) >=
        static_cast<int64_t>(options_.max_admin_conns)) {
      admin_http_errors_->Add();
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(options_.max_body_bytes);
    conn->admin = true;
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->fd = fd;
    conn->loop_index =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    IoLoop& target = *loops_[conn->loop_index];
    conn->epfd = target.epfd;
    {
      std::lock_guard<std::mutex> l(target.mu);
      target.incoming.push_back(conn);
    }
    admin_conns_active_->Set(
        active_admin_conns_.fetch_add(1, std::memory_order_relaxed) + 1);
    if (conn->loop_index == 0) {
      RegisterIncoming(target);  // already on loop 0's thread
    } else {
      const char b = 'w';
      [[maybe_unused]] ssize_t r = ::write(target.wake_wr, &b, 1);
    }
  }
}

void Server::HandleAdminReadable(IoLoop& loop,
                                 const std::shared_ptr<Conn>& conn) {
  char buf[4096];
  while (true) {
    {
      std::lock_guard<std::mutex> l(conn->mu);
      // Once the reply is queued the request phase is over; whatever
      // else the client pipelines is discarded by the close.
      if (conn->closed || conn->fd < 0 || conn->close_after_flush) return;
    }
    const ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r > 0) {
      switch (conn->http.Feed(buf, static_cast<size_t>(r))) {
        case HttpRequestParser::Result::kNeedMore:
          break;
        case HttpRequestParser::Result::kComplete:
          HandleAdminRequest(conn, conn->http.method(), conn->http.path());
          return;
        case HttpRequestParser::Result::kError:
          admin_http_errors_->Add();
          SendAdminResponse(conn, conn->http.error_status(), "text/plain",
                            "bad request\n");
          return;
      }
      if (static_cast<size_t>(r) < sizeof(buf)) return;
      continue;
    }
    if (r == 0) {
      CloseConn(loop, conn, "admin_eof");
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConn(loop, conn, "admin_read_error");
    return;
  }
}

void Server::HandleAdminRequest(const std::shared_ptr<Conn>& conn,
                                const std::string& method,
                                const std::string& path) {
  admin_requests_->Add();
  if (method != "GET") {
    admin_http_errors_->Add();
    SendAdminResponse(conn, 405, "text/plain", "method not allowed\n");
    return;
  }
  if (path == "/healthz") {
    if (draining_.load(std::memory_order_acquire)) {
      SendAdminResponse(conn, 503, "text/plain", "draining\n");
    } else {
      SendAdminResponse(conn, 200, "text/plain", "ok\n");
    }
    return;
  }
  if (path == "/metrics") {
    SendAdminResponse(conn, 200, "text/plain; version=0.0.4",
                      RenderPrometheusMetrics());
    return;
  }
  // The remaining endpoints are property pass-throughs.
  const char* property = nullptr;
  const char* content_type = "application/json";
  if (path == "/stats") {
    property = "pipelsm.stats";
    content_type = "text/plain";
  } else if (path == "/advisor") {
    property = "pipelsm.advisor";
  } else if (path == "/arbiter") {
    property = "pipelsm.arbiter";
  } else if (path == "/timeseries") {
    property = "pipelsm.timeseries";
  }
  if (property == nullptr) {
    admin_http_errors_->Add();
    SendAdminResponse(conn, 404, "text/plain", "not found\n");
    return;
  }
  std::string body;
  if (!db_->GetProperty(property, &body)) {
    // e.g. /arbiter on an unsharded server.
    admin_http_errors_->Add();
    SendAdminResponse(conn, 404, "text/plain", "not found\n");
    return;
  }
  if (!body.empty() && body.back() != '\n') body.push_back('\n');
  SendAdminResponse(conn, 200, content_type, body);
}

void Server::SendAdminResponse(const std::shared_ptr<Conn>& conn, int status,
                               const char* content_type,
                               const std::string& body) {
  const std::string response = BuildHttpResponse(status, content_type, body);
  std::lock_guard<std::mutex> l(conn->mu);
  if (conn->closed || conn->fd < 0 || conn->error) return;
  conn->outbox.append(response);
  conn->close_after_flush = true;
  TryFlushLocked(*conn);
  UpdateInterestLocked(*conn);
  // If the flush already completed, the owning loop notices
  // close_after_flush on its next pass (we may be on it right now —
  // HandleAdminReadable's caller closes synchronously below).
}

std::string Server::RenderPrometheusMetrics() {
  obs::PrometheusExposition exposition;
  // Fleet-level registry (server.*, and arbiter.* when sharded); the
  // embedded server.shard<N>.* instruments fold into shard labels.
  exposition.AddRegistry(*metrics_, {});
  if (sharded_ != nullptr) {
    for (size_t i = 0; i < sharded_->num_shards(); i++) {
      obs::MetricsRegistry* reg = sharded_->shard(i)->MetricsHandle();
      if (reg == nullptr || reg == metrics_) continue;
      exposition.AddRegistry(*reg, {{"shard", std::to_string(i)}});
    }
  }
  // Advisor regime as an info-style series: value is constant 1, the
  // regime rides a label (the standard pattern for enum-valued state).
  const auto add_regime = [&exposition](DB* db, const obs::PrometheusLabels&
                                                    labels) {
    // "none" until the first completed compaction gives the advisor a
    // profile to classify — the series itself is always present.
    std::string regime = "none";
    std::string advisor;
    if (db->GetProperty("pipelsm.advisor", &advisor)) {
      const size_t key = advisor.find("\"regime\":\"");
      if (key != std::string::npos) {
        const size_t start = key + 10;
        const size_t end = advisor.find('"', start);
        if (end != std::string::npos) regime = advisor.substr(start, end - start);
      }
    }
    obs::PrometheusLabels with_regime = labels;
    with_regime.emplace_back("regime", regime);
    exposition.AddGauge("advisor.regime_info",
                        "active bottleneck-advisor regime (value always 1)",
                        with_regime, 1.0);
  };
  if (sharded_ != nullptr) {
    for (size_t i = 0; i < sharded_->num_shards(); i++) {
      add_regime(sharded_->shard(i), {{"shard", std::to_string(i)}});
    }
  } else {
    add_regime(db_, {});
  }
  exposition.AddGauge("server.draining",
                      "1 while a graceful drain is in progress",
                      {}, draining_.load(std::memory_order_acquire) ? 1 : 0);
  return exposition.Render();
}

uint64_t Server::NowNs() const {
  return options_.trace != nullptr ? options_.trace->NowNanos()
                                   : epoch_.ElapsedNanos();
}

void Server::FinishRequest(MessageType type, uint64_t conn_id, int shard,
                           const ReqTiming& timing, uint64_t end_ns) {
  requests_inflight_->Set(
      inflight_total_.fetch_sub(1, std::memory_order_relaxed) - 1);
  const uint64_t total_micros = (end_ns - timing.decode_ns) / 1000;
  if (options_.trace != nullptr && options_.trace_sample_every > 0 &&
      trace_sampler_.fetch_add(1, std::memory_order_relaxed) %
              options_.trace_sample_every ==
          0) {
    const uint32_t lane = static_cast<uint32_t>(TypeIndex(type));
    options_.trace->AddSpan(trace_pid_, lane, "request", "server",
                            timing.decode_ns, end_ns, conn_id);
    if (timing.op_end_ns > timing.op_start_ns) {
      options_.trace->AddSpan(trace_pid_, lane, "db", "server",
                              timing.op_start_ns, timing.op_end_ns, conn_id);
    }
  }
  if (options_.slow_request_micros == 0 ||
      total_micros < options_.slow_request_micros) {
    return;
  }
  slow_requests_->Add();
  const uint64_t queue_micros =
      (timing.op_start_ns - timing.decode_ns) / 1000;
  const uint64_t db_micros = (timing.op_end_ns - timing.op_start_ns) / 1000;
  const uint64_t reply_micros = (end_ns - timing.op_end_ns) / 1000;
  obs::Log(info_log_,
           "EVENT slow_request type=%s conn=%llu shard=%d total_micros=%llu "
           "queue_micros=%llu db_micros=%llu reply_micros=%llu",
           MessageTypeName(type), static_cast<unsigned long long>(conn_id),
           shard, static_cast<unsigned long long>(total_micros),
           static_cast<unsigned long long>(queue_micros),
           static_cast<unsigned long long>(db_micros),
           static_cast<unsigned long long>(reply_micros));
}

void Server::WakeAllLoops() {
  for (auto& loop : loops_) {
    if (loop->wake_wr >= 0) {
      const char b = 'w';
      [[maybe_unused]] ssize_t r = ::write(loop->wake_wr, &b, 1);
    }
  }
}

void Server::IoLoopMain(size_t index) {
  IoLoop& loop = *loops_[index];
  std::vector<struct epoll_event> events(128);
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop.epfd, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool refresh_interest = false;
    for (int i = 0; i < n; i++) {
      const int fd = events[i].data.fd;
      if (fd == loop.wake_rd) {
        char buf[256];
        while (::read(loop.wake_rd, buf, sizeof(buf)) > 0) {
        }
        if (index == 0 && draining_.load(std::memory_order_acquire) &&
            listen_fd_ >= 0) {
          // The listen fd belongs to loop 0, so only loop 0 closes it —
          // no cross-thread fd-reuse races.
          ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, listen_fd_, nullptr);
          ::close(listen_fd_);
          listen_fd_ = -1;
        }
        RegisterIncoming(loop);
        refresh_interest = true;
        continue;
      }
      if (index == 0 && fd == listen_fd_ && listen_fd_ >= 0) {
        AcceptNewConnections();
        continue;
      }
      if (index == 0 && fd == admin_fd_ && admin_fd_ >= 0) {
        AcceptAdminConnections();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> l(loop.mu);
        auto it = loop.conns.find(fd);
        if (it != loop.conns.end()) conn = it->second;
      }
      if (!conn) continue;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConn(loop, conn, "hangup");
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
      bool write_error;
      bool admin_done;
      {
        std::lock_guard<std::mutex> l(conn->mu);
        write_error = conn->error && !conn->closed;
        admin_done = conn->admin && conn->close_after_flush &&
                     !conn->closed && conn->out_pos >= conn->outbox.size();
      }
      if (write_error) {
        CloseConn(loop, conn, "write_error");
        continue;
      }
      if (admin_done) {
        CloseConn(loop, conn, "admin_done");
        continue;
      }
      if (events[i].events & EPOLLIN) {
        if (conn->admin) {
          HandleAdminReadable(loop, conn);
          // The reply usually flushes inside the handler; close now
          // instead of waiting for another epoll event that may never
          // come (the client may simply hold the socket open).
          bool done;
          {
            std::lock_guard<std::mutex> l(conn->mu);
            done = conn->close_after_flush && !conn->closed &&
                   conn->out_pos >= conn->outbox.size();
          }
          if (done) CloseConn(loop, conn, "admin_done");
        } else {
          HandleReadable(loop, conn);
        }
      }
    }
    if (refresh_interest) {
      std::vector<std::shared_ptr<Conn>> snapshot;
      {
        std::lock_guard<std::mutex> l(loop.mu);
        snapshot.reserve(loop.conns.size());
        for (auto& [cfd, c] : loop.conns) snapshot.push_back(c);
      }
      for (auto& c : snapshot) {
        std::lock_guard<std::mutex> l(c->mu);
        UpdateInterestLocked(*c);
      }
    }
  }
  // Shutdown: close whatever is left on this loop.
  std::vector<std::shared_ptr<Conn>> remaining;
  {
    std::lock_guard<std::mutex> l(loop.mu);
    for (auto& [cfd, c] : loop.conns) remaining.push_back(c);
    for (auto& c : loop.incoming) remaining.push_back(c);
    loop.incoming.clear();
  }
  for (auto& c : remaining) CloseConn(loop, c, "drain");
  if (index == 0 && listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // The admin socket outlives the drain window (healthz reports 503
  // while it lasts) and dies with its owning loop.
  if (index == 0 && admin_fd_ >= 0) {
    ::close(admin_fd_);
    admin_fd_ = -1;
  }
}

void Server::AcceptNewConnections() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or the listen socket went away mid-drain
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(options_.max_body_bytes);
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->fd = fd;
    conn->loop_index =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    IoLoop& target = *loops_[conn->loop_index];
    conn->epfd = target.epfd;
    {
      std::lock_guard<std::mutex> l(target.mu);
      target.incoming.push_back(conn);
    }
    conns_total_->Add();
    conns_active_->Set(active_conns_.fetch_add(1, std::memory_order_relaxed) +
                       1);
    obs::Log(info_log_, "EVENT conn_open id=%llu loop=%zu",
             static_cast<unsigned long long>(conn->id), conn->loop_index);
    if (conn->loop_index == 0) {
      RegisterIncoming(target);  // already on loop 0's thread
    } else {
      const char b = 'w';
      [[maybe_unused]] ssize_t r = ::write(target.wake_wr, &b, 1);
    }
  }
}

void Server::RegisterIncoming(IoLoop& loop) {
  std::vector<std::shared_ptr<Conn>> fresh;
  {
    std::lock_guard<std::mutex> l(loop.mu);
    fresh.swap(loop.incoming);
  }
  for (auto& conn : fresh) {
    std::lock_guard<std::mutex> l(conn->mu);
    struct epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
      ::close(conn->fd);
      conn->fd = -1;
      conn->closed = true;
      if (conn->admin) {
        admin_conns_active_->Set(
            active_admin_conns_.fetch_sub(1, std::memory_order_relaxed) - 1);
      } else {
        conns_active_->Set(
            active_conns_.fetch_sub(1, std::memory_order_relaxed) - 1);
      }
      continue;
    }
    conn->armed = EPOLLIN;
    {
      std::lock_guard<std::mutex> lm(loop.mu);
      loop.conns.emplace(conn->fd, conn);
    }
    UpdateInterestLocked(*conn);  // honor a stall/drain already in effect
  }
}

void Server::HandleReadable(IoLoop& loop, const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  while (true) {
    {
      std::lock_guard<std::mutex> l(conn->mu);
      if (conn->closed || conn->fd < 0 || conn->paused_inflight ||
          conn->paused_outbox || draining_.load(std::memory_order_acquire)) {
        return;
      }
      if (gate_->state() == obs::WriteStallCondition::kStopped) {
        // Park right here, not just on the next wake: an EPOLLIN that
        // raced the stall notification must not slip a request through
        // (and leaving interest armed would spin the level-triggered
        // loop until the wake lands).
        UpdateInterestLocked(*conn);
        return;
      }
    }
    const ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r > 0) {
      bytes_in_->Add(static_cast<uint64_t>(r));
      conn->decoder.Append(buf, static_cast<size_t>(r));
      DecodedFrame frame;
      while (true) {
        const FrameDecoder::Result res = conn->decoder.Next(&frame);
        if (res == FrameDecoder::Result::kNeedMore) break;
        if (res == FrameDecoder::Result::kError) {
          protocol_errors_->Add();
          obs::Log(info_log_, "EVENT conn_protocol_error id=%llu err=\"%s\"",
                   static_cast<unsigned long long>(conn->id),
                   conn->decoder.error().c_str());
          CloseConn(loop, conn, "protocol_error");
          return;
        }
        if (frame.reply) {
          // A client must never send the reply bit; treat as garbage.
          protocol_errors_->Add();
          CloseConn(loop, conn, "protocol_error");
          return;
        }
        DispatchFrame(conn, std::move(frame));
      }
      if (static_cast<size_t>(r) < sizeof(buf)) return;
      continue;
    }
    if (r == 0) {
      CloseConn(loop, conn, "eof");
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConn(loop, conn, "read_error");
    return;
  }
}

void Server::DispatchFrame(const std::shared_ptr<Conn>& conn,
                           DecodedFrame&& frame) {
  req_counters_[TypeIndex(frame.type)]->Add();
  // Decode stamp + in-flight gauge: every dispatched request gets
  // exactly one FinishRequest (for cross-shard batches, the finisher's).
  ReqTiming timing;
  timing.decode_ns = NowNs();
  requests_inflight_->Set(
      inflight_total_.fetch_add(1, std::memory_order_relaxed) + 1);
  {
    std::lock_guard<std::mutex> l(conn->mu);
    conn->in_flight++;
    if (conn->in_flight >= options_.max_inflight_per_conn &&
        !conn->paused_inflight) {
      conn->paused_inflight = true;
      read_pauses_->Add();
      UpdateInterestLocked(*conn);
    }
  }
  switch (frame.type) {
    case MessageType::kPing:
      SendReply(conn, frame.type, frame.seq, Status::OK(), Slice());
      timing.op_start_ns = timing.op_end_ns = timing.decode_ns;
      FinishRequest(frame.type, conn->id, -1, timing, NowNs());
      return;
    case MessageType::kPut:
    case MessageType::kDelete:
    case MessageType::kWriteBatch: {
      WriteTask task;
      task.conn = conn;
      task.type = frame.type;
      task.seq = frame.seq;
      task.timing = timing;
      Slice body(frame.body);
      bool ok = false;
      if (frame.type == MessageType::kPut) {
        Slice key, value;
        if ((ok = ParsePutRequest(body, &key, &value))) {
          task.batch.Put(key, value);
          if (sharded_ != nullptr) {
            task.shard = sharded_->router().ShardOf(key);
          }
        }
      } else if (frame.type == MessageType::kDelete) {
        Slice key;
        if ((ok = ParseDeleteRequest(body, &key))) {
          task.batch.Delete(key);
          if (sharded_ != nullptr) {
            task.shard = sharded_->router().ShardOf(key);
          }
        }
      } else {
        std::vector<BatchOp> ops;
        if ((ok = ParseWriteBatchRequest(body, &ops))) {
          if (sharded_ == nullptr) {
            for (const BatchOp& op : ops) {
              if (op.is_delete) {
                task.batch.Delete(op.key);
              } else {
                task.batch.Put(op.key, op.value);
              }
            }
          } else {
            // Split the batch per shard up front; each sub-batch rides
            // its own shard's commit thread and the finisher replies.
            const shard::ShardRouter& router = sharded_->router();
            std::vector<WriteBatch> split(sharded_->num_shards());
            for (const BatchOp& op : ops) {
              WriteBatch& b = split[router.ShardOf(op.key)];
              if (op.is_delete) {
                b.Delete(op.key);
              } else {
                b.Put(op.key, op.value);
              }
            }
            std::vector<size_t> touched;
            for (size_t i = 0; i < split.size(); i++) {
              if (WriteBatchInternal::Count(&split[i]) > 0) {
                touched.push_back(i);
              }
            }
            if (touched.empty()) {
              SendReply(conn, frame.type, frame.seq, Status::OK(), Slice());
              timing.op_start_ns = timing.op_end_ns = NowNs();
              FinishRequest(frame.type, conn->id, -1, timing, NowNs());
              return;
            }
            if (touched.size() == 1) {
              task.shard = touched[0];
              task.batch = std::move(split[touched[0]]);
            } else {
              auto multi = std::make_shared<MultiReply>();
              multi->remaining = touched.size();
              for (size_t i : touched) {
                WriteTask sub;
                sub.conn = conn;
                sub.type = frame.type;
                sub.seq = frame.seq;
                sub.timing = timing;
                sub.batch = std::move(split[i]);
                sub.shard = i;
                sub.multi = multi;
                EnqueueWrite(std::move(sub));
              }
              return;
            }
          }
        }
      }
      if (!ok) {
        SendReply(conn, frame.type, frame.seq,
                  Status::InvalidArgument("malformed request body"), Slice());
        timing.op_start_ns = timing.op_end_ns = NowNs();
        FinishRequest(frame.type, conn->id, -1, timing, NowNs());
        return;
      }
      EnqueueWrite(std::move(task));
      return;
    }
    case MessageType::kGet:
    case MessageType::kScan:
    case MessageType::kStats:
    case MessageType::kScanOpen:
    case MessageType::kScanNext:
    case MessageType::kScanClose: {
      ReadTask task;
      task.conn = conn;
      task.type = frame.type;
      task.seq = frame.seq;
      task.timing = timing;
      task.body = std::move(frame.body);
      if (!read_queue_->Push(std::move(task))) {
        SendReply(conn, frame.type, frame.seq,
                  Status::Busy("server draining"), Slice());
        timing.op_start_ns = timing.op_end_ns = NowNs();
        FinishRequest(frame.type, conn->id, -1, timing, NowNs());
      }
      return;
    }
  }
}

void Server::EnqueueWrite(WriteTask&& task) {
  const size_t shard = task.shard < write_queues_.size() ? task.shard : 0;
  if (!shard_write_ops_.empty()) shard_write_ops_[shard]->Add();
  // Keep reply coordinates: Push consumes the task, but a refused push
  // (draining) must still answer the client.
  const std::shared_ptr<Conn> conn = task.conn;
  const std::shared_ptr<MultiReply> multi = task.multi;
  const MessageType type = task.type;
  const uint64_t seq = task.seq;
  ReqTiming timing = task.timing;
  if (!write_queues_[shard]->Push(std::move(task))) {
    const Status busy = Status::Busy("server draining");
    const bool replies = multi == nullptr || multi->Complete(busy);
    if (replies) {
      SendReply(conn, type, seq, multi != nullptr ? multi->Final() : busy,
                Slice());
      timing.op_start_ns = timing.op_end_ns = NowNs();
      FinishRequest(type, conn->id,
                    sharded_ != nullptr ? static_cast<int>(shard) : -1, timing,
                    NowNs());
    }
  }
}

void Server::WorkerPump() {
  while (true) {
    std::optional<ReadTask> task = read_queue_->Pop();
    if (!task.has_value()) return;  // closed and drained
    HandleReadTask(*task);
  }
}

void Server::HandleReadTask(ReadTask& task) {
  task.timing.op_start_ns = NowNs();
  Slice body(task.body);
  Status s;
  std::string payload;
  switch (task.type) {
    case MessageType::kGet: {
      Slice key;
      if (!ParseGetRequest(body, &key)) {
        s = Status::InvalidArgument("malformed request body");
        break;
      }
      s = db_->Get(ReadOptions(), key, &payload);
      break;
    }
    case MessageType::kScan: {
      Slice start;
      uint32_t limit = 0;
      if (!ParseScanRequest(body, &start, &limit)) {
        s = Status::InvalidArgument("malformed request body");
        break;
      }
      // Clamp BEFORE any allocation sized from the wire value: limit is
      // attacker-controlled (a huge varint32 must not size a reserve or
      // drive the loop), and limit=0 means "server default".
      if (limit == 0 || limit > options_.max_scan_entries) {
        limit = options_.max_scan_entries;
      }
      std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
      std::vector<std::pair<std::string, std::string>> entries;
      size_t scan_bytes = 0;
      for (start.empty() ? it->SeekToFirst() : it->Seek(start);
           it->Valid() && entries.size() < limit &&
           scan_bytes < options_.max_scan_bytes;
           it->Next()) {
        scan_bytes += it->key().size() + it->value().size();
        entries.emplace_back(it->key().ToString(), it->value().ToString());
      }
      s = it->status();
      if (s.ok()) {
        PutVarint32(&payload, static_cast<uint32_t>(entries.size()));
        for (const auto& [k, v] : entries) {
          PutLengthPrefixedSlice(&payload, k);
          PutLengthPrefixedSlice(&payload, v);
        }
      }
      break;
    }
    case MessageType::kStats: {
      Slice property;
      if (!ParseStatsRequest(body, &property)) {
        s = Status::InvalidArgument("malformed request body");
        break;
      }
      const std::string name =
          property.empty() ? "pipelsm.stats" : property.ToString();
      if (!db_->GetProperty(name, &payload)) {
        s = Status::InvalidArgument("unknown property", name);
      }
      break;
    }
    case MessageType::kScanOpen: {
      Slice start;
      uint32_t limit = 0;
      if (!ParseScanOpenRequest(body, &start, &limit)) {
        s = Status::InvalidArgument("malformed request body");
        break;
      }
      auto cursor = std::make_shared<Cursor>();
      cursor->id = next_cursor_id_.fetch_add(1, std::memory_order_relaxed);
      cursor->conn_id = task.conn->id;
      // Unlike one-shot SCAN, limit here is NOT clamped to
      // max_scan_entries: the caps bound each BATCH, the limit bounds the
      // whole stream (0 = run to the end of the keyspace). No allocation
      // is sized from it, so a hostile value costs nothing.
      cursor->remaining = limit == 0 ? UINT64_MAX : limit;
      cursor->snapshot = db_->GetSnapshot();
      ReadOptions ro;
      ro.snapshot = cursor->snapshot;
      cursor->iter.reset(db_->NewIterator(ro));
      if (start.empty()) {
        cursor->iter->SeekToFirst();
      } else {
        cursor->iter->Seek(start);
      }
      cursor->last_used_ns.store(NowNs(), std::memory_order_relaxed);
      bool admitted = false;
      size_t open_count = 0;
      {
        std::lock_guard<std::mutex> l(cursors_mu_);
        if (cursors_.size() < options_.max_cursors) {
          cursors_.emplace(cursor->id, cursor);
          admitted = true;
          open_count = cursors_.size();
        }
      }
      if (!admitted) {
        // Roll the pinned snapshot back before refusing, or a SCAN_OPEN
        // storm against a full registry would leak snapshot pins.
        CloseCursor(cursor, nullptr);
        s = Status::Busy("cursor limit reached");
        break;
      }
      cursors_opened_->Add();
      cursors_active_->Set(static_cast<int64_t>(open_count));
      bool done = false;
      s = PullCursorBatch(cursor, &payload, &done);
      if (!s.ok() || done) CloseCursor(cursor, cursors_closed_);
      break;
    }
    case MessageType::kScanNext: {
      uint64_t id = 0;
      if (!ParseCursorRequest(body, &id)) {
        s = Status::InvalidArgument("malformed request body");
        break;
      }
      std::shared_ptr<Cursor> cursor = FindCursor(id);
      if (cursor == nullptr) {
        s = Status::NotFound("unknown cursor (closed or expired)");
        break;
      }
      bool done = false;
      s = PullCursorBatch(cursor, &payload, &done);
      if (!s.ok() || done) CloseCursor(cursor, cursors_closed_);
      break;
    }
    case MessageType::kScanClose: {
      uint64_t id = 0;
      if (!ParseCursorRequest(body, &id)) {
        s = Status::InvalidArgument("malformed request body");
        break;
      }
      // Idempotent: closing an unknown (already retired) cursor is OK.
      std::shared_ptr<Cursor> cursor = FindCursor(id);
      if (cursor != nullptr) CloseCursor(cursor, cursors_closed_);
      break;
    }
    default:
      s = Status::NotSupported("unexpected read task");
      break;
  }
  task.timing.op_end_ns = NowNs();
  ObserveLatency(task.type, task.queued.ElapsedNanos() / 1000);
  SendReply(task.conn, task.type, task.seq, s, payload);
  FinishRequest(task.type, task.conn->id, -1, task.timing, NowNs());
}

std::shared_ptr<Server::Cursor> Server::FindCursor(uint64_t id) {
  std::lock_guard<std::mutex> l(cursors_mu_);
  auto it = cursors_.find(id);
  return it != cursors_.end() ? it->second : nullptr;
}

Status Server::PullCursorBatch(const std::shared_ptr<Cursor>& cursor,
                               std::string* payload, bool* done) {
  std::vector<std::pair<std::string, std::string>> entries;
  Status s;
  {
    std::lock_guard<std::mutex> l(cursor->mu);
    if (cursor->released) {
      // Lost the race with the sweeper / conn teardown between lookup
      // and lock: same answer as an expired id.
      return Status::NotFound("unknown cursor (closed or expired)");
    }
    Iterator* it = cursor->iter.get();
    size_t batch_bytes = 0;
    while (it->Valid() && cursor->remaining > 0 &&
           entries.size() < options_.max_scan_entries &&
           batch_bytes < options_.max_scan_bytes) {
      batch_bytes += it->key().size() + it->value().size();
      entries.emplace_back(it->key().ToString(), it->value().ToString());
      if (cursor->remaining != UINT64_MAX) cursor->remaining--;
      it->Next();
    }
    s = it->status();
    *done = s.ok() && (!it->Valid() || cursor->remaining == 0);
  }
  cursor->last_used_ns.store(NowNs(), std::memory_order_relaxed);
  if (!s.ok()) return s;
  EncodeScanBatchPayload(cursor->id, entries, *done, payload);
  cursor_batches_->Add();
  return s;
}

void Server::CloseCursor(const std::shared_ptr<Cursor>& cursor,
                         obs::Counter* counter) {
  bool erased;
  size_t remaining_cursors;
  {
    std::lock_guard<std::mutex> l(cursors_mu_);
    erased = cursors_.erase(cursor->id) > 0;
    remaining_cursors = cursors_.size();
  }
  // Destroy outside cursors_mu_ (an in-flight batch pull holds
  // Cursor::mu and may take a while) but unconditionally: the refused-
  // admission path closes a cursor that was never registered.
  std::unique_ptr<Iterator> iter;
  const Snapshot* snapshot = nullptr;
  {
    std::lock_guard<std::mutex> l(cursor->mu);
    if (!cursor->released) {
      cursor->released = true;
      iter = std::move(cursor->iter);
      snapshot = cursor->snapshot;
      cursor->snapshot = nullptr;
    }
  }
  iter.reset();  // iterator may reference the snapshot; drop it first
  if (snapshot != nullptr) db_->ReleaseSnapshot(snapshot);
  if (erased) {
    if (counter != nullptr) counter->Add();
    cursors_active_->Set(static_cast<int64_t>(remaining_cursors));
  }
}

void Server::CloseCursorsForConn(uint64_t conn_id) {
  std::vector<std::shared_ptr<Cursor>> mine;
  {
    std::lock_guard<std::mutex> l(cursors_mu_);
    for (auto& [id, c] : cursors_) {
      if (c->conn_id == conn_id) mine.push_back(c);
    }
  }
  for (auto& c : mine) CloseCursor(c, cursors_closed_);
}

void Server::CloseAllCursors() {
  std::vector<std::shared_ptr<Cursor>> all;
  {
    std::lock_guard<std::mutex> l(cursors_mu_);
    for (auto& [id, c] : cursors_) all.push_back(c);
  }
  for (auto& c : all) CloseCursor(c, cursors_closed_);
}

void Server::SweepExpiredCursors() {
  if (options_.cursor_ttl_micros == 0) return;
  const uint64_t ttl_ns = options_.cursor_ttl_micros * 1000;
  const uint64_t now = NowNs();
  std::vector<std::shared_ptr<Cursor>> expired;
  {
    std::lock_guard<std::mutex> l(cursors_mu_);
    for (auto& [id, c] : cursors_) {
      const uint64_t last = c->last_used_ns.load(std::memory_order_relaxed);
      if (now >= last && now - last >= ttl_ns) expired.push_back(c);
    }
  }
  for (auto& c : expired) {
    obs::Log(info_log_, "EVENT cursor_expired id=%llu conn=%llu",
             static_cast<unsigned long long>(c->id),
             static_cast<unsigned long long>(c->conn_id));
    CloseCursor(c, cursors_expired_);
  }
}

void Server::CursorSweeperMain() {
  std::unique_lock<std::mutex> l(sweeper_mu_);
  while (!sweeper_stop_) {
    sweeper_cv_.wait_for(
        l, std::chrono::microseconds(options_.cursor_sweep_period_micros));
    if (sweeper_stop_) break;
    l.unlock();
    SweepExpiredCursors();
    l.lock();
  }
}

void Server::GroupCommitLoop(size_t index) {
  BoundedQueue<WriteTask>& queue = *write_queues_[index];
  // Sharded servers commit straight against the member engine — the
  // routing already happened at dispatch, so going through ShardedDB::
  // Write would just re-split every leader batch.
  DB* const target = sharded_ != nullptr ? sharded_->shard(index) : db_;
  std::vector<WriteTask> group;
  WriteBatch leader;
  // Reply frames coalesced per connection, so a saturated batch fanned
  // over many sockets costs one send() per socket, not per request.
  struct ConnReplies {
    std::shared_ptr<Conn> conn;
    std::string frames;
    size_t count = 0;
  };
  std::vector<ConnReplies> replies;
  std::unordered_map<Conn*, size_t> reply_index;
  std::vector<const WriteTask*> replied;
  while (true) {
    std::optional<WriteTask> first = queue.Pop();
    if (!first.has_value()) return;  // closed and drained
    group.clear();
    size_t bytes = first->batch.ApproximateSize();
    group.push_back(std::move(*first));
    auto gather = [&] {
      while (group.size() < options_.group_commit_max_requests &&
             bytes < options_.group_commit_max_bytes) {
        std::optional<WriteTask> t = queue.TryPop();
        if (!t.has_value()) return;
        bytes += t->batch.ApproximateSize();
        group.push_back(std::move(*t));
      }
    };
    gather();
    if (group.size() == 1 && options_.group_commit_window_micros > 0 &&
        !draining_.load(std::memory_order_acquire)) {
      // Solo leader: hold the commit open one window so concurrent
      // writers share the WAL sync instead of paying one each.
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.group_commit_window_micros));
      gather();
    }
    leader.Clear();
    for (const WriteTask& t : group) leader.Append(t.batch);
    WriteOptions wo;
    wo.sync = options_.sync_writes;
    const uint64_t op_start_ns = NowNs();
    const Status s = target->Write(wo, &leader);
    const uint64_t op_end_ns = NowNs();
    gc_commits_->Add();
    gc_batch_size_->Observe(static_cast<double>(group.size()));
    replies.clear();
    reply_index.clear();
    replied.clear();
    for (WriteTask& t : group) {
      Status reply_status = s;
      if (t.multi != nullptr) {
        // Cross-shard batch: only the last shard to commit replies, and
        // with the folded fleet status — the others just retire their
        // sub-task silently (the frame's in_flight slot belongs to the
        // one reply).
        if (!t.multi->Complete(s)) continue;
        reply_status = t.multi->Final();
      }
      // All members share the leader's DB window (they committed in it).
      t.timing.op_start_ns = op_start_ns;
      t.timing.op_end_ns = op_end_ns;
      replied.push_back(&t);
      ObserveLatency(t.type, t.queued.ElapsedNanos() / 1000);
      auto ins = reply_index.emplace(t.conn.get(), replies.size());
      if (ins.second) replies.push_back(ConnReplies{t.conn, {}, 0});
      ConnReplies& r = replies[ins.first->second];
      EncodeReply(t.type, t.seq, reply_status, Slice(), &r.frames);
      r.count++;
    }
    for (ConnReplies& r : replies) DeliverReplies(r.conn, r.frames, r.count);
    const uint64_t flush_ns = NowNs();
    const int shard_label = sharded_ != nullptr ? static_cast<int>(index) : -1;
    for (const WriteTask* t : replied) {
      FinishRequest(t->type, t->conn->id, shard_label, t->timing, flush_ns);
    }
  }
}

void Server::ObserveLatency(MessageType type, uint64_t micros) {
  req_micros_[TypeIndex(type)]->Observe(static_cast<double>(micros));
}

void Server::SendReply(const std::shared_ptr<Conn>& conn, MessageType type,
                       uint64_t seq, const Status& status,
                       const Slice& payload) {
  std::string frame;
  EncodeReply(type, seq, status, payload, &frame);
  DeliverReplies(conn, frame, 1);
}

// Append pre-encoded reply frames to the outbox and flush once,
// retiring `count` in-flight requests: one lock acquisition and at most
// one send() no matter how many frames ride along. The group-commit
// thread answers a whole leader batch per connection through this —
// paying a syscall per request there caps served throughput.
void Server::DeliverReplies(const std::shared_ptr<Conn>& conn,
                            const std::string& frames, size_t count) {
  std::lock_guard<std::mutex> l(conn->mu);
  if (!conn->closed && conn->fd >= 0 && !conn->error) {
    conn->outbox.append(frames);
    TryFlushLocked(*conn);
    const size_t pending = conn->outbox.size() - conn->out_pos;
    if (pending > options_.max_outbox_bytes && !conn->paused_outbox) {
      conn->paused_outbox = true;
      read_pauses_->Add();
    }
  }
  conn->in_flight -= std::min(conn->in_flight, count);
  if (conn->paused_inflight &&
      conn->in_flight <= options_.max_inflight_per_conn / 2) {
    conn->paused_inflight = false;
  }
  UpdateInterestLocked(*conn);
}

void Server::TryFlushLocked(Conn& conn) {
  while (conn.out_pos < conn.outbox.size()) {
    const ssize_t w =
        ::send(conn.fd, conn.outbox.data() + conn.out_pos,
               conn.outbox.size() - conn.out_pos, MSG_NOSIGNAL);
    if (w > 0) {
      conn.out_pos += static_cast<size_t>(w);
      bytes_out_->Add(static_cast<uint64_t>(w));
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Hard send error: poke the socket shut so the owner loop wakes up
    // (EPOLLHUP) and performs the actual close.
    conn.error = true;
    ::shutdown(conn.fd, SHUT_RDWR);
    break;
  }
  if (conn.out_pos == conn.outbox.size()) {
    conn.outbox.clear();
    conn.out_pos = 0;
    if (conn.paused_outbox) conn.paused_outbox = false;
  } else if (conn.out_pos > (1u << 20) &&
             conn.out_pos * 2 > conn.outbox.size()) {
    conn.outbox.erase(0, conn.out_pos);
    conn.out_pos = 0;
  }
}

void Server::HandleWritable(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> l(conn->mu);
  if (conn->closed || conn->fd < 0) return;
  TryFlushLocked(*conn);
  UpdateInterestLocked(*conn);
}

void Server::UpdateInterestLocked(Conn& conn) {
  if (conn.closed || conn.fd < 0) return;
  const bool stalled =
      gate_->state() == obs::WriteStallCondition::kStopped;
  uint32_t want = 0;
  if (conn.admin) {
    // Admin reads never park: /metrics must be scrapable mid-stall and
    // /healthz mid-drain. Reading stops only once the reply is queued.
    if (!conn.error && !conn.close_after_flush) want |= EPOLLIN;
  } else if (!draining_.load(std::memory_order_acquire) &&
             !conn.paused_inflight && !conn.paused_outbox && !stalled &&
             !conn.error) {
    want |= EPOLLIN;
  }
  if (conn.out_pos < conn.outbox.size()) want |= EPOLLOUT;
  if (want != conn.armed) {
    struct epoll_event ev{};
    ev.events = want;
    ev.data.fd = conn.fd;
    if (::epoll_ctl(conn.epfd, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
      conn.armed = want;
    }
  }
}

void Server::CloseConn(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                       const char* reason) {
  int fd;
  {
    std::lock_guard<std::mutex> l(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    fd = conn->fd;
    conn->fd = -1;
  }
  if (fd >= 0) {
    ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    std::lock_guard<std::mutex> l(loop.mu);
    loop.conns.erase(fd);
  }
  if (conn->admin) {
    admin_conns_active_->Set(
        active_admin_conns_.fetch_sub(1, std::memory_order_relaxed) - 1);
  } else {
    conns_active_->Set(
        active_conns_.fetch_sub(1, std::memory_order_relaxed) - 1);
    // A dead client can never SCAN_NEXT again; release its pinned
    // snapshots now instead of waiting out the TTL.
    CloseCursorsForConn(conn->id);
  }
  obs::Log(info_log_, "EVENT conn_close id=%llu reason=%s",
           static_cast<unsigned long long>(conn->id), reason);
}

void Server::Drain() {
  if (drained_.exchange(true)) return;
  gate_->SetNotifier(nullptr);  // no callbacks into a dying server
  if (!running_.load(std::memory_order_acquire)) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (admin_fd_ >= 0) {
      ::close(admin_fd_);
      admin_fd_ = -1;
    }
    return;
  }
  obs::Log(info_log_, "EVENT drain_begin conns=%lld",
           static_cast<long long>(active_conns_.load()));
  draining_.store(true, std::memory_order_release);
  WakeAllLoops();  // loop 0 closes the listen fd; all loops park reads

  // The queues drain to empty before the consumers exit, so every
  // accepted request still gets its reply.
  read_queue_->Close();
  for (auto& q : write_queues_) q->Close();
  for (std::thread& t : commit_threads_) {
    if (t.joinable()) t.join();
  }
  if (workers_) workers_->Shutdown();

  // Cursors: every queued SCAN_NEXT was answered above (the read queue
  // drained before the workers exited — mid-stream clients get their
  // in-flight batch). Now no thread can touch a cursor, so hand every
  // pinned snapshot back to the DB, which must outlive the server.
  {
    std::lock_guard<std::mutex> l(sweeper_mu_);
    sweeper_stop_ = true;
  }
  sweeper_cv_.notify_all();
  if (cursor_sweeper_.joinable()) cursor_sweeper_.join();
  CloseAllCursors();

  // Give the loops a bounded window to push remaining outboxes onto the
  // wire (they are still running and servicing EPOLLOUT).
  const uint64_t deadline_nanos = options_.drain_flush_timeout_micros * 1000;
  Stopwatch sw;
  while (sw.ElapsedNanos() < deadline_nanos) {
    bool pending = false;
    for (auto& loop : loops_) {
      std::vector<std::shared_ptr<Conn>> snapshot;
      {
        std::lock_guard<std::mutex> l(loop->mu);
        for (auto& [fd, c] : loop->conns) snapshot.push_back(c);
      }
      for (auto& c : snapshot) {
        std::lock_guard<std::mutex> l(c->mu);
        if (!c->closed && !c->error && c->out_pos < c->outbox.size()) {
          pending = true;
        }
      }
    }
    if (!pending) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  running_.store(false, std::memory_order_release);
  WakeAllLoops();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
    if (loop->wake_rd >= 0) ::close(loop->wake_rd);
    if (loop->wake_wr >= 0) ::close(loop->wake_wr);
    if (loop->epfd >= 0) ::close(loop->epfd);
    loop->wake_rd = loop->wake_wr = loop->epfd = -1;
  }
  obs::Log(info_log_, "EVENT drain_end");
}

}  // namespace pipelsm::server
