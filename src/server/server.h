// Network service layer: a multithreaded epoll TCP server exposing one DB
// over the binary protocol in src/server/protocol.h (docs/SERVER.md).
//
// The design mirrors the paper's pipeline argument at request scope: the
// read (socket), compute (DB), and write (socket) stages of every request
// are independent, so they run on different threads connected by bounded
// queues, and the slowest stage — not the sum — governs throughput:
//
//   I/O threads (epoll, level-triggered, non-blocking)
//     thread 0 also owns the listen socket and accepts, handing new
//     connections round-robin to the loops; each loop reads its sockets,
//     feeds a FrameDecoder, and dispatches complete requests:
//       PING                      answered inline,
//       GET / SCAN / STATS /
//       SCAN_OPEN|NEXT|CLOSE      -> read queue   (BoundedQueue)
//       PUT / DELETE / WRITE_BATCH-> write queue  (BoundedQueue)
//   Worker pool (util/thread_pool) drains the read queue and executes
//     against the DB.
//   Group-commit thread drains the write queue: the first popped request
//     becomes the leader, everything already queued (plus anything
//     arriving within group_commit_window_micros) is folded into ONE
//     WriteBatch and ONE DB::Write — so a WAL sync is amortized over every
//     connection that wrote in the window.
//   Responses are written back by whichever thread produced them (under
//     the connection's lock); what does not fit in the socket buffer lands
//     in a per-connection outbox flushed by the owning loop via EPOLLOUT.
//
// Backpressure (never buffer unboundedly):
//   * per-connection in-flight cap — a connection with too many
//     unanswered requests stops being read until half drain;
//   * per-connection outbox cap — a reader slower than its SCAN results
//     stops being read until the outbox flushes;
//   * DB write stalls — wire write_stall_listener() into
//     Options::listeners and the server parks EPOLLIN on every connection
//     while the DB reports kStopped, surfacing the stall to clients as
//     TCP backpressure instead of heap growth.
//
// Drain (SIGTERM path): stop accepting, park reads, let the queues run
// dry (every accepted request is answered), flush outboxes, close
// connections, join threads. EVENT lines server_start / conn_open /
// conn_close / drain_begin / drain_end land in the info log.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/db/db.h"
#include "src/db/write_batch.h"
#include "src/obs/event_listener.h"
#include "src/obs/logger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/server/protocol.h"
#include "src/util/bounded_queue.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace pipelsm::shard {
class ShardedDB;
}  // namespace pipelsm::shard

namespace pipelsm::server {

// DB write-stall state shared between the DB's listener callbacks and the
// server's I/O loops. Create one BEFORE DB::Open, add it to
// Options::listeners, then hand it to ServerOptions::stall_gate; the
// server parks every connection's reads while the gate reports kStopped.
// Safe to fire with the DB mutex held: the update is an atomic count plus
// a non-blocking notifier (the server's wakeup pipes).
//
// The gate COUNTS stalled sources rather than storing the last event:
// with a ShardedDB every shard fires transitions into the same gate, and
// last-writer-wins would let shard B's return-to-normal clear shard A's
// active stop. state() reports kStopped while ANY source is stopped.
// Callers firing by hand must supply honest `previous` values (the DB
// does; see DBImpl's transition-edge firing).
class WriteStallGate : public obs::EventListener {
 public:
  void OnWriteStallChange(const obs::WriteStallInfo& info) override {
    using obs::WriteStallCondition;
    if (info.condition == WriteStallCondition::kStopped &&
        info.previous != WriteStallCondition::kStopped) {
      stopped_.fetch_add(1, std::memory_order_acq_rel);
    } else if (info.condition != WriteStallCondition::kStopped &&
               info.previous == WriteStallCondition::kStopped) {
      int v = stopped_.load(std::memory_order_acquire);
      while (v > 0 && !stopped_.compare_exchange_weak(
                          v, v - 1, std::memory_order_acq_rel)) {
      }
    }
    std::lock_guard<std::mutex> l(mu_);
    if (notifier_) notifier_();
  }

  obs::WriteStallCondition state() const {
    return stopped_.load(std::memory_order_acquire) > 0
               ? obs::WriteStallCondition::kStopped
               : obs::WriteStallCondition::kNormal;
  }

  // Called on every stall transition; must not block (DB mutex is held).
  // Pass nullptr to detach (the server does, on Drain).
  void SetNotifier(std::function<void()> notifier) {
    std::lock_guard<std::mutex> l(mu_);
    notifier_ = std::move(notifier);
  }

 private:
  std::atomic<int> stopped_{0};
  std::mutex mu_;
  std::function<void()> notifier_;
};

struct ServerOptions {
  std::string host = "0.0.0.0";
  int port = 7380;  // 0 = ephemeral; read the bound port via port()

  int num_io_threads = 2;
  int num_workers = 4;

  // Depth of the read/write dispatch queues. A full queue blocks the
  // pushing I/O loop, which stops socket reads — backpressure, not OOM.
  size_t request_queue_depth = 1024;

  // Frame-size ceiling enforced by the decoder (protocol error above it).
  size_t max_body_bytes = kDefaultMaxBodyBytes;

  // Reads pause on a connection holding this many unanswered requests.
  size_t max_inflight_per_conn = 128;

  // Reads pause on a connection whose pending response bytes exceed this.
  size_t max_outbox_bytes = 8 * 1024 * 1024;

  // Group commit: after the leader pops, wait this long for followers
  // when the write queue is otherwise empty. 0 = never wait.
  uint64_t group_commit_window_micros = 100;
  size_t group_commit_max_requests = 256;
  size_t group_commit_max_bytes = 1 * 1024 * 1024;

  // WriteOptions::sync for the leader batch — one fsync per group.
  bool sync_writes = true;

  // Hard cap on SCAN result entries (requests asking for more are
  // truncated to this; limit=0 also means this default).
  uint32_t max_scan_entries = 10000;

  // Hard cap on SCAN result payload bytes (keys + values). A hostile
  // limit can otherwise multiply with large (value-log separated)
  // values into an oversized reply allocation that blows straight past
  // max_outbox_bytes in one request. The scan stops early at whichever
  // cap hits first; the reply is still well-formed.
  size_t max_scan_bytes = 4 * 1024 * 1024;

  // -------- streaming SCAN cursors (SCAN_OPEN / SCAN_NEXT / SCAN_CLOSE)
  // Every open cursor pins a DB snapshot, so an abandoned one holds
  // memtables and table files alive forever; the sweeper expires any
  // cursor idle longer than this (its next SCAN_NEXT gets NotFound).
  // 0 = never expire (tests only).
  uint64_t cursor_ttl_micros = 60 * 1000 * 1000;

  // Server-wide cap on simultaneously open cursors; SCAN_OPEN beyond it
  // is refused with Busy.
  size_t max_cursors = 1024;

  // Sweeper wake period. Expiry precision is ttl + one period.
  uint64_t cursor_sweep_period_micros = 1000 * 1000;

  // How long Drain() waits for outboxes to reach the wire.
  uint64_t drain_flush_timeout_micros = 5 * 1000 * 1000;

  // EVENT sink; nullptr falls back to the DB's own info log
  // (DB::InfoLogHandle), then to silence.
  obs::Logger* info_log = nullptr;

  // Instrument registry for server.* metrics; nullptr falls back to the
  // DB's registry (DB::MetricsHandle) so GetProperty("pipelsm.metrics")
  // carries them, then to a private registry.
  obs::MetricsRegistry* metrics = nullptr;

  // Stall gate wired into the DB's Options::listeners (see
  // WriteStallGate). nullptr = no DB-stall backpressure (per-connection
  // caps still apply). Must outlive the server.
  WriteStallGate* stall_gate = nullptr;

  // -------- admin endpoint (docs/OBSERVABILITY.md) --------
  // Port for the HTTP/1.0 admin endpoint (GET /metrics /stats /advisor
  // /arbiter /timeseries /healthz), served by the same epoll loops as
  // client traffic. -1 = disabled; 0 = ephemeral (read via
  // admin_port()). Binds on `host`. Admin connections are exempt from
  // stall parking and drain parking: /metrics stays scrapable while
  // writes are stopped, and /healthz answers 503 while draining.
  int admin_port = -1;

  // Concurrent admin connections; accepts beyond the cap are refused
  // (closed immediately). Scrapers and dashboards need a handful.
  size_t max_admin_conns = 64;

  // -------- per-request tracing (docs/OBSERVABILITY.md) --------
  // A request whose decode-to-reply-flush time reaches this emits one
  // "EVENT slow_request" line with its per-stage breakdown
  // (queue/db/reply micros) to the info log. 0 = off.
  uint64_t slow_request_micros = 1000 * 1000;

  // When set, every trace_sample_every-th request is recorded into this
  // collector as spans on the server's trace process (whole-request span
  // plus its db stage), alongside the DB's compaction spans when they
  // share a collector. Must outlive the server. nullptr = no sampling.
  obs::TraceCollector* trace = nullptr;
  uint64_t trace_sample_every = 64;
};

class Server {
 public:
  // The DB must outlive the server. To wire stall backpressure, create a
  // WriteStallGate, put it in Options::listeners before DB::Open, and
  // pass it in ServerOptions::stall_gate (optional but recommended).
  Server(DB* db, const ServerOptions& options);
  ~Server();  // drains if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, spawns I/O loops + workers + the commit thread.
  Status Start();

  // Graceful shutdown; idempotent. Blocks until every accepted request is
  // answered (or drain_flush_timeout expires) and all threads joined.
  void Drain();

  // Bound port (useful with port=0). Valid after Start().
  int port() const { return port_; }

  // Bound admin port; -1 when the endpoint is disabled. Valid after
  // Start().
  int admin_port() const { return admin_port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  // The gate the server watches: ServerOptions::stall_gate if set, else a
  // private one (which tests may fire by hand via OnWriteStallChange).
  WriteStallGate* stall_gate() { return gate_; }

  // The registry server.* instruments land in (for benches/tests).
  obs::MetricsRegistry* metrics_registry() { return metrics_; }

  size_t active_connections() const;

 private:
  struct Conn;
  struct IoLoop;
  struct ReadTask;
  struct WriteTask;
  struct MultiReply;
  struct Cursor;

  // End-to-end request timestamps (NowNs clock): decode at dispatch,
  // DB-op start/end at execution; the reply-flush stamp is taken at the
  // emit site. Feeds the slow-request log line and trace sampling.
  struct ReqTiming {
    uint64_t decode_ns = 0;
    uint64_t op_start_ns = 0;
    uint64_t op_end_ns = 0;
  };

  Status Listen();
  void IoLoopMain(size_t index);
  void AcceptNewConnections();
  void RegisterIncoming(IoLoop& loop);
  void HandleReadable(IoLoop& loop, const std::shared_ptr<Conn>& conn);
  void HandleWritable(const std::shared_ptr<Conn>& conn);

  // Admin endpoint (HTTP/1.0, one request per connection).
  Status ListenAdmin();
  void AcceptAdminConnections();
  void HandleAdminReadable(IoLoop& loop, const std::shared_ptr<Conn>& conn);
  void HandleAdminRequest(const std::shared_ptr<Conn>& conn,
                          const std::string& method, const std::string& path);
  void SendAdminResponse(const std::shared_ptr<Conn>& conn, int status,
                         const char* content_type, const std::string& body);
  std::string RenderPrometheusMetrics();

  // Monotone request clock: the trace collector's epoch when sampling is
  // on (spans must share it), a private stopwatch otherwise.
  uint64_t NowNs() const;
  // Stamps the reply-flush end of one request: samples a trace span and
  // emits the slow-request line when over threshold. `shard` is -1 for
  // reads/unsharded.
  void FinishRequest(MessageType type, uint64_t conn_id, int shard,
                     const ReqTiming& timing, uint64_t end_ns);
  void DispatchFrame(const std::shared_ptr<Conn>& conn, DecodedFrame&& frame);
  // Routes one parsed write to its shard's queue (queue 0 unsharded).
  void EnqueueWrite(WriteTask&& task);
  void WorkerPump();
  void HandleReadTask(ReadTask& task);
  // One per write queue: shard `index`'s group-commit thread. Unsharded
  // servers run exactly one, against the whole DB.
  void GroupCommitLoop(size_t index);
  void SendReply(const std::shared_ptr<Conn>& conn, MessageType type,
                 uint64_t seq, const Status& status, const Slice& payload);
  void DeliverReplies(const std::shared_ptr<Conn>& conn,
                      const std::string& frames, size_t count);
  void CloseConn(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                 const char* reason);
  // REQUIRES: conn->mu held.
  void UpdateInterestLocked(Conn& conn);
  void TryFlushLocked(Conn& conn);
  void WakeAllLoops();
  void ObserveLatency(MessageType type, uint64_t micros);

  // Streaming cursor plumbing (SCAN_OPEN / SCAN_NEXT / SCAN_CLOSE; see
  // docs/READ_PATH.md). Handlers run on worker threads via
  // HandleReadTask.
  std::shared_ptr<Cursor> FindCursor(uint64_t id);
  // Pulls one bounded batch (max_scan_entries / max_scan_bytes) and
  // encodes the reply payload; sets *done when the iterator is exhausted
  // or the client's limit is reached.
  Status PullCursorBatch(const std::shared_ptr<Cursor>& cursor,
                         std::string* payload, bool* done);
  // Removes the cursor from the registry and releases its iterator and
  // snapshot exactly once; `counter` (closed/expired) bumps only if this
  // call actually retired it. Safe to race with a concurrent batch pull.
  void CloseCursor(const std::shared_ptr<Cursor>& cursor,
                   obs::Counter* counter);
  void CloseCursorsForConn(uint64_t conn_id);
  void CloseAllCursors();
  void SweepExpiredCursors();
  void CursorSweeperMain();

  DB* const db_;
  // Non-null when db_ is a ShardedDB: writes are routed per shard onto
  // per-shard group-commit threads, so N shards sync N WALs in parallel
  // instead of serializing behind one commit thread (docs/SHARDING.md).
  shard::ShardedDB* sharded_ = nullptr;
  const ServerOptions options_;

  obs::Logger* info_log_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry own_metrics_;

  int listen_fd_ = -1;
  int port_ = 0;
  int admin_fd_ = -1;
  int admin_port_ = -1;

  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::unique_ptr<BoundedQueue<ReadTask>> read_queue_;
  // One write queue + commit thread per shard (exactly one unsharded).
  std::vector<std::unique_ptr<BoundedQueue<WriteTask>>> write_queues_;
  std::unique_ptr<ThreadPool> workers_;
  std::vector<std::thread> commit_threads_;
  WriteStallGate own_gate_;
  WriteStallGate* gate_ = nullptr;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> next_loop_{0};
  std::atomic<int64_t> active_conns_{0};
  std::atomic<int64_t> active_admin_conns_{0};
  std::atomic<int64_t> inflight_total_{0};
  std::atomic<uint64_t> trace_sampler_{0};
  Stopwatch epoch_;  // NowNs clock when no trace collector is attached
  uint32_t trace_pid_ = 0;  // server's trace process (0 = no collector)

  // server.* instruments (registered in Start()).
  obs::Gauge* conns_active_ = nullptr;
  obs::Counter* conns_total_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Counter* read_pauses_ = nullptr;
  obs::Counter* gc_commits_ = nullptr;
  obs::HistogramMetric* gc_batch_size_ = nullptr;
  obs::Counter* req_counters_[kNumMessageTypes] = {};
  obs::HistogramMetric* req_micros_[kNumMessageTypes] = {};
  // Sharded only: write requests routed to each shard's queue.
  std::vector<obs::Counter*> shard_write_ops_;
  // Admin endpoint + request tracing instruments.
  obs::Gauge* admin_conns_active_ = nullptr;
  obs::Counter* admin_requests_ = nullptr;
  obs::Counter* admin_http_errors_ = nullptr;
  obs::Counter* slow_requests_ = nullptr;
  obs::Gauge* requests_inflight_ = nullptr;

  // Streaming cursor registry: id -> open cursor. Lock order is
  // cursors_mu_ THEN Cursor::mu (lookups drop cursors_mu_ before
  // touching the cursor; closers erase first, destroy after).
  std::mutex cursors_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Cursor>> cursors_;
  std::atomic<uint64_t> next_cursor_id_{1};
  std::thread cursor_sweeper_;
  std::mutex sweeper_mu_;
  std::condition_variable sweeper_cv_;
  bool sweeper_stop_ = false;
  obs::Counter* cursors_opened_ = nullptr;
  obs::Counter* cursors_closed_ = nullptr;
  obs::Counter* cursors_expired_ = nullptr;
  obs::Counter* cursor_batches_ = nullptr;
  obs::Gauge* cursors_active_ = nullptr;
};

}  // namespace pipelsm::server
