#include "src/server/protocol.h"

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace pipelsm::server {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPing:
      return "PING";
    case MessageType::kGet:
      return "GET";
    case MessageType::kPut:
      return "PUT";
    case MessageType::kDelete:
      return "DELETE";
    case MessageType::kWriteBatch:
      return "WRITE_BATCH";
    case MessageType::kScan:
      return "SCAN";
    case MessageType::kStats:
      return "STATS";
    case MessageType::kScanOpen:
      return "SCAN_OPEN";
    case MessageType::kScanNext:
      return "SCAN_NEXT";
    case MessageType::kScanClose:
      return "SCAN_CLOSE";
  }
  return "UNKNOWN";
}

void EncodeFrame(MessageType type, bool reply, uint64_t seq, const Slice& body,
                 std::string* out) {
  const size_t header_at = out->size();
  out->push_back(kMagic0);
  out->push_back(kMagic1);
  out->push_back(static_cast<char>(kProtocolVersion));
  out->push_back(static_cast<char>(static_cast<uint8_t>(type) |
                                   (reply ? kReplyBit : 0)));
  PutFixed32(out, static_cast<uint32_t>(body.size()));
  PutFixed64(out, seq);
  out->append(body.data(), body.size());
  const uint32_t crc = crc32c::Value(out->data() + header_at,
                                     kHeaderSize + body.size());
  PutFixed32(out, crc32c::Mask(crc));
}

void EncodePingRequest(uint64_t seq, std::string* out) {
  EncodeFrame(MessageType::kPing, false, seq, Slice(), out);
}

void EncodeGetRequest(uint64_t seq, const Slice& key, std::string* out) {
  std::string body;
  PutLengthPrefixedSlice(&body, key);
  EncodeFrame(MessageType::kGet, false, seq, body, out);
}

void EncodePutRequest(uint64_t seq, const Slice& key, const Slice& value,
                      std::string* out) {
  std::string body;
  PutLengthPrefixedSlice(&body, key);
  PutLengthPrefixedSlice(&body, value);
  EncodeFrame(MessageType::kPut, false, seq, body, out);
}

void EncodeDeleteRequest(uint64_t seq, const Slice& key, std::string* out) {
  std::string body;
  PutLengthPrefixedSlice(&body, key);
  EncodeFrame(MessageType::kDelete, false, seq, body, out);
}

void EncodeWriteBatchRequest(uint64_t seq, const std::vector<BatchOp>& ops,
                             std::string* out) {
  std::string body;
  PutVarint32(&body, static_cast<uint32_t>(ops.size()));
  for (const BatchOp& op : ops) {
    body.push_back(op.is_delete ? '\1' : '\0');
    PutLengthPrefixedSlice(&body, op.key);
    if (!op.is_delete) {
      PutLengthPrefixedSlice(&body, op.value);
    }
  }
  EncodeFrame(MessageType::kWriteBatch, false, seq, body, out);
}

void EncodeScanRequest(uint64_t seq, const Slice& start_key, uint32_t limit,
                       std::string* out) {
  std::string body;
  PutLengthPrefixedSlice(&body, start_key);
  PutVarint32(&body, limit);
  EncodeFrame(MessageType::kScan, false, seq, body, out);
}

void EncodeStatsRequest(uint64_t seq, const Slice& property,
                        std::string* out) {
  std::string body;
  PutLengthPrefixedSlice(&body, property);
  EncodeFrame(MessageType::kStats, false, seq, body, out);
}

void EncodeScanOpenRequest(uint64_t seq, const Slice& start_key,
                           uint32_t limit, std::string* out) {
  std::string body;
  PutLengthPrefixedSlice(&body, start_key);
  PutVarint32(&body, limit);
  EncodeFrame(MessageType::kScanOpen, false, seq, body, out);
}

void EncodeScanNextRequest(uint64_t seq, uint64_t cursor_id,
                           std::string* out) {
  std::string body;
  PutFixed64(&body, cursor_id);
  EncodeFrame(MessageType::kScanNext, false, seq, body, out);
}

void EncodeScanCloseRequest(uint64_t seq, uint64_t cursor_id,
                            std::string* out) {
  std::string body;
  PutFixed64(&body, cursor_id);
  EncodeFrame(MessageType::kScanClose, false, seq, body, out);
}

void EncodeReply(MessageType type, uint64_t seq, const Status& status,
                 const Slice& payload, std::string* out) {
  std::string body;
  body.push_back(static_cast<char>(StatusToWireCode(status)));
  if (status.ok()) {
    body.append(payload.data(), payload.size());
  } else {
    PutLengthPrefixedSlice(&body, status.ToString());
  }
  EncodeFrame(type, true, seq, body, out);
}

bool ParseGetRequest(Slice body, Slice* key) {
  return GetLengthPrefixedSlice(&body, key) && body.empty();
}

bool ParsePutRequest(Slice body, Slice* key, Slice* value) {
  return GetLengthPrefixedSlice(&body, key) &&
         GetLengthPrefixedSlice(&body, value) && body.empty();
}

bool ParseDeleteRequest(Slice body, Slice* key) {
  return GetLengthPrefixedSlice(&body, key) && body.empty();
}

bool ParseWriteBatchRequest(Slice body, std::vector<BatchOp>* ops) {
  ops->clear();
  uint32_t count = 0;
  if (!GetVarint32(&body, &count)) return false;
  // Each op is at least 2 bytes (tag + empty key length); a count far
  // beyond the bytes present is malformed, not just empty-valued.
  if (count > body.size()) return false;
  ops->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    if (body.empty()) return false;
    const char tag = body[0];
    body.remove_prefix(1);
    if (tag != '\0' && tag != '\1') return false;
    BatchOp op;
    op.is_delete = (tag == '\1');
    Slice key, value;
    if (!GetLengthPrefixedSlice(&body, &key)) return false;
    op.key.assign(key.data(), key.size());
    if (!op.is_delete) {
      if (!GetLengthPrefixedSlice(&body, &value)) return false;
      op.value.assign(value.data(), value.size());
    }
    ops->push_back(std::move(op));
  }
  return body.empty();
}

bool ParseScanRequest(Slice body, Slice* start_key, uint32_t* limit) {
  return GetLengthPrefixedSlice(&body, start_key) &&
         GetVarint32(&body, limit) && body.empty();
}

bool ParseStatsRequest(Slice body, Slice* property) {
  return GetLengthPrefixedSlice(&body, property) && body.empty();
}

bool ParseScanOpenRequest(Slice body, Slice* start_key, uint32_t* limit) {
  return GetLengthPrefixedSlice(&body, start_key) &&
         GetVarint32(&body, limit) && body.empty();
}

bool ParseCursorRequest(Slice body, uint64_t* cursor_id) {
  if (body.size() != 8) return false;
  *cursor_id = DecodeFixed64(body.data());
  return true;
}

bool ParseReply(Slice body, Status* status, Slice* payload) {
  if (body.empty()) return false;
  const uint8_t code = static_cast<uint8_t>(body[0]);
  body.remove_prefix(1);
  if (code == 0) {
    *status = Status::OK();
    *payload = body;
    return true;
  }
  Slice message;
  if (!GetLengthPrefixedSlice(&body, &message) || !body.empty()) return false;
  *status = WireCodeToStatus(code, message);
  *payload = Slice();
  return true;
}

bool ParseScanPayload(Slice payload,
                      std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  uint32_t count = 0;
  if (!GetVarint32(&payload, &count)) return false;
  if (count > payload.size()) return false;
  out->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    Slice key, value;
    if (!GetLengthPrefixedSlice(&payload, &key) ||
        !GetLengthPrefixedSlice(&payload, &value)) {
      return false;
    }
    out->emplace_back(std::string(key.data(), key.size()),
                      std::string(value.data(), value.size()));
  }
  return payload.empty();
}

void EncodeScanBatchPayload(
    uint64_t cursor_id,
    const std::vector<std::pair<std::string, std::string>>& entries,
    bool done, std::string* out) {
  PutFixed64(out, cursor_id);
  PutVarint32(out, static_cast<uint32_t>(entries.size()));
  for (const auto& [key, value] : entries) {
    PutLengthPrefixedSlice(out, key);
    PutLengthPrefixedSlice(out, value);
  }
  out->push_back(done ? '\1' : '\0');
}

bool ParseScanBatchPayload(
    Slice payload, uint64_t* cursor_id,
    std::vector<std::pair<std::string, std::string>>* out, bool* done) {
  out->clear();
  if (payload.size() < 8) return false;
  *cursor_id = DecodeFixed64(payload.data());
  payload.remove_prefix(8);
  uint32_t count = 0;
  if (!GetVarint32(&payload, &count)) return false;
  if (count > payload.size()) return false;
  out->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    Slice key, value;
    if (!GetLengthPrefixedSlice(&payload, &key) ||
        !GetLengthPrefixedSlice(&payload, &value)) {
      return false;
    }
    out->emplace_back(std::string(key.data(), key.size()),
                      std::string(value.data(), value.size()));
  }
  if (payload.size() != 1) return false;
  const char flag = payload[0];
  if (flag != '\0' && flag != '\1') return false;
  *done = (flag == '\1');
  return true;
}

FrameDecoder::Result FrameDecoder::Next(DecodedFrame* out) {
  if (!error_.empty()) return Result::kError;
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t avail = buf_.size() - pos_;
  if (avail < kHeaderSize) return Result::kNeedMore;
  const char* h = buf_.data() + pos_;
  if (h[0] != kMagic0 || h[1] != kMagic1) {
    return Fail("bad magic");
  }
  if (static_cast<uint8_t>(h[2]) != kProtocolVersion) {
    return Fail("unsupported protocol version " +
                std::to_string(static_cast<uint8_t>(h[2])));
  }
  const uint32_t body_len = DecodeFixed32(h + 4);
  if (body_len > max_body_bytes_) {
    return Fail("oversized frame: " + std::to_string(body_len) + " bytes");
  }
  if (avail < kFrameOverhead + body_len) return Result::kNeedMore;
  const uint32_t expected =
      crc32c::Unmask(DecodeFixed32(h + kHeaderSize + body_len));
  const uint32_t actual = crc32c::Value(h, kHeaderSize + body_len);
  if (expected != actual) {
    return Fail("frame CRC mismatch");
  }
  out->reply = (static_cast<uint8_t>(h[3]) & kReplyBit) != 0;
  const uint8_t raw_type = static_cast<uint8_t>(h[3]) & ~kReplyBit;
  if (!IsValidRequestType(raw_type)) {
    return Fail("unknown message type " + std::to_string(raw_type));
  }
  out->type = static_cast<MessageType>(raw_type);
  out->seq = DecodeFixed64(h + 8);
  out->body.assign(h + kHeaderSize, body_len);
  pos_ += kFrameOverhead + body_len;
  return Result::kFrame;
}

uint8_t StatusToWireCode(const Status& status) {
  if (status.ok()) return 0;
  if (status.IsNotFound()) return 1;
  if (status.IsCorruption()) return 2;
  if (status.IsNotSupported()) return 3;
  if (status.IsInvalidArgument()) return 4;
  if (status.IsIOError()) return 5;
  if (status.IsBusy()) return 6;
  return 5;
}

Status WireCodeToStatus(uint8_t code, const Slice& message) {
  switch (code) {
    case 0:
      return Status::OK();
    case 1:
      return Status::NotFound(message);
    case 2:
      return Status::Corruption(message);
    case 3:
      return Status::NotSupported(message);
    case 4:
      return Status::InvalidArgument(message);
    case 5:
      return Status::IOError(message);
    case 6:
      return Status::Busy(message);
    default:
      return Status::IOError("unknown wire status code", message);
  }
}

}  // namespace pipelsm::server
