// Minimal HTTP/1.0 GET support for the admin endpoint (docs/SERVER.md
// "Admin endpoint"). This is not a web server: it accepts exactly one
// request per connection, serves it, and closes — Connection: close
// semantics regardless of what the client asked for.
//
// Hostile-input posture (the port may be reachable by anything that can
// speak TCP):
//   * the request head is capped at kMaxRequestHeadBytes; one byte past
//     it without a complete head is a hard error (431-and-close), so a
//     slowloris drip can hold one connection slot but no memory beyond
//     the cap;
//   * only the request line is parsed — headers are skipped, bodies are
//     not read (a GET has none; anything trailing the head is ignored
//     because the connection closes after the reply);
//   * the method token and path are length-checked and
//     character-checked; NUL bytes or control characters anywhere in the
//     head are an error.
#pragma once

#include <cstddef>
#include <string>

namespace pipelsm::server {

// Request head ceiling (request line + headers + blank line).
inline constexpr size_t kMaxRequestHeadBytes = 4096;
// Request-line tokens are bounded well below the head cap.
inline constexpr size_t kMaxMethodBytes = 16;
inline constexpr size_t kMaxPathBytes = 1024;

// Incremental parser for one request head. Feed whatever arrived; the
// parser retains state across calls (kNeedMore) and never buffers more
// than the head cap.
class HttpRequestParser {
 public:
  enum class Result {
    kNeedMore,  // head incomplete, keep feeding
    kComplete,  // method()/path() valid
    kError,     // malformed or over the cap — reply 400/431 and close
  };

  // Consumes `n` bytes. Once kComplete or kError is returned, further
  // calls return the same verdict (one request per connection).
  Result Feed(const char* data, size_t n);

  const std::string& method() const { return method_; }
  const std::string& path() const { return path_; }
  // 400 for malformed input, 431 when the head outgrew the cap.
  int error_status() const { return error_status_; }

 private:
  Result Finish(Result r, int error_status = 0);
  Result ParseRequestLine();

  std::string buf_;
  std::string method_;
  std::string path_;
  int error_status_ = 0;
  Result state_ = Result::kNeedMore;
};

// "HTTP/1.0 <code> <reason>" + Content-Type/Length + Connection: close.
std::string BuildHttpResponse(int status, const std::string& content_type,
                              const std::string& body);

}  // namespace pipelsm::server
