// Wire protocol for the pipelsm network service (docs/SERVER.md).
//
// Every message — request or response — travels as one length-prefixed
// binary frame:
//
//   offset  size  field
//   0       2     magic "PL"
//   2       1     protocol version (kProtocolVersion)
//   3       1     message type (MessageType; responses set kReplyBit)
//   4       4     body length, fixed32 little-endian
//   8       8     sequence number, fixed64 (echoed verbatim in the reply,
//                 so clients can pipeline many requests per connection)
//   16      len   body (per-type payload, see below)
//   16+len  4     masked CRC32C over header+body (util/crc32c, the same
//                 masked form the WAL and SSTables store)
//
// Request bodies (all strings are varint-length-prefixed slices):
//   PING         (empty)
//   GET          key
//   PUT          key value
//   DELETE       key
//   WRITE_BATCH  varint32 count, then count × { 1-byte op (0=put 1=del),
//                key [, value when op=put] }
//   SCAN         start_key, varint32 limit (0 = server default)
//   STATS        property name (empty = "pipelsm.stats")
//   SCAN_OPEN    start_key, varint32 limit (0 = unbounded): opens a
//                server-side streaming cursor over a pinned snapshot
//   SCAN_NEXT    fixed64 cursor id: next bounded batch
//   SCAN_CLOSE   fixed64 cursor id: release the cursor (idempotent)
//
// Response bodies start with a 1-byte status code (the Status code
// numbering) followed by the error message (status != 0) or the per-type
// payload (status == 0):
//   GET          value
//   SCAN         varint32 count, then count × { key, value }
//   STATS        property value
//   PING/PUT/DELETE/WRITE_BATCH   (empty)
//   SCAN_OPEN /  fixed64 cursor id, varint32 count, count × { key,
//   SCAN_NEXT    value }, 1-byte done flag (1 = exhausted; the server
//                already released the cursor)
//   SCAN_CLOSE   (empty)
//
// The decoder is incremental: feed it whatever the socket produced and it
// emits complete frames. Any malformed input — bad magic, unknown
// version, oversized length, CRC mismatch — is a hard protocol error; the
// peer is expected to drop the connection (the server does, with an EVENT
// line).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm::server {

inline constexpr char kMagic0 = 'P';
inline constexpr char kMagic1 = 'L';
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kHeaderSize = 16;
inline constexpr size_t kFrameOverhead = kHeaderSize + 4;  // + trailing CRC

// Default ceiling on one frame's body. A length field above the decoder's
// limit is a protocol error, so a garbage preamble can never make the
// server buffer gigabytes.
inline constexpr size_t kDefaultMaxBodyBytes = 4 * 1024 * 1024;

inline constexpr uint8_t kReplyBit = 0x80;

enum class MessageType : uint8_t {
  kPing = 1,
  kGet = 2,
  kPut = 3,
  kDelete = 4,
  kWriteBatch = 5,
  kScan = 6,
  kStats = 7,
  kScanOpen = 8,
  kScanNext = 9,
  kScanClose = 10,
};

// Number of message-type slots (index 0 unused) — sizes the server's
// per-type instrument arrays.
inline constexpr size_t kNumMessageTypes =
    static_cast<size_t>(MessageType::kScanClose) + 1;

const char* MessageTypeName(MessageType type);

inline bool IsValidRequestType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(MessageType::kPing) &&
         raw <= static_cast<uint8_t>(MessageType::kScanClose);
}

// One decoded update of a WRITE_BATCH request.
struct BatchOp {
  bool is_delete = false;
  std::string key;
  std::string value;
};

// ---- frame encoding ----

// Appends one complete frame (header + body + CRC) to *out. `reply` sets
// kReplyBit on the type byte.
void EncodeFrame(MessageType type, bool reply, uint64_t seq,
                 const Slice& body, std::string* out);

// Request body builders (compose with EncodeFrame via the helpers below).
void EncodePingRequest(uint64_t seq, std::string* out);
void EncodeGetRequest(uint64_t seq, const Slice& key, std::string* out);
void EncodePutRequest(uint64_t seq, const Slice& key, const Slice& value,
                      std::string* out);
void EncodeDeleteRequest(uint64_t seq, const Slice& key, std::string* out);
void EncodeWriteBatchRequest(uint64_t seq, const std::vector<BatchOp>& ops,
                             std::string* out);
void EncodeScanRequest(uint64_t seq, const Slice& start_key, uint32_t limit,
                       std::string* out);
void EncodeStatsRequest(uint64_t seq, const Slice& property, std::string* out);
void EncodeScanOpenRequest(uint64_t seq, const Slice& start_key,
                           uint32_t limit, std::string* out);
void EncodeScanNextRequest(uint64_t seq, uint64_t cursor_id,
                           std::string* out);
void EncodeScanCloseRequest(uint64_t seq, uint64_t cursor_id,
                            std::string* out);

// Response: status byte + message-or-payload. `payload` is the per-type
// success payload, already encoded by the caller (empty for acks).
void EncodeReply(MessageType type, uint64_t seq, const Status& status,
                 const Slice& payload, std::string* out);

// ---- body parsing (request side; return false on malformed body) ----

bool ParseGetRequest(Slice body, Slice* key);
bool ParsePutRequest(Slice body, Slice* key, Slice* value);
bool ParseDeleteRequest(Slice body, Slice* key);
bool ParseWriteBatchRequest(Slice body, std::vector<BatchOp>* ops);
bool ParseScanRequest(Slice body, Slice* start_key, uint32_t* limit);
bool ParseStatsRequest(Slice body, Slice* property);
bool ParseScanOpenRequest(Slice body, Slice* start_key, uint32_t* limit);
// SCAN_NEXT and SCAN_CLOSE bodies are both a bare fixed64 cursor id.
bool ParseCursorRequest(Slice body, uint64_t* cursor_id);

// ---- body parsing (client side) ----

// Splits a reply body into its Status and success payload. Returns false
// only on a malformed body (which the client treats as a protocol error).
bool ParseReply(Slice body, Status* status, Slice* payload);

// Decodes a SCAN success payload.
bool ParseScanPayload(Slice payload,
                      std::vector<std::pair<std::string, std::string>>* out);

// Encodes/decodes a SCAN_OPEN / SCAN_NEXT success payload (cursor id +
// one bounded batch + done flag).
void EncodeScanBatchPayload(
    uint64_t cursor_id,
    const std::vector<std::pair<std::string, std::string>>& entries,
    bool done, std::string* out);
bool ParseScanBatchPayload(
    Slice payload, uint64_t* cursor_id,
    std::vector<std::pair<std::string, std::string>>* out, bool* done);

// ---- incremental frame decoder ----

struct DecodedFrame {
  MessageType type = MessageType::kPing;
  bool reply = false;
  uint64_t seq = 0;
  std::string body;
};

// Buffering decoder. Append() raw socket bytes, then call Next() until it
// stops returning kFrame. After kError the decoder is poisoned: every
// further Next() returns kError and the connection must be dropped.
class FrameDecoder {
 public:
  enum class Result { kFrame, kNeedMore, kError };

  explicit FrameDecoder(size_t max_body_bytes = kDefaultMaxBodyBytes)
      : max_body_bytes_(max_body_bytes) {}

  void Append(const char* data, size_t n) { buf_.append(data, n); }

  Result Next(DecodedFrame* out);

  // Human-readable reason after kError.
  const std::string& error() const { return error_; }

  // Bytes buffered but not yet consumed (for tests / accounting).
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  Result Fail(const std::string& why) {
    if (error_.empty()) error_ = why;
    return Result::kError;
  }

  const size_t max_body_bytes_;
  std::string buf_;
  size_t pos_ = 0;
  std::string error_;
};

// Status <-> wire code mapping (code 0 = OK). Unknown codes decode to
// IOError so a version skew can't silently turn an error into success.
uint8_t StatusToWireCode(const Status& status);
Status WireCodeToStatus(uint8_t code, const Slice& message);

}  // namespace pipelsm::server
