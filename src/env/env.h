// Env: the storage-environment abstraction every on-disk structure (WAL,
// SSTable, MANIFEST) goes through.
//
// Two implementations ship with the library:
//   * PosixEnv  — real files (Env::Posix()).
//   * SimEnv    — an in-memory filesystem mounted on simulated block
//                 devices with HDD/SSD/RAID0 timing models (sim_env.h).
// The simulator is how this repo reproduces the paper's hardware matrix on
// a laptop: transfers block the calling thread for the modeled duration, so
// pipeline overlap between I/O and computation is a genuine wall-clock
// effect.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm {

// Sequential read stream (WAL recovery, table copies).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  // Read up to n bytes. Sets *result to the data read (may point into
  // scratch, which must stay alive while *result is used).
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

// Random-access read (SSTable blocks). Must be thread-safe.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
};

// Append-only write stream.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // The real-filesystem environment (process-wide singleton, never null).
  static Env* Posix();

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  // Opens for append, creating if missing.
  virtual Status NewAppendableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  // Durably persist directory metadata (file creations/renames) — on
  // POSIX, fsync of the directory fd. Crash-atomic install sequences
  // (write temp, Sync, rename, SyncDir) need this final step or the
  // rename itself may not survive power loss. Default: no-op for
  // environments whose metadata is always durable (SimEnv).
  virtual Status SyncDir(const std::string& dirname) {
    (void)dirname;
    return Status::OK();
  }

  virtual uint64_t NowMicros() = 0;
  virtual void SleepForMicroseconds(int micros) = 0;
};

// Convenience helpers.
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname,
                         bool sync = false);
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

}  // namespace pipelsm
