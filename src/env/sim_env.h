// SimEnv: an in-memory filesystem mounted on a SimDevice.
//
// File contents live in RAM (so correctness is exact and tests are
// hermetic) while every read and write additionally charges the device
// model the transfer's modeled duration. Each file is placed at a virtual
// disk extent allocated at creation time, so the HDD model sees the same
// access pattern the paper describes: sequential within a file, seeks
// between files ("the SSTables are dynamically allocated... the disk arm
// may suffer seeks", §IV-B).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/env/env.h"
#include "src/env/sim_device.h"

namespace pipelsm {

class SimEnv final : public Env {
 public:
  explicit SimEnv(DeviceProfile profile = DeviceProfile::Null());
  ~SimEnv() override;

  SimDevice* device() { return &device_; }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;

  uint64_t NowMicros() override;
  void SleepForMicroseconds(int micros) override;

  // Test hook: flip `n` bytes of `fname` starting at `offset` (corruption
  // injection for checksum-path tests).
  Status CorruptFile(const std::string& fname, uint64_t offset, size_t n);

  // Test hook: truncate `fname` to `size` bytes (torn-write injection).
  Status TruncateFile(const std::string& fname, uint64_t size);

 private:
  class FileState;
  class SimSequentialFile;
  class SimRandomAccessFile;
  class SimWritableFile;

  std::shared_ptr<FileState> FindFile(const std::string& fname);

  SimDevice device_;
  std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileState>> files_;
  uint64_t next_extent_ = 0;  // virtual disk allocation cursor
};

}  // namespace pipelsm
