#include "src/env/sim_env.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace pipelsm {

namespace {
// Virtual extents are carved from an infinite disk in fixed-size slabs; a
// file larger than one slab simply spills into the bytes after its base
// (the allocator advances far enough at creation of the next file).
constexpr uint64_t kExtentAlign = 4ull * 1024 * 1024;
}  // namespace

class SimEnv::FileState {
 public:
  explicit FileState(uint64_t extent_base) : extent_base_(extent_base) {}

  uint64_t extent_base() const { return extent_base_; }

  uint64_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return data_.size();
  }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (offset > data_.size()) {
      return Status::IOError("read past end of file");
    }
    const size_t avail = data_.size() - offset;
    const size_t len = std::min(n, avail);
    std::memcpy(scratch, data_.data() + offset, len);
    *result = Slice(scratch, len);
    return Status::OK();
  }

  void Append(const Slice& data) {
    std::lock_guard<std::mutex> lock(mu_);
    data_.append(data.data(), data.size());
  }

  void Truncate(uint64_t size) {
    std::lock_guard<std::mutex> lock(mu_);
    if (size < data_.size()) data_.resize(size);
  }

  Status Corrupt(uint64_t offset, size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    if (offset >= data_.size()) {
      return Status::InvalidArgument("corrupt offset past end of file");
    }
    const size_t len = std::min<size_t>(n, data_.size() - offset);
    for (size_t i = 0; i < len; i++) {
      data_[offset + i] = static_cast<char>(data_[offset + i] ^ 0x5a);
    }
    return Status::OK();
  }

 private:
  const uint64_t extent_base_;
  mutable std::mutex mu_;
  std::string data_;
};

class SimEnv::SimSequentialFile final : public SequentialFile {
 public:
  SimSequentialFile(std::shared_ptr<FileState> file, SimDevice* device)
      : file_(std::move(file)), device_(device) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = file_->Read(pos_, n, result, scratch);
    if (s.ok()) {
      device_->ChargeRead(file_->extent_base() + pos_, result->size());
      pos_ += result->size();
    }
    return s;
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return Status::OK();
  }

 private:
  std::shared_ptr<FileState> file_;
  SimDevice* device_;
  uint64_t pos_ = 0;
};

class SimEnv::SimRandomAccessFile final : public RandomAccessFile {
 public:
  SimRandomAccessFile(std::shared_ptr<FileState> file, SimDevice* device)
      : file_(std::move(file)), device_(device) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = file_->Read(offset, n, result, scratch);
    if (s.ok()) {
      device_->ChargeRead(file_->extent_base() + offset, result->size());
    }
    return s;
  }

 private:
  std::shared_ptr<FileState> file_;
  SimDevice* device_;
};

// Writes land in the in-memory file immediately (so readers and recovery
// see exact bytes) while the device-time charge is batched per 256 KiB —
// modeling the OS page cache + write-back that the paper's unsynced WAL
// and table writes went through. Sync() charges whatever is pending.
class SimEnv::SimWritableFile final : public WritableFile {
 public:
  SimWritableFile(std::shared_ptr<FileState> file, SimDevice* device)
      : file_(std::move(file)), device_(device) {}

  ~SimWritableFile() override { ChargePending(); }

  Status Append(const Slice& data) override {
    const uint64_t offset = file_->Size();
    file_->Append(data);
    if (pending_bytes_ == 0) {
      pending_offset_ = offset;
    }
    pending_bytes_ += data.size();
    if (pending_bytes_ >= kWriteBackChunk) {
      ChargePending();
    }
    return Status::OK();
  }

  Status Close() override {
    ChargePending();
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override {
    ChargePending();
    return Status::OK();
  }

 private:
  static constexpr uint64_t kWriteBackChunk = 256 * 1024;

  void ChargePending() {
    if (pending_bytes_ == 0) return;
    device_->ChargeWrite(file_->extent_base() + pending_offset_,
                         pending_bytes_);
    pending_offset_ = 0;
    pending_bytes_ = 0;
  }

  std::shared_ptr<FileState> file_;
  SimDevice* device_;
  uint64_t pending_offset_ = 0;
  uint64_t pending_bytes_ = 0;
};

SimEnv::SimEnv(DeviceProfile profile) : device_(std::move(profile)) {}

SimEnv::~SimEnv() = default;

std::shared_ptr<SimEnv::FileState> SimEnv::FindFile(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(fname);
  return it == files_.end() ? nullptr : it->second;
}

Status SimEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* result) {
  auto file = FindFile(fname);
  if (file == nullptr) {
    result->reset();
    return Status::NotFound(fname);
  }
  result->reset(new SimSequentialFile(std::move(file), &device_));
  return Status::OK();
}

Status SimEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* result) {
  auto file = FindFile(fname);
  if (file == nullptr) {
    result->reset();
    return Status::NotFound(fname);
  }
  result->reset(new SimRandomAccessFile(std::move(file), &device_));
  return Status::OK();
}

Status SimEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* result) {
  std::shared_ptr<FileState> file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    file = std::make_shared<FileState>(next_extent_);
    next_extent_ += kExtentAlign;
    files_[fname] = file;
  }
  result->reset(new SimWritableFile(std::move(file), &device_));
  return Status::OK();
}

Status SimEnv::NewAppendableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) {
  std::shared_ptr<FileState> file = FindFile(fname);
  if (file == nullptr) {
    return NewWritableFile(fname, result);
  }
  result->reset(new SimWritableFile(std::move(file), &device_));
  return Status::OK();
}

bool SimEnv::FileExists(const std::string& fname) {
  return FindFile(fname) != nullptr;
}

Status SimEnv::GetChildren(const std::string& dir,
                           std::vector<std::string>* result) {
  result->clear();
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, state] : files_) {
    (void)state;
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      std::string child = name.substr(prefix.size());
      // Only direct children.
      if (child.find('/') == std::string::npos) {
        result->push_back(std::move(child));
      }
    }
  }
  return Status::OK();
}

Status SimEnv::RemoveFile(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(fname) == 0) {
    return Status::NotFound(fname);
  }
  return Status::OK();
}

Status SimEnv::CreateDir(const std::string&) { return Status::OK(); }

Status SimEnv::RemoveDir(const std::string&) { return Status::OK(); }

Status SimEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  auto file = FindFile(fname);
  if (file == nullptr) {
    *size = 0;
    return Status::NotFound(fname);
  }
  *size = file->Size();
  return Status::OK();
}

Status SimEnv::RenameFile(const std::string& src, const std::string& target) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(src);
  if (it == files_.end()) {
    return Status::NotFound(src);
  }
  files_[target] = it->second;
  files_.erase(it);
  return Status::OK();
}

uint64_t SimEnv::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SimEnv::SleepForMicroseconds(int micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Status SimEnv::CorruptFile(const std::string& fname, uint64_t offset,
                           size_t n) {
  auto file = FindFile(fname);
  if (file == nullptr) return Status::NotFound(fname);
  return file->Corrupt(offset, n);
}

Status SimEnv::TruncateFile(const std::string& fname, uint64_t size) {
  auto file = FindFile(fname);
  if (file == nullptr) return Status::NotFound(fname);
  file->Truncate(size);
  return Status::OK();
}

}  // namespace pipelsm
