#include "src/env/sim_device.h"

#include <algorithm>
#include <thread>

namespace pipelsm {

DeviceProfile DeviceProfile::Hdd(int stripe_count) {
  DeviceProfile p;
  p.name = stripe_count > 1 ? "hdd-raid0x" + std::to_string(stripe_count)
                            : "hdd";
  p.read_position_us = 8500;   // avg seek + half-rotation, 7200 RPM
  p.near_position_us = 2500;   // short seek between adjacent extents
  p.write_position_us = 1200;  // absorbed by the on-disk write buffer
  p.charge_position_always = false;
  p.read_bw_bps = 120.0 * 1024 * 1024;
  p.write_bw_bps = 110.0 * 1024 * 1024;
  p.stripe_count = stripe_count;
  return p;
}

DeviceProfile DeviceProfile::Ssd(int stripe_count) {
  // Calibrated to a contemporary SATA/entry-NVMe SSD rather than the
  // paper's 2010 X25-M: the host CPU is ~3x the paper's testbed, so the
  // device is scaled equally to preserve the paper's compute:I/O ratio
  // (compute > 60% of SCP time; write slower than read). See DESIGN.md.
  DeviceProfile p;
  p.name = stripe_count > 1 ? "ssd-raid0x" + std::to_string(stripe_count)
                            : "ssd";
  p.read_position_us = 50;
  p.write_position_us = 80;  // write-after-erase overhead per command
  p.charge_position_always = true;
  p.read_bw_bps = 650.0 * 1024 * 1024;
  p.write_bw_bps = 380.0 * 1024 * 1024;
  p.stripe_count = stripe_count;
  return p;
}

DeviceProfile DeviceProfile::Null() {
  DeviceProfile p;
  p.name = "null";
  p.read_bw_bps = 0;
  p.write_bw_bps = 0;
  return p;
}

SimDevice::SimDevice(DeviceProfile profile) : profile_(std::move(profile)) {
  const int n = std::max(1, profile_.stripe_count);
  channels_.resize(n);
  const auto now = Clock::now();
  for (auto& c : channels_) {
    c.busy_until = now;
  }
}

void SimDevice::ResetStats() {
  stats_.read_ops.store(0);
  stats_.read_bytes.store(0);
  stats_.write_ops.store(0);
  stats_.write_bytes.store(0);
  stats_.busy_nanos.store(0);
}

void SimDevice::ChargeRead(uint64_t offset, uint64_t n) {
  stats_.read_ops.fetch_add(1, std::memory_order_relaxed);
  stats_.read_bytes.fetch_add(n, std::memory_order_relaxed);
  Charge(offset, n, /*is_write=*/false);
}

void SimDevice::ChargeWrite(uint64_t offset, uint64_t n) {
  stats_.write_ops.fetch_add(1, std::memory_order_relaxed);
  stats_.write_bytes.fetch_add(n, std::memory_order_relaxed);
  Charge(offset, n, /*is_write=*/true);
}

void SimDevice::Charge(uint64_t offset, uint64_t n, bool is_write) {
  if (profile_.is_null() || n == 0) return;

  const double position_us =
      is_write ? profile_.write_position_us : profile_.read_position_us;
  const double bw = is_write ? profile_.write_bw_bps : profile_.read_bw_bps;
  const int k = static_cast<int>(channels_.size());

  // Stripe the transfer: chunk i of the request lands on channel
  // ((offset / unit) + i) % k, matching RAID0 layout. Small transfers stay
  // on one channel.
  const uint64_t unit = std::max<uint64_t>(1, profile_.stripe_unit_bytes);
  const int chunks =
      static_cast<int>(std::min<uint64_t>(k, (n + unit - 1) / unit));
  const uint64_t per_chunk = n / chunks;
  const uint64_t remainder = n - per_chunk * chunks;

  Clock::time_point completion;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = Clock::now();
    completion = now;
    const uint64_t first_channel =
        (offset == kUnknownOffset) ? 0 : (offset / unit) % k;
    for (int i = 0; i < chunks; i++) {
      Channel& ch = channels_[(first_channel + i) % k];
      const uint64_t chunk_bytes = per_chunk + (i == 0 ? remainder : 0);

      double effective_position_us = position_us;
      int stream = -1;
      if (!profile_.charge_position_always && offset != kUnknownOffset) {
        uint64_t best_dist = ~0ull;
        for (int si = 0; si < kStreamsPerChannel; si++) {
          const uint64_t expected = ch.streams[si];
          if (expected == kUnknownOffset) continue;
          const uint64_t dist =
              offset > expected ? offset - expected : expected - offset;
          if (dist < best_dist) {
            best_dist = dist;
            stream = si;
          }
        }
        if (stream >= 0 && best_dist <= profile_.sequential_window_bytes) {
          effective_position_us = 0;  // some stream head is already there
        } else if (!is_write && profile_.near_position_us >= 0 &&
                   stream >= 0 &&
                   best_dist <= profile_.near_seek_distance_bytes) {
          effective_position_us = profile_.near_position_us;
        } else {
          stream = -1;  // no usable stream: full positioning + new stream
        }
      }

      if (offset != kUnknownOffset) {
        if (stream < 0) {
          stream = ch.next_victim;
          ch.next_victim = (ch.next_victim + 1) % kStreamsPerChannel;
        }
        ch.streams[stream] = offset + n;
      }

      double service_us = chunk_bytes * 1e6 / bw + effective_position_us;

      const auto start = std::max(now, ch.busy_until);
      const auto end =
          start + std::chrono::nanoseconds(
                      static_cast<int64_t>(service_us * 1000.0));
      ch.busy_until = end;
      if (end > completion) completion = end;
      stats_.busy_nanos.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count(),
          std::memory_order_relaxed);
    }
  }
  std::this_thread::sleep_until(completion);
}

}  // namespace pipelsm
