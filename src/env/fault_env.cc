#include "src/env/fault_env.h"

#include <cstring>

namespace pipelsm {

namespace {

const char* const kOpNames[] = {
    "new_sequential_file", "new_random_access_file", "new_writable_file",
    "new_appendable_file", "read",                   "append",
    "sync",                "close",                  "get_children",
    "remove_file",         "rename_file",            "sync_dir",
};
static_assert(sizeof(kOpNames) / sizeof(kOpNames[0]) ==
                  static_cast<size_t>(FaultOp::kNumOps),
              "kOpNames out of sync with FaultOp");

Status CrashedError() { return Status::IOError("simulated crash"); }

}  // namespace

const char* FaultOpName(FaultOp op) {
  return kOpNames[static_cast<size_t>(op)];
}

bool ParseFaultOp(const std::string& name, FaultOp* op) {
  for (size_t i = 0; i < static_cast<size_t>(FaultOp::kNumOps); i++) {
    if (name == kOpNames[i]) {
      *op = static_cast<FaultOp>(i);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// File wrappers
// ---------------------------------------------------------------------------

class FaultSequentialFile final : public SequentialFile {
 public:
  FaultSequentialFile(FaultInjectionEnv* env, std::string fname,
                      std::unique_ptr<SequentialFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = env_->Check(FaultOp::kRead, fname_);
    if (!s.ok()) return s;
    return base_->Read(n, result, scratch);
  }

  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<SequentialFile> base_;
};

class FaultRandomAccessFile final : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env, std::string fname,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = env_->Check(FaultOp::kRead, fname_);
    if (!s.ok()) return s;
    return base_->Read(offset, n, result, scratch);
  }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<RandomAccessFile> base_;
};

class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string fname,
                    std::unique_ptr<WritableFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    Status s = env_->Check(FaultOp::kAppend, fname_);
    if (!s.ok()) return s;
    s = base_->Append(data);
    if (s.ok()) {
      env_->OnAppend(fname_, data.size());
    }
    return s;
  }

  Status Close() override {
    Status s = env_->Check(FaultOp::kClose, fname_);
    if (!s.ok()) return s;
    return base_->Close();
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    Status s = env_->Check(FaultOp::kSync, fname_);
    if (!s.ok()) return s;
    s = base_->Sync();
    if (s.ok()) {
      env_->OnSync(fname_);
    }
    return s;
  }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<WritableFile> base_;
};

// ---------------------------------------------------------------------------
// FaultInjectionEnv
// ---------------------------------------------------------------------------

FaultInjectionEnv::FaultInjectionEnv(Env* base, uint32_t seed)
    : base_(base), rng_(seed) {}

FaultInjectionEnv::~FaultInjectionEnv() = default;

void FaultInjectionEnv::SetErrorProbability(FaultOp op, double p,
                                            Status error) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule& r = rules_[static_cast<size_t>(op)];
  r.armed = true;
  r.error = std::move(error);
  r.probability = p;
  r.countdown = 0;
  r.sticky = false;
  r.crash = false;
}

void FaultInjectionEnv::FailAfter(FaultOp op, int countdown, Status error,
                                  bool sticky) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule& r = rules_[static_cast<size_t>(op)];
  r.armed = true;
  r.error = std::move(error);
  r.probability = 0.0;
  r.countdown = countdown;
  r.sticky = sticky;
  r.crash = false;
}

void FaultInjectionEnv::CrashAfter(FaultOp op, int countdown) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule& r = rules_[static_cast<size_t>(op)];
  r.armed = true;
  r.error = CrashedError();
  r.probability = 0.0;
  r.countdown = countdown;
  r.sticky = false;
  r.crash = true;
}

void FaultInjectionEnv::SetDelayMicros(FaultOp op, int delay_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule& r = rules_[static_cast<size_t>(op)];
  r.armed = true;
  r.delay_micros = delay_micros;
}

void FaultInjectionEnv::SetPathFilter(FaultOp op, std::string substr) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[static_cast<size_t>(op)].path_substr = std::move(substr);
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Rule& r : rules_) {
    r = Rule{};
  }
}

uint64_t FaultInjectionEnv::counter(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[static_cast<size_t>(op)];
}

void FaultInjectionEnv::ClearCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.fill(0);
}

uint64_t FaultInjectionEnv::injected_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_failures_;
}

bool FaultInjectionEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultInjectionEnv::UnsyncedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, state] : files_) {
    (void)name;
    total += state.size - state.synced_size;
  }
  return total;
}

Status FaultInjectionEnv::Check(FaultOp op, const std::string& path) {
  int delay_micros = 0;
  Status result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) {
      return CrashedError();
    }
    Rule& r = rules_[static_cast<size_t>(op)];
    if (r.armed && !r.path_substr.empty() &&
        path.find(r.path_substr) == std::string::npos) {
      return Status::OK();  // filtered out: not counted, not failed
    }
    counters_[static_cast<size_t>(op)]++;
    if (!r.armed) {
      return Status::OK();
    }
    delay_micros = r.delay_micros;

    bool fire = false;
    if (r.countdown > 0) {
      if (--r.countdown == 0) {
        fire = true;
        if (r.sticky || r.crash) {
          r.countdown = -1;  // keep failing (sticky) / env is crashed anyway
        }
      }
    } else if (r.countdown == -1) {
      fire = true;  // sticky rule already triggered
    } else if (r.probability > 0.0) {
      fire = (rng_.Next() % 1000000) < r.probability * 1e6;
    }

    if (fire) {
      injected_failures_++;
      if (r.crash) {
        crashed_ = true;
      }
      result = r.error;
    }
  }
  if (delay_micros > 0) {
    base_->SleepForMicroseconds(delay_micros);
  }
  return result;
}

void FaultInjectionEnv::OnAppend(const std::string& fname, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[fname].size += n;
}

void FaultInjectionEnv::OnSync(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(fname);
  if (it != files_.end()) {
    it->second.synced_size = it->second.size;
    it->second.ever_synced = true;
  }
}

Status FaultInjectionEnv::DropUnsyncedAndReset() {
  std::map<std::string, FileState> files;
  {
    std::lock_guard<std::mutex> lock(mu_);
    files.swap(files_);
    crashed_ = false;
  }
  Status result;
  for (const auto& [fname, state] : files) {
    Status s;
    if (!state.ever_synced) {
      // Creation never made durable: the file vanishes. (A rename or an
      // explicit SyncDir would have marked it durable.)
      s = base_->RemoveFile(fname);
      if (s.IsNotFound()) s = Status::OK();
    } else if (state.synced_size < state.size) {
      // Keep only the synced prefix. Rewritten through the base env so
      // this works over any backing filesystem, not just SimEnv.
      std::string data;
      s = ReadFileToString(base_, fname, &data);
      if (s.ok()) {
        data.resize(std::min<uint64_t>(state.synced_size, data.size()));
        s = base_->RemoveFile(fname);
        if (s.ok()) {
          s = WriteStringToFile(base_, data, fname, false);
        }
      }
    }
    if (result.ok() && !s.ok()) {
      result = s;
    }
  }
  return result;
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  Status s = Check(FaultOp::kNewSequentialFile, fname);
  if (!s.ok()) return s;
  std::unique_ptr<SequentialFile> base_file;
  s = base_->NewSequentialFile(fname, &base_file);
  if (!s.ok()) return s;
  result->reset(new FaultSequentialFile(this, fname, std::move(base_file)));
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  Status s = Check(FaultOp::kNewRandomAccessFile, fname);
  if (!s.ok()) return s;
  std::unique_ptr<RandomAccessFile> base_file;
  s = base_->NewRandomAccessFile(fname, &base_file);
  if (!s.ok()) return s;
  result->reset(new FaultRandomAccessFile(this, fname, std::move(base_file)));
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  Status s = Check(FaultOp::kNewWritableFile, fname);
  if (!s.ok()) return s;
  std::unique_ptr<WritableFile> base_file;
  s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    files_[fname] = FileState{};  // fresh, empty, not yet durable
  }
  result->reset(new FaultWritableFile(this, fname, std::move(base_file)));
  return Status::OK();
}

Status FaultInjectionEnv::NewAppendableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  Status s = Check(FaultOp::kNewAppendableFile, fname);
  if (!s.ok()) return s;
  const bool existed = base_->FileExists(fname);
  uint64_t size = 0;
  if (existed) {
    base_->GetFileSize(fname, &size);
  }
  std::unique_ptr<WritableFile> base_file;
  s = base_->NewAppendableFile(fname, &base_file);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      // Pre-existing content predates our tracking epoch: treat it as
      // durable (it survived whatever came before).
      FileState st;
      st.size = size;
      st.synced_size = existed ? size : 0;
      st.ever_synced = existed;
      files_[fname] = st;
    }
  }
  result->reset(new FaultWritableFile(this, fname, std::move(base_file)));
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* result) {
  Status s = Check(FaultOp::kGetChildren, dir);
  if (!s.ok()) return s;
  return base_->GetChildren(dir, result);
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  Status s = Check(FaultOp::kRemoveFile, fname);
  if (!s.ok()) return s;
  s = base_->RemoveFile(fname);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    files_.erase(fname);
  }
  return s;
}

Status FaultInjectionEnv::CreateDir(const std::string& dirname) {
  return base_->CreateDir(dirname);
}

Status FaultInjectionEnv::RemoveDir(const std::string& dirname) {
  return base_->RemoveDir(dirname);
}

Status FaultInjectionEnv::GetFileSize(const std::string& fname,
                                      uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  Status s = Check(FaultOp::kRenameFile, src);
  if (!s.ok()) return s;
  s = base_->RenameFile(src, target);
  if (s.ok()) {
    // Journaled metadata op: durable immediately, and the bytes that were
    // synced under the old name stay synced under the new one.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(src);
    if (it != files_.end()) {
      FileState st = it->second;
      st.ever_synced = true;
      files_.erase(it);
      files_[target] = st;
    } else {
      files_.erase(target);  // untracked source: target is fully durable
    }
  }
  return s;
}

Status FaultInjectionEnv::SyncDir(const std::string& dirname) {
  Status s = Check(FaultOp::kSyncDir, dirname);
  if (!s.ok()) return s;
  s = base_->SyncDir(dirname);
  if (s.ok()) {
    // Directory entries are durable now: creations under this dir
    // survive power loss even if their data was never synced.
    std::string prefix = dirname;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, state] : files_) {
      if (name.compare(0, prefix.size(), prefix) == 0) {
        state.ever_synced = true;
      }
    }
  }
  return s;
}

uint64_t FaultInjectionEnv::NowMicros() { return base_->NowMicros(); }

void FaultInjectionEnv::SleepForMicroseconds(int micros) {
  base_->SleepForMicroseconds(micros);
}

}  // namespace pipelsm
