// SimDevice: a timed block-device model.
//
// Why this exists. The paper's evaluation ran on ten 7200 RPM HDDs (built
// into RAID0 arrays with md) and an Intel X25-M SSD. This repo reproduces
// those experiments on a single machine by charging each transfer the wall
// time the modeled device would need, computed with a discrete-event
// treatment per channel:
//
//   * a device has `stripe_count` independent channels (RAID0 members);
//   * a transfer of n bytes is striped over all channels, each chunk costs
//     positioning time (seek + rotational latency for HDDs, fixed command
//     latency for SSDs — charged only when the access is not sequential
//     with the channel's previous one for HDDs; always for SSDs) plus
//     chunk_size / bandwidth;
//   * each channel keeps a busy-until timestamp: a chunk starts at
//     max(now, busy_until) and pushes busy_until forward, so concurrent
//     requests genuinely queue per channel;
//   * the caller sleeps until the max completion time over its chunks.
//
// Because the time is spent in a real sleep while the CPU steps (checksum,
// compress, merge) burn real cycles, the I/O-vs-CPU overlap the paper
// exploits is a genuine wall-clock effect even on a 1-core host.
//
// The HDD model reflects the paper's observation that writes look faster
// than reads (the on-disk write buffer absorbs them): writes charge the
// buffered positioning cost, reads the full seek.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pipelsm {

struct DeviceProfile {
  std::string name = "null";

  // Positioning cost charged when an access is not sequential with the
  // channel's last access (HDD head movement + rotational latency), and for
  // every access on SSDs (command/translation latency).
  double read_position_us = 0;
  double write_position_us = 0;
  bool charge_position_always = false;  // SSD: latency on every command

  // Two-tier seek model: jumps shorter than near_seek_distance_bytes pay
  // near_position_us (track-to-track + rotation) instead of the full
  // positioning cost. Negative near_position_us disables the tier.
  double near_position_us = -1;
  uint64_t near_seek_distance_bytes = 64ull * 1024 * 1024;

  // Sustained transfer bandwidth, bytes per second.
  double read_bw_bps = 0;
  double write_bw_bps = 0;

  // RAID0 member count (1 = single device).
  int stripe_count = 1;
  // Stripe chunk size; transfers smaller than this stay on one channel.
  uint64_t stripe_unit_bytes = 64 * 1024;

  // Offsets within this distance of the previous access count as
  // sequential (no positioning charge on HDDs).
  uint64_t sequential_window_bytes = 512 * 1024;

  // A 7200 RPM SATA disk, per the paper's testbed: ~8.5 ms average seek +
  // rotational latency on reads; writes land in the on-disk buffer so their
  // effective positioning cost is far lower (paper §IV-B: "the write
  // request is considered completed after the data has been written into
  // the disk write buffer").
  static DeviceProfile Hdd(int stripe_count = 1);

  // An Intel X25-M-class SATA SSD: no mechanical positioning, modest
  // command latency, high read bandwidth, lower write bandwidth
  // (write-after-erase; paper §IV-B: "the step write takes more time than
  // step read ... due to the write-after-erase feature").
  static DeviceProfile Ssd(int stripe_count = 1);

  // Zero-cost device (timing disabled) for correctness-only tests.
  static DeviceProfile Null();

  bool is_null() const { return read_bw_bps <= 0 && write_bw_bps <= 0; }
};

// Cumulative transfer statistics (lock-free counters).
struct DeviceStats {
  std::atomic<uint64_t> read_ops{0};
  std::atomic<uint64_t> read_bytes{0};
  std::atomic<uint64_t> write_ops{0};
  std::atomic<uint64_t> write_bytes{0};
  std::atomic<uint64_t> busy_nanos{0};  // modeled device-busy time
};

class SimDevice {
 public:
  explicit SimDevice(DeviceProfile profile);

  SimDevice(const SimDevice&) = delete;
  SimDevice& operator=(const SimDevice&) = delete;

  // Charge a read/write of n bytes at the given device offset. Blocks the
  // calling thread for the modeled duration. Offsets let the model detect
  // sequential access; callers that do not track offsets may pass
  // kUnknownOffset to force the positioning charge.
  void ChargeRead(uint64_t offset, uint64_t n);
  void ChargeWrite(uint64_t offset, uint64_t n);

  static constexpr uint64_t kUnknownOffset = ~0ull;

  const DeviceProfile& profile() const { return profile_; }
  const DeviceStats& stats() const { return stats_; }
  void ResetStats();

 private:
  using Clock = std::chrono::steady_clock;

  // Real disk stacks keep several sequential streams cheap at once (OS
  // readahead contexts, NCQ reordering, the drive's track buffer), which
  // is what lets a pipelined compaction read and write the same disk
  // concurrently without paying a full seek per switch. Model: up to
  // kStreamsPerChannel expected-next offsets per channel; an access that
  // continues any of them is sequential.
  static constexpr int kStreamsPerChannel = 4;

  struct Channel {
    Clock::time_point busy_until;
    uint64_t streams[kStreamsPerChannel] = {kUnknownOffset, kUnknownOffset,
                                            kUnknownOffset, kUnknownOffset};
    int next_victim = 0;
  };

  void Charge(uint64_t offset, uint64_t n, bool is_write);

  const DeviceProfile profile_;
  std::mutex mu_;  // protects channels_
  std::vector<Channel> channels_;
  DeviceStats stats_;
};

}  // namespace pipelsm
