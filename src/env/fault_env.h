// FaultInjectionEnv: an Env wrapper that makes every storage error path
// testable.
//
// Three capabilities, composable (docs/FAULT_INJECTION.md):
//   1. Fault rules — any Env operation (by FaultOp kind, optionally
//      filtered to paths containing a substring) can be made to fail with
//      a chosen Status, either with a probability, after a countdown of
//      matching calls, or stickily; rules can also inject latency.
//   2. Power-loss emulation — the wrapper tracks how many bytes of each
//      writable file have been Sync()ed and which files have ever been
//      synced at all; DropUnsyncedAndReset() rewinds the wrapped
//      filesystem to the last power-safe state (unsynced tails dropped,
//      never-synced files removed). Renames and removals are modeled as
//      journaled metadata ops: durable immediately.
//   3. Crash points — a rule with crash=true flips the env into a
//      "crashed" state when it triggers: every subsequent operation fails
//      until DropUnsyncedAndReset(), emulating process death at exactly
//      that call site.
//
// Thread-safe: DB background threads hit the env concurrently.
#pragma once

#include <array>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "src/env/env.h"
#include "src/util/random.h"

namespace pipelsm {

// Operation kinds a fault rule can target.
enum class FaultOp {
  kNewSequentialFile = 0,
  kNewRandomAccessFile,
  kNewWritableFile,
  kNewAppendableFile,
  kRead,        // SequentialFile/RandomAccessFile reads
  kAppend,      // WritableFile::Append
  kSync,        // WritableFile::Sync
  kClose,       // WritableFile::Close
  kGetChildren,
  kRemoveFile,
  kRenameFile,
  kSyncDir,
  kNumOps  // sentinel
};

const char* FaultOpName(FaultOp op);

// Parses the names FaultOpName emits ("sync", "append", ...). Returns
// false for unknown names.
bool ParseFaultOp(const std::string& name, FaultOp* op);

class FaultInjectionEnv final : public Env {
 public:
  // `base` must outlive this env. `seed` drives probability rules.
  explicit FaultInjectionEnv(Env* base, uint32_t seed = 301);
  ~FaultInjectionEnv() override;

  Env* base() { return base_; }

  // ---- fault rules (one active rule per op kind) ----

  // Every matching call fails with `error` with probability p in [0,1].
  void SetErrorProbability(FaultOp op, double p,
                           Status error = Status::IOError("injected fault"));

  // The countdown-th matching call (1 = the next one) fails once with
  // `error`; if `sticky`, every matching call from then on fails too.
  void FailAfter(FaultOp op, int countdown,
                 Status error = Status::IOError("injected fault"),
                 bool sticky = false);

  // The countdown-th matching call triggers a simulated crash: it fails
  // and the env enters the crashed state (every later op fails) until
  // DropUnsyncedAndReset().
  void CrashAfter(FaultOp op, int countdown);

  // Matching calls sleep this long before executing (on top of any
  // failure rule).
  void SetDelayMicros(FaultOp op, int delay_micros);

  // Restrict the op's rule to paths containing `substr` (counters still
  // count only matching calls).
  void SetPathFilter(FaultOp op, std::string substr);

  void ClearFaults();

  // Calls observed for `op` (post path-filter) since construction or the
  // last ClearCounters().
  uint64_t counter(FaultOp op) const;
  void ClearCounters();

  // Injected failures delivered so far (all ops).
  uint64_t injected_failures() const;

  // ---- power loss / crash state ----

  bool crashed() const;

  // Rewind the wrapped filesystem to the last power-safe state: truncate
  // every tracked file to its last synced size, remove files that were
  // never synced (and not covered by a SyncDir), forget tracking state,
  // clear the crashed flag. Fault rules stay armed unless cleared.
  Status DropUnsyncedAndReset();

  // Total bytes currently appended-but-unsynced across open files.
  uint64_t UnsyncedBytes() const;

  // ---- Env interface ----
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status SyncDir(const std::string& dirname) override;
  uint64_t NowMicros() override;
  void SleepForMicroseconds(int micros) override;

 private:
  friend class FaultWritableFile;
  friend class FaultSequentialFile;
  friend class FaultRandomAccessFile;

  struct Rule {
    bool armed = false;
    Status error;
    double probability = 0.0;  // random failures
    int countdown = 0;         // >0: fail when the countdown reaches 0
    bool sticky = false;       // keep failing after the first trigger
    bool crash = false;        // trigger flips the env into crashed state
    int delay_micros = 0;
    std::string path_substr;   // empty = match every path
  };

  // Durability bookkeeping for one file created/opened through us.
  struct FileState {
    uint64_t synced_size = 0;  // bytes guaranteed to survive power loss
    uint64_t size = 0;         // current logical size
    bool ever_synced = false;  // entry survives power loss
  };

  // Counts the call, applies delay, and returns the injected error if the
  // op's rule (or the crashed state) fires. OK means "proceed to base".
  Status Check(FaultOp op, const std::string& path);

  // File write hooks (called by the wrapper file objects).
  void OnAppend(const std::string& fname, uint64_t new_size);
  void OnSync(const std::string& fname);

  Env* const base_;
  mutable std::mutex mu_;
  Random rng_;
  bool crashed_ = false;
  uint64_t injected_failures_ = 0;
  std::array<Rule, static_cast<size_t>(FaultOp::kNumOps)> rules_;
  std::array<uint64_t, static_cast<size_t>(FaultOp::kNumOps)> counters_{};
  std::map<std::string, FileState> files_;
};

}  // namespace pipelsm
