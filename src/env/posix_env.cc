// PosixEnv: the real-filesystem environment.
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "src/env/env.h"

namespace pipelsm {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) {
    return Status::NotFound(context, std::strerror(err));
  }
  return Status::IOError(context, std::strerror(err));
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ::ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, r);
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, n, SEEK_CUR) == static_cast<off_t>(-1)) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    // pread may return short on signals (and is allowed to return less
    // than n in general); accumulate until n bytes or EOF so callers can
    // treat a short *result* as end-of-file, not a transient hiccup.
    size_t done = 0;
    while (done < n) {
      ::ssize_t r = ::pread(fd_, scratch + done, n - done,
                            static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      if (r == 0) break;  // EOF
      done += static_cast<size_t>(r);
    }
    *result = Slice(scratch, done);
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) Close();
  }

  Status Append(const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ::ssize_t r = ::write(fd_, p, left);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += r;
      left -= r;
    }
    return Status::OK();
  }

  Status Close() override {
    Status s;
    if (fd_ >= 0 && ::close(fd_) < 0) {
      s = PosixError(fname_, errno);
    }
    fd_ = -1;
    return s;
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    int rc;
    do {
      rc = ::fdatasync(fd_);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  const std::string fname_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    result->reset(new PosixSequentialFile(fname, fd));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    result->reset(new PosixRandomAccessFile(fname, fd));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    result->reset(new PosixWritableFile(fname, fd));
    return Status::OK();
  }

  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                    0644);
    if (fd < 0) {
      result->reset();
      return PosixError(fname, errno);
    }
    result->reset(new PosixWritableFile(fname, fd));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    ::DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return PosixError(dir, errno);
    }
    struct ::dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") {
        result->push_back(std::move(name));
      }
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) {
      return PosixError(fname, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (::rmdir(dirname.c_str()) != 0) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct ::stat st;
    if (::stat(fname.c_str(), &st) != 0) {
      *size = 0;
      return PosixError(fname, errno);
    }
    *size = st.st_size;
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dirname) override {
    int fd = ::open(dirname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return PosixError(dirname, errno);
    }
    Status s;
    int rc;
    do {
      rc = ::fsync(fd);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      s = PosixError(dirname, errno);
    }
    ::close(fd);
    return s;
  }

  uint64_t NowMicros() override {
    struct ::timeval tv;
    ::gettimeofday(&tv, nullptr);
    return static_cast<uint64_t>(tv.tv_sec) * 1000000 + tv.tv_usec;
  }

  void SleepForMicroseconds(int micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv env;
  return &env;
}

}  // namespace pipelsm
