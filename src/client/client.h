// Pipelined client for the pipelsm server (wire format in
// src/server/protocol.h, semantics in docs/SERVER.md).
//
// Each pooled connection keeps ONE TCP stream busy with many requests in
// flight: senders frame-and-send under a small lock, a per-connection
// reader thread matches replies to callers by sequence number. The
// in-flight window is bounded (backpressure mirrors the server's), so a
// burst of async calls blocks in Submit instead of buffering unboundedly.
//
// Two call styles over the same engine:
//   * sync  — Put/Get/... block for the reply (with per-request timeout);
//   * async — AsyncPut/... return std::future<Result> immediately, letting
//     one thread keep the pipeline full (this is what bench_server uses).
//
// Connections are established lazily and re-established on next use after
// an error; in-flight requests on a broken connection fail with IOError.
// Thread-safe: any number of threads may share one Client.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/server/protocol.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm::client {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 7380;

  // Pooled TCP connections; requests round-robin across them.
  int num_connections = 1;

  // Per-request reply deadline for the sync API and for future waits done
  // through Client::Wait. 0 = wait forever.
  uint64_t request_timeout_micros = 10 * 1000 * 1000;

  // Max unanswered requests per connection; Submit blocks above this.
  size_t max_inflight_per_connection = 128;

  // Frame ceiling for replies (must be >= the server's).
  size_t max_body_bytes = server::kDefaultMaxBodyBytes;

  // Send coalescing for the async API. 0 (default) sends every frame
  // immediately. When > 0, async submissions are buffered per connection
  // and written out once the buffer reaches this many bytes, a sync call
  // lands on the pool, or Flush() is called. Callers that enable this
  // MUST Flush() before blocking on a future, or the buffered requests
  // may never reach the server. Sync calls always flush, so they are
  // safe either way.
  size_t pipeline_buffer_bytes = 0;

  // How many consecutive submissions share one pooled connection before
  // round-robin advances. > 1 concentrates bursts so coalesced sends
  // (both this buffer and the server's batched replies) carry more
  // frames per syscall. 1 = classic per-request round-robin.
  size_t connection_stride = 1;

  // Shard affinity against a sharded server (docs/SHARDING.md): the
  // server's boundary keys, sorted ascending. When non-empty, the pool
  // is partitioned into boundaries.size() + 1 groups (connection i
  // serves shard i % groups) and every KEYED request (put/delete/get)
  // rides a connection of its key's group — so each server commit
  // thread's group-commit window fills from dedicated sockets instead
  // of interleaving all shards over all sockets. Keyless requests
  // (ping/scan/stats/batch) still round-robin over the whole pool.
  // Size num_connections as a multiple of the shard count.
  std::vector<std::string> shard_affinity_boundaries;
};

// Outcome of one request. `value` holds GET/STATS payloads; `entries`
// holds SCAN / cursor-batch results; `cursor_id`/`done` are set on
// SCAN_OPEN / SCAN_NEXT replies.
struct Result {
  Status status;
  std::string value;
  std::vector<std::pair<std::string, std::string>> entries;
  uint64_t cursor_id = 0;
  bool done = false;
};

class ScanStream;

class Client {
 public:
  explicit Client(const ClientOptions& options);
  ~Client();  // fails outstanding futures, joins reader threads

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- sync API (async + bounded wait) ----
  Status Ping();
  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Status WriteBatch(const std::vector<server::BatchOp>& ops);
  Status Get(const Slice& key, std::string* value);
  Status Scan(const Slice& start_key, uint32_t limit,
              std::vector<std::pair<std::string, std::string>>* entries);
  Status Stats(const Slice& property, std::string* value);

  // ---- streaming scan (server-side cursor; docs/READ_PATH.md) ----
  // One bounded batch from a server cursor. `done` means the server
  // exhausted the scan (or hit the limit) and already released the
  // cursor — no SCAN_CLOSE needed.
  struct CursorBatch {
    uint64_t cursor_id = 0;
    bool done = false;
    std::vector<std::pair<std::string, std::string>> entries;
  };

  // Low-level, one frame per call. Every op for a cursor rides the
  // connection that opened it (the server drops a cursor when its
  // opening connection dies); the client tracks that internally, so
  // callers just pass the id around. limit 0 = scan to the end.
  Status ScanOpen(const Slice& start_key, uint32_t limit, CursorBatch* batch);
  Status ScanNext(uint64_t cursor_id, CursorBatch* batch);
  Status ScanClose(uint64_t cursor_id);  // idempotent

  // Pipelined iteration: opens a cursor and keeps ONE prefetched batch
  // in flight, so the server builds batch N+1 while the caller consumes
  // batch N. Must not outlive the client. Not thread-safe (one thread
  // per stream; other threads may still use the client).
  std::unique_ptr<ScanStream> NewScanStream(const Slice& start_key,
                                            uint32_t limit);

  // ---- async API ----
  std::future<Result> AsyncPing();
  std::future<Result> AsyncPut(const Slice& key, const Slice& value);
  std::future<Result> AsyncDelete(const Slice& key);
  std::future<Result> AsyncWriteBatch(const std::vector<server::BatchOp>& ops);
  std::future<Result> AsyncGet(const Slice& key);
  std::future<Result> AsyncScan(const Slice& start_key, uint32_t limit);
  std::future<Result> AsyncStats(const Slice& property);

  // Waits for `future` within the configured request timeout; a timeout
  // yields Status::Busy without invalidating the future.
  Result Wait(std::future<Result>& future);

  // Writes out any requests held back by pipeline_buffer_bytes. Required
  // before blocking on async futures when buffering is enabled; a no-op
  // otherwise. Send failures surface through the affected futures.
  void Flush();

 private:
  friend class ScanStream;

  struct Connection;

  // Allocates a sequence number, frames `body` onto a pooled connection
  // and registers a pending slot; the reader thread completes the future.
  // The frame goes out immediately unless pipeline_buffer_bytes holds it
  // back for coalescing. `key` (nullable) steers the connection choice
  // under shard_affinity_boundaries; it does not change the wire format.
  // `pinned` (nullable) bypasses PickConnection entirely — cursor ops
  // must stick to the connection that opened the cursor.
  std::future<Result> Submit(server::MessageType type, const std::string& body,
                             const Slice* key = nullptr,
                             Connection* pinned = nullptr);
  // Flush() + Wait(): the sync API lands here so buffered frames always
  // reach the wire before the caller blocks.
  Result SyncWait(std::future<Result> future);
  std::future<Result> FailedFuture(const Status& status);
  Connection* PickConnection(const Slice* key);
  Status EnsureConnected(Connection& conn);
  void ReaderLoop(Connection* conn);
  static void FailAllPending(Connection& conn, const Status& status);

  const ClientOptions options_;
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<size_t> next_conn_{0};
  std::vector<std::unique_ptr<Connection>> pool_;

  // cursor id -> the pooled connection that opened it (raw pointers into
  // pool_, which outlives every cursor). Entries retire on done / close
  // / error.
  std::mutex cursor_conns_mu_;
  std::unordered_map<uint64_t, Connection*> cursor_conns_;
};

// Streaming scan handle (Client::NewScanStream). Usage mirrors a DB
// iterator:
//
//   auto stream = client.NewScanStream("user.", 0);
//   for (; stream->Valid(); stream->Next()) use(stream->key(), ...);
//   Status s = stream->status();   // OK on clean end-of-scan
//
// The destructor closes the server cursor if the scan was abandoned
// mid-stream.
class ScanStream {
 public:
  ~ScanStream();

  ScanStream(const ScanStream&) = delete;
  ScanStream& operator=(const ScanStream&) = delete;

  bool Valid() const { return status_.ok() && pos_ < batch_.size(); }
  const std::string& key() const { return batch_[pos_].first; }
  const std::string& value() const { return batch_[pos_].second; }
  void Next();

  // OK while streaming and after a clean end; the first transport or
  // server error sticks (and invalidates the stream).
  const Status& status() const { return status_; }

  // Early teardown (idempotent; the destructor calls it). Returns the
  // SCAN_CLOSE outcome, OK if the server already released the cursor.
  Status Close();

 private:
  friend class Client;
  ScanStream(Client* client, const Slice& start_key, uint32_t limit);

  // Issues the next SCAN_NEXT if the server still holds the cursor and
  // nothing is in flight.
  void MaybePrefetch();

  Client* const client_;
  Client::Connection* conn_ = nullptr;
  uint64_t cursor_id_ = 0;
  Status status_;
  bool done_ = false;    // server released the cursor
  bool closed_ = false;  // Close() ran
  std::vector<std::pair<std::string, std::string>> batch_;
  size_t pos_ = 0;
  std::future<Result> prefetch_;
  bool prefetch_active_ = false;
};

}  // namespace pipelsm::client
