#include "src/client/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/util/coding.h"

namespace pipelsm::client {

using server::DecodedFrame;
using server::FrameDecoder;
using server::MessageType;

struct Client::Connection {
  std::mutex mu;  // guards fd, pending, reader bookkeeping
  // Serializes frame bytes onto the socket. Never held together with mu
  // except in the order mu -> send_mu; the fd is only closed while both
  // are held, so a sender holding send_mu alone can trust its fd.
  std::mutex send_mu;
  std::condition_variable window_cv;
  int fd = -1;
  bool broken = false;  // reconnect on next use
  std::atomic<uint64_t> generation{0};
  std::unordered_map<uint64_t, std::promise<Result>> pending;
  std::thread reader;

  // Guarded by send_mu: duplicate fd/generation so Flush() can operate
  // without mu, plus frames held back for coalescing. The buffer is
  // cleared whenever the fd changes (close and connect both hold
  // send_mu), so buffered bytes always belong to the current socket.
  int send_fd = -1;
  uint64_t send_generation = 0;
  std::string sendbuf;
};

namespace {

Status SysError(const char* context) {
  return Status::IOError(context, std::strerror(errno));
}

// Writes the whole buffer, retrying EINTR and partial sends. The socket is
// blocking, so "short" writes only happen on signals.
Status SendAll(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (w > 0) {
      done += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return SysError("send");
  }
  return Status::OK();
}

}  // namespace

Client::Client(const ClientOptions& options) : options_(options) {
  const int n = options_.num_connections > 0 ? options_.num_connections : 1;
  for (int i = 0; i < n; i++) {
    pool_.push_back(std::make_unique<Connection>());
  }
}

Client::~Client() {
  for (auto& conn : pool_) {
    std::thread reader;
    {
      std::lock_guard<std::mutex> l(conn->mu);
      if (conn->fd >= 0) {
        ::shutdown(conn->fd, SHUT_RDWR);  // unblocks the reader's recv
      }
      reader = std::move(conn->reader);
    }
    if (reader.joinable()) reader.join();
    std::lock_guard<std::mutex> l(conn->mu);
    if (conn->fd >= 0) {
      std::lock_guard<std::mutex> sl(conn->send_mu);
      ::close(conn->fd);
      conn->fd = -1;
      conn->send_fd = -1;
      conn->sendbuf.clear();
    }
    FailAllPending(*conn, Status::IOError("client destroyed"));
  }
}

void Client::FailAllPending(Connection& conn, const Status& status) {
  // REQUIRES: conn.mu held.
  for (auto& [seq, promise] : conn.pending) {
    Result r;
    r.status = status;
    promise.set_value(std::move(r));
  }
  conn.pending.clear();
  conn.window_cv.notify_all();
}

Client::Connection* Client::PickConnection(const Slice* key) {
  const size_t stride =
      options_.connection_stride > 0 ? options_.connection_stride : 1;
  const auto& bounds = options_.shard_affinity_boundaries;
  if (key != nullptr && !bounds.empty()) {
    // Keyed + affinity: stay inside the key's shard group. Group g owns
    // pool slots g, g+groups, g+2*groups, ... (interleaved so any pool
    // size works); round-robin within the group by the global ticket.
    const size_t groups = bounds.size() + 1;
    const size_t shard = static_cast<size_t>(
        std::upper_bound(bounds.begin(), bounds.end(), *key,
                         [](const Slice& a, const std::string& b) {
                           return a.compare(Slice(b)) < 0;
                         }) -
        bounds.begin());
    // Slots this group owns; with fewer connections than shards some
    // groups are empty and fall back to a modulo pick.
    const size_t slots =
        pool_.size() / groups + (shard < pool_.size() % groups ? 1 : 0);
    if (slots == 0) return pool_[shard % pool_.size()].get();
    const size_t t = next_conn_.fetch_add(1, std::memory_order_relaxed);
    const size_t within = (t / stride) % slots;
    return pool_[shard + within * groups].get();
  }
  const size_t t = next_conn_.fetch_add(1, std::memory_order_relaxed);
  return pool_[(t / stride) % pool_.size()].get();
}

Status Client::EnsureConnected(Connection& conn) {
  // REQUIRES: conn.mu held.
  if (conn.fd >= 0 && !conn.broken) return Status::OK();
  if (conn.fd >= 0) {
    // Broken: the reader already exited (or will, on seeing the closed
    // fd). Reap it before starting a fresh one.
    ::shutdown(conn.fd, SHUT_RDWR);
    std::thread reader = std::move(conn.reader);
    if (reader.joinable()) {
      conn.mu.unlock();
      reader.join();
      conn.mu.lock();
    }
    {
      std::lock_guard<std::mutex> sl(conn.send_mu);
      ::close(conn.fd);
      conn.fd = -1;
      conn.send_fd = -1;
      conn.sendbuf.clear();
    }
    FailAllPending(conn, Status::IOError("connection reset"));
  }
  conn.broken = false;

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return SysError("socket");
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host", options_.host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status s = SysError("connect");
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  conn.fd = fd;
  const uint64_t gen =
      conn.generation.fetch_add(1, std::memory_order_release) + 1;
  {
    std::lock_guard<std::mutex> sl(conn.send_mu);
    conn.send_fd = fd;
    conn.send_generation = gen;
    conn.sendbuf.clear();
  }
  conn.reader = std::thread([this, c = &conn] { ReaderLoop(c); });
  return Status::OK();
}

void Client::ReaderLoop(Connection* conn) {
  int fd;
  uint64_t generation;
  {
    std::lock_guard<std::mutex> l(conn->mu);
    fd = conn->fd;
    generation = conn->generation.load(std::memory_order_acquire);
  }
  FrameDecoder decoder(options_.max_body_bytes);
  char buf[64 * 1024];
  Status exit_status = Status::IOError("connection closed");
  while (true) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    decoder.Append(buf, static_cast<size_t>(r));
    DecodedFrame frame;
    bool fatal = false;
    while (true) {
      const FrameDecoder::Result res = decoder.Next(&frame);
      if (res == FrameDecoder::Result::kNeedMore) break;
      if (res == FrameDecoder::Result::kError) {
        exit_status = Status::Corruption("protocol error", decoder.error());
        fatal = true;
        break;
      }
      Result result;
      Slice payload;
      if (!frame.reply ||
          !server::ParseReply(Slice(frame.body), &result.status, &payload)) {
        exit_status = Status::Corruption("malformed reply");
        fatal = true;
        break;
      }
      if (result.status.ok()) {
        if (frame.type == MessageType::kScan) {
          if (!server::ParseScanPayload(payload, &result.entries)) {
            result.status = Status::Corruption("malformed scan payload");
          }
        } else if (frame.type == MessageType::kScanOpen ||
                   frame.type == MessageType::kScanNext) {
          if (!server::ParseScanBatchPayload(payload, &result.cursor_id,
                                             &result.entries, &result.done)) {
            result.status = Status::Corruption("malformed cursor payload");
          }
        } else {
          result.value.assign(payload.data(), payload.size());
        }
      }
      std::promise<Result> promise;
      bool found = false;
      {
        std::lock_guard<std::mutex> l(conn->mu);
        auto it = conn->pending.find(frame.seq);
        if (it != conn->pending.end()) {
          promise = std::move(it->second);
          conn->pending.erase(it);
          found = true;
          conn->window_cv.notify_one();
        }
      }
      if (found) promise.set_value(std::move(result));
    }
    if (fatal) break;
  }
  std::lock_guard<std::mutex> l(conn->mu);
  if (conn->generation.load(std::memory_order_acquire) == generation) {
    conn->broken = true;
    FailAllPending(*conn, exit_status);
  }
}

std::future<Result> Client::FailedFuture(const Status& status) {
  std::promise<Result> promise;
  Result r;
  r.status = status;
  promise.set_value(std::move(r));
  return promise.get_future();
}

std::future<Result> Client::Submit(MessageType type, const std::string& body,
                                   const Slice* key, Connection* pinned) {
  Connection& conn = pinned != nullptr ? *pinned : *PickConnection(key);
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  std::string wire;
  server::EncodeFrame(type, false, seq, body, &wire);

  int fd;
  uint64_t generation;
  std::future<Result> future;
  {
    std::unique_lock<std::mutex> lock(conn.mu);
    const Status cs = EnsureConnected(conn);
    if (!cs.ok()) return FailedFuture(cs);
    // Bounded in-flight window: block until the reader drains some
    // replies (or the connection dies under us).
    conn.window_cv.wait(lock, [&] {
      return conn.broken ||
             conn.pending.size() < options_.max_inflight_per_connection;
    });
    if (conn.broken) return FailedFuture(Status::IOError("connection reset"));
    fd = conn.fd;
    generation = conn.generation.load(std::memory_order_acquire);
    std::promise<Result> promise;
    future = promise.get_future();
    conn.pending.emplace(seq, std::move(promise));
  }

  // Send outside conn.mu so the reader keeps draining replies while we
  // block in send() — otherwise a full socket buffer deadlocks the pair.
  Status ws;
  {
    std::lock_guard<std::mutex> sl(conn.send_mu);
    if (conn.generation.load(std::memory_order_acquire) != generation) {
      ws = Status::IOError("connection reset");  // reconnected under us
    } else {
      conn.sendbuf.append(wire);
      if (conn.sendbuf.size() >= options_.pipeline_buffer_bytes) {
        ws = SendAll(fd, conn.sendbuf.data(), conn.sendbuf.size());
        conn.sendbuf.clear();
      }
    }
  }
  if (!ws.ok()) {
    std::lock_guard<std::mutex> lock(conn.mu);
    if (conn.generation.load(std::memory_order_acquire) == generation) {
      conn.pending.erase(seq);
      conn.broken = true;
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
      conn.window_cv.notify_all();
    }
    return FailedFuture(ws);
  }
  return future;
}

void Client::Flush() {
  for (auto& c : pool_) {
    Status ws;
    uint64_t generation = 0;
    {
      std::lock_guard<std::mutex> sl(c->send_mu);
      if (c->send_fd < 0 || c->sendbuf.empty()) continue;
      generation = c->send_generation;
      ws = SendAll(c->send_fd, c->sendbuf.data(), c->sendbuf.size());
      c->sendbuf.clear();
    }
    if (!ws.ok()) {
      std::lock_guard<std::mutex> l(c->mu);
      if (c->generation.load(std::memory_order_acquire) == generation &&
          !c->broken) {
        c->broken = true;
        if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
        c->window_cv.notify_all();
      }
    }
  }
}

Result Client::SyncWait(std::future<Result> future) {
  Flush();
  return Wait(future);
}

Result Client::Wait(std::future<Result>& future) {
  if (options_.request_timeout_micros > 0) {
    const auto deadline = std::chrono::microseconds(
        options_.request_timeout_micros);
    if (future.wait_for(deadline) != std::future_status::ready) {
      Result r;
      r.status = Status::Busy("request timed out");
      return r;
    }
  }
  return future.get();
}

// ---- async entry points ----

std::future<Result> Client::AsyncPing() {
  return Submit(MessageType::kPing, std::string());
}

std::future<Result> Client::AsyncPut(const Slice& key, const Slice& value) {
  std::string body;
  PutLengthPrefixedSlice(&body, key);
  PutLengthPrefixedSlice(&body, value);
  return Submit(MessageType::kPut, body, &key);
}

std::future<Result> Client::AsyncDelete(const Slice& key) {
  std::string body;
  PutLengthPrefixedSlice(&body, key);
  return Submit(MessageType::kDelete, body, &key);
}

std::future<Result> Client::AsyncWriteBatch(
    const std::vector<server::BatchOp>& ops) {
  std::string body;
  PutVarint32(&body, static_cast<uint32_t>(ops.size()));
  for (const server::BatchOp& op : ops) {
    body.push_back(op.is_delete ? '\1' : '\0');
    PutLengthPrefixedSlice(&body, op.key);
    if (!op.is_delete) PutLengthPrefixedSlice(&body, op.value);
  }
  return Submit(MessageType::kWriteBatch, body);
}

std::future<Result> Client::AsyncGet(const Slice& key) {
  std::string body;
  PutLengthPrefixedSlice(&body, key);
  return Submit(MessageType::kGet, body, &key);
}

std::future<Result> Client::AsyncScan(const Slice& start_key, uint32_t limit) {
  std::string body;
  PutLengthPrefixedSlice(&body, start_key);
  PutVarint32(&body, limit);
  return Submit(MessageType::kScan, body);
}

std::future<Result> Client::AsyncStats(const Slice& property) {
  std::string body;
  PutLengthPrefixedSlice(&body, property);
  return Submit(MessageType::kStats, body);
}

// ---- sync wrappers ----

Status Client::Ping() { return SyncWait(AsyncPing()).status; }

Status Client::Put(const Slice& key, const Slice& value) {
  return SyncWait(AsyncPut(key, value)).status;
}

Status Client::Delete(const Slice& key) {
  return SyncWait(AsyncDelete(key)).status;
}

Status Client::WriteBatch(const std::vector<server::BatchOp>& ops) {
  return SyncWait(AsyncWriteBatch(ops)).status;
}

Status Client::Get(const Slice& key, std::string* value) {
  Result r = SyncWait(AsyncGet(key));
  if (r.status.ok()) *value = std::move(r.value);
  return r.status;
}

Status Client::Scan(const Slice& start_key, uint32_t limit,
                    std::vector<std::pair<std::string, std::string>>* entries) {
  Result r = SyncWait(AsyncScan(start_key, limit));
  if (r.status.ok()) *entries = std::move(r.entries);
  return r.status;
}

Status Client::Stats(const Slice& property, std::string* value) {
  Result r = SyncWait(AsyncStats(property));
  if (r.status.ok()) *value = std::move(r.value);
  return r.status;
}

// ---- streaming scan cursors ----

Status Client::ScanOpen(const Slice& start_key, uint32_t limit,
                        CursorBatch* batch) {
  std::string body;
  PutLengthPrefixedSlice(&body, start_key);
  PutVarint32(&body, limit);
  Connection* conn = PickConnection(nullptr);
  Result r = SyncWait(Submit(MessageType::kScanOpen, body, nullptr, conn));
  if (!r.status.ok()) return r.status;
  batch->cursor_id = r.cursor_id;
  batch->done = r.done;
  batch->entries = std::move(r.entries);
  if (!r.done) {
    std::lock_guard<std::mutex> l(cursor_conns_mu_);
    cursor_conns_[r.cursor_id] = conn;
  }
  return r.status;
}

Status Client::ScanNext(uint64_t cursor_id, CursorBatch* batch) {
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> l(cursor_conns_mu_);
    auto it = cursor_conns_.find(cursor_id);
    if (it != cursor_conns_.end()) conn = it->second;
  }
  std::string body;
  PutFixed64(&body, cursor_id);
  Result r = SyncWait(Submit(MessageType::kScanNext, body, nullptr, conn));
  if (r.status.ok()) {
    batch->cursor_id = cursor_id;
    batch->done = r.done;
    batch->entries = std::move(r.entries);
  }
  if (!r.status.ok() || r.done) {
    std::lock_guard<std::mutex> l(cursor_conns_mu_);
    cursor_conns_.erase(cursor_id);
  }
  return r.status;
}

Status Client::ScanClose(uint64_t cursor_id) {
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> l(cursor_conns_mu_);
    auto it = cursor_conns_.find(cursor_id);
    if (it != cursor_conns_.end()) {
      conn = it->second;
      cursor_conns_.erase(it);
    }
  }
  std::string body;
  PutFixed64(&body, cursor_id);
  return SyncWait(Submit(MessageType::kScanClose, body, nullptr, conn)).status;
}

std::unique_ptr<ScanStream> Client::NewScanStream(const Slice& start_key,
                                                  uint32_t limit) {
  return std::unique_ptr<ScanStream>(new ScanStream(this, start_key, limit));
}

ScanStream::ScanStream(Client* client, const Slice& start_key, uint32_t limit)
    : client_(client) {
  conn_ = client_->PickConnection(nullptr);
  std::string body;
  PutLengthPrefixedSlice(&body, start_key);
  PutVarint32(&body, limit);
  Result r = client_->SyncWait(
      client_->Submit(MessageType::kScanOpen, body, nullptr, conn_));
  status_ = r.status;
  if (!status_.ok()) {
    done_ = true;
    return;
  }
  cursor_id_ = r.cursor_id;
  done_ = r.done;
  batch_ = std::move(r.entries);
  MaybePrefetch();
}

ScanStream::~ScanStream() { Close(); }

void ScanStream::MaybePrefetch() {
  if (done_ || prefetch_active_ || !status_.ok()) return;
  std::string body;
  PutFixed64(&body, cursor_id_);
  prefetch_ = client_->Submit(MessageType::kScanNext, body, nullptr, conn_);
  // The request must actually reach the wire NOW — with send coalescing
  // on, an unflushed prefetch would deadlock the consumer against its
  // own buffer.
  client_->Flush();
  prefetch_active_ = true;
}

void ScanStream::Next() {
  if (pos_ < batch_.size()) pos_++;
  while (pos_ >= batch_.size() && !done_ && status_.ok()) {
    if (!prefetch_active_) MaybePrefetch();
    Result r = client_->Wait(prefetch_);
    prefetch_active_ = false;
    status_ = r.status;
    if (!status_.ok()) return;
    done_ = r.done;
    batch_ = std::move(r.entries);
    pos_ = 0;
    MaybePrefetch();
  }
}

Status ScanStream::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (prefetch_active_) {
    // Absorb the in-flight batch; it may carry the done flag that tells
    // us the server already dropped the cursor.
    Result r = client_->Wait(prefetch_);
    prefetch_active_ = false;
    if (r.status.ok()) done_ = r.done;
  }
  if (done_ || cursor_id_ == 0) return Status::OK();
  std::string body;
  PutFixed64(&body, cursor_id_);
  return client_
      ->SyncWait(client_->Submit(MessageType::kScanClose, body, nullptr, conn_))
      .status;
}

}  // namespace pipelsm::client
