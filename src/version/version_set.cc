#include "src/version/version_set.h"

#include <algorithm>
#include <cstdio>

#include "src/compaction/picker.h"
#include "src/db/filename.h"
#include "src/env/env.h"
#include "src/table/merger.h"
#include "src/table/two_level_iterator.h"
#include "src/util/coding.h"
#include "src/util/logging.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace pipelsm {

static int64_t TotalFileSize(const std::vector<FileMetaData*>& files) {
  int64_t sum = 0;
  for (const FileMetaData* f : files) {
    sum += f->file_size;
  }
  return sum;
}

double VersionSet::MaxBytesForLevel(int level) const {
  // Result for both level-0 and level-1: 10 MB by default (level-0 is
  // special-cased by file count anyway).
  double result = 10. * 1048576.0;
  while (level > 1) {
    result *= options_->level_size_multiplier;
    level--;
  }
  return result;
}

uint64_t VersionSet::MaxFileSizeForLevel(int) const {
  // We could vary per level to reduce number of files?
  return options_->max_file_size;
}

// Maximum bytes of overlaps in grandparent (i.e., level+2) before we stop
// building a single output file in a level->level+1 compaction.
static int64_t MaxGrandParentOverlapBytes(const Options* options) {
  return 10 * static_cast<int64_t>(options->max_file_size);
}

// Maximum number of bytes in all compacted files. We avoid expanding the
// lower level file set of a compaction if it would make the total
// compaction cover more than this many bytes.
static int64_t ExpandedCompactionByteSizeLimit(const Options* options) {
  return 25 * static_cast<int64_t>(options->max_file_size);
}

Version::~Version() {
  assert(refs_ == 0);

  // Remove from linked list.
  prev_->next_ = next_;
  next_->prev_ = prev_;

  // Drop references to files.
  for (int level = 0; level < config::kNumLevels; level++) {
    for (FileMetaData* f : files_[level]) {
      assert(f->refs > 0);
      f->refs--;
      if (f->refs <= 0) {
        delete f;
      }
    }
  }
}

int FindFile(const InternalKeyComparator& icmp,
             const std::vector<FileMetaData*>& files, const Slice& key) {
  uint32_t left = 0;
  uint32_t right = static_cast<uint32_t>(files.size());
  while (left < right) {
    uint32_t mid = (left + right) / 2;
    const FileMetaData* f = files[mid];
    if (icmp.Compare(f->largest.Encode(), key) < 0) {
      // Key at "mid.largest" is < "target". Therefore all files at or
      // before "mid" are uninteresting.
      left = mid + 1;
    } else {
      // Key at "mid.largest" is >= "target". Therefore all files after
      // "mid" are uninteresting.
      right = mid;
    }
  }
  return right;
}

static bool AfterFile(const Comparator* ucmp, const Slice* user_key,
                      const FileMetaData* f) {
  // null user_key occurs before all keys and is therefore never after *f.
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->largest.user_key()) > 0);
}

static bool BeforeFile(const Comparator* ucmp, const Slice* user_key,
                       const FileMetaData* f) {
  // null user_key occurs after all keys and is therefore never before *f.
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->smallest.user_key()) < 0);
}

bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<FileMetaData*>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key) {
  const Comparator* ucmp = icmp.user_comparator();
  if (!disjoint_sorted_files) {
    // Need to check against all files.
    for (const FileMetaData* f : files) {
      if (AfterFile(ucmp, smallest_user_key, f) ||
          BeforeFile(ucmp, largest_user_key, f)) {
        // No overlap.
      } else {
        return true;
      }
    }
    return false;
  }

  // Binary search over file list.
  uint32_t index = 0;
  if (smallest_user_key != nullptr) {
    // Find the earliest possible internal key for smallest_user_key.
    InternalKey small_key(*smallest_user_key, kMaxSequenceNumber,
                          kValueTypeForSeek);
    index = FindFile(icmp, files, small_key.Encode());
  }

  if (index >= files.size()) {
    // Beyond end of all files.
    return false;
  }

  return !BeforeFile(ucmp, largest_user_key, files[index]);
}

// An internal iterator. For a given version/level pair, yields information
// about the files in the level. For a given entry, key() is the largest
// key that occurs in the file, and value() is a 16-byte value containing
// the file number and file size, both encoded using EncodeFixed64.
class Version::LevelFileNumIterator final : public Iterator {
 public:
  LevelFileNumIterator(const InternalKeyComparator& icmp,
                       const std::vector<FileMetaData*>* flist)
      : icmp_(icmp), flist_(flist), index_(flist->size()) {  // Marks as invalid
  }
  bool Valid() const override { return index_ < flist_->size(); }
  void Seek(const Slice& target) override {
    index_ = FindFile(icmp_, *flist_, target);
  }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override {
    index_ = flist_->empty() ? 0 : flist_->size() - 1;
  }
  void Next() override {
    assert(Valid());
    index_++;
  }
  void Prev() override {
    assert(Valid());
    if (index_ == 0) {
      index_ = flist_->size();  // Marks as invalid
    } else {
      index_--;
    }
  }
  Slice key() const override {
    assert(Valid());
    return (*flist_)[index_]->largest.Encode();
  }
  Slice value() const override {
    assert(Valid());
    EncodeFixed64(value_buf_, (*flist_)[index_]->number);
    EncodeFixed64(value_buf_ + 8, (*flist_)[index_]->file_size);
    return Slice(value_buf_, sizeof(value_buf_));
  }
  Status status() const override { return Status::OK(); }

 private:
  const InternalKeyComparator icmp_;
  const std::vector<FileMetaData*>* const flist_;
  size_t index_;

  // Backing store for value(). Holds the file number and size.
  mutable char value_buf_[16];
};

Iterator* Version::NewConcatenatingIterator(
    const TableReadOptions& read_options, int level) const {
  TableCache* cache = vset_->table_cache_;
  return NewTwoLevelIterator(
      new LevelFileNumIterator(vset_->icmp_, &files_[level]),
      [cache, read_options](const Slice& file_value) -> Iterator* {
        if (file_value.size() != 16) {
          return NewErrorIterator(
              Status::Corruption("FileReader invoked with unexpected value"));
        }
        return cache->NewIterator(read_options,
                                  DecodeFixed64(file_value.data()),
                                  DecodeFixed64(file_value.data() + 8));
      });
}

void Version::AddIterators(const TableReadOptions& read_options,
                           std::vector<Iterator*>* iters) {
  // Merge all level zero files together since they may overlap.
  for (FileMetaData* f : files_[0]) {
    iters->push_back(vset_->table_cache_->NewIterator(read_options, f->number,
                                                      f->file_size));
  }

  // For levels > 0, we can use a concatenating iterator that sequentially
  // walks through the non-overlapping files in the level, opening them
  // lazily. Under overlapping styles every level is run-stacked like
  // level-0, so each file feeds the merge individually (the merging
  // iterator resolves versions by internal key, so order is immaterial).
  for (int level = 1; level < config::kNumLevels; level++) {
    if (files_[level].empty()) continue;
    if (vset_->overlapping_levels_) {
      for (FileMetaData* f : files_[level]) {
        iters->push_back(vset_->table_cache_->NewIterator(
            read_options, f->number, f->file_size));
      }
    } else {
      iters->push_back(NewConcatenatingIterator(read_options, level));
    }
  }
}

namespace {
enum SaverState {
  kNotFound,
  kFound,
  kDeleted,
  kCorrupt,
};
struct Saver {
  SaverState state;
  const Comparator* ucmp;
  Slice user_key;
  std::string* value;
  bool is_pointer = false;
};
}  // namespace

static void SaveValue(Saver* s, const Slice& ikey, const Slice& v) {
  ParsedInternalKey parsed_key;
  if (!ParseInternalKey(ikey, &parsed_key)) {
    s->state = kCorrupt;
  } else {
    if (s->ucmp->Compare(parsed_key.user_key, s->user_key) == 0) {
      s->state = (parsed_key.type == kTypeValue ||
                  parsed_key.type == kTypeValuePointer)
                     ? kFound
                     : kDeleted;
      if (s->state == kFound) {
        s->value->assign(v.data(), v.size());
        s->is_pointer = (parsed_key.type == kTypeValuePointer);
      }
    }
  }
}

static bool NewestFirst(FileMetaData* a, FileMetaData* b) {
  return a->number > b->number;
}

Status Version::Get(const TableReadOptions& read_options, const LookupKey& k,
                    std::string* value, bool* is_pointer) {
  if (is_pointer != nullptr) *is_pointer = false;
  Slice ikey = k.internal_key();
  Slice user_key = k.user_key();
  const Comparator* ucmp = vset_->icmp_.user_comparator();

  Saver saver;
  saver.state = kNotFound;
  saver.ucmp = ucmp;
  saver.user_key = user_key;
  saver.value = value;

  // We can search level-by-level since entries never hop across levels.
  // Therefore we are guaranteed that if we find data in a smaller level,
  // later levels are irrelevant.
  std::vector<FileMetaData*> tmp;
  for (int level = 0; level < config::kNumLevels; level++) {
    size_t num_files = files_[level].size();
    if (num_files == 0) continue;

    FileMetaData* const* files = nullptr;
    if (level == 0 || vset_->overlapping_levels_) {
      // Files in this level may overlap each other (level-0 always;
      // every level under tiered/lazy styles). Find all files that
      // overlap user_key and process them newest to oldest — valid
      // because file numbers are monotone and whole-level merges only
      // ever install runs strictly newer than the residents below them.
      tmp.clear();
      tmp.reserve(num_files);
      for (FileMetaData* f : files_[level]) {
        if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
            ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
          tmp.push_back(f);
        }
      }
      if (tmp.empty()) continue;
      std::sort(tmp.begin(), tmp.end(), NewestFirst);
      files = tmp.data();
      num_files = tmp.size();
    } else {
      // Binary search to find earliest index whose largest key >= ikey.
      uint32_t index = FindFile(vset_->icmp_, files_[level], ikey);
      if (index >= num_files) {
        continue;
      }
      FileMetaData* f = files_[level][index];
      if (ucmp->Compare(user_key, f->smallest.user_key()) < 0) {
        // All of "f" is past any data for user_key.
        continue;
      }
      files = &files_[level][index];
      num_files = 1;
    }

    for (size_t i = 0; i < num_files; i++) {
      FileMetaData* f = files[i];
      Status s = vset_->table_cache_->Get(
          read_options, f->number, f->file_size, ikey,
          [&saver](const Slice& found_key, const Slice& found_value) {
            SaveValue(&saver, found_key, found_value);
          });
      if (!s.ok()) return s;
      switch (saver.state) {
        case kNotFound:
          break;  // Keep searching in other files
        case kFound:
          if (is_pointer != nullptr) *is_pointer = saver.is_pointer;
          return Status::OK();
        case kDeleted:
          return Status::NotFound(Slice());
        case kCorrupt:
          return Status::Corruption("corrupted key for ", user_key);
      }
    }
  }

  return Status::NotFound(Slice());
}

void Version::Ref() { ++refs_; }

void Version::Unref() {
  assert(this != &vset_->dummy_versions_);
  assert(refs_ >= 1);
  --refs_;
  if (refs_ == 0) {
    delete this;
  }
}

bool Version::OverlapInLevel(int level, const Slice* smallest_user_key,
                             const Slice* largest_user_key) {
  const bool disjoint = (level > 0) && !vset_->overlapping_levels_;
  return SomeFileOverlapsRange(vset_->icmp_, disjoint, files_[level],
                               smallest_user_key, largest_user_key);
}

// Store in "*inputs" all files in "level" that overlap [begin,end].
void Version::GetOverlappingInputs(int level, const InternalKey* begin,
                                   const InternalKey* end,
                                   std::vector<FileMetaData*>* inputs) {
  assert(level >= 0);
  assert(level < config::kNumLevels);
  inputs->clear();
  Slice user_begin, user_end;
  if (begin != nullptr) {
    user_begin = begin->user_key();
  }
  if (end != nullptr) {
    user_end = end->user_key();
  }
  const Comparator* user_cmp = vset_->icmp_.user_comparator();
  for (size_t i = 0; i < files_[level].size();) {
    FileMetaData* f = files_[level][i++];
    const Slice file_start = f->smallest.user_key();
    const Slice file_limit = f->largest.user_key();
    if (begin != nullptr && user_cmp->Compare(file_limit, user_begin) < 0) {
      // "f" is completely before specified range; skip it.
    } else if (end != nullptr && user_cmp->Compare(file_start, user_end) > 0) {
      // "f" is completely after specified range; skip it.
    } else {
      inputs->push_back(f);
      if (level == 0 || vset_->overlapping_levels_) {
        // Files in this level may overlap each other. So check if the
        // newly added file has expanded the range. If so, restart search
        // (transitive closure: a compaction must never split a stack of
        // overlapping files, or older data could shadow newer data).
        if (begin != nullptr &&
            user_cmp->Compare(file_start, user_begin) < 0) {
          user_begin = file_start;
          inputs->clear();
          i = 0;
        } else if (end != nullptr &&
                   user_cmp->Compare(file_limit, user_end) > 0) {
          user_end = file_limit;
          inputs->clear();
          i = 0;
        }
      }
    }
  }
}

std::string Version::DebugString() const {
  std::string r;
  for (int level = 0; level < config::kNumLevels; level++) {
    // E.g.,
    //   --- level 1 ---
    //   17:123['a' .. 'd']
    //   20:43['e' .. 'g']
    r.append("--- level ");
    AppendNumberTo(&r, level);
    r.append(" ---\n");
    for (const FileMetaData* f : files_[level]) {
      r.push_back(' ');
      AppendNumberTo(&r, f->number);
      r.push_back(':');
      AppendNumberTo(&r, f->file_size);
      r.append("[");
      r.append(f->smallest.DebugString());
      r.append(" .. ");
      r.append(f->largest.DebugString());
      r.append("]\n");
    }
  }
  return r;
}

// A helper class so we can efficiently apply a whole sequence of edits to
// a particular state without creating intermediate Versions that contain
// full copies of the intermediate state.
class VersionSet::Builder {
 private:
  // Helper to sort by v->files_[file_number].smallest
  struct BySmallestKey {
    const InternalKeyComparator* internal_comparator;

    bool operator()(FileMetaData* f1, FileMetaData* f2) const {
      int r = internal_comparator->Compare(f1->smallest, f2->smallest);
      if (r != 0) {
        return (r < 0);
      } else {
        // Break ties by file number.
        return (f1->number < f2->number);
      }
    }
  };

  typedef std::set<FileMetaData*, BySmallestKey> FileSet;
  struct LevelState {
    std::set<uint64_t> deleted_files;
    FileSet* added_files;
  };

  VersionSet* vset_;
  Version* base_;
  LevelState levels_[config::kNumLevels];

 public:
  // Initialize a builder with the files from *base and other info from
  // *vset.
  Builder(VersionSet* vset, Version* base) : vset_(vset), base_(base) {
    base_->Ref();
    BySmallestKey cmp;
    cmp.internal_comparator = &vset_->icmp_;
    for (int level = 0; level < config::kNumLevels; level++) {
      levels_[level].added_files = new FileSet(cmp);
    }
  }

  ~Builder() {
    for (int level = 0; level < config::kNumLevels; level++) {
      const FileSet* added = levels_[level].added_files;
      std::vector<FileMetaData*> to_unref;
      to_unref.reserve(added->size());
      for (FileMetaData* f : *added) {
        to_unref.push_back(f);
      }
      delete added;
      for (FileMetaData* f : to_unref) {
        f->refs--;
        if (f->refs <= 0) {
          delete f;
        }
      }
    }
    base_->Unref();
  }

  // Apply all of the edits in *edit to the current state.
  void Apply(const VersionEdit* edit) {
    // Update compaction pointers.
    for (const auto& [level, key] : edit->compact_pointers_) {
      vset_->compact_pointer_[level] = key.Encode().ToString();
    }

    // Delete files.
    for (const auto& [level, number] : edit->deleted_files_) {
      levels_[level].deleted_files.insert(number);
    }

    // Add new files.
    for (const auto& [level, meta] : edit->new_files_) {
      FileMetaData* f = new FileMetaData(meta);
      f->refs = 1;
      levels_[level].deleted_files.erase(f->number);
      levels_[level].added_files->insert(f);
    }
  }

  // Save the current state in *v.
  void SaveTo(Version* v) {
    BySmallestKey cmp;
    cmp.internal_comparator = &vset_->icmp_;
    for (int level = 0; level < config::kNumLevels; level++) {
      // Merge the set of added files with the set of pre-existing files.
      // Drop any deleted files. Store the result in *v.
      const std::vector<FileMetaData*>& base_files = base_->files_[level];
      auto base_iter = base_files.begin();
      auto base_end = base_files.end();
      const FileSet* added_files = levels_[level].added_files;
      v->files_[level].reserve(base_files.size() + added_files->size());
      for (FileMetaData* added_file : *added_files) {
        // Add all smaller files listed in base_.
        for (auto bpos = std::upper_bound(base_iter, base_end, added_file, cmp);
             base_iter != bpos; ++base_iter) {
          MaybeAddFile(v, level, *base_iter);
        }

        MaybeAddFile(v, level, added_file);
      }

      // Add remaining base files.
      for (; base_iter != base_end; ++base_iter) {
        MaybeAddFile(v, level, *base_iter);
      }

#ifndef NDEBUG
      // Make sure there is no overlap in levels > 0 (leveled style only;
      // tiered/lazy styles stack whole runs in a level by design).
      if (level > 0 && !vset_->overlapping_levels_) {
        for (size_t i = 1; i < v->files_[level].size(); i++) {
          const InternalKey& prev_end = v->files_[level][i - 1]->largest;
          const InternalKey& this_begin = v->files_[level][i]->smallest;
          if (vset_->icmp_.Compare(prev_end, this_begin) >= 0) {
            std::fprintf(stderr, "overlapping ranges in same level %s vs. %s\n",
                         prev_end.DebugString().c_str(),
                         this_begin.DebugString().c_str());
            std::abort();
          }
        }
      }
#endif
    }
  }

  void MaybeAddFile(Version* v, int level, FileMetaData* f) {
    if (levels_[level].deleted_files.count(f->number) > 0) {
      // File is deleted: do nothing.
    } else {
      std::vector<FileMetaData*>* files = &v->files_[level];
      if (level > 0 && !vset_->overlapping_levels_ && !files->empty()) {
        // Must not overlap.
        assert(vset_->icmp_.Compare((*files)[files->size() - 1]->largest,
                                    f->smallest) < 0);
      }
      f->refs++;
      files->push_back(f);
    }
  }
};

VersionSet::VersionSet(std::string dbname, const Options* options,
                       TableCache* table_cache,
                       const InternalKeyComparator* cmp)
    : dbname_(std::move(dbname)),
      options_(options),
      table_cache_(table_cache),
      icmp_(*cmp),
      picker_(NewCompactionPicker(options->compaction_style, options)),
      overlapping_levels_(picker_->AllowsOverlappingLevels()),
      dummy_versions_(this),
      current_(nullptr) {
  AppendVersion(new Version(this));
}

VersionSet::~VersionSet() {
  current_->Unref();
  assert(dummy_versions_.next_ == &dummy_versions_);  // List must be empty
}

void VersionSet::AppendVersion(Version* v) {
  // Make "v" current.
  assert(v->refs_ == 0);
  assert(v != current_);
  if (current_ != nullptr) {
    current_->Unref();
  }
  current_ = v;
  v->Ref();

  // Append to linked list.
  v->prev_ = dummy_versions_.prev_;
  v->next_ = &dummy_versions_;
  v->prev_->next_ = v;
  v->next_->prev_ = v;
}

Status VersionSet::LogAndApply(VersionEdit* edit, std::mutex* mu) {
  if (edit->has_log_number_) {
    assert(edit->log_number_ >= log_number_);
    assert(edit->log_number_ < next_file_number_);
  } else {
    edit->SetLogNumber(log_number_);
  }

  edit->SetNextFile(next_file_number_);
  edit->SetLastSequence(last_sequence_);

  Version* v = new Version(this);
  {
    Builder builder(this, current_);
    builder.Apply(edit);
    builder.SaveTo(v);
  }
  Finalize(v);

  // Initialize new descriptor log file if necessary by creating a
  // temporary file that contains a snapshot of the current version.
  std::string new_manifest_file;
  Status s;
  if (descriptor_log_ == nullptr) {
    // No reason to unlock *mu here since we only hit this path in the
    // first call to LogAndApply (when opening the database).
    assert(descriptor_file_ == nullptr);
    if (manifest_file_number_ == 0) {
      manifest_file_number_ = NewFileNumber();
    }
    new_manifest_file = DescriptorFileName(dbname_, manifest_file_number_);
    s = options_->env->NewWritableFile(new_manifest_file, &descriptor_file_);
    if (s.ok()) {
      descriptor_log_.reset(new log::Writer(descriptor_file_.get()));
      s = WriteSnapshot(descriptor_log_.get());
    }
  }

  // Unlock during expensive MANIFEST log write.
  {
    mu->unlock();

    // Write new record to MANIFEST log.
    if (s.ok()) {
      std::string record;
      edit->EncodeTo(&record);
      s = descriptor_log_->AddRecord(record);
      if (s.ok()) {
        s = descriptor_file_->Sync();
      }
      if (!s.ok()) {
        PIPELSM_LOG_ERROR("MANIFEST write: %s", s.ToString().c_str());
      }
    }

    // If we just created a new descriptor file, install it by writing a
    // new CURRENT file that points to it.
    if (s.ok() && !new_manifest_file.empty()) {
      s = SetCurrentFile(options_->env, dbname_, manifest_file_number_);
    }

    mu->lock();
  }

  // Install the new version.
  if (s.ok()) {
    AppendVersion(v);
    log_number_ = edit->log_number_;
  } else {
    delete v;
    // The manifest is now suspect: a failed AddRecord/Sync may have left
    // a torn record that would shadow every later append. Abandon it and
    // force the next LogAndApply to start a fresh manifest (full
    // snapshot + CURRENT switch). Until then ManifestFileNumber() == 0
    // keeps RemoveObsoleteFiles from collecting any descriptor.
    descriptor_log_.reset();
    descriptor_file_.reset();
    manifest_file_number_ = 0;
    if (!new_manifest_file.empty()) {
      options_->env->RemoveFile(new_manifest_file);
    }
  }

  return s;
}

Status VersionSet::Recover() {
  // Read "CURRENT" file, which contains a pointer to the current manifest
  // file.
  std::string current;
  Status s = ReadFileToString(options_->env, CurrentFileName(dbname_),
                              &current);
  if (!s.ok()) {
    return s;
  }
  if (current.empty() || current[current.size() - 1] != '\n') {
    return Status::Corruption("CURRENT file does not end with newline");
  }
  current.resize(current.size() - 1);

  std::string dscname = dbname_ + "/" + current;
  std::unique_ptr<SequentialFile> file;
  s = options_->env->NewSequentialFile(dscname, &file);
  if (!s.ok()) {
    if (s.IsNotFound()) {
      return Status::Corruption("CURRENT points to a non-existent file",
                                s.ToString());
    }
    return s;
  }

  bool have_log_number = false;
  bool have_next_file = false;
  bool have_last_sequence = false;
  uint64_t next_file = 0;
  uint64_t last_sequence = 0;
  uint64_t log_number = 0;
  Builder builder(this, current_);

  {
    struct LogReporter : public log::Reader::Reporter {
      Status* status;
      void Corruption(size_t, const Status& s) override {
        if (this->status->ok()) *this->status = s;
      }
    };
    LogReporter reporter;
    reporter.status = &s;
    log::Reader reader(file.get(), &reporter, true /*checksum*/,
                       0 /*initial_offset*/);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch) && s.ok()) {
      VersionEdit edit;
      s = edit.DecodeFrom(record);
      if (s.ok()) {
        if (edit.has_comparator_ &&
            edit.comparator_ != icmp_.user_comparator()->Name()) {
          s = Status::InvalidArgument(
              edit.comparator_ + " does not match existing comparator ",
              icmp_.user_comparator()->Name());
        }
      }

      if (s.ok()) {
        builder.Apply(&edit);
      }

      if (edit.has_log_number_) {
        log_number = edit.log_number_;
        have_log_number = true;
      }

      if (edit.has_next_file_number_) {
        next_file = edit.next_file_number_;
        have_next_file = true;
      }

      if (edit.has_last_sequence_) {
        last_sequence = edit.last_sequence_;
        have_last_sequence = true;
      }
    }
  }
  file.reset();

  if (s.ok()) {
    if (!have_next_file) {
      s = Status::Corruption("no meta-nextfile entry in descriptor");
    } else if (!have_log_number) {
      s = Status::Corruption("no meta-lognumber entry in descriptor");
    } else if (!have_last_sequence) {
      s = Status::Corruption("no last-sequence-number entry in descriptor");
    }
  }

  if (s.ok()) {
    Version* v = new Version(this);
    builder.SaveTo(v);
    // Install recovered version.
    Finalize(v);
    AppendVersion(v);
    manifest_file_number_ = next_file;
    next_file_number_ = next_file + 1;
    last_sequence_ = last_sequence;
    log_number_ = log_number;
  }

  return s;
}

void VersionSet::Finalize(Version* v) {
  // Precompute the best level for the next compaction; the policy lives
  // in the picker selected by Options::compaction_style.
  picker_->ComputeScore(v);
}

Status VersionSet::WriteSnapshot(log::Writer* log) {
  // Save metadata.
  VersionEdit edit;
  edit.SetComparatorName(icmp_.user_comparator()->Name());

  // Save compaction pointers.
  for (int level = 0; level < config::kNumLevels; level++) {
    if (!compact_pointer_[level].empty()) {
      InternalKey key;
      key.DecodeFrom(compact_pointer_[level]);
      edit.SetCompactPointer(level, key);
    }
  }

  // Save files.
  for (int level = 0; level < config::kNumLevels; level++) {
    for (const FileMetaData* f : current_->files_[level]) {
      edit.AddFile(level, f->number, f->file_size, f->smallest, f->largest);
    }
  }

  std::string record;
  edit.EncodeTo(&record);
  return log->AddRecord(record);
}

int VersionSet::NumLevelFiles(int level) const {
  assert(level >= 0);
  assert(level < config::kNumLevels);
  return static_cast<int>(current_->files_[level].size());
}

int64_t VersionSet::NumLevelBytes(int level) const {
  assert(level >= 0);
  assert(level < config::kNumLevels);
  return TotalFileSize(current_->files_[level]);
}

int64_t VersionSet::MaxNextLevelOverlappingBytes() {
  int64_t result = 0;
  std::vector<FileMetaData*> overlaps;
  for (int level = 1; level < config::kNumLevels - 1; level++) {
    for (FileMetaData* f : current_->files_[level]) {
      current_->GetOverlappingInputs(level + 1, &f->smallest, &f->largest,
                                     &overlaps);
      const int64_t sum = TotalFileSize(overlaps);
      if (sum > result) {
        result = sum;
      }
    }
  }
  return result;
}

// Stores the minimal range that covers all entries in inputs in
// *smallest, *largest.
// REQUIRES: inputs is not empty.
void VersionSet::GetRange(const std::vector<FileMetaData*>& inputs,
                          InternalKey* smallest, InternalKey* largest) {
  assert(!inputs.empty());
  smallest->Clear();
  largest->Clear();
  for (size_t i = 0; i < inputs.size(); i++) {
    FileMetaData* f = inputs[i];
    if (i == 0) {
      *smallest = f->smallest;
      *largest = f->largest;
    } else {
      if (icmp_.Compare(f->smallest, *smallest) < 0) {
        *smallest = f->smallest;
      }
      if (icmp_.Compare(f->largest, *largest) > 0) {
        *largest = f->largest;
      }
    }
  }
}

// Stores the minimal range that covers all entries in inputs1 and inputs2
// in *smallest, *largest.
// REQUIRES: inputs is not empty.
void VersionSet::GetRange2(const std::vector<FileMetaData*>& inputs1,
                           const std::vector<FileMetaData*>& inputs2,
                           InternalKey* smallest, InternalKey* largest) {
  std::vector<FileMetaData*> all = inputs1;
  all.insert(all.end(), inputs2.begin(), inputs2.end());
  GetRange(all, smallest, largest);
}

void VersionSet::AddLiveFiles(std::set<uint64_t>* live) {
  for (Version* v = dummy_versions_.next_; v != &dummy_versions_;
       v = v->next_) {
    for (int level = 0; level < config::kNumLevels; level++) {
      for (const FileMetaData* f : v->files_[level]) {
        live->insert(f->number);
      }
    }
  }
}

std::string VersionSet::LevelSummary() const {
  std::string result = "files[";
  for (int level = 0; level < config::kNumLevels; level++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), " %d",
                  static_cast<int>(current_->files_[level].size()));
    result.append(buf);
  }
  result.append(" ]");
  return result;
}

uint64_t VersionSet::ApproximateOffsetOf(Version* v, const InternalKey& ikey) {
  uint64_t result = 0;
  for (int level = 0; level < config::kNumLevels; level++) {
    for (FileMetaData* f : v->files_[level]) {
      if (icmp_.Compare(f->largest, ikey) <= 0) {
        // Entire file is before "ikey", so just add the file size.
        result += f->file_size;
      } else if (icmp_.Compare(f->smallest, ikey) > 0) {
        // Entire file is after "ikey", so ignore it. For non-overlapping
        // levels, all later files are also after "ikey".
        if (level > 0) {
          break;
        }
      } else {
        // "ikey" falls in the range for this table. Add the approximate
        // offset of "ikey" within the table.
        std::shared_ptr<Table> table;
        Status s = table_cache_->GetTable(f->number, f->file_size, &table);
        if (s.ok()) {
          result += table->ApproximateOffsetOf(ikey.Encode());
        }
      }
    }
  }
  return result;
}

Compaction* VersionSet::PickCompaction() {
  // Delegate file selection to the active policy (picker.cc).
  return picker_->Pick(this);
}

void VersionSet::SetupOtherInputs(Compaction* c) {
  const int level = c->level();
  InternalKey smallest, largest;
  GetRange(c->inputs_[0], &smallest, &largest);

  current_->GetOverlappingInputs(level + 1, &smallest, &largest,
                                 &c->inputs_[1]);

  // Get entire range covered by compaction.
  InternalKey all_start, all_limit;
  GetRange2(c->inputs_[0], c->inputs_[1], &all_start, &all_limit);

  // See if we can grow the number of inputs in "level" without changing
  // the number of "level+1" files we pick up.
  if (!c->inputs_[1].empty()) {
    std::vector<FileMetaData*> expanded0;
    current_->GetOverlappingInputs(level, &all_start, &all_limit, &expanded0);
    const int64_t inputs0_size = TotalFileSize(c->inputs_[0]);
    const int64_t inputs1_size = TotalFileSize(c->inputs_[1]);
    const int64_t expanded0_size = TotalFileSize(expanded0);
    if (expanded0.size() > c->inputs_[0].size() &&
        inputs1_size + expanded0_size <
            ExpandedCompactionByteSizeLimit(options_)) {
      InternalKey new_start, new_limit;
      GetRange(expanded0, &new_start, &new_limit);
      std::vector<FileMetaData*> expanded1;
      current_->GetOverlappingInputs(level + 1, &new_start, &new_limit,
                                     &expanded1);
      if (expanded1.size() == c->inputs_[1].size()) {
        PIPELSM_LOG_DEBUG(
            "Expanding@%d %d+%d (%lld+%lld bytes) to %d+%d (%lld+%lld bytes)",
            level, int(c->inputs_[0].size()), int(c->inputs_[1].size()),
            (long long)inputs0_size, (long long)inputs1_size,
            int(expanded0.size()), int(expanded1.size()),
            (long long)expanded0_size, (long long)inputs1_size);
        smallest = new_start;
        largest = new_limit;
        c->inputs_[0] = expanded0;
        c->inputs_[1] = expanded1;
        GetRange2(c->inputs_[0], c->inputs_[1], &all_start, &all_limit);
      }
    }
  }

  // Update the place where we will do the next compaction for this level.
  // We update this immediately instead of waiting for the VersionEdit to
  // be applied so that if the compaction fails, we will try a different
  // key range next time.
  compact_pointer_[level] = largest.Encode().ToString();
  c->edit_.SetCompactPointer(level, largest);

  // Rewriting the overlapping next-level residents is the leveled
  // policy's write cost; record the prediction for admission/obs.
  const int64_t in0 = TotalFileSize(c->inputs_[0]);
  c->predicted_write_amp_ =
      in0 > 0 ? static_cast<double>(c->TotalInputBytes()) /
                    static_cast<double>(in0)
              : 1.0;
}

Compaction* VersionSet::CompactRange(int level, const InternalKey* begin,
                                     const InternalKey* end) {
  std::vector<FileMetaData*> inputs;
  current_->GetOverlappingInputs(level, begin, end, &inputs);
  if (inputs.empty()) {
    return nullptr;
  }

  // Avoid compacting too much in one shot in case the range is large.
  // But we cannot do this for overlapping levels (level-0, and every
  // level under tiered/lazy styles) since we must not pick one file and
  // drop another older file if the two files overlap —
  // GetOverlappingInputs already took the transitive closure there.
  if (level > 0 && !overlapping_levels_) {
    const uint64_t limit = MaxFileSizeForLevel(level);
    uint64_t total = 0;
    for (size_t i = 0; i < inputs.size(); i++) {
      uint64_t s = inputs[i]->file_size;
      total += s;
      if (total >= limit) {
        inputs.resize(i + 1);
        break;
      }
    }
  }

  Compaction* c = new Compaction(options_, level, level + 1);
  c->input_version_ = current_;
  c->input_version_->Ref();
  c->inputs_[0] = inputs;
  SetupOtherInputs(c);
  return c;
}

Compaction::Compaction(const Options* options, int level, int output_level)
    : level_(level),
      output_level_(output_level),
      max_output_file_size_(options->max_file_size),
      input_version_(nullptr) {
  for (int i = 0; i < config::kNumLevels; i++) {
    level_ptrs_[i] = 0;
  }
}

Compaction::~Compaction() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
  }
}

uint64_t Compaction::TotalInputBytes() const {
  uint64_t total = 0;
  for (int which = 0; which < 2; which++) {
    for (const FileMetaData* f : inputs_[which]) {
      total += f->file_size;
    }
  }
  return total;
}

bool Compaction::IsTrivialMove() const {
  const VersionSet* vset = input_version_->vset_;
  if (!(num_input_files(0) == 1 && num_input_files(1) == 0)) {
    return false;
  }
  // A self-merge (tiered last level) always rewrites; never a move.
  if (output_level_ == level_) {
    return false;
  }
  // Avoid a move if there is lots of overlapping grandparent data.
  // Otherwise, the move could create a parent file that will require a
  // very expensive merge later on.
  if (output_level_ + 1 < config::kNumLevels) {
    std::vector<FileMetaData*> grandparents;
    input_version_->GetOverlappingInputs(output_level_ + 1,
                                         &inputs_[0][0]->smallest,
                                         &inputs_[0][0]->largest,
                                         &grandparents);
    if (TotalFileSize(grandparents) >
        MaxGrandParentOverlapBytes(vset->options_)) {
      return false;
    }
  }
  return true;
}

void Compaction::AddInputDeletions(VersionEdit* edit) {
  for (int which = 0; which < 2; which++) {
    for (const FileMetaData* f : inputs_[which]) {
      edit->RemoveFile(which == 0 ? level_ : output_level_, f->number);
    }
  }
}

bool Compaction::IsInputFile(const FileMetaData* f) const {
  for (int which = 0; which < 2; which++) {
    for (const FileMetaData* in : inputs_[which]) {
      if (in->number == f->number) return true;
    }
  }
  return false;
}

bool Compaction::IsBaseLevelForKey(const Slice& user_key) {
  // Maybe use binary search to find right entry instead of linear search?
  const Comparator* user_cmp =
      input_version_->vset_->icmp_.user_comparator();
  // Under leveled style the output level's residents are all inputs, so
  // the scan starts below it. Overlapping styles leave non-input runs at
  // the output level (tiered pushes merge with nothing), so the scan must
  // include it, skipping this job's own inputs. The monotone pointer walk
  // stays valid for overlapping files: they are sorted by smallest key,
  // so the first file whose largest >= key is also the only candidate
  // whose range can contain it that the walk has not already rejected.
  const bool overlapping = input_version_->vset_->overlapping_levels_;
  const int first = overlapping ? output_level_ : output_level_ + 1;
  for (int lvl = first; lvl < config::kNumLevels; lvl++) {
    const std::vector<FileMetaData*>& files = input_version_->files_[lvl];
    while (level_ptrs_[lvl] < files.size()) {
      FileMetaData* f = files[level_ptrs_[lvl]];
      if (user_cmp->Compare(user_key, f->largest.user_key()) <= 0) {
        // We've advanced far enough.
        if (user_cmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
            !(overlapping && IsInputFile(f))) {
          // Key falls in a resident file's range: not base level.
          return false;
        }
        break;
      }
      level_ptrs_[lvl]++;
    }
  }
  return true;
}

bool Compaction::RangeIsBaseLevel(const Slice* lo_user_key,
                                  const Slice* hi_user_key) const {
  const bool overlapping = input_version_->vset_->overlapping_levels_;
  const int first = overlapping ? output_level_ : output_level_ + 1;
  const Comparator* ucmp = input_version_->vset_->icmp_.user_comparator();
  for (int lvl = first; lvl < config::kNumLevels; lvl++) {
    for (const FileMetaData* f : input_version_->files_[lvl]) {
      // This job's own inputs at the output level do not count as data
      // "below" the output — they are being rewritten right now.
      if (overlapping && IsInputFile(f)) continue;
      if (AfterFile(ucmp, lo_user_key, f) ||
          BeforeFile(ucmp, hi_user_key, f)) {
        continue;  // resident file entirely outside [lo,hi]
      }
      return false;
    }
  }
  return true;
}

void Compaction::ReleaseInputs() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
    input_version_ = nullptr;
  }
}

}  // namespace pipelsm
