// Version / VersionSet: the leveled file-metadata tree, its MANIFEST
// persistence and compaction picking.
//
// A Version is an immutable snapshot of which SSTables form each level.
// VersionSet chains versions; LogAndApply applies a VersionEdit, persists
// it to the MANIFEST and installs the result as current. Compaction
// picking is delegated to the CompactionPicker selected by
// Options::compaction_style (src/compaction/picker.h): leveled size-ratio
// (the paper's LevelDB substrate), tiered, or lazy-leveling. Non-leveled
// styles install overlapping sorted runs in levels > 0; the read and
// overlap-query paths then treat every level like level-0, relying on
// newest-first file-number order for correctness.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/db/dbformat.h"
#include "src/db/options.h"
#include "src/db/table_cache.h"
#include "src/version/version_edit.h"

namespace pipelsm {

namespace log {
class Writer;
}

class Compaction;
class CompactionPicker;
class Iterator;
class TableCache;
class Version;
class VersionSet;

// Return the smallest index i such that files[i]->largest >= key.
// Return files.size() if there is no such file.
// REQUIRES: "files" contains a sorted list of non-overlapping files.
int FindFile(const InternalKeyComparator& icmp,
             const std::vector<FileMetaData*>& files, const Slice& key);

// Returns true iff some file in "files" overlaps the user key range
// [*smallest,*largest]. smallest==nullptr represents a key smaller than
// all keys; largest==nullptr represents a key larger than all keys.
// REQUIRES: if disjoint_sorted_files, files[] contains disjoint sorted
// ranges.
bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<FileMetaData*>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key);

class Version {
 public:
  // Append to *iters a sequence of iterators that will yield the contents
  // of this Version when merged together.
  void AddIterators(const TableReadOptions& read_options,
                    std::vector<Iterator*>* iters);

  // Lookup the value for key. On hit stores it in *val. When the entry
  // is a value-log pointer (kTypeValuePointer), *val receives the raw
  // encoded vlog::ValueLocation and *is_pointer (if non-null) is set;
  // the caller resolves it against the value log.
  Status Get(const TableReadOptions& read_options, const LookupKey& key,
             std::string* val, bool* is_pointer = nullptr);

  // Reference count management (so Versions do not disappear out from
  // under live iterators).
  void Ref();
  void Unref();

  // Fills *inputs with all files in "level" that overlap
  // [begin,end] (nullptr means unbounded).
  void GetOverlappingInputs(int level, const InternalKey* begin,
                            const InternalKey* end,
                            std::vector<FileMetaData*>* inputs);

  // Returns true iff some file in the specified level overlaps some part
  // of [*smallest_user_key,*largest_user_key].
  bool OverlapInLevel(int level, const Slice* smallest_user_key,
                      const Slice* largest_user_key);

  int NumFiles(int level) const {
    return static_cast<int>(files_[level].size());
  }

  const std::vector<FileMetaData*>& files(int level) const {
    return files_[level];
  }

  std::string DebugString() const;

 private:
  friend class Compaction;
  friend class CompactionPicker;
  friend class VersionSet;

  class LevelFileNumIterator;

  explicit Version(VersionSet* vset)
      : vset_(vset), next_(this), prev_(this), refs_(0),
        compaction_score_(-1), compaction_level_(-1) {}

  ~Version();

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  Iterator* NewConcatenatingIterator(const TableReadOptions& read_options,
                                     int level) const;

  VersionSet* vset_;  // VersionSet to which this Version belongs
  Version* next_;     // Next version in linked list
  Version* prev_;     // Previous version in linked list
  int refs_;          // Number of live refs to this version

  // List of files per level
  std::vector<FileMetaData*> files_[config::kNumLevels];

  // Level that should be compacted next and its compaction score.
  // Score < 1 means compaction is not strictly needed. Filled by
  // VersionSet::Finalize().
  double compaction_score_;
  int compaction_level_;
};

class VersionSet {
 public:
  VersionSet(std::string dbname, const Options* options,
             TableCache* table_cache, const InternalKeyComparator* cmp);
  ~VersionSet();

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  // Apply *edit to the current version to form a new descriptor that is
  // both saved to persistent state and installed as the new current
  // version. `mu` is the DB mutex, released during actual file writes.
  Status LogAndApply(VersionEdit* edit, std::mutex* mu);

  // Recover the last saved descriptor from persistent storage.
  Status Recover();

  Version* current() const { return current_; }

  uint64_t ManifestFileNumber() const { return manifest_file_number_; }

  // Allocate and return a new file number.
  uint64_t NewFileNumber() { return next_file_number_++; }

  // Arrange to reuse "file_number" unless a newer file number has already
  // been allocated (for abandoned compaction outputs).
  void ReuseFileNumber(uint64_t file_number) {
    if (next_file_number_ == file_number + 1) {
      next_file_number_ = file_number;
    }
  }

  int NumLevelFiles(int level) const;
  int64_t NumLevelBytes(int level) const;

  uint64_t LastSequence() const { return last_sequence_; }
  void SetLastSequence(uint64_t s) {
    assert(s >= last_sequence_);
    last_sequence_ = s;
  }

  uint64_t LogNumber() const { return log_number_; }

  // Pick level and inputs for a new compaction (nullptr if none needed).
  // Caller owns the result.
  Compaction* PickCompaction();

  // Return a compaction object for compacting the range [begin,end] in
  // the specified level (manual compactions). Caller owns the result.
  Compaction* CompactRange(int level, const InternalKey* begin,
                           const InternalKey* end);

  // Maximum overlapping bytes at the next level for any level-(L) file.
  int64_t MaxNextLevelOverlappingBytes();

  bool NeedsCompaction() const {
    Version* v = current_;
    return v->compaction_score_ >= 1;
  }

  // Add all files listed in any live version to *live.
  void AddLiveFiles(std::set<uint64_t>* live);

  TableCache* table_cache() const { return table_cache_; }
  const InternalKeyComparator* icmp() const { return &icmp_; }
  const Options* options() const { return options_; }
  const std::string& dbname() const { return dbname_; }

  // The policy object picked by Options::compaction_style.
  CompactionPicker* picker() const { return picker_.get(); }

  // True when the active picker installs overlapping runs in levels > 0;
  // gates the L0-style read/overlap handling for all levels.
  bool overlapping_levels() const { return overlapping_levels_; }

  // One-line summary of files per level, e.g. "files[ 2 4 0 0 0 0 0 ]".
  std::string LevelSummary() const;

  // Approximate byte offset of `key` within the version's total data
  // (sums whole files below the key plus a within-file offset from the
  // containing table's index).
  uint64_t ApproximateOffsetOf(Version* v, const InternalKey& key);

 private:
  class Builder;

  friend class Compaction;
  friend class CompactionPicker;
  friend class Version;

  void Finalize(Version* v);

  void GetRange(const std::vector<FileMetaData*>& inputs, InternalKey* smallest,
                InternalKey* largest);

  void GetRange2(const std::vector<FileMetaData*>& inputs1,
                 const std::vector<FileMetaData*>& inputs2,
                 InternalKey* smallest, InternalKey* largest);

  void SetupOtherInputs(Compaction* c);

  // Save current contents to *log.
  Status WriteSnapshot(log::Writer* log);

  void AppendVersion(Version* v);

  double MaxBytesForLevel(int level) const;
  uint64_t MaxFileSizeForLevel(int level) const;

  const std::string dbname_;
  const Options* const options_;
  TableCache* const table_cache_;
  const InternalKeyComparator icmp_;
  const std::unique_ptr<CompactionPicker> picker_;
  const bool overlapping_levels_;
  uint64_t next_file_number_ = 2;
  uint64_t manifest_file_number_ = 0;
  uint64_t last_sequence_ = 0;
  uint64_t log_number_ = 0;

  // Opened lazily.
  std::unique_ptr<WritableFile> descriptor_file_;
  std::unique_ptr<log::Writer> descriptor_log_;

  Version dummy_versions_;  // Head of circular doubly-linked list of versions
  Version* current_;        // == dummy_versions_.prev_

  // Per-level key at which the next size compaction should pick its first
  // file (round-robin through the key space, as in LevelDB).
  std::string compact_pointer_[config::kNumLevels];
};

// A Compaction encapsulates information about a picked compaction.
class Compaction {
 public:
  ~Compaction();

  // Return the level that is being compacted (the source of inputs_[0]).
  int level() const { return level_; }

  // Level the merged output files are installed at. level_ + 1 for
  // leveled and tiered pushes; level_ for a tiered last-level self-merge.
  int output_level() const { return output_level_; }

  // Predicted bytes-written amplification of this job: total input bytes
  // divided by the bytes entering from the source level (~1 for tiered
  // pushes, (src+overlap)/src for leveled spills). Filled by the picker;
  // reported through admission requests, CompactionJobInfo and the
  // pipelsm.compaction property.
  double predicted_write_amp() const { return predicted_write_amp_; }

  // Return the object that holds the edits to the descriptor done by this
  // compaction.
  VersionEdit* edit() { return &edit_; }

  // "which" must be either 0 or 1.
  int num_input_files(int which) const {
    return static_cast<int>(inputs_[which].size());
  }

  // Return the ith input file ("which" 0 = source level, 1 = output
  // level residents).
  FileMetaData* input(int which, int i) const { return inputs_[which][i]; }

  const std::vector<FileMetaData*>& inputs(int which) const {
    return inputs_[which];
  }

  // Maximum size of files to build during this compaction.
  uint64_t MaxOutputFileSize() const { return max_output_file_size_; }

  // Is this a trivial compaction that can be implemented by just moving a
  // single input file to the output level (no merging or splitting)?
  bool IsTrivialMove() const;

  // Add all inputs to this compaction as delete operations to *edit.
  void AddInputDeletions(VersionEdit* edit);

  // Returns true if the information we have available guarantees that the
  // compaction is producing data at the output level for which no data
  // exists below the output level (drop-deletion eligibility).
  bool IsBaseLevelForKey(const Slice& user_key);

  // Range form used by the sub-task planner: true iff no level below the
  // output level holds any key in [*lo_user_key, *hi_user_key] (nullptr =
  // unbounded). Conservative and safe to evaluate per planned sub-range.
  bool RangeIsBaseLevel(const Slice* lo_user_key,
                        const Slice* hi_user_key) const;

  // Release the input version for the compaction, once it is done.
  void ReleaseInputs();

  // Total bytes across all inputs.
  uint64_t TotalInputBytes() const;

 private:
  friend class CompactionPicker;
  friend class VersionSet;

  Compaction(const Options* options, int level, int output_level);

  // True iff `f` is one of this compaction's input files (by number).
  bool IsInputFile(const FileMetaData* f) const;

  int level_;
  int output_level_;
  double predicted_write_amp_ = 1.0;
  uint64_t max_output_file_size_;
  Version* input_version_;
  VersionEdit edit_;

  // inputs_[0] comes from level_; inputs_[1] holds the resident files of
  // output_level_ merged in (empty for tiered pushes and self-merges).
  std::vector<FileMetaData*> inputs_[2];

  // State for implementing IsBaseLevelForKey:
  // level_ptrs_ holds indices into input_version_->files_: our state is
  // that we are positioned at one of the file ranges for each higher
  // level than the ones involved in this compaction.
  size_t level_ptrs_[config::kNumLevels];
};

}  // namespace pipelsm
