#include "src/shard/router.h"

#include <algorithm>
#include <cstdio>

namespace pipelsm::shard {

ShardRouter::ShardRouter(std::vector<std::string> boundaries)
    : boundaries_(std::move(boundaries)) {}

size_t ShardRouter::ShardOf(const Slice& key) const {
  // upper_bound: boundary keys belong to the shard above them, so shard
  // i's range is [boundaries_[i-1], boundaries_[i]).
  return static_cast<size_t>(
      std::upper_bound(boundaries_.begin(), boundaries_.end(), key,
                       [](const Slice& a, const std::string& b) {
                         return a.compare(Slice(b)) < 0;
                       }) -
      boundaries_.begin());
}

namespace {

class SplittingHandler : public WriteBatch::Handler {
 public:
  SplittingHandler(const ShardRouter* router, std::vector<WriteBatch>* out)
      : router_(router), out_(out) {}

  void Put(const Slice& key, const Slice& value) override {
    (*out_)[router_->ShardOf(key)].Put(key, value);
  }
  void Delete(const Slice& key) override {
    (*out_)[router_->ShardOf(key)].Delete(key);
  }
  void PutPointer(const Slice& key, const Slice& location) override {
    // Only user batches are split, and value pointers are produced
    // inside the member engines — but route faithfully if one appears.
    (*out_)[router_->ShardOf(key)].PutPointer(key, location);
  }

 private:
  const ShardRouter* const router_;
  std::vector<WriteBatch>* const out_;
};

}  // namespace

Status ShardRouter::SplitBatch(const WriteBatch& batch,
                               std::vector<WriteBatch>* out) const {
  out->assign(num_shards(), WriteBatch());
  SplittingHandler handler(this, out);
  return batch.Iterate(&handler);
}

std::vector<std::string> ShardRouter::SplitDecimalKeyspace(
    uint64_t num_keys, size_t key_size, size_t num_shards) {
  std::vector<std::string> boundaries;
  if (num_shards < 2) return boundaries;
  for (size_t i = 1; i < num_shards; i++) {
    const uint64_t split = num_keys * i / num_shards;
    char buf[32];
    const int n = std::snprintf(buf, sizeof(buf), "%llu",
                                static_cast<unsigned long long>(split));
    std::string key(key_size > size_t(n) ? key_size - n : 0, '0');
    key.append(buf, n);
    boundaries.push_back(std::move(key));
  }
  return boundaries;
}

Status ShardRouter::Validate(const std::vector<std::string>& boundaries) {
  for (size_t i = 0; i < boundaries.size(); i++) {
    if (boundaries[i].empty()) {
      return Status::InvalidArgument("empty shard boundary key");
    }
    if (i > 0 && boundaries[i] <= boundaries[i - 1]) {
      return Status::InvalidArgument(
          "shard boundaries must be sorted ascending and unique");
    }
  }
  return Status::OK();
}

}  // namespace pipelsm::shard
