#include "src/shard/arbiter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/obs/metrics.h"
#include "src/util/stopwatch.h"

namespace pipelsm::shard {

CompactionArbiter::CompactionArbiter(const ArbiterOptions& options)
    : opts_(options) {
  if (opts_.metrics != nullptr) {
    lanes_gauge_ = opts_.metrics->RegisterGauge(
        "arbiter.io_lanes_in_use", "fleet I/O lanes currently granted");
    workers_gauge_ = opts_.metrics->RegisterGauge(
        "arbiter.compute_workers_in_use",
        "fleet compute workers currently granted");
    waiting_gauge_ = opts_.metrics->RegisterGauge(
        "arbiter.waiting", "shards blocked in compaction admission");
    grants_counter_ = opts_.metrics->RegisterCounter(
        "arbiter.grants", "compaction grants issued");
    shrinks_counter_ = opts_.metrics->RegisterCounter(
        "arbiter.shrinks",
        "grants smaller than the job's solo Prescribe() k");
    forced_counter_ = opts_.metrics->RegisterCounter(
        "arbiter.forced_grants",
        "floor grants forced by the passover (anti-starvation) rule");
    wait_micros_ = opts_.metrics->RegisterHistogram(
        "arbiter.wait_micros", "time shards spend blocked in Admit()");
  }
}

CompactionArbiter::~CompactionArbiter() = default;

namespace {

// The gain a job would claim running alone, at the arbiter's per-job
// caps. Zero/garbage profiles prescribe the PCP floor (gain 1.0) — a
// cold shard must not outrank warmed-up ones on NaN arithmetic.
double SoloGain(const model::StepTimes& t, const ArbiterOptions& opts) {
  if (t.total() <= 0) return 1.0;
  const int cap = model::IsCpuBound(t) ? opts.per_job_max_workers
                                       : opts.per_job_max_lanes;
  const model::Prescription p = model::Prescribe(t, opts.min_gain, cap);
  return p.gain_vs_pcp;
}

CompactionMode ModeOf(model::Prescription::Procedure procedure) {
  switch (procedure) {
    case model::Prescription::kSCP:
      return CompactionMode::kSCP;
    case model::Prescription::kSPPCP:
      return CompactionMode::kSPPCP;
    case model::Prescription::kCPPCP:
      return CompactionMode::kCPPCP;
    case model::Prescription::kPCP:
      break;
  }
  return CompactionMode::kPCP;
}

}  // namespace

const CompactionArbiter::Waiter* CompactionArbiter::FrontLocked() const {
  // Ranking: (1) forced waiters (passovers >= max) in FIFO order, so a
  // starving shard is next no matter what arrives; (2) compactions over
  // value-log GC — reclaiming dead value bytes is maintenance and can
  // wait (GC still escapes starvation via the passover rule); (3)
  // highest predicted solo gain — the fleet's units buy the most
  // bandwidth there; (4) FIFO.
  const Waiter* best = nullptr;
  for (const auto& [seq, w] : waiters_) {
    const bool w_forced = w.passovers >= opts_.max_passovers;
    if (best == nullptr) {
      best = &w;
      continue;
    }
    const bool b_forced = best->passovers >= opts_.max_passovers;
    if (w_forced != b_forced) {
      if (w_forced) best = &w;
      continue;
    }
    if (w_forced) continue;  // both forced: keep FIFO (map order)
    if (w.request.is_gc != best->request.is_gc) {
      if (!w.request.is_gc) best = &w;
      continue;
    }
    if (w.solo_gain > best->solo_gain) best = &w;
  }
  return best;
}

bool CompactionArbiter::EligibleLocked(const Waiter& w) const {
  const Waiter* front = FrontLocked();
  if (front == nullptr || front->seq != w.seq) return false;
  return lanes_in_use_ + 1 <= opts_.budget.io_lanes &&
         workers_in_use_ + 1 <= opts_.budget.compute_workers;
}

CompactionGrant CompactionArbiter::GrantLocked(const Waiter& w) {
  // Ask the fleet model what this job's share of the FREE budget is,
  // with every other current waiter (up to the job bound) competing for
  // the same pool — so one early job cannot swallow units that better
  // jobs just behind it would use.
  model::FleetBudget free;
  free.io_lanes = opts_.budget.io_lanes - lanes_in_use_;
  free.compute_workers = opts_.budget.compute_workers - workers_in_use_;

  std::vector<model::StepTimes> jobs;
  jobs.push_back(w.request.profile);
  for (const auto& [seq, other] : waiters_) {
    if (seq == w.seq) continue;
    if (int(jobs.size()) >= std::min(free.io_lanes, free.compute_workers)) {
      break;
    }
    jobs.push_back(other.request.profile);
  }
  std::vector<model::FleetAllocation> alloc =
      model::PrescribeFleet(jobs, free, opts_.min_gain);
  model::FleetAllocation mine = alloc[0];
  if (opts_.per_job_max_lanes > 0) {
    mine.lanes = std::min(mine.lanes, opts_.per_job_max_lanes);
  }
  if (opts_.per_job_max_workers > 0) {
    mine.workers = std::min(mine.workers, opts_.per_job_max_workers);
  }
  mine.prescription.k = std::max(mine.lanes, mine.workers);

  Grant g;
  g.shard_id = w.request.shard_id;
  g.level = w.request.level;
  g.lanes = std::max(1, mine.lanes);
  g.workers = std::max(1, mine.workers);
  g.mode = ModeOf(mine.prescription.procedure);
  g.k = std::max(1, mine.prescription.k);

  lanes_in_use_ += g.lanes;
  workers_in_use_ += g.workers;
  peak_lanes_ = std::max(peak_lanes_, lanes_in_use_);
  peak_workers_ = std::max(peak_workers_, workers_in_use_);
  grants_++;
  if (w.passovers >= opts_.max_passovers) forced_grants_++;

  // Shrink accounting: did the fleet hand out less than the job's solo
  // saturation k (at the same per-job caps)?
  if (w.request.profile.total() > 0) {
    const int cap = model::IsCpuBound(w.request.profile)
                        ? opts_.per_job_max_workers
                        : opts_.per_job_max_lanes;
    const model::Prescription solo =
        model::Prescribe(w.request.profile, opts_.min_gain, cap);
    if ((solo.procedure == model::Prescription::kSPPCP ||
         solo.procedure == model::Prescription::kCPPCP) &&
        g.k < solo.k) {
      shrinks_++;
      if (shrinks_counter_ != nullptr) shrinks_counter_->Add(1);
    }
  }

  const uint64_t id = next_grant_id_++;
  running_[id] = g;

  if (lanes_gauge_ != nullptr) lanes_gauge_->Set(lanes_in_use_);
  if (workers_gauge_ != nullptr) workers_gauge_->Set(workers_in_use_);
  if (grants_counter_ != nullptr) grants_counter_->Add(1);
  if (forced_counter_ != nullptr && w.passovers >= opts_.max_passovers) {
    forced_counter_->Add(1);
  }

  CompactionGrant out;
  out.granted = true;
  out.id = id;
  out.decision.mode = g.mode;
  out.decision.read_parallelism = g.lanes;
  out.decision.compute_parallelism = g.workers;
  out.decision.adaptive = true;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "arbiter grant: %s k=%d (%d lanes, %d workers; fleet "
                "%d/%d lanes %d/%d workers in use)",
                CompactionModeName(g.mode), g.k, g.lanes, g.workers,
                lanes_in_use_, opts_.budget.io_lanes, workers_in_use_,
                opts_.budget.compute_workers);
  out.decision.rationale = buf;
  return out;
}

CompactionGrant CompactionArbiter::Admit(
    const CompactionAdmissionRequest& request,
    const std::function<bool()>& abort) {
  Stopwatch sw;
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t seq = next_seq_++;
  Waiter& me = waiters_[seq];
  me.seq = seq;
  me.request = request;
  me.solo_gain = SoloGain(request.profile, opts_);
  if (waiting_gauge_ != nullptr) {
    waiting_gauge_->Set(static_cast<int64_t>(waiters_.size()));
  }

  CompactionGrant out;
  while (true) {
    if (abort && abort()) break;
    if (EligibleLocked(me)) {
      // Everyone still waiting has been passed over by this grant.
      for (auto& [s, w] : waiters_) {
        if (s != seq) w.passovers++;
      }
      out = GrantLocked(me);
      break;
    }
    cv_.wait_for(lock,
                 std::chrono::microseconds(opts_.wait_poll_micros));
  }

  waiters_.erase(seq);
  if (waiting_gauge_ != nullptr) {
    waiting_gauge_->Set(static_cast<int64_t>(waiters_.size()));
  }
  // A departing waiter may have been the blocking front-runner.
  cv_.notify_all();
  if (wait_micros_ != nullptr) {
    wait_micros_->Observe(sw.ElapsedNanos() * 1e-3);
  }
  return out;
}

void CompactionArbiter::Release(uint64_t grant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = running_.find(grant_id);
  if (it == running_.end()) return;
  lanes_in_use_ -= it->second.lanes;
  workers_in_use_ -= it->second.workers;
  running_.erase(it);
  if (lanes_gauge_ != nullptr) lanes_gauge_->Set(lanes_in_use_);
  if (workers_gauge_ != nullptr) workers_gauge_->Set(workers_in_use_);
  cv_.notify_all();
}

std::string CompactionArbiter::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"io_lanes\":{\"budget\":%d,\"in_use\":%d,\"peak\":%d},"
                "\"compute_workers\":{\"budget\":%d,\"in_use\":%d,"
                "\"peak\":%d},",
                opts_.budget.io_lanes, lanes_in_use_, peak_lanes_,
                opts_.budget.compute_workers, workers_in_use_,
                peak_workers_);
  out += buf;
  out += "\"running\":[";
  bool first = true;
  for (const auto& [id, g] : running_) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"grant\":%llu,\"shard\":%d,\"level\":%d,"
                  "\"procedure\":\"%s\",\"k\":%d,\"lanes\":%d,"
                  "\"workers\":%d}",
                  static_cast<unsigned long long>(id), g.shard_id, g.level,
                  CompactionModeName(g.mode), g.k, g.lanes, g.workers);
    out += buf;
  }
  out += "],";
  std::snprintf(buf, sizeof(buf),
                "\"waiting\":%zu,\"grants\":%llu,\"shrinks\":%llu,"
                "\"forced_grants\":%llu}",
                waiters_.size(), static_cast<unsigned long long>(grants_),
                static_cast<unsigned long long>(shrinks_),
                static_cast<unsigned long long>(forced_grants_));
  out += buf;
  return out;
}

int CompactionArbiter::lanes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_in_use_;
}
int CompactionArbiter::workers_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_in_use_;
}
int CompactionArbiter::peak_lanes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_lanes_;
}
int CompactionArbiter::peak_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_workers_;
}
uint64_t CompactionArbiter::grants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grants_;
}
uint64_t CompactionArbiter::shrinks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shrinks_;
}
uint64_t CompactionArbiter::forced_grants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return forced_grants_;
}
size_t CompactionArbiter::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size();
}

}  // namespace pipelsm::shard
