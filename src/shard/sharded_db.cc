#include "src/shard/sharded_db.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/obs/logger.h"
#include "src/obs/metrics.h"
#include "src/util/coding.h"

namespace pipelsm::shard {

namespace {

constexpr char kManifestName[] = "SHARDS";

std::string ShardDirName(const std::string& root, size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%04zu", i);
  return root + "/" + buf;
}

std::string EncodeManifest(const std::vector<std::string>& boundaries) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(boundaries.size() + 1));
  for (const std::string& b : boundaries) {
    PutLengthPrefixedSlice(&out, Slice(b));
  }
  return out;
}

Status DecodeManifest(const std::string& data,
                      std::vector<std::string>* boundaries) {
  Slice in(data);
  uint32_t num_shards = 0;
  if (!GetVarint32(&in, &num_shards) || num_shards == 0) {
    return Status::Corruption("bad SHARDS manifest header");
  }
  boundaries->clear();
  for (uint32_t i = 0; i + 1 < num_shards; i++) {
    Slice b;
    if (!GetLengthPrefixedSlice(&in, &b)) {
      return Status::Corruption("truncated SHARDS manifest");
    }
    boundaries->push_back(b.ToString());
  }
  return Status::OK();
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Snapshots: a fleet snapshot is one member snapshot per shard, taken in
// shard order. Cross-shard writes are not atomic (see header), so the
// fleet snapshot is "each shard at some recent point", not one global
// sequence number — the same guarantee the shards give individually.
class ShardedDB::ShardedSnapshot : public Snapshot {
 public:
  explicit ShardedSnapshot(std::vector<const Snapshot*> members)
      : members_(std::move(members)) {}
  ~ShardedSnapshot() override = default;

  const Snapshot* member(size_t i) const { return members_[i]; }
  size_t size() const { return members_.size(); }

 private:
  std::vector<const Snapshot*> members_;
};

// ---------------------------------------------------------------------
// ConcatIterator: shard ranges are disjoint and ascending, so iteration
// order is just shard 0's entries, then shard 1's, ... Seek jumps to the
// owning shard directly. Any child error freezes the iterator (Valid()
// false, status() reports it) instead of silently skipping a shard.
class ShardedDB::ConcatIterator : public Iterator {
 public:
  ConcatIterator(const ShardRouter* router, std::vector<Iterator*> children)
      : router_(router), children_(std::move(children)) {}

  ~ConcatIterator() override {
    for (Iterator* it : children_) delete it;
  }

  bool Valid() const override {
    return current_ < children_.size() && children_[current_]->Valid();
  }

  void SeekToFirst() override {
    current_ = 0;
    if (!children_.empty()) children_[0]->SeekToFirst();
    SkipEmptyForward();
  }

  void SeekToLast() override {
    current_ = children_.size() - 1;
    if (!children_.empty()) children_[current_]->SeekToLast();
    SkipEmptyBackward();
  }

  void Seek(const Slice& target) override {
    current_ = router_->ShardOf(target);
    children_[current_]->Seek(target);
    SkipEmptyForward();
  }

  void Next() override {
    children_[current_]->Next();
    SkipEmptyForward();
  }

  void Prev() override {
    children_[current_]->Prev();
    SkipEmptyBackward();
  }

  Slice key() const override { return children_[current_]->key(); }
  Slice value() const override { return children_[current_]->value(); }

  Status status() const override {
    for (Iterator* it : children_) {
      if (!it->status().ok()) return it->status();
    }
    return Status::OK();
  }

 private:
  // Walks forward across shard seams until a valid child (or an error,
  // or the end). The freshly entered child is positioned at its first
  // entry — correct for both Seek past a shard's data and Next off a
  // shard's tail.
  void SkipEmptyForward() {
    while (current_ < children_.size() && !children_[current_]->Valid()) {
      if (!children_[current_]->status().ok()) {
        current_ = children_.size();  // freeze; status() surfaces it
        return;
      }
      current_++;
      if (current_ < children_.size()) children_[current_]->SeekToFirst();
    }
  }

  void SkipEmptyBackward() {
    while (current_ < children_.size() && !children_[current_]->Valid()) {
      if (!children_[current_]->status().ok()) {
        current_ = children_.size();
        return;
      }
      if (current_ == 0) {
        current_ = children_.size();  // walked off the front
        return;
      }
      current_--;
      children_[current_]->SeekToLast();
    }
  }

  const ShardRouter* const router_;
  std::vector<Iterator*> children_;
  size_t current_ = 0;
};

// ---------------------------------------------------------------------

Status ShardedDB::Open(const Options& options, const ShardedOptions& sharded,
                       const std::string& name, ShardedDB** dbptr) {
  *dbptr = nullptr;
  Env* env = options.env != nullptr ? options.env : Env::Posix();

  if (sharded.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (!sharded.boundary_keys.empty() &&
      sharded.boundary_keys.size() != sharded.num_shards - 1) {
    return Status::InvalidArgument(
        "need exactly num_shards - 1 boundary keys");
  }
  Status s = ShardRouter::Validate(sharded.boundary_keys);
  if (!s.ok()) return s;

  if (!env->FileExists(name)) {
    if (!options.create_if_missing) {
      return Status::InvalidArgument(name + " does not exist");
    }
    s = env->CreateDir(name);
    if (!s.ok()) return s;
  }

  // Resolve the boundary set: manifest wins on reopen; explicit keys
  // must match it exactly (re-routing keys under existing shard data
  // would silently lose them).
  std::vector<std::string> boundaries = sharded.boundary_keys;
  const std::string manifest_path = name + "/" + kManifestName;
  if (env->FileExists(manifest_path)) {
    std::string data;
    s = ReadFileToString(env, manifest_path, &data);
    if (!s.ok()) return s;
    std::vector<std::string> on_disk;
    s = DecodeManifest(data, &on_disk);
    if (!s.ok()) return s;
    if (!sharded.boundary_keys.empty() &&
        on_disk != sharded.boundary_keys) {
      return Status::InvalidArgument(
          "boundary keys do not match the SHARDS manifest");
    }
    if (sharded.num_shards != 1 &&
        sharded.num_shards != on_disk.size() + 1) {
      return Status::InvalidArgument(
          "num_shards does not match the SHARDS manifest");
    }
    boundaries = std::move(on_disk);
  } else {
    if (sharded.num_shards > 1 && boundaries.empty()) {
      return Status::InvalidArgument(
          "first open with num_shards > 1 requires boundary keys");
    }
    s = WriteStringToFile(env, Slice(EncodeManifest(boundaries)),
                          manifest_path, /*sync=*/true);
    if (!s.ok()) return s;
  }
  const size_t num_shards = boundaries.size() + 1;

  auto db = std::unique_ptr<ShardedDB>(new ShardedDB());
  db->env_ = env;
  db->name_ = name;
  db->metrics_ = std::make_unique<obs::MetricsRegistry>();
  db->router_ = std::make_unique<ShardRouter>(std::move(boundaries));
  obs::NewFileLogger(env, name + "/LOG", &db->info_log_);  // best effort

  if (sharded.enable_arbiter) {
    ArbiterOptions aopts = sharded.arbiter;
    aopts.metrics = db->metrics_.get();
    db->arbiter_ = std::make_unique<CompactionArbiter>(aopts);
  }

  // One fleet-wide block cache shared by every member shard (unless the
  // caller supplied their own), so hot blocks are cached once regardless
  // of which shard owns them. Stats bind into the fleet registry.
  if (options.block_cache == nullptr) {
    db->block_cache_ = read::NewShardedLRUCache(options.block_cache_size,
                                                options.block_cache_shards);
    db->block_cache_->BindStats(
        db->metrics_->RegisterCounter("cache.block.hits",
                                      "fleet block cache hits"),
        db->metrics_->RegisterCounter("cache.block.misses",
                                      "fleet block cache misses"),
        db->metrics_->RegisterCounter("cache.block.evictions",
                                      "fleet block cache evictions"),
        db->metrics_->RegisterGauge("cache.block.usage_bytes",
                                    "fleet block cache bytes in use"));
    db->metrics_
        ->RegisterGauge("cache.block.capacity_bytes", "block cache capacity")
        ->Set(static_cast<int64_t>(db->block_cache_->capacity()));
  }

  for (size_t i = 0; i < num_shards; i++) {
    Options shard_options = options;
    shard_options.env = env;
    if (db->block_cache_ != nullptr) {
      shard_options.block_cache = db->block_cache_.get();
    }
    shard_options.shard_id = static_cast<int>(i);
    shard_options.info_log = nullptr;  // each shard keeps its own LOG
    if (db->arbiter_ != nullptr) {
      shard_options.compaction_governor = db->arbiter_.get();
    }
    DB* raw = nullptr;
    s = DB::Open(shard_options, ShardDirName(name, i), &raw);
    if (!s.ok()) {
      obs::Log(db->info_log_.get(), "EVENT shard_open_failed shard=%zu: %s",
               i, s.ToString().c_str());
      return s;  // already-opened shards close via ~ShardedDB
    }
    db->shards_.emplace_back(raw);
  }
  db->write_pool_ = std::make_unique<ThreadPool>(num_shards);

  obs::Log(db->info_log_.get(),
           "EVENT sharded_open shards=%zu arbiter=%d io_lanes=%d "
           "compute_workers=%d",
           num_shards, db->arbiter_ != nullptr ? 1 : 0,
           sharded.arbiter.budget.io_lanes,
           sharded.arbiter.budget.compute_workers);

  *dbptr = db.release();
  return Status::OK();
}

Status ShardedDB::Destroy(const std::string& name, const Options& options) {
  Env* env = options.env != nullptr ? options.env : Env::Posix();
  if (!env->FileExists(name)) return Status::OK();
  Status result = Status::OK();
  std::vector<std::string> children;
  env->GetChildren(name, &children);
  for (const std::string& child : children) {
    if (child == "." || child == "..") continue;
    const std::string path = name + "/" + child;
    Status s;
    if (child.rfind("shard-", 0) == 0) {
      s = DestroyDB(path, options);
      if (s.ok()) env->RemoveDir(path);
    } else {
      s = env->RemoveFile(path);
    }
    if (result.ok() && !s.ok()) result = s;
  }
  env->RemoveDir(name);
  return result;
}

ShardedDB::~ShardedDB() {
  if (write_pool_ != nullptr) write_pool_->Shutdown();
  // shards_ then arbiter_ destroyed by member order (see header).
}

Status ShardedDB::Put(const WriteOptions& options, const Slice& key,
                      const Slice& value) {
  return shards_[router_->ShardOf(key)]->Put(options, key, value);
}

Status ShardedDB::Delete(const WriteOptions& options, const Slice& key) {
  return shards_[router_->ShardOf(key)]->Delete(options, key);
}

Status ShardedDB::Write(const WriteOptions& options, WriteBatch* updates) {
  std::vector<WriteBatch> split;
  Status s = router_->SplitBatch(*updates, &split);
  if (!s.ok()) return s;

  // Single-shard batches (the common case under keyed traffic) skip the
  // fan-out entirely.
  size_t touched = 0;
  size_t only = 0;
  for (size_t i = 0; i < split.size(); i++) {
    if (WriteBatchInternal::Count(&split[i]) > 0) {
      touched++;
      only = i;
    }
  }
  if (touched == 0) return Status::OK();
  if (touched == 1) return shards_[only]->Write(options, &split[only]);

  // Parallel fan-out: each touched shard commits its sub-batch in its
  // own WAL (group-committed with that shard's other writers). NOT
  // atomic across shards — documented in the header.
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = touched;
  Status first_error;
  for (size_t i = 0; i < split.size(); i++) {
    if (WriteBatchInternal::Count(&split[i]) == 0) continue;
    DB* shard = shards_[i].get();
    WriteBatch* batch = &split[i];
    const bool submitted = write_pool_->Submit([&, shard, batch] {
      Status ws = shard->Write(options, batch);
      std::lock_guard<std::mutex> l(mu);
      if (first_error.ok() && !ws.ok()) first_error = ws;
      if (--pending == 0) cv.notify_one();
    });
    if (!submitted) {  // pool shut down mid-write (DB closing)
      std::lock_guard<std::mutex> l(mu);
      if (first_error.ok()) {
        first_error = Status::IOError("sharded DB shutting down");
      }
      if (--pending == 0) cv.notify_one();
    }
  }
  std::unique_lock<std::mutex> l(mu);
  cv.wait(l, [&] { return pending == 0; });
  return first_error;
}

ReadOptions ShardedDB::ForShard(const ReadOptions& options, size_t i) const {
  ReadOptions ro = options;
  if (options.snapshot != nullptr) {
    const auto* snap = dynamic_cast<const ShardedSnapshot*>(options.snapshot);
    ro.snapshot = snap != nullptr ? snap->member(i) : nullptr;
  }
  return ro;
}

Status ShardedDB::Get(const ReadOptions& options, const Slice& key,
                      std::string* value) {
  const size_t i = router_->ShardOf(key);
  return shards_[i]->Get(ForShard(options, i), key, value);
}

Iterator* ShardedDB::NewIterator(const ReadOptions& options) {
  std::vector<Iterator*> children;
  children.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); i++) {
    children.push_back(shards_[i]->NewIterator(ForShard(options, i)));
  }
  return new ConcatIterator(router_.get(), std::move(children));
}

const Snapshot* ShardedDB::GetSnapshot() {
  std::vector<const Snapshot*> members;
  members.reserve(shards_.size());
  for (auto& shard : shards_) {
    members.push_back(shard->GetSnapshot());
  }
  return new ShardedSnapshot(std::move(members));
}

void ShardedDB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  const auto* snap = dynamic_cast<const ShardedSnapshot*>(snapshot);
  if (snap == nullptr) return;
  for (size_t i = 0; i < snap->size(); i++) {
    shards_[i]->ReleaseSnapshot(snap->member(i));
  }
  delete snap;
}

bool ShardedDB::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  const std::string prop = property.ToString();

  if (prop == "pipelsm.arbiter") {
    *value = arbiter_ != nullptr ? arbiter_->ToJson() : "{}";
    return true;
  }
  if (prop == "pipelsm.cache" && block_cache_ != nullptr) {
    // Fleet-wide block cache (shard 0's per-shard answer would miss the
    // shared view; table caches stay per shard).
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "{\"block\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
        "\"usage\":%llu,\"capacity\":%llu,\"shards\":%llu}}",
        (unsigned long long)block_cache_->hits(),
        (unsigned long long)block_cache_->misses(),
        (unsigned long long)block_cache_->evictions(),
        (unsigned long long)block_cache_->usage(),
        (unsigned long long)block_cache_->capacity(),
        (unsigned long long)block_cache_->num_shards());
    *value = buf;
    return true;
  }
  if (prop == "pipelsm.shards") {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"num_shards\":%zu,\"arbiter\":%s,",
                  shards_.size(), arbiter_ != nullptr ? "true" : "false");
    *value = buf;
    *value += "\"boundaries\":[";
    const auto& bs = router_->boundaries();
    for (size_t i = 0; i < bs.size(); i++) {
      if (i > 0) *value += ",";
      value->push_back('"');
      AppendJsonEscaped(value, bs[i]);
      value->push_back('"');
    }
    *value += "]}";
    return true;
  }

  // "pipelsm.shard<N>.<rest>" forwards "pipelsm.<rest>" to shard N.
  if (prop.rfind("pipelsm.shard", 0) == 0) {
    const size_t dot = prop.find('.', sizeof("pipelsm.shard") - 1);
    if (dot != std::string::npos) {
      const std::string index_str =
          prop.substr(sizeof("pipelsm.shard") - 1,
                      dot - (sizeof("pipelsm.shard") - 1));
      if (!index_str.empty() &&
          index_str.find_first_not_of("0123456789") == std::string::npos) {
        const size_t i = std::stoul(index_str);
        if (i >= shards_.size()) return false;
        return shards_[i]->GetProperty("pipelsm." + prop.substr(dot + 1),
                                       value);
      }
    }
  }

  // Numeric properties sum across shards.
  if (prop.rfind("pipelsm.num-files-at-level", 0) == 0 ||
      prop == "pipelsm.approximate-memory-usage") {
    uint64_t total = 0;
    for (auto& shard : shards_) {
      std::string v;
      if (!shard->GetProperty(property, &v)) return false;
      total += std::strtoull(v.c_str(), nullptr, 10);
    }
    *value = std::to_string(total);
    return true;
  }

  // JSON payloads become a JSON array, one element per shard. (All
  // shards share one Options, so pipelsm.vlog is all-or-none.)
  if (prop == "pipelsm.metrics" || prop == "pipelsm.advisor" ||
      prop == "pipelsm.scheduler" || prop == "pipelsm.timeseries" ||
      prop == "pipelsm.vlog") {
    *value = "[";
    for (size_t i = 0; i < shards_.size(); i++) {
      std::string v;
      if (!shards_[i]->GetProperty(property, &v)) return false;
      if (i > 0) *value += ",";
      *value += v;
    }
    *value += "]";
    return true;
  }

  if (prop == "pipelsm.stats") {
    for (size_t i = 0; i < shards_.size(); i++) {
      std::string v;
      if (!shards_[i]->GetProperty(property, &v)) return false;
      char header[48];
      std::snprintf(header, sizeof(header), "== shard %zu ==\n", i);
      *value += header;
      *value += v;
      if (!v.empty() && v.back() != '\n') *value += "\n";
    }
    if (arbiter_ != nullptr) {
      *value += "arbiter: " + arbiter_->ToJson() + "\n";
    }
    return true;
  }

  if (prop == "pipelsm.background-error") {
    for (auto& shard : shards_) {
      std::string v;
      if (!shard->GetProperty(property, &v)) return false;
      if (v != "OK") {
        *value = v;
        return true;
      }
    }
    *value = "OK";
    return true;
  }

  // Anything else: recognized iff every shard recognizes it; the first
  // shard's payload is returned (sstables and friends are per-shard —
  // use the pipelsm.shard<N>. prefix for a specific one).
  return shards_[0]->GetProperty(property, value);
}

void ShardedDB::GetApproximateSizes(const Range* range, int n,
                                    uint64_t* sizes) {
  // Each shard holds only its own keys, so per-range sums over all
  // shards are exact (a shard outside the range contributes ~0).
  std::vector<uint64_t> shard_sizes(n);
  for (int i = 0; i < n; i++) sizes[i] = 0;
  for (auto& shard : shards_) {
    shard->GetApproximateSizes(range, n, shard_sizes.data());
    for (int i = 0; i < n; i++) sizes[i] += shard_sizes[i];
  }
}

void ShardedDB::CompactRange(const Slice* begin, const Slice* end) {
  for (auto& shard : shards_) {
    shard->CompactRange(begin, end);
  }
}

Status ShardedDB::CompactValueLog() {
  Status result = Status::OK();
  for (auto& shard : shards_) {
    Status s = shard->CompactValueLog();
    if (result.ok() && !s.ok()) result = s;
  }
  return result;
}

Status ShardedDB::WaitForCompactions() {
  Status result = Status::OK();
  for (auto& shard : shards_) {
    Status s = shard->WaitForCompactions();
    if (result.ok() && !s.ok()) result = s;
  }
  return result;
}

Status ShardedDB::Resume() {
  Status result = Status::OK();
  for (auto& shard : shards_) {
    Status s = shard->Resume();
    if (result.ok() && !s.ok()) result = s;
  }
  return result;
}

CompactionMetrics ShardedDB::GetCompactionMetrics() {
  CompactionMetrics total;
  for (auto& shard : shards_) {
    const CompactionMetrics m = shard->GetCompactionMetrics();
    total.profile.Merge(m.profile);
    total.compactions += m.compactions;
    total.memtable_flushes += m.memtable_flushes;
    total.bytes_read += m.bytes_read;
    total.bytes_written += m.bytes_written;
    total.stall_micros += m.stall_micros;
  }
  return total;
}

obs::MetricsRegistry* ShardedDB::MetricsHandle() { return metrics_.get(); }

obs::Logger* ShardedDB::InfoLogHandle() { return info_log_.get(); }

}  // namespace pipelsm::shard
