// ShardedDB: one logical DB split into N key-range shards, each a full
// engine instance — own memtable, WAL, version set, background thread and
// scheduler profile — under a single DB interface (docs/SHARDING.md).
//
// Layout on disk:
//   <root>/SHARDS        boundary manifest (varint count + length-
//                        prefixed boundary keys); written on first Open,
//                        adopted on reopen, and validated against any
//                        explicitly passed boundaries so a config drift
//                        cannot silently re-route keys.
//   <root>/LOG           fleet-level info log (shard map, arbiter)
//   <root>/shard-0000    first shard's complete DB directory
//   <root>/shard-0001    ...
//
// Routing: ShardRouter maps each user key to exactly one shard
// (boundary keys belong to the shard above). Point ops forward to one
// engine; WriteBatches are split per shard and fanned out in parallel
// (single-shard batches skip the fan-out). Cross-shard batches are NOT
// atomic across shards — each sub-batch commits in its own WAL; a crash
// between sub-commits can persist a prefix of the shards.
//
// Scans: shard ranges are disjoint and ascending, so NewIterator()
// returns a concatenation (not a merge) of the per-shard iterators —
// Seek routes to the owning shard, Next/Prev step across shard seams.
//
// Compaction: every shard shares one CompactionArbiter via
// Options::compaction_governor, so fleet-wide compaction I/O and compute
// stay within ArbiterOptions::budget no matter how many shards want to
// compact at once (the point of this layer; see arbiter.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/db/db.h"
#include "src/read/cache.h"
#include "src/shard/arbiter.h"
#include "src/shard/router.h"
#include "src/util/thread_pool.h"

namespace pipelsm {
namespace obs {
class MetricsRegistry;
}  // namespace obs
}  // namespace pipelsm

namespace pipelsm::shard {

struct ShardedOptions {
  // Number of shards; 1 = a plain DB behind the router (still valid).
  // On reopen, the SHARDS manifest wins; passing a different count is an
  // InvalidArgument.
  size_t num_shards = 1;

  // Explicit boundary keys (num_shards - 1 of them, sorted). Empty with
  // num_shards > 1 is an error on first open — key distribution is
  // workload knowledge the DB cannot guess (see
  // ShardRouter::SplitDecimalKeyspace for bench keyspaces). On reopen,
  // empty means "adopt the manifest".
  std::vector<std::string> boundary_keys;

  // Share one CompactionArbiter across the shards. When false, every
  // shard admits compactions independently (the free-for-all baseline in
  // EXPERIMENTS.md).
  bool enable_arbiter = true;
  ArbiterOptions arbiter;
};

class ShardedDB final : public DB {
 public:
  // Opens (creating if Options::create_if_missing) the shard fleet under
  // `name`. `options` is the per-shard engine configuration; fields that
  // must differ per shard (shard_id, compaction_governor, info_log) are
  // overridden internally. Listeners in options.listeners receive events
  // from EVERY shard (they were already required to be thread-safe).
  static Status Open(const Options& options, const ShardedOptions& sharded,
                     const std::string& name, ShardedDB** dbptr);

  // Destroys every shard directory, the manifest and the root dir.
  static Status Destroy(const std::string& name, const Options& options);

  ~ShardedDB() override;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;

  // Everything DBImpl recognizes, plus (docs/SHARDING.md):
  //   "pipelsm.arbiter"      fleet arbiter JSON ("{}" with arbiter off)
  //   "pipelsm.shards"       shard map JSON (count, boundaries, arbiter)
  //   "pipelsm.shard<N>.<p>" forwards "pipelsm.<p>" to shard N
  // Numeric engine properties (num-files-at-level<N>,
  // approximate-memory-usage) sum across shards; JSON ones (metrics,
  // advisor, scheduler, vlog) return a JSON array with one element per
  // shard; stats concatenates with per-shard headers; background-error
  // reports the first non-OK shard.
  bool GetProperty(const Slice& property, std::string* value) override;
  void GetApproximateSizes(const Range* range, int n,
                           uint64_t* sizes) override;
  void CompactRange(const Slice* begin, const Slice* end) override;
  // Full value-log GC sweep on every shard (first error wins).
  Status CompactValueLog() override;
  Status WaitForCompactions() override;
  Status Resume() override;
  CompactionMetrics GetCompactionMetrics() override;
  obs::MetricsRegistry* MetricsHandle() override;
  obs::Logger* InfoLogHandle() override;

  const ShardRouter& router() const { return *router_; }
  size_t num_shards() const { return shards_.size(); }
  DB* shard(size_t i) { return shards_[i].get(); }
  CompactionArbiter* arbiter() { return arbiter_.get(); }

 private:
  ShardedDB() = default;

  class ShardedSnapshot;
  class ConcatIterator;

  // Translates a fleet snapshot in `options` to shard `i`'s member
  // snapshot (pass-through when no snapshot is set).
  ReadOptions ForShard(const ReadOptions& options, size_t i) const;

  Env* env_ = nullptr;
  std::string name_;
  std::unique_ptr<obs::Logger> info_log_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<ShardRouter> router_;
  // Fleet-wide block cache injected into every member shard's Options;
  // declared before shards_ so it outlives them.
  std::unique_ptr<read::Cache> block_cache_;
  // Order matters: shards_ holds grants into arbiter_ until their last
  // compaction drains, so the arbiter must be destroyed AFTER the shards
  // (members are destroyed in reverse declaration order).
  std::unique_ptr<CompactionArbiter> arbiter_;
  std::vector<std::unique_ptr<DB>> shards_;
  std::unique_ptr<ThreadPool> write_pool_;
};

}  // namespace pipelsm::shard
