// ShardRouter: the key → shard map of a ShardedDB (docs/SHARDING.md).
//
// N shards are separated by N-1 boundary user keys, sorted ascending.
// Shard i owns the half-open range [boundary[i-1], boundary[i]); the
// first shard is unbounded below, the last unbounded above, and a key
// equal to a boundary belongs to the shard ABOVE it (upper-bound
// search). Because the ranges are disjoint and ordered, a scan over the
// whole DB is the plain concatenation of per-shard scans — no heap
// merge needed (see ShardedDB::NewIterator).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/db/write_batch.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm::shard {

class ShardRouter {
 public:
  // `boundaries` must be sorted ascending and duplicate-free; shard
  // count is boundaries.size() + 1. An empty vector is the 1-shard
  // identity router.
  explicit ShardRouter(std::vector<std::string> boundaries);

  size_t num_shards() const { return boundaries_.size() + 1; }
  const std::vector<std::string>& boundaries() const { return boundaries_; }

  // Index of the shard owning `key` (bytewise order).
  size_t ShardOf(const Slice& key) const;

  // Splits `batch` into per-shard batches preserving intra-shard op
  // order. `out` is resized to num_shards(); entries for shards the
  // batch does not touch stay empty (check WriteBatch::Count()). The
  // split preserves per-key ordering exactly: two ops on the same key
  // land in the same shard in their original order.
  Status SplitBatch(const WriteBatch& batch,
                    std::vector<WriteBatch>* out) const;

  // Boundary set that splits the decimal keyspace produced by
  // bench/workload generators — keys are zero-padded decimal renderings
  // of 0..num_keys-1, so byte-uniform boundaries would route everything
  // to shard 0. Boundary i is pad(num_keys * (i+1) / num_shards).
  static std::vector<std::string> SplitDecimalKeyspace(uint64_t num_keys,
                                                       size_t key_size,
                                                       size_t num_shards);

  // Validation used by ShardedDB::Open: sorted, unique, non-empty keys.
  static Status Validate(const std::vector<std::string>& boundaries);

 private:
  const std::vector<std::string> boundaries_;
};

}  // namespace pipelsm::shard
