// CompactionArbiter: fleet-wide compaction admission (docs/SHARDING.md).
//
// One arbiter owns a FleetBudget of I/O lanes and compute workers shared
// by every shard of a ShardedDB. A shard's background thread calls
// Admit() when it wants to compact; the arbiter ranks the waiting jobs
// by the Eqs. 1-7 gain model::PrescribeFleet() predicts for them, grants
// the front-runner an executor + k whose lane/worker cost fits the free
// budget, and blocks the rest. A grant can be SMALLER than the job's
// solo Prescribe() k — that is the arbiter shrinking the job to fit the
// fleet (counted in `shrinks`); the remaining units are effectively
// revoked until Release() frees them.
//
// Starvation-freedom: every time a job is granted, every other waiter's
// passover count rises; a waiter passed over `max_passovers` times is
// force-granted the PCP floor (1 lane + 1 worker) as soon as a floor is
// free, ahead of any higher-gain newcomer. So a long-running big-gain
// job cannot pin a low-gain shard in the queue forever.
//
// Thread-safe; never calls back into a DB (CompactionGovernor contract).
// GetProperty("pipelsm.arbiter") on a ShardedDB renders ToJson().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/compaction/scheduler.h"
#include "src/model/model.h"

namespace pipelsm {
namespace obs {
class Counter;
class Gauge;
class HistogramMetric;
class MetricsRegistry;
}  // namespace obs
}  // namespace pipelsm

namespace pipelsm::shard {

struct ArbiterOptions {
  model::FleetBudget budget;  // io_lanes=4, compute_workers=4

  // Per-job ceilings on granted parallelism (<=0 = only the budget
  // caps). Mirrors Options::max_stripe_width / max_compute_workers.
  int per_job_max_lanes = 4;
  int per_job_max_workers = 4;

  // A stage-parallel upgrade must beat PCP by this ideal factor
  // (Eqs. 5/7) to be worth fleet units.
  double min_gain = 1.1;

  // Force-grant a waiter after it has been passed over this many times.
  int max_passovers = 3;

  // How often a blocked Admit() re-checks its abort predicate.
  uint64_t wait_poll_micros = 10 * 1000;

  // arbiter.* instruments land here (nullable).
  obs::MetricsRegistry* metrics = nullptr;
};

class CompactionArbiter : public CompactionGovernor {
 public:
  explicit CompactionArbiter(const ArbiterOptions& options);
  ~CompactionArbiter() override;

  CompactionArbiter(const CompactionArbiter&) = delete;
  CompactionArbiter& operator=(const CompactionArbiter&) = delete;

  CompactionGrant Admit(const CompactionAdmissionRequest& request,
                        const std::function<bool()>& abort) override;
  void Release(uint64_t grant_id) override;

  // The GetProperty("pipelsm.arbiter") payload: budget, in-use + peak
  // units, running grants (shard/level/procedure/k/lanes/workers),
  // waiting count, grant/shrink/forced totals.
  std::string ToJson() const;

  // Test accessors.
  int lanes_in_use() const;
  int workers_in_use() const;
  int peak_lanes() const;
  int peak_workers() const;
  uint64_t grants() const;
  uint64_t shrinks() const;
  uint64_t forced_grants() const;
  size_t waiting() const;
  const model::FleetBudget& budget() const { return opts_.budget; }

 private:
  struct Waiter {
    uint64_t seq = 0;             // FIFO tiebreak
    CompactionAdmissionRequest request;
    double solo_gain = 1.0;       // Prescribe() gain at per-job caps
    int passovers = 0;
  };
  struct Grant {
    int shard_id = -1;
    int level = 0;
    int lanes = 1;
    int workers = 1;
    CompactionMode mode = CompactionMode::kPCP;
    int k = 1;
  };

  // REQUIRES: mu_ held. True iff `w` is the waiter the policy would pick
  // next AND a floor is free.
  bool EligibleLocked(const Waiter& w) const;
  // REQUIRES: mu_ held. The waiter the ranking picks first, or nullptr.
  const Waiter* FrontLocked() const;
  // REQUIRES: mu_ held. Builds the grant for `w` with the free budget.
  CompactionGrant GrantLocked(const Waiter& w);

  const ArbiterOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Waiter> waiters_;   // keyed by seq
  std::map<uint64_t, Grant> running_;    // keyed by grant id
  uint64_t next_seq_ = 1;
  uint64_t next_grant_id_ = 1;
  int lanes_in_use_ = 0;
  int workers_in_use_ = 0;
  int peak_lanes_ = 0;
  int peak_workers_ = 0;
  uint64_t grants_ = 0;
  uint64_t shrinks_ = 0;
  uint64_t forced_grants_ = 0;

  obs::Gauge* lanes_gauge_ = nullptr;
  obs::Gauge* workers_gauge_ = nullptr;
  obs::Gauge* waiting_gauge_ = nullptr;
  obs::Counter* grants_counter_ = nullptr;
  obs::Counter* shrinks_counter_ = nullptr;
  obs::Counter* forced_counter_ = nullptr;
  obs::HistogramMetric* wait_micros_ = nullptr;
};

}  // namespace pipelsm::shard
