#include "src/vlog/vlog.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <sstream>

#include "src/db/filename.h"
#include "src/obs/logger.h"
#include "src/obs/metrics.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace pipelsm {
namespace vlog {

namespace {

// fixed32 crc + up-to-5-byte varints for klen/vlen.
constexpr size_t kFrameHeaderMax = 4 + 5 + 5;
constexpr size_t kFrameMin = 4 + 1 + 1;  // crc + two zero-length varints

// Decode one frame starting at `input` (which must hold the full
// remainder of the segment's valid region). On success sets *key,
// *value, *frame_len and returns true; a short or CRC-corrupt frame
// returns false.
bool DecodeFrame(const Slice& input, Slice* key, Slice* value,
                 uint64_t* frame_len) {
  if (input.size() < kFrameMin) return false;
  const char* base = input.data();
  uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(base));
  const char* p = base + 4;
  const char* limit = base + input.size();
  uint32_t klen = 0;
  uint32_t vlen = 0;
  p = GetVarint32Ptr(p, limit, &klen);
  if (p == nullptr) return false;
  p = GetVarint32Ptr(p, limit, &vlen);
  if (p == nullptr) return false;
  if (static_cast<uint64_t>(limit - p) <
      static_cast<uint64_t>(klen) + static_cast<uint64_t>(vlen)) {
    return false;
  }
  const char* payload = base + 4;
  const size_t payload_len = static_cast<size_t>(p - payload) + klen + vlen;
  if (crc32c::Value(payload, payload_len) != expected_crc) return false;
  *key = Slice(p, klen);
  *value = Slice(p + klen, vlen);
  *frame_len = 4 + payload_len;
  return true;
}

void EncodeFrame(std::string* dst, const Slice& key, const Slice& value) {
  dst->clear();
  dst->reserve(kFrameHeaderMax + key.size() + value.size());
  dst->append(4, '\0');  // crc placeholder
  PutVarint32(dst, static_cast<uint32_t>(key.size()));
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(key.data(), key.size());
  dst->append(value.data(), value.size());
  const uint32_t crc = crc32c::Value(dst->data() + 4, dst->size() - 4);
  EncodeFixed32(dst->data(), crc32c::Mask(crc));
}

}  // namespace

void EncodeValueLocation(std::string* dst, const ValueLocation& loc) {
  PutFixed64(dst, loc.segment);
  PutFixed64(dst, loc.offset);
  PutFixed32(dst, loc.length);
}

bool DecodeValueLocation(const Slice& src, ValueLocation* loc) {
  if (src.size() != kValueLocationSize) return false;
  loc->segment = DecodeFixed64(src.data());
  loc->offset = DecodeFixed64(src.data() + 8);
  loc->length = DecodeFixed32(src.data() + 16);
  return true;
}

VlogManager::VlogManager(Env* env, const std::string& dbname,
                         const VlogOptions& options,
                         obs::MetricsRegistry* metrics, obs::Logger* info_log,
                         std::function<uint64_t()> file_number_allocator)
    : env_(env),
      dbname_(dbname),
      opts_(options),
      info_log_(info_log),
      next_file_number_(std::move(file_number_allocator)) {
  if (metrics != nullptr) {
    appends_counter_ =
        metrics->RegisterCounter("vlog.appends", "Value frames appended");
    append_bytes_counter_ = metrics->RegisterCounter(
        "vlog.append_bytes", "Frame bytes appended to the value log");
    resolves_counter_ = metrics->RegisterCounter(
        "vlog.resolves", "Value pointers resolved on the read path");
    resolve_error_counter_ = metrics->RegisterCounter(
        "vlog.resolve_errors", "Pointer resolutions that failed");
    rolls_counter_ = metrics->RegisterCounter(
        "vlog.segments_rolled", "Active segments sealed and replaced");
    gc_runs_counter_ =
        metrics->RegisterCounter("vlog.gc_runs", "Completed GC passes");
    gc_rewritten_counter_ = metrics->RegisterCounter(
        "vlog.gc_bytes_rewritten", "Live frame bytes GC rewrote");
    gc_reclaimed_counter_ = metrics->RegisterCounter(
        "vlog.gc_bytes_reclaimed", "Segment bytes GC retired");
    retired_counter_ = metrics->RegisterCounter(
        "vlog.segments_retired", "Segments retired and deleted by GC");
    segments_gauge_ =
        metrics->RegisterGauge("vlog.segments", "Live segment files");
    dead_bytes_gauge_ = metrics->RegisterGauge(
        "vlog.dead_bytes", "Bytes known dead across sealed segments");
    live_bytes_gauge_ = metrics->RegisterGauge(
        "vlog.bytes", "Total valid frame bytes across segments");
    pending_retire_gauge_ = metrics->RegisterGauge(
        "vlog.pending_retire", "Retired segments awaiting reader drain");
  }
}

VlogManager::~VlogManager() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_file_ != nullptr) {
    active_file_->Sync();
    active_file_->Close();
    active_file_.reset();
  }
}

Status VlogManager::Recover(uint64_t* max_recovered) {
  *max_recovered = 0;
  std::vector<std::string> children;
  Status s = env_->GetChildren(dbname_, &children);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type) || type != kVlogFile) continue;
    const std::string path = VlogFileName(dbname_, number);
    std::string contents;
    s = ReadFileToString(env_, path, &contents);
    if (!s.ok()) return s;
    // Find the end of the last whole frame.
    uint64_t valid = 0;
    Slice rest(contents);
    Slice key, value;
    uint64_t frame_len = 0;
    while (DecodeFrame(rest, &key, &value, &frame_len)) {
      valid += frame_len;
      rest.remove_prefix(frame_len);
    }
    if (valid == 0) {
      // Empty or all-garbage: nothing a committed pointer could
      // reference (pointers only commit after a successful sync).
      env_->RemoveFile(path);
      obs::Log(info_log_, "EVENT vlog_segment_dropped segment=%llu bytes=%llu",
               (unsigned long long)number,
               (unsigned long long)contents.size());
      continue;
    }
    if (valid < contents.size()) {
      // Torn tail (crash mid-append): rewrite the valid prefix through a
      // synced temp file + atomic rename. The Env has no truncate.
      const std::string tmp = TempFileName(dbname_, number);
      s = WriteStringToFile(env_, Slice(contents.data(), valid), tmp, true);
      if (s.ok()) s = env_->RenameFile(tmp, path);
      if (s.ok()) s = env_->SyncDir(dbname_);
      if (!s.ok()) {
        env_->RemoveFile(tmp);
        return s;
      }
      obs::Log(info_log_,
               "EVENT vlog_segment_truncated segment=%llu from=%llu to=%llu",
               (unsigned long long)number, (unsigned long long)contents.size(),
               (unsigned long long)valid);
    }
    SegmentInfo info;
    info.size = valid;
    info.state = SegmentState::kSealed;
    segments_[number] = info;
    *max_recovered = std::max(*max_recovered, number);
  }
  UpdateGaugesLocked();
  return Status::OK();
}

Status VlogManager::OpenActive(uint64_t number) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(active_file_ == nullptr);
  Status s = env_->NewWritableFile(VlogFileName(dbname_, number), &active_file_);
  if (!s.ok()) return s;
  active_number_ = number;
  active_size_ = 0;
  active_poisoned_ = false;
  SegmentInfo info;
  info.state = SegmentState::kActive;
  segments_[number] = info;
  UpdateGaugesLocked();
  return Status::OK();
}

Status VlogManager::RollActiveLocked() {
  // Seal the current active segment at its synced size and open a fresh
  // one. Called with data already appended (or the segment poisoned).
  Status s;
  if (active_file_ != nullptr) {
    s = active_file_->Sync();
    if (s.ok()) s = active_file_->Close();
    active_file_.reset();
    auto it = segments_.find(active_number_);
    if (it != segments_.end()) {
      // active_size_ only counts successful appends; committed pointers
      // can only reference frames that were also synced, so sealing a
      // poisoned segment at this size at worst over-counts dead bytes.
      it->second.size = active_size_;
      it->second.state = SegmentState::kSealed;
    }
    unsynced_ = false;
  }
  const uint64_t number = next_file_number_();
  std::unique_ptr<WritableFile> file;
  Status open_s = env_->NewWritableFile(VlogFileName(dbname_, number), &file);
  if (!open_s.ok()) return s.ok() ? open_s : s;
  active_file_ = std::move(file);
  active_number_ = number;
  active_size_ = 0;
  active_poisoned_ = false;
  SegmentInfo info;
  info.state = SegmentState::kActive;
  segments_[number] = info;
  if (rolls_counter_ != nullptr) rolls_counter_->Add(1);
  obs::Log(info_log_, "EVENT vlog_segment_rolled segment=%llu",
           (unsigned long long)number);
  RecomputeGcFlagLocked();
  UpdateGaugesLocked();
  return s;
}

Status VlogManager::Add(const Slice& key, const Slice& value,
                        ValueLocation* loc) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_file_ == nullptr) {
    return Status::IOError("value log not open");
  }
  EncodeFrame(&frame_scratch_, key, value);
  if (active_poisoned_ ||
      (active_size_ > 0 &&
       active_size_ + frame_scratch_.size() > opts_.segment_size)) {
    Status rs = RollActiveLocked();
    if (!rs.ok() && active_file_ == nullptr) return rs;
  }
  Status s = active_file_->Append(frame_scratch_);
  if (!s.ok()) {
    // The tail of the file is now suspect; never hand out locations past
    // this point in this segment.
    active_poisoned_ = true;
    return s;
  }
  loc->segment = active_number_;
  loc->offset = active_size_;
  loc->length = static_cast<uint32_t>(frame_scratch_.size());
  active_size_ += frame_scratch_.size();
  unsynced_ = true;
  segments_[active_number_].append_pending++;
  if (appends_counter_ != nullptr) appends_counter_->Add(1);
  if (append_bytes_counter_ != nullptr)
    append_bytes_counter_->Add(frame_scratch_.size());
  // Keep vlog.bytes tracking the active segment between rolls; the
  // segment count stays small, so the walk is cheap.
  UpdateGaugesLocked();
  return Status::OK();
}

Status VlogManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_file_ == nullptr || !unsynced_) return Status::OK();
  Status s = active_file_->Sync();
  if (!s.ok()) {
    active_poisoned_ = true;
    return s;
  }
  unsynced_ = false;
  return Status::OK();
}

void VlogManager::ReleaseAppends(const std::vector<uint64_t>& segment_numbers) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t number : segment_numbers) {
    auto it = segments_.find(number);
    if (it != segments_.end() && it->second.append_pending > 0) {
      it->second.append_pending--;
    }
  }
}

Status VlogManager::EnsureReadableLocked(
    uint64_t segment, std::shared_ptr<RandomAccessFile>* file) {
  auto rit = readers_.find(segment);
  if (rit != readers_.end()) {
    *file = rit->second;
    return Status::OK();
  }
  if (segments_.find(segment) == segments_.end()) {
    return Status::NotFound("unknown vlog segment");
  }
  if (segment == active_number_ && active_file_ != nullptr) {
    // The writable handle may hold user-space-buffered bytes a separate
    // read handle cannot see yet.
    Status fs = active_file_->Flush();
    if (!fs.ok()) return fs;
  }
  std::unique_ptr<RandomAccessFile> raw;
  Status s = env_->NewRandomAccessFile(VlogFileName(dbname_, segment), &raw);
  if (!s.ok()) return s;
  std::shared_ptr<RandomAccessFile> shared(raw.release());
  readers_[segment] = shared;
  *file = shared;
  return Status::OK();
}

Status VlogManager::Read(const ValueLocation& loc, std::string* value) {
  std::shared_ptr<RandomAccessFile> file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status s = EnsureReadableLocked(loc.segment, &file);
    if (!s.ok()) {
      if (resolve_error_counter_ != nullptr) resolve_error_counter_->Add(1);
      return s;
    }
    if (loc.segment == active_number_ && active_file_ != nullptr) {
      // Re-flush in case frames were appended after the reader was
      // cached; sealed segments never grow.
      Status fs = active_file_->Flush();
      if (!fs.ok()) return fs;
    }
  }
  if (loc.length < kFrameMin) {
    if (resolve_error_counter_ != nullptr) resolve_error_counter_->Add(1);
    return Status::Corruption("value location length too small");
  }
  std::string scratch(loc.length, '\0');
  Slice frame;
  Status s = file->Read(loc.offset, loc.length, &frame, scratch.data());
  if (s.ok() && frame.size() != loc.length) {
    s = Status::Corruption("short value log read");
  }
  Slice key, val;
  uint64_t frame_len = 0;
  if (s.ok() &&
      (!DecodeFrame(frame, &key, &val, &frame_len) || frame_len != loc.length)) {
    s = Status::Corruption("corrupt value log frame");
  }
  if (!s.ok()) {
    if (resolve_error_counter_ != nullptr) resolve_error_counter_->Add(1);
    return s;
  }
  value->assign(val.data(), val.size());
  if (resolves_counter_ != nullptr) resolves_counter_->Add(1);
  return Status::OK();
}

void VlogManager::CreditDiscard(const Slice& encoded_location) {
  ValueLocation loc;
  if (!DecodeValueLocation(encoded_location, &loc)) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(loc.segment);
  if (it == segments_.end()) return;
  it->second.dead += loc.length;
  if (it->second.dead > it->second.size &&
      it->second.state != SegmentState::kActive) {
    it->second.dead = it->second.size;
  }
  RecomputeGcFlagLocked();
  UpdateGaugesLocked();
}

void VlogManager::RecomputeGcFlagLocked() {
  bool needs = false;
  for (const auto& [number, info] : segments_) {
    if (info.state != SegmentState::kSealed || info.size == 0) continue;
    if (static_cast<double>(info.dead) >=
        opts_.gc_dead_ratio * static_cast<double>(info.size)) {
      needs = true;
      break;
    }
  }
  needs_gc_.store(needs, std::memory_order_release);
}

void VlogManager::UpdateGaugesLocked() {
  if (segments_gauge_ == nullptr) return;
  int64_t total = 0;
  int64_t dead = 0;
  int64_t pending = 0;
  for (const auto& [number, info] : segments_) {
    if (info.state == SegmentState::kRetiring) {
      pending++;
      continue;
    }
    total += static_cast<int64_t>(number == active_number_ ? active_size_
                                                           : info.size);
    dead += static_cast<int64_t>(info.dead);
  }
  segments_gauge_->Set(static_cast<int64_t>(segments_.size()) - pending);
  dead_bytes_gauge_->Set(dead);
  live_bytes_gauge_->Set(total);
  pending_retire_gauge_->Set(pending);
}

bool VlogManager::PickGcSegment(uint64_t* segment) {
  std::lock_guard<std::mutex> lock(mu_);
  double best_ratio = 0;
  bool found = false;
  for (const auto& [number, info] : segments_) {
    if (info.state != SegmentState::kSealed || info.size == 0 ||
        info.append_pending > 0) {
      continue;
    }
    const double ratio =
        static_cast<double>(info.dead) / static_cast<double>(info.size);
    if (ratio >= opts_.gc_dead_ratio && ratio >= best_ratio) {
      best_ratio = ratio;
      *segment = number;
      found = true;
    }
  }
  return found;
}

std::vector<uint64_t> VlogManager::SealedSegments() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> result;
  for (const auto& [number, info] : segments_) {
    if (info.state == SegmentState::kSealed) result.push_back(number);
  }
  return result;
}

Status VlogManager::RollActive() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_file_ == nullptr) return Status::OK();
  if (active_size_ == 0 && !active_poisoned_) return Status::OK();
  return RollActiveLocked();
}

bool VlogManager::BeginGc(uint64_t segment) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(segment);
  if (it == segments_.end() || it->second.state != SegmentState::kSealed ||
      it->second.append_pending > 0) {
    return false;
  }
  it->second.state = SegmentState::kGcInProgress;
  return true;
}

Status VlogManager::ScanSegment(
    uint64_t segment,
    const std::function<Status(const Slice& key, const Slice& value,
                               const ValueLocation& loc)>& cb) {
  uint64_t limit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = segments_.find(segment);
    if (it == segments_.end()) return Status::NotFound("unknown vlog segment");
    limit = it->second.size;
  }
  std::string contents;
  Status s = ReadFileToString(env_, VlogFileName(dbname_, segment), &contents);
  if (!s.ok()) return s;
  if (contents.size() < limit) {
    return Status::Corruption("vlog segment shorter than sealed size");
  }
  Slice rest(contents.data(), limit);
  uint64_t offset = 0;
  while (!rest.empty()) {
    Slice key, value;
    uint64_t frame_len = 0;
    if (!DecodeFrame(rest, &key, &value, &frame_len)) {
      return Status::Corruption("corrupt frame in sealed vlog segment");
    }
    ValueLocation loc;
    loc.segment = segment;
    loc.offset = offset;
    loc.length = static_cast<uint32_t>(frame_len);
    s = cb(key, value, loc);
    if (!s.ok()) return s;
    offset += frame_len;
    rest.remove_prefix(frame_len);
  }
  return Status::OK();
}

void VlogManager::FinishGc(uint64_t segment, bool retire,
                           SequenceNumber retire_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(segment);
  if (it == segments_.end()) return;
  assert(it->second.state == SegmentState::kGcInProgress);
  if (retire) {
    it->second.state = SegmentState::kRetiring;
    it->second.retire_seq = retire_seq;
    gc_runs_.fetch_add(1, std::memory_order_relaxed);
    if (gc_runs_counter_ != nullptr) gc_runs_counter_->Add(1);
    if (gc_reclaimed_counter_ != nullptr)
      gc_reclaimed_counter_->Add(it->second.size);
  } else {
    it->second.state = SegmentState::kSealed;
  }
  RecomputeGcFlagLocked();
  UpdateGaugesLocked();
}

void VlogManager::SweepRetired(SequenceNumber min_pinned) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->second.state == SegmentState::kRetiring &&
        it->second.retire_seq <= min_pinned) {
      const uint64_t number = it->first;
      readers_.erase(number);  // in-flight reads keep their shared_ptr
      env_->RemoveFile(VlogFileName(dbname_, number));
      obs::Log(info_log_,
               "EVENT vlog_segment_retired segment=%llu bytes=%llu",
               (unsigned long long)number,
               (unsigned long long)it->second.size);
      retired_count_.fetch_add(1, std::memory_order_relaxed);
      if (retired_counter_ != nullptr) retired_counter_->Add(1);
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
  UpdateGaugesLocked();
}

std::string VlogManager::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"active_segment\":" << active_number_
      << ",\"active_bytes\":" << active_size_ << ",\"gc_runs\":"
      << gc_runs_.load(std::memory_order_relaxed) << ",\"segments_retired\":"
      << retired_count_.load(std::memory_order_relaxed) << ",\"segments\":[";
  bool first = true;
  for (const auto& [number, info] : segments_) {
    if (!first) out << ",";
    first = false;
    const char* state = "sealed";
    switch (info.state) {
      case SegmentState::kActive:
        state = "active";
        break;
      case SegmentState::kSealed:
        state = "sealed";
        break;
      case SegmentState::kGcInProgress:
        state = "gc";
        break;
      case SegmentState::kRetiring:
        state = "retiring";
        break;
    }
    out << "{\"number\":" << number << ",\"bytes\":"
        << (number == active_number_ ? active_size_ : info.size)
        << ",\"dead_bytes\":" << info.dead << ",\"state\":\"" << state
        << "\"}";
  }
  out << "]}";
  return out.str();
}

uint64_t VlogManager::active_segment() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_number_;
}

size_t VlogManager::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [number, info] : segments_) {
    if (info.state != SegmentState::kRetiring) n++;
  }
  return n;
}

size_t VlogManager::pending_retire_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [number, info] : segments_) {
    if (info.state == SegmentState::kRetiring) n++;
  }
  return n;
}

uint64_t VlogManager::dead_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [number, info] : segments_) {
    if (info.state != SegmentState::kRetiring) n += info.dead;
  }
  return n;
}

}  // namespace vlog
}  // namespace pipelsm
