// Value log for key-value separation (WiscKey-style, docs/VALUE_LOG.md).
//
// Values >= Options::value_separation_threshold live in append-only,
// CRC-framed segment files (<number>.vlog); the LSM stores a fixed-size
// ValueLocation pointer (kTypeValuePointer entries) instead, so
// compaction moves 20 bytes per large value instead of the value bytes.
//
// Frame format at `offset` inside a segment:
//   crc32c  fixed32   masked CRC of everything after this field
//   klen    varint32
//   vlen    varint32
//   key     klen bytes   (kept so GC can consult the LSM for liveness)
//   value   vlen bytes
//
// Durability contract: the caller appends and Sync()s the value frames
// of a write group BEFORE committing the pointer records to the WAL, so
// a WAL-durable pointer always references a vlog-durable frame; a crash
// can only orphan frames (dead bytes GC reclaims), never dangle a
// pointer.
//
// Locking: VlogManager has one internal mutex. Its file-number allocator
// callback may take the DB mutex, so code holding the DB mutex must
// never call into VlogManager (lock order: vlog mutex -> DB mutex).
// NeedsGc() is lock-free for that reason.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/db/dbformat.h"
#include "src/env/env.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace pipelsm {

namespace obs {
class Counter;
class Gauge;
class Logger;
class MetricsRegistry;
}  // namespace obs

namespace vlog {

// Fixed-size pointer stored as the LSM "value" of a kTypeValuePointer
// entry: which segment, where in it, and how long the frame is.
struct ValueLocation {
  uint64_t segment = 0;  // vlog file number
  uint64_t offset = 0;   // frame start within the segment
  uint32_t length = 0;   // full frame length in bytes

  bool operator==(const ValueLocation& o) const {
    return segment == o.segment && offset == o.offset && length == o.length;
  }
};

static const size_t kValueLocationSize = 20;  // fixed64 + fixed64 + fixed32

void EncodeValueLocation(std::string* dst, const ValueLocation& loc);
bool DecodeValueLocation(const Slice& src, ValueLocation* loc);

struct VlogOptions {
  // Roll the active segment once an append pushes it past this size.
  size_t segment_size = 32 * 1024 * 1024;
  // A sealed segment becomes a GC candidate at this dead-byte fraction.
  double gc_dead_ratio = 0.5;
};

class VlogManager {
 public:
  // `file_number_allocator` hands out fresh file numbers from the DB's
  // shared counter (it may lock the DB mutex — see the lock-order note
  // above). `metrics` and `info_log` may be null.
  VlogManager(Env* env, const std::string& dbname, const VlogOptions& options,
              obs::MetricsRegistry* metrics, obs::Logger* info_log,
              std::function<uint64_t()> file_number_allocator);
  ~VlogManager();

  VlogManager(const VlogManager&) = delete;
  VlogManager& operator=(const VlogManager&) = delete;

  // Scan the DB directory for *.vlog files: remove empty/garbage ones,
  // truncate torn tails back to the last whole frame (copy + atomic
  // rename — the Env has no truncate), and seal the survivors. Sets
  // *max_recovered to the largest segment number seen (0 if none). Call
  // OpenActive() next with a number above *max_recovered.
  Status Recover(uint64_t* max_recovered);

  // Create the initial active segment. Called once, after Recover().
  Status OpenActive(uint64_t number);

  // Append one value frame to the active segment (rolling it first when
  // full) and return its location. The frame is NOT durable until
  // Sync(). Also marks the frame's segment append-pending — the caller
  // must hand every returned location's segment back via
  // ReleaseAppends() once the pointer commit finished (or failed), or
  // GC will skip the segment forever.
  Status Add(const Slice& key, const Slice& value, ValueLocation* loc);

  // Make every appended frame durable (fsync of the active segment).
  Status Sync();

  // Drop the append-pending marks taken by Add() for these segments
  // (one entry per Add, in any order).
  void ReleaseAppends(const std::vector<uint64_t>& segments);

  // Resolve a pointer: read + CRC-verify the frame, store the value.
  Status Read(const ValueLocation& loc, std::string* value);

  // Credit discard statistics from a compaction-dropped pointer entry
  // (raw encoded ValueLocation bytes). Unknown segments are ignored.
  void CreditDiscard(const Slice& encoded_location);

  // Lock-free: does some sealed segment cross the GC dead ratio?
  bool NeedsGc() const {
    return needs_gc_.load(std::memory_order_acquire);
  }

  // Highest-dead-ratio sealed segment eligible for GC (not append-
  // pending, not already being collected). False if none qualifies.
  bool PickGcSegment(uint64_t* segment);

  // Every sealed (non-retired) segment, for forced full sweeps.
  std::vector<uint64_t> SealedSegments() const;

  // Seal the current active segment (if it holds any data) and open a
  // fresh one, so its bytes become collectable.
  Status RollActive();

  // Claim `segment` for one GC pass. False if it is not sealed, still
  // append-pending, or already claimed.
  bool BeginGc(uint64_t segment);

  // Sequentially decode every frame of a sealed segment. The callback's
  // non-OK status aborts the scan and is returned.
  Status ScanSegment(
      uint64_t segment,
      const std::function<Status(const Slice& key, const Slice& value,
                                 const ValueLocation& loc)>& cb);

  // End a GC pass. retire=true moves the segment to the pending-retire
  // list; its file is physically deleted by SweepRetired() once no
  // reader pinned at or below `retire_seq` remains. retire=false just
  // releases the claim.
  void FinishGc(uint64_t segment, bool retire, SequenceNumber retire_seq);

  // Delete retired segments whose retire sequence is <= min_pinned
  // (pass kMaxSequenceNumber when nothing is pinned).
  void SweepRetired(SequenceNumber min_pinned);

  // The pipelsm.vlog property payload.
  std::string ToJson() const;

  // Introspection for tests / stats.
  uint64_t active_segment() const;
  size_t segment_count() const;       // sealed + active (not yet retired)
  size_t pending_retire_count() const;
  uint64_t dead_bytes() const;
  uint64_t gc_runs() const { return gc_runs_.load(std::memory_order_relaxed); }
  uint64_t segments_retired() const {
    return retired_count_.load(std::memory_order_relaxed);
  }

 private:
  enum class SegmentState { kActive, kSealed, kGcInProgress, kRetiring };

  struct SegmentInfo {
    uint64_t size = 0;       // valid frame bytes
    uint64_t dead = 0;       // bytes credited dead by discard stats
    int append_pending = 0;  // Add()s whose pointer commit is in flight
    SegmentState state = SegmentState::kSealed;
    SequenceNumber retire_seq = 0;
  };

  Status RollActiveLocked() /* REQUIRES: mu_ */;
  Status EnsureReadableLocked(uint64_t segment,
                              std::shared_ptr<RandomAccessFile>* file)
      /* REQUIRES: mu_ */;
  void RecomputeGcFlagLocked() /* REQUIRES: mu_ */;
  void UpdateGaugesLocked() /* REQUIRES: mu_ */;

  Env* const env_;
  const std::string dbname_;
  const VlogOptions opts_;
  obs::Logger* const info_log_;
  const std::function<uint64_t()> next_file_number_;

  mutable std::mutex mu_;
  std::map<uint64_t, SegmentInfo> segments_;  // every known segment
  uint64_t active_number_ = 0;
  std::unique_ptr<WritableFile> active_file_;
  uint64_t active_size_ = 0;
  bool active_poisoned_ = false;  // a failed append/sync: roll before reuse
  bool unsynced_ = false;
  std::map<uint64_t, std::shared_ptr<RandomAccessFile>> readers_;
  std::string frame_scratch_;  // append encoding buffer (guarded by mu_)

  std::atomic<bool> needs_gc_{false};
  std::atomic<uint64_t> gc_runs_{0};
  std::atomic<uint64_t> retired_count_{0};

  // Metrics (null when no registry was given).
  obs::Counter* appends_counter_ = nullptr;
  obs::Counter* append_bytes_counter_ = nullptr;
  obs::Counter* resolves_counter_ = nullptr;
  obs::Counter* resolve_error_counter_ = nullptr;
  obs::Counter* rolls_counter_ = nullptr;
  obs::Counter* gc_runs_counter_ = nullptr;
  obs::Counter* gc_rewritten_counter_ = nullptr;
  obs::Counter* gc_reclaimed_counter_ = nullptr;
  obs::Counter* retired_counter_ = nullptr;
  obs::Gauge* segments_gauge_ = nullptr;
  obs::Gauge* dead_bytes_gauge_ = nullptr;
  obs::Gauge* live_bytes_gauge_ = nullptr;
  obs::Gauge* pending_retire_gauge_ = nullptr;
};

}  // namespace vlog
}  // namespace pipelsm
