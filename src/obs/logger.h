// Logger: the DB's info log (the `LOG` file in the DB directory).
//
// Unlike the process-wide PIPELSM_LOG_* stderr logger (util/logging.h),
// this one is per-DB and Env-backed: on a SimEnv the LOG lands in the
// simulated filesystem alongside the SSTables it describes; on the posix
// Env it is a real file an operator can tail. DBImpl auto-creates one
// under the DB dir (rotating the previous run's to LOG.old) unless
// Options::info_log supplies a custom sink.
//
// Line format (docs/OBSERVABILITY.md "Info log"):
//   <micros-since-open> <message>
// where structured events use one-line `EVENT <name> key=value ...`
// messages so the file stays grep/awk-able.
#pragma once

#include <cstdarg>
#include <memory>
#include <mutex>
#include <string>

#include "src/env/env.h"
#include "src/util/status.h"

namespace pipelsm::obs {

class Logger {
 public:
  virtual ~Logger();

  // Writes one log line (a '\n' is appended if missing). Thread-safe.
  virtual void Logv(const char* format, std::va_list ap) = 0;
};

// printf-style frontend; a null logger drops the message, so call sites
// stay unconditional.
void Log(Logger* logger, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

// Logger writing through an Env WritableFile, each line stamped with the
// microseconds since the logger was created. Flushes after every line so
// a crashed process still leaves a complete LOG.
Status NewFileLogger(Env* env, const std::string& fname,
                     std::unique_ptr<Logger>* result);

}  // namespace pipelsm::obs
