// Helpers that publish one compaction run's pipeline telemetry into a
// MetricsRegistry under the canonical names (docs/OBSERVABILITY.md is the
// reference for every name emitted here). Shared by the SCP and
// pipelined executors so `pipelsm.metrics` looks the same whichever
// procedure ran.
#pragma once

#include <string>

#include "src/obs/metrics.h"
#include "src/util/stopwatch.h"

namespace pipelsm::obs {

// compaction.step.<S1.read .. S7.write>.{nanos,bytes} plus the run
// totals. Counters accumulate across runs (registration is idempotent).
inline void AddStepMetrics(MetricsRegistry* metrics,
                           const StepProfile& profile) {
  if (metrics == nullptr) return;
  metrics->RegisterCounter("compaction.runs", "major compactions executed")
      ->Add(1);
  metrics->RegisterCounter("compaction.subtasks", "sub-tasks processed")
      ->Add(profile.subtasks);
  metrics
      ->RegisterCounter("compaction.wall_nanos",
                        "end-to-end compaction wall time")
      ->Add(profile.wall_nanos);
  metrics
      ->RegisterCounter("compaction.input_bytes",
                        "compressed bytes read by compactions")
      ->Add(profile.input_bytes);
  metrics
      ->RegisterCounter("compaction.output_bytes",
                        "raw bytes produced by compactions")
      ->Add(profile.output_bytes);
  for (int i = 0; i < kNumSteps; i++) {
    const std::string base =
        std::string("compaction.step.") +
        CompactionStepName(static_cast<CompactionStep>(i));
    metrics->RegisterCounter(base + ".nanos", "time spent in this step")
        ->Add(profile.nanos[i]);
    metrics->RegisterCounter(base + ".bytes", "bytes through this step")
        ->Add(profile.bytes[i]);
  }
}

// compaction.queue.<name>.{push_stall_nanos,pop_stall_nanos,push_stalls,
// pop_stalls,depth_highwater} for one inter-stage queue. Takes the
// BoundedQueue<T>::Stats snapshot (templated because Stats is a nested
// type of the queue template).
template <typename QueueStats>
inline void AddQueueMetrics(MetricsRegistry* metrics,
                            const std::string& queue_name,
                            const QueueStats& stats) {
  if (metrics == nullptr) return;
  const std::string base = "compaction.queue." + queue_name;
  metrics
      ->RegisterCounter(base + ".push_stall_nanos",
                        "producer time blocked on a full queue "
                        "(downstream stage is the bottleneck)")
      ->Add(stats.push_stall_nanos);
  metrics
      ->RegisterCounter(base + ".pop_stall_nanos",
                        "consumer time blocked on an empty queue "
                        "(upstream stage is the bottleneck)")
      ->Add(stats.pop_stall_nanos);
  metrics->RegisterCounter(base + ".push_stalls", "Push calls that blocked")
      ->Add(stats.push_stalls);
  metrics->RegisterCounter(base + ".pop_stalls", "Pop calls that blocked")
      ->Add(stats.pop_stalls);
  metrics
      ->RegisterGauge(base + ".depth_highwater",
                      "max items queued at once (== depth: queue was the "
                      "backpressure point)")
      ->UpdateMax(static_cast<int64_t>(stats.depth_highwater));
}

}  // namespace pipelsm::obs
