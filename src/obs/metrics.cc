#include "src/obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace pipelsm::obs {

namespace {

// Metric names are dotted identifiers and help strings are plain ASCII,
// but escape defensively so the JSON stays loadable whatever callers pass.
void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kCounter) return nullptr;
    return &counters_[it->second.index];
  }
  counters_.emplace_back();
  entries_.emplace(name, Entry{Kind::kCounter, counters_.size() - 1, help});
  return &counters_.back();
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kGauge) return nullptr;
    return &gauges_[it->second.index];
  }
  gauges_.emplace_back();
  entries_.emplace(name, Entry{Kind::kGauge, gauges_.size() - 1, help});
  return &gauges_.back();
}

HistogramMetric* MetricsRegistry::RegisterHistogram(const std::string& name,
                                                    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kHistogram) return nullptr;
    return &histograms_[it->second.index];
  }
  histograms_.emplace_back();
  entries_.emplace(name, Entry{Kind::kHistogram, histograms_.size() - 1, help});
  return &histograms_.back();
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[160];
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", name.c_str(),
                      counters_[entry.index].value());
        out.append(buf);
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "%s %" PRId64 "\n", name.c_str(),
                      gauges_[entry.index].value());
        out.append(buf);
        break;
      case Kind::kHistogram: {
        const Histogram h = histograms_[entry.index].Snapshot();
        std::snprintf(buf, sizeof(buf),
                      "%s count=%.0f avg=%.1f p50=%.1f p95=%.1f p99=%.1f "
                      "max=%.1f\n",
                      name.c_str(), h.Num(), h.Average(), h.Median(),
                      h.Percentile(95), h.Percentile(99), h.Max());
        out.append(buf);
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  char buf[64];
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters.push_back(',');
        AppendJsonString(name, &counters);
        std::snprintf(buf, sizeof(buf), ":%" PRIu64,
                      counters_[entry.index].value());
        counters.append(buf);
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges.push_back(',');
        AppendJsonString(name, &gauges);
        std::snprintf(buf, sizeof(buf), ":%" PRId64,
                      gauges_[entry.index].value());
        gauges.append(buf);
        break;
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms.push_back(',');
        const Histogram h = histograms_[entry.index].Snapshot();
        AppendJsonString(name, &histograms);
        histograms.push_back(':');
        // Summary format and percentile math live in util::Histogram, so
        // the registry and the bench reports can never disagree.
        h.SummaryToJson(&histograms);
        break;
      }
    }
  }
  std::string out = "{\"counters\":{";
  out.append(counters);
  out.append("},\"gauges\":{");
  out.append(gauges);
  out.append("},\"histograms\":{");
  out.append(histograms);
  out.append("}}");
  return out;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample s;
    s.name = name;
    s.help = entry.help;
    switch (entry.kind) {
      case Kind::kCounter:
        s.kind = MetricSample::Kind::kCounter;
        s.counter = counters_[entry.index].value();
        break;
      case Kind::kGauge:
        s.kind = MetricSample::Kind::kGauge;
        s.gauge = gauges_[entry.index].value();
        break;
      case Kind::kHistogram:
        s.kind = MetricSample::Kind::kHistogram;
        s.histogram = histograms_[entry.index].Snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace pipelsm::obs
